package grid

import (
	"errors"
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

// TestFacadePoolLifecycle exercises the public API end to end the way
// README's quickstart does.
func TestFacadePoolLifecycle(t *testing.T) {
	p := NewPool(PoolConfig{
		Seed:     1,
		Params:   DefaultParams(),
		Machines: UniformMachines(4, 2048),
	})
	if err := p.Schedd.SubmitFS.WriteFile("/home/alice/Main.class", []byte("bytes")); err != nil {
		t.Fatal(err)
	}
	id := p.Schedd.Submit(&Job{
		Owner:      "alice",
		Ad:         NewJavaJobAd("alice", 128),
		Program:    jvm.WellBehaved(30 * time.Minute),
		Executable: "/home/alice/Main.class",
	})
	p.Run(24 * time.Hour)
	j := p.Schedd.Job(id)
	if !j.State.Terminal() {
		t.Fatalf("state = %v", j.State)
	}
	m := p.Metrics()
	if m.Completed != 1 || m.IncidentalLeaks != 0 {
		t.Errorf("metrics = %s", m)
	}
}

func TestFacadeScopeAPI(t *testing.T) {
	err := NewError(ScopeJob, "CorruptProgramImageError", "bad magic")
	if Dispose(err) != DispositionUnexecutable {
		t.Error("job scope must be unexecutable")
	}
	esc := EscapeError(ScopeProcess, "RPCFailure", errors.New("tcp reset"))
	if Dispose(esc) != DispositionRequeue {
		t.Error("process scope must requeue")
	}
	if Dispose(nil) != DispositionComplete {
		t.Error("nil disposes complete")
	}
	e := NewEscalation(ScopeNetwork, "ConnectionLost").
		Step(time.Minute, ScopeProcess, "RPCFailure")
	if s, _ := e.ScopeAt(2 * time.Minute); s != ScopeProcess {
		t.Errorf("escalated scope = %v", s)
	}
}

func TestFacadeClassAdAPI(t *testing.T) {
	job, err := ParseAd(`[ Requirements = target.Memory >= 512; Rank = target.Memory ]`)
	if err != nil {
		t.Fatal(err)
	}
	machine := NewAd()
	machine.SetInt("Memory", 2048)
	if !MatchAds(job, machine) {
		t.Error("should match")
	}
	small := NewAd()
	small.SetInt("Memory", 128)
	if MatchAds(job, small) {
		t.Error("should not match")
	}
}

func TestFacadeFigures(t *testing.T) {
	if r := Figure1(); len(r.Rows) == 0 {
		t.Error("figure1 empty")
	}
	if r, rows := Figure4(); len(r.Rows) != 7 || len(rows) != 7 {
		t.Error("figure4 wrong shape")
	}
	if r := Principles(); len(r.Rows) != 4 {
		t.Error("principles wrong shape")
	}
}

func TestFacadeSupervisor(t *testing.T) {
	p := NewPool(PoolConfig{Seed: 2, Params: DefaultParams(),
		Machines: UniformMachines(2, 2048)})
	sup := NewSupervisor(p)
	defer sup.Close()
	tr := sup.Submit(SupervisedSpec{
		Name: "x",
		Program: func(path string) *Program {
			return &Program{Class: "M", Steps: []jvm.Step{
				jvm.Compute{Duration: time.Minute},
				jvm.IOWrite{Path: path, Data: []byte("ok")},
			}}
		},
		OutputPath: "/out",
	})
	p.Run(12 * time.Hour)
	if tr.Status.String() != "valid" {
		t.Errorf("status = %v (%v)", tr.Status, tr.Err)
	}
}

func TestFacadeWorkflow(t *testing.T) {
	sub, err := ParseSubmitFile("owner = a\nsim_compute = 5m\nqueue 2\n")
	if err != nil || len(sub.Jobs) != 2 {
		t.Fatalf("submit: %v", err)
	}
	d, err := ParseDAG("JOB X x.sub\nJOB Y x.sub\nPARENT X CHILD Y\n",
		func(string) (string, error) { return "owner = a\nsim_compute = 5m\nqueue\n", nil })
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(PoolConfig{Seed: 3, Params: DefaultParams(),
		Machines: UniformMachines(2, 2048)})
	r, err := StartDAG(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(12 * time.Hour)
	if !r.Done() || r.Failed() {
		t.Errorf("done=%v failed=%v", r.Done(), r.Failed())
	}
	// An empty DAG built by hand validates the builder path too.
	d2 := NewDAG()
	d2.AddJob("solo", func() *Job {
		return &Job{Owner: "a", Ad: NewJavaJobAd("a", 128),
			Program: &Program{Class: "M"}}
	})
	if _, err := StartDAG(d2, p); err != nil {
		t.Errorf("solo dag: %v", err)
	}
}

func TestFacadeFigure2And3(t *testing.T) {
	if r, err := Figure2(); err != nil || len(r.Rows) == 0 {
		t.Errorf("figure2: %v", err)
	}
	if r := Figure3(); len(r.Rows) != 6 {
		t.Error("figure3 wrong shape")
	}
}

func TestFacadeLiveRuntime(t *testing.T) {
	rt := NewLiveRuntime(0)
	defer rt.Close()
	ran := make(chan struct{})
	rt.After(time.Millisecond, func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("live timer never fired")
	}
}
