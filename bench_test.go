package grid

// Benchmarks regenerating every figure of the paper plus the
// substrate micro-benchmarks.  One benchmark per table/figure:
//
//	BenchmarkFigure1KernelJob   — Figure 1, the kernel protocol chain
//	BenchmarkFigure2DataPath    — Figure 2, the I/O path over real TCP
//	BenchmarkFigure3ScopeSweep  — Figure 3, one error per scope tier
//	BenchmarkFigure4            — Figure 4, the result-code table
//	BenchmarkNaiveVsScoped      — Section 2.3, before/after
//	BenchmarkBlackhole          — Section 5, black-hole policies
//	BenchmarkMountPolicies      — Section 5, hard/soft/per-job mounts
//
// Absolute numbers are simulation costs, not testbed costs; the
// comparisons that matter (who wins, by what factor) are in the
// experiment reports themselves (cmd/experiments, EXPERIMENTS.md).

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/experiments"
	"github.com/errscope/grid/internal/javaio"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/remoteio"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wrapper"
)

// --- Figure benchmarks ---

func BenchmarkFigure1KernelJob(b *testing.B) {
	b.ReportAllocs()
	params := daemon.DefaultParams()
	for i := 0; i < b.N; i++ {
		eng := sim.New(1)
		bus := sim.NewBus(eng, 5*time.Millisecond)
		daemon.NewMatchmaker(bus, params)
		schedd := daemon.NewSchedd(bus, params, "schedd")
		daemon.NewStartd(bus, params, daemon.MachineConfig{
			Name: "m1", Memory: 2048, AdvertiseJava: true,
		})
		schedd.SubmitFS.WriteFile("/x.class", []byte("b"))
		schedd.Submit(&daemon.Job{
			Owner: "u", Ad: daemon.NewJavaJobAd("u", 128),
			Program: jvm.WellBehaved(5 * time.Minute), Executable: "/x.class",
		})
		for eng.Now() < sim.Time(time.Hour) && !schedd.AllTerminal() {
			eng.RunFor(time.Minute)
		}
		if !schedd.AllTerminal() {
			b.Fatal("job did not finish")
		}
	}
}

func BenchmarkFigure2DataPath(b *testing.B) {
	b.ReportAllocs()
	key := []byte("k")
	submitFS := vfs.New()
	submitFS.WriteFile("/in", make([]byte, 4096))
	shadowSrv := remoteio.NewServer(submitFS, key)
	shadowAddr, err := shadowSrv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer shadowSrv.Close()
	shadowChan, err := remoteio.Dial(shadowAddr, key)
	if err != nil {
		b.Fatal(err)
	}
	defer shadowChan.Close()
	proxy := chirp.NewServer(&remoteio.ChirpBackend{Client: shadowChan}, "c")
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer proxy.Close()
	session, err := chirp.Dial(proxyAddr, "c")
	if err != nil {
		b.Fatal(err)
	}
	defer session.Close()
	lib := javaio.New(javaio.NewChirpTransport(session))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lib.Read("/in", 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
}

func BenchmarkFigure3ScopeSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3()
		if len(r.Rows) != 6 {
			b.Fatal("bad figure3")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Figure4()
		if len(rows) != 7 {
			b.Fatal("bad figure4")
		}
	}
}

func BenchmarkNaiveVsScoped(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []daemon.Mode{daemon.ModeNaive, daemon.ModeScoped} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				params := daemon.DefaultParams()
				params.Mode = mode
				if mode == daemon.ModeScoped {
					params.ChronicFailureThreshold = 3
				}
				ms := pool.Misconfigure(pool.UniformMachines(8, 2048), 2,
					pool.BreakBadLibraryPath, false)
				p := pool.New(pool.Config{Seed: 1, Params: params, Machines: ms})
				p.StageSharedInput()
				p.SubmitJava(24, pool.MixedWorkload(1, 10*time.Minute))
				p.Run(72 * time.Hour)
			}
		})
	}
}

func BenchmarkBlackhole(b *testing.B) {
	b.ReportAllocs()
	for _, pol := range experiments.BlackholePolicies() {
		b.Run(pol.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				params := daemon.DefaultParams()
				params.ChronicFailureThreshold = pol.Threshold
				params.MaxAttempts = 50
				ms := pool.Misconfigure(pool.UniformMachines(10, 2048), 3,
					pool.BreakBadLibraryPath, pol.SelfTest)
				p := pool.New(pool.Config{Seed: 1, Params: params, Machines: ms})
				p.SubmitJava(30, pool.UniformCompute(10*time.Minute))
				p.Run(72 * time.Hour)
			}
		})
	}
}

func BenchmarkMountPolicies(b *testing.B) {
	b.ReportAllocs()
	arms := []struct {
		name  string
		mount daemon.MountPolicy
	}{
		{"hard", daemon.MountPolicy{Kind: daemon.MountHard, RetryInterval: 30 * time.Second}},
		{"soft", daemon.MountPolicy{Kind: daemon.MountSoft, SoftTimeout: 2 * time.Minute, RetryInterval: 30 * time.Second}},
		{"per-job", daemon.MountPolicy{Kind: daemon.MountPerJob, SoftTimeout: 10 * time.Minute, RetryInterval: 30 * time.Second}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				params := daemon.DefaultParams()
				params.Mount = arm.mount
				p := pool.New(pool.Config{Seed: 1, Params: params,
					Machines: pool.UniformMachines(4, 2048)})
				p.SubmitJava(8, pool.UniformCompute(10*time.Minute))
				p.Engine.After(5*time.Minute, func() { p.Schedd.SubmitFS.SetOffline(true) })
				p.Engine.After(35*time.Minute, func() { p.Schedd.SubmitFS.SetOffline(false) })
				p.Run(24 * time.Hour)
			}
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkClassAdParse(b *testing.B) {
	b.ReportAllocs()
	src := `[ Machine = "c01"; Memory = 2048; HasJava = true;
		Requirements = LoadAvg < 0.3 && target.ImageSize <= Memory;
		Rank = target.Department == "CS" ? 10 : 0; LoadAvg = 0.05 ]`
	for i := 0; i < b.N; i++ {
		if _, err := classad.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClassAdMatch(b *testing.B) {
	b.ReportAllocs()
	job, _ := classad.Parse(`[ ImageSize = 128; Department = "CS";
		Requirements = target.HasJava && target.Memory >= my.ImageSize;
		Rank = target.Memory ]`)
	machine, _ := classad.Parse(`[ Machine = "c01"; Memory = 2048;
		HasJava = true; LoadAvg = 0.05;
		Requirements = LoadAvg < 0.3 && target.ImageSize <= Memory ]`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !classad.Match(job, machine) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkClassAdBestMatchN(b *testing.B) {
	b.ReportAllocs()
	job, _ := classad.Parse(`[ ImageSize = 128;
		Requirements = target.HasJava && target.Memory >= my.ImageSize;
		Rank = target.Memory ]`)
	for _, n := range []int{16, 128, 1024} {
		cands := make([]*classad.Ad, n)
		for i := range cands {
			cands[i], _ = classad.Parse(fmt.Sprintf(
				`[ Machine = "c%03d"; Memory = %d; HasJava = %v ]`,
				i, 512+i, i%7 != 0))
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				classad.BestMatch(job, cands)
			}
		})
	}
}

func BenchmarkChirpRPC(b *testing.B) {
	b.ReportAllocs()
	fs := vfs.New()
	fs.WriteFile("/f", make([]byte, 4096))
	srv := chirp.NewServer(&chirp.VFSBackend{FS: fs}, "k")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := chirp.Dial(addr, "k")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	fd, err := c.Open("/f", chirp.FlagRead)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PRead(fd, 4096, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
}

func BenchmarkRemoteIORPC(b *testing.B) {
	b.ReportAllocs()
	fs := vfs.New()
	fs.WriteFile("/f", make([]byte, 4096))
	srv := remoteio.NewServer(fs, []byte("key"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := remoteio.Dial(addr, []byte("key"))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Read("/f", 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
}

func BenchmarkResultFileRoundTrip(b *testing.B) {
	b.ReportAllocs()
	res := scope.Result{
		Status:    scope.StatusEscape,
		Exception: "OutOfMemoryError",
		Scope:     scope.ScopeVirtualMachine,
		Message:   "java heap space: requested 128MB, limit 64MB",
	}
	for i := 0; i < b.N; i++ {
		enc := res.EncodeString()
		if _, err := scope.DecodeResultString(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContractApply(b *testing.B) {
	b.ReportAllocs()
	contract := scope.NewContract("write", scope.ScopeProcess, "EnvironmentError").
		Declare("DiskFull", scope.ScopeFile).
		Declare("AccessDenied", scope.ScopeFile)
	explicit := scope.New(scope.ScopeFile, "DiskFull", "full")
	foreign := scope.New(scope.ScopeNetwork, "ConnectionLost", "reset")
	b.Run("admitted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			contract.Apply(explicit)
		}
	})
	b.Run("escaped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			contract.Apply(foreign)
		}
	})
}

func BenchmarkWrapperClassify(b *testing.B) {
	b.ReportAllocs()
	w := &wrapper.Wrapper{}
	exec := jvm.New(jvm.Config{HeapLimit: 1 << 20}).Execute(jvm.MemoryHog(8<<20), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Classify(exec)
	}
}

func BenchmarkSimEngineEvents(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New(1)
	var fn func()
	count := 0
	fn = func() {
		count++
		if count < b.N {
			eng.After(time.Millisecond, fn)
		}
	}
	eng.After(time.Millisecond, fn)
	b.ResetTimer()
	eng.Run()
	if count < b.N {
		b.Fatal("missing events")
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	// End-to-end scheduling throughput.  The small shape is dominated
	// by the protocol simulation; the 1024-machine shape is where the
	// negotiation cycle itself carries the run.
	shapes := []struct{ machines, jobs int }{{64, 256}, {1024, 1024}}
	for _, sh := range shapes {
		b.Run(fmt.Sprintf("m%d_j%d", sh.machines, sh.jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pool.New(pool.Config{Seed: 1, Params: daemon.DefaultParams(),
					Machines: pool.UniformMachines(sh.machines, 2048)})
				p.StageSharedInput()
				p.SubmitJava(sh.jobs, pool.MixedWorkload(1, 10*time.Minute))
				p.Run(72 * time.Hour)
				if m := p.Metrics(); m.Unfinished != 0 {
					b.Fatalf("unfinished: %s", m)
				}
			}
		})
	}
}
