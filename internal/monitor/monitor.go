// Package monitor is the pool's operations plane: a daemon that
// attaches to a running pool — the deterministic simulation or the
// wall-clock live runtime — and streams its observability trace,
// metrics snapshots, and per-job timelines to any number of
// subscribed clients, plus the scoped admin verbs (drain, restart,
// compact) an operator steers the pool with.
//
// The plane's defining property is its failure scope: it is
// read-mostly and strictly one-way.  A monitor that dies, a
// subscriber whose connection drops, a stream that backs up — none of
// it perturbs the pool.  Job dispositions are byte-equal with and
// without a monitor attached (the ops-smoke experiment pins this),
// because the monitor only ever reads the pool's recorder and
// metrics; it injects nothing into the simulation and holds no locks
// the daemons contend on.  Admin verbs are the deliberate exception:
// they mutate the pool on the operator's behalf, and when one fails
// mid-flight the error escapes to the caller carrying the scope of
// exactly the machine or daemon it touched.
package monitor

import (
	"fmt"

	"sync"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// Clock is the time source events and notes are stamped with.  Both
// the simulation engine and the live runtime satisfy it.
type Clock interface {
	Now() sim.Time
}

// Targets names the daemons admin verbs may touch.  A verb aimed at a
// name absent here fails with pool scope: the plane knows its own
// pool and nothing beyond it.
type Targets struct {
	Startds map[string]*daemon.Startd
	Schedds map[string]*daemon.Schedd
}

// Config attaches a monitor to a pool.
type Config struct {
	// Name identifies this monitor in its own log and in fault
	// scenarios ("monitor:<name>" sites).
	Name string

	// Clock stamps the monitor's own log lines.  Required.
	Clock Clock

	// Recorder is the pool trace the monitor streams.  The monitor
	// only ever reads it (Events is a snapshot copy), so a slow or
	// dead subscriber cannot block an emitting daemon.
	Recorder *obs.Recorder

	// Metrics builds one pool snapshot per pump; nil streams none.
	Metrics func() Snapshot

	// Normalize streams events in live-comparable form: timestamps
	// zeroed and free-form details dropped, the streamed twin of
	// obs.ExportOptions.Normalize.  Two live runs of the same
	// workload then stream byte-identical event records even though
	// the underlying clients stamp wall-clock times.
	Normalize bool

	// Targets are the daemons admin verbs resolve against.
	Targets Targets

	// Do serializes admin verbs with the pool's dispatch loop when
	// one exists (the live runtime's Do); nil runs verbs directly,
	// which is correct for the simulation where the caller already
	// interleaves verbs with engine steps.
	Do func(func())
}

// Sink receives the stream for one subscriber.  Deliver runs under
// the monitor's lock, so it must not block on a slow consumer: the
// network sinks buffer into a bounded queue drained by their own
// writer goroutine and fail on overflow rather than let TCP
// backpressure reach the pump.  Deliver's error means the subscriber
// is gone: the monitor closes and forgets the sink and nothing else —
// the defining non-failure of the ops plane.
type Sink interface {
	Deliver(cmd byte, line string) error
	Close()
}

// subscriber is one attached sink and its cursor into the event log.
type subscriber struct {
	sink Sink
	next int
}

// Monitor streams one pool's trace to its subscribers and runs admin
// verbs against it.  Safe for concurrent use; all state is under one
// mutex and the pool is never called while waiting on a subscriber.
type Monitor struct {
	mu        sync.Mutex
	cfg       Config
	subs      []*subscriber
	killed    bool
	delivered int64
	dropped   int
	log       []string
}

// New attaches a monitor to the pool described by cfg.
func New(cfg Config) *Monitor {
	return &Monitor{cfg: cfg}
}

// Name returns the monitor's name.
func (m *Monitor) Name() string { return m.cfg.Name }

// note appends one line to the monitor's own log, stamped with the
// pool clock.  The log is the monitor's, never the pool trace: an ops
// event must not change the bytes of a golden run.
func (m *Monitor) note(format string, args ...any) {
	line := fmt.Sprintf("%12s %s", m.cfg.Clock.Now(), fmt.Sprintf(format, args...))
	m.log = append(m.log, line)
}

// Log returns a copy of the monitor's own log.
func (m *Monitor) Log() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.log...)
}

// Subscribe attaches a sink, streaming from event index `from` (0 for
// the full backlog — late subscribers catch up on the next pump).  A
// killed monitor refuses: the daemon is dead, not just idle.
func (m *Monitor) Subscribe(sink Sink, from int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed {
		return m.deadErr()
	}
	// Mirror ParseSub's validation for in-process callers: a negative
	// cursor (or one that does not survive the int conversion) must be
	// refused here, not parked where the pump would slice with it.
	if from < 0 || int64(int(from)) != from {
		e := scope.New(scope.ScopeFunction, CodeBadRequest,
			"subscribe from %d: cursor must be a non-negative int", from)
		return e.WithOrigin(m.cfg.Name)
	}
	m.subs = append(m.subs, &subscriber{sink: sink, next: int(from)})
	m.note("subscriber attached (from=%d, %d total)", from, len(m.subs))
	return nil
}

// Detach removes and closes one sink; unknown sinks are ignored (the
// pump may have already dropped it).
func (m *Monitor) Detach(sink Sink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, sub := range m.subs {
		if sub.sink == sink {
			m.subs = append(m.subs[:i], m.subs[i+1:]...)
			sub.sink.Close()
			m.note("subscriber detached (%d remain)", len(m.subs))
			return
		}
	}
}

// Subscribers returns the number of attached sinks.
func (m *Monitor) Subscribers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// Delivered returns the total records delivered across subscribers.
func (m *Monitor) Delivered() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

// Dropped returns the number of subscribers dropped on delivery
// failure.
func (m *Monitor) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Pump streams the recorder's new events to every subscriber, then
// one metrics snapshot each.  A sink whose Deliver fails is closed
// and forgotten — that subscriber's failure is scoped to its own
// session, and the pump carries on with the rest.  Deliver never
// blocks on a slow consumer (see Sink), so holding the monitor's lock
// across delivery cannot stall the pool stepping loop behind it.
func (m *Monitor) Pump() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.killed || len(m.subs) == 0 {
		return
	}
	events := m.cfg.Recorder.Events()
	var snap Snapshot
	haveSnap := false
	if m.cfg.Metrics != nil {
		snap = m.cfg.Metrics()
		haveSnap = true
	}
	live := m.subs[:0]
	for _, sub := range m.subs {
		if !m.stream(sub, events, snap, haveSnap) {
			continue
		}
		live = append(live, sub)
	}
	// Zero the dropped tail so forgotten subscribers are collectable.
	for i := len(live); i < len(m.subs); i++ {
		m.subs[i] = nil
	}
	m.subs = live
}

// stream sends one subscriber its backlog and the snapshot; false
// means the subscriber is gone and was closed.
func (m *Monitor) stream(sub *subscriber, events []obs.Event, snap Snapshot, haveSnap bool) bool {
	if sub.next > len(events) {
		// A cursor past the log means the subscriber asked to start
		// in the future; it picks up when the log catches up.
		return true
	}
	for _, ev := range events[sub.next:] {
		if m.cfg.Normalize {
			ev.T = 0
			ev.Detail = ""
		}
		if err := sub.sink.Deliver(cmdEvent, EncodeEvent(ev)); err != nil {
			m.drop(sub, err)
			return false
		}
		sub.next++
		m.delivered++
	}
	if haveSnap {
		if err := sub.sink.Deliver(cmdMetrics, EncodeSnapshot(snap)); err != nil {
			m.drop(sub, err)
			return false
		}
		m.delivered++
	}
	return true
}

// drop closes a failed subscriber and records the loss in the
// monitor's own log — the pool never hears about it.
func (m *Monitor) drop(sub *subscriber, err error) {
	sub.sink.Close()
	m.dropped++
	m.note("subscriber dropped at cursor %d: %v", sub.next, err)
}

// DropSubscribers closes every attached sink and returns how many
// were dropped.  The monitor itself stays alive and new subscribers
// may attach — this is the "stream drop" fault, not a daemon death.
func (m *Monitor) DropSubscribers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.subs)
	for _, sub := range m.subs {
		sub.sink.Close()
	}
	m.subs = nil
	m.dropped += n
	m.note("all %d subscribers dropped", n)
	return n
}

// Kill terminates the monitor daemon: every subscriber session closes
// and no new ones may attach.  Returns the number of sessions closed.
// The pool does not notice — that is the point.
func (m *Monitor) Kill() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.subs)
	for _, sub := range m.subs {
		sub.sink.Close()
	}
	m.subs = nil
	m.killed = true
	m.note("monitor killed (%d sessions closed)", n)
	return n
}

// Killed reports whether the monitor has been killed.
func (m *Monitor) Killed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.killed
}

// deadErr is the process-scope refusal of a killed monitor.
func (m *Monitor) deadErr() error {
	e := scope.New(scope.ScopeProcess, "MonitorDead",
		"monitor %s has been killed", m.cfg.Name)
	return e.WithOrigin(m.cfg.Name)
}

// Admin runs one operator verb against the pool and returns a
// human-readable detail line.  Failure carries the scope of the exact
// machine or daemon the verb touched; an unknown verb or target is a
// pool-scope error naming what the caller asked for.  Verbs run under
// cfg.Do when set, serializing with a live dispatch loop.
func (m *Monitor) Admin(verb, target string) (string, error) {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return "", m.deadErr()
	}
	run := m.cfg.Do
	m.mu.Unlock()
	if run == nil {
		run = func(fn func()) { fn() }
	}
	var detail string
	var err error
	run(func() {
		// Re-check under the lock on the pool's thread: a Kill that
		// lands between Admin's entry check and the verb reaching the
		// pool still refuses — a killed monitor mutates nothing.
		m.mu.Lock()
		dead := m.killed
		m.mu.Unlock()
		if dead {
			err = m.deadErr()
			return
		}
		detail, err = m.admin(verb, target)
	})
	m.mu.Lock()
	if err != nil {
		m.note("admin %s %s failed: %v", verb, target, err)
	} else {
		m.note("admin %s %s: %s", verb, target, detail)
	}
	m.mu.Unlock()
	return detail, err
}

// admin dispatches one verb.  Runs on the pool's thread (under
// cfg.Do) — never under the monitor mutex, so a verb that blocks
// cannot stall the stream.
func (m *Monitor) admin(verb, target string) (string, error) {
	switch verb {
	case "drain":
		sd := m.cfg.Targets.Startds[target]
		if sd == nil {
			return "", m.unknownTarget(verb, "machine", target)
		}
		if err := sd.Drain(); err != nil {
			return "", err
		}
		return fmt.Sprintf("draining %s: matching stopped, residents vacating", target), nil

	case "resume":
		sd := m.cfg.Targets.Startds[target]
		if sd == nil {
			return "", m.unknownTarget(verb, "machine", target)
		}
		sd.Resume()
		return fmt.Sprintf("%s resumed: matching restored", target), nil

	case "restart":
		if sd := m.cfg.Targets.Startds[target]; sd != nil {
			sd.Crash()
			sd.Restart()
			return fmt.Sprintf("startd %s restarted", target), nil
		}
		if s := m.cfg.Targets.Schedds[target]; s != nil {
			s.Crash()
			if err := s.Recover(s.Journal()); err != nil {
				// Recovery failure already carries the journal's
				// scope; widen the audience to the operator with the
				// daemon the verb touched.
				esc := scope.Escape(scope.ScopeLocalResource, "RestartFailed", err)
				return "", esc.WithOrigin(s.Name())
			}
			return fmt.Sprintf("schedd %s restarted: journal replayed", target), nil
		}
		return "", m.unknownTarget(verb, "daemon", target)

	case "compact":
		s := m.cfg.Targets.Schedds[target]
		if s == nil {
			return "", m.unknownTarget(verb, "schedd", target)
		}
		if err := s.ForceCompact(); err != nil {
			return "", err
		}
		return fmt.Sprintf("schedd %s journal compacted", target), nil

	default:
		e := scope.New(scope.ScopePool, "UnknownVerb",
			"monitor %s knows no verb %q", m.cfg.Name, verb)
		return "", e.WithOrigin(m.cfg.Name)
	}
}

// unknownTarget builds the pool-scope error for a verb aimed at a
// name this pool does not have.
func (m *Monitor) unknownTarget(verb, kind, target string) error {
	e := scope.New(scope.ScopePool, "UnknownTarget",
		"%s: no %s named %q in this pool", verb, kind, target)
	return e.WithOrigin(m.cfg.Name)
}
