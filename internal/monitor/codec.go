package monitor

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"github.com/errscope/grid/internal/obs"
)

// The monitor stream codec.  Every record that crosses the ops-plane
// boundary — a streamed obs event, a pool-metrics snapshot, a
// subscribe request, an admin verb and its acknowledgement — travels
// as a canonical one-line text record: fixed field order, Go-quoted
// strings, canonical integers, and a CRC-32 trailer over everything
// before it, exactly the discipline of the flock and checkpoint
// codecs.  Canonical means Parse(Encode(x)) == x and re-encoding any
// accepted line reproduces it byte for byte — the property the fuzz
// targets pin.  Nothing here prefix-guesses: a field out of order, a
// non-canonical spelling, or a CRC that does not hold is a parse
// error scoped at the network (the record is damaged, not the pool).
//
//	mev t=60000000000 comp="big" kind="state" job=1 code="evicted" scope="" ekind="" detail="" value=0 crc=1a2b3c4d
//	mmet t=60000000000 jobs=4 completed=2 ... lost=0 crc=9f43aa10
//	msub from=0 crc=c8d21f00
//	madm verb="drain" target="big" crc=00e1f2a3
//	mok verb="drain" target="big" detail="draining big" crc=7b61c2d9

// Stream command bytes (wire.ModeBinary / wire.ModeSecure), in the
// 0xC0 range so a monitor frame is distinguishable at a glance from
// session frames (0xE0), remoteio RPC (0xB0), and the shared
// wire.CmdOK/CmdErr replies.  The payload of each is the
// corresponding canonical record.
const (
	cmdSub     byte = 0xC0
	cmdEvent   byte = 0xC1
	cmdMetrics byte = 0xC2
	cmdAdmin   byte = 0xC3
)

// Snapshot is one streamed pool-metrics record: the counters an
// operator watches, stamped with the pool clock.  Durations travel as
// int64 nanoseconds, like every timestamp in package obs.
type Snapshot struct {
	T            int64
	Jobs         int64
	Completed    int64
	Unexecutable int64
	Held         int64
	Unfinished   int64
	Attempts     int64
	Evictions    int64
	Preemptions  int64
	Requeues     int64
	Recoveries   int64
	GoodputNS    int64
	BadputNS     int64
	Sent         int64
	Lost         int64
}

// EncodeEvent renders the canonical record of one streamed obs event.
// Every field is present, zero or not: a fixed shape parses strictly.
func EncodeEvent(ev obs.Event) string {
	var sb strings.Builder
	sb.WriteString("mev t=")
	sb.WriteString(strconv.FormatInt(ev.T, 10))
	appendStr(&sb, "comp", ev.Comp)
	appendStr(&sb, "kind", ev.Kind)
	sb.WriteString(" job=")
	sb.WriteString(strconv.FormatInt(ev.Job, 10))
	appendStr(&sb, "code", ev.Code)
	appendStr(&sb, "scope", ev.Scope)
	appendStr(&sb, "ekind", ev.EKind)
	appendStr(&sb, "detail", ev.Detail)
	sb.WriteString(" value=")
	sb.WriteString(strconv.FormatInt(ev.Value, 10))
	return sealRecord(&sb)
}

// ParseEvent decodes one streamed event record, strictly.
func ParseEvent(s string) (obs.Event, error) {
	var ev obs.Event
	rest, ok := strings.CutPrefix(s, "mev ")
	if !ok {
		return ev, fmt.Errorf("monitor: not an event record: %q", s)
	}
	if err := checkCRC(s, &rest); err != nil {
		return ev, err
	}
	var err error
	if ev.T, err = cutInt(&rest, "t"); err != nil {
		return ev, err
	}
	if ev.Comp, err = cutStr(&rest, "comp"); err != nil {
		return ev, err
	}
	if ev.Kind, err = cutStr(&rest, "kind"); err != nil {
		return ev, err
	}
	if ev.Job, err = cutInt(&rest, "job"); err != nil {
		return ev, err
	}
	if ev.Code, err = cutStr(&rest, "code"); err != nil {
		return ev, err
	}
	if ev.Scope, err = cutStr(&rest, "scope"); err != nil {
		return ev, err
	}
	if ev.EKind, err = cutStr(&rest, "ekind"); err != nil {
		return ev, err
	}
	if ev.Detail, err = cutStr(&rest, "detail"); err != nil {
		return ev, err
	}
	if ev.Value, err = cutInt(&rest, "value"); err != nil {
		return ev, err
	}
	if rest != "" {
		return ev, fmt.Errorf("monitor: trailing bytes %q", rest)
	}
	return ev, nil
}

// snapFields fixes the wire order of the snapshot record.
var snapFields = []string{"t", "jobs", "completed", "unexecutable", "held",
	"unfinished", "attempts", "evictions", "preemptions", "requeues",
	"recoveries", "goodput", "badput", "sent", "lost"}

func (m *Snapshot) fieldPtrs() []*int64 {
	return []*int64{&m.T, &m.Jobs, &m.Completed, &m.Unexecutable, &m.Held,
		&m.Unfinished, &m.Attempts, &m.Evictions, &m.Preemptions, &m.Requeues,
		&m.Recoveries, &m.GoodputNS, &m.BadputNS, &m.Sent, &m.Lost}
}

// EncodeSnapshot renders the canonical pool-metrics record.
func EncodeSnapshot(m Snapshot) string {
	var sb strings.Builder
	sb.WriteString("mmet")
	for i, p := range m.fieldPtrs() {
		sb.WriteByte(' ')
		sb.WriteString(snapFields[i])
		sb.WriteByte('=')
		sb.WriteString(strconv.FormatInt(*p, 10))
	}
	return sealRecord(&sb)
}

// ParseSnapshot decodes one pool-metrics record, strictly.
func ParseSnapshot(s string) (Snapshot, error) {
	var m Snapshot
	rest, ok := strings.CutPrefix(s, "mmet ")
	if !ok {
		return m, fmt.Errorf("monitor: not a metrics record: %q", s)
	}
	if err := checkCRC(s, &rest); err != nil {
		return m, err
	}
	for i, p := range m.fieldPtrs() {
		v, err := cutInt(&rest, snapFields[i])
		if err != nil {
			return m, err
		}
		*p = v
	}
	if rest != "" {
		return m, fmt.Errorf("monitor: trailing bytes %q", rest)
	}
	return m, nil
}

// EncodeSub renders a subscribe request: stream events from the given
// index (0 = full backlog).
func EncodeSub(from int64) string {
	var sb strings.Builder
	sb.WriteString("msub from=")
	sb.WriteString(strconv.FormatInt(from, 10))
	return sealRecord(&sb)
}

// ParseSub decodes one subscribe request, strictly.
func ParseSub(s string) (int64, error) {
	rest, ok := strings.CutPrefix(s, "msub ")
	if !ok {
		return 0, fmt.Errorf("monitor: not a subscribe record: %q", s)
	}
	if err := checkCRC(s, &rest); err != nil {
		return 0, err
	}
	from, err := cutInt(&rest, "from")
	if err != nil {
		return 0, err
	}
	if rest != "" {
		return 0, fmt.Errorf("monitor: trailing bytes %q", rest)
	}
	if from < 0 {
		return 0, fmt.Errorf("monitor: negative subscribe index %d", from)
	}
	return from, nil
}

// EncodeAdmin renders an admin verb request.
func EncodeAdmin(verb, target string) string {
	var sb strings.Builder
	sb.WriteString("madm")
	appendStr(&sb, "verb", verb)
	appendStr(&sb, "target", target)
	return sealRecord(&sb)
}

// ParseAdmin decodes one admin verb request, strictly.
func ParseAdmin(s string) (verb, target string, err error) {
	rest, ok := strings.CutPrefix(s, "madm ")
	if !ok {
		return "", "", fmt.Errorf("monitor: not an admin record: %q", s)
	}
	if err := checkCRC(s, &rest); err != nil {
		return "", "", err
	}
	if verb, err = cutStr(&rest, "verb"); err != nil {
		return "", "", err
	}
	if target, err = cutStr(&rest, "target"); err != nil {
		return "", "", err
	}
	if rest != "" {
		return "", "", fmt.Errorf("monitor: trailing bytes %q", rest)
	}
	return verb, target, nil
}

// EncodeAdminOK renders the acknowledgement of a completed admin verb.
func EncodeAdminOK(verb, target, detail string) string {
	var sb strings.Builder
	sb.WriteString("mok")
	appendStr(&sb, "verb", verb)
	appendStr(&sb, "target", target)
	appendStr(&sb, "detail", detail)
	return sealRecord(&sb)
}

// ParseAdminOK decodes one admin acknowledgement, strictly.
func ParseAdminOK(s string) (verb, target, detail string, err error) {
	rest, ok := strings.CutPrefix(s, "mok ")
	if !ok {
		return "", "", "", fmt.Errorf("monitor: not an admin ack: %q", s)
	}
	if err := checkCRC(s, &rest); err != nil {
		return "", "", "", err
	}
	if verb, err = cutStr(&rest, "verb"); err != nil {
		return "", "", "", err
	}
	if target, err = cutStr(&rest, "target"); err != nil {
		return "", "", "", err
	}
	if detail, err = cutStr(&rest, "detail"); err != nil {
		return "", "", "", err
	}
	if rest != "" {
		return "", "", "", fmt.Errorf("monitor: trailing bytes %q", rest)
	}
	return verb, target, detail, nil
}

// --- codec internals -------------------------------------------------

// appendStr appends ` key="quoted"` to the record under construction.
func appendStr(sb *strings.Builder, key, v string) {
	sb.WriteByte(' ')
	sb.WriteString(key)
	sb.WriteByte('=')
	sb.WriteString(strconv.Quote(v))
}

// sealRecord appends the CRC trailer over the bytes built so far.
func sealRecord(sb *strings.Builder) string {
	sum := crc32.ChecksumIEEE([]byte(sb.String()))
	fmt.Fprintf(sb, " crc=%08x", sum)
	return sb.String()
}

// checkCRC validates the record's trailer against the bytes it covers
// and trims it (plus its leading space) off *rest.
func checkCRC(s string, rest *string) error {
	i := strings.LastIndex(*rest, " crc=")
	if i < 0 {
		return fmt.Errorf("monitor: record has no crc trailer: %q", s)
	}
	raw := (*rest)[i+len(" crc="):]
	if len(raw) != 8 {
		return fmt.Errorf("monitor: crc %q is not 8 hex digits", raw)
	}
	sum, err := strconv.ParseUint(raw, 16, 32)
	if err != nil {
		return fmt.Errorf("monitor: field crc: %v", err)
	}
	// Canonical hex only: ParseUint accepts uppercase, which would
	// re-encode differently and break the round trip.
	if raw != fmt.Sprintf("%08x", uint32(sum)) {
		return fmt.Errorf("monitor: non-canonical crc=%q", raw)
	}
	covered := s[:len(s)-len(" crc=")-8]
	if got := crc32.ChecksumIEEE([]byte(covered)); got != uint32(sum) {
		return fmt.Errorf("monitor: crc mismatch: record says %08x, bytes say %08x",
			uint32(sum), got)
	}
	*rest = (*rest)[:i]
	return nil
}

// cutInt consumes "key=<int64>" (and the single space after it, when
// more fields follow) from the front of *rest.
func cutInt(rest *string, key string) (int64, error) {
	r, ok := strings.CutPrefix(*rest, key+"=")
	if !ok {
		return 0, fmt.Errorf("monitor: expected %s= at %q", key, *rest)
	}
	raw := r
	if j := strings.IndexByte(r, ' '); j >= 0 {
		raw, r = r[:j], r[j+1:]
	} else {
		r = ""
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("monitor: field %s: %v", key, err)
	}
	// Reject non-canonical spellings ("+2", "007") that ParseInt
	// accepts: they would re-encode differently.
	if raw != strconv.FormatInt(v, 10) {
		return 0, fmt.Errorf("monitor: non-canonical %s=%q", key, raw)
	}
	*rest = r
	return v, nil
}

// cutStr consumes `key="quoted"` (and the single space after it, when
// more fields follow) from the front of *rest.  Only the canonical
// strconv.Quote spelling is accepted: a value that unquotes fine but
// would re-quote differently is rejected.
func cutStr(rest *string, key string) (string, error) {
	r, ok := strings.CutPrefix(*rest, key+"=")
	if !ok {
		return "", fmt.Errorf("monitor: expected %s= at %q", key, *rest)
	}
	raw, err := strconv.QuotedPrefix(r)
	if err != nil {
		return "", fmt.Errorf("monitor: field %s: %v", key, err)
	}
	v, err := strconv.Unquote(raw)
	if err != nil {
		return "", fmt.Errorf("monitor: field %s: %v", key, err)
	}
	if raw != strconv.Quote(v) {
		return "", fmt.Errorf("monitor: non-canonical %s=%s", key, raw)
	}
	r = r[len(raw):]
	if strings.HasPrefix(r, " ") {
		r = r[1:]
	} else if r != "" {
		return "", fmt.Errorf("monitor: expected space after %s at %q", key, r)
	}
	*rest = r
	return v, nil
}
