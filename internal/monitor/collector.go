package monitor

import (
	"fmt"
	"sync"

	"github.com/errscope/grid/internal/obs"
)

// Collector is the in-process Sink: it decodes the stream back into
// an obs.Recorder and a snapshot history, so a client can run the
// same span assembly and per-job timelines over streamed data that
// the pool runs over its own trace.  It doubles as the test double
// for subscriber failure: a Collector built with FailAfter rejects
// delivery after n records, exactly like a TCP peer that went away.
type Collector struct {
	mu     sync.Mutex
	rec    *obs.Recorder
	snaps  []Snapshot
	closed bool

	// failAfter < 0 never fails; otherwise Deliver errors once this
	// many records have been accepted.
	failAfter int64
	accepted  int64
}

// NewCollector builds a collector that accepts the whole stream.
func NewCollector() *Collector {
	return &Collector{rec: obs.NewRecorder(), failAfter: -1}
}

// FailAfter builds a collector that accepts n records and then
// refuses delivery — a subscriber dying mid-stream.
func FailAfter(n int64) *Collector {
	return &Collector{rec: obs.NewRecorder(), failAfter: n}
}

// Deliver implements Sink: decode the record strictly and keep it.
func (c *Collector) Deliver(cmd byte, line string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("monitor: collector is closed")
	}
	if c.failAfter >= 0 && c.accepted >= c.failAfter {
		return fmt.Errorf("monitor: collector refused delivery after %d records", c.accepted)
	}
	switch cmd {
	case cmdEvent:
		ev, err := ParseEvent(line)
		if err != nil {
			return err
		}
		c.rec.Emit(ev)
	case cmdMetrics:
		snap, err := ParseSnapshot(line)
		if err != nil {
			return err
		}
		c.snaps = append(c.snaps, snap)
	default:
		return fmt.Errorf("monitor: collector got unknown command 0x%02x", cmd)
	}
	c.accepted++
	return nil
}

// Close implements Sink.
func (c *Collector) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// Closed reports whether the monitor (or anyone) closed this sink.
func (c *Collector) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Events returns the streamed events, in delivery order.
func (c *Collector) Events() []obs.Event { return c.rec.Events() }

// Recorder exposes the collector's recorder for span assembly,
// timelines, and JSONL export of the streamed trace.
func (c *Collector) Recorder() *obs.Recorder { return c.rec }

// Snapshots returns the streamed metrics history.
func (c *Collector) Snapshots() []Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Snapshot(nil), c.snaps...)
}
