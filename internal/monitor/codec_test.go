package monitor

import (
	"strings"
	"testing"

	"github.com/errscope/grid/internal/obs"
)

var sampleEvents = []obs.Event{
	{},
	{T: 1, Comp: "schedd", Kind: "state", Job: 4, Code: "running"},
	{T: -5, Comp: "m \"q\"", Kind: "error", Job: -1, Code: "Evicted",
		Scope: "remote-resource", EKind: "explicit",
		Detail: "owner reclaimed \"big\"\nline two", Value: 1 << 40},
	{T: 9223372036854775807, Comp: strings.Repeat("x", 100), Kind: "msg-lost"},
}

func TestEventRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents {
		line := EncodeEvent(ev)
		got, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", line, err)
		}
		if got != ev {
			t.Fatalf("round trip changed the event: %+v != %+v", got, ev)
		}
		if re := EncodeEvent(got); re != line {
			t.Fatalf("re-encode differs:\n%q\n%q", line, re)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := Snapshot{T: 360000, Jobs: 16, Completed: 12, Held: 1, Unfinished: 3,
		Attempts: 40, Evictions: 9, Preemptions: 2, Requeues: 11, Recoveries: 1,
		GoodputNS: 1 << 50, BadputNS: -1, Sent: 99999, Lost: 3}
	line := EncodeSnapshot(snap)
	got, err := ParseSnapshot(line)
	if err != nil {
		t.Fatalf("ParseSnapshot(%q): %v", line, err)
	}
	if got != snap {
		t.Fatalf("round trip changed the snapshot: %+v != %+v", got, snap)
	}
	if re := EncodeSnapshot(got); re != line {
		t.Fatalf("re-encode differs:\n%q\n%q", line, re)
	}
}

func TestSubAndAdminRoundTrip(t *testing.T) {
	line := EncodeSub(42)
	from, err := ParseSub(line)
	if err != nil || from != 42 {
		t.Fatalf("ParseSub(%q) = %d, %v", line, from, err)
	}
	if _, err := ParseSub(EncodeSub(-1)); err == nil {
		t.Fatal("negative subscribe index should not parse")
	}

	line = EncodeAdmin("drain", "machine with spaces \"q\"")
	verb, target, err := ParseAdmin(line)
	if err != nil || verb != "drain" || target != "machine with spaces \"q\"" {
		t.Fatalf("ParseAdmin(%q) = %q, %q, %v", line, verb, target, err)
	}

	line = EncodeAdminOK("compact", "schedd", "journal folded")
	v, tg, detail, err := ParseAdminOK(line)
	if err != nil || v != "compact" || tg != "schedd" || detail != "journal folded" {
		t.Fatalf("ParseAdminOK(%q) = %q, %q, %q, %v", line, v, tg, detail, err)
	}
}

// TestParseRejects pins the strictness of the codec: damaged CRC,
// reordered fields, non-canonical spellings, and trailing bytes are
// all errors, never guesses.
func TestParseRejects(t *testing.T) {
	good := EncodeEvent(sampleEvents[1])
	bad := []string{
		"",
		"mev",
		"bogus " + good,
		good + " extra=1",
		strings.Replace(good, " crc=", " crc=0", 1),
		strings.Replace(good, "t=1", "t=01", 1),
		strings.Replace(good, "t=1", "t=+1", 1),
		strings.Replace(good, "job=4", "value=4", 1),
		good[:len(good)-1] + "X",
		strings.ToUpper(good[:len(good)-8]) + good[len(good)-8:],
	}
	for _, s := range bad {
		if _, err := ParseEvent(s); err == nil {
			t.Errorf("ParseEvent accepted %q", s)
		}
	}
	// Flipping any single payload byte must break the CRC (or the
	// strict grammar) — the checkpoint codec's property, held here.
	for i := range good[:len(good)-9] {
		mut := []byte(good)
		mut[i] ^= 0x20
		if got, err := ParseEvent(string(mut)); err == nil && got == sampleEvents[1] {
			t.Errorf("byte flip at %d went unnoticed: %q", i, mut)
		}
	}
	if _, err := ParseSnapshot("mmet t=0 crc=00000000"); err == nil {
		t.Error("truncated snapshot should not parse")
	}
	if _, _, err := ParseAdmin(`madm verb='drain' target="m" crc=00000000`); err == nil {
		t.Error("non-Go quoting should not parse")
	}
}

func FuzzParseEvent(f *testing.F) {
	for _, ev := range sampleEvents {
		f.Add(EncodeEvent(ev))
	}
	f.Add("mev t=0")
	f.Fuzz(func(t *testing.T, s string) {
		ev, err := ParseEvent(s)
		if err != nil {
			return
		}
		// Accepted input must be the canonical encoding, byte for
		// byte: parse-then-encode is the identity on accepted lines.
		if re := EncodeEvent(ev); re != s {
			t.Fatalf("accepted non-canonical line:\n%q\n%q", s, re)
		}
	})
}

func FuzzParseSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(Snapshot{}))
	f.Add(EncodeSnapshot(Snapshot{T: 1, Jobs: 2, Lost: -3}))
	f.Fuzz(func(t *testing.T, s string) {
		snap, err := ParseSnapshot(s)
		if err != nil {
			return
		}
		if re := EncodeSnapshot(snap); re != s {
			t.Fatalf("accepted non-canonical line:\n%q\n%q", s, re)
		}
	})
}

func FuzzParseAdmin(f *testing.F) {
	f.Add(EncodeAdmin("drain", "big"))
	f.Add(EncodeAdminOK("drain", "big", "ok"))
	f.Fuzz(func(t *testing.T, s string) {
		if verb, target, err := ParseAdmin(s); err == nil {
			if re := EncodeAdmin(verb, target); re != s {
				t.Fatalf("accepted non-canonical admin line:\n%q\n%q", s, re)
			}
		}
		if v, tg, d, err := ParseAdminOK(s); err == nil {
			if re := EncodeAdminOK(v, tg, d); re != s {
				t.Fatalf("accepted non-canonical ack line:\n%q\n%q", s, re)
			}
		}
	})
}
