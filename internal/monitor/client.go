package monitor

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"strings"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// Client is one ops-plane connection: a subscriber draining the
// stream, or an admin session issuing verbs.  Which one it becomes is
// decided by the first call (Subscribe or Admin), mirroring the
// server's first-record dispatch.
type Client struct {
	conn net.Conn
	mode wire.Mode
	sess *wire.Session // framed modes only
	r    *bufio.Reader
	w    *bufio.Writer // text mode only
}

// Dial connects and authenticates in the given mode.
func Dial(addr string, mode wire.Mode, key []byte) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	c := &Client{conn: conn, mode: mode, r: bufio.NewReader(conn)}
	if mode == wire.ModeText {
		c.w = bufio.NewWriter(conn)
		if err := c.textAuth(key); err != nil {
			conn.Close()
			return nil, err
		}
		return c, nil
	}
	c.sess = wire.NewSession(c.r, conn, wire.Config{Mode: mode, Secret: key})
	if err := c.sess.ClientHandshake(); err != nil {
		c.sess.Release()
		conn.Close()
		return nil, err
	}
	return c, nil
}

// textAuth answers the server's HMAC challenge.
func (c *Client) textAuth(key []byte) error {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "challenge" {
		return scope.New(scope.ScopeNetwork, CodeBadRequest,
			"expected a challenge, got %q", strings.TrimSpace(line))
	}
	nonce, err := hex.DecodeString(fields[1])
	if err != nil {
		return scope.New(scope.ScopeNetwork, CodeBadRequest, "bad challenge nonce")
	}
	fmt.Fprintf(c.w, "auth %s\n", hex.EncodeToString(authenticate(key, nonce)))
	if err := c.w.Flush(); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	return c.readTextOK()
}

// readTextOK consumes one "ok ..." or "error ..." line.
func (c *Client) readTextOK() error {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	line = strings.TrimSpace(line)
	if line == "ok" || strings.HasPrefix(line, "ok ") {
		return nil
	}
	if rest, ok := strings.CutPrefix(line, "error "); ok {
		se, derr := wire.DecodeError(rest)
		if derr != nil {
			return scope.New(scope.ScopeNetwork, CodeBadRequest, "%v", derr)
		}
		return se
	}
	return scope.New(scope.ScopeNetwork, CodeBadRequest, "unexpected reply %q", line)
}

// Close tears the connection down.
func (c *Client) Close() {
	if c.sess != nil {
		c.sess.Release()
		c.sess = nil
	}
	c.conn.Close()
}

// Subscribe turns this connection into a subscriber session streaming
// from event index `from`.
func (c *Client) Subscribe(from int64) error {
	if c.mode == wire.ModeText {
		fmt.Fprintln(c.w, EncodeSub(from))
		if err := c.w.Flush(); err != nil {
			return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
		}
		return c.readTextOK()
	}
	if err := c.sess.WriteMsg(cmdSub, []byte(EncodeSub(from))); err != nil {
		return err
	}
	cmd, payload, err := c.sess.ReadMsg()
	if err != nil {
		return err
	}
	if cmd == wire.CmdErr {
		return c.decodeErr(payload)
	}
	if cmd != wire.CmdOK {
		return scope.New(scope.ScopeNetwork, CodeBadRequest,
			"subscribe: unexpected reply %#x", cmd)
	}
	return nil
}

// Next reads one streamed record.  A clean server close is io.EOF.
func (c *Client) Next() (byte, string, error) {
	if c.mode == wire.ModeText {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return 0, "", err
		}
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "mev "):
			return cmdEvent, line, nil
		case strings.HasPrefix(line, "mmet "):
			return cmdMetrics, line, nil
		}
		// A refused subscription arrives in-stream as an error line.
		if rest, ok := strings.CutPrefix(line, "error "); ok {
			if se, derr := wire.DecodeError(rest); derr == nil {
				return 0, "", se
			}
		}
		return 0, "", scope.New(scope.ScopeNetwork, CodeBadRequest,
			"unexpected stream line %q", line)
	}
	cmd, payload, err := c.sess.ReadMsg()
	if err != nil {
		return 0, "", err
	}
	if cmd == wire.CmdErr {
		return 0, "", c.decodeErr(payload)
	}
	return cmd, string(payload), nil
}

// Collect drains the stream into col until the server closes the
// connection (which reads as success: the subscription simply ended)
// or a record fails to decode.
func (c *Client) Collect(col *Collector) error {
	for {
		cmd, line, err := c.Next()
		if err != nil {
			if err == io.EOF || isConnClosed(err) {
				return nil
			}
			return err
		}
		if err := col.Deliver(cmd, line); err != nil {
			return err
		}
	}
}

// isConnClosed recognizes the errors a torn-down subscriber session
// surfaces as: the server closed the socket under the reader.
func isConnClosed(err error) bool {
	if se, ok := scope.AsError(err); ok && se.Code == CodeConnectionLost {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "use of closed network connection") ||
		strings.Contains(msg, "connection reset by peer") ||
		strings.Contains(msg, "EOF")
}

// Admin issues one verb on this connection and returns the server's
// detail line.  A failed verb comes back as the scoped error the pool
// raised, reconstructed across the wire.
func (c *Client) Admin(verb, target string) (string, error) {
	if c.mode == wire.ModeText {
		fmt.Fprintln(c.w, EncodeAdmin(verb, target))
		if err := c.w.Flush(); err != nil {
			return "", scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
		}
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
		}
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "ok "); ok {
			_, _, detail, err := ParseAdminOK(rest)
			return detail, err
		}
		if rest, ok := strings.CutPrefix(line, "error "); ok {
			se, derr := wire.DecodeError(rest)
			if derr != nil {
				return "", scope.New(scope.ScopeNetwork, CodeBadRequest, "%v", derr)
			}
			return "", se
		}
		return "", scope.New(scope.ScopeNetwork, CodeBadRequest, "unexpected reply %q", line)
	}
	if err := c.sess.WriteMsg(cmdAdmin, []byte(EncodeAdmin(verb, target))); err != nil {
		return "", err
	}
	cmd, payload, err := c.sess.ReadMsg()
	if err != nil {
		return "", err
	}
	switch cmd {
	case wire.CmdOK:
		_, _, detail, err := ParseAdminOK(string(payload))
		return detail, err
	case wire.CmdErr:
		return "", c.decodeErr(payload)
	}
	return "", scope.New(scope.ScopeNetwork, CodeBadRequest, "unexpected reply %#x", cmd)
}

// decodeErr rebuilds a scoped error from a CmdErr payload.
func (c *Client) decodeErr(payload []byte) error {
	se, err := wire.DecodeErrorPayload(payload)
	if err != nil {
		return scope.New(scope.ScopeNetwork, CodeBadRequest, "%v", err)
	}
	return se
}
