package monitor

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// Error codes of the ops-plane channel.
const (
	CodeAuthFailed     = "AuthenticationFailed"
	CodeBadRequest     = "BadRequest"
	CodeMonitorDead    = "MonitorDead"
	CodeConnectionLost = wire.CodeConnectionLostName
)

// Contract returns the explicit error interface of the channel: an
// admin verb can fail at the scope of the daemon it touched, the pool
// can disown an unknown target, and the transport can die — and the
// caller can tell which happened.
func Contract() *scope.Contract {
	return scope.NewContract("monitor", scope.ScopeNetwork, CodeConnectionLost).
		Declare(CodeBadRequest, scope.ScopeFunction).
		Declare(CodeAuthFailed, scope.ScopeLocalResource).
		Declare(CodeMonitorDead, scope.ScopeProcess).
		Declare("UnknownVerb", scope.ScopePool).
		Declare("UnknownTarget", scope.ScopePool)
}

// Server exposes one monitor over TCP.  A connection's first record
// declares what it is: msub makes it a subscriber session (one-way,
// server to client, until either side closes), madm makes it an admin
// session (strict request/reply).  Serving is the monitor's business
// only — accepting, authenticating, or losing a connection never
// touches the pool.
type Server struct {
	mon *Monitor
	key []byte

	// Mode selects the transport for every connection; set before
	// Listen.  ModeText is the legacy line protocol with
	// challenge/response authentication; any other mode serves the
	// framed wire.Session and accepts whichever of binary/secure the
	// client opens with.
	Mode wire.Mode

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates an ops-plane service for mon, authenticated by
// the shared key.
func NewServer(mon *Monitor, key []byte) *Server {
	return &Server{mon: mon, key: append([]byte(nil), key...), conns: make(map[net.Conn]struct{})}
}

// Listen starts the service and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the service and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	if s.Mode != wire.ModeText {
		s.serveSession(conn)
		return
	}
	s.serveText(conn)
}

// serveSession handles one framed connection (binary or secure).
func (s *Server) serveSession(conn net.Conn) {
	sess := wire.NewSession(bufio.NewReader(conn), conn, wire.Config{
		Secret: s.key,
		AuthFailure: func() *scope.Error {
			return scope.New(scope.ScopeLocalResource, CodeAuthFailed,
				"monitor authentication failed")
		},
	})
	defer sess.Release()
	if sess.ServerHandshake() != nil {
		return
	}
	cmd, payload, err := sess.ReadMsg()
	if err != nil {
		return
	}
	switch cmd {
	case cmdSub:
		from, err := ParseSub(string(payload))
		if err != nil {
			sess.WriteError(scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
				CodeBadRequest, scope.ScopeFunction)
			return
		}
		// Ack before registering the sink: once subscribed, the pump
		// goroutine owns the write half, and a concurrent ack would
		// race it.  A refused subscription (the monitor is dead)
		// follows the ack as an error frame in the stream.
		if sess.WriteMsg(wire.CmdOK) != nil {
			return
		}
		sink := newAsyncSink(conn, func(cmd byte, line string) error {
			return sess.WriteMsg(cmd, []byte(line))
		})
		if err := s.mon.Subscribe(sink, from); err != nil {
			sess.WriteError(err, CodeMonitorDead, scope.ScopeProcess)
			sink.Close()
			<-sink.done
			return
		}
		// The stream is one-way from here: the sink's writer goroutine
		// owns the write half while this goroutine blocks on the read
		// half, waiting only for the client to hang up.  The session's
		// read and write halves are independent, so the split is safe.
		for {
			if _, _, err := sess.ReadMsg(); err != nil {
				break
			}
		}
		s.mon.Detach(sink)
		sink.Close()
		// Wait for the writer goroutine to flush and exit before the
		// deferred Release returns the session's pooled buffers; the
		// sink's close grace bounds the wait.
		<-sink.done

	case cmdAdmin:
		for {
			verb, target, err := ParseAdmin(string(payload))
			if err != nil {
				sess.WriteError(scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
					CodeBadRequest, scope.ScopeFunction)
				return
			}
			detail, aerr := s.mon.Admin(verb, target)
			if aerr != nil {
				if sess.WriteError(aerr, CodeBadRequest, scope.ScopePool) != nil {
					return
				}
			} else if sess.WriteMsg(wire.CmdOK, []byte(EncodeAdminOK(verb, target, detail))) != nil {
				return
			}
			if cmd, payload, err = sess.ReadMsg(); err != nil || cmd != cmdAdmin {
				return
			}
		}

	default:
		// The same explicit refusal the text path gives: a first
		// record that is neither a subscribe nor an admin request is a
		// bad request, not a silent close.
		sess.WriteError(scope.New(scope.ScopeFunction, CodeBadRequest,
			"expected msub or madm, got command %#x", cmd),
			CodeBadRequest, scope.ScopeFunction)
	}
}

// subscriberQueueDepth bounds the records buffered between the pump
// and one network subscriber's writer goroutine.  A subscriber this
// far behind has stopped reading; it is dropped rather than allowed
// to push TCP backpressure back into the pump.
const subscriberQueueDepth = 1024

// closeFlushGrace bounds the final flush of a closing subscriber: a
// peer that will not drain its tail within the grace loses it when
// the timer closes the connection under the blocked write.  Wall
// clock, deliberately — this is network teardown, never a simulated
// path.
const closeFlushGrace = 5 * time.Second

// sinkRecord is one queued stream record.
type sinkRecord struct {
	cmd  byte
	line string
}

// asyncSink adapts one network subscriber to the Sink interface with
// the decoupling the ops plane's failure scope demands: Deliver
// enqueues into a bounded queue and never touches the network, so a
// subscriber that stops reading cannot stall the pump (and the pool
// stepping loop serialized behind it) via TCP backpressure.  A writer
// goroutine drains the queue; a full queue or a failed write poisons
// the sink permanently, and the pump drops it on the next Deliver.
type asyncSink struct {
	write func(cmd byte, line string) error
	conn  net.Conn
	queue chan sinkRecord
	stop  chan struct{}
	done  chan struct{} // closed when the writer goroutine exits

	mu     sync.Mutex
	closed bool
	failed error
}

func newAsyncSink(conn net.Conn, write func(cmd byte, line string) error) *asyncSink {
	k := &asyncSink{
		write: write,
		conn:  conn,
		queue: make(chan sinkRecord, subscriberQueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go k.drain()
	return k
}

// Deliver implements Sink without ever blocking: the record is queued
// for the writer goroutine, and a full queue means the subscriber
// stopped reading long ago — that subscriber fails permanently,
// scoped to its own session.
func (k *asyncSink) Deliver(cmd byte, line string) error {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return fmt.Errorf("monitor: subscriber session closed")
	}
	if err := k.failed; err != nil {
		k.mu.Unlock()
		return err
	}
	k.mu.Unlock()
	select {
	case k.queue <- sinkRecord{cmd: cmd, line: line}:
		return nil
	default:
		err := fmt.Errorf("monitor: subscriber fell %d records behind and was dropped",
			subscriberQueueDepth)
		k.fail(err)
		// Closing the connection unblocks the writer mid-write.
		k.conn.Close()
		return err
	}
}

// Close implements Sink: no new records are accepted, and the
// connection closes once the writer flushes what the pump already
// handed over — or when the grace expires, whichever comes first.
// Close never blocks; the monitor calls it under its own lock.
func (k *asyncSink) Close() {
	k.mu.Lock()
	if k.closed {
		k.mu.Unlock()
		return
	}
	k.closed = true
	k.mu.Unlock()
	close(k.stop)
	time.AfterFunc(closeFlushGrace, func() { k.conn.Close() })
}

func (k *asyncSink) fail(err error) {
	k.mu.Lock()
	if k.failed == nil {
		k.failed = err
	}
	k.mu.Unlock()
}

// drain is the writer goroutine — the only place subscriber bytes hit
// the network.  On Close it flushes the queued tail, then closes the
// connection, which also unblocks the serving goroutine's read.
func (k *asyncSink) drain() {
	defer close(k.done)
	defer k.conn.Close()
	for {
		select {
		case <-k.stop:
			// Graceful close: a clean detach or server-side drop must
			// not truncate what the pump already handed over.
			for {
				select {
				case rec := <-k.queue:
					if k.write(rec.cmd, rec.line) != nil {
						return
					}
				default:
					return
				}
			}
		case rec := <-k.queue:
			if err := k.write(rec.cmd, rec.line); err != nil {
				k.fail(err)
				return
			}
		}
	}
}

// serveText handles one legacy line-protocol connection: an HMAC
// challenge/response, then the same first-record dispatch, with
// records travelling as bare lines (their tags make the command byte
// redundant).
func (s *Server) serveText(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return
	}
	fmt.Fprintf(w, "challenge %s\n", hex.EncodeToString(nonce))
	if w.Flush() != nil {
		return
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "auth" || !s.verify(nonce, fields[1]) {
		fmt.Fprint(w, wire.EncodeError(
			scope.New(scope.ScopeLocalResource, CodeAuthFailed, "bad authenticator"),
			CodeAuthFailed, scope.ScopeLocalResource))
		w.Flush()
		return
	}
	fmt.Fprint(w, "ok\n")
	if w.Flush() != nil {
		return
	}

	line, err = r.ReadString('\n')
	if err != nil {
		return
	}
	line = strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(line, "msub "):
		from, err := ParseSub(line)
		if err != nil {
			fmt.Fprint(w, wire.EncodeError(
				scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
				CodeBadRequest, scope.ScopeFunction))
			w.Flush()
			return
		}
		// Ack before registering the sink, for the same single-writer
		// reason as the framed path.
		fmt.Fprint(w, "ok\n")
		if w.Flush() != nil {
			return
		}
		// The record tags make the command byte redundant on this
		// transport, so the writer ignores it.
		sink := newAsyncSink(conn, func(_ byte, line string) error {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			return w.Flush()
		})
		if err := s.mon.Subscribe(sink, from); err != nil {
			fmt.Fprint(w, wire.EncodeError(err, CodeMonitorDead, scope.ScopeProcess))
			w.Flush()
			sink.Close()
			<-sink.done
			return
		}
		// Block on the read half until the client hangs up; the sink's
		// writer goroutine owns the write half.
		for {
			if _, err := r.ReadString('\n'); err != nil {
				break
			}
		}
		s.mon.Detach(sink)
		sink.Close()
		<-sink.done

	case strings.HasPrefix(line, "madm "):
		for {
			verb, target, err := ParseAdmin(line)
			if err != nil {
				fmt.Fprint(w, wire.EncodeError(
					scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
					CodeBadRequest, scope.ScopeFunction))
				w.Flush()
				return
			}
			detail, aerr := s.mon.Admin(verb, target)
			if aerr != nil {
				fmt.Fprint(w, wire.EncodeError(aerr, CodeBadRequest, scope.ScopePool))
			} else {
				fmt.Fprintf(w, "ok %s\n", EncodeAdminOK(verb, target, detail))
			}
			if w.Flush() != nil {
				return
			}
			raw, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimSpace(raw)
		}

	default:
		fmt.Fprint(w, wire.EncodeError(
			scope.New(scope.ScopeFunction, CodeBadRequest, "expected msub or madm, got %q", line),
			CodeBadRequest, scope.ScopeFunction))
		w.Flush()
	}
}

func (s *Server) verify(nonce []byte, mac string) bool {
	want := authenticate(s.key, nonce)
	got, err := hex.DecodeString(mac)
	if err != nil {
		return false
	}
	return hmac.Equal(got, want)
}

// authenticate computes the HMAC response for a nonce — the same
// construction the remote I/O channel uses.
func authenticate(key, nonce []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(nonce)
	return m.Sum(nil)
}

