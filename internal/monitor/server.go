package monitor

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"strings"
	"sync"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// Error codes of the ops-plane channel.
const (
	CodeAuthFailed     = "AuthenticationFailed"
	CodeBadRequest     = "BadRequest"
	CodeMonitorDead    = "MonitorDead"
	CodeConnectionLost = wire.CodeConnectionLostName
)

// Contract returns the explicit error interface of the channel: an
// admin verb can fail at the scope of the daemon it touched, the pool
// can disown an unknown target, and the transport can die — and the
// caller can tell which happened.
func Contract() *scope.Contract {
	return scope.NewContract("monitor", scope.ScopeNetwork, CodeConnectionLost).
		Declare(CodeBadRequest, scope.ScopeFunction).
		Declare(CodeAuthFailed, scope.ScopeLocalResource).
		Declare(CodeMonitorDead, scope.ScopeProcess).
		Declare("UnknownVerb", scope.ScopePool).
		Declare("UnknownTarget", scope.ScopePool)
}

// Server exposes one monitor over TCP.  A connection's first record
// declares what it is: msub makes it a subscriber session (one-way,
// server to client, until either side closes), madm makes it an admin
// session (strict request/reply).  Serving is the monitor's business
// only — accepting, authenticating, or losing a connection never
// touches the pool.
type Server struct {
	mon *Monitor
	key []byte

	// Mode selects the transport for every connection; set before
	// Listen.  ModeText is the legacy line protocol with
	// challenge/response authentication; any other mode serves the
	// framed wire.Session and accepts whichever of binary/secure the
	// client opens with.
	Mode wire.Mode

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates an ops-plane service for mon, authenticated by
// the shared key.
func NewServer(mon *Monitor, key []byte) *Server {
	return &Server{mon: mon, key: append([]byte(nil), key...), conns: make(map[net.Conn]struct{})}
}

// Listen starts the service and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("monitor: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the service and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	if s.Mode != wire.ModeText {
		s.serveSession(conn)
		return
	}
	s.serveText(conn)
}

// serveSession handles one framed connection (binary or secure).
func (s *Server) serveSession(conn net.Conn) {
	sess := wire.NewSession(bufio.NewReader(conn), conn, wire.Config{
		Secret: s.key,
		AuthFailure: func() *scope.Error {
			return scope.New(scope.ScopeLocalResource, CodeAuthFailed,
				"monitor authentication failed")
		},
	})
	defer sess.Release()
	if sess.ServerHandshake() != nil {
		return
	}
	cmd, payload, err := sess.ReadMsg()
	if err != nil {
		return
	}
	switch cmd {
	case cmdSub:
		from, err := ParseSub(string(payload))
		if err != nil {
			sess.WriteError(scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
				CodeBadRequest, scope.ScopeFunction)
			return
		}
		// Ack before registering the sink: once subscribed, the pump
		// goroutine owns the write half, and a concurrent ack would
		// race it.  A refused subscription (the monitor is dead)
		// follows the ack as an error frame in the stream.
		if sess.WriteMsg(wire.CmdOK) != nil {
			return
		}
		sink := &sessionSink{sess: sess, conn: conn}
		if err := s.mon.Subscribe(sink, from); err != nil {
			sess.WriteError(err, CodeMonitorDead, scope.ScopeProcess)
			return
		}
		// The stream is one-way from here: the pump goroutine writes
		// through the sink while this goroutine blocks on the read
		// half, waiting only for the client to hang up.  The session's
		// read and write halves are independent, so the split is safe.
		for {
			if _, _, err := sess.ReadMsg(); err != nil {
				break
			}
		}
		s.mon.Detach(sink)

	case cmdAdmin:
		for {
			verb, target, err := ParseAdmin(string(payload))
			if err != nil {
				sess.WriteError(scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
					CodeBadRequest, scope.ScopeFunction)
				return
			}
			detail, aerr := s.mon.Admin(verb, target)
			if aerr != nil {
				if sess.WriteError(aerr, CodeBadRequest, scope.ScopePool) != nil {
					return
				}
			} else if sess.WriteMsg(wire.CmdOK, []byte(EncodeAdminOK(verb, target, detail))) != nil {
				return
			}
			if cmd, payload, err = sess.ReadMsg(); err != nil || cmd != cmdAdmin {
				return
			}
		}
	}
}

// sessionSink adapts one framed subscriber connection to the Sink
// interface.  Closing it closes the connection, which also unblocks
// the serving goroutine's read.
type sessionSink struct {
	mu     sync.Mutex
	sess   *wire.Session
	conn   net.Conn
	closed bool
}

func (k *sessionSink) Deliver(cmd byte, line string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return fmt.Errorf("monitor: subscriber session closed")
	}
	return k.sess.WriteMsg(cmd, []byte(line))
}

func (k *sessionSink) Close() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return
	}
	k.closed = true
	k.conn.Close()
}

// serveText handles one legacy line-protocol connection: an HMAC
// challenge/response, then the same first-record dispatch, with
// records travelling as bare lines (their tags make the command byte
// redundant).
func (s *Server) serveText(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return
	}
	fmt.Fprintf(w, "challenge %s\n", hex.EncodeToString(nonce))
	if w.Flush() != nil {
		return
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "auth" || !s.verify(nonce, fields[1]) {
		fmt.Fprint(w, wire.EncodeError(
			scope.New(scope.ScopeLocalResource, CodeAuthFailed, "bad authenticator"),
			CodeAuthFailed, scope.ScopeLocalResource))
		w.Flush()
		return
	}
	fmt.Fprint(w, "ok\n")
	if w.Flush() != nil {
		return
	}

	line, err = r.ReadString('\n')
	if err != nil {
		return
	}
	line = strings.TrimSpace(line)
	switch {
	case strings.HasPrefix(line, "msub "):
		from, err := ParseSub(line)
		if err != nil {
			fmt.Fprint(w, wire.EncodeError(
				scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
				CodeBadRequest, scope.ScopeFunction))
			w.Flush()
			return
		}
		// Ack before registering the sink, for the same single-writer
		// reason as the framed path.
		fmt.Fprint(w, "ok\n")
		if w.Flush() != nil {
			return
		}
		sink := &textSink{conn: conn, w: w}
		if err := s.mon.Subscribe(sink, from); err != nil {
			fmt.Fprint(w, wire.EncodeError(err, CodeMonitorDead, scope.ScopeProcess))
			w.Flush()
			return
		}
		// Block on the read half until the client hangs up; the pump
		// writes through the sink's own lock.
		for {
			if _, err := r.ReadString('\n'); err != nil {
				break
			}
		}
		s.mon.Detach(sink)

	case strings.HasPrefix(line, "madm "):
		for {
			verb, target, err := ParseAdmin(line)
			if err != nil {
				fmt.Fprint(w, wire.EncodeError(
					scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err),
					CodeBadRequest, scope.ScopeFunction))
				w.Flush()
				return
			}
			detail, aerr := s.mon.Admin(verb, target)
			if aerr != nil {
				fmt.Fprint(w, wire.EncodeError(aerr, CodeBadRequest, scope.ScopePool))
			} else {
				fmt.Fprintf(w, "ok %s\n", EncodeAdminOK(verb, target, detail))
			}
			if w.Flush() != nil {
				return
			}
			raw, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimSpace(raw)
		}

	default:
		fmt.Fprint(w, wire.EncodeError(
			scope.New(scope.ScopeFunction, CodeBadRequest, "expected msub or madm, got %q", line),
			CodeBadRequest, scope.ScopeFunction))
		w.Flush()
	}
}

func (s *Server) verify(nonce []byte, mac string) bool {
	want := authenticate(s.key, nonce)
	got, err := hex.DecodeString(mac)
	if err != nil {
		return false
	}
	return hmac.Equal(got, want)
}

// authenticate computes the HMAC response for a nonce — the same
// construction the remote I/O channel uses.
func authenticate(key, nonce []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(nonce)
	return m.Sum(nil)
}

// textSink adapts one line-protocol subscriber to the Sink interface.
type textSink struct {
	mu     sync.Mutex
	conn   net.Conn
	w      *bufio.Writer
	closed bool
}

func (k *textSink) Deliver(cmd byte, line string) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return fmt.Errorf("monitor: subscriber session closed")
	}
	if _, err := fmt.Fprintln(k.w, line); err != nil {
		return err
	}
	return k.w.Flush()
}

func (k *textSink) Close() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.closed {
		return
	}
	k.closed = true
	k.conn.Close()
}
