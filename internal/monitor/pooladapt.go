package monitor

import (
	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/pool"
)

// PoolTargets indexes every daemon in the pool for admin verbs.
func PoolTargets(p *pool.Pool) Targets {
	t := Targets{
		Startds: make(map[string]*daemon.Startd, len(p.Startds)),
		Schedds: make(map[string]*daemon.Schedd, len(p.Schedds)),
	}
	for _, sd := range p.Startds {
		t.Startds[sd.Name()] = sd
	}
	for _, s := range p.Schedds {
		t.Schedds[s.Name()] = s
	}
	return t
}

// PoolMetrics adapts the pool summary into streamed snapshots stamped
// with the pool clock.
func PoolMetrics(p *pool.Pool) func() Snapshot {
	return func() Snapshot {
		m := p.Metrics()
		return Snapshot{
			T:            int64(p.Engine.Now()),
			Jobs:         int64(m.Jobs),
			Completed:    int64(m.Completed),
			Unexecutable: int64(m.Unexecutable),
			Held:         int64(m.Held),
			Unfinished:   int64(m.Unfinished),
			Attempts:     int64(m.Attempts),
			Evictions:    int64(m.Evictions),
			Preemptions:  int64(m.Preemptions),
			Requeues:     int64(m.Requeues),
			Recoveries:   int64(m.Recoveries),
			GoodputNS:    int64(m.Goodput),
			BadputNS:     int64(m.Badput),
			Sent:         int64(m.MessagesSent),
			Lost:         int64(m.MessagesLost),
		}
	}
}

// Attach builds a monitor over a simulated pool and the recorder its
// params trace into — the one-call setup the experiments and the CLI
// use.
func Attach(p *pool.Pool, rec *obs.Recorder, name string) *Monitor {
	return New(Config{
		Name:     name,
		Clock:    p.Engine,
		Recorder: rec,
		Metrics:  PoolMetrics(p),
		Targets:  PoolTargets(p),
	})
}
