package monitor

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
)

// testPool builds a small Standard Universe workload with a recorder
// wired into the daemon params, the shape the ops plane streams.
func testPool(seed int64, machines []daemon.MachineConfig, jobs int) (*pool.Pool, *obs.Recorder) {
	rec := obs.NewRecorder()
	params := daemon.DefaultParams()
	params.Trace = rec
	params.CheckpointInterval = 10 * time.Minute
	params.CheckpointOverhead = 15 * time.Second
	params.MaxAttempts = 100
	p := pool.New(pool.Config{Seed: seed, Params: params, Machines: machines})
	p.SubmitStandard(jobs, pool.UniformCompute(90*time.Minute))
	return p, rec
}

// drive replicates Pool.Run's stepping loop with a pump after every
// step — the way a monitor rides a simulated pool.
func drive(p *pool.Pool, mon *Monitor, limit time.Duration, at map[time.Duration]func()) {
	deadline := p.Engine.Now().Add(limit)
	for p.Engine.Now() < deadline && !p.AllTerminal() {
		p.Engine.RunFor(time.Minute)
		if fn, ok := at[time.Duration(p.Engine.Now())]; ok {
			fn()
			delete(at, time.Duration(p.Engine.Now()))
		}
		if mon != nil {
			mon.Pump()
		}
	}
}

// dispositions renders every job's final state and event log — the
// bytes the scope proof compares.
func dispositions(p *pool.Pool) string {
	var sb strings.Builder
	for _, s := range p.Schedds {
		for _, j := range s.Jobs() {
			fmt.Fprintf(&sb, "== %s job %d %s\n", s.Name(), j.ID, j.State)
			sb.WriteString(j.EventLog())
		}
	}
	return sb.String()
}

// TestStreamMatchesTrace pins stream fidelity: what a subscriber
// collects is exactly what the pool recorded, event for event, and a
// late subscriber catches up on the whole backlog.
func TestStreamMatchesTrace(t *testing.T) {
	p, rec := testPool(7, pool.UniformMachines(4, 2048), 4)
	mon := Attach(p, rec, "mon")

	early := NewCollector()
	if err := mon.Subscribe(early, 0); err != nil {
		t.Fatal(err)
	}
	var late *Collector
	drive(p, mon, 24*time.Hour, map[time.Duration]func(){
		time.Hour: func() {
			late = NewCollector()
			if err := mon.Subscribe(late, 0); err != nil {
				t.Fatal(err)
			}
		},
	})
	mon.Pump()

	want := rec.Events()
	if len(want) == 0 {
		t.Fatal("workload recorded no events")
	}
	for name, col := range map[string]*Collector{"early": early, "late": late} {
		got := col.Events()
		if len(got) != len(want) {
			t.Fatalf("%s subscriber got %d events, pool recorded %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s subscriber event %d differs: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
	snaps := early.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no metrics snapshots streamed")
	}
	final := snaps[len(snaps)-1]
	m := p.Metrics()
	if final.Completed != int64(m.Completed) || final.Jobs != int64(m.Jobs) {
		t.Fatalf("final snapshot %+v disagrees with pool metrics %+v", final, m)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].T < snaps[i-1].T {
			t.Fatalf("snapshot clock went backwards: %d then %d", snaps[i-1].T, snaps[i].T)
		}
	}

	// The streamed trace supports the same span assembly as the pool's.
	if len(rec.Spans()) != len(early.Recorder().Spans()) {
		t.Fatal("streamed spans differ from pool spans")
	}
}

// TestMonitorScopeProof is the attach/detach failure-scope property:
// the pool's dispositions and trace are byte-equal with no monitor,
// with a healthy monitor, and with a subscriber that dies mid-stream
// and is dropped.  A dead subscriber's failure reaches nothing but
// its own session.
func TestMonitorScopeProof(t *testing.T) {
	machines := func() []daemon.MachineConfig { return pool.UniformMachines(4, 2048) }

	run := func(attach bool, failing bool) (string, string) {
		p, rec := testPool(3, machines(), 6)
		var mon *Monitor
		if attach {
			mon = Attach(p, rec, "mon")
			if err := mon.Subscribe(NewCollector(), 0); err != nil {
				t.Fatal(err)
			}
			if failing {
				if err := mon.Subscribe(FailAfter(25), 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		drive(p, mon, 24*time.Hour, nil)
		return dispositions(p), rec.JSONL(obs.ExportOptions{})
	}

	bareDisp, bareTrace := run(false, false)
	monDisp, monTrace := run(true, false)
	dropDisp, dropTrace := run(true, true)

	if bareDisp != monDisp || bareTrace != monTrace {
		t.Fatal("attaching a monitor changed the pool's bytes")
	}
	if bareDisp != dropDisp || bareTrace != dropTrace {
		t.Fatal("a dying subscriber changed the pool's bytes")
	}
}

// TestSubscriberDropIsScoped pins the drop mechanics: the failed sink
// closes, the healthy one keeps streaming, and the loss lands in the
// monitor's own log, not the pool trace.
func TestSubscriberDropIsScoped(t *testing.T) {
	p, rec := testPool(9, pool.UniformMachines(2, 2048), 2)
	mon := Attach(p, rec, "mon")
	healthy, failing := NewCollector(), FailAfter(10)
	if err := mon.Subscribe(healthy, 0); err != nil {
		t.Fatal(err)
	}
	if err := mon.Subscribe(failing, 0); err != nil {
		t.Fatal(err)
	}
	drive(p, mon, 24*time.Hour, nil)
	mon.Pump()

	if !failing.Closed() {
		t.Error("failed sink was not closed")
	}
	if healthy.Closed() {
		t.Error("healthy sink was closed")
	}
	if mon.Dropped() != 1 || mon.Subscribers() != 1 {
		t.Errorf("dropped=%d subscribers=%d, want 1 and 1", mon.Dropped(), mon.Subscribers())
	}
	if got, want := len(healthy.Events()), len(rec.Events()); got != want {
		t.Errorf("healthy subscriber got %d of %d events", got, want)
	}
	var logged bool
	for _, line := range mon.Log() {
		if strings.Contains(line, "subscriber dropped") {
			logged = true
		}
	}
	if !logged {
		t.Error("the drop is missing from the monitor's log")
	}
}

// TestKill pins daemon death: every session closes, new subscribers
// are refused with process scope, and pumping is a no-op.
func TestKill(t *testing.T) {
	p, rec := testPool(4, pool.UniformMachines(2, 2048), 2)
	mon := Attach(p, rec, "mon")
	a, b := NewCollector(), NewCollector()
	mon.Subscribe(a, 0)
	mon.Subscribe(b, 0)
	if n := mon.Kill(); n != 2 {
		t.Fatalf("Kill closed %d sessions, want 2", n)
	}
	if !a.Closed() || !b.Closed() {
		t.Fatal("kill left a session open")
	}
	if !mon.Killed() {
		t.Fatal("monitor does not report killed")
	}
	err := mon.Subscribe(NewCollector(), 0)
	se, ok := scope.AsError(err)
	if !ok || se.Scope != scope.ScopeProcess || se.Code != "MonitorDead" {
		t.Fatalf("subscribe after kill: %v, want process-scope MonitorDead", err)
	}
	if _, err := mon.Admin("drain", "c000"); err == nil {
		t.Fatal("admin verb on a killed monitor should fail")
	}
	before := len(a.Events())
	p.Run(time.Hour)
	mon.Pump()
	if len(a.Events()) != before {
		t.Fatal("a killed monitor delivered events")
	}
}

// TestSubscribeRejectsBadCursor pins the in-process mirror of
// ParseSub's validation: a negative cursor is refused outright rather
// than parked where the pump would slice events[sub.next:] with it
// and panic.
func TestSubscribeRejectsBadCursor(t *testing.T) {
	p, rec := testPool(11, pool.UniformMachines(2, 2048), 1)
	mon := Attach(p, rec, "mon")
	err := mon.Subscribe(NewCollector(), -1)
	se, ok := scope.AsError(err)
	if !ok || se.Scope != scope.ScopeFunction || se.Code != CodeBadRequest {
		t.Fatalf("subscribe from -1: %v, want function-scope %s", err, CodeBadRequest)
	}
	if mon.Subscribers() != 0 {
		t.Fatal("a refused subscriber was registered")
	}
	p.Run(time.Hour)
	mon.Pump() // must not panic on a parked bad cursor
}

// TestAdminRefusedByConcurrentKill pins the verb/kill ordering: a
// kill that lands after Admin's entry check but before the verb
// reaches the pool thread still refuses the verb — a killed monitor
// mutates nothing.
func TestAdminRefusedByConcurrentKill(t *testing.T) {
	p, rec := testPool(16, pool.UniformMachines(2, 2048), 1)
	var mon *Monitor
	mon = New(Config{
		Name: "mon", Clock: p.Engine, Recorder: rec,
		Metrics: PoolMetrics(p), Targets: PoolTargets(p),
		// The kill wins the race to the pool thread.
		Do: func(fn func()) {
			mon.Kill()
			fn()
		},
	})
	_, err := mon.Admin("drain", p.Startds[0].Name())
	se, ok := scope.AsError(err)
	if !ok || se.Scope != scope.ScopeProcess || se.Code != "MonitorDead" {
		t.Fatalf("admin under concurrent kill: %v, want process-scope MonitorDead", err)
	}
	if p.Startds[0].Draining() || p.Startds[0].Drained() {
		t.Fatal("a killed monitor drained a machine")
	}
}

// TestNormalizeStream pins the live-comparable form: streamed events
// carry no timestamps and no free-form detail.
func TestNormalizeStream(t *testing.T) {
	p, rec := testPool(6, pool.UniformMachines(2, 2048), 2)
	mon := New(Config{
		Name: "mon", Clock: p.Engine, Recorder: rec,
		Metrics: PoolMetrics(p), Normalize: true, Targets: PoolTargets(p),
	})
	col := NewCollector()
	mon.Subscribe(col, 0)
	drive(p, mon, 24*time.Hour, nil)
	mon.Pump()
	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("nothing streamed")
	}
	for _, ev := range evs {
		if ev.T != 0 || ev.Detail != "" {
			t.Fatalf("normalized stream leaked wall data: %+v", ev)
		}
	}
}

// TestAdminVerbs drives the full drain lifecycle through the verb
// interface and pins the failure scope of every miss: unknown verbs
// and targets are the pool's explicit errors, a verb against a dead
// daemon carries that daemon's scope.
func TestAdminVerbs(t *testing.T) {
	machines := []daemon.MachineConfig{
		{Name: "big", Memory: 4096, AdvertiseJava: true},
		{Name: "small", Memory: 1024, AdvertiseJava: true},
	}
	p, rec := testPool(5, machines, 1)
	mon := Attach(p, rec, "mon")

	// Unknown verb and unknown targets are pool-scope errors naming
	// what was asked.
	for _, bad := range [][2]string{
		{"reboot", "big"}, {"drain", "nosuch"}, {"restart", "nosuch"}, {"compact", "big"},
	} {
		_, err := mon.Admin(bad[0], bad[1])
		se, ok := scope.AsError(err)
		if !ok || se.Scope != scope.ScopePool {
			t.Fatalf("admin %s %s: %v, want a pool-scope error", bad[0], bad[1], err)
		}
	}

	// Drain mid-run: the resident vacates with its checkpoint and the
	// job finishes on the other machine.
	drive(p, mon, 30*time.Minute, nil)
	detail, err := mon.Admin("drain", "big")
	if err != nil {
		t.Fatalf("drain big: %v", err)
	}
	if !strings.Contains(detail, "draining big") {
		t.Fatalf("drain detail %q", detail)
	}
	if _, err := mon.Admin("drain", "big"); err != nil {
		t.Fatalf("drain must be idempotent: %v", err)
	}
	drive(p, mon, 48*time.Hour, nil)
	var big *daemon.Startd
	for _, sd := range p.Startds {
		if sd.Name() == "big" {
			big = sd
		}
	}
	if !big.Drained() {
		t.Fatal("big did not reach drained")
	}
	if m := p.Metrics(); m.Completed != 1 {
		t.Fatalf("job did not survive the drain: %+v", m)
	}
	if att := p.Schedd.Jobs()[0].LastAttempt(); att.Machine != "small" {
		t.Fatalf("job finished on %s, want small", att.Machine)
	}

	// Resume restores matching.
	if _, err := mon.Admin("resume", "big"); err != nil {
		t.Fatal(err)
	}
	if big.Drained() || big.Draining() {
		t.Fatal("resume did not clear the drain")
	}

	// Drain against a dead machine fails at remote-resource scope —
	// the scope of the machine the verb touched.
	big.Crash()
	_, err = mon.Admin("drain", "big")
	se, ok := scope.AsError(err)
	if !ok || se.Scope != scope.ScopeRemoteResource || se.Code != "MachineDown" {
		t.Fatalf("drain of a dead machine: %v", err)
	}
	big.Restart()

	// Restart bounces a startd through its crash/recover path.
	if _, err := mon.Admin("restart", "small"); err != nil {
		t.Fatal(err)
	}

	// Compact folds the schedd journal; against a crashed schedd it
	// fails at local-resource scope.
	if detail, err = mon.Admin("compact", "schedd"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "compacted") {
		t.Fatalf("compact detail %q", detail)
	}
	p.Schedd.Crash()
	_, err = mon.Admin("compact", "schedd")
	se, ok = scope.AsError(err)
	if !ok || se.Scope != scope.ScopeLocalResource || se.Code != "ScheddDown" {
		t.Fatalf("compact of a dead schedd: %v", err)
	}

	// Restart recovers the schedd from its own journal.
	if _, err := mon.Admin("restart", "schedd"); err != nil {
		t.Fatal(err)
	}
	if p.Schedd.Crashed() {
		t.Fatal("schedd still down after restart")
	}
}

// TestAdminRestartScheddMidRun bounces the schedd while jobs are in
// flight: the journal replay keeps every job, and the workload still
// completes.
func TestAdminRestartScheddMidRun(t *testing.T) {
	p, rec := testPool(8, pool.UniformMachines(4, 2048), 6)
	mon := Attach(p, rec, "mon")
	drive(p, mon, 24*time.Hour, map[time.Duration]func(){
		45 * time.Minute: func() {
			if _, err := mon.Admin("restart", "schedd"); err != nil {
				t.Errorf("restart schedd: %v", err)
			}
		},
	})
	m := p.Metrics()
	if m.Completed != 6 {
		t.Fatalf("workload did not complete across the restart: %+v", m)
	}
	if m.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", m.Recoveries)
	}
}
