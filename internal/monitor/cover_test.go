package monitor

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// TestMonitorAccessors pins the small observable surface: the name,
// the delivery counter, and detach semantics for known and unknown
// sinks.
func TestMonitorAccessors(t *testing.T) {
	p, rec := testPool(21, pool.UniformMachines(2, 2048), 1)
	mon := Attach(p, rec, "ops")
	if mon.Name() != "ops" {
		t.Fatalf("name = %q", mon.Name())
	}
	col := NewCollector()
	if err := mon.Subscribe(col, 0); err != nil {
		t.Fatal(err)
	}
	drive(p, mon, 24*time.Hour, nil)
	mon.Pump()
	if mon.Delivered() == 0 {
		t.Error("nothing delivered after a full run")
	}
	// Detaching a sink that was never subscribed is a no-op.
	mon.Detach(NewCollector())
	if mon.Subscribers() != 1 {
		t.Fatalf("subscribers = %d after a bogus detach", mon.Subscribers())
	}
	mon.Detach(col)
	if mon.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after detach", mon.Subscribers())
	}
	if !col.Closed() {
		t.Error("detach did not close the sink")
	}
	// A second delivery to a closed collector is refused.
	if err := col.Deliver(cmdEvent, ""); err == nil {
		t.Error("a closed collector accepted delivery")
	}
}

// TestContractDeclares pins the channel's explicit error interface.
func TestContractDeclares(t *testing.T) {
	c := Contract()
	for code, want := range map[string]scope.Scope{
		CodeBadRequest:  scope.ScopeFunction,
		CodeAuthFailed:  scope.ScopeLocalResource,
		CodeMonitorDead: scope.ScopeProcess,
		"UnknownVerb":   scope.ScopePool,
		"UnknownTarget": scope.ScopePool,
	} {
		s, ok := c.Admits(code)
		if !ok || s != want {
			t.Errorf("contract admits %s at %v (ok=%v), want %v", code, s, ok, want)
		}
	}
}

// TestServedSubscribeAfterKill: a subscription against a killed
// monitor is acked at the transport level and then refused in-stream,
// with the process-scope MonitorDead error intact across the wire —
// in both the framed and the legacy text protocol.
func TestServedSubscribeAfterKill(t *testing.T) {
	for _, mode := range []wire.Mode{wire.ModeText, wire.ModeBinary} {
		t.Run(mode.String(), func(t *testing.T) {
			p, rec := testPool(22, pool.UniformMachines(2, 2048), 1)
			_ = p
			mon := Attach(p, rec, "ops")
			mon.Kill()
			srv := NewServer(mon, opsKey)
			srv.Mode = mode
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cli, err := Dial(addr, mode, opsKey)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			if err := cli.Subscribe(0); err != nil {
				t.Fatalf("subscribe ack: %v", err)
			}
			_, _, err = cli.Next()
			se, ok := scope.AsError(err)
			if !ok || se.Code != CodeMonitorDead || se.Scope != scope.ScopeProcess {
				t.Fatalf("refusal over the wire = %v, want process-scope MonitorDead", err)
			}
		})
	}
}

// TestIsConnClosed pins the shapes a torn-down subscriber session
// reads as: a scoped ConnectionLost, the OS-level close strings, and
// nothing else.
func TestIsConnClosed(t *testing.T) {
	closed := []error{
		scope.Escape(scope.ScopeNetwork, CodeConnectionLost, io.EOF),
		errors.New("read tcp: use of closed network connection"),
		errors.New("read tcp: connection reset by peer"),
		fmt.Errorf("wrapped: %w", io.EOF),
	}
	for _, err := range closed {
		if !isConnClosed(err) {
			t.Errorf("%v not recognized as a closed connection", err)
		}
	}
	if isConnClosed(errors.New("bad record")) {
		t.Error("an ordinary error read as a closed connection")
	}
}

// TestParseRejectsOps extends the strict-parse suite to the control
// records: subscription, admin, and admin-ok lines that are damaged,
// non-canonical, or truncated must all refuse.
func TestParseRejectsOps(t *testing.T) {
	if _, err := ParseSub(EncodeSub(7)); err != nil {
		t.Fatalf("canonical sub rejected: %v", err)
	}
	for _, raw := range []string{
		"",
		"msub",
		"msub from=-1 crc=00000000",
		"mev from=1",
		EncodeSub(7) + " ",
		"msub from=07 crc=deadbeef",
	} {
		if _, err := ParseSub(raw); err == nil {
			t.Errorf("ParseSub accepted %q", raw)
		}
	}
	for _, raw := range []string{
		"",
		"madm verb=drain",
		"madm target=\"big\" verb=\"drain\"",
		EncodeAdmin("drain", "big") + "x",
	} {
		if _, _, err := ParseAdmin(raw); err == nil {
			t.Errorf("ParseAdmin accepted %q", raw)
		}
	}
	for _, raw := range []string{
		"",
		"mok verb=\"drain\"",
		EncodeAdminOK("drain", "big", "draining") + "x",
	} {
		if _, _, _, err := ParseAdminOK(raw); err == nil {
			t.Errorf("ParseAdminOK accepted %q", raw)
		}
	}
	if _, _, _, err := ParseAdminOK(EncodeAdminOK("drain", "big", "draining big")); err != nil {
		t.Fatalf("canonical admin-ok rejected: %v", err)
	}
}

// reseal recomputes a record's CRC trailer after a test mutates its
// payload, so the parse failure under test is the field's, not the
// checksum's.
func reseal(t *testing.T, s string) string {
	t.Helper()
	i := strings.LastIndex(s, " crc=")
	if i < 0 {
		t.Fatalf("no CRC trailer in %q", s)
	}
	payload := s[:i]
	return fmt.Sprintf("%s crc=%08x", payload, crc32.ChecksumIEEE([]byte(payload)))
}

// TestParseEventRejectsEveryField walks the canonical event record and
// damages each key in turn — with the CRC re-sealed, so the strict
// field parse itself must refuse, whichever field it is: no prefix
// parsing, no field skipping.
func TestParseEventRejectsEveryField(t *testing.T) {
	canonical := EncodeEvent(sampleEvents[1])
	if _, err := ParseEvent(canonical); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"t", "comp", "kind", "job", "code", "scope", "ekind", "detail", "value"} {
		old := key + "="
		mut := strings.Replace(canonical, old, "x"+old, 1)
		if mut == canonical {
			t.Fatalf("field %s not found in %q", key, canonical)
		}
		if _, err := ParseEvent(reseal(t, mut)); err == nil {
			t.Errorf("ParseEvent accepted a damaged %s field", key)
		}
	}
	// Unquoted and badly-terminated strings refuse too.
	for _, mut := range []string{
		strings.Replace(canonical, "comp=\"", "comp=", 1),
		strings.Replace(canonical, "\" kind=", "\"kind=", 1),
	} {
		if _, err := ParseEvent(reseal(t, mut)); err == nil {
			t.Errorf("ParseEvent accepted %q", mut)
		}
	}
	// A snapshot with one damaged field refuses the same way.
	snap := EncodeSnapshot(Snapshot{T: 5, Jobs: 2, Completed: 1})
	if _, err := ParseSnapshot(reseal(t, strings.Replace(snap, "held=", "xheld=", 1))); err == nil {
		t.Error("ParseSnapshot accepted a damaged field")
	}
}
