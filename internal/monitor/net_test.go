package monitor

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

var opsKey = []byte("ops-plane-secret")

// TestServedStream runs the full attach/stream/admin/detach cycle
// over a real TCP connection in each transport mode: the streamed
// trace matches the pool's, admin verbs round-trip with their scoped
// errors intact, and a server-side drop ends the subscription cleanly.
func TestServedStream(t *testing.T) {
	for _, mode := range []wire.Mode{wire.ModeText, wire.ModeBinary, wire.ModeSecure} {
		t.Run(mode.String(), func(t *testing.T) {
			p, rec := testPool(12, pool.UniformMachines(2, 2048), 2)
			mon := Attach(p, rec, "mon")
			srv := NewServer(mon, opsKey)
			srv.Mode = mode
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			sub, err := Dial(addr, mode, opsKey)
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()
			if err := sub.Subscribe(0); err != nil {
				t.Fatal(err)
			}
			for mon.Subscribers() == 0 {
				time.Sleep(time.Millisecond)
			}
			col := NewCollector()
			done := make(chan error, 1)
			go func() { done <- sub.Collect(col) }()

			adm, err := Dial(addr, mode, opsKey)
			if err != nil {
				t.Fatal(err)
			}
			defer adm.Close()

			drive(p, mon, 24*time.Hour, nil)
			mon.Pump()

			// Admin verbs round-trip, including the scoped miss.
			detail, err := adm.Admin("compact", "schedd")
			if err != nil || !strings.Contains(detail, "compacted") {
				t.Fatalf("compact over the wire: %q, %v", detail, err)
			}
			_, err = adm.Admin("drain", "nosuch")
			se, ok := scope.AsError(err)
			if !ok || se.Scope != scope.ScopePool || se.Code != "UnknownTarget" {
				t.Fatalf("unknown target over the wire: %v", err)
			}
			_, err = adm.Admin("reboot", "c000")
			if se, ok = scope.AsError(err); !ok || se.Code != "UnknownVerb" {
				t.Fatalf("unknown verb over the wire: %v", err)
			}

			// The compact verb itself traced; stream the tail too.
			mon.Pump()

			// A server-side drop closes the subscriber session cleanly.
			if n := mon.DropSubscribers(); n != 1 {
				t.Fatalf("dropped %d subscribers, want 1", n)
			}
			if err := <-done; err != nil {
				t.Fatalf("collect after drop: %v", err)
			}
			want := rec.Events()
			got := col.Events()
			if len(got) != len(want) {
				t.Fatalf("streamed %d events, pool recorded %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("event %d differs over the wire: %+v != %+v", i, got[i], want[i])
				}
			}
			if len(col.Snapshots()) == 0 {
				t.Fatal("no snapshots over the wire")
			}
		})
	}
}

// TestServedAuthFailure pins the authentication error in every mode:
// a client with the wrong key is refused before any record flows.
func TestServedAuthFailure(t *testing.T) {
	for _, mode := range []wire.Mode{wire.ModeText, wire.ModeBinary, wire.ModeSecure} {
		t.Run(mode.String(), func(t *testing.T) {
			p, rec := testPool(13, pool.UniformMachines(2, 2048), 1)
			mon := Attach(p, rec, "mon")
			_ = p
			srv := NewServer(mon, opsKey)
			srv.Mode = mode
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cli, err := Dial(addr, mode, []byte("wrong"))
			if err == nil {
				cli.Close()
				t.Fatal("a wrong key authenticated")
			}
		})
	}
}

// TestDeliverNeverBlocksOnBackpressure pins the pump-stall fix: a
// subscriber that stops reading (an unread net.Pipe — the hardest
// possible backpressure, zero kernel buffering) never blocks Deliver.
// The sink buffers into its bounded queue, overflows, fails, and
// closes its connection, all without the delivering goroutine — which
// in production holds the monitor lock inside the pool stepping
// loop — ever touching the network.
func TestDeliverNeverBlocksOnBackpressure(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	w := bufio.NewWriter(server)
	sink := newAsyncSink(server, func(_ byte, line string) error {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		return w.Flush()
	})

	overflowed := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 4*subscriberQueueDepth; i++ {
			if err = sink.Deliver(cmdEvent, "rec"); err != nil {
				break
			}
		}
		overflowed <- err
	}()
	select {
	case err := <-overflowed:
		if err == nil || !strings.Contains(err.Error(), "behind") {
			t.Fatalf("overflow error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Deliver blocked on an unread subscriber")
	}

	// The failure is permanent and the writer goroutine exits.
	if err := sink.Deliver(cmdEvent, "rec"); err == nil {
		t.Fatal("a failed sink accepted delivery")
	}
	sink.Close()
	select {
	case <-sink.done:
	case <-time.After(10 * time.Second):
		t.Fatal("writer goroutine did not exit after the overflow")
	}
}

// TestServedBadFirstFrame pins the channel contract across
// transports: a framed connection whose first record is neither msub
// nor madm gets an explicit BadRequest error frame — the same refusal
// the text path gives — not a silent close.
func TestServedBadFirstFrame(t *testing.T) {
	p, rec := testPool(15, pool.UniformMachines(2, 2048), 1)
	_ = p
	mon := Attach(p, rec, "mon")
	srv := NewServer(mon, opsKey)
	srv.Mode = wire.ModeBinary
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sess := wire.NewSession(bufio.NewReader(conn), conn,
		wire.Config{Mode: wire.ModeBinary, Secret: opsKey})
	defer sess.Release()
	if err := sess.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	if err := sess.WriteMsg(cmdEvent, []byte("noise")); err != nil {
		t.Fatal(err)
	}
	cmd, payload, err := sess.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if cmd != wire.CmdErr {
		t.Fatalf("reply %#x, want CmdErr", cmd)
	}
	se, derr := wire.DecodeErrorPayload(payload)
	if derr != nil {
		t.Fatal(derr)
	}
	if se.Scope != scope.ScopeFunction || se.Code != CodeBadRequest {
		t.Fatalf("refusal %v, want function-scope %s", se, CodeBadRequest)
	}
}

// TestKillMidStreamOverWire is the tentpole's kill guarantee, over a
// real socket: killing the monitor daemon mid-stream closes only the
// subscriber sessions, and the pool's dispositions are byte-identical
// to a run that never had a monitor at all.
func TestKillMidStreamOverWire(t *testing.T) {
	bare := func() string {
		p, _ := testPool(14, pool.UniformMachines(3, 2048), 4)
		p.Run(24 * time.Hour)
		return dispositions(p)
	}()

	p, rec := testPool(14, pool.UniformMachines(3, 2048), 4)
	mon := Attach(p, rec, "mon")
	srv := NewServer(mon, opsKey)
	srv.Mode = wire.ModeBinary
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cols := make([]*Collector, 2)
	dones := make([]chan error, 2)
	for i := range cols {
		cli, err := Dial(addr, wire.ModeBinary, opsKey)
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()
		if err := cli.Subscribe(0); err != nil {
			t.Fatal(err)
		}
		cols[i] = NewCollector()
		dones[i] = make(chan error, 1)
		go func(c *Client, col *Collector, done chan error) {
			done <- c.Collect(col)
		}(cli, cols[i], dones[i])
	}
	for mon.Subscribers() != 2 {
		time.Sleep(time.Millisecond)
	}

	drive(p, mon, 24*time.Hour, map[time.Duration]func(){
		45 * time.Minute: func() {
			if n := mon.Kill(); n != 2 {
				t.Errorf("kill closed %d sessions, want 2", n)
			}
		},
	})
	for i := range dones {
		if err := <-dones[i]; err != nil {
			t.Fatalf("subscriber %d did not close cleanly: %v", i, err)
		}
	}
	if got := dispositions(p); got != bare {
		t.Fatal("killing the monitor mid-stream changed the pool's dispositions")
	}
	if m := p.Metrics(); m.Completed != 4 {
		t.Fatalf("workload did not complete under the kill: %+v", m)
	}
}
