package monitor

import (
	"sort"
	"sync"
	"testing"

	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/live"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/remoteio"
	"github.com/errscope/grid/internal/vfs"
)

// lineSink records the raw streamed records — the bytes a subscriber
// actually receives, before any client-side processing.
type lineSink struct {
	mu    sync.Mutex
	lines []string
}

func (k *lineSink) Deliver(cmd byte, line string) error {
	k.mu.Lock()
	k.lines = append(k.lines, line)
	k.mu.Unlock()
	return nil
}

func (k *lineSink) Close() {}

func (k *lineSink) sorted() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := append([]string(nil), k.lines...)
	sort.Strings(out)
	return out
}

// liveStreamRun drives the live protocol stacks into a recorder and
// streams it through a normalizing monitor, returning the raw record
// lines.  Both the chirp and remoteio clients stamp their transport
// deaths with time.Now().UnixNano() and embed ephemeral port numbers
// in the error detail — exactly the wall data the streamed
// normalization must strip.
func liveStreamRun(t *testing.T) []string {
	t.Helper()
	rec := obs.NewRecorder()
	rt := live.New(0)
	defer rt.Close()

	// Chirp: open a file, then lose the server mid-session.
	fs := vfs.New()
	fs.WriteFile("/data", []byte("payload"))
	csrv := chirp.NewServer(&chirp.VFSBackend{FS: fs}, "ck")
	caddr, err := csrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := chirp.Dial(caddr, "ck")
	if err != nil {
		t.Fatal(err)
	}
	cc.Trace = rec
	cc.TraceJob = 7
	fd, err := cc.Open("/data", chirp.FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	csrv.Close()
	if _, err := cc.Read(fd, 4); err == nil {
		t.Fatal("read through a dead server should fail")
	}
	cc.Close()

	// Remote I/O: same shape, second component.
	rsrv := remoteio.NewServer(vfs.New(), []byte("key"))
	raddr, err := rsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := remoteio.Dial(raddr, []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	rc.Trace = rec
	rc.TraceJob = 9
	rsrv.Close()
	if _, err := rc.Read("/x", 0, 4); err == nil {
		t.Fatal("read through a dead server should fail")
	}
	rc.Close()

	mon := New(Config{
		Name: "mon", Clock: rt, Recorder: rec,
		Normalize: true, Do: rt.Do,
	})
	sink := &lineSink{}
	if err := mon.Subscribe(sink, 0); err != nil {
		t.Fatal(err)
	}
	mon.Pump()
	return sink.sorted()
}

// TestLiveStreamNormalization is the satellite bug-hunt regression:
// the live stacks stamp events with the wall clock at emit time, so
// only normalization applied to the *streamed* records — not just the
// post-hoc JSONL export — makes two live runs comparable.  Two real
// runs, with real sockets dying and real time.Now() stamps, must
// stream byte-identical record sets.
func TestLiveStreamNormalization(t *testing.T) {
	a := liveStreamRun(t)
	b := liveStreamRun(t)
	if len(a) == 0 {
		t.Fatal("live run streamed nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("runs streamed %d vs %d records", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streamed records diverge at %d:\n%q\n%q", i, a[i], b[i])
		}
	}
	// And the streamed form decodes with no wall data left in it.
	for _, line := range a {
		ev, err := ParseEvent(line)
		if err != nil {
			t.Fatalf("streamed line does not parse: %v", err)
		}
		if ev.T != 0 || ev.Detail != "" {
			t.Fatalf("wall data leaked into the normalized stream: %+v", ev)
		}
	}
}
