package remoteio

import (
	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// ChirpBackend adapts the shadow remote I/O channel to the
// chirp.Backend interface, completing the Figure 2 data path: the
// job's I/O library speaks Chirp to the proxy in the starter, and the
// proxy forwards each operation over the shadow channel to the submit
// machine's file system.
//
// The adapter is also a scope-widening layer (Section 3.3): a lost
// shadow channel is a network-scope escape at the transport, but from
// the execution site's point of view it means the submit-side
// resource is unavailable — local-resource scope, which the shadow's
// manager must handle.
type ChirpBackend struct {
	Client *Client
}

var _ chirp.Backend = (*ChirpBackend)(nil)

// widen converts transport escapes to ShadowUnavailableError at
// local-resource scope; explicit errors pass through unchanged.
func widen(err error) error {
	if err == nil {
		return nil
	}
	se, ok := scope.AsError(err)
	if ok && se.Kind == scope.KindEscaping {
		return se.Widen(scope.ScopeLocalResource, "ShadowUnavailableError")
	}
	return err
}

// Open implements chirp.Backend.
func (b *ChirpBackend) Open(path string, flags chirp.OpenFlags) (chirp.File, error) {
	_, err := b.Client.Stat(path)
	if err != nil {
		if scope.ScopeOf(err) == scope.ScopeFile && flags&chirp.FlagCreate != 0 {
			if cerr := b.Client.Create(path); cerr != nil {
				return nil, widen(cerr)
			}
		} else {
			return nil, widen(err)
		}
	} else if flags&chirp.FlagTruncate != 0 {
		if terr := b.Client.Truncate(path); terr != nil {
			return nil, widen(terr)
		}
	}
	return &remoteFile{client: b.Client, path: path, flags: flags}, nil
}

// Unlink implements chirp.Backend.
func (b *ChirpBackend) Unlink(path string) error { return widen(b.Client.Unlink(path)) }

// Rename implements chirp.Backend.
func (b *ChirpBackend) Rename(oldPath, newPath string) error {
	return widen(b.Client.Rename(oldPath, newPath))
}

// Stat implements chirp.Backend.
func (b *ChirpBackend) Stat(path string) (vfs.Info, error) {
	info, err := b.Client.Stat(path)
	return info, widen(err)
}

// List implements chirp.Backend.
func (b *ChirpBackend) List(prefix string) ([]vfs.Info, error) {
	infos, err := b.Client.List(prefix)
	return infos, widen(err)
}

type remoteFile struct {
	client *Client
	path   string
	flags  chirp.OpenFlags
	closed bool
}

func (f *remoteFile) ReadAt(offset int64, length int) ([]byte, error) {
	if f.closed {
		return nil, scope.New(scope.ScopeFunction, chirp.CodeBadFD, "read on closed file %s", f.path)
	}
	if f.flags&chirp.FlagRead == 0 {
		return nil, scope.New(scope.ScopeFile, chirp.CodeAccessDenied, "%s not open for reading", f.path)
	}
	data, err := f.client.Read(f.path, offset, length)
	return data, widen(err)
}

func (f *remoteFile) WriteAt(offset int64, data []byte) (int, error) {
	if f.closed {
		return 0, scope.New(scope.ScopeFunction, chirp.CodeBadFD, "write on closed file %s", f.path)
	}
	if f.flags&chirp.FlagWrite == 0 {
		return 0, scope.New(scope.ScopeFile, chirp.CodeAccessDenied, "%s not open for writing", f.path)
	}
	n, err := f.client.Write(f.path, offset, data)
	return n, widen(err)
}

func (f *remoteFile) Size() (int64, error) {
	info, err := f.client.Stat(f.path)
	if err != nil {
		return 0, widen(err)
	}
	return info.Size, nil
}

func (f *remoteFile) Close() error {
	f.closed = true
	return nil
}
