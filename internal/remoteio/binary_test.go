package remoteio

import (
	"testing"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

func startShadowMode(t *testing.T, mode wire.Mode) (*vfs.FileSystem, *Server, string) {
	t.Helper()
	fs := vfs.New()
	srv := NewServer(fs, testKey)
	srv.Mode = mode
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return fs, srv, addr
}

func dialShadowBin(t *testing.T, addr string, mode wire.Mode) *Client {
	t.Helper()
	c, err := DialMode(addr, testKey, mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testShadowAllOps(t *testing.T, fs *vfs.FileSystem, c *Client) {
	t.Helper()
	fs.WriteFile("/in file", []byte("shadow  payload"))

	if data, err := c.Read("/in file", 0, 6); err != nil || string(data) != "shadow" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if data, err := c.Read("/in file", 8, 100); err != nil || string(data) != "payload" {
		t.Fatalf("read2 = %q, %v", data, err)
	}
	if err := c.Create("/out"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write("/out", 0, []byte("abcdef")); err != nil || n != 6 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := c.Truncate("/out"); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write("/out", 0, []byte("xy")); err != nil || n != 2 {
		t.Fatalf("rewrite = %d, %v", n, err)
	}
	info, err := c.Stat("/out")
	if err != nil || info.Size != 2 || info.Path != "/out" {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	infos, err := c.List("/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %+v, %v", infos, err)
	}
	// Consecutive spaces survive the binary encoding.
	if infos[0].Path != "/in file" && infos[1].Path != "/in file" {
		t.Fatalf("paths = %+v", infos)
	}
	if err := c.Rename("/out", "/moved to"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/moved to"); err != nil {
		t.Fatal(err)
	}

	// Explicit vfs errors cross the framed wire with their scope.
	_, err = c.Read("/absent", 0, 4)
	se, ok := scope.AsError(err)
	if !ok || se.Code != vfs.CodeFileNotFound || se.Scope != scope.ScopeFile {
		t.Fatalf("read missing = %v", err)
	}
}

func TestBinaryShadowAllOps(t *testing.T) {
	fs, _, addr := startShadowMode(t, wire.ModeBinary)
	testShadowAllOps(t, fs, dialShadowBin(t, addr, wire.ModeBinary))
}

func TestSecureShadowAllOps(t *testing.T) {
	fs, _, addr := startShadowMode(t, wire.ModeSecure)
	testShadowAllOps(t, fs, dialShadowBin(t, addr, wire.ModeSecure))
}

func TestBinaryShadowWrongKey(t *testing.T) {
	for _, mode := range []wire.Mode{wire.ModeBinary, wire.ModeSecure} {
		_, _, addr := startShadowMode(t, mode)
		_, err := DialMode(addr, []byte("wrong key"), mode)
		if err == nil {
			t.Fatalf("%s: wrong key accepted", mode)
		}
		se, ok := scope.AsError(err)
		if !ok || se.Code != CodeAuthFailed || se.Scope != scope.ScopeLocalResource {
			t.Errorf("%s: wrong key error = %v", mode, err)
		}
	}
}

func TestBinaryCredentialExpiry(t *testing.T) {
	fs, srv, addr := startShadowMode(t, wire.ModeSecure)
	fs.WriteFile("/f", []byte("data"))
	c := dialShadowBin(t, addr, wire.ModeSecure)
	if _, err := c.Read("/f", 0, 4); err != nil {
		t.Fatal(err)
	}
	srv.ExpireCredentials()
	_, err := c.Read("/f", 0, 4)
	se, ok := scope.AsError(err)
	if !ok || se.Code != CodeCredentialsExpired || se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindExplicit {
		t.Fatalf("expired = %v", err)
	}
	srv.RenewCredentials()
	if _, err := c.Read("/f", 0, 4); err != nil {
		t.Fatalf("renewal did not restore service: %v", err)
	}
}

// TestServerSessionKeyExpiry covers the server-side key budget: the
// RPC is refused explicitly with KeyExpired at local-resource scope,
// the session survives, and renewal restores it.
func TestServerSessionKeyExpiry(t *testing.T) {
	fs, srv, addr := startShadowMode(t, wire.ModeSecure)
	fs.WriteFile("/f", []byte("data"))
	c := dialShadowBin(t, addr, wire.ModeSecure)
	if _, err := c.Read("/f", 0, 4); err != nil {
		t.Fatal(err)
	}
	srv.ExpireSessionKeys()
	_, err := c.Read("/f", 0, 4)
	se, ok := scope.AsError(err)
	if !ok || se.Code != wire.CodeKeyExpired || se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindExplicit {
		t.Fatalf("key expiry = %v", err)
	}
	srv.RenewSessionKeys()
	if _, err := c.Read("/f", 0, 4); err != nil {
		t.Fatalf("renewal did not restore service: %v", err)
	}
}

// TestClientSessionKeyExpiry covers the client-side budget on the
// remoteio channel, classified like an expired credential.
func TestClientSessionKeyExpiry(t *testing.T) {
	fs, _, addr := startShadowMode(t, wire.ModeSecure)
	fs.WriteFile("/f", []byte("data"))
	c, err := DialOpts(addr, testKey, DialOptions{Mode: wire.ModeSecure, RekeyAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Sealed sends: proof(1), read(2), read(3) = budget; the next
	// refuses locally.
	for i := 0; i < 2; i++ {
		if _, err := c.Read("/f", 0, 4); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	_, err = c.Read("/f", 0, 4)
	se, ok := scope.AsError(err)
	if !ok || se.Code != wire.CodeKeyExpired || se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindEscaping {
		t.Fatalf("key expiry = %v", err)
	}
}

func TestBinaryErrorMessageWithConsecutiveSpaces(t *testing.T) {
	fs, _, addr := startShadowMode(t, wire.ModeBinary)
	fs.WriteFile("/ro", []byte("x"))
	fs.SetReadOnly("/ro", true)
	c := dialShadowBin(t, addr, wire.ModeBinary)
	_, err := c.Write("/ro", 0, []byte("y"))
	se, ok := scope.AsError(err)
	if !ok || se.Code != vfs.CodeAccessDenied {
		t.Fatalf("write ro = %v", err)
	}
}
