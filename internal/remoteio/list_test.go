package remoteio

import (
	"testing"

	"github.com/errscope/grid/internal/chirp"
)

func TestListRPC(t *testing.T) {
	fs, _, addr := startShadow(t)
	fs.WriteFile("/home/a.txt", []byte("12345"))
	fs.WriteFile("/home/b.txt", []byte("1"))
	fs.WriteFile("/tmp/x", []byte("1"))
	c := shadowClient(t, addr)

	infos, err := c.List("/home")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Path != "/home/a.txt" || infos[0].Size != 5 {
		t.Errorf("infos = %+v", infos)
	}
	// The session survives list traffic.
	if _, err := c.Stat("/tmp/x"); err != nil {
		t.Errorf("after list: %v", err)
	}
}

func TestListThroughBothHops(t *testing.T) {
	// getdir at the job's Chirp session forwards as list over the
	// shadow channel.
	fs, _, shadowAddr := startShadow(t)
	fs.WriteFile("/home/user/one", []byte("1"))
	fs.WriteFile("/home/user/two", []byte("22"))
	shadowChan, err := Dial(shadowAddr, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer shadowChan.Close()
	proxy := chirp.NewServer(&ChirpBackend{Client: shadowChan}, "ck")
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	job, err := chirp.Dial(proxyAddr, "ck")
	if err != nil {
		t.Fatal(err)
	}
	defer job.Close()

	infos, err := job.List("/home/user")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[1].Path != "/home/user/two" || infos[1].Size != 2 {
		t.Errorf("infos = %+v", infos)
	}
}
