package remoteio

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/errscope/grid/internal/faultinject"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/vfs"
)

// TestConcurrentTransportFailureSpans is the remoteio twin of the
// chirp test: several traced shadow channels die at once, and the
// recording is checked as a sorted span set rather than by event
// order, which goroutine scheduling would make flaky.
func TestConcurrentTransportFailureSpans(t *testing.T) {
	fs := vfs.New()
	if err := fs.WriteFile("/data", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(fs, testKey)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 6
	rec := obs.NewRecorder()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			px, err := faultinject.NewProxy(addr, faultinject.ConnFault{CutToClient: 96})
			if err != nil {
				errs[i] = err
				return
			}
			defer px.Close()
			c, err := Dial(px.Addr(), testKey)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.Trace = rec
			c.TraceJob = int64(i + 1)
			for n := 0; n < 64; n++ {
				if _, err := c.Read("/data", 0, 4096); err != nil {
					return
				}
			}
			errs[i] = fmt.Errorf("client %d survived the cut connection", i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	got := rec.SortedSpanSet()
	want := make([]string, 0, clients)
	for i := 1; i <= clients; i++ {
		want = append(want, fmt.Sprintf(
			"job=%d origin=remoteio-client ConnectionLost network/escaping -> network disp= hops=remoteio-client ConnectionLost network/escaping",
			i))
	}
	if len(got) != len(want) {
		t.Fatalf("spans = %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span[%d]:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
	if n := rec.Counter("remoteio.transport_failures"); n != clients {
		t.Errorf("transport_failures = %d, want %d (one per connection death)", n, clients)
	}
}
