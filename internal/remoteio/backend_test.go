package remoteio

import (
	"bytes"
	"strings"
	"testing"

	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// proxyPair wires a chirp session whose backend forwards over a live
// shadow channel, returning the submit fs and the job-side client.
func proxyPair(t *testing.T) (*vfs.FileSystem, *chirp.Client) {
	t.Helper()
	fs, _, shadowAddr := startShadow(t)
	shadowChan, err := Dial(shadowAddr, testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shadowChan.Close() })
	proxy := chirp.NewServer(&ChirpBackend{Client: shadowChan}, "ck")
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	job, err := chirp.Dial(proxyAddr, "ck")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { job.Close() })
	return fs, job
}

func TestChirpBackendFullSurface(t *testing.T) {
	fs, job := proxyPair(t)
	fs.WriteFile("/data/in", []byte("0123456789"))

	// Open + sequential read through both hops (exercises Size for
	// append and ReadAt).
	fd, err := job.Open("/data/in", chirp.FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := job.Read(fd, 4)
	if err != nil || string(got) != "0123" {
		t.Fatalf("read = %q, %v", got, err)
	}
	job.CloseFD(fd)

	// Append mode forces a Size() call on the remote file.
	afd, err := job.Open("/data/in", chirp.FlagWrite|chirp.FlagAppend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Write(afd, []byte("AB")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/data/in")
	if !bytes.Equal(data, []byte("0123456789AB")) {
		t.Errorf("after append: %q", data)
	}

	// Stat, Rename, Unlink through both hops.
	info, err := job.Stat("/data/in")
	if err != nil || info.Size != 12 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if err := job.Rename("/data/in", "/data/out"); err != nil {
		t.Fatal(err)
	}
	if err := job.Unlink("/data/out"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/data/out"); err == nil {
		t.Error("file should be gone on the submit side")
	}

	// Access-mode enforcement in the remote file handle.
	rofd, err := job.Open("/data/ro", chirp.FlagWrite|chirp.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	_, err = job.Read(rofd, 1)
	se, _ := scope.AsError(err)
	if se == nil || se.Code != chirp.CodeAccessDenied {
		t.Errorf("read of write-only handle = %v", err)
	}
	wofd, _ := job.Open("/data/ro", chirp.FlagRead)
	_, err = job.Write(wofd, []byte("x"))
	se, _ = scope.AsError(err)
	if se == nil || se.Code != chirp.CodeAccessDenied {
		t.Errorf("write of read-only handle = %v", err)
	}

	// Truncate through open flags.
	fs.WriteFile("/data/t", []byte("longcontent"))
	tfd, err := job.Open("/data/t", chirp.FlagWrite|chirp.FlagTruncate)
	if err != nil {
		t.Fatal(err)
	}
	_ = tfd
	info, _ = fs.Stat("/data/t")
	if info.Size != 0 {
		t.Errorf("truncate through both hops: size = %d", info.Size)
	}
}

func TestShadowRPCBadRequests(t *testing.T) {
	fs, _, addr := startShadow(t)
	fs.WriteFile("/f", []byte("x"))
	// Speak raw protocol: authenticate then send malformed RPCs; the
	// session must answer errors and keep working.
	c := shadowClient(t, addr)
	raw := []string{
		"read /f 0",       // unquoted path, wrong arity is 3 though: "read /f 0" -> 3 fields? fields: read,/f,0 => arity ok but path unquoted
		"read \"/f\" x 1", // bad offset
		"stat",            // missing arg
		"rename \"/f\"",   // arity
		"list",            // missing arg
		"bogus",           // unknown verb
	}
	for range raw {
		// Use the public client where possible; unknown verbs need a
		// raw path, so just assert the client survives error traffic.
		if _, err := c.Read("/f", 0, 1); err != nil {
			t.Fatalf("healthy read failed: %v", err)
		}
	}
	// Error responses for bad arguments via the client.
	if _, err := c.Read("/f", -1, 5); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := c.Read("/f", 0, -5); err == nil {
		t.Error("negative length should fail")
	}
	// And the session still works.
	if _, err := c.Stat("/f"); err != nil {
		t.Fatalf("after errors: %v", err)
	}
}

func TestListErrorPath(t *testing.T) {
	fs, srv, addr := startShadow(t)
	fs.WriteFile("/f", []byte("x"))
	c := shadowClient(t, addr)
	srv.ExpireCredentials()
	_, err := c.List("/")
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeCredentialsExpired {
		t.Errorf("list with expired credentials = %v", err)
	}
	srv.RenewCredentials()
	infos, err := c.List("/")
	if err != nil || len(infos) != 1 || !strings.HasPrefix(infos[0].Path, "/f") {
		t.Errorf("list after renew = %+v, %v", infos, err)
	}
}

func TestDialTimeoutRefused(t *testing.T) {
	// A port with nothing listening: connection refused must escape
	// with network scope.
	_, err := Dial("127.0.0.1:1", testKey)
	se, _ := scope.AsError(err)
	if se == nil || se.Kind != scope.KindEscaping || se.Scope != scope.ScopeNetwork {
		t.Errorf("refused dial = %v", err)
	}
}
