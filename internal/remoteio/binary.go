package remoteio

import (
	"bufio"
	"net"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// The binary server side.  Framing is self-delimiting, so malformed
// requests are refused in-band and never desynchronize the stream.

func (s *Server) serveBinary(conn net.Conn) {
	sess := wire.NewSession(bufio.NewReader(conn), conn, wire.Config{
		Secret: s.key,
		AuthFailure: func() *scope.Error {
			return scope.New(scope.ScopeLocalResource, CodeAuthFailed, "bad authenticator")
		},
	})
	defer sess.Release()
	if err := sess.ServerHandshake(); err != nil {
		return
	}
	for {
		cmd, pl, err := sess.ReadMsg()
		if err != nil {
			return
		}
		quit, err := s.handleBin(sess, cmd, pl)
		if err != nil || quit {
			return
		}
	}
}

func rioErr(sess *wire.Session, err error) error {
	return sess.WriteError(err, CodeShadowError, scope.ScopeLocalResource)
}

func rioBadRequest(sess *wire.Session, format string, args ...any) error {
	return rioErr(sess, scope.New(scope.ScopeFunction, CodeBadRequest, format, args...))
}

// handleBin processes one RPC frame; the returned error is fatal to
// the connection (a response write failed).
func (s *Server) handleBin(sess *wire.Session, cmd byte, pl []byte) (quit bool, fatal error) {
	if cmd == rioQuit {
		return true, sess.WriteMsg(wire.CmdOK)
	}
	// Both expiry gates come before any RPC work, mirroring the text
	// server's credential check: the channel's security state is
	// unavailable, a local-resource condition, regardless of what the
	// RPC would have done.
	if s.sessionKeysExpired() {
		return false, rioErr(sess, scope.New(scope.ScopeLocalResource, wire.CodeKeyExpired,
			"session key expired: sealed-frame budget exhausted, rekey required"))
	}
	if s.credentialsExpired() {
		return false, rioErr(sess, scope.New(scope.ScopeLocalResource, CodeCredentialsExpired,
			"the channel's security credentials have expired"))
	}

	cur := wire.NewCursor(pl)
	switch cmd {
	case rioRead:
		off := cur.I64()
		length := int(cur.U32())
		path := cur.RestString()
		if !cur.OK() || length < 0 || length > maxDataLen {
			return false, rioBadRequest(sess, "bad read arguments")
		}
		data, err := s.fs.ReadAt(path, off, length)
		if err != nil {
			return false, rioErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK, data)

	case rioWrite:
		off := cur.I64()
		path := cur.Str()
		data := cur.Rest()
		if !cur.OK() {
			return false, rioBadRequest(sess, "bad write arguments")
		}
		n, err := s.fs.WriteAt(path, off, data)
		if err != nil {
			return false, rioErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK, wire.AppendU32(nil, uint32(n)))

	case rioCreate:
		return false, s.rioPath1(sess, &cur, s.fs.Create)
	case rioTrunc:
		return false, s.rioPath1(sess, &cur, func(p string) error { return s.fs.WriteFile(p, nil) })
	case rioUnlink:
		return false, s.rioPath1(sess, &cur, s.fs.Unlink)

	case rioStat:
		info, err := s.fs.Stat(cur.RestString())
		if err != nil {
			return false, rioErr(sess, err)
		}
		out := wire.AppendI64(nil, info.Size)
		out = append(out, roByte(info.ReadOnly))
		out = append(out, info.Path...)
		return false, sess.WriteMsg(wire.CmdOK, out)

	case rioList:
		infos, err := s.fs.List(cur.RestString())
		if err != nil {
			return false, rioErr(sess, err)
		}
		out := wire.AppendU32(nil, uint32(len(infos)))
		for _, info := range infos {
			out = wire.AppendI64(out, info.Size)
			out = append(out, roByte(info.ReadOnly))
			out = wire.AppendStr(out, info.Path)
		}
		return false, sess.WriteMsg(wire.CmdOK, out)

	case rioRename:
		oldPath := cur.Str()
		newPath := cur.RestString()
		if !cur.OK() {
			return false, rioBadRequest(sess, "bad rename arguments")
		}
		if err := s.fs.Rename(oldPath, newPath); err != nil {
			return false, rioErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK)
	}
	return false, rioBadRequest(sess, "unknown command %#x", cmd)
}

func (s *Server) rioPath1(sess *wire.Session, cur *wire.Cursor, op func(string) error) error {
	if err := op(cur.RestString()); err != nil {
		return rioErr(sess, err)
	}
	return sess.WriteMsg(wire.CmdOK)
}

func roByte(ro bool) byte {
	if ro {
		return 1
	}
	return 0
}
