// Package remoteio implements the standard Condor remote I/O channel
// between the starter's proxy and the shadow (Figure 2 of the paper):
// UNIX-like file access in the form of remote procedure calls over
// TCP.
//
// The paper secures this channel with GSI or Kerberos; those stacks
// are out of scope here, so the substitution (documented in DESIGN.md)
// is an HMAC-SHA256 challenge/response over a shared key, which
// reproduces the error behaviour that matters to the theory: failed
// authentication and expired credentials are errors of local-resource
// scope (the submit side's security state is unavailable), while a
// lost channel escapes with network scope.
//
// Unlike Chirp, the RPC interface is stateless: every call names the
// path and offset explicitly, so a shadow restart invalidates no
// client state.
package remoteio

import (
	"bufio"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

// Error codes of the remote I/O interface (Principle 4).  File-level
// codes are shared with package vfs; these are the channel's own.
const (
	CodeAuthFailed         = "AuthenticationFailed"
	CodeCredentialsExpired = "CredentialsExpiredError"
	CodeBadRequest         = "BadRequest"
	CodeShadowError        = "ShadowError"
	CodeConnectionLost     = "ConnectionLost"
	// CodeRequestTimeout marks a request whose I/O deadline expired;
	// like a lost connection it escapes with network scope.
	CodeRequestTimeout = "RequestTimeout"
)

// Binary RPC command bytes (wire.ModeBinary / wire.ModeSecure), all
// >= 0x80.  Responses use the shared wire.CmdOK / wire.CmdErr frames.
const (
	rioRead   byte = 0xB0 // off i64, len u32, path rest -> data
	rioWrite  byte = 0xB1 // off i64, path str, data rest -> n u32
	rioCreate byte = 0xB2 // path rest
	rioTrunc  byte = 0xB3 // path rest
	rioUnlink byte = 0xB4 // path rest
	rioStat   byte = 0xB5 // path rest -> size i64, ro u8, path rest
	rioList   byte = 0xB6 // prefix rest -> count u32, then per entry
	//                       size i64, ro u8, path str
	rioRename byte = 0xB7 // old str, new rest
	rioQuit   byte = 0xBF
)

// maxDataLen bounds one RPC payload.
const maxDataLen = 16 << 20

// Contract returns the explicit error interface of the channel.
func Contract() *scope.Contract {
	return scope.NewContract("remoteio", scope.ScopeNetwork, CodeConnectionLost).
		Declare(vfs.CodeFileNotFound, scope.ScopeFile).
		Declare(vfs.CodeAccessDenied, scope.ScopeFile).
		Declare(vfs.CodeDiskFull, scope.ScopeFile).
		Declare(vfs.CodeEndOfFile, scope.ScopeFile).
		Declare(vfs.CodeFileExists, scope.ScopeFile).
		Declare(vfs.CodeBadArgument, scope.ScopeFunction).
		Declare(CodeBadRequest, scope.ScopeFunction).
		Declare(vfs.CodeOffline, scope.ScopeLocalResource).
		Declare(CodeAuthFailed, scope.ScopeLocalResource).
		Declare(CodeCredentialsExpired, scope.ScopeLocalResource).
		Declare(CodeShadowError, scope.ScopeLocalResource)
}

// Server is the shadow's file service: it exposes the submit
// machine's file system (a vfs.FileSystem) over authenticated RPC.
type Server struct {
	fs  *vfs.FileSystem
	key []byte

	// Mode selects the transport for every connection; set it before
	// Listen.  The text server speaks first (the challenge), so the
	// protocol cannot be sniffed per connection as Chirp does.
	Mode wire.Mode

	mu          sync.Mutex
	listener    net.Listener
	conns       map[net.Conn]struct{}
	closed      bool
	expired     bool
	expiredKeys bool
	wg          sync.WaitGroup
}

// NewServer creates a shadow file service over fs, authenticated by
// the shared key.
func NewServer(fs *vfs.FileSystem, key []byte) *Server {
	return &Server{fs: fs, key: append([]byte(nil), key...), conns: make(map[net.Conn]struct{})}
}

// ExpireCredentials simulates security-credential expiry: every
// subsequent RPC fails with CredentialsExpiredError at local-resource
// scope until RenewCredentials is called.
func (s *Server) ExpireCredentials() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expired = true
}

// RenewCredentials restores the channel's credentials.
func (s *Server) RenewCredentials() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expired = false
}

func (s *Server) credentialsExpired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expired
}

// ExpireSessionKeys simulates the secure session's key budget running
// out on the server side: every subsequent framed RPC fails with
// KeyExpired at local-resource scope until RenewSessionKeys.  It is
// deterministic — a flag, never wall time.
func (s *Server) ExpireSessionKeys() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expiredKeys = true
}

// RenewSessionKeys restores the session keys.
func (s *Server) RenewSessionKeys() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expiredKeys = false
}

func (s *Server) sessionKeysExpired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.expiredKeys
}

// Listen starts the service and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remoteio: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the service and all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func errLine(w *bufio.Writer, err error) {
	fmt.Fprint(w, wire.EncodeError(err, CodeShadowError, scope.ScopeLocalResource))
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	if s.Mode != wire.ModeText {
		s.serveBinary(conn)
		return
	}
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)

	// Challenge/response authentication.
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return
	}
	fmt.Fprintf(w, "challenge %s\n", hex.EncodeToString(nonce))
	if w.Flush() != nil {
		return
	}
	line, err := r.ReadString('\n')
	if err != nil {
		return
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "auth" || !s.verify(nonce, fields[1]) {
		errLine(w, scope.New(scope.ScopeLocalResource, CodeAuthFailed, "bad authenticator"))
		w.Flush()
		return
	}
	fmt.Fprint(w, "ok\n")
	if w.Flush() != nil {
		return
	}

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		if !s.handle(strings.TrimSpace(line), r, w) {
			w.Flush()
			return
		}
		if w.Flush() != nil {
			return
		}
	}
}

func (s *Server) verify(nonce []byte, mac string) bool {
	want := authenticate(s.key, nonce)
	got, err := hex.DecodeString(mac)
	if err != nil {
		return false
	}
	return hmac.Equal(got, want)
}

// authenticate computes the HMAC response for a nonce.
func authenticate(key, nonce []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(nonce)
	return m.Sum(nil)
}

// handle processes one RPC; it reports whether the session continues.
func (s *Server) handle(line string, r *bufio.Reader, w *bufio.Writer) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "empty request"))
		return true
	}
	verb, args := fields[0], fields[1:]
	if verb == "quit" {
		fmt.Fprint(w, "ok\n")
		return false
	}
	// Write payloads must be drained even when the RPC is refused,
	// or the stream loses framing.
	var payload []byte
	if verb == "write" {
		if len(args) != 3 {
			errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "write wants 3 arguments"))
			return false // framing unknown: drop the connection
		}
		n, err := strconv.Atoi(args[2])
		if err != nil || n < 0 || n > maxDataLen {
			errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad length %q", args[2]))
			return false
		}
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return false
		}
	}
	if s.credentialsExpired() {
		errLine(w, scope.New(scope.ScopeLocalResource, CodeCredentialsExpired,
			"the channel's security credentials have expired"))
		return true
	}

	switch verb {
	case "read":
		s.rpcRead(args, w)
	case "write":
		s.rpcWrite(args, payload, w)
	case "create":
		s.rpcPath1(args, w, s.fs.Create)
	case "trunc":
		s.rpcPath1(args, w, func(p string) error { return s.fs.WriteFile(p, nil) })
	case "unlink":
		s.rpcPath1(args, w, s.fs.Unlink)
	case "stat":
		s.rpcStat(args, w)
	case "list":
		s.rpcList(args, w)
	case "rename":
		s.rpcRename(args, w)
	default:
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "unknown verb %q", verb))
	}
	return true
}

func (s *Server) rpcRead(args []string, w *bufio.Writer) {
	if len(args) != 3 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "read wants 3 arguments"))
		return
	}
	path, err := wire.Unquote(args[0])
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	off, err1 := strconv.ParseInt(args[1], 10, 64)
	length, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil || length < 0 || length > maxDataLen {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad read arguments"))
		return
	}
	data, err := s.fs.ReadAt(path, off, length)
	if err != nil {
		errLine(w, err)
		return
	}
	fmt.Fprintf(w, "ok %d\n", len(data))
	w.Write(data)
}

func (s *Server) rpcWrite(args []string, payload []byte, w *bufio.Writer) {
	path, err := wire.Unquote(args[0])
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	off, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad offset"))
		return
	}
	n, err := s.fs.WriteAt(path, off, payload)
	if err != nil {
		errLine(w, err)
		return
	}
	fmt.Fprintf(w, "ok %d\n", n)
}

func (s *Server) rpcPath1(args []string, w *bufio.Writer, op func(string) error) {
	if len(args) != 1 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "wants 1 argument"))
		return
	}
	path, err := wire.Unquote(args[0])
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	if err := op(path); err != nil {
		errLine(w, err)
		return
	}
	fmt.Fprint(w, "ok\n")
}

func (s *Server) rpcStat(args []string, w *bufio.Writer) {
	if len(args) != 1 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "stat wants 1 argument"))
		return
	}
	path, err := wire.Unquote(args[0])
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	info, err := s.fs.Stat(path)
	if err != nil {
		errLine(w, err)
		return
	}
	ro := 0
	if info.ReadOnly {
		ro = 1
	}
	fmt.Fprintf(w, "ok %d %d %s\n", info.Size, ro, wire.Quote(info.Path))
}

// rpcList enumerates files under a prefix: "ok n" then n entry lines.
func (s *Server) rpcList(args []string, w *bufio.Writer) {
	if len(args) != 1 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "list wants 1 argument"))
		return
	}
	prefix, err := wire.Unquote(args[0])
	if err != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	infos, err := s.fs.List(prefix)
	if err != nil {
		errLine(w, err)
		return
	}
	fmt.Fprintf(w, "ok %d\n", len(infos))
	for _, info := range infos {
		ro := 0
		if info.ReadOnly {
			ro = 1
		}
		fmt.Fprintf(w, "%d %d %s\n", info.Size, ro, wire.Quote(info.Path))
	}
}

func (s *Server) rpcRename(args []string, w *bufio.Writer) {
	if len(args) != 2 {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "rename wants 2 arguments"))
		return
	}
	oldPath, err1 := wire.Unquote(args[0])
	newPath, err2 := wire.Unquote(args[1])
	if err1 != nil || err2 != nil {
		errLine(w, scope.New(scope.ScopeFunction, CodeBadRequest, "bad path"))
		return
	}
	if err := s.fs.Rename(oldPath, newPath); err != nil {
		errLine(w, err)
		return
	}
	fmt.Fprint(w, "ok\n")
}
