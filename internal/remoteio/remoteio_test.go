package remoteio

import (
	"bytes"
	"testing"

	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

var testKey = []byte("shadow-shared-key")

func startShadow(t *testing.T) (*vfs.FileSystem, *Server, string) {
	t.Helper()
	fs := vfs.New()
	srv := NewServer(fs, testKey)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return fs, srv, addr
}

func shadowClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, testKey)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAuthSuccessAndFailure(t *testing.T) {
	_, _, addr := startShadow(t)
	c := shadowClient(t, addr)
	if err := c.Create("/x"); err != nil {
		t.Fatal(err)
	}
	_, err := Dial(addr, []byte("wrong key"))
	if err == nil {
		t.Fatal("wrong key accepted")
	}
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeAuthFailed || se.Scope != scope.ScopeLocalResource {
		t.Errorf("auth failure = %v", err)
	}
}

func TestReadWriteStat(t *testing.T) {
	fs, _, addr := startShadow(t)
	fs.WriteFile("/data", []byte("0123456789"))
	c := shadowClient(t, addr)

	got, err := c.Read("/data", 2, 4)
	if err != nil || string(got) != "2345" {
		t.Fatalf("read = %q, %v", got, err)
	}
	n, err := c.Write("/data", 8, []byte("XYZ"))
	if err != nil || n != 3 {
		t.Fatalf("write = %d, %v", n, err)
	}
	data, _ := fs.ReadFile("/data")
	if string(data) != "01234567XYZ" {
		t.Errorf("data = %q", data)
	}
	info, err := c.Stat("/data")
	if err != nil || info.Size != 11 {
		t.Errorf("stat = %+v, %v", info, err)
	}
}

func TestFileOpsAndErrors(t *testing.T) {
	fs, _, addr := startShadow(t)
	c := shadowClient(t, addr)

	if err := c.Create("/new"); err != nil {
		t.Fatal(err)
	}
	err := c.Create("/new")
	se, _ := scope.AsError(err)
	if se == nil || se.Code != vfs.CodeFileExists {
		t.Errorf("double create = %v", err)
	}
	if _, err := c.Write("/new", 0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate("/new"); err != nil {
		t.Fatal(err)
	}
	info, _ := c.Stat("/new")
	if info.Size != 0 {
		t.Errorf("size after trunc = %d", info.Size)
	}
	if err := c.Rename("/new", "/moved"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/moved"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Read("/moved", 0, 1)
	se, _ = scope.AsError(err)
	if se == nil || se.Code != vfs.CodeFileNotFound || se.Scope != scope.ScopeFile {
		t.Errorf("read unlinked = %v", err)
	}
	fs.SetOffline(true)
	_, err = c.Stat("/anything")
	se, _ = scope.AsError(err)
	if se == nil || se.Code != vfs.CodeOffline || se.Scope != scope.ScopeLocalResource {
		t.Errorf("offline = %v", err)
	}
}

func TestCredentialExpiry(t *testing.T) {
	fs, srv, addr := startShadow(t)
	fs.WriteFile("/f", []byte("x"))
	c := shadowClient(t, addr)
	if _, err := c.Read("/f", 0, 1); err != nil {
		t.Fatal(err)
	}
	srv.ExpireCredentials()
	_, err := c.Read("/f", 0, 1)
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeCredentialsExpired || se.Scope != scope.ScopeLocalResource {
		t.Fatalf("expired = %v", err)
	}
	// Expiry hits writes too, and the payload must still be drained
	// so the session keeps framing.
	_, err = c.Write("/f", 0, []byte("payload"))
	se, _ = scope.AsError(err)
	if se == nil || se.Code != CodeCredentialsExpired {
		t.Fatalf("expired write = %v", err)
	}
	srv.RenewCredentials()
	if _, err := c.Read("/f", 0, 1); err != nil {
		t.Fatalf("after renew: %v", err)
	}
}

func TestServerDeathEscapes(t *testing.T) {
	fs, srv, addr := startShadow(t)
	fs.WriteFile("/f", []byte("x"))
	c := shadowClient(t, addr)
	srv.Close()
	_, err := c.Read("/f", 0, 1)
	se, _ := scope.AsError(err)
	if se == nil || se.Kind != scope.KindEscaping || se.Scope != scope.ScopeNetwork {
		t.Fatalf("read after shadow death = %v", err)
	}
}

func TestErrorsConformToContract(t *testing.T) {
	fs, srv, addr := startShadow(t)
	fs.WriteFile("/f", []byte("x"))
	c := shadowClient(t, addr)
	contract := Contract()
	var errs []error
	_, e1 := c.Read("/missing", 0, 1)
	errs = append(errs, e1)
	errs = append(errs, c.Create("/f"))
	srv.ExpireCredentials()
	_, e2 := c.Stat("/f")
	errs = append(errs, e2)
	for _, err := range errs {
		if err == nil {
			t.Fatal("want error")
		}
		if v := contract.Violations(err); v != "" {
			t.Errorf("violation: %s", v)
		}
	}
}

// TestFullFigure2DataPath wires the complete Figure 2 pipeline over
// real sockets: a Chirp client (the job's I/O library) talks to a
// Chirp server (the starter's proxy) whose backend forwards over the
// shadow remote I/O channel to the submit machine's file system.
func TestFullFigure2DataPath(t *testing.T) {
	// Submit machine: the shadow's file system and server.
	submitFS := vfs.New()
	submitFS.WriteFile("/home/user/input", []byte("input data from the submit machine"))
	shadowSrv := NewServer(submitFS, testKey)
	shadowAddr, err := shadowSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shadowSrv.Close()

	// Execution machine: the starter's proxy, backed by the shadow
	// channel.
	shadowChan, err := Dial(shadowAddr, testKey)
	if err != nil {
		t.Fatal(err)
	}
	defer shadowChan.Close()
	proxy := chirp.NewServer(&ChirpBackend{Client: shadowChan}, "job-cookie")
	proxyAddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// The job: a Chirp client using the cookie.
	job, err := chirp.Dial(proxyAddr, "job-cookie")
	if err != nil {
		t.Fatal(err)
	}
	defer job.Close()

	fd, err := job.Open("/home/user/input", chirp.FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	data, err := job.Read(fd, 1024)
	if err != nil || !bytes.Equal(data, []byte("input data from the submit machine")) {
		t.Fatalf("read through both hops = %q, %v", data, err)
	}
	job.CloseFD(fd)

	// Write output back to the submit machine through both hops.
	ofd, err := job.Open("/home/user/output", chirp.FlagWrite|chirp.FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Write(ofd, []byte("results")); err != nil {
		t.Fatal(err)
	}
	job.CloseFD(ofd)
	out, err := submitFS.ReadFile("/home/user/output")
	if err != nil || string(out) != "results" {
		t.Fatalf("submit-side output = %q, %v", out, err)
	}

	// Fault: the submit-side file system goes offline.  The error
	// crosses BOTH protocol hops with its scope intact: the job's
	// library sees local-resource scope, which violates the file
	// interface and must escape (tested at the javaio layer).
	submitFS.SetOffline(true)
	_, err = job.Open("/home/user/other", chirp.FlagRead)
	se, _ := scope.AsError(err)
	if se == nil || se.Scope != scope.ScopeLocalResource {
		t.Fatalf("offline through two hops = %v", err)
	}
}

// TestShadowDeathWidensThroughProxy kills the shadow channel and
// verifies the proxy reports ShadowUnavailableError at local-resource
// scope to the job (scope expansion, Section 3.3).
func TestShadowDeathWidensThroughProxy(t *testing.T) {
	submitFS := vfs.New()
	submitFS.WriteFile("/f", []byte("x"))
	shadowSrv := NewServer(submitFS, testKey)
	shadowAddr, _ := shadowSrv.Listen("127.0.0.1:0")
	shadowChan, err := Dial(shadowAddr, testKey)
	if err != nil {
		t.Fatal(err)
	}
	proxy := chirp.NewServer(&ChirpBackend{Client: shadowChan}, "ck")
	proxyAddr, _ := proxy.Listen("127.0.0.1:0")
	defer proxy.Close()

	job, err := chirp.Dial(proxyAddr, "ck")
	if err != nil {
		t.Fatal(err)
	}
	defer job.Close()

	shadowSrv.Close() // the shadow dies

	_, err = job.Open("/f", chirp.FlagRead)
	se, _ := scope.AsError(err)
	if se == nil {
		t.Fatalf("err = %v", err)
	}
	if se.Code != "ShadowUnavailableError" || se.Scope != scope.ScopeLocalResource {
		t.Errorf("widened error = code %s scope %v", se.Code, se.Scope)
	}
}
