package remoteio

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

// Client speaks the shadow remote I/O protocol.  Transport failures
// surface as escaping errors of network scope; the caller (the
// starter's proxy) widens them to local-resource scope, because a
// shadow that cannot be reached means the submit side is unavailable.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	dead error

	mode      wire.Mode
	sess      *wire.Session // nil in text mode
	ioTimeout time.Duration

	// Trace, when non-nil and enabled, receives an error event the
	// first time the transport fails; TraceJob tags it.  Set both
	// before issuing requests.
	Trace    obs.Tracer
	TraceJob int64
}

// DialOptions parameterize a client connection.  The mode must match
// the server's: unlike Chirp, the text server speaks first (the
// challenge), so the transport cannot be sniffed from the client's
// opening bytes.
type DialOptions struct {
	// Timeout bounds the TCP connect; 0 means 10s.
	Timeout time.Duration
	// IOTimeout bounds each request round trip.  0 means 10s;
	// negative disables deadlines.  Expiry surfaces as an escaping
	// network-scope RequestTimeout error.
	IOTimeout time.Duration
	// Mode selects the transport; it must match the server's Mode.
	Mode wire.Mode
	// RekeyAfter bounds sealed frames per direction in ModeSecure.
	RekeyAfter uint64
}

func (o DialOptions) connectTimeout() time.Duration {
	if o.Timeout == 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o DialOptions) ioTimeout() time.Duration {
	if o.IOTimeout == 0 {
		return 10 * time.Second
	}
	if o.IOTimeout < 0 {
		return 0
	}
	return o.IOTimeout
}

// Dial connects and authenticates with the shared key.
func Dial(addr string, key []byte) (*Client, error) {
	return DialOpts(addr, key, DialOptions{})
}

// DialTimeout is Dial with a connection timeout.
func DialTimeout(addr string, key []byte, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, key, DialOptions{Timeout: timeout})
}

// DialMode is Dial with a transport mode.
func DialMode(addr string, key []byte, mode wire.Mode) (*Client, error) {
	return DialOpts(addr, key, DialOptions{Mode: mode})
}

// DialOpts connects with full options.
func DialOpts(addr string, key []byte, o DialOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, o.connectTimeout())
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	c, err := NewClient(conn, key, o)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient authenticates over an established connection (used by
// benchmarks and tests that construct their own sockets).
func NewClient(conn net.Conn, key []byte, o DialOptions) (*Client, error) {
	c := &Client{
		conn:      conn,
		r:         bufio.NewReader(conn),
		w:         bufio.NewWriter(conn),
		mode:      o.Mode,
		ioTimeout: o.ioTimeout(),
	}
	if o.Mode != wire.ModeText {
		c.sess = wire.NewSession(c.r, conn, wire.Config{
			Mode:       o.Mode,
			Secret:     key,
			RekeyAfter: o.RekeyAfter,
		})
		c.arm()
		err := c.sess.ClientHandshake()
		c.disarm()
		if err != nil {
			if se, ok := scope.AsError(err); ok && se.Scope != scope.ScopeNetwork {
				return nil, se // the server's explicit refusal
			}
			return nil, scope.Escape(scope.ScopeNetwork, "", err)
		}
		return c, nil
	}

	c.arm()
	line, err := c.r.ReadString('\n')
	c.disarm()
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "challenge" {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost,
			fmt.Errorf("bad challenge %q", line))
	}
	nonce, err := hex.DecodeString(fields[1])
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	mac := authenticate(key, nonce)
	if _, _, err := c.roundTrip(fmt.Sprintf("auth %s\n", hex.EncodeToString(mac)), 0); err != nil {
		return nil, err
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	if c.sess != nil {
		_ = c.sess.WriteMsg(rioQuit) // best effort
		c.sess.Release()
		c.sess = nil
	} else {
		fmt.Fprint(c.w, "quit\n")
		c.w.Flush()
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// arm sets the per-request I/O deadline; disarm clears it.
func (c *Client) arm() {
	if c.ioTimeout > 0 && c.conn != nil {
		c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
	}
}

func (c *Client) disarm() {
	if c.ioTimeout > 0 && c.conn != nil {
		c.conn.SetDeadline(time.Time{})
	}
}

// fail records and returns a sticky transport error.  A scoped cause
// (a frame-layer fault) keeps its code and escapes; a deadline expiry
// becomes RequestTimeout; anything else is a lost connection.
func (c *Client) fail(err error) error {
	code := CodeConnectionLost
	var ne net.Error
	if _, ok := scope.AsError(err); ok {
		code = "" // Escape adopts the cause's code and widens its scope
	} else if errors.As(err, &ne) && ne.Timeout() {
		code = CodeRequestTimeout
	}
	esc := scope.Escape(scope.ScopeNetwork, code, err)
	first := c.dead == nil
	c.dead = esc
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if first && c.Trace != nil && c.Trace.Enabled() {
		// One origin event per connection death; later calls return
		// the sticky error without re-reporting.
		c.Trace.Emit(obs.Event{
			T:      time.Now().UnixNano(),
			Comp:   "remoteio-client",
			Kind:   obs.KindError,
			Job:    c.TraceJob,
			Code:   esc.Code,
			Scope:  esc.Scope.String(),
			EKind:  esc.Kind.String(),
			Detail: esc.Error(),
		})
		c.Trace.Count("remoteio.transport_failures", 1)
	}
	return esc
}

// failLocked is fail for callers outside the round-trip lock.
func (c *Client) failLocked(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fail(err)
}

func (c *Client) roundTrip(request string, wantData int, payload ...[]byte) (string, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return "", nil, c.dead
	}
	if c.conn == nil {
		return "", nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if _, err := io.WriteString(c.w, request); err != nil {
		return "", nil, c.fail(err)
	}
	for _, p := range payload {
		if _, err := c.w.Write(p); err != nil {
			return "", nil, c.fail(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return "", nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "ok":
		var data []byte
		if wantData > 0 {
			lenField, _, _ := strings.Cut(rest, " ")
			n, convErr := strconv.Atoi(lenField)
			if convErr != nil || n < 0 || n > maxDataLen {
				return "", nil, c.fail(fmt.Errorf("bad data length %q", line))
			}
			data = make([]byte, n)
			if _, err := io.ReadFull(c.r, data); err != nil {
				return "", nil, c.fail(err)
			}
		}
		return rest, data, nil
	case "error":
		// Decode from the raw remainder: the quoted message may
		// contain consecutive spaces that field-splitting would eat.
		se, decErr := wire.DecodeError(rest)
		if decErr != nil {
			return "", nil, c.fail(decErr)
		}
		return "", nil, se
	default:
		return "", nil, c.fail(fmt.Errorf("bad response %q", line))
	}
}

// roundTripBin sends one framed request and returns the response
// payload (copied out of the session buffer).
func (c *Client) roundTripBin(cmd byte, parts ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if err := c.sess.WriteMsg(cmd, parts...); err != nil {
		return nil, c.fail(err)
	}
	rcmd, pl, err := c.sess.ReadMsg()
	if err != nil {
		return nil, c.fail(err)
	}
	switch rcmd {
	case wire.CmdOK:
		return append([]byte(nil), pl...), nil
	case wire.CmdErr:
		se, decErr := wire.DecodeErrorPayload(pl)
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	default:
		return nil, c.fail(fmt.Errorf("bad response frame %#x", rcmd))
	}
}

func (c *Client) binary() bool { return c.mode != wire.ModeText }

// Read reads up to length bytes of path at offset.
func (c *Client) Read(path string, offset int64, length int) ([]byte, error) {
	if c.binary() {
		arg := wire.AppendU32(wire.AppendI64(nil, offset), uint32(length))
		return c.roundTripBin(rioRead, arg, []byte(path))
	}
	_, data, err := c.roundTrip(fmt.Sprintf("read %s %d %d\n", wire.Quote(path), offset, length), length)
	return data, err
}

// Write writes data to path at offset.
func (c *Client) Write(path string, offset int64, data []byte) (int, error) {
	if c.binary() {
		arg := wire.AppendStr(wire.AppendI64(nil, offset), path)
		pl, err := c.roundTripBin(rioWrite, arg, data)
		if err != nil {
			return 0, err
		}
		cur := wire.NewCursor(pl)
		n := cur.U32()
		if !cur.Done() {
			return 0, c.failLocked(fmt.Errorf("bad write response (%d bytes)", len(pl)))
		}
		return int(n), nil
	}
	v, _, err := c.roundTrip(fmt.Sprintf("write %s %d %d\n", wire.Quote(path), offset, len(data)), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.failLocked(fmt.Errorf("bad write response %q", v))
	}
	return n, nil
}

// pathOp runs one path-only RPC in either transport.
func (c *Client) pathOp(cmd byte, verb, path string) error {
	if c.binary() {
		_, err := c.roundTripBin(cmd, []byte(path))
		return err
	}
	_, _, err := c.roundTrip(fmt.Sprintf("%s %s\n", verb, wire.Quote(path)), 0)
	return err
}

// Create makes an empty file.
func (c *Client) Create(path string) error { return c.pathOp(rioCreate, "create", path) }

// Truncate empties a file.
func (c *Client) Truncate(path string) error { return c.pathOp(rioTrunc, "trunc", path) }

// Unlink removes a file.
func (c *Client) Unlink(path string) error { return c.pathOp(rioUnlink, "unlink", path) }

// Rename moves a file.
func (c *Client) Rename(oldPath, newPath string) error {
	if c.binary() {
		_, err := c.roundTripBin(rioRename, wire.AppendStr(nil, oldPath), []byte(newPath))
		return err
	}
	_, _, err := c.roundTrip(fmt.Sprintf("rename %s %s\n", wire.Quote(oldPath), wire.Quote(newPath)), 0)
	return err
}

// List enumerates files under a prefix.
func (c *Client) List(prefix string) ([]vfs.Info, error) {
	if c.binary() {
		pl, err := c.roundTripBin(rioList, []byte(prefix))
		if err != nil {
			return nil, err
		}
		cur := wire.NewCursor(pl)
		n := int(cur.U32())
		if !cur.OK() || n < 0 || n > 1<<20 {
			return nil, c.failLocked(fmt.Errorf("bad list response (%d bytes)", len(pl)))
		}
		out := make([]vfs.Info, 0, n)
		for i := 0; i < n; i++ {
			size := cur.I64()
			ro := cur.U8()
			p := cur.Str()
			out = append(out, vfs.Info{Path: p, Size: size, ReadOnly: ro != 0})
		}
		if !cur.Done() {
			return nil, c.failLocked(fmt.Errorf("bad list entries (%d bytes)", len(pl)))
		}
		return out, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if _, err := fmt.Fprintf(c.w, "list %s\n", wire.Quote(prefix)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	verb, rest, _ := strings.Cut(line, " ")
	if verb == "error" {
		se, decErr := wire.DecodeError(rest)
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	}
	if verb != "ok" || strings.Contains(rest, " ") {
		return nil, c.fail(fmt.Errorf("bad list response %q", line))
	}
	n, convErr := strconv.Atoi(rest)
	if convErr != nil || n < 0 || n > 1<<20 {
		return nil, c.fail(fmt.Errorf("bad list count %q", rest))
	}
	out := make([]vfs.Info, 0, n)
	for i := 0; i < n; i++ {
		entry, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		ef := strings.Fields(strings.TrimRight(entry, "\r\n"))
		if len(ef) < 3 {
			return nil, c.fail(fmt.Errorf("bad list entry %q", entry))
		}
		size, e1 := strconv.ParseInt(ef[0], 10, 64)
		ro, e2 := strconv.Atoi(ef[1])
		p, e3 := wire.Unquote(strings.Join(ef[2:], " "))
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, c.fail(fmt.Errorf("bad list entry %q", entry))
		}
		out = append(out, vfs.Info{Path: p, Size: size, ReadOnly: ro != 0})
	}
	return out, nil
}

// Stat describes a file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	if c.binary() {
		pl, err := c.roundTripBin(rioStat, []byte(path))
		if err != nil {
			return vfs.Info{}, err
		}
		cur := wire.NewCursor(pl)
		size := cur.I64()
		ro := cur.U8()
		p := cur.RestString()
		if !cur.Done() {
			return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response (%d bytes)", len(pl)))
		}
		return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}, nil
	}
	v, _, err := c.roundTrip(fmt.Sprintf("stat %s\n", wire.Quote(path)), 0)
	if err != nil {
		return vfs.Info{}, err
	}
	fields := strings.Fields(v)
	if len(fields) < 3 {
		return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response %q", v))
	}
	size, err1 := strconv.ParseInt(fields[0], 10, 64)
	ro, err2 := strconv.Atoi(fields[1])
	p, err3 := wire.Unquote(strings.Join(fields[2:], " "))
	if err1 != nil || err2 != nil || err3 != nil {
		return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response %q", v))
	}
	return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}, nil
}
