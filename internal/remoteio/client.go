package remoteio

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

// Client speaks the shadow remote I/O protocol.  Transport failures
// surface as escaping errors of network scope; the caller (the
// starter's proxy) widens them to local-resource scope, because a
// shadow that cannot be reached means the submit side is unavailable.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	dead error

	// Trace, when non-nil and enabled, receives an error event the
	// first time the transport fails; TraceJob tags it.  Set both
	// before issuing requests.
	Trace    obs.Tracer
	TraceJob int64
}

// Dial connects and authenticates with the shared key.
func Dial(addr string, key []byte) (*Client, error) {
	return DialTimeout(addr, key, 10*time.Second)
}

// DialTimeout is Dial with a connection timeout.
func DialTimeout(addr string, key []byte, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}

	line, err := c.r.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 2 || fields[0] != "challenge" {
		conn.Close()
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost,
			fmt.Errorf("bad challenge %q", line))
	}
	nonce, err := hex.DecodeString(fields[1])
	if err != nil {
		conn.Close()
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	mac := authenticate(key, nonce)
	if _, _, err := c.roundTrip(fmt.Sprintf("auth %s\n", hex.EncodeToString(mac)), 0); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	fmt.Fprint(c.w, "quit\n")
	c.w.Flush()
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) fail(err error) error {
	esc := scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	first := c.dead == nil
	c.dead = esc
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if first && c.Trace != nil && c.Trace.Enabled() {
		// One origin event per connection death; later calls return
		// the sticky error without re-reporting.
		c.Trace.Emit(obs.Event{
			T:      time.Now().UnixNano(),
			Comp:   "remoteio-client",
			Kind:   obs.KindError,
			Job:    c.TraceJob,
			Code:   CodeConnectionLost,
			Scope:  scope.ScopeNetwork.String(),
			EKind:  "escaping",
			Detail: esc.Error(),
		})
		c.Trace.Count("remoteio.transport_failures", 1)
	}
	return esc
}

func (c *Client) roundTrip(request string, wantData int, payload ...[]byte) (string, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return "", nil, c.dead
	}
	if c.conn == nil {
		return "", nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	if _, err := io.WriteString(c.w, request); err != nil {
		return "", nil, c.fail(err)
	}
	for _, p := range payload {
		if _, err := c.w.Write(p); err != nil {
			return "", nil, c.fail(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return "", nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, c.fail(err)
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) == 0 {
		return "", nil, c.fail(fmt.Errorf("empty response"))
	}
	switch fields[0] {
	case "ok":
		value := strings.Join(fields[1:], " ")
		var data []byte
		if wantData > 0 {
			n, convErr := strconv.Atoi(fields[1])
			if convErr != nil || n < 0 || n > maxDataLen {
				return "", nil, c.fail(fmt.Errorf("bad data length %q", line))
			}
			data = make([]byte, n)
			if _, err := io.ReadFull(c.r, data); err != nil {
				return "", nil, c.fail(err)
			}
		}
		return value, data, nil
	case "error":
		se, decErr := wire.DecodeError(fields[1:])
		if decErr != nil {
			return "", nil, c.fail(decErr)
		}
		return "", nil, se
	default:
		return "", nil, c.fail(fmt.Errorf("bad response %q", line))
	}
}

// Read reads up to length bytes of path at offset.
func (c *Client) Read(path string, offset int64, length int) ([]byte, error) {
	_, data, err := c.roundTrip(fmt.Sprintf("read %s %d %d\n", wire.Quote(path), offset, length), length)
	return data, err
}

// Write writes data to path at offset.
func (c *Client) Write(path string, offset int64, data []byte) (int, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("write %s %d %d\n", wire.Quote(path), offset, len(data)), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.fail(fmt.Errorf("bad write response %q", v))
	}
	return n, nil
}

// Create makes an empty file.
func (c *Client) Create(path string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("create %s\n", wire.Quote(path)), 0)
	return err
}

// Truncate empties a file.
func (c *Client) Truncate(path string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("trunc %s\n", wire.Quote(path)), 0)
	return err
}

// Unlink removes a file.
func (c *Client) Unlink(path string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("unlink %s\n", wire.Quote(path)), 0)
	return err
}

// Rename moves a file.
func (c *Client) Rename(oldPath, newPath string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("rename %s %s\n", wire.Quote(oldPath), wire.Quote(newPath)), 0)
	return err
}

// List enumerates files under a prefix.
func (c *Client) List(prefix string) ([]vfs.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	if _, err := fmt.Fprintf(c.w, "list %s\n", wire.Quote(prefix)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, c.fail(err)
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) == 0 {
		return nil, c.fail(fmt.Errorf("empty response"))
	}
	if fields[0] == "error" {
		se, decErr := wire.DecodeError(fields[1:])
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	}
	if fields[0] != "ok" || len(fields) != 2 {
		return nil, c.fail(fmt.Errorf("bad list response %q", line))
	}
	n, convErr := strconv.Atoi(fields[1])
	if convErr != nil || n < 0 || n > 1<<20 {
		return nil, c.fail(fmt.Errorf("bad list count %q", fields[1]))
	}
	out := make([]vfs.Info, 0, n)
	for i := 0; i < n; i++ {
		entry, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		ef := strings.Fields(strings.TrimRight(entry, "\r\n"))
		if len(ef) < 3 {
			return nil, c.fail(fmt.Errorf("bad list entry %q", entry))
		}
		size, e1 := strconv.ParseInt(ef[0], 10, 64)
		ro, e2 := strconv.Atoi(ef[1])
		p, e3 := wire.Unquote(strings.Join(ef[2:], " "))
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, c.fail(fmt.Errorf("bad list entry %q", entry))
		}
		out = append(out, vfs.Info{Path: p, Size: size, ReadOnly: ro != 0})
	}
	return out, nil
}

// Stat describes a file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("stat %s\n", wire.Quote(path)), 0)
	if err != nil {
		return vfs.Info{}, err
	}
	fields := strings.Fields(v)
	if len(fields) < 3 {
		return vfs.Info{}, c.fail(fmt.Errorf("bad stat response %q", v))
	}
	size, err1 := strconv.ParseInt(fields[0], 10, 64)
	ro, err2 := strconv.Atoi(fields[1])
	p, err3 := wire.Unquote(strings.Join(fields[2:], " "))
	if err1 != nil || err2 != nil || err3 != nil {
		return vfs.Info{}, c.fail(fmt.Errorf("bad stat response %q", v))
	}
	return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}, nil
}
