package daemon

import (
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
)

// Message kinds exchanged on the bus.  Each kind's body type is the
// struct of the same base name.
const (
	kindAdvertise    = "advertise"     // startd/schedd -> matchmaker
	kindMatchNotify  = "match-notify"  // matchmaker -> schedd
	kindNoMatch      = "no-match"      // matchmaker -> schedd (zero compatible ads)
	kindClaimRequest = "claim-request" // schedd -> startd
	kindClaimReply   = "claim-reply"   // startd -> schedd
	kindActivate     = "activate"      // schedd -> startd (names the shadow)
	kindFetchJob     = "fetch-job"     // starter -> shadow
	kindJobDetails   = "job-details"   // shadow -> starter
	kindFetchAbort   = "fetch-abort"   // shadow -> starter (shadow gave up)
	kindJobResult    = "job-result"    // starter -> shadow
	kindJobFinal     = "job-final"     // shadow -> schedd
	kindReleaseClaim = "release-claim" // schedd/shadow -> startd
	kindCheckpoint   = "checkpoint"    // starter -> shadow
	kindCkptCommit   = "ckpt-commit"   // shadow -> schedd (journal the checkpoint)
	kindJobEvicted   = "job-evicted"   // starter -> shadow
	kindClaimVacated = "claim-vacated" // startd -> schedd (claim gone before a starter ran)
	kindLeaseRenew   = "lease-renew"   // shadow -> startd (claim keep-alive)
	kindFlockPing    = "flock-ping"    // flockd -> peer matchmaker (liveness probe)
	kindFlockPong    = "flock-pong"    // peer matchmaker -> flockd
	kindFlockQuery   = "flock-query"   // schedd -> flockd (starved job wants a peer)
	kindFlockReply   = "flock-reply"   // flockd -> schedd (encoded grant or deny)
)

// advertiseMsg refreshes an ad at the matchmaker.
type advertiseMsg struct {
	// Kind is "machine" or "job".
	Kind string
	// Name keys the ad: machine name, or schedd/job for jobs.
	Name string
	// Schedd and Job identify the job advertisement's origin.
	Schedd string
	Job    JobID
	Ad     *classad.Ad
	// Flocked marks a job advertised to a peer pool's negotiator:
	// hierarchical negotiation serves it after the pool's own jobs.
	Flocked bool
}

// matchNotifyMsg tells a schedd about a compatible machine.
type matchNotifyMsg struct {
	Job       JobID
	Machine   string // startd actor name
	MachineAd *classad.Ad
}

// noMatchMsg tells a schedd that a job it advertised is compatible
// with no machine currently known to the matchmaker — not merely
// outbid this cycle, but unmatchable.  The schedd uses a run of these
// to detect a job starved by its own avoidance constraint.
type noMatchMsg struct {
	Job JobID
}

// claimRequestMsg asks a startd for the claim on its machine.
type claimRequestMsg struct {
	Job    JobID
	Schedd string
	JobAd  *classad.Ad
}

// claimReplyMsg grants or denies a claim.
type claimReplyMsg struct {
	Job     JobID
	Granted bool
	Reason  string
}

// activateMsg starts execution under an existing claim; the startd
// spawns a starter that will contact the named shadow.
type activateMsg struct {
	Job    JobID
	Shadow string
}

// fetchJobMsg is the starter asking its shadow for the job details.
type fetchJobMsg struct {
	Starter string
}

// jobDetailsMsg carries the program to the execution site.
type jobDetailsMsg struct {
	Job JobID
	// Universe selects the execution environment on the machine.
	Universe string
	// ResumeCPU is the checkpointed progress a Standard Universe job
	// restarts from.
	ResumeCPU time.Duration
	Program   *jvm.Program
	// IO is the I/O service the job will use, built by the shadow
	// over the submit-side file system.
	IO jvm.FileOps
	// Generic records that IO is the flawed generic-IOException
	// library (ModeNaive).
	Generic bool
}

// fetchAbortMsg tells the starter the shadow could not provide the
// job (the shadow already informed the schedd).
type fetchAbortMsg struct{ Job JobID }

// jobResultMsg reports an attempt's outcome to the shadow.
type jobResultMsg struct {
	Job JobID
	// Reported is what this mode's starter propagates.
	Reported scope.Result
	// True is the wrapper's ground-truth classification.
	True scope.Result
	CPU  time.Duration
}

// jobFinalMsg is the shadow's report to the schedd for one attempt.
type jobFinalMsg struct {
	Job     JobID
	Machine string
	// Err is nil for a program result; otherwise the scoped error
	// the schedd must dispose of.
	Reported scope.Result
	True     scope.Result
	CPU      time.Duration
	// FetchError, when non-nil, means the attempt never ran.
	FetchError error
	// Hold asks the schedd to park the job with FetchError instead
	// of requeueing: the shadow exhausted its fetch-retry budget, so
	// another site would only repeat the same submit-side failure.
	Hold bool
	// LostContact, when non-nil, means the execution site went
	// silent mid-attempt; the error carries the widened scope.
	LostContact error
	// Evicted marks an owner-reclaimed machine: requeue with no
	// blame attached to anyone.
	Evicted bool
	// Preempted qualifies Evicted: the claim was not reclaimed by
	// the owner but transferred to a higher-Rank job.
	Preempted bool
	// CheckpointCPU is the progress preserved across the failure or
	// eviction, to resume from at the next site.
	CheckpointCPU time.Duration
}

// releaseClaimMsg returns a machine to the unclaimed state.
type releaseClaimMsg struct{ Job JobID }

// leaseRenewMsg is the shadow's periodic keep-alive for its job's
// claim: the startd extends the lease on receipt.  When renewals stop
// — the schedd and its shadows crashed — the lease expires and the
// execute side discovers the submit side is gone.  Like periodic ads,
// lease traffic is deliberately not job-tagged: it is liveness plumbing,
// not error propagation, and tagging it would drown traces in
// heartbeats.
type leaseRenewMsg struct{ Job JobID }

// checkpointMsg ships a Standard Universe job's progress to the
// shadow, where it survives the execution machine.  The progress
// itself travels as the checkpoint-codec text payload (see
// ckptmsg.go): the checkpoint crosses the pool boundary, so a payload
// damaged in transit is a first-class fault the shadow must scope —
// reject the record, keep the previous checkpoint — not a programming
// error.
type checkpointMsg struct {
	Job     JobID
	Payload string
}

// ckptCommitMsg asks the schedd to make a validated checkpoint
// durable: journal it through the WAL so a restart — even on a
// different machine, even after a schedd crash — resumes from it.
type ckptCommitMsg struct {
	Job JobID
	CPU time.Duration
}

// jobEvictedMsg reports an eviction to the shadow, carrying the
// freshest checkpoint (zero for non-checkpointing universes).
type jobEvictedMsg struct {
	Job           JobID
	CheckpointCPU time.Duration
	// Preempted distinguishes a higher-Rank claim transfer from an
	// owner reclaim.
	Preempted bool
}

// claimVacatedMsg tells the schedd that a claim it held disappeared
// before (or without) a starter running — an eviction or preemption
// caught the machine in the Claimed state, so there is no starter to
// report through.  The schedd routes it to the job's shadow.
type claimVacatedMsg struct {
	Job           JobID
	Machine       string
	CheckpointCPU time.Duration
	Preempted     bool
}

// flockPingMsg is the flock coordinator's periodic liveness probe to
// a peer negotiator; like lease renewals it is liveness plumbing and
// deliberately not job-tagged.
type flockPingMsg struct {
	From string
	Seq  int64
}

// flockPongMsg is a negotiator's answer to a flock ping.
type flockPongMsg struct {
	From string
	Seq  int64
}

// flockQueryMsg asks the flock coordinator for a peer pool willing to
// negotiate for a starved job: "find me a live negotiator at flocking
// level >= Level".
type flockQueryMsg struct {
	Job    JobID
	Schedd string
	Level  int
}

// flockReplyMsg carries the coordinator's decision back to the
// schedd.  The decision itself — grant or deny — travels as the
// flock-codec text payload (see flockmsg.go), the one part of the
// protocol that crosses pool-administration boundaries in the real
// system; a truncated or corrupt payload is therefore a first-class
// fault the schedd must scope, not a programming error.
type flockReplyMsg struct {
	Job     JobID
	Payload string
}

// TracedJob implements obs.JobTagged on every message body that
// concerns one job, so the bus can attribute message events without
// knowing daemon types.  Periodic advertisements and the starter's
// first contact (which does not yet know the job) stay untagged and
// therefore untraced.
func (m matchNotifyMsg) TracedJob() int64  { return int64(m.Job) }
func (m noMatchMsg) TracedJob() int64      { return int64(m.Job) }
func (m claimRequestMsg) TracedJob() int64 { return int64(m.Job) }
func (m claimReplyMsg) TracedJob() int64   { return int64(m.Job) }
func (m activateMsg) TracedJob() int64     { return int64(m.Job) }
func (m jobDetailsMsg) TracedJob() int64   { return int64(m.Job) }
func (m fetchAbortMsg) TracedJob() int64   { return int64(m.Job) }
func (m jobResultMsg) TracedJob() int64    { return int64(m.Job) }
func (m jobFinalMsg) TracedJob() int64     { return int64(m.Job) }
func (m releaseClaimMsg) TracedJob() int64 { return int64(m.Job) }
func (m checkpointMsg) TracedJob() int64   { return int64(m.Job) }
func (m ckptCommitMsg) TracedJob() int64   { return int64(m.Job) }
func (m jobEvictedMsg) TracedJob() int64   { return int64(m.Job) }
func (m claimVacatedMsg) TracedJob() int64 { return int64(m.Job) }
func (m flockQueryMsg) TracedJob() int64   { return int64(m.Job) }
func (m flockReplyMsg) TracedJob() int64   { return int64(m.Job) }
