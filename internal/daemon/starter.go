package daemon

import (
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wrapper"
)

// Starter oversees the execution environment for one job: it creates
// the scratch directory, obtains the job from the shadow, invokes the
// JVM on the wrapper, and reports the result file's contents — or,
// under ModeNaive, the raw JVM exit code — back to the shadow.
//
// The starter is the manager of virtual-machine and remote-resource
// scope (Figure 3): errors of those scopes terminate the attempt on
// this host and are reported upward, never presented as program
// results (in scoped mode).
//
// For Standard Universe jobs the starter also drives transparent
// checkpointing: progress ships to the shadow periodically, and an
// evicted or crashed attempt resumes elsewhere from the last
// checkpoint rather than from scratch.
type Starter struct {
	bus    Runtime
	params Params
	name   string
	startd *Startd
	job    JobID
	shadow string

	scratch *vfs.FileSystem
	done    bool

	// Execution bookkeeping for checkpoints and eviction.
	universe   string
	resume     time.Duration
	execCPU    time.Duration
	startedAt  sim.Time
	stopTicker func()
}

func newStarter(bus Runtime, params Params, name string, startd *Startd, job JobID, shadow string) *Starter {
	bus = affinity(bus, name)
	scratch := vfs.New()
	if startd.cfg.ScratchPrep != nil {
		startd.cfg.ScratchPrep(scratch)
	}
	return &Starter{
		bus:     bus,
		params:  params,
		name:    name,
		startd:  startd,
		job:     job,
		shadow:  shadow,
		scratch: scratch,
	}
}

// begin asks the shadow for the job details.
func (st *Starter) begin() {
	st.bus.Send(st.name, st.shadow, kindFetchJob, fetchJobMsg{Starter: st.name})
}

// Receive implements sim.Actor.
func (st *Starter) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case jobDetailsMsg:
		st.execute(body)
	case fetchAbortMsg:
		// The shadow gave up; the startd learns via release-claim.
		st.finish()
	}
}

// execute runs the job and schedules the result report after the
// virtual time the attempt consumes.
func (st *Starter) execute(det jobDetailsMsg) {
	if st.done {
		return
	}
	// Select the execution environment.  A Java Universe job runs on
	// the machine's actual JVM installation behind the wrapper; the
	// Vanilla and Standard Universes run ordinary binaries directly
	// on the operating system, immune to the owner's Java
	// configuration.
	machine := st.startd.Machine()
	if det.Universe == "vanilla" || det.Universe == "standard" {
		machine = jvm.New(jvm.Config{HeapLimit: 1 << 40, Version: "native"})
	}
	st.universe = det.Universe
	st.resume = det.ResumeCPU
	st.startedAt = st.bus.Now()

	tr := st.params.tracer()
	w := &wrapper.Wrapper{
		Trace:    tr,
		TraceJob: int64(st.job),
		TraceNow: func() int64 { return int64(st.bus.Now()) },
	}
	exec := w.RunFrom(machine, det.Program, det.IO, st.scratch, det.ResumeCPU)
	st.execCPU = exec.CPU

	// Ground truth: the wrapper's result file (or its absence).
	trueRes := wrapper.ReadResult(st.scratch, "")
	reported := trueRes
	if st.params.Mode == ModeNaive {
		// The original design: the starter relies entirely on the
		// exit code of the JVM as an indicator of program success.
		reported = wrapper.RawExitInterpretation(exec)
	}
	if tr.Enabled() {
		if err := reported.Err(); err != nil {
			// The starter's reading of the attempt — under ModeNaive
			// this can differ from the wrapper's ground truth, and the
			// divergence is visible in the span's hops.
			tr.Emit(errorEvent(int64(st.bus.Now()), st.name, st.job, err))
		}
	}

	// Standard Universe: ship periodic checkpoints to the shadow, as
	// canonical ckpt records (see ckptmsg.go) — the payload crosses
	// the pool boundary and the shadow validates its CRC.
	if st.universe == "standard" && st.params.CheckpointInterval > 0 {
		st.stopTicker = st.bus.Every(st.params.CheckpointInterval, func() {
			if st.done || st.startd.crashed {
				return
			}
			cpu := st.resume + st.progressed()
			st.bus.Send(st.name, st.shadow, kindCheckpoint, checkpointMsg{
				Job:     st.job,
				Payload: EncodeCheckpoint(st.job, cpu),
			})
		})
	}

	elapsed := st.params.StartupOverhead + exec.CPU
	if k := st.checkpointsTaken(exec.CPU); k > 0 {
		elapsed += time.Duration(k) * st.params.CheckpointOverhead
	}
	st.bus.After(elapsed, func() {
		if st.done || st.startd.crashed {
			// A crashed machine reports nothing; the shadow's
			// result timeout discovers the silence.
			return
		}
		st.finish()
		st.bus.Send(st.name, st.shadow, kindJobResult, jobResultMsg{
			Job:      st.job,
			Reported: reported,
			True:     trueRes,
			CPU:      exec.CPU,
		})
		st.bus.Send(st.name, st.startd.Name(), "starter-done-internal",
			starterDoneMsg{Job: st.job, CPU: exec.CPU, Ran: true})
	})
}

// checkpointsTaken solves for the number of checkpoints an attempt of
// the given CPU pays for before it completes.  Each checkpoint stalls
// the program for CheckpointOverhead, and the stalls push the
// completion past later checkpoint ticks, which add their own stalls;
// the count is the fixed point of that recurrence.  The iteration
// converges only when the overhead is smaller than the interval — an
// overhead that long means the machine does nothing but checkpoint,
// so the bound caps the count rather than spinning.
func (st *Starter) checkpointsTaken(cpu time.Duration) int {
	o, iv := st.params.CheckpointOverhead, st.params.CheckpointInterval
	if st.universe != "standard" || iv <= 0 || o <= 0 {
		return 0
	}
	k := 0
	for range 64 {
		total := st.params.StartupOverhead + cpu + time.Duration(k)*o
		k2 := int(total / iv)
		if k2 <= k {
			break
		}
		k = k2
	}
	return k
}

// progressed returns the CPU this attempt has delivered so far: wall
// time since the startup overhead, minus the stalls already paid for
// checkpoints taken.
func (st *Starter) progressed() time.Duration {
	wall := st.bus.Now().Sub(st.startedAt)
	elapsed := wall - st.params.StartupOverhead
	if o, iv := st.params.CheckpointOverhead, st.params.CheckpointInterval; o > 0 && iv > 0 && st.universe == "standard" {
		elapsed -= time.Duration(wall/iv) * o
	}
	if elapsed < 0 {
		return 0
	}
	if elapsed > st.execCPU {
		return st.execCPU
	}
	return elapsed
}

// evict is called synchronously by the startd when the machine owner
// returns — parent and child share the machine, no network is
// involved.  A Standard Universe job takes a final checkpoint on its
// way out; the shadow is informed so the schedd can requeue.
func (st *Starter) evict() {
	if st.done {
		return
	}
	var checkpoint time.Duration
	if st.universe == "standard" {
		checkpoint = st.resume + st.progressed()
	}
	st.finish()
	st.bus.Send(st.name, st.shadow, kindJobEvicted, jobEvictedMsg{
		Job:           st.job,
		CheckpointCPU: checkpoint,
	})
}

// vacate is called synchronously by the startd when a higher-Rank
// claim preempts this one.  With a clean handoff — the grace window
// was long enough to ship a final checkpoint — a Standard Universe
// job leaves with its progress; an expired window forfeits everything
// back to the last periodic checkpoint (the shadow keeps the max it
// has committed).
func (st *Starter) vacate(clean bool) {
	if st.done {
		return
	}
	var checkpoint time.Duration
	if clean && st.universe == "standard" {
		checkpoint = st.resume + st.progressed()
	}
	st.finish()
	st.bus.Send(st.name, st.shadow, kindJobEvicted, jobEvictedMsg{
		Job:           st.job,
		CheckpointCPU: checkpoint,
		Preempted:     true,
	})
}

// drainVacate is called synchronously by the startd when an admin
// drain's grace window closes.  Like a preemption vacate, a clean
// handoff ships a final checkpoint and an expired window forfeits
// progress back to the last periodic checkpoint — but no challenger
// took the claim, so the attempt ends Evicted, not Preempted.
func (st *Starter) drainVacate(clean bool) {
	if st.done {
		return
	}
	var checkpoint time.Duration
	if clean && st.universe == "standard" {
		checkpoint = st.resume + st.progressed()
	}
	st.finish()
	st.bus.Send(st.name, st.shadow, kindJobEvicted, jobEvictedMsg{
		Job:           st.job,
		CheckpointCPU: checkpoint,
	})
}

// shadowVanished ends the attempt when the claim lease expires with no
// renewal: the shadow — and with it the whole submit side — is gone.
// From the execute side the prolonged silence invalidates the remote
// peer, so the network-scope condition is widened to remote-resource
// scope (Section 5: time turns a quiet channel into a dead partner).
// There is nobody left to report to; the job's CPU is simply released
// instead of burning for a submitter that no longer exists.
func (st *Starter) shadowVanished() {
	if st.done {
		return
	}
	tr := st.params.tracer()
	if tr.Enabled() {
		silence := scope.New(scope.ScopeNetwork, "ShadowSilent",
			"claim lease expired with no renewal from %s", st.shadow)
		silence.Kind = scope.KindEscaping
		err := silence.Widen(scope.ScopeRemoteResource, "ShadowVanished")
		tr.Emit(errorEvent(int64(st.bus.Now()), st.name, st.job, err))
	}
	st.finish()
}

// finish marks the starter done and stops its checkpoint ticker.
func (st *Starter) finish() {
	st.done = true
	if st.stopTicker != nil {
		st.stopTicker()
		st.stopTicker = nil
	}
}
