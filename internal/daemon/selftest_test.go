package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

// TestDegradationWithoutPeriodicTestMakesABlackHole degrades a
// machine's Java installation at runtime.  With only the startup
// self-test, the startd keeps advertising a capability it no longer
// has and jobs start failing there.
func TestDegradationWithoutPeriodicTest(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 1 // let jobs escape the black hole
	m1 := MachineConfig{Name: "m1", Memory: 4096, AdvertiseJava: true, SelfTest: true}
	m2 := MachineConfig{Name: "m2", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, m1, m2)

	// The installation rots five minutes in.
	eng.After(5*time.Minute, func() {
		startds[0].SetJVMConfig(jvm.Config{BadLibraryPath: true})
	})
	// Submit after the degradation.
	eng.After(10*time.Minute, func() {
		submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	})
	// Advance past the deferred submission, then drive to completion
	// (AllTerminal is vacuously true while the queue is empty).
	eng.RunFor(15 * time.Minute)
	runUntilDone(t, eng, schedd, 12*time.Hour)

	j := schedd.Jobs()[0]
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// The degraded machine attracted and failed the first attempt.
	if j.Attempts[0].Machine != "m1" || len(j.Attempts) < 2 {
		t.Errorf("attempts = %+v", j.Attempts)
	}
}

// TestDegradationWithPeriodicTestIsCaught: with the periodic
// self-test the degradation is discovered at the next ad refresh and
// the machine stops advertising Java before any job is wasted.
func TestDegradationWithPeriodicTest(t *testing.T) {
	params := DefaultParams()
	m1 := MachineConfig{Name: "m1", Memory: 4096, AdvertiseJava: true,
		SelfTest: true, PeriodicSelfTest: true}
	m2 := MachineConfig{Name: "m2", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, m1, m2)

	eng.After(5*time.Minute, func() {
		startds[0].SetJVMConfig(jvm.Config{BadLibraryPath: true})
	})
	// Submit well after the next ad refresh (ads are per minute).
	eng.After(10*time.Minute, func() {
		submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	})
	// Advance past the deferred submission, then drive to completion
	// (AllTerminal is vacuously true while the queue is empty).
	eng.RunFor(15 * time.Minute)
	runUntilDone(t, eng, schedd, 12*time.Hour)

	j := schedd.Jobs()[0]
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if len(j.Attempts) != 1 || j.Attempts[0].Machine != "m2" {
		t.Errorf("attempts = %+v", j.Attempts)
	}
	if startds[0].JobsRun != 0 {
		t.Error("degraded machine ran a job")
	}
}

// TestRecoveryWithPeriodicTest: a repaired installation is
// re-advertised automatically.
func TestRecoveryWithPeriodicTest(t *testing.T) {
	params := DefaultParams()
	m1 := MachineConfig{Name: "only", Memory: 2048, AdvertiseJava: true,
		SelfTest: true, PeriodicSelfTest: true, JVM: jvm.Config{Broken: true}}
	eng, _, schedd, _, startds := testPool(t, params, m1)

	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	// The owner fixes the installation after two hours.
	eng.After(2*time.Hour, func() {
		startds[0].SetJVMConfig(jvm.Config{})
	})
	runUntilDone(t, eng, schedd, 12*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.Finished < 7.2e12 { // ~2h in nanoseconds
		t.Errorf("finished at %v, before the repair", j.Finished)
	}
}
