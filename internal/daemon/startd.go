package daemon

import (
	"fmt"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
)

// MachineConfig describes one execution machine: its resources, the
// owner's policy, and — crucially — the owner's *assertions* about
// the Java installation, which may be wrong.
type MachineConfig struct {
	Name   string
	Memory int64 // MiB
	Arch   string
	OpSys  string
	// JVM is the actual Java installation on the machine.
	JVM jvm.Config
	// AdvertiseJava is the owner's assertion that Java works here.
	AdvertiseJava bool
	// SelfTest makes the startd verify the installation at startup
	// instead of trusting the assertion (the Autoconf lesson of
	// Section 5).  If the test fails, the startd simply declines to
	// advertise its Java capability.
	SelfTest bool
	// PeriodicSelfTest re-runs the verification before every ad
	// refresh, so an installation that degrades *after* startup is
	// also caught — the natural extension of the paper's startup
	// test.
	PeriodicSelfTest bool
	// OwnerRequirements is the owner's policy expression; empty
	// means accept any job.
	OwnerRequirements string
	// ScratchPrep, when non-nil, is applied to each starter's fresh
	// scratch file system before the job runs.  It models execution
	// sandboxes that are already degraded — a nearly full disk, a
	// read-only result path — and is the fault-injection point for
	// remote-resource-scope scratch failures.
	ScratchPrep func(fs *vfs.FileSystem)
}

// StartdState is the claim state of a machine.
type StartdState int

// Startd claim states.
const (
	StartdUnclaimed StartdState = iota
	StartdClaimed
	StartdRunning
	// StartdOwner: the machine's owner is using it; visiting jobs
	// are evicted and no ads are published — the opportunistic-cycles
	// discipline Condor was built on.
	StartdOwner
)

// Startd manages one execution machine: it enforces the owner's
// policy regarding when and how visiting jobs may be executed, and it
// creates a starter to oversee each job.
type Startd struct {
	bus    Runtime
	params Params
	cfg    MachineConfig
	tr     obs.Tracer

	machine *jvm.Machine
	// hasJava is what the startd actually advertises, after the
	// optional self-test.
	hasJava bool

	state      StartdState
	claimedBy  string
	claimedJob JobID
	starterSeq int
	starter    string
	starterObj *Starter
	crashed    bool

	// claimGen invalidates lease timers from earlier claims; each
	// grant and each claim end bumps it.
	claimGen int
	// leaseExpiry is when the current claim's lease runs out; every
	// renewal from the shadow pushes it forward.
	leaseExpiry sim.Time

	// Preemption state (Params.Preemption).  incumbentRank is the Rank
	// the current claim's job scored on this machine — the bar a
	// challenger must strictly beat.  pendingClaim holds the winning
	// challenger's request while the incumbent vacates; vacating marks
	// the grace window in progress (the machine stops advertising, so
	// a second challenger cannot pile on).
	incumbentRank float64
	pendingClaim  *claimRequestMsg
	vacating      bool
	// vacateGraceOverride replaces Params.VacateGracePeriod on this
	// machine, for fault injection (preempt-grace-expiry).
	vacateGraceOverride time.Duration

	// Drain state (see drain.go).  A draining machine has stopped
	// matching and is vacating its resident within the grace window; a
	// drained machine sits idle outside the pool until Resume.
	draining bool
	drained  bool

	// adCache holds the machine ad per (claimed, hasJava) shape —
	// the only dynamic inputs of buildAd.  Re-advertising the same
	// immutable ad object lets the matchmaker skip re-indexing and
	// keeps the compiled-Requirements caches warm.
	adCache [4]*classad.Ad

	// Metrics.
	ClaimsGranted int
	ClaimsDenied  int
	JobsRun       int
	CPUDelivered  time.Duration
	SelfTestFail  bool
	Evictions     int
	// Preemptions counts claims transferred to a higher-Rank job.
	Preemptions int
	// LeasesExpired counts claims released because renewals stopped —
	// each one is an orphaned claim the lease protocol reclaimed.
	LeasesExpired int
	// Drains counts admin drain requests accepted by this machine.
	Drains int
}

// NewStartd creates, registers, and starts the startd for a machine.
// Its actor name is the machine name.
func NewStartd(bus Runtime, params Params, cfg MachineConfig) *Startd {
	if cfg.Arch == "" {
		cfg.Arch = "X86_64"
	}
	if cfg.OpSys == "" {
		cfg.OpSys = "LINUX"
	}
	if cfg.Memory == 0 {
		cfg.Memory = 1024
	}
	bus = affinity(bus, cfg.Name)
	s := &Startd{
		bus:     bus,
		params:  params,
		cfg:     cfg,
		tr:      params.tracer(),
		machine: jvm.New(cfg.JVM),
	}
	s.hasJava = cfg.AdvertiseJava
	if cfg.SelfTest && s.hasJava {
		if err := s.machine.SelfTest(); err != nil {
			// "If found lacking, then the startd simply declines
			// to advertise its Java capability."
			s.hasJava = false
			s.SelfTestFail = true
		}
	}
	bus.Register(cfg.Name, s)
	s.advertise()
	bus.Every(params.AdInterval, s.advertise)
	return s
}

// Name returns the startd's actor name.
func (s *Startd) Name() string { return s.cfg.Name }

// Machine returns the JVM installation, for tests.
func (s *Startd) Machine() *jvm.Machine { return s.machine }

// State returns the claim state, for tests.
func (s *Startd) State() StartdState { return s.state }

// buildAd returns the machine's ClassAd, cached per (claimed,
// hasJava) state.  The returned ad is shared and must not be mutated
// by callers.
func (s *Startd) buildAd() *classad.Ad {
	key := 0
	if s.state != StartdUnclaimed {
		key |= 1
	}
	if s.hasJava {
		key |= 2
	}
	if ad := s.adCache[key]; ad != nil {
		return ad
	}
	ad := classad.NewAd()
	ad.SetString("Machine", s.cfg.Name)
	ad.SetString("Arch", s.cfg.Arch)
	ad.SetString("OpSys", s.cfg.OpSys)
	ad.SetInt("Memory", s.cfg.Memory)
	ad.SetBool("HasJava", s.hasJava)
	ad.SetString("JavaVersion", s.machine.Config().Version)
	state := "Unclaimed"
	if s.state != StartdUnclaimed {
		state = "Claimed"
	}
	ad.SetString("State", state)
	if s.cfg.OwnerRequirements != "" {
		ad.MustSetExpr("Requirements", s.cfg.OwnerRequirements)
	}
	ad.Precompile()
	s.adCache[key] = ad
	return ad
}

// Evict reclaims the machine for its owner: any running job is told
// to stop (a Standard Universe job checkpoints first), the claim ends,
// and the machine stops advertising until OwnerLeft.
func (s *Startd) Evict() {
	if s.crashed || s.state == StartdOwner {
		return
	}
	if s.pendingClaim != nil {
		// A challenger was waiting out the incumbent's grace window;
		// the owner's return beats both jobs.
		s.bus.Send(s.cfg.Name, s.pendingClaim.Schedd, kindClaimReply,
			claimReplyMsg{Job: s.pendingClaim.Job, Granted: false,
				Reason: "owner reclaimed the machine"})
		s.pendingClaim = nil
	}
	s.vacating = false
	if s.state == StartdRunning && s.starterObj != nil {
		// Synchronous: the startd signals its own child process.
		s.starterObj.evict()
		s.bus.Unregister(s.starter)
		s.starter = ""
		s.starterObj = nil
	} else if s.state == StartdClaimed && s.claimedJob != 0 && s.claimedBy != "" {
		// The claim was granted but no starter runs yet — there is no
		// child to report through, so tell the submit side directly.
		// Without this notice the shadow would sit on its activation
		// timeout while the claim's lease ran out, and the job would
		// requeue hours late for an eviction the machine knew about
		// instantly.
		s.bus.Send(s.cfg.Name, s.claimedBy, kindClaimVacated, claimVacatedMsg{
			Job:     s.claimedJob,
			Machine: s.cfg.Name,
		})
	}
	s.Evictions++
	s.tr.Count("startd.evictions", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "evicted",
			Detail: "owner reclaimed the machine"})
	}
	s.state = StartdOwner
	s.claimedBy = ""
	s.claimedJob = 0
	s.claimGen++
	if s.draining {
		// The owner's return emptied the machine mid-drain; the drain
		// completes now, and the machine stays out of the pool when
		// the owner leaves again.
		s.finishDrain()
	}
}

// OwnerLeft returns the machine to the pool after owner use.
func (s *Startd) OwnerLeft() {
	if s.crashed || s.state != StartdOwner {
		return
	}
	s.state = StartdUnclaimed
	s.advertise()
}

// Crash takes the machine down abruptly: the startd and any starter
// vanish from the network mid-protocol.  Nobody is told — the rest of
// the system must discover the silence through timeouts and ad
// expiry, exactly as with a real machine failure.
func (s *Startd) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.tr.Count("startd.crashes", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "crashed"})
	}
	s.bus.Unregister(s.cfg.Name)
	if s.starter != "" {
		s.bus.Unregister(s.starter)
		s.starter = ""
	}
}

// Crashed reports whether the machine is down.
func (s *Startd) Crashed() bool { return s.crashed }

// Restart brings a crashed machine back as unclaimed; any previous
// claim is forgotten, as after a reboot.
func (s *Startd) Restart() {
	if !s.crashed {
		return
	}
	s.crashed = false
	s.state = StartdUnclaimed
	s.claimedBy = ""
	s.claimedJob = 0
	s.pendingClaim = nil
	s.vacating = false
	// A reboot forgets an administrative drain, like it forgets the
	// claim: drains are runtime state, not machine configuration.
	s.draining = false
	s.drained = false
	s.claimGen++
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Code: "restarted"})
	}
	s.bus.Register(s.cfg.Name, s)
	s.advertise()
}

// SetJVMConfig replaces the machine's Java installation at runtime —
// the owner reconfigures it, or it silently rots.  The startd's view
// of its capability follows its self-test policy: with PeriodicSelfTest
// the change is discovered at the next ad refresh; with only the
// startup test, a degradation goes unnoticed and the machine becomes
// a black hole.
func (s *Startd) SetJVMConfig(cfg jvm.Config) {
	s.machine = jvm.New(cfg)
	if s.cfg.SelfTest && !s.cfg.PeriodicSelfTest {
		// Only the startup test was configured; the owner's change
		// is trusted blindly, as the paper's pool did.
		s.hasJava = s.cfg.AdvertiseJava
	}
}

// runSelfTest updates hasJava from a fresh probe of the installation.
func (s *Startd) runSelfTest() {
	if !s.cfg.AdvertiseJava {
		s.hasJava = false
		return
	}
	if err := s.machine.SelfTest(); err != nil {
		s.hasJava = false
		s.SelfTestFail = true
	} else {
		s.hasJava = true
	}
}

// advertise refreshes the machine ad at the matchmaker.  Unclaimed
// machines are always offered; a claimed machine is invisible to
// negotiation unless preemption is on, in which case it advertises a
// fresh ad carrying CurrentRank — the incumbent's Rank, the bar a
// challenger must strictly beat.  A machine mid-vacate stays silent:
// its claim is already spoken for.
func (s *Startd) advertise() {
	if s.crashed || s.draining || s.drained {
		// A draining or drained machine is out of the matchmaking
		// game entirely; its stale ad expires at the matchmaker.
		return
	}
	if s.state != StartdUnclaimed {
		if !s.params.Preemption || s.vacating ||
			(s.state != StartdClaimed && s.state != StartdRunning) {
			return
		}
		s.bus.Send(s.cfg.Name, s.params.matchmaker(), kindAdvertise, advertiseMsg{
			Kind: "machine",
			Name: s.cfg.Name,
			Ad:   s.buildClaimedAd(),
		})
		return
	}
	if s.cfg.PeriodicSelfTest {
		s.runSelfTest()
	}
	s.bus.Send(s.cfg.Name, s.params.matchmaker(), kindAdvertise, advertiseMsg{
		Kind: "machine",
		Name: s.cfg.Name,
		Ad:   s.buildAd(),
	})
}

// buildClaimedAd renders the preemption-mode ad of a claimed machine.
// Unlike buildAd it is not cached: CurrentRank varies per claim, and
// the matchmaker treats each fresh object as a content change anyway.
func (s *Startd) buildClaimedAd() *classad.Ad {
	ad := s.buildAd().Copy()
	ad.SetReal("CurrentRank", s.incumbentRank)
	ad.Precompile()
	return ad
}

// Receive implements sim.Actor.
func (s *Startd) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case claimRequestMsg:
		s.handleClaim(body)
	case activateMsg:
		s.handleActivate(body)
	case releaseClaimMsg:
		s.handleRelease(body)
	case starterDoneMsg:
		s.handleStarterDone(body)
	case leaseRenewMsg:
		s.handleLeaseRenew(body)
	}
}

// handleLeaseRenew extends the current claim's lease: the shadow is
// alive, so the submit side still stands behind the claim.
func (s *Startd) handleLeaseRenew(m leaseRenewMsg) {
	if s.params.LeaseDuration <= 0 || m.Job != s.claimedJob {
		return
	}
	if s.state != StartdClaimed && s.state != StartdRunning {
		return
	}
	s.leaseExpiry = s.bus.Now().Add(s.params.LeaseDuration)
}

// armLease starts the lease clock for a freshly granted claim.  The
// expiry check re-arms itself for as long as renewals keep pushing the
// deadline out; a bumped claimGen retires it.
func (s *Startd) armLease() {
	if s.params.LeaseDuration <= 0 {
		return
	}
	s.leaseExpiry = s.bus.Now().Add(s.params.LeaseDuration)
	gen := s.claimGen
	s.bus.After(s.params.LeaseDuration, func() { s.checkLease(gen) })
}

// checkLease fires at the lease deadline.  A renewed lease re-arms the
// check for the new deadline; an expired one means the submit side
// vanished — the starter (if any) learns its shadow is gone, the job's
// CPU is released, and the machine returns to the pool.
func (s *Startd) checkLease(gen int) {
	if s.crashed || gen != s.claimGen {
		return
	}
	now := s.bus.Now()
	if now < s.leaseExpiry {
		s.bus.After(s.leaseExpiry.Sub(now), func() { s.checkLease(gen) })
		return
	}
	s.LeasesExpired++
	s.tr.Count("startd.leases_expired", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(now), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "lease-expired",
			Detail: "no renewal within the lease period; releasing the claim"})
	}
	if s.starterObj != nil {
		s.starterObj.shadowVanished()
	}
	s.teardown()
}

// handleClaim verifies the owner's policy and the machine's own
// requirements before granting.  Matched parties verify one another
// (Figure 1's claiming protocol); the matchmaker's notification alone
// proves nothing.
func (s *Startd) handleClaim(req claimRequestMsg) {
	deny := func(reason string) {
		s.ClaimsDenied++
		s.tr.Count("startd.claims_denied", 1)
		s.bus.Send(s.cfg.Name, req.Schedd, kindClaimReply,
			claimReplyMsg{Job: req.Job, Granted: false, Reason: reason})
	}
	if s.draining || s.drained {
		deny("machine is draining")
		return
	}
	if s.state != StartdUnclaimed {
		// Rank-based preemption: a claimed machine entertains a
		// challenger whose Rank strictly beats the incumbent's.  The
		// reply is deferred — the challenger is answered when the claim
		// actually transfers, after the incumbent's vacate window.
		if s.params.Preemption && s.pendingClaim == nil &&
			(s.state == StartdClaimed || s.state == StartdRunning) &&
			classad.Match(s.buildAd(), req.JobAd) &&
			classad.Rank(req.JobAd, s.buildAd()) > s.incumbentRank {
			r := req
			s.pendingClaim = &r
			if s.tr.Enabled() {
				s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
					Kind: obs.KindState, Job: int64(s.claimedJob), Code: "preempt-notice",
					Detail: fmt.Sprintf("job %d from %s outranks the incumbent; vacating",
						req.Job, req.Schedd)})
			}
			s.beginVacate()
			return
		}
		deny("machine already claimed")
		return
	}
	if !classad.Match(s.buildAd(), req.JobAd) {
		deny("requirements not met at claim time")
		return
	}
	s.state = StartdClaimed
	s.claimedBy = req.Schedd
	s.claimedJob = req.Job
	s.incumbentRank = classad.Rank(req.JobAd, s.buildAd())
	s.claimGen++
	s.armLease()
	s.ClaimsGranted++
	s.tr.Count("startd.claims_granted", 1)
	s.bus.Send(s.cfg.Name, req.Schedd, kindClaimReply,
		claimReplyMsg{Job: req.Job, Granted: true})
}

// beginVacate opens the incumbent's grace window.  Shipping the final
// checkpoint costs StartupOverhead of machine time (state transfer is
// the same data motion as job start); a grace window at least that
// long ends with a clean checkpointed handoff at the moment the
// checkpoint is away, while a shorter one expires first and the
// incumbent forfeits everything since its last periodic checkpoint.
func (s *Startd) beginVacate() {
	s.vacating = true
	grace := s.params.vacateGrace()
	if s.vacateGraceOverride > 0 {
		grace = s.vacateGraceOverride
	}
	ship := s.params.StartupOverhead
	clean := grace >= ship
	delay := grace
	if clean {
		delay = ship
	}
	gen := s.claimGen
	s.bus.After(delay, func() { s.completeVacate(gen, clean) })
}

// completeVacate ends the incumbent's attempt at the close of the
// grace window and hands the claim to the waiting challenger.  The
// claimGen fence retires the timer if the claim already ended some
// other way (natural completion, eviction, lease expiry) — teardown
// transfers the pending claim itself in those cases.
func (s *Startd) completeVacate(gen int, clean bool) {
	if s.crashed || gen != s.claimGen || s.pendingClaim == nil {
		return
	}
	s.Preemptions++
	s.tr.Count("startd.preemptions", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "preempted",
			Detail: fmt.Sprintf("claim transferred to job %d (clean checkpoint: %v)",
				s.pendingClaim.Job, clean)})
	}
	if s.starterObj != nil {
		// Synchronous, like Evict: the startd signals its own child.
		s.starterObj.vacate(clean)
		s.bus.Unregister(s.starter)
		s.starter = ""
		s.starterObj = nil
	} else if s.claimedJob != 0 && s.claimedBy != "" {
		// No starter yet: tell the submit side directly.
		s.bus.Send(s.cfg.Name, s.claimedBy, kindClaimVacated, claimVacatedMsg{
			Job:       s.claimedJob,
			Machine:   s.cfg.Name,
			Preempted: true,
		})
	}
	s.transferClaim()
}

// transferClaim seats the pending challenger on the machine: the
// claim protocol resumes exactly where a fresh grant would, with the
// deferred claim reply finally sent.
func (s *Startd) transferClaim() {
	req := *s.pendingClaim
	s.pendingClaim = nil
	s.vacating = false
	s.state = StartdClaimed
	s.claimedBy = req.Schedd
	s.claimedJob = req.Job
	s.claimGen++
	s.incumbentRank = classad.Rank(req.JobAd, s.buildAd())
	s.armLease()
	s.ClaimsGranted++
	s.tr.Count("startd.claims_granted", 1)
	s.bus.Send(s.cfg.Name, req.Schedd, kindClaimReply,
		claimReplyMsg{Job: req.Job, Granted: true})
}

// SetVacateGrace overrides the pool-wide vacate grace window on this
// machine, for fault injection (preempt-grace-expiry).
func (s *Startd) SetVacateGrace(d time.Duration) { s.vacateGraceOverride = d }

// handleActivate spawns a starter for the claimed job.
func (s *Startd) handleActivate(act activateMsg) {
	if s.state != StartdClaimed || act.Job != s.claimedJob {
		// A stale activation: the claim is gone.  Ignore; the
		// shadow's timeout policy covers the schedd.
		return
	}
	s.state = StartdRunning
	s.starterSeq++
	name := fmt.Sprintf("starter:%s:%d", s.cfg.Name, s.starterSeq)
	s.starter = name
	st := newStarter(s.bus, s.params, name, s, act.Job, act.Shadow)
	s.starterObj = st
	s.bus.Register(name, st)
	st.begin()
}

// handleRelease returns the machine to service.
func (s *Startd) handleRelease(rel releaseClaimMsg) {
	if rel.Job != s.claimedJob {
		return
	}
	s.teardown()
}

// starterDoneMsg is the starter's private completion notice.
type starterDoneMsg struct {
	Job JobID
	CPU time.Duration
	Ran bool
}

func (s *Startd) handleStarterDone(done starterDoneMsg) {
	if done.Job != s.claimedJob {
		return
	}
	if done.Ran {
		s.JobsRun++
		s.CPUDelivered += done.CPU
	}
	s.teardown()
}

func (s *Startd) teardown() {
	if s.starter != "" {
		s.bus.Unregister(s.starter)
		s.starter = ""
	}
	s.starterObj = nil
	s.state = StartdUnclaimed
	s.claimedBy = ""
	s.claimedJob = 0
	s.claimGen++
	if s.pendingClaim != nil {
		// The incumbent left on its own during the grace window; the
		// challenger takes the claim without waiting out the vacate.
		s.transferClaim()
		return
	}
	s.vacating = false
	if s.draining {
		// The resident left (naturally or vacated) while the machine
		// was draining: the drain completes instead of re-advertising.
		s.finishDrain()
		return
	}
	// Re-advertise immediately: an idle machine returns to the pool
	// without waiting for the next ad interval.  (For a black-hole
	// machine this is exactly what makes it so hungry.)
	s.advertise()
}
