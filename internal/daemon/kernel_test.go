package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// testPool assembles a matchmaker, one schedd, and the given machines
// on a fresh engine.
func testPool(t *testing.T, params Params, machines ...MachineConfig) (*sim.Engine, *sim.Bus, *Schedd, *Matchmaker, []*Startd) {
	t.Helper()
	eng := sim.New(1)
	bus := sim.NewBus(eng, 5*time.Millisecond)
	mm := NewMatchmaker(bus, params)
	schedd := NewSchedd(bus, params, "schedd")
	var startds []*Startd
	for _, mc := range machines {
		startds = append(startds, NewStartd(bus, params, mc))
	}
	return eng, bus, schedd, mm, startds
}

func goodMachine(name string) MachineConfig {
	return MachineConfig{Name: name, Memory: 2048, AdvertiseJava: true}
}

func submitJavaJob(s *Schedd, prog *jvm.Program) JobID {
	job := &Job{
		Owner:      "alice",
		Ad:         NewJavaJobAd("alice", 128),
		Program:    prog,
		Executable: "/home/alice/Main.class",
	}
	s.SubmitFS.WriteFile("/home/alice/Main.class", []byte("\xca\xfe\xba\xbe class bytes"))
	return s.Submit(job)
}

// runUntilDone drives the engine until all jobs are terminal or the
// deadline passes.
func runUntilDone(t *testing.T, eng *sim.Engine, s *Schedd, limit time.Duration) {
	t.Helper()
	deadline := eng.Now().Add(limit)
	for eng.Now() < deadline && !s.AllTerminal() {
		eng.RunFor(30 * time.Second)
	}
}

// TestFigure1KernelSingleJob exercises the complete kernel protocol
// chain of Figure 1: advertise -> negotiate -> match-notify -> claim
// -> activate -> shadow/starter -> result -> disposition.
func TestFigure1KernelSingleJob(t *testing.T) {
	eng, _, schedd, mm, startds := testPool(t, DefaultParams(), goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.WellBehaved(5*time.Minute))
	runUntilDone(t, eng, schedd, 2*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) != 1 {
		t.Fatalf("attempts = %d", len(j.Attempts))
	}
	att := j.Attempts[0]
	if att.Machine != "m1" || att.CPU != 5*time.Minute {
		t.Errorf("attempt = %+v", att)
	}
	if att.Reported.Status != scope.StatusExited || att.Reported.ExitCode != 0 {
		t.Errorf("reported = %+v", att.Reported)
	}
	if mm.Cycles == 0 || mm.MatchesMade != 1 {
		t.Errorf("mm cycles=%d matches=%d", mm.Cycles, mm.MatchesMade)
	}
	if startds[0].JobsRun != 1 || startds[0].CPUDelivered != 5*time.Minute {
		t.Errorf("startd: %+v", startds[0])
	}
	if startds[0].State() != StartdUnclaimed {
		t.Error("machine should be unclaimed after the job")
	}
	if len(schedd.Reports) != 1 || schedd.Reports[0].IncidentalLeak {
		t.Errorf("reports = %+v", schedd.Reports)
	}
}

// TestFigure3ScopeRouting injects one error per scope tier and
// verifies each reaches its managing program with the disposition the
// paper specifies.
func TestFigure3ScopeRouting(t *testing.T) {
	t.Run("program scope completes", func(t *testing.T) {
		eng, _, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
		id := submitJavaJob(schedd, jvm.NullPointer())
		runUntilDone(t, eng, schedd, 2*time.Hour)
		j := schedd.Job(id)
		if j.State != JobCompleted {
			t.Fatalf("state = %v", j.State)
		}
		if j.Attempts[0].Reported.Exception != "NullPointerException" {
			t.Errorf("reported = %+v", j.Attempts[0].Reported)
		}
	})

	t.Run("job scope is unexecutable", func(t *testing.T) {
		eng, _, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
		id := submitJavaJob(schedd, jvm.CorruptImage())
		runUntilDone(t, eng, schedd, 2*time.Hour)
		j := schedd.Job(id)
		if j.State != JobUnexecutable {
			t.Fatalf("state = %v", j.State)
		}
		if scope.ScopeOf(j.FinalErr) != scope.ScopeJob {
			t.Errorf("final err = %v", j.FinalErr)
		}
		if len(j.Attempts) != 1 {
			t.Errorf("a job-scope error must not be retried: %d attempts", len(j.Attempts))
		}
	})

	t.Run("missing executable is job scope via shadow", func(t *testing.T) {
		eng, _, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
		job := &Job{Owner: "alice", Ad: NewJavaJobAd("alice", 128),
			Program: jvm.WellBehaved(time.Minute), Executable: "/no/such/file"}
		id := schedd.Submit(job)
		runUntilDone(t, eng, schedd, 2*time.Hour)
		j := schedd.Job(id)
		if j.State != JobUnexecutable {
			t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
		}
		se, _ := scope.AsError(j.FinalErr)
		if se == nil || se.Code != "MissingInputFileError" || se.Scope != scope.ScopeJob {
			t.Errorf("final err = %v", j.FinalErr)
		}
	})

	t.Run("remote resource scope requeues to another machine", func(t *testing.T) {
		// Without avoidance the high-ranked failing machine would
		// re-attract the job forever (the Section 5 black hole);
		// one strike steers the retry elsewhere.
		params := DefaultParams()
		params.ChronicFailureThreshold = 1
		bad := MachineConfig{Name: "bad", Memory: 4096, AdvertiseJava: true,
			JVM: jvm.Config{BadLibraryPath: true}}
		good := MachineConfig{Name: "good", Memory: 1024, AdvertiseJava: true}
		eng, _, schedd, _, _ := testPool(t, params, bad, good)
		// Rank prefers memory, so the bad machine is matched first.
		id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
		runUntilDone(t, eng, schedd, 6*time.Hour)
		j := schedd.Job(id)
		if j.State != JobCompleted {
			t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
		}
		if len(j.Attempts) < 2 {
			t.Fatalf("expected a failed attempt then success, got %d", len(j.Attempts))
		}
		first := j.Attempts[0]
		if first.Machine != "bad" {
			t.Errorf("first attempt at %s", first.Machine)
		}
		if first.True.Scope != scope.ScopeRemoteResource {
			t.Errorf("first attempt scope = %v", first.True.Scope)
		}
		last := j.LastAttempt()
		if last.Machine != "good" || last.Reported.Status != scope.StatusExited {
			t.Errorf("last attempt = %+v", last)
		}
		// The user never saw the remote-resource error.
		if len(schedd.Reports) != 1 || schedd.Reports[0].IncidentalLeak {
			t.Errorf("reports = %+v", schedd.Reports)
		}
	})

	t.Run("virtual machine scope requeues", func(t *testing.T) {
		params := DefaultParams()
		params.ChronicFailureThreshold = 1
		small := MachineConfig{Name: "small", Memory: 4096, AdvertiseJava: true,
			JVM: jvm.Config{HeapLimit: 1 << 20}}
		big := MachineConfig{Name: "big", Memory: 1024, AdvertiseJava: true,
			JVM: jvm.Config{HeapLimit: 256 << 20}}
		eng, _, schedd, _, _ := testPool(t, params, small, big)
		id := submitJavaJob(schedd, jvm.MemoryHog(16<<20))
		runUntilDone(t, eng, schedd, 6*time.Hour)
		j := schedd.Job(id)
		if j.State != JobCompleted {
			t.Fatalf("state = %v", j.State)
		}
		if j.Attempts[0].True.Scope != scope.ScopeVirtualMachine {
			t.Errorf("first attempt scope = %v", j.Attempts[0].True.Scope)
		}
	})

	t.Run("local resource scope requeues after soft timeout", func(t *testing.T) {
		params := DefaultParams()
		params.Mount = MountPolicy{Kind: MountSoft, SoftTimeout: 2 * time.Minute, RetryInterval: 20 * time.Second}
		eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))
		id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
		schedd.SubmitFS.SetOffline(true)
		// Restore the file system after 10 minutes of outage.
		eng.After(10*time.Minute, func() { schedd.SubmitFS.SetOffline(false) })
		runUntilDone(t, eng, schedd, 6*time.Hour)
		j := schedd.Job(id)
		if j.State != JobCompleted {
			t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
		}
		// At least one attempt must have failed at fetch with a
		// local-resource error.
		foundFetch := false
		for _, att := range j.Attempts {
			if att.FetchError != nil {
				foundFetch = true
				if scope.ScopeOf(att.FetchError) != scope.ScopeLocalResource {
					t.Errorf("fetch error scope = %v", scope.ScopeOf(att.FetchError))
				}
			}
		}
		if !foundFetch {
			t.Error("expected a fetch failure during the outage")
		}
	})
}

// TestNaiveModeLeaksIncidentalErrors reproduces Section 2.3: under
// the naive discipline, environmental failures return to the user as
// program results.
func TestNaiveModeLeaksIncidentalErrors(t *testing.T) {
	params := DefaultParams()
	params.Mode = ModeNaive
	bad := MachineConfig{Name: "bad", Memory: 4096, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	eng, _, schedd, _, _ := testPool(t, params, bad)
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 2*time.Hour)

	j := schedd.Job(id)
	// The naive system declares the job complete: the JVM exited 1.
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if len(schedd.Reports) != 1 {
		t.Fatalf("reports = %+v", schedd.Reports)
	}
	rep := schedd.Reports[0]
	if !rep.IncidentalLeak {
		t.Error("the leak should be detected against ground truth")
	}
	if rep.Result.ExitCode != 1 {
		t.Errorf("user saw exit %d", rep.Result.ExitCode)
	}
	// The same scenario under the scoped discipline retries instead.
	params2 := DefaultParams()
	eng2, _, schedd2, _, _ := testPool(t, params2, bad)
	id2 := submitJavaJob(schedd2, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng2, schedd2, 2*time.Hour)
	j2 := schedd2.Job(id2)
	if j2.State == JobCompleted {
		t.Error("scoped mode must not complete on a remote-resource error")
	}
	_ = eng2
	_ = id2
}

// TestHeldAfterMaxAttempts verifies the requeue bound.
func TestHeldAfterMaxAttempts(t *testing.T) {
	params := DefaultParams()
	params.MaxAttempts = 3
	bad := MachineConfig{Name: "bad", Memory: 4096, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	eng, _, schedd, _, _ := testPool(t, params, bad)
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 12*time.Hour)
	j := schedd.Job(id)
	if j.State != JobHeld {
		t.Fatalf("state = %v", j.State)
	}
	if len(j.Attempts) != 3 {
		t.Errorf("attempts = %d", len(j.Attempts))
	}
	se, _ := scope.AsError(j.FinalErr)
	if se == nil || se.Code != "AttemptsExhausted" {
		t.Errorf("final err = %v", j.FinalErr)
	}
}

// TestStartdSelfTest verifies the Section 5 fix: a self-testing
// startd with a broken Java declines to advertise the capability and
// never attracts Java jobs.
func TestStartdSelfTest(t *testing.T) {
	params := DefaultParams()
	broken := MachineConfig{Name: "broken", Memory: 4096, AdvertiseJava: true,
		SelfTest: true, JVM: jvm.Config{Broken: true}}
	good := MachineConfig{Name: "good", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, broken, good)
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 2*time.Hour)

	if !startds[0].SelfTestFail {
		t.Error("self-test should have failed")
	}
	j := schedd.Job(id)
	if j.State != JobCompleted || len(j.Attempts) != 1 || j.Attempts[0].Machine != "good" {
		t.Fatalf("job = %v attempts = %+v", j.State, j.Attempts)
	}
	if startds[0].JobsRun != 0 {
		t.Error("the broken machine must not run jobs")
	}
}

// TestChronicFailureAvoidance verifies the schedd-side complementary
// fix: after the threshold, the schedd declines matches to the
// failing machine.
func TestChronicFailureAvoidance(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 2
	bad := MachineConfig{Name: "bad", Memory: 4096, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	good := MachineConfig{Name: "good", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, _ := testPool(t, params, bad, good)
	// Several jobs, each ranking the bad machine first.
	var ids []JobID
	for i := 0; i < 5; i++ {
		ids = append(ids, submitJavaJob(schedd, jvm.WellBehaved(time.Minute)))
	}
	runUntilDone(t, eng, schedd, 24*time.Hour)
	for _, id := range ids {
		if st := schedd.Job(id).State; st != JobCompleted {
			t.Errorf("job %d state = %v", id, st)
		}
	}
	badAttempts := 0
	for _, j := range schedd.Jobs() {
		for _, att := range j.Attempts {
			if att.Machine == "bad" {
				badAttempts++
			}
		}
	}
	// Without avoidance every retry could revisit "bad"; with the
	// threshold it is capped near the threshold.
	if badAttempts > params.ChronicFailureThreshold+1 {
		t.Errorf("bad machine attracted %d attempts despite avoidance", badAttempts)
	}
	if schedd.MatchesDeclined == 0 {
		t.Error("expected declined matches")
	}
}

// TestAvoidanceRelaxesUnderStarvation: when every machine in the pool
// is chronically failing, avoidance must not starve the job forever —
// after ChronicRelaxCycles unmatchable negotiation cycles the schedd
// drops the constraint, the job retries chronic machines, exhausts
// MaxAttempts, and is held where the user can see it.
func TestAvoidanceRelaxesUnderStarvation(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 1
	params.MaxAttempts = 3
	broken := jvm.Config{BadLibraryPath: true}
	eng, _, schedd, _, _ := testPool(t, params,
		MachineConfig{Name: "m1", Memory: 2048, AdvertiseJava: true, JVM: broken},
		MachineConfig{Name: "m2", Memory: 1024, AdvertiseJava: true, JVM: broken})
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 24*time.Hour)
	j := schedd.Job(id)
	if j.State != JobHeld {
		t.Fatalf("state = %v after %d attempts, want held; avoidance starved the job", j.State, len(j.Attempts))
	}
	if len(j.Attempts) != params.MaxAttempts {
		t.Errorf("attempts = %d, want %d", len(j.Attempts), params.MaxAttempts)
	}
	relaxed := false
	for _, e := range j.Events {
		if e.Kind == EventAvoidanceRelaxed {
			relaxed = true
		}
	}
	if !relaxed {
		t.Errorf("no %s event in the job log:\n%s", EventAvoidanceRelaxed, j.EventLog())
	}
	se, _ := scope.AsError(j.FinalErr)
	if se == nil || se.Scope != scope.ScopePool || se.Code != "AttemptsExhausted" {
		t.Errorf("final err = %v, want pool-scope AttemptsExhausted", j.FinalErr)
	}
}

// TestHardMountBlocksForever verifies the NFS hard-mount behaviour:
// the shadow hides the outage and the job simply waits.
func TestHardMountBlocksForever(t *testing.T) {
	params := DefaultParams()
	params.Mount = MountPolicy{Kind: MountHard, RetryInterval: time.Minute}
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	schedd.SubmitFS.SetOffline(true)
	eng.RunFor(8 * time.Hour)
	j := schedd.Job(id)
	if j.State != JobRunning {
		t.Fatalf("hard mount should keep waiting, state = %v", j.State)
	}
	// When the file system returns, the job completes.
	schedd.SubmitFS.SetOffline(false)
	runUntilDone(t, eng, schedd, 4*time.Hour)
	if j.State != JobCompleted {
		t.Fatalf("state after recovery = %v", j.State)
	}
}

// TestPerJobMountPolicy verifies that a job's declared tolerance
// overrides the pool default.
func TestPerJobMountPolicy(t *testing.T) {
	params := DefaultParams()
	params.Mount = MountPolicy{Kind: MountPerJob, SoftTimeout: time.Hour, RetryInterval: 30 * time.Second}
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))
	ad := NewJavaJobAd("alice", 128)
	ad.SetInt("OutageTolerance", 120) // patience: 2 minutes
	job := &Job{Owner: "alice", Ad: ad, Program: jvm.WellBehaved(time.Minute),
		Executable: "/home/alice/Main.class"}
	schedd.SubmitFS.WriteFile("/home/alice/Main.class", []byte("bytes"))
	id := schedd.Submit(job)
	schedd.SubmitFS.SetOffline(true)
	eng.RunFor(30 * time.Minute)
	j := schedd.Job(id)
	// With only 2 minutes of patience the shadow must have given up
	// at least once (job requeued, not stuck waiting).
	gaveUp := false
	for _, att := range j.Attempts {
		if att.FetchError != nil {
			gaveUp = true
		}
	}
	if !gaveUp {
		t.Fatal("per-job tolerance should expose the outage quickly")
	}
}

// TestDeterministicKernel runs the same pool twice and requires
// identical traces.
func TestDeterministicKernel(t *testing.T) {
	run := func() []string {
		params := DefaultParams()
		eng := sim.New(7)
		bus := sim.NewBus(eng, 5*time.Millisecond)
		var trace []string
		bus.Trace = func(m sim.Message, delivered bool) {
			trace = append(trace, m.String())
		}
		NewMatchmaker(bus, params)
		schedd := NewSchedd(bus, params, "schedd")
		NewStartd(bus, params, goodMachine("m1"))
		NewStartd(bus, params, MachineConfig{Name: "m2", Memory: 512, AdvertiseJava: true})
		for i := 0; i < 4; i++ {
			submitJavaJob(schedd, jvm.WellBehaved(time.Duration(i+1)*time.Minute))
		}
		for eng.Now() < sim.Time(4*time.Hour) && !schedd.AllTerminal() {
			eng.RunFor(time.Minute)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
