package daemon

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/journal"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
)

// UserReport is what a user finally sees for a job: the schedd's
// disposition and the result or error that accompanied it.
type UserReport struct {
	Job         JobID
	Disposition scope.Disposition
	// Result is the program result for completed jobs.
	Result scope.Result
	// Err is the error for unexecutable or held jobs.
	Err error
	// IncidentalLeak marks a completed job whose ground-truth
	// condition was environmental (wider than program scope): the
	// user received an accidental property of the execution site as
	// if it were a program result.  This is the frustration of
	// Section 2.3, measurable only because the simulation knows the
	// truth.
	IncidentalLeak bool
}

// Schedd owns the persistent job queue: it advertises idle jobs,
// claims matched machines, spawns a shadow per running job, and is
// the last line of defense for error disposition (Section 4).
type Schedd struct {
	bus    Runtime
	params Params
	name   string
	tr     obs.Tracer

	// SubmitFS is the submit machine's file system, served to
	// running jobs by their shadows.
	SubmitFS *vfs.FileSystem

	jobs   map[JobID]*Job
	order  []JobID
	nextID JobID

	// fast selects the throughput path: the idle-job index, the
	// non-terminal counter, shared precompiled ads, and write-ahead
	// group commit.  The reference arm (Params.DisableScheddFastPath)
	// keeps the original O(queue) scans and one-append-per-record
	// journal so determinism tests can compare the two.
	fast bool

	// idleOrder and idlePos index the idle jobs in the order they
	// became idle, with tombstoned (zero) slots compacted lazily, so
	// the periodic advertisement walks O(idle) entries instead of the
	// whole queue.
	idleOrder []JobID
	idlePos   map[JobID]int
	idleStale int
	// nonTerminal counts jobs not yet in a final state; AllTerminal —
	// polled every scheduling step — reads it in O(1).
	nonTerminal int

	shadowSeq int
	// shadows tracks the live shadow of each running job, so a schedd
	// crash can take its children down with it.
	shadows map[JobID]*Shadow
	// machineFailures tracks consecutive failures per machine for the
	// chronic-failure avoidance policy, with the instant of the last
	// failure so stale grudges can expire (see expireFailures).
	machineFailures map[string]failureRecord
	// avoidedCache is the sorted avoided-machine list, rebuilt only
	// when the failure table changes; every idle advertisement reads
	// it.
	avoidedCache []string
	avoidedDirty bool

	// wal is the write-ahead journal: every queue transition is
	// appended before it is acted on, so the queue survives a crash
	// of this process (see scheddjournal.go).
	wal *journal.Journal
	// walAppends counts entries since the last compaction.
	walAppends int
	// Group commit (fast path): walBuf holds the records of the open
	// batch, outbox the sends deferred until those records are
	// durable, and commitArmed whether the commit event is scheduled
	// for the end of the current instant.
	walBuf      [][]byte
	outbox      []pendingSend
	commitArmed bool
	// snapBuf is the reused snapshot assembly buffer; reportEnc and
	// reportEncN cache the encoded prefix of Reports, which is
	// append-only between recoveries.
	snapBuf    []byte
	reportEnc  []byte
	reportEncN int
	// crashed marks a schedd that is down; epoch invalidates timers
	// (claim timeouts, requeue backoffs) armed before a crash.
	crashed bool
	epoch   int
	// stopAds cancels the periodic idle-job advertisement ticker.
	stopAds func()

	// Reports collects what users were shown, in completion order.
	Reports []UserReport

	// Metrics.  MatchesReceived/MatchesDeclined/ClaimsFailed are
	// transient counters and do not survive a crash; Requeues is
	// recomputed from the journal, and Recoveries counts restarts.
	MatchesReceived int
	MatchesDeclined int
	ClaimsFailed    int
	Requeues        int
	Recoveries      int
	// Flock metrics: queries sent to the coordinator, departures to a
	// peer negotiator, returns home, and replies dropped as corrupt.
	FlockQueries     int
	FlockDepartures  int
	FlockReturns     int
	FlockReplyErrors int
}

// failureRecord is one machine's entry in the chronic-failure table:
// the consecutive-failure count and when the streak was last
// extended.
type failureRecord struct {
	count int
	last  sim.Time
}

// pendingSend is one outgoing message deferred behind the open
// journal batch.
type pendingSend struct {
	to, kind string
	body     any
}

// NewSchedd creates, registers, and starts a schedd with its own
// submit-side file system.
func NewSchedd(bus Runtime, params Params, name string) *Schedd {
	bus = affinity(bus, name)
	s := &Schedd{
		bus:             bus,
		params:          params,
		name:            name,
		tr:              params.tracer(),
		fast:            !params.DisableScheddFastPath,
		SubmitFS:        vfs.New(),
		jobs:            make(map[JobID]*Job),
		idlePos:         make(map[JobID]int),
		shadows:         make(map[JobID]*Shadow),
		machineFailures: make(map[string]failureRecord),
		avoidedDirty:    true,
		wal:             journal.New(),
	}
	bus.Register(name, s)
	s.stopAds = bus.Every(params.AdInterval, s.advertiseIdle)
	return s
}

// Name returns the schedd's actor name.
func (s *Schedd) Name() string { return s.name }

// Submit queues a job; the job's Ad and Program must be set.  It
// returns the assigned id.
func (s *Schedd) Submit(job *Job) JobID {
	s.nextID++
	job.ID = s.nextID
	job.State = JobIdle
	job.Submitted = s.bus.Now()
	// Compile Requirements/Rank once up front: every periodic
	// advertise shares (or copies) this ad, and copies inherit the
	// caches.
	job.Ad.Precompile()
	s.journalAppend(recSubmit(job))
	s.addJob(job)
	s.logEvent(job, EventSubmitted, "owner %s", job.Owner)
	s.advertiseJob(job)
	// Submission is acknowledged to the user, so its record must be
	// durable before Submit returns; an open batch is flushed now
	// rather than at the end of the instant.
	s.commitWAL(s.epoch)
	return job.ID
}

// addJob registers a job in the queue maps and the derived indexes.
// Both Submit and journal replay funnel through it.
func (s *Schedd) addJob(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if !j.State.Terminal() {
		s.nonTerminal++
	}
	if j.State == JobIdle {
		s.idleAdd(j.ID)
	}
}

// setState moves a job between states, keeping the idle index and the
// non-terminal count consistent.  Every state transition — live or
// replayed — goes through here.
func (s *Schedd) setState(j *Job, st JobState) {
	if j.State == st {
		return
	}
	if j.State == JobIdle {
		s.idleRemove(j.ID)
	}
	if st == JobIdle {
		s.idleAdd(j.ID)
	}
	if !j.State.Terminal() && st.Terminal() {
		s.nonTerminal--
	}
	j.State = st
}

// idleAdd appends a job to the idle index.
func (s *Schedd) idleAdd(id JobID) {
	if _, ok := s.idlePos[id]; ok {
		return
	}
	s.idlePos[id] = len(s.idleOrder)
	s.idleOrder = append(s.idleOrder, id)
}

// idleRemove tombstones a job's slot; compaction happens lazily on
// the next advertisement pass, never mid-iteration.
func (s *Schedd) idleRemove(id JobID) {
	pos, ok := s.idlePos[id]
	if !ok {
		return
	}
	delete(s.idlePos, id)
	s.idleOrder[pos] = 0 // job ids start at 1
	s.idleStale++
}

// compactIdle squeezes the tombstones out of the idle index.
func (s *Schedd) compactIdle() {
	live := s.idleOrder[:0]
	for _, id := range s.idleOrder {
		if id != 0 {
			s.idlePos[id] = len(live)
			live = append(live, id)
		}
	}
	s.idleOrder = live
	s.idleStale = 0
}

// Job returns the job with the given id.
func (s *Schedd) Job(id JobID) *Job { return s.jobs[id] }

// Jobs returns all jobs in submission order.
func (s *Schedd) Jobs() []*Job {
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// AllTerminal reports whether every job reached a final state.
func (s *Schedd) AllTerminal() bool {
	if s.fast {
		return s.nonTerminal == 0
	}
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			return false
		}
	}
	return true
}

func (s *Schedd) advertiseIdle() {
	s.expireFailures()
	if !s.fast {
		for _, id := range s.order {
			if j := s.jobs[id]; j.State == JobIdle {
				s.advertiseJob(j)
				s.rescueFlocked(j)
			}
		}
		return
	}
	if s.idleStale > 0 && s.idleStale >= len(s.idleOrder)/2 {
		s.compactIdle()
	}
	for _, id := range s.idleOrder {
		if id == 0 {
			continue
		}
		j := s.jobs[id]
		s.advertiseJob(j)
		s.rescueFlocked(j)
	}
}

// rescueFlocked re-runs the flock decision for a job advertised at a
// peer negotiator.  A live peer that cannot match the job says so
// with a no-match, and handleNoMatch escalates; a *dead* peer says
// nothing at all, so without this periodic check a flocked job would
// wait on a silent pool forever.  The silence is discovered by time,
// not by a message (Section 5): maybeFlock's pacing clock fires a
// FlockAfter after the departure, and the coordinator — whose pings
// have meanwhile outed the dead peer — redirects or recalls the job.
func (s *Schedd) rescueFlocked(j *Job) {
	if j.flockedTo != "" {
		s.maybeFlock(j)
	}
}

// expireFailures forgets machines whose failure streak last grew more
// than twice ChronicRelaxAfter ago.  Without expiry the table (and
// the avoided list every idle ad carries) grows with every machine
// that ever failed, for the life of the schedd.  The bound is
// deliberately looser than the relax deadline: a job starved by
// avoidance gets the targeted remedy — relaxation, with its logged
// event — at ChronicRelaxAfter, and only strictly later does the
// table-wide backstop drop the stale grudge itself.  A zero
// ChronicRelaxAfter disables expiry along with relaxation.
func (s *Schedd) expireFailures() {
	ttl := 2 * s.params.ChronicRelaxAfter
	if ttl <= 0 || len(s.machineFailures) == 0 {
		return
	}
	now := s.bus.Now()
	for machine, rec := range s.machineFailures {
		if now.Sub(rec.last) >= ttl {
			delete(s.machineFailures, machine)
			s.avoidedDirty = true
		}
	}
}

// avoidedMachines lists the machines the chronic-failure policy
// currently excludes, sorted for deterministic ads.  The list is
// cached between failure-table changes: every idle job's every
// advertisement reads it.
func (s *Schedd) avoidedMachines() []string {
	if s.params.ChronicFailureThreshold <= 0 {
		return nil
	}
	if s.avoidedDirty {
		s.avoidedCache = s.avoidedCache[:0]
		for machine, rec := range s.machineFailures {
			if rec.count >= s.params.ChronicFailureThreshold {
				s.avoidedCache = append(s.avoidedCache, machine)
			}
		}
		slices.Sort(s.avoidedCache)
		s.avoidedDirty = false
	}
	return s.avoidedCache
}

// relaxed reports whether the avoidance constraint is currently
// dropped for the job.
func (s *Schedd) relaxed(j *Job) bool { return j.avoidanceRelaxed }

// idleFor returns how long the job has gone without an attempt: the
// time since its last attempt ended, or since submission.
func (s *Schedd) idleFor(j *Job) time.Duration {
	since := j.Submitted
	if att := j.LastAttempt(); att != nil && att.End > since {
		since = att.End
	}
	return s.bus.Now().Sub(since)
}

// send routes one outgoing message, deferring it while a journal
// batch is open: a message is an externally visible action, and the
// append-before-act discipline requires the records justifying it to
// be durable first.  With no batch open it is a plain bus send.
func (s *Schedd) send(to, kind string, body any) {
	if s.commitArmed {
		s.outbox = append(s.outbox, pendingSend{to: to, kind: kind, body: body})
		return
	}
	s.bus.Send(s.name, to, kind, body)
}

// jobRefName returns the job's advertisement name, rendered once and
// cached on the job (it is advertised and withdrawn many times).
func (s *Schedd) jobRefName(j *Job) string {
	if j.refName == "" {
		j.refName = s.name + "#" + strconv.Itoa(int(j.ID))
	}
	return j.refName
}

// matchmakerFor returns the negotiator currently serving the job: the
// peer it flocked to, or the home pool's own matchmaker.
func (s *Schedd) matchmakerFor(j *Job) string {
	if j.flockedTo != "" {
		return j.flockedTo
	}
	return s.params.matchmaker()
}

func (s *Schedd) advertiseJob(j *Job) {
	s.send(s.matchmakerFor(j), kindAdvertise, advertiseMsg{
		Kind:    "job",
		Name:    s.jobRefName(j),
		Schedd:  s.name,
		Job:     j.ID,
		Ad:      s.effectiveAd(j),
		Flocked: j.flockedTo != "",
	})
}

// withdrawJob removes the job's request from its current negotiator so
// stale advertisements cannot produce matches for jobs no longer idle.
func (s *Schedd) withdrawJob(j *Job) {
	s.send(s.matchmakerFor(j), kindAdvertise, advertiseMsg{
		Kind:    "job",
		Name:    s.jobRefName(j),
		Schedd:  s.name,
		Job:     j.ID,
		Ad:      nil,
		Flocked: j.flockedTo != "",
	})
}

// effectiveAd returns the ad the schedd actually advertises: the
// job's own ad, strengthened — when chronic-failure avoidance is on —
// with a requirement steering the matchmaker away from machines with
// repeated failures.  Extending Requirements is the ClassAd idiom for
// schedd-side policy.
func (s *Schedd) effectiveAd(j *Job) *classad.Ad {
	var avoided []string
	if !s.relaxed(j) {
		avoided = s.avoidedMachines()
	}
	if len(avoided) == 0 {
		// Nothing to strengthen.  The precompiled ad is immutable
		// from here on — evaluation touches only its memo caches — so
		// the fast path shares it instead of copying per
		// advertisement, and the matchmaker recognizes the pointer
		// and skips re-indexing.
		if s.fast {
			return j.Ad
		}
		return j.Ad.Copy()
	}
	ad := j.Ad.Copy()
	var list strings.Builder
	list.WriteString("{")
	for i, m := range avoided {
		if i > 0 {
			list.WriteString(", ")
		}
		list.WriteString(strconv.Quote(m))
	}
	list.WriteString("}")
	req := "true"
	if e, ok := ad.Lookup(classad.AttrRequirements); ok {
		req = e.String()
	}
	ad.MustSetExpr(classad.AttrRequirements,
		fmt.Sprintf("(%s) && !member(target.Machine, %s)", req, list.String()))
	return ad
}

// Receive implements sim.Actor.
func (s *Schedd) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case matchNotifyMsg:
		s.handleMatch(body)
	case noMatchMsg:
		s.handleNoMatch(body)
	case claimReplyMsg:
		s.receiveClaim(msg.From, body)
	case flockReplyMsg:
		s.handleFlockReply(body)
	case ckptCommitMsg:
		s.handleCkptCommit(body)
	case claimVacatedMsg:
		s.handleClaimVacated(body)
	case jobFinalMsg:
		s.handleFinal(body)
	}
}

// handleCkptCommit journals a checkpoint the shadow validated and
// advances the job's durable resume point.  The append-before-act
// discipline makes the checkpoint survive a schedd crash: recovery
// replays the record, and the next attempt — on any machine — resumes
// from the committed CPU instead of from scratch.
func (s *Schedd) handleCkptCommit(m ckptCommitMsg) {
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobRunning || m.CPU <= j.CheckpointCPU {
		return
	}
	s.journalAppend(recCkpt(j.ID, s.bus.Now(), m.CPU))
	j.CheckpointCPU = m.CPU
	s.logEvent(j, EventCheckpointed, "committed %v", m.CPU)
}

// handleClaimVacated closes an attempt whose machine vacated while the
// claim was seated but no starter was running — evicted between the
// grant and the activation, or preempted before the job details
// arrived.  The report is routed through the job's live shadow so the
// attempt closes exactly once, by the same path a running eviction
// takes.
func (s *Schedd) handleClaimVacated(m claimVacatedMsg) {
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobRunning {
		return
	}
	sh := s.shadows[m.Job]
	if sh == nil || sh.machine != m.Machine {
		return
	}
	sh.handleEvicted(jobEvictedMsg{
		Job:           m.Job,
		CheckpointCPU: m.CheckpointCPU,
		Preempted:     m.Preempted,
	})
}

// handleNoMatch reacts to the matchmaker finding zero compatible
// machines for an idle job.  When the schedd's own avoidance
// constraint is in force and the job has already waited out
// ChronicRelaxAfter, avoidance is starving the job — every machine
// it could use looks chronic — and the constraint is dropped: a
// chronically failing machine is a better bet than starvation, and
// failing there still moves the job toward the MaxAttempts hold the
// user must eventually see.  An idle spell in a busy-but-healthy
// pool never trips this: contention resolves in minutes, and freed
// machines re-advertise compatible ads long before the deadline.
//
// When relaxation is not the remedy — nothing of ours to relax, or
// the job is starving even relaxed — the same starvation signal feeds
// flocking: a job the whole local pool cannot run is offered to a
// peer pool instead (maybeFlock).
func (s *Schedd) handleNoMatch(m noMatchMsg) {
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobIdle {
		return
	}
	if !s.relaxed(j) &&
		s.params.ChronicRelaxAfter > 0 &&
		s.idleFor(j) >= s.params.ChronicRelaxAfter &&
		len(s.avoidedMachines()) > 0 {
		s.journalAppend(recEvent("relax", j.ID, s.bus.Now()))
		j.avoidanceRelaxed = true
		s.logEvent(j, EventAvoidanceRelaxed,
			"idle %v with no compatible machine; matching chronic machines again",
			s.idleFor(j))
		s.advertiseJob(j)
		return
	}
	s.maybeFlock(j)
}

// maybeFlock asks the flock coordinator for a peer pool once local
// matching has demonstrably starved the job: it is idle past
// FlockAfter and the negotiator serving it reports zero compatible
// machines.  Queries are paced to one per FlockAfter, and each asks
// for the level past the job's current one, so repeated starvation
// walks the configured peer order instead of hammering the first
// entry.
func (s *Schedd) maybeFlock(j *Job) {
	if !s.params.flocking() || j.State != JobIdle {
		return
	}
	now := s.bus.Now()
	// The pacing clock runs from the last query, answered or not: a
	// lost flock-reply therefore delays the job one period instead of
	// wedging it mid-handshake forever.
	if j.flockPendingAt > 0 && now.Sub(j.flockPendingAt) < s.params.FlockAfter {
		return
	}
	j.flockPending = false
	if s.idleFor(j) < s.params.FlockAfter {
		return
	}
	j.flockPending = true
	j.flockPendingAt = now
	s.FlockQueries++
	s.tr.Count("schedd.flock.queries", 1)
	s.send(s.params.Flockd, kindFlockQuery, flockQueryMsg{
		Job: j.ID, Schedd: s.name, Level: j.flockLevel + 1})
}

// handleFlockReply applies the coordinator's decision.  A reply that
// fails to parse — truncated or corrupted on the one wire that
// crosses pool-administration boundaries — is a scoped network error:
// it invalidates this exchange and nothing else.  The job keeps its
// current advertisement, the error is traced and counted, and the
// pacing clock retries the query a FlockAfter later.
func (s *Schedd) handleFlockReply(r flockReplyMsg) {
	j, ok := s.jobs[r.Job]
	if !ok || !j.flockPending {
		return
	}
	j.flockPending = false
	m, err := ParseFlockMsg(r.Payload)
	if err != nil {
		s.FlockReplyErrors++
		s.tr.Count("schedd.flock.reply_errors", 1)
		if s.tr.Enabled() {
			s.tr.Emit(errorEvent(int64(s.bus.Now()), s.name, j.ID, err))
		}
		return
	}
	if j.State != JobIdle || m.Job != j.ID {
		return
	}
	now := s.bus.Now()
	switch m.Op {
	case FlockGrant:
		s.journalAppend(recFlock(j.ID, now, m.Level, m.Negotiator))
		s.withdrawJob(j) // from the negotiator that starved it
		j.flockedTo = m.Negotiator
		j.flockLevel = m.Level
		j.flockedAt = now
		s.FlockDepartures++
		s.tr.Count("schedd.flock.departures", 1)
		s.logEvent(j, EventFlocked, "to %s (level %d)", m.Negotiator, m.Level)
		s.advertiseJob(j)
	case FlockDeny:
		if j.flockedTo == "" {
			return // already home; the pacing clock retries later
		}
		s.journalAppend(recFlock(j.ID, now, 0, ""))
		s.withdrawJob(j) // from the peer that no longer serves it
		j.flockedTo = ""
		j.flockLevel = 0
		j.flockedAt = now
		s.FlockReturns++
		s.tr.Count("schedd.flock.returns", 1)
		s.logEvent(j, EventFlockReturned, "%s", m.Reason)
		s.advertiseJob(j)
	}
}

// resetFlock returns a job's flock state to home.  Every attempt and
// every recovery does this: what flocking moves is the job's
// advertisement, and an attempt or a crash invalidates exactly that
// remote arrangement — never the job itself.
func (s *Schedd) resetFlock(j *Job) {
	j.flockedTo = ""
	j.flockLevel = 0
	j.flockedAt = 0
	j.flockPending = false
	j.flockPendingAt = 0
}

// handleMatch claims the machine the matchmaker proposed, unless the
// chronic-failure policy vetoes it.
func (s *Schedd) handleMatch(m matchNotifyMsg) {
	s.MatchesReceived++
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobIdle {
		return
	}
	if s.params.ChronicFailureThreshold > 0 &&
		s.machineFailures[m.Machine].count >= s.params.ChronicFailureThreshold &&
		!s.relaxed(j) {
		// "A complementary approach would be to enhance the schedd
		// with logic to detect and avoid hosts with chronic
		// failures."  Stay idle; the strengthened ad steers the
		// next cycle elsewhere.
		s.MatchesDeclined++
		s.advertiseJob(j)
		return
	}
	s.journalAppend(recMatch(j.ID, s.bus.Now(), m.Machine))
	s.setState(j, JobMatched)
	j.claimSeq++
	seq := j.claimSeq
	s.logEvent(j, EventMatched, "machine %s", m.Machine)
	s.withdrawJob(j)
	jobAd := j.Ad
	if !s.fast {
		jobAd = j.Ad.Copy()
	}
	s.send(m.Machine, kindClaimRequest, claimRequestMsg{
		Job:    j.ID,
		Schedd: s.name,
		JobAd:  jobAd,
	})
	// Claim timeout: a startd that never answers — dead, partitioned
	// — must not strand the job in the matched state.  The silence
	// is discovered by time, not by a message (Section 5).
	if s.params.ClaimTimeout > 0 {
		epoch := s.epoch
		s.bus.After(s.params.ClaimTimeout, func() {
			// The epoch check disarms timers that straddled a crash:
			// after recovery the queue holds rebuilt Job values, and a
			// pre-crash closure's pointer no longer speaks for them.
			if s.epoch == epoch && j.State == JobMatched && j.claimSeq == seq {
				s.journalAppend(recEvent("claim-timeout", j.ID, s.bus.Now()))
				s.ClaimsFailed++
				s.setState(j, JobIdle)
				s.logEvent(j, EventClaimTimeout, "no reply from %s within %v",
					m.Machine, s.params.ClaimTimeout)
				s.advertiseJob(j)
			}
		})
	}
}

// receiveClaim activates a granted claim by spawning the shadow; the
// sender's name identifies the machine.
func (s *Schedd) receiveClaim(from string, r claimReplyMsg) {
	j, ok := s.jobs[r.Job]
	if !ok || j.State != JobMatched {
		return
	}
	j.claimSeq++ // the reply arrived; disarm the claim timeout
	if !r.Granted {
		s.journalAppend(recEvent("claim-denied", j.ID, s.bus.Now()))
		s.ClaimsFailed++
		s.setState(j, JobIdle)
		s.logEvent(j, EventClaimDenied, "%s: %s", from, r.Reason)
		s.advertiseJob(j)
		return
	}
	s.journalAppend(recExec(j.ID, s.bus.Now(), from))
	s.setState(j, JobRunning)
	j.avoidanceRelaxed = false // the next idle spell re-arms avoidance
	s.resetFlock(j)            // every attempt restarts the job at home
	s.logEvent(j, EventExecuting, "machine %s", from)
	j.Attempts = append(j.Attempts, Attempt{
		Machine: from,
		Start:   s.bus.Now(),
	})
	s.shadowSeq++
	shadowName := fmt.Sprintf("shadow:%s:%d", s.name, s.shadowSeq)
	s.shadows[j.ID] = newShadow(s.bus, s.params, shadowName, s.name, j, s.SubmitFS, from)
	s.send(from, kindActivate, activateMsg{Job: j.ID, Shadow: shadowName})
}

// finalError derives the error the schedd disposes of from a final
// report, in the precedence order of the live protocol.
func finalError(f jobFinalMsg) error {
	switch {
	case f.Evicted && f.Preempted:
		// Preemption is policy too: a higher-Rank job displaced this
		// one.  The condition invalidates the claim and nothing wider —
		// remote-resource scope, requeue, no blame.
		return scope.New(scope.ScopeRemoteResource, "Preempted",
			"a higher-Rank job preempted the claim on %s", f.Machine)
	case f.Evicted:
		// Eviction is policy, not error: the owner reclaimed the
		// machine.  Requeue with no blame attached.
		return scope.New(scope.ScopeRemoteResource, "Evicted",
			"the machine owner reclaimed %s", f.Machine)
	case f.FetchError != nil:
		return f.FetchError
	case f.LostContact != nil:
		return f.LostContact
	default:
		return f.Reported.Err()
	}
}

// applyFinal applies the queue mutations of a final report: the
// attempt closure, the checkpoint, the disposition, the blame table,
// and the user report.  It is shared by the live handler and journal
// replay, so it must not touch the bus, the tracer, or the per-job
// event log — replay regenerates state, not telemetry.  A requeue
// disposition leaves the job in JobRunning: the live path schedules
// the requeue backoff, and replay's recovery normalization requeues.
func (s *Schedd) applyFinal(j *Job, f jobFinalMsg, err error, now sim.Time) scope.Disposition {
	att := j.LastAttempt()
	if att != nil {
		att.End = now
		att.Reported = f.Reported
		att.True = f.True
		att.CPU = f.CPU
		att.FetchError = f.FetchError
		att.LostContact = f.LostContact
		att.Evicted = f.Evicted
		att.Preempted = f.Preempted
	}

	if f.CheckpointCPU > j.CheckpointCPU {
		j.CheckpointCPU = f.CheckpointCPU
	}

	disp := scope.DisposeError(err)
	switch disp {
	case scope.DispositionComplete:
		s.setState(j, JobCompleted)
		j.Finished = now
		if _, ok := s.machineFailures[f.Machine]; ok {
			delete(s.machineFailures, f.Machine)
			s.avoidedDirty = true
		}
		leak := false
		if trueErr := f.True.Err(); trueErr != nil &&
			scope.ScopeOf(trueErr) > scope.ScopeProgram {
			leak = true
		}
		s.Reports = append(s.Reports, UserReport{
			Job:            j.ID,
			Disposition:    disp,
			Result:         f.Reported,
			IncidentalLeak: leak,
		})

	case scope.DispositionUnexecutable:
		s.setState(j, JobUnexecutable)
		j.Finished = now
		j.FinalErr = err
		s.Reports = append(s.Reports, UserReport{
			Job:         j.ID,
			Disposition: disp,
			Err:         err,
		})

	default: // requeue, possibly hardened into a hold
		s.Requeues++
		// Blame the machine for its own failures — including going
		// silent — but not for submit-side fetch problems or for its
		// owner's legitimate return.
		if f.FetchError == nil && !f.Evicted && f.Machine != "" {
			rec := s.machineFailures[f.Machine]
			rec.count++
			rec.last = now
			s.machineFailures[f.Machine] = rec
			s.avoidedDirty = true
		}
		if f.Hold || len(j.Attempts) >= s.params.MaxAttempts {
			s.setState(j, JobHeld)
			j.Finished = now
			if f.Hold {
				// The shadow already escalated; its error names the
				// exhausted execution environment.
				j.FinalErr = err
			} else {
				j.FinalErr = holdErr(err)
			}
			s.Reports = append(s.Reports, UserReport{
				Job:         j.ID,
				Disposition: scope.DispositionHold,
				Err:         j.FinalErr,
			})
		}
	}
	return disp
}

// handleFinal applies the schedd's last-line-of-defense policy.
func (s *Schedd) handleFinal(f jobFinalMsg) {
	j, ok := s.jobs[f.Job]
	if !ok || j.State != JobRunning {
		return
	}
	now := s.bus.Now()
	s.journalAppend(recFinal(f, now))
	delete(s.shadows, f.Job) // the shadow retires with its report

	err := finalError(f)
	if err != nil && s.tr.Enabled() {
		// The schedd is the last hop: record the error as it arrived
		// before disposing of it.
		s.tr.Emit(errorEvent(int64(now), s.name, j.ID, err))
	}

	disp := s.applyFinal(j, f, err, now)
	switch disp {
	case scope.DispositionComplete:
		s.tr.Count("schedd.disposition.complete", 1)
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "complete", err))
			s.tr.Observe("job.turnaround_ns", int64(j.Finished.Sub(j.Submitted)))
		}
		s.logEvent(j, EventCompleted, "%s on %s", f.Reported.Status, f.Machine)

	case scope.DispositionUnexecutable:
		s.tr.Count("schedd.disposition.unexecutable", 1)
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "unexecutable", err))
		}
		s.logEvent(j, EventUnexecutable, "%v", err)

	default: // requeue
		s.tr.Count("schedd.requeues", 1)
		switch {
		case f.Evicted && f.Preempted:
			s.logEvent(j, EventPreempted, "displaced from %s by a higher-Rank job (checkpoint %v)",
				f.Machine, j.CheckpointCPU)
		case f.Evicted:
			s.logEvent(j, EventEvicted, "owner reclaimed %s (checkpoint %v)",
				f.Machine, j.CheckpointCPU)
		case f.FetchError != nil:
			s.logEvent(j, EventFetchFailed, "%v", err)
		case f.LostContact != nil:
			s.logEvent(j, EventLostContact, "%v", err)
		default:
			s.logEvent(j, EventRequeued, "%s scope error at %s",
				scope.ScopeOf(err), f.Machine)
		}
		if j.State == JobHeld {
			s.tr.Count("schedd.disposition.hold", 1)
			if s.tr.Enabled() {
				s.tr.Emit(s.dispositionEvent(j, "hold", j.FinalErr))
			}
			s.logEvent(j, EventHeld, "%v", j.FinalErr)
			return
		}
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "requeue", err))
		}
		// Log and attempt to execute the program at a new site.  The
		// epoch check keeps a pre-crash backoff from resurrecting a
		// stale Job value after recovery rebuilt the queue.
		epoch := s.epoch
		s.bus.After(s.params.RequeueBackoff, func() {
			if s.epoch == epoch && j.State == JobRunning {
				s.setState(j, JobIdle)
				s.advertiseJob(j)
			}
		})
	}
}

// dispositionEvent records the schedd's final decision on an error,
// closing that error's span.  Only call it behind tr.Enabled.
func (s *Schedd) dispositionEvent(j *Job, disp string, err error) obs.Event {
	ev := obs.Event{
		T:    int64(s.bus.Now()),
		Comp: s.name,
		Kind: obs.KindDisposition,
		Job:  int64(j.ID),
		Code: disp,
	}
	if se, ok := scope.AsError(err); ok {
		ev.Scope = se.Scope.String()
	}
	return ev
}

// FailureCount exposes the chronic-failure table, for tests.
func (s *Schedd) FailureCount(machine string) int { return s.machineFailures[machine].count }

// FailureTableSize exposes how many machines the chronic-failure
// table currently remembers, for the memory-bound regression test.
func (s *Schedd) FailureTableSize() int { return len(s.machineFailures) }
