package daemon

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/journal"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
)

// UserReport is what a user finally sees for a job: the schedd's
// disposition and the result or error that accompanied it.
type UserReport struct {
	Job         JobID
	Disposition scope.Disposition
	// Result is the program result for completed jobs.
	Result scope.Result
	// Err is the error for unexecutable or held jobs.
	Err error
	// IncidentalLeak marks a completed job whose ground-truth
	// condition was environmental (wider than program scope): the
	// user received an accidental property of the execution site as
	// if it were a program result.  This is the frustration of
	// Section 2.3, measurable only because the simulation knows the
	// truth.
	IncidentalLeak bool
}

// Schedd owns the persistent job queue: it advertises idle jobs,
// claims matched machines, spawns a shadow per running job, and is
// the last line of defense for error disposition (Section 4).
type Schedd struct {
	bus    Runtime
	params Params
	name   string
	tr     obs.Tracer

	// SubmitFS is the submit machine's file system, served to
	// running jobs by their shadows.
	SubmitFS *vfs.FileSystem

	jobs   map[JobID]*Job
	order  []JobID
	nextID JobID

	shadowSeq int
	// shadows tracks the live shadow of each running job, so a schedd
	// crash can take its children down with it.
	shadows map[JobID]*Shadow
	// machineFailures counts consecutive failures per machine for
	// the chronic-failure avoidance policy.
	machineFailures map[string]int

	// wal is the write-ahead journal: every queue transition is
	// appended before it is acted on, so the queue survives a crash
	// of this process (see scheddjournal.go).
	wal *journal.Journal
	// walAppends counts entries since the last compaction.
	walAppends int
	// crashed marks a schedd that is down; epoch invalidates timers
	// (claim timeouts, requeue backoffs) armed before a crash.
	crashed bool
	epoch   int
	// stopAds cancels the periodic idle-job advertisement ticker.
	stopAds func()

	// Reports collects what users were shown, in completion order.
	Reports []UserReport

	// Metrics.  MatchesReceived/MatchesDeclined/ClaimsFailed are
	// transient counters and do not survive a crash; Requeues is
	// recomputed from the journal, and Recoveries counts restarts.
	MatchesReceived int
	MatchesDeclined int
	ClaimsFailed    int
	Requeues        int
	Recoveries      int
}

// NewSchedd creates, registers, and starts a schedd with its own
// submit-side file system.
func NewSchedd(bus Runtime, params Params, name string) *Schedd {
	s := &Schedd{
		bus:             bus,
		params:          params,
		name:            name,
		tr:              params.tracer(),
		SubmitFS:        vfs.New(),
		jobs:            make(map[JobID]*Job),
		shadows:         make(map[JobID]*Shadow),
		machineFailures: make(map[string]int),
		wal:             journal.New(),
	}
	bus.Register(name, s)
	s.stopAds = bus.Every(params.AdInterval, s.advertiseIdle)
	return s
}

// Name returns the schedd's actor name.
func (s *Schedd) Name() string { return s.name }

// Submit queues a job; the job's Ad and Program must be set.  It
// returns the assigned id.
func (s *Schedd) Submit(job *Job) JobID {
	s.nextID++
	job.ID = s.nextID
	job.State = JobIdle
	job.Submitted = s.bus.Now()
	// Compile Requirements/Rank once up front: every periodic
	// advertise copies this ad, and copies inherit the caches.
	job.Ad.Precompile()
	s.journalAppend(recSubmit(job))
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.logEvent(job, EventSubmitted, "owner %s", job.Owner)
	s.advertiseJob(job)
	return job.ID
}

// Job returns the job with the given id.
func (s *Schedd) Job(id JobID) *Job { return s.jobs[id] }

// Jobs returns all jobs in submission order.
func (s *Schedd) Jobs() []*Job {
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// AllTerminal reports whether every job reached a final state.
func (s *Schedd) AllTerminal() bool {
	for _, j := range s.jobs {
		if !j.State.Terminal() {
			return false
		}
	}
	return true
}

func (s *Schedd) advertiseIdle() {
	for _, id := range s.order {
		if j := s.jobs[id]; j.State == JobIdle {
			s.advertiseJob(j)
		}
	}
}

// avoidedMachines lists the machines the chronic-failure policy
// currently excludes, sorted for deterministic ads.
func (s *Schedd) avoidedMachines() []string {
	if s.params.ChronicFailureThreshold <= 0 {
		return nil
	}
	var avoided []string
	for machine, n := range s.machineFailures {
		if n >= s.params.ChronicFailureThreshold {
			avoided = append(avoided, machine)
		}
	}
	slices.Sort(avoided)
	return avoided
}

// relaxed reports whether the avoidance constraint is currently
// dropped for the job.
func (s *Schedd) relaxed(j *Job) bool { return j.avoidanceRelaxed }

// idleFor returns how long the job has gone without an attempt: the
// time since its last attempt ended, or since submission.
func (s *Schedd) idleFor(j *Job) time.Duration {
	since := j.Submitted
	if att := j.LastAttempt(); att != nil && att.End > since {
		since = att.End
	}
	return s.bus.Now().Sub(since)
}

func (s *Schedd) advertiseJob(j *Job) {
	s.bus.Send(s.name, MatchmakerName, kindAdvertise, advertiseMsg{
		Kind:   "job",
		Name:   fmt.Sprintf("%s#%d", s.name, j.ID),
		Schedd: s.name,
		Job:    j.ID,
		Ad:     s.effectiveAd(j),
	})
}

// withdrawJob removes the job's request from the matchmaker so stale
// advertisements cannot produce matches for jobs no longer idle.
func (s *Schedd) withdrawJob(j *Job) {
	s.bus.Send(s.name, MatchmakerName, kindAdvertise, advertiseMsg{
		Kind:   "job",
		Name:   fmt.Sprintf("%s#%d", s.name, j.ID),
		Schedd: s.name,
		Job:    j.ID,
		Ad:     nil,
	})
}

// effectiveAd returns the ad the schedd actually advertises: the
// job's own ad, strengthened — when chronic-failure avoidance is on —
// with a requirement steering the matchmaker away from machines with
// repeated failures.  Extending Requirements is the ClassAd idiom for
// schedd-side policy.
func (s *Schedd) effectiveAd(j *Job) *classad.Ad {
	ad := j.Ad.Copy()
	if s.relaxed(j) {
		// The constraint starved this job; a chronic machine is
		// better than no machine.
		return ad
	}
	avoided := s.avoidedMachines()
	if len(avoided) == 0 {
		return ad
	}
	var list strings.Builder
	list.WriteString("{")
	for i, m := range avoided {
		if i > 0 {
			list.WriteString(", ")
		}
		list.WriteString(strconv.Quote(m))
	}
	list.WriteString("}")
	req := "true"
	if e, ok := ad.Lookup(classad.AttrRequirements); ok {
		req = e.String()
	}
	ad.MustSetExpr(classad.AttrRequirements,
		fmt.Sprintf("(%s) && !member(target.Machine, %s)", req, list.String()))
	return ad
}

// Receive implements sim.Actor.
func (s *Schedd) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case matchNotifyMsg:
		s.handleMatch(body)
	case noMatchMsg:
		s.handleNoMatch(body)
	case claimReplyMsg:
		s.receiveClaim(msg.From, body)
	case jobFinalMsg:
		s.handleFinal(body)
	}
}

// handleNoMatch reacts to the matchmaker finding zero compatible
// machines for an idle job.  When the schedd's own avoidance
// constraint is in force and the job has already waited out
// ChronicRelaxAfter, avoidance is starving the job — every machine
// it could use looks chronic — and the constraint is dropped: a
// chronically failing machine is a better bet than starvation, and
// failing there still moves the job toward the MaxAttempts hold the
// user must eventually see.  An idle spell in a busy-but-healthy
// pool never trips this: contention resolves in minutes, and freed
// machines re-advertise compatible ads long before the deadline.
func (s *Schedd) handleNoMatch(m noMatchMsg) {
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobIdle || s.relaxed(j) {
		return
	}
	if s.params.ChronicRelaxAfter <= 0 || s.idleFor(j) < s.params.ChronicRelaxAfter {
		return
	}
	if len(s.avoidedMachines()) == 0 {
		// The job is unmatchable on its own terms; nothing of ours
		// to relax.
		return
	}
	s.journalAppend(recEvent("relax", j.ID, s.bus.Now()))
	j.avoidanceRelaxed = true
	s.logEvent(j, EventAvoidanceRelaxed,
		"idle %v with no compatible machine; matching chronic machines again",
		s.idleFor(j))
	s.advertiseJob(j)
}

// handleMatch claims the machine the matchmaker proposed, unless the
// chronic-failure policy vetoes it.
func (s *Schedd) handleMatch(m matchNotifyMsg) {
	s.MatchesReceived++
	j, ok := s.jobs[m.Job]
	if !ok || j.State != JobIdle {
		return
	}
	if s.params.ChronicFailureThreshold > 0 &&
		s.machineFailures[m.Machine] >= s.params.ChronicFailureThreshold &&
		!s.relaxed(j) {
		// "A complementary approach would be to enhance the schedd
		// with logic to detect and avoid hosts with chronic
		// failures."  Stay idle; the strengthened ad steers the
		// next cycle elsewhere.
		s.MatchesDeclined++
		s.advertiseJob(j)
		return
	}
	s.journalAppend(recMatch(j.ID, s.bus.Now(), m.Machine))
	j.State = JobMatched
	j.claimSeq++
	seq := j.claimSeq
	s.logEvent(j, EventMatched, "machine %s", m.Machine)
	s.withdrawJob(j)
	s.bus.Send(s.name, m.Machine, kindClaimRequest, claimRequestMsg{
		Job:    j.ID,
		Schedd: s.name,
		JobAd:  j.Ad.Copy(),
	})
	// Claim timeout: a startd that never answers — dead, partitioned
	// — must not strand the job in the matched state.  The silence
	// is discovered by time, not by a message (Section 5).
	if s.params.ClaimTimeout > 0 {
		epoch := s.epoch
		s.bus.After(s.params.ClaimTimeout, func() {
			// The epoch check disarms timers that straddled a crash:
			// after recovery the queue holds rebuilt Job values, and a
			// pre-crash closure's pointer no longer speaks for them.
			if s.epoch == epoch && j.State == JobMatched && j.claimSeq == seq {
				s.journalAppend(recEvent("claim-timeout", j.ID, s.bus.Now()))
				s.ClaimsFailed++
				j.State = JobIdle
				s.logEvent(j, EventClaimTimeout, "no reply from %s within %v",
					m.Machine, s.params.ClaimTimeout)
				s.advertiseJob(j)
			}
		})
	}
}

// receiveClaim activates a granted claim by spawning the shadow; the
// sender's name identifies the machine.
func (s *Schedd) receiveClaim(from string, r claimReplyMsg) {
	j, ok := s.jobs[r.Job]
	if !ok || j.State != JobMatched {
		return
	}
	j.claimSeq++ // the reply arrived; disarm the claim timeout
	if !r.Granted {
		s.journalAppend(recEvent("claim-denied", j.ID, s.bus.Now()))
		s.ClaimsFailed++
		j.State = JobIdle
		s.logEvent(j, EventClaimDenied, "%s: %s", from, r.Reason)
		s.advertiseJob(j)
		return
	}
	s.journalAppend(recExec(j.ID, s.bus.Now(), from))
	j.State = JobRunning
	j.avoidanceRelaxed = false // the next idle spell re-arms avoidance
	s.logEvent(j, EventExecuting, "machine %s", from)
	j.Attempts = append(j.Attempts, Attempt{
		Machine: from,
		Start:   s.bus.Now(),
	})
	s.shadowSeq++
	shadowName := fmt.Sprintf("shadow:%s:%d", s.name, s.shadowSeq)
	s.shadows[j.ID] = newShadow(s.bus, s.params, shadowName, s.name, j, s.SubmitFS, from)
	s.bus.Send(s.name, from, kindActivate, activateMsg{Job: j.ID, Shadow: shadowName})
}

// finalError derives the error the schedd disposes of from a final
// report, in the precedence order of the live protocol.
func finalError(f jobFinalMsg) error {
	switch {
	case f.Evicted:
		// Eviction is policy, not error: the owner reclaimed the
		// machine.  Requeue with no blame attached.
		return scope.New(scope.ScopeRemoteResource, "Evicted",
			"the machine owner reclaimed %s", f.Machine)
	case f.FetchError != nil:
		return f.FetchError
	case f.LostContact != nil:
		return f.LostContact
	default:
		return f.Reported.Err()
	}
}

// applyFinal applies the queue mutations of a final report: the
// attempt closure, the checkpoint, the disposition, the blame table,
// and the user report.  It is shared by the live handler and journal
// replay, so it must not touch the bus, the tracer, or the per-job
// event log — replay regenerates state, not telemetry.  A requeue
// disposition leaves the job in JobRunning: the live path schedules
// the requeue backoff, and replay's recovery normalization requeues.
func (s *Schedd) applyFinal(j *Job, f jobFinalMsg, err error, now sim.Time) scope.Disposition {
	att := j.LastAttempt()
	if att != nil {
		att.End = now
		att.Reported = f.Reported
		att.True = f.True
		att.CPU = f.CPU
		att.FetchError = f.FetchError
		att.LostContact = f.LostContact
		att.Evicted = f.Evicted
	}

	if f.CheckpointCPU > j.CheckpointCPU {
		j.CheckpointCPU = f.CheckpointCPU
	}

	disp := scope.DisposeError(err)
	switch disp {
	case scope.DispositionComplete:
		j.State = JobCompleted
		j.Finished = now
		s.machineFailures[f.Machine] = 0
		leak := false
		if trueErr := f.True.Err(); trueErr != nil &&
			scope.ScopeOf(trueErr) > scope.ScopeProgram {
			leak = true
		}
		s.Reports = append(s.Reports, UserReport{
			Job:            j.ID,
			Disposition:    disp,
			Result:         f.Reported,
			IncidentalLeak: leak,
		})

	case scope.DispositionUnexecutable:
		j.State = JobUnexecutable
		j.Finished = now
		j.FinalErr = err
		s.Reports = append(s.Reports, UserReport{
			Job:         j.ID,
			Disposition: disp,
			Err:         err,
		})

	default: // requeue, possibly hardened into a hold
		s.Requeues++
		// Blame the machine for its own failures — including going
		// silent — but not for submit-side fetch problems or for its
		// owner's legitimate return.
		if f.FetchError == nil && !f.Evicted && f.Machine != "" {
			s.machineFailures[f.Machine]++
		}
		if f.Hold || len(j.Attempts) >= s.params.MaxAttempts {
			j.State = JobHeld
			j.Finished = now
			if f.Hold {
				// The shadow already escalated; its error names the
				// exhausted execution environment.
				j.FinalErr = err
			} else {
				j.FinalErr = holdErr(err)
			}
			s.Reports = append(s.Reports, UserReport{
				Job:         j.ID,
				Disposition: scope.DispositionHold,
				Err:         j.FinalErr,
			})
		}
	}
	return disp
}

// handleFinal applies the schedd's last-line-of-defense policy.
func (s *Schedd) handleFinal(f jobFinalMsg) {
	j, ok := s.jobs[f.Job]
	if !ok || j.State != JobRunning {
		return
	}
	now := s.bus.Now()
	s.journalAppend(recFinal(f, now))
	delete(s.shadows, f.Job) // the shadow retires with its report

	err := finalError(f)
	if err != nil && s.tr.Enabled() {
		// The schedd is the last hop: record the error as it arrived
		// before disposing of it.
		s.tr.Emit(errorEvent(int64(now), s.name, j.ID, err))
	}

	disp := s.applyFinal(j, f, err, now)
	switch disp {
	case scope.DispositionComplete:
		s.tr.Count("schedd.disposition.complete", 1)
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "complete", err))
			s.tr.Observe("job.turnaround_ns", int64(j.Finished.Sub(j.Submitted)))
		}
		s.logEvent(j, EventCompleted, "%s on %s", f.Reported.Status, f.Machine)

	case scope.DispositionUnexecutable:
		s.tr.Count("schedd.disposition.unexecutable", 1)
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "unexecutable", err))
		}
		s.logEvent(j, EventUnexecutable, "%v", err)

	default: // requeue
		s.tr.Count("schedd.requeues", 1)
		switch {
		case f.Evicted:
			s.logEvent(j, EventEvicted, "owner reclaimed %s (checkpoint %v)",
				f.Machine, j.CheckpointCPU)
		case f.FetchError != nil:
			s.logEvent(j, EventFetchFailed, "%v", err)
		case f.LostContact != nil:
			s.logEvent(j, EventLostContact, "%v", err)
		default:
			s.logEvent(j, EventRequeued, "%s scope error at %s",
				scope.ScopeOf(err), f.Machine)
		}
		if j.State == JobHeld {
			s.tr.Count("schedd.disposition.hold", 1)
			if s.tr.Enabled() {
				s.tr.Emit(s.dispositionEvent(j, "hold", j.FinalErr))
			}
			s.logEvent(j, EventHeld, "%v", j.FinalErr)
			return
		}
		if s.tr.Enabled() {
			s.tr.Emit(s.dispositionEvent(j, "requeue", err))
		}
		// Log and attempt to execute the program at a new site.  The
		// epoch check keeps a pre-crash backoff from resurrecting a
		// stale Job value after recovery rebuilt the queue.
		epoch := s.epoch
		s.bus.After(s.params.RequeueBackoff, func() {
			if s.epoch == epoch && j.State == JobRunning {
				j.State = JobIdle
				s.advertiseJob(j)
			}
		})
	}
}

// dispositionEvent records the schedd's final decision on an error,
// closing that error's span.  Only call it behind tr.Enabled.
func (s *Schedd) dispositionEvent(j *Job, disp string, err error) obs.Event {
	ev := obs.Event{
		T:    int64(s.bus.Now()),
		Comp: s.name,
		Kind: obs.KindDisposition,
		Job:  int64(j.ID),
		Code: disp,
	}
	if se, ok := scope.AsError(err); ok {
		ev.Scope = se.Scope.String()
	}
	return ev
}

// FailureCount exposes the chronic-failure table, for tests.
func (s *Schedd) FailureCount(machine string) int { return s.machineFailures[machine] }
