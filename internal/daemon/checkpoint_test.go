package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

func submitStandard(s *Schedd, d time.Duration) JobID {
	s.SubmitFS.WriteFile("/home/u/a.out", []byte("relinked binary"))
	return s.Submit(&Job{
		Owner:      "u",
		Universe:   "standard",
		Ad:         NewStandardJobAd("u", 128),
		Program:    jvm.WellBehaved(d),
		Executable: "/home/u/a.out",
	})
}

// TestEvictionMigratesWithCheckpoint: the owner reclaims the machine
// mid-job; the Standard Universe job resumes elsewhere from its last
// checkpoint, so total CPU across attempts stays near the job length.
func TestEvictionMigratesWithCheckpoint(t *testing.T) {
	params := DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	first := MachineConfig{Name: "first", Memory: 4096, AdvertiseJava: true}
	second := MachineConfig{Name: "second", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, first, second)

	id := submitStandard(schedd, 2*time.Hour)
	// The owner returns 45 minutes in: ~4 checkpoints exist.
	eng.After(45*time.Minute, func() { startds[0].Evict() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) != 2 {
		t.Fatalf("attempts = %d", len(j.Attempts))
	}
	if startds[0].Evictions != 1 {
		t.Errorf("evictions = %d", startds[0].Evictions)
	}
	// The second attempt only ran the remainder.
	second2 := j.Attempts[1]
	if second2.Machine != "second" {
		t.Errorf("resumed on %s", second2.Machine)
	}
	total := j.Attempts[0].CPU + second2.CPU
	// Attempt 0's CPU is recorded only on normal completion; the
	// eviction path reports via checkpoint instead, so measure the
	// resumed remainder directly: it must be well under the full 2h.
	if second2.CPU >= 90*time.Minute {
		t.Errorf("resume ran %v of a 2h job — checkpoint not used", second2.CPU)
	}
	if second2.CPU < 75*time.Minute {
		t.Errorf("resume ran only %v — too much progress credited", second2.CPU)
	}
	_ = total
	// The event log shows the eviction with its checkpoint.
	if !containsSeq(eventKinds(j), EventSubmitted, EventEvicted, EventCompleted) {
		t.Errorf("events = %v", eventKinds(j))
	}
	// Eviction attaches no blame to the machine.
	if schedd.FailureCount("first") != 0 {
		t.Errorf("eviction blamed the machine: %d", schedd.FailureCount("first"))
	}
}

// TestVanillaEvictionRestartsFromScratch: without checkpointing the
// whole job repeats.
func TestVanillaEvictionRestarts(t *testing.T) {
	params := DefaultParams()
	first := MachineConfig{Name: "first", Memory: 4096, AdvertiseJava: true}
	second := MachineConfig{Name: "second", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, first, second)

	schedd.SubmitFS.WriteFile("/home/u/a.out", []byte("binary"))
	id := schedd.Submit(&Job{
		Owner: "u", Universe: "vanilla", Ad: NewVanillaJobAd("u", 128),
		Program: jvm.WellBehaved(2 * time.Hour), Executable: "/home/u/a.out",
	})
	eng.After(45*time.Minute, func() { startds[0].Evict() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted || len(j.Attempts) != 2 {
		t.Fatalf("state = %v attempts = %d", j.State, len(j.Attempts))
	}
	if j.LastAttempt().CPU != 2*time.Hour {
		t.Errorf("vanilla resume CPU = %v, want the full 2h", j.LastAttempt().CPU)
	}
}

// TestCheckpointSurvivesCrash: the machine crashes (no eviction
// notice at all); the checkpoints already shipped to the shadow still
// let the job resume.
func TestCheckpointSurvivesCrash(t *testing.T) {
	params := DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.ResultTimeout = 30 * time.Minute
	first := MachineConfig{Name: "first", Memory: 4096, AdvertiseJava: true}
	second := MachineConfig{Name: "second", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, first, second)

	id := submitStandard(schedd, 90*time.Minute)
	eng.After(35*time.Minute, func() { startds[0].Crash() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	last := j.LastAttempt()
	if last.Machine != "second" {
		t.Errorf("resumed on %s", last.Machine)
	}
	// ~3 checkpoints (30 min) survived; the resume runs ~60 min, not 90.
	if last.CPU > 70*time.Minute {
		t.Errorf("resume ran %v — crash lost the checkpoints", last.CPU)
	}
	if j.CheckpointCPU < 20*time.Minute {
		t.Errorf("checkpoint = %v", j.CheckpointCPU)
	}
}

// TestOwnerMachineRejoinsPool: after the owner leaves, the machine
// serves jobs again.
func TestOwnerMachineRejoinsPool(t *testing.T) {
	params := DefaultParams()
	only := MachineConfig{Name: "only", Memory: 2048, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, only)

	startds[0].Evict() // owner is using the machine from the start
	id := submitJavaJob(schedd, jvm.WellBehaved(10*time.Minute))
	eng.RunFor(2 * time.Hour)
	if schedd.Job(id).State == JobCompleted {
		t.Fatal("job ran while the owner had the machine")
	}
	startds[0].OwnerLeft()
	runUntilDone(t, eng, schedd, 12*time.Hour)
	if schedd.Job(id).State != JobCompleted {
		t.Fatalf("state = %v", schedd.Job(id).State)
	}
}
