package daemon

import (
	"strings"
	"testing"
)

func TestFlockMsgEncodeForm(t *testing.T) {
	cases := []struct {
		m    FlockMsg
		want string
	}{
		{FlockMsg{Op: FlockGrant, Job: 7, Level: 2, Negotiator: "mm-p2"},
			`flock grant job=7 level=2 negotiator="mm-p2"`},
		{FlockMsg{Op: FlockDeny, Job: 41, Reason: "no live peer pool"},
			`flock deny job=41 reason="no live peer pool"`},
		{FlockMsg{Op: FlockDeny, Job: 0, Reason: ""},
			`flock deny job=0 reason=""`},
		{FlockMsg{Op: FlockGrant, Job: 3, Level: 1, Negotiator: `mm "quoted"`},
			`flock grant job=3 level=1 negotiator="mm \"quoted\""`},
	}
	for _, c := range cases {
		if got := EncodeFlockMsg(c.m); got != c.want {
			t.Errorf("EncodeFlockMsg(%+v) = %q, want %q", c.m, got, c.want)
		}
		back, err := ParseFlockMsg(c.want)
		if err != nil {
			t.Errorf("ParseFlockMsg(%q): %v", c.want, err)
		} else if back != c.m {
			t.Errorf("round trip of %q = %+v, want %+v", c.want, back, c.m)
		}
	}
}

func TestParseFlockMsgRejects(t *testing.T) {
	bad := []string{
		"",
		"flock",
		"flock ",
		"flock borrow job=1",
		"flock grant",
		"flock grant job=x level=1 negotiator=\"mm\"",
		"flock grant job=+1 level=1 negotiator=\"mm\"", // non-canonical int
		"flock grant job=007 level=1 negotiator=\"mm\"",
		"flock grant job=-1 level=1 negotiator=\"mm\"",
		"flock grant job=1 level=0 negotiator=\"mm\"", // level below 1
		"flock grant job=1 level=1 negotiator=\"\"",   // empty negotiator
		"flock grant job=1 level=1 negotiator=`mm`",   // non-canonical quoting
		"flock grant job=1 level=1 negotiator=\"mm\" extra",
		"flock deny job=1",
		"flock deny job=1 reason=\"x\" y",
		"flock deny reason=\"x\" job=1", // wrong field order
	}
	for _, s := range bad {
		if m, err := ParseFlockMsg(s); err == nil {
			t.Errorf("ParseFlockMsg(%q) accepted as %+v, want error", s, m)
		}
	}
}

// TestParseFlockMsgTruncation is the wire contract the
// flock-reply-truncate fault class leans on: no strict prefix of a
// canonical line parses — a grant cut anywhere in transit is an
// error, never a different grant.
func TestParseFlockMsgTruncation(t *testing.T) {
	for _, full := range []string{
		`flock grant job=12 level=2 negotiator="mm-p2"`,
		`flock deny job=7 reason="no live peer pool"`,
	} {
		for i := 0; i < len(full); i++ {
			if m, err := ParseFlockMsg(full[:i]); err == nil {
				t.Errorf("prefix %q parsed as %+v, want error", full[:i], m)
			}
		}
	}
}

func TestTruncateFlockReply(t *testing.T) {
	in := flockReplyMsg{Job: 5, Payload: "flock grant job=5 level=1 negotiator=\"mm-p2\""}
	got, ok := TruncateFlockReply(in, 12).(flockReplyMsg)
	if !ok || got.Payload != "flock grant " || got.Job != 5 {
		t.Errorf("TruncateFlockReply = %+v", got)
	}
	if got := TruncateFlockReply(in, 1000).(flockReplyMsg); got.Payload != in.Payload {
		t.Errorf("over-long cut changed the payload: %q", got.Payload)
	}
	if got := TruncateFlockReply(in, -3).(flockReplyMsg); got.Payload != "" {
		t.Errorf("negative cut kept %q", got.Payload)
	}
	if got := TruncateFlockReply("other", 1); got != "other" {
		t.Errorf("non-flock body mutated: %v", got)
	}
}

// FuzzParseFlockMsg is the codec's canonicality guarantee: arbitrary
// input must never panic, and anything the parser accepts must
// re-encode to the exact input bytes and survive a second round trip
// unchanged — the same contract the journal and scenario codecs pin.
func FuzzParseFlockMsg(f *testing.F) {
	grant := EncodeFlockMsg(FlockMsg{Op: FlockGrant, Job: 7, Level: 2, Negotiator: "mm-p2"})
	deny := EncodeFlockMsg(FlockMsg{Op: FlockDeny, Job: 7, Reason: "no live peer pool"})
	f.Add(grant)
	f.Add(deny)
	f.Add(grant[:12])                     // cut mid-line, the injector's default
	f.Add(deny[:len(deny)-1])             // torn closing quote
	f.Add("flock grant job=1 level=1 negotiator=\"m\\\"m\"")
	f.Add("flock deny job=0 reason=\"\"")
	f.Add("garbage")
	f.Add(strings.Repeat("flock ", 8))
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseFlockMsg(s)
		if err != nil {
			return
		}
		enc := EncodeFlockMsg(m)
		if enc != s {
			t.Fatalf("accepted %q but re-encodes as %q: parser admits a non-canonical form", s, enc)
		}
		m2, err := ParseFlockMsg(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if m2 != m {
			t.Fatalf("round trip changed the message: %+v vs %+v", m2, m)
		}
	})
}
