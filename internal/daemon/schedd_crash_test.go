package daemon

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/journal"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// jobSummary flattens everything the journal must preserve about a
// job into one comparable string.
func jobSummary(j *Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "id=%d owner=%s universe=%s exe=%s state=%s ckpt=%s submitted=%d finished=%d finalerr=%v\n",
		j.ID, j.Owner, j.Universe, j.Executable, j.State, j.CheckpointCPU,
		j.Submitted, j.Finished, j.FinalErr)
	for i, a := range j.Attempts {
		fmt.Fprintf(&b, "  att%d machine=%s start=%d end=%d cpu=%s evicted=%t fetch=%v lost=%v rep=%q tru=%q\n",
			i, a.Machine, a.Start, a.End, a.CPU, a.Evicted,
			a.FetchError, a.LostContact, a.Reported.EncodeString(), a.True.EncodeString())
	}
	return b.String()
}

func queueSummary(s *Schedd) string {
	var b strings.Builder
	for _, j := range s.Jobs() {
		b.WriteString(jobSummary(j))
	}
	for _, r := range s.Reports {
		fmt.Fprintf(&b, "report job=%d disp=%s result=%q err=%v leak=%t\n",
			r.Job, r.Disposition, r.Result.EncodeString(), r.Err, r.IncidentalLeak)
	}
	return b.String()
}

// TestScheddCrashRecoverPhases crashes the schedd at several points
// of a job's life — idle, matched/claimed, executing, result in
// flight — and recovers it from the journal.  In every phase the job
// must reach the same terminal disposition the no-crash baseline
// reaches: completed, reported once, nothing leaked.
func TestScheddCrashRecoverPhases(t *testing.T) {
	phases := []struct {
		name    string
		crashAt time.Duration
	}{
		{"idle", 30 * time.Second},
		{"claimed", 61 * time.Second},
		{"executing", 90 * time.Second},
		{"result-in-flight", 2*time.Minute + 1*time.Second},
	}
	for _, ph := range phases {
		t.Run(ph.name, func(t *testing.T) {
			params := DefaultParams()
			params.ChronicFailureThreshold = 1
			big := MachineConfig{Name: "big", Memory: 4096, AdvertiseJava: true}
			small := MachineConfig{Name: "small", Memory: 1024, AdvertiseJava: true}
			eng, _, schedd, _, _ := testPool(t, params, big, small)

			id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
			eng.After(ph.crashAt, func() { schedd.Crash() })
			eng.After(ph.crashAt+2*time.Minute, func() {
				if err := schedd.Recover(nil); err != nil {
					t.Errorf("recover: %v", err)
				}
			})
			runUntilDone(t, eng, schedd, 24*time.Hour)

			j := schedd.Job(id)
			if j == nil {
				t.Fatal("job lost across recovery")
			}
			if j.State != JobCompleted {
				t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
			}
			if schedd.Recoveries != 1 {
				t.Errorf("recoveries = %d", schedd.Recoveries)
			}
			if len(schedd.Reports) != 1 {
				t.Fatalf("reports = %+v", schedd.Reports)
			}
			rep := schedd.Reports[0]
			if rep.Disposition != scope.DispositionComplete || rep.IncidentalLeak {
				t.Errorf("report = %+v", rep)
			}
			if res := rep.Result; res.Err() != nil {
				t.Errorf("result = %v", res.Err())
			}
		})
	}
}

// TestScheddCrashClosesOpenAttempt verifies that recovery records the
// shadow's death against the attempt it orphaned: the reopened queue
// must show a first attempt ended by a local-resource ShadowDied
// error, and the retry must land elsewhere because avoidance blames
// the contact loss on the stale machine state, not the program.
func TestScheddCrashClosesOpenAttempt(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 1
	big := MachineConfig{Name: "big", Memory: 4096, AdvertiseJava: true}
	small := MachineConfig{Name: "small", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, big, small)

	id := submitJavaJob(schedd, jvm.WellBehaved(20*time.Minute))
	eng.After(90*time.Second, func() { schedd.Crash() })
	eng.After(3*time.Minute+30*time.Second, func() { schedd.Recover(nil) })
	runUntilDone(t, eng, schedd, 4*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 {
		t.Fatalf("attempts = %d", len(j.Attempts))
	}
	first := j.Attempts[0]
	if first.Machine != "big" || first.End == 0 {
		t.Fatalf("first attempt = %+v", first)
	}
	se, _ := scope.AsError(first.LostContact)
	if se == nil || se.Code != "ShadowDied" || se.Scope != scope.ScopeLocalResource {
		t.Errorf("lost contact = %v", first.LostContact)
	}
	if last := j.LastAttempt(); last.Machine != "small" {
		t.Errorf("retry landed on %s", last.Machine)
	}
	// The abandoned claim on big is released by lease expiry, not by
	// anything the recovered schedd does.
	if startds[0].LeasesExpired != 1 {
		t.Errorf("big lease expiries = %d", startds[0].LeasesExpired)
	}
}

// TestScheddJournalReplayEquality runs a workload to completion,
// crashes the schedd, and recovers it: the rebuilt queue — states,
// attempts, results, reports — must be field-for-field identical to
// the pre-crash queue, because terminal jobs are beyond the reach of
// recovery normalization.  Enough jobs run that the journal compacts
// at least once, so the snapshot codec is on the replayed path.
func TestScheddJournalReplayEquality(t *testing.T) {
	params := DefaultParams()
	machines := []MachineConfig{
		goodMachine("m1"), goodMachine("m2"), goodMachine("m3"), goodMachine("m4"),
	}
	eng, _, schedd, _, _ := testPool(t, params, machines...)

	for i := 0; i < 24; i++ {
		switch i % 3 {
		case 0:
			submitJavaJob(schedd, jvm.WellBehaved(time.Duration(i+1)*time.Second))
		case 1:
			submitJavaJob(schedd, jvm.NullPointer())
		default:
			submitJavaJob(schedd, jvm.ExitWith(3, 2*time.Second))
		}
	}
	runUntilDone(t, eng, schedd, 24*time.Hour)

	if schedd.Journal().Compactions() == 0 {
		t.Fatalf("journal never compacted: %d appends", schedd.Journal().Appends())
	}
	before := queueSummary(schedd)
	schedd.Crash()
	if !schedd.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if err := schedd.Recover(nil); err != nil {
		t.Fatalf("recover: %v", err)
	}
	after := queueSummary(schedd)
	if before != after {
		t.Errorf("queue diverged across replay:\n--- before ---\n%s--- after ---\n%s", before, after)
	}
}

// TestScheddTornTailRecovery rips bytes off the end of the journal —
// the write a crash cut short — and recovers.  The half-written
// record is dropped at a record boundary, the job falls back to the
// last durable state, and the retry still carries it to completion.
func TestScheddTornTailRecovery(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"), goodMachine("m2"))

	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	eng.After(90*time.Second, func() {
		schedd.Crash()
		wal := schedd.Journal()
		b := wal.Bytes()
		wal.SetBytes(b[:len(b)-3])
		if err := schedd.Recover(nil); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j == nil || j.State != JobCompleted {
		t.Fatalf("job = %+v", j)
	}
	if len(schedd.Reports) != 1 || schedd.Reports[0].Disposition != scope.DispositionComplete {
		t.Errorf("reports = %+v", schedd.Reports)
	}
}

// TestLeaseExpiryFreesOrphanedClaim crashes the schedd mid-execution
// and never recovers it.  The execute side must notice on its own:
// with renewals stopped, the startd's claim lease expires within one
// lease duration of the grant and the machine returns to unclaimed —
// no CPU is held hostage by a dead submit point.
func TestLeaseExpiryFreesOrphanedClaim(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, startds := testPool(t, params, goodMachine("m1"))

	submitJavaJob(schedd, jvm.WellBehaved(30*time.Minute))
	// The claim is granted just after the 60s negotiation; crash
	// before the first 2-minute lease renewal so none is ever sent.
	eng.After(2*time.Minute, func() { schedd.Crash() })

	// One lease duration after the grant, plus slack for the check
	// timer, the claim must be gone.
	eng.RunFor(2*time.Minute + params.LeaseDuration + 10*time.Second)
	sd := startds[0]
	if sd.LeasesExpired != 1 {
		t.Fatalf("lease expiries = %d", sd.LeasesExpired)
	}
	if sd.State() != StartdUnclaimed {
		t.Errorf("startd state = %v, want unclaimed", sd.State())
	}
}

// TestStaleTimersFencedAfterRecovery crashes the schedd in the narrow
// window between the match notification and the claim grant, then
// recovers almost immediately — while the pre-crash claim-timeout
// timer is still pending.  The epoch fence must keep that stale timer
// from journaling or mutating anything in the recovered queue.
func TestStaleTimersFencedAfterRecovery(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"), goodMachine("m2"))

	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	// Match notify lands at ~60.005s; the claim grant at ~60.015s.
	eng.After(time.Minute+10*time.Millisecond, func() { schedd.Crash() })
	eng.After(time.Minute+20*time.Millisecond, func() { schedd.Recover(nil) })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	// The stale timer from before the crash must not have fired into
	// the journal: no claim-timeout record may exist, because the
	// recovered incarnation's own claim succeeded.
	for _, e := range schedd.Journal().Replay().Entries {
		if strings.HasPrefix(string(e), "op=claim-timeout") {
			t.Errorf("stale claim timeout journaled: %q", e)
		}
	}
}

// TestRecoverIntoFreshSchedd replays one schedd's journal into a
// brand-new schedd process on a different engine — the "new machine,
// same disk" restart.  The rebuilt queue must match the original.
func TestRecoverIntoFreshSchedd(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))
	submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	submitJavaJob(schedd, jvm.NullPointer())
	runUntilDone(t, eng, schedd, 24*time.Hour)

	disk := journal.New()
	disk.SetBytes(schedd.Journal().Bytes())

	eng2 := sim.New(7)
	bus2 := sim.NewBus(eng2, 5*time.Millisecond)
	fresh := NewSchedd(bus2, params, "schedd")
	fresh.Crash()
	if err := fresh.Recover(disk); err != nil {
		t.Fatalf("recover from handed-off journal: %v", err)
	}
	if got, want := queueSummary(fresh), queueSummary(schedd); got != want {
		t.Errorf("fresh schedd queue differs:\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestRecoverGuards pins the API edges: Recover on a live schedd is
// an error, Crash is idempotent, and Crashed reflects the state.
func TestRecoverGuards(t *testing.T) {
	params := DefaultParams()
	_, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))

	if err := schedd.Recover(nil); err == nil {
		t.Error("Recover on a running schedd should fail")
	}
	if schedd.Crashed() {
		t.Error("Crashed() = true before Crash")
	}
	schedd.Crash()
	schedd.Crash() // idempotent
	if !schedd.Crashed() {
		t.Error("Crashed() = false after Crash")
	}
	if err := schedd.Recover(nil); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if schedd.Crashed() {
		t.Error("Crashed() = true after Recover")
	}
}
