package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/sim"
)

// TestOwnerPolicyDeniesClaims: the startd enforces the machine
// owner's policy at claim time, independent of the matchmaker's
// opinion.
func TestOwnerPolicyDeniesClaim(t *testing.T) {
	params := DefaultParams()
	picky := MachineConfig{
		Name: "picky", Memory: 2048, AdvertiseJava: true,
		OwnerRequirements: `target.Owner == "boss"`,
	}
	open := MachineConfig{Name: "open", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, picky, open)

	// alice's job ranks the picky machine first, but its owner only
	// accepts jobs from boss.
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 12*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.LastAttempt().Machine != "open" {
		t.Errorf("ran on %s", j.LastAttempt().Machine)
	}
	if startds[0].JobsRun != 0 {
		t.Error("picky machine must not run alice's job")
	}
	// Note: the matchmaker already respects the owner ad, so the
	// picky machine is never even proposed — Figure 1's two-sided
	// verification in action.
}

// TestClaimRaceDenied: two schedds race for one machine; exactly one
// claim is granted and the loser's job completes elsewhere later.
func TestClaimRaceDenied(t *testing.T) {
	params := DefaultParams()
	eng := sim.New(3)
	bus := sim.NewBus(eng, 5*time.Millisecond)
	NewMatchmaker(bus, params)
	s1 := NewSchedd(bus, params, "s1")
	s2 := NewSchedd(bus, params, "s2")
	sd := NewStartd(bus, params, goodMachine("m1"))
	_ = sd

	submit := func(s *Schedd) JobID {
		s.SubmitFS.WriteFile("/x.class", []byte("b"))
		return s.Submit(&Job{
			Owner: "u", Ad: NewJavaJobAd("u", 128),
			Program: jvm.WellBehaved(10 * time.Minute), Executable: "/x.class",
		})
	}
	id1, id2 := submit(s1), submit(s2)
	for eng.Now() < sim.Time(12*time.Hour) && !(s1.AllTerminal() && s2.AllTerminal()) {
		eng.RunFor(time.Minute)
	}
	j1, j2 := s1.Job(id1), s2.Job(id2)
	if j1.State != JobCompleted || j2.State != JobCompleted {
		t.Fatalf("states = %v, %v", j1.State, j2.State)
	}
	// They cannot have run concurrently on the single machine.
	if overlap(j1.Attempts[len(j1.Attempts)-1], j2.Attempts[len(j2.Attempts)-1]) {
		t.Error("two jobs overlapped on one machine")
	}
}

func overlap(a, b Attempt) bool {
	return a.Start < b.End && b.Start < a.End
}

// TestMatchmakerAccessors covers the introspection used by tools.
func TestMatchmakerAccessors(t *testing.T) {
	params := DefaultParams()
	eng := sim.New(1)
	bus := sim.NewBus(eng, time.Millisecond)
	mm := NewMatchmaker(bus, params)
	NewStartd(bus, params, goodMachine("m1"))
	schedd := NewSchedd(bus, params, "schedd")
	schedd.SubmitFS.WriteFile("/x.class", []byte("b"))
	// A job no machine can satisfy stays pending.
	ad := NewJavaJobAd("u", 128)
	ad.MustSetExpr("Requirements", "target.Memory >= 999999")
	schedd.Submit(&Job{Owner: "u", Ad: ad,
		Program: jvm.WellBehaved(time.Minute), Executable: "/x.class"})
	eng.RunFor(5 * time.Minute)
	if mm.MachineCount() != 1 {
		t.Errorf("machines = %d", mm.MachineCount())
	}
	if mm.PendingJobs() != 1 {
		t.Errorf("pending = %d", mm.PendingJobs())
	}
	if mm.MatchesMade != 0 {
		t.Errorf("matches = %d", mm.MatchesMade)
	}
}

// TestStaleActivationIgnored: an activation for a job whose claim was
// already released must not start anything.
func TestStaleActivationIgnored(t *testing.T) {
	params := DefaultParams()
	eng := sim.New(1)
	bus := sim.NewBus(eng, time.Millisecond)
	sd := NewStartd(bus, params, goodMachine("m1"))
	// Activate without any claim.
	bus.Send("nobody", "m1", kindActivate, activateMsg{Job: 42, Shadow: "ghost"})
	eng.RunFor(time.Minute)
	if sd.State() != StartdUnclaimed {
		t.Errorf("state = %v", sd.State())
	}
	if sd.JobsRun != 0 {
		t.Error("stale activation ran a job")
	}
}
