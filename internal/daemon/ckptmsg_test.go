package daemon

import (
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
	"time"
)

func TestCheckpointEncodeForm(t *testing.T) {
	prefixes := []struct {
		job    JobID
		cpu    time.Duration
		prefix string
	}{
		{7, 30 * time.Minute, "ckpt job=7 cpu=1800000000000"},
		{1, 0, "ckpt job=1 cpu=0"},
	}
	for _, c := range prefixes {
		want := fmt.Sprintf("%s crc=%08x", c.prefix, crc32.ChecksumIEEE([]byte(c.prefix)))
		got := EncodeCheckpoint(c.job, c.cpu)
		if got != want {
			t.Errorf("EncodeCheckpoint(%d, %v) = %q, want %q", c.job, c.cpu, got, want)
		}
		job, cpu, err := ParseCheckpoint(got)
		if err != nil {
			t.Errorf("ParseCheckpoint(%q): %v", got, err)
		} else if job != c.job || cpu != c.cpu {
			t.Errorf("round trip of %q = (%d, %v), want (%d, %v)", got, job, cpu, c.job, c.cpu)
		}
	}
}

func TestParseCheckpointRejects(t *testing.T) {
	good := EncodeCheckpoint(7, 30*time.Minute)
	bad := []string{
		"",
		"ckpt",
		"ckpt ",
		"checkpoint job=1 cpu=0 crc=00000000",
		"ckpt job=x cpu=0 crc=00000000",
		"ckpt job=+1 cpu=0 crc=00000000", // non-canonical int
		"ckpt job=007 cpu=0 crc=00000000",
		"ckpt job=-1 cpu=0 crc=00000000",
		"ckpt job=1 cpu=-5 crc=00000000",
		"ckpt cpu=0 job=1 crc=00000000", // wrong field order
		"ckpt job=1 cpu=0",              // no crc
		"ckpt job=1 cpu=0 crc=123",      // short crc
		"ckpt job=1 cpu=0 crc=0000000g", // non-hex crc
		good + " extra",                 // trailing garbage breaks the crc
		strings.ToUpper(good),           // case damage breaks the crc
	}
	// Uppercased CRC digits alone: canonical-hex rejection, distinct
	// from a checksum mismatch.
	if i := strings.IndexAny(good[len(good)-8:], "abcdef"); i >= 0 {
		up := good[:len(good)-8] + strings.ToUpper(good[len(good)-8:])
		bad = append(bad, up)
	}
	for _, s := range bad {
		if job, cpu, err := ParseCheckpoint(s); err == nil {
			t.Errorf("ParseCheckpoint(%q) accepted as (%d, %v), want error", s, job, cpu)
		}
	}
}

// TestParseCheckpointTruncation is the wire contract the
// corrupt-checkpoint fault class leans on: no strict prefix of a
// canonical record parses — a checkpoint cut anywhere in transit is an
// error, never a smaller checkpoint.
func TestParseCheckpointTruncation(t *testing.T) {
	full := EncodeCheckpoint(12, 95*time.Minute)
	for i := 0; i < len(full); i++ {
		if job, cpu, err := ParseCheckpoint(full[:i]); err == nil {
			t.Errorf("prefix %q parsed as (%d, %v), want error", full[:i], job, cpu)
		}
	}
}

// TestParseCheckpointBitDamage: flipping any single payload byte must
// fail the CRC (or the field syntax) — the shadow never commits a
// damaged record.
func TestParseCheckpointBitDamage(t *testing.T) {
	full := EncodeCheckpoint(3, 2*time.Hour)
	for i := 0; i < len(full); i++ {
		b := []byte(full)
		b[i] ^= 0x20
		if string(b) == full {
			continue
		}
		if job, cpu, err := ParseCheckpoint(string(b)); err == nil {
			t.Errorf("byte %d flipped: parsed as (%d, %v), want error", i, job, cpu)
		}
	}
}

func TestCorruptCheckpoint(t *testing.T) {
	in := checkpointMsg{Job: 5, Payload: EncodeCheckpoint(5, time.Hour)}
	got, ok := CorruptCheckpoint(in, 3).(checkpointMsg)
	if !ok || got.Payload == in.Payload || got.Job != 5 {
		t.Errorf("CorruptCheckpoint = %+v", got)
	}
	if _, _, err := ParseCheckpoint(got.Payload); err == nil {
		t.Errorf("corrupted payload %q still parses", got.Payload)
	}
	if got := CorruptCheckpoint(in, -3).(checkpointMsg); got.Payload == in.Payload {
		t.Errorf("negative index left the payload intact")
	}
	if got := CorruptCheckpoint(in, len(in.Payload)+3).(checkpointMsg); got.Payload == in.Payload {
		t.Errorf("out-of-range index left the payload intact")
	}
	if got := CorruptCheckpoint("other", 1); got != "other" {
		t.Errorf("non-checkpoint body mutated: %v", got)
	}
	empty := checkpointMsg{Job: 5}
	if got := CorruptCheckpoint(empty, 1).(checkpointMsg); got != empty {
		t.Errorf("empty payload mutated: %+v", got)
	}
}

// FuzzParseCheckpoint is the codec's canonicality guarantee: arbitrary
// input must never panic, and anything the parser accepts must
// re-encode to the exact input bytes — the same contract the flock
// codec pins.
func FuzzParseCheckpoint(f *testing.F) {
	a := EncodeCheckpoint(7, 30*time.Minute)
	b := EncodeCheckpoint(1, 0)
	f.Add(a)
	f.Add(b)
	f.Add(a[:12])           // cut mid-line
	f.Add(a[:len(a)-1])     // torn crc
	f.Add("ckpt job=1 cpu=0 crc=00000000")
	f.Add("garbage")
	f.Add(strings.Repeat("ckpt ", 8))
	f.Fuzz(func(t *testing.T, s string) {
		job, cpu, err := ParseCheckpoint(s)
		if err != nil {
			return
		}
		if job < 0 || cpu < 0 {
			t.Fatalf("accepted negative values from %q: (%d, %v)", s, job, cpu)
		}
		enc := EncodeCheckpoint(job, cpu)
		if enc != s {
			t.Fatalf("accepted %q but re-encodes as %q: parser admits a non-canonical form", s, enc)
		}
		job2, cpu2, err := ParseCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if job2 != job || cpu2 != cpu {
			t.Fatalf("round trip changed the record: (%d, %v) vs (%d, %v)", job2, cpu2, job, cpu)
		}
	})
}
