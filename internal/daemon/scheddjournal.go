package daemon

// Submit-side crash durability (Section 4: the schedd is the job
// queue's home, and the queue must outlive the process).  Every queue
// transition is appended to a write-ahead journal before it is acted
// on; Crash tears the process down mid-flight, and Recover rebuilds
// the queue by replaying the journal, requeueing jobs whose shadows
// died with the schedd.
//
// The journal holds one text record per transition, and the periodic
// compaction folds the applied prefix into a snapshot of the whole
// queue.  Both are key=value lines with Go-quoted strings, so a torn
// tail truncates at a record boundary (package journal) and a record
// never splits across frames.
//
// Deliberately not persisted: per-job event logs and the transient
// counters (MatchesReceived, MatchesDeclined, ClaimsFailed) — they
// are telemetry about the dead process, not queue state — and the
// claim sequence numbers, whose timers died with the process and are
// fenced off by the epoch check on recovery.  Flock state is
// journaled (flock records) but never snapshotted: recovery resets
// every job to its home pool (normalizeJob), because the remote
// advertisement is exactly what a crash invalidates.

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/journal"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// walCompactEvery bounds journal growth: after this many appended
// records the log is folded into a snapshot before the next append.
const walCompactEvery = 64

// Journal exposes the schedd's write-ahead journal — the durable
// storage a recovery replays.  Tests and fault injectors read it from
// the "disk" of a crashed schedd.
func (s *Schedd) Journal() *journal.Journal { return s.wal }

// Crashed reports whether the schedd is currently down.
func (s *Schedd) Crashed() bool { return s.crashed }

// journalAppend writes one record ahead of the transition it
// describes.  The reference arm appends (and, on a real disk, syncs)
// immediately; the fast path buffers the record into the open batch
// and schedules the group commit for the end of the current instant,
// deferring every outgoing send behind it (see commitWAL).
func (s *Schedd) journalAppend(rec []byte) {
	if !s.fast {
		// Compaction runs before the append: every record already in
		// the log has been applied to the queue, so the snapshot of
		// the current queue plus the new record is the complete
		// history.
		if s.walAppends >= walCompactEvery {
			s.wal.Compact(s.snapshot(), nil)
			s.walAppends = 0
		}
		s.wal.Append(rec)
		s.walAppends++
		return
	}
	s.walBuf = append(s.walBuf, rec)
	if !s.commitArmed {
		s.commitArmed = true
		epoch := s.epoch
		// After(0) fires at the current instant but after every event
		// already queued for it — in particular after the rest of
		// this negotiation cycle's deliveries — so one commit batches
		// the whole cycle's transitions.
		s.bus.After(0, func() { s.commitWAL(epoch) })
	}
}

// compactEvery is the adaptive compaction threshold: at least the
// historic walCompactEvery, but grown with queue size.  A fixed
// threshold makes a big pool re-serialize its whole queue every 64
// transitions — O(queue²) journal work over a run — while a
// proportional one keeps compaction amortized O(1) per transition.
// The multiplier trades recovery replay length against snapshot
// traffic; at 4x the run-long journal cost stays O(1) per transition
// with half the 2x multiplier's snapshot bytes.
func (s *Schedd) compactEvery() int {
	if n := 4 * len(s.jobs); n > walCompactEvery {
		return n
	}
	return walCompactEvery
}

// commitWAL closes the open batch.  The buffered records become
// durable as one batched append — or are folded into a fresh snapshot
// when the log is due for compaction: every buffered record describes
// a transition already applied to the in-memory queue, so the
// snapshot subsumes the batch.  Only then do the deferred sends go
// out, in order.  The epoch fence drops commits armed before a crash:
// the buffer and outbox are process memory, and losing them at a
// crash is exactly the semantics the group-commit crash test pins.
func (s *Schedd) commitWAL(epoch int) {
	if s.crashed || epoch != s.epoch {
		return
	}
	s.commitArmed = false
	if len(s.walBuf) > 0 {
		if s.walAppends+len(s.walBuf) >= s.compactEvery() {
			s.wal.Compact(s.snapshot(), nil)
			s.walAppends = 0
		} else {
			s.wal.AppendBatch(s.walBuf)
			s.walAppends += len(s.walBuf)
		}
		clear(s.walBuf)
		s.walBuf = s.walBuf[:0]
	}
	for i := range s.outbox {
		p := s.outbox[i]
		s.outbox[i] = pendingSend{}
		s.bus.Send(s.name, p.to, p.kind, p.body)
	}
	s.outbox = s.outbox[:0]
}

// ForceCompact folds the journal into a fresh snapshot now, without
// waiting for the adaptive threshold — the ops-plane `compact` verb.
// Any buffered group-commit records describe transitions already
// applied to the in-memory queue, so the snapshot subsumes them; the
// sends deferred behind those records still flush at the armed commit
// (durability is only ever strengthened here, never weakened).  On a
// crashed schedd the verb escapes to the caller as a local-resource
// error naming the daemon it touched.
func (s *Schedd) ForceCompact() error {
	if s.crashed {
		e := scope.New(scope.ScopeLocalResource, "ScheddDown",
			"cannot compact %s: the schedd is down", s.name)
		return e.WithOrigin(s.name)
	}
	s.wal.Compact(s.snapshot(), nil)
	s.walAppends = 0
	clear(s.walBuf)
	s.walBuf = s.walBuf[:0]
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.name,
			Kind: obs.KindState, Code: "wal-compacted",
			Detail: "admin compact: journal folded into a snapshot"})
	}
	return nil
}

// Crash takes the schedd process down: the advertisement ticker
// stops, pending timers are fenced off by the epoch bump, the shadows
// — child processes — die silently, and the actor leaves the bus.
// The journal survives; it is the disk, not the process.
func (s *Schedd) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.epoch++
	// The open group-commit batch is process memory: records not yet
	// appended, and the sends that were waiting on them, die with the
	// process.  Nothing externally visible happened for them — that
	// is the whole point of deferring the sends.
	s.commitArmed = false
	clear(s.walBuf)
	s.walBuf = s.walBuf[:0]
	clear(s.outbox)
	s.outbox = s.outbox[:0]
	if s.stopAds != nil {
		s.stopAds()
		s.stopAds = nil
	}
	s.tr.Count("schedd.crashes", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.name,
			Kind: obs.KindState, Code: "crashed"})
	}
	// The execute side is not informed: running machines discover the
	// loss when the claim lease expires with no shadow to renew it.
	ids := make([]JobID, 0, len(s.shadows))
	for id := range s.shadows {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		s.shadows[id].kill()
	}
	clear(s.shadows)
	s.bus.Unregister(s.name)
}

// Recover restarts a crashed schedd from a journal — its own by
// default, or an explicit one standing in for the recovered disk.
// The queue is rebuilt by replaying the snapshot and every surviving
// record; jobs that were in flight when the process died are closed
// out with a local-resource ShadowDied error and requeued.
func (s *Schedd) Recover(from *journal.Journal) error {
	if !s.crashed {
		return fmt.Errorf("schedd %s: recover without a crash", s.name)
	}
	if from == nil {
		from = s.wal
	}
	r := from.Replay()

	s.wal = from
	s.walAppends = len(r.Entries)
	s.jobs = make(map[JobID]*Job)
	s.order = nil
	s.nextID = 0
	s.shadowSeq = 0
	s.shadows = make(map[JobID]*Shadow)
	s.machineFailures = make(map[string]failureRecord)
	s.avoidedCache, s.avoidedDirty = nil, true
	s.idleOrder, s.idleStale, s.nonTerminal = nil, 0, 0
	s.idlePos = make(map[JobID]int)
	s.Reports = nil
	s.reportEnc, s.reportEncN = s.reportEnc[:0], 0
	s.Requeues = 0
	s.MatchesReceived, s.MatchesDeclined, s.ClaimsFailed = 0, 0, 0

	if len(r.Snapshot) > 0 {
		if err := s.applySnapshot(r.Snapshot); err != nil {
			return fmt.Errorf("schedd %s: snapshot: %w", s.name, err)
		}
	}
	for i, e := range r.Entries {
		if err := s.applyEntry(e); err != nil {
			return fmt.Errorf("schedd %s: record %d: %w", s.name, i, err)
		}
	}

	s.crashed = false
	s.bus.Register(s.name, s)
	s.stopAds = s.bus.Every(s.params.AdInterval, s.advertiseIdle)
	s.Recoveries++
	s.tr.Count("schedd.recoveries", 1)
	now := s.bus.Now()
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(now), Comp: s.name, Kind: obs.KindRecovery,
			Value: int64(r.Records),
			Detail: fmt.Sprintf("replayed %d records, %d snapshot bytes, %d torn bytes dropped",
				r.Records, len(r.Snapshot), r.Truncated)})
	}

	// Normalize the rebuilt queue: any non-terminal job lost whatever
	// was serving it (shadow, claim, matchmaker entry) with the
	// process, so it restarts from idle.  The normalization itself is
	// journaled so a second crash replays to the same place.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		open := j.LastAttempt() != nil && j.LastAttempt().End == 0
		s.journalAppend(recEvent("recover", j.ID, now))
		s.normalizeJob(j, now)
		if open {
			// The shadow died mid-attempt.  The machine is blameless —
			// the submit side failed — so the chronic-failure table is
			// untouched.
			died := j.LastAttempt().LostContact
			if s.tr.Enabled() {
				s.tr.Emit(errorEvent(int64(now), s.name, j.ID, died))
			}
			s.logEvent(j, EventShadowVanished, "%v", died)
		}
		s.logEvent(j, EventRecovered, "queue rebuilt from journal")
		s.advertiseJob(j)
	}
	// Recovery is complete only when its normalization records are on
	// disk; flush the batch before handing the queue back.
	s.commitWAL(s.epoch)
	return nil
}

// normalizeJob requeues one non-terminal job after recovery: an open
// attempt is closed with the ShadowDied error, and the job returns to
// idle.  Replay of a recover record applies the same function.
func (s *Schedd) normalizeJob(j *Job, at sim.Time) {
	if att := j.LastAttempt(); att != nil && att.End == 0 {
		att.End = at
		att.LostContact = shadowDiedErr(s.name)
	}
	// A flock arrangement — an advertisement standing at a peer
	// negotiator — died with the process; the rebuilt job starts over
	// from its home pool.
	s.resetFlock(j)
	if !j.State.Terminal() {
		s.setState(j, JobIdle)
	}
}

// shadowDiedErr is the error charged to an attempt orphaned by a
// schedd crash: the loss is on the submit side's local resources, and
// it escaped the dead process rather than being raised by it.
func shadowDiedErr(schedd string) *scope.Error {
	e := scope.New(scope.ScopeLocalResource, "ShadowDied",
		"the schedd crashed and took the job's shadow with it")
	e.Kind = scope.KindEscaping
	return e.WithOrigin(schedd)
}

// --- record encoding -------------------------------------------------

// identLine returns — building it on first use — the encoding of the
// job's immutable identity fields, shared by the submit record and
// every snapshot line: "owner=.. universe=.. exe=.. ad=.. prog=..".
// Owner, Universe, Executable, Ad, and Program never change after
// submission (recovery builds a fresh Job), so the rendered ad and the
// quoting work are paid once per job instead of once per snapshot.
func (j *Job) identLine() []byte {
	if j.identEnc == nil {
		ad := ""
		if j.Ad != nil {
			ad = j.Ad.String()
		}
		b := append(make([]byte, 0, 96+len(ad)), "owner="...)
		b = scope.AppendQuote(b, j.Owner)
		b = append(b, " universe="...)
		b = scope.AppendQuote(b, j.Universe)
		b = append(b, " exe="...)
		b = scope.AppendQuote(b, j.Executable)
		b = append(b, " ad="...)
		b = scope.AppendQuote(b, ad)
		b = append(b, " prog="...)
		b = scope.AppendQuote(b, jvm.EncodeProgram(j.Program))
		j.identEnc = b
	}
	return j.identEnc
}

func recSubmit(j *Job) []byte {
	ident := j.identLine()
	b := append(make([]byte, 0, 40+len(ident)), "op=submit id="...)
	b = strconv.AppendInt(b, int64(j.ID), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(j.Submitted), 10)
	b = append(b, ' ')
	b = append(b, ident...)
	return b
}

func recMachineOp(op string, id JobID, at sim.Time, machine string) []byte {
	b := append(make([]byte, 0, 48+len(machine)), "op="...)
	b = append(b, op...)
	b = append(b, " id="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, " machine="...)
	b = scope.AppendQuote(b, machine)
	return b
}

func recMatch(id JobID, at sim.Time, machine string) []byte {
	return recMachineOp("match", id, at, machine)
}

func recExec(id JobID, at sim.Time, machine string) []byte {
	return recMachineOp("exec", id, at, machine)
}

// recFlock records a flock transition: the job's advertisement moved
// to the peer negotiator `to` at 1-based `level`, or came home again
// (level 0, empty to).
func recFlock(id JobID, at sim.Time, level int, to string) []byte {
	b := append(make([]byte, 0, 56+len(to)), "op=flock id="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, " level="...)
	b = strconv.AppendInt(b, int64(level), 10)
	b = append(b, " to="...)
	b = scope.AppendQuote(b, to)
	return b
}

// recCkpt records a committed checkpoint: the job can resume from cpu
// nanoseconds of delivered work on any machine, even after a schedd
// crash.
func recCkpt(id JobID, at sim.Time, cpu time.Duration) []byte {
	b := append(make([]byte, 0, 56), "op=ckpt id="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, " cpu="...)
	b = strconv.AppendInt(b, int64(cpu), 10)
	return b
}

// recEvent covers the transitions that carry no payload beyond the
// job and the instant: claim-timeout, claim-denied, relax, recover.
func recEvent(op string, id JobID, at sim.Time) []byte {
	b := append(make([]byte, 0, 40), "op="...)
	b = append(b, op...)
	b = append(b, " id="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(at), 10)
	return b
}

func recFinal(f jobFinalMsg, at sim.Time) []byte {
	b := append(make([]byte, 0, 256), "op=final id="...)
	b = strconv.AppendInt(b, int64(f.Job), 10)
	b = append(b, " at="...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, " machine="...)
	b = scope.AppendQuote(b, f.Machine)
	b = append(b, " cpu="...)
	b = strconv.AppendInt(b, int64(f.CPU), 10)
	b = append(b, " ckpt="...)
	b = strconv.AppendInt(b, int64(f.CheckpointCPU), 10)
	b = append(b, " evicted="...)
	b = strconv.AppendBool(b, f.Evicted)
	if f.Preempted { // written only when set, so pre-preemption logs replay byte-identically
		b = append(b, " pre=true"...)
	}
	b = append(b, " hold="...)
	b = strconv.AppendBool(b, f.Hold)
	b = append(b, " fetch="...)
	b = scope.AppendQuote(b, encodeScopedErr(f.FetchError))
	b = append(b, " lost="...)
	b = scope.AppendQuote(b, encodeScopedErr(f.LostContact))
	b = append(b, " rep="...)
	b = scope.AppendQuote(b, f.Reported.EncodeString())
	b = append(b, " tru="...)
	b = scope.AppendQuote(b, f.True.EncodeString())
	return b
}

// encodeScopedErr flattens an error for the journal.  The cause chain
// is collapsed into the effective message, so the round-tripped error
// prints the identical Error() string and keeps its scope, kind,
// code, and origin — everything disposition and reporting read.
func encodeScopedErr(err error) string {
	if err == nil {
		return ""
	}
	se, ok := scope.AsError(err)
	if !ok {
		se = scope.New(scope.ScopeOf(err), "UnscopedError", "%v", err)
	}
	msg := se.Message
	if msg == "" && se.Cause != nil {
		msg = se.Cause.Error()
	}
	return strings.Join([]string{
		se.Scope.String(), se.Kind.String(), se.Code, se.Origin, msg}, "|")
}

func decodeScopedErr(enc string) (error, error) {
	if enc == "" {
		return nil, nil
	}
	parts := strings.SplitN(enc, "|", 5)
	if len(parts) != 5 {
		return nil, fmt.Errorf("malformed error %q", enc)
	}
	sc, err := scope.ParseScope(parts[0])
	if err != nil {
		return nil, err
	}
	k, err := scope.ParseKind(parts[1])
	if err != nil {
		return nil, err
	}
	return &scope.Error{Scope: sc, Kind: k, Code: parts[2],
		Origin: parts[3], Message: parts[4]}, nil
}

// --- record replay ---------------------------------------------------

// applyEntry replays one journal record against the queue.  Records
// are facts, not requests: they were written ahead of transitions
// that then happened, so they apply unconditionally.
func (s *Schedd) applyEntry(payload []byte) error {
	kv, err := scanKV(string(payload))
	if err != nil {
		return err
	}
	id, err := parseInt64(kv, "id")
	if err != nil {
		return err
	}
	at, err := parseInt64(kv, "at")
	if err != nil {
		return err
	}
	op := kv["op"]
	if op == "submit" {
		return s.replaySubmit(JobID(id), sim.Time(at), kv)
	}
	j, ok := s.jobs[JobID(id)]
	if !ok {
		return fmt.Errorf("%s record for unknown job %d", op, id)
	}
	switch op {
	case "match":
		s.setState(j, JobMatched)
	case "claim-timeout", "claim-denied":
		s.setState(j, JobIdle)
	case "exec":
		machine, err := unquoted(kv, "machine")
		if err != nil {
			return err
		}
		s.setState(j, JobRunning)
		j.avoidanceRelaxed = false
		s.resetFlock(j)
		j.Attempts = append(j.Attempts, Attempt{Machine: machine, Start: sim.Time(at)})
	case "relax":
		j.avoidanceRelaxed = true
	case "ckpt":
		cpu, err := parseInt64(kv, "cpu")
		if err != nil {
			return err
		}
		if d := durationNS(cpu); d > j.CheckpointCPU {
			j.CheckpointCPU = d
		}
	case "flock":
		level, err := parseInt64(kv, "level")
		if err != nil {
			return err
		}
		to, err := unquoted(kv, "to")
		if err != nil {
			return err
		}
		j.flockedTo, j.flockLevel = to, int(level)
		j.flockedAt = sim.Time(at)
	case "final":
		f, err := decodeFinal(JobID(id), kv)
		if err != nil {
			return err
		}
		s.applyFinal(j, f, finalError(f), sim.Time(at))
	case "recover":
		s.normalizeJob(j, sim.Time(at))
	default:
		return fmt.Errorf("unknown record op %q", op)
	}
	return nil
}

func (s *Schedd) replaySubmit(id JobID, at sim.Time, kv map[string]string) error {
	j := &Job{ID: id, State: JobIdle, Submitted: at}
	var err error
	if j.Owner, err = unquoted(kv, "owner"); err != nil {
		return err
	}
	if j.Universe, err = unquoted(kv, "universe"); err != nil {
		return err
	}
	if j.Executable, err = unquoted(kv, "exe"); err != nil {
		return err
	}
	adSrc, err := unquoted(kv, "ad")
	if err != nil {
		return err
	}
	if adSrc != "" {
		if j.Ad, err = classad.Parse(adSrc); err != nil {
			return fmt.Errorf("job %d ad: %w", id, err)
		}
		j.Ad.Precompile()
	}
	progSrc, err := unquoted(kv, "prog")
	if err != nil {
		return err
	}
	if j.Program, err = jvm.ParseProgram(progSrc); err != nil {
		return fmt.Errorf("job %d program: %w", id, err)
	}
	s.addJob(j)
	if id > s.nextID {
		s.nextID = id
	}
	return nil
}

func decodeFinal(id JobID, kv map[string]string) (jobFinalMsg, error) {
	f := jobFinalMsg{Job: id}
	var err error
	if f.Machine, err = unquoted(kv, "machine"); err != nil {
		return f, err
	}
	cpu, err := parseInt64(kv, "cpu")
	if err != nil {
		return f, err
	}
	ckpt, err := parseInt64(kv, "ckpt")
	if err != nil {
		return f, err
	}
	f.CPU, f.CheckpointCPU = durationNS(cpu), durationNS(ckpt)
	if f.Evicted, err = parseBool(kv, "evicted"); err != nil {
		return f, err
	}
	if _, ok := kv["pre"]; ok { // absent in pre-preemption logs
		if f.Preempted, err = parseBool(kv, "pre"); err != nil {
			return f, err
		}
	}
	if f.Hold, err = parseBool(kv, "hold"); err != nil {
		return f, err
	}
	fetch, err := unquoted(kv, "fetch")
	if err != nil {
		return f, err
	}
	if f.FetchError, err = decodeScopedErr(fetch); err != nil {
		return f, err
	}
	lost, err := unquoted(kv, "lost")
	if err != nil {
		return f, err
	}
	if f.LostContact, err = decodeScopedErr(lost); err != nil {
		return f, err
	}
	rep, err := unquoted(kv, "rep")
	if err != nil {
		return f, err
	}
	if f.Reported, err = scope.DecodeResultString(rep); err != nil {
		return f, fmt.Errorf("reported result: %w", err)
	}
	tru, err := unquoted(kv, "tru")
	if err != nil {
		return f, err
	}
	if f.True, err = scope.DecodeResultString(tru); err != nil {
		return f, fmt.Errorf("true result: %w", err)
	}
	return f, nil
}

// --- snapshot --------------------------------------------------------

// snapshot serializes the whole queue: one header line, the
// chronic-failure table, then per job its attempts, then the user
// reports.  Line order is the replay order.  The assembly buffer is
// reused across snapshots and the immutable pieces — job identity
// lines, frozen attempts, already-written reports — come from caches,
// so each compaction pays only for the state that changed since the
// last one.  The returned slice aliases the reused buffer; callers
// (journal framing) copy it before the next snapshot.
func (s *Schedd) snapshot() []byte {
	if cap(s.snapBuf) < 256*len(s.jobs) {
		// First snapshot at this queue size: reserve roughly a full
		// serialization up front so the build doubles a handful of
		// times instead of re-copying megabytes under append's damped
		// growth factor.
		s.snapBuf = make([]byte, 0, 256*len(s.jobs))
	}
	b := s.snapBuf[:0]
	b = append(b, "schedd nextID="...)
	b = strconv.AppendInt(b, int64(s.nextID), 10)
	b = append(b, " requeues="...)
	b = strconv.AppendInt(b, int64(s.Requeues), 10)
	b = append(b, " recoveries="...)
	b = strconv.AppendInt(b, int64(s.Recoveries), 10)
	b = append(b, '\n')
	machines := make([]string, 0, len(s.machineFailures))
	for m, rec := range s.machineFailures {
		if rec.count != 0 {
			machines = append(machines, m)
		}
	}
	sort.Strings(machines)
	for _, m := range machines {
		rec := s.machineFailures[m]
		b = append(b, "failure machine="...)
		b = scope.AppendQuote(b, m)
		b = append(b, " count="...)
		b = strconv.AppendInt(b, int64(rec.count), 10)
		b = append(b, " last="...)
		b = strconv.AppendInt(b, int64(rec.last), 10)
		b = append(b, '\n')
	}
	for _, id := range s.order {
		j := s.jobs[id]
		b = append(b, "job id="...)
		b = strconv.AppendInt(b, int64(j.ID), 10)
		b = append(b, ' ')
		b = append(b, j.identLine()...)
		b = append(b, " state="...)
		b = append(b, j.State.String()...)
		b = append(b, " ckpt="...)
		b = strconv.AppendInt(b, int64(j.CheckpointCPU), 10)
		b = append(b, " relaxed="...)
		b = strconv.AppendBool(b, j.avoidanceRelaxed)
		b = append(b, " submitted="...)
		b = strconv.AppendInt(b, int64(j.Submitted), 10)
		b = append(b, " finished="...)
		b = strconv.AppendInt(b, int64(j.Finished), 10)
		b = append(b, " finalerr="...)
		b = scope.AppendQuote(b, encodeScopedErr(j.FinalErr))
		b = append(b, '\n')
		b = j.appendAttempts(b)
	}
	if s.reportEncN > len(s.Reports) {
		// Reports were reset (recovery rebuilds them); re-encode.
		s.reportEnc, s.reportEncN = s.reportEnc[:0], 0
	}
	for ; s.reportEncN < len(s.Reports); s.reportEncN++ {
		s.reportEnc = appendReport(s.reportEnc, &s.Reports[s.reportEncN])
	}
	b = append(b, s.reportEnc...)
	s.snapBuf = b
	return b
}

// appendAttempts writes the job's attempt lines: the frozen prefix
// from the cache, the still-mutable tail fresh.  An attempt freezes
// when a later attempt exists (applyFinal and normalizeJob only touch
// the last), or when it is closed and the job is terminal.
func (j *Job) appendAttempts(b []byte) []byte {
	for j.attEncN < len(j.Attempts) {
		a := &j.Attempts[j.attEncN]
		if j.attEncN == len(j.Attempts)-1 && !(a.End != 0 && j.State.Terminal()) {
			break
		}
		j.attEnc = appendAttempt(j.attEnc, j.ID, a)
		j.attEncN++
	}
	b = append(b, j.attEnc...)
	for i := j.attEncN; i < len(j.Attempts); i++ {
		b = appendAttempt(b, j.ID, &j.Attempts[i])
	}
	return b
}

func appendAttempt(b []byte, id JobID, a *Attempt) []byte {
	b = append(b, "attempt id="...)
	b = strconv.AppendInt(b, int64(id), 10)
	b = append(b, " machine="...)
	b = scope.AppendQuote(b, a.Machine)
	b = append(b, " start="...)
	b = strconv.AppendInt(b, int64(a.Start), 10)
	b = append(b, " end="...)
	b = strconv.AppendInt(b, int64(a.End), 10)
	b = append(b, " cpu="...)
	b = strconv.AppendInt(b, int64(a.CPU), 10)
	b = append(b, " evicted="...)
	b = strconv.AppendBool(b, a.Evicted)
	if a.Preempted {
		b = append(b, " pre=true"...)
	}
	b = append(b, " fetch="...)
	b = scope.AppendQuote(b, encodeScopedErr(a.FetchError))
	b = append(b, " lost="...)
	b = scope.AppendQuote(b, encodeScopedErr(a.LostContact))
	b = append(b, " rep="...)
	b = scope.AppendQuote(b, a.Reported.EncodeString())
	b = append(b, " tru="...)
	b = scope.AppendQuote(b, a.True.EncodeString())
	return append(b, '\n')
}

func appendReport(b []byte, r *UserReport) []byte {
	b = append(b, "report job="...)
	b = strconv.AppendInt(b, int64(r.Job), 10)
	b = append(b, " disp="...)
	b = append(b, r.Disposition.String()...)
	b = append(b, " result="...)
	b = scope.AppendQuote(b, r.Result.EncodeString())
	b = append(b, " err="...)
	b = scope.AppendQuote(b, encodeScopedErr(r.Err))
	b = append(b, " leak="...)
	b = strconv.AppendBool(b, r.IncidentalLeak)
	return append(b, '\n')
}

func (s *Schedd) applySnapshot(data []byte) error {
	var cur *Job
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		kind, rest, _ := strings.Cut(line, " ")
		kv, err := scanKV(rest)
		if err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
		switch kind {
		case "schedd":
			if v, err := parseInt64(kv, "nextID"); err != nil {
				return err
			} else {
				s.nextID = JobID(v)
			}
			if v, err := parseInt64(kv, "requeues"); err != nil {
				return err
			} else {
				s.Requeues = int(v)
			}
			if v, err := parseInt64(kv, "recoveries"); err != nil {
				return err
			} else {
				s.Recoveries = int(v)
			}
		case "failure":
			m, err := unquoted(kv, "machine")
			if err != nil {
				return err
			}
			n, err := parseInt64(kv, "count")
			if err != nil {
				return err
			}
			rec := failureRecord{count: int(n)}
			if _, ok := kv["last"]; ok { // absent in pre-expiry logs
				last, err := parseInt64(kv, "last")
				if err != nil {
					return err
				}
				rec.last = sim.Time(last)
			}
			s.machineFailures[m] = rec
			s.avoidedDirty = true
		case "job":
			if cur, err = s.snapshotJob(kv); err != nil {
				return fmt.Errorf("line %d: %w", ln+1, err)
			}
		case "attempt":
			if cur == nil {
				return fmt.Errorf("line %d: attempt before job", ln+1)
			}
			if err := snapshotAttempt(cur, kv); err != nil {
				return fmt.Errorf("line %d: %w", ln+1, err)
			}
		case "report":
			if err := s.snapshotReport(kv); err != nil {
				return fmt.Errorf("line %d: %w", ln+1, err)
			}
		default:
			return fmt.Errorf("line %d: unknown snapshot line %q", ln+1, kind)
		}
	}
	return nil
}

func (s *Schedd) snapshotJob(kv map[string]string) (*Job, error) {
	id, err := parseInt64(kv, "id")
	if err != nil {
		return nil, err
	}
	if err := s.replaySubmit(JobID(id), 0, kv); err != nil {
		return nil, err
	}
	j := s.jobs[JobID(id)]
	st, err := parseJobState(kv["state"])
	if err != nil {
		return nil, err
	}
	s.setState(j, st)
	ckpt, err := parseInt64(kv, "ckpt")
	if err != nil {
		return nil, err
	}
	j.CheckpointCPU = durationNS(ckpt)
	if j.avoidanceRelaxed, err = parseBool(kv, "relaxed"); err != nil {
		return nil, err
	}
	sub, err := parseInt64(kv, "submitted")
	if err != nil {
		return nil, err
	}
	fin, err := parseInt64(kv, "finished")
	if err != nil {
		return nil, err
	}
	j.Submitted, j.Finished = sim.Time(sub), sim.Time(fin)
	fe, err := unquoted(kv, "finalerr")
	if err != nil {
		return nil, err
	}
	if j.FinalErr, err = decodeScopedErr(fe); err != nil {
		return nil, err
	}
	return j, nil
}

func snapshotAttempt(j *Job, kv map[string]string) error {
	var a Attempt
	var err error
	if a.Machine, err = unquoted(kv, "machine"); err != nil {
		return err
	}
	start, err := parseInt64(kv, "start")
	if err != nil {
		return err
	}
	end, err := parseInt64(kv, "end")
	if err != nil {
		return err
	}
	cpu, err := parseInt64(kv, "cpu")
	if err != nil {
		return err
	}
	a.Start, a.End, a.CPU = sim.Time(start), sim.Time(end), durationNS(cpu)
	if a.Evicted, err = parseBool(kv, "evicted"); err != nil {
		return err
	}
	if _, ok := kv["pre"]; ok { // absent in pre-preemption logs
		if a.Preempted, err = parseBool(kv, "pre"); err != nil {
			return err
		}
	}
	fetch, err := unquoted(kv, "fetch")
	if err != nil {
		return err
	}
	if a.FetchError, err = decodeScopedErr(fetch); err != nil {
		return err
	}
	lost, err := unquoted(kv, "lost")
	if err != nil {
		return err
	}
	if a.LostContact, err = decodeScopedErr(lost); err != nil {
		return err
	}
	rep, err := unquoted(kv, "rep")
	if err != nil {
		return err
	}
	if a.Reported, err = scope.DecodeResultString(rep); err != nil {
		return err
	}
	tru, err := unquoted(kv, "tru")
	if err != nil {
		return err
	}
	if a.True, err = scope.DecodeResultString(tru); err != nil {
		return err
	}
	j.Attempts = append(j.Attempts, a)
	return nil
}

func (s *Schedd) snapshotReport(kv map[string]string) error {
	var r UserReport
	job, err := parseInt64(kv, "job")
	if err != nil {
		return err
	}
	r.Job = JobID(job)
	if r.Disposition, err = parseDisposition(kv["disp"]); err != nil {
		return err
	}
	res, err := unquoted(kv, "result")
	if err != nil {
		return err
	}
	if r.Result, err = scope.DecodeResultString(res); err != nil {
		return err
	}
	enc, err := unquoted(kv, "err")
	if err != nil {
		return err
	}
	if r.Err, err = decodeScopedErr(enc); err != nil {
		return err
	}
	if r.IncidentalLeak, err = parseBool(kv, "leak"); err != nil {
		return err
	}
	s.Reports = append(s.Reports, r)
	return nil
}

// --- parsing helpers -------------------------------------------------

// scanKV splits one record line into key=value pairs.  Values are
// either bare tokens (numbers, names) or Go-quoted strings that may
// contain spaces, quotes, and newlines.
func scanKV(line string) (map[string]string, error) {
	kv := make(map[string]string)
	for i := 0; i < len(line); {
		if line[i] == ' ' {
			i++
			continue
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("no '=' in %q", line[i:])
		}
		key := line[i : i+eq]
		i += eq + 1
		var val string
		if i < len(line) && line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote for %q", key)
			}
			val = line[i : j+1]
			i = j + 1
		} else {
			end := strings.IndexByte(line[i:], ' ')
			if end < 0 {
				end = len(line) - i
			}
			val = line[i : i+end]
			i += end
		}
		kv[key] = val
	}
	return kv, nil
}

func unquoted(kv map[string]string, key string) (string, error) {
	raw, ok := kv[key]
	if !ok {
		return "", fmt.Errorf("missing field %q", key)
	}
	v, err := strconv.Unquote(raw)
	if err != nil {
		return "", fmt.Errorf("field %q: %w", key, err)
	}
	return v, nil
}

func parseInt64(kv map[string]string, key string) (int64, error) {
	raw, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("missing field %q", key)
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("field %q: %w", key, err)
	}
	return v, nil
}

func parseBool(kv map[string]string, key string) (bool, error) {
	raw, ok := kv[key]
	if !ok {
		return false, fmt.Errorf("missing field %q", key)
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("field %q: %w", key, err)
	}
	return v, nil
}

func durationNS(n int64) time.Duration { return time.Duration(n) }

func parseJobState(name string) (JobState, error) {
	for i, n := range jobStateNames {
		if n == name {
			return JobState(i), nil
		}
	}
	return 0, fmt.Errorf("unknown job state %q", name)
}

func parseDisposition(name string) (scope.Disposition, error) {
	for _, d := range []scope.Disposition{
		scope.DispositionComplete, scope.DispositionUnexecutable,
		scope.DispositionRequeue, scope.DispositionHold,
	} {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown disposition %q", name)
}
