package daemon

import (
	"fmt"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
)

// Administrative drain: the ops-plane verb that takes a machine out
// of service without losing its resident's work.
//
// The state machine is deliberately small.  Drain stops matching
// immediately (no ads, claims denied) and opens the same vacate grace
// window preemption uses: a window at least as long as the checkpoint
// ship time ends with a clean checkpointed handoff, a shorter one
// expires first and the resident forfeits progress back to its last
// periodic checkpoint (the drain-grace-expiry fault class).  When the
// resident is gone — vacated, finished naturally, or evicted by the
// owner — the machine parks as drained until Resume.
//
// Failure scope: Drain on a crashed machine escapes to the caller as
// a remote-resource error naming the machine; it never touches any
// other daemon.  The vacated job's attempt ends Evicted (not
// Preempted — no challenger took the claim) and requeues, scoped to
// the claim exactly like an owner eviction.

// Drain takes the machine out of matchmaking and vacates any resident
// job within the vacate grace window, then marks the machine drained.
// It is idempotent while a drain is in progress or complete.
func (s *Startd) Drain() error {
	if s.crashed {
		e := scope.New(scope.ScopeRemoteResource, "MachineDown",
			"cannot drain %s: the machine is down", s.cfg.Name)
		return e.WithOrigin(s.cfg.Name)
	}
	if s.draining || s.drained {
		return nil
	}
	s.draining = true
	s.Drains++
	s.tr.Count("startd.drains", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "draining",
			Detail: "admin drain: matching stopped; vacating resident"})
	}
	if s.pendingClaim != nil {
		// A challenger was waiting out a preemption grace window; the
		// drain turns it away — nothing new lands on this machine.
		s.bus.Send(s.cfg.Name, s.pendingClaim.Schedd, kindClaimReply,
			claimReplyMsg{Job: s.pendingClaim.Job, Granted: false,
				Reason: "machine is draining"})
		s.pendingClaim = nil
	}
	switch s.state {
	case StartdClaimed, StartdRunning:
		s.beginDrainVacate()
	default:
		// Unclaimed (nothing resident) or owner-held (the owner's
		// processes are not ours to vacate): drained immediately.
		s.finishDrain()
	}
	return nil
}

// Resume returns a draining or drained machine to service: matching
// restarts and, if idle, the machine re-advertises immediately.
func (s *Startd) Resume() {
	if s.crashed || (!s.draining && !s.drained) {
		return
	}
	s.draining = false
	s.drained = false
	// Retire any in-flight drain-vacate timer: the claim (if one is
	// still seated) keeps running as if the drain never happened.
	s.claimGen++
	if s.state == StartdClaimed || s.state == StartdRunning {
		s.vacating = false
		s.armLease()
	}
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Code: "resumed",
			Detail: "admin resume: machine returns to the pool"})
	}
	s.advertise()
}

// beginDrainVacate opens the drain's grace window over the resident
// claim, with the same clean/dirty arithmetic as a preemption vacate:
// shipping the final checkpoint costs StartupOverhead of machine
// time, so a grace window at least that long hands off cleanly.
func (s *Startd) beginDrainVacate() {
	s.vacating = true
	grace := s.params.vacateGrace()
	if s.vacateGraceOverride > 0 {
		grace = s.vacateGraceOverride
	}
	ship := s.params.StartupOverhead
	clean := grace >= ship
	delay := grace
	if clean {
		delay = ship
	}
	gen := s.claimGen
	s.bus.After(delay, func() { s.completeDrainVacate(gen, clean) })
}

// completeDrainVacate ends the resident's attempt at the close of the
// drain grace window.  The claimGen fence retires the timer if the
// claim already ended some other way (natural completion, eviction,
// lease expiry, Resume) — teardown finishes the drain in those cases.
func (s *Startd) completeDrainVacate(gen int, clean bool) {
	if s.crashed || gen != s.claimGen || !s.draining {
		return
	}
	s.Evictions++
	s.tr.Count("startd.evictions", 1)
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Job: int64(s.claimedJob), Code: "evicted",
			Detail: fmt.Sprintf("drained (clean checkpoint: %v)", clean)})
	}
	if s.starterObj != nil {
		// Synchronous, like Evict: the startd signals its own child.
		s.starterObj.drainVacate(clean)
		s.bus.Unregister(s.starter)
		s.starter = ""
		s.starterObj = nil
	} else if s.claimedJob != 0 && s.claimedBy != "" {
		// Claim granted but no starter yet: tell the submit side
		// directly so the job requeues now, not at the lease expiry.
		s.bus.Send(s.cfg.Name, s.claimedBy, kindClaimVacated, claimVacatedMsg{
			Job:     s.claimedJob,
			Machine: s.cfg.Name,
		})
	}
	s.state = StartdUnclaimed
	s.claimedBy = ""
	s.claimedJob = 0
	s.claimGen++
	s.vacating = false
	s.finishDrain()
}

// finishDrain parks the machine in the drained state.
func (s *Startd) finishDrain() {
	s.draining = false
	s.drained = true
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{T: int64(s.bus.Now()), Comp: s.cfg.Name,
			Kind: obs.KindState, Code: "drained",
			Detail: "machine idle and out of the pool until resume"})
	}
}

// Vacating reports whether the machine is inside a vacate grace
// window (preemption or drain).
func (s *Startd) Vacating() bool { return s.vacating }

// Draining reports whether an admin drain is in progress.
func (s *Startd) Draining() bool { return s.draining }

// Drained reports whether the machine is drained and parked.
func (s *Startd) Drained() bool { return s.drained }
