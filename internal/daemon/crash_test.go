package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
)

// TestMachineCrashMidJob crashes the execution machine while a job
// runs.  Nobody is told; the shadow's result timeout must discover
// the silence, widen it to remote-resource scope, and the schedd must
// requeue to another machine.
func TestMachineCrashMidJob(t *testing.T) {
	params := DefaultParams()
	params.ResultTimeout = 30 * time.Minute
	params.ChronicFailureThreshold = 1
	doomed := MachineConfig{Name: "doomed", Memory: 4096, AdvertiseJava: true}
	backup := MachineConfig{Name: "backup", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, mm, startds := testPool(t, params, doomed, backup)

	id := submitJavaJob(schedd, jvm.WellBehaved(20*time.Minute))
	// Crash the ranked-first machine 5 minutes into the run.
	eng.After(5*time.Minute, func() { startds[0].Crash() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 {
		t.Fatalf("attempts = %d", len(j.Attempts))
	}
	first := j.Attempts[0]
	if first.Machine != "doomed" || first.LostContact == nil {
		t.Fatalf("first attempt = %+v", first)
	}
	se, _ := scope.AsError(first.LostContact)
	if se == nil || se.Code != "StarterVanished" || se.Scope != scope.ScopeRemoteResource {
		t.Errorf("lost contact error = %v", first.LostContact)
	}
	if last := j.LastAttempt(); last.Machine != "backup" {
		t.Errorf("final attempt at %s", last.Machine)
	}
	// The crashed machine's ads expired at the matchmaker.
	if mm.AdsExpired == 0 {
		t.Error("expected expired machine ads")
	}
	// The user never saw the crash.
	if len(schedd.Reports) != 1 || schedd.Reports[0].IncidentalLeak {
		t.Errorf("reports = %+v", schedd.Reports)
	}
}

// TestClaimTimeout crashes a machine between the match notification
// and the claim; the schedd's claim timeout must return the job to
// idle rather than strand it.
func TestClaimTimeout(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 0
	doomed := MachineConfig{Name: "doomed", Memory: 4096, AdvertiseJava: true}
	backup := MachineConfig{Name: "backup", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, doomed, backup)

	// Crash the machine at the moment the first negotiation fires,
	// so the match notification is already on the wire but the claim
	// request will address a dead host.
	eng.After(params.NegotiationInterval+time.Millisecond, func() { startds[0].Crash() })

	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if j.LastAttempt().Machine != "backup" {
		t.Errorf("completed at %s", j.LastAttempt().Machine)
	}
	if schedd.ClaimsFailed == 0 {
		t.Error("expected a timed-out claim")
	}
}

// TestRestartAfterCrash returns a crashed machine to service.
func TestRestartAfterCrash(t *testing.T) {
	params := DefaultParams()
	params.ResultTimeout = 20 * time.Minute
	only := MachineConfig{Name: "only", Memory: 2048, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, only)

	id := submitJavaJob(schedd, jvm.WellBehaved(5*time.Minute))
	eng.After(2*time.Minute, func() { startds[0].Crash() })
	eng.After(2*time.Hour, func() { startds[0].Restart() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, attempts = %d", j.State, len(j.Attempts))
	}
	if startds[0].Crashed() {
		t.Error("machine should be up after restart")
	}
	if len(j.Attempts) < 2 {
		t.Errorf("attempts = %d", len(j.Attempts))
	}
}

// TestFetchRetriesEscalateToHold is the regression for the unbounded
// shadow fetch retry: a persistent submit-side outage under a hard
// mount used to spin forever.  With MaxFetchRetries set, the shadow
// escalates after its budget and the schedd parks the job on hold
// with the execution-environment error — not requeued, not spun.
func TestFetchRetriesEscalateToHold(t *testing.T) {
	params := DefaultParams()
	params.Mount.Kind = MountHard
	params.Mount.RetryInterval = 30 * time.Second
	params.MaxFetchRetries = 5
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))

	id := submitJavaJob(schedd, jvm.WellBehaved(5*time.Minute))
	// Take the submit file system down before the shadow's first
	// fetch and never bring it back.
	schedd.SubmitFS.SetOffline(true)
	runUntilDone(t, eng, schedd, 48*time.Hour)

	j := schedd.Job(id)
	if j.State != JobHeld {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	se, ok := scope.AsError(j.FinalErr)
	if !ok || se.Code != "FetchRetriesExhausted" {
		t.Fatalf("final error = %v", j.FinalErr)
	}
	if se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindEscaping {
		t.Errorf("escalated error = %+v", se)
	}
	if len(schedd.Reports) != 1 || schedd.Reports[0].Disposition != scope.DispositionHold {
		t.Errorf("reports = %+v", schedd.Reports)
	}
	// One attempt, one escalation: the job never bounced around the
	// pool repeating the same submit-side failure.
	if len(j.Attempts) != 1 {
		t.Errorf("attempts = %d", len(j.Attempts))
	}
}

// TestFetchRetryBackoff verifies the capped exponential backoff: a
// four-hour outage under a hard mount costs logarithmically many
// probes, where the old constant interval would have burned hundreds.
func TestFetchRetryBackoff(t *testing.T) {
	params := DefaultParams()
	params.Mount.Kind = MountHard
	params.Mount.RetryInterval = time.Minute
	params.ResultTimeout = 0 // isolate the fetch path
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))

	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	schedd.SubmitFS.SetOffline(true)
	eng.After(4*time.Hour, func() { schedd.SubmitFS.SetOffline(false) })

	runUntilDone(t, eng, schedd, 20*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	// Probes during the outage: 1m, 2m, 4m, ... capped at 64m.  A
	// 4h outage fits in well under 12 probes; the constant-interval
	// bug needed ~240.
	probes := int(schedd.SubmitFS.OpCount("read"))
	if probes > 12 {
		t.Errorf("submit FS probed %d times across a 4h outage; backoff is not engaging", probes)
	}
	if probes < 3 {
		t.Errorf("submit FS probed only %d times; retries are not happening", probes)
	}
}
