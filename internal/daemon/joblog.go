package daemon

import (
	"fmt"
	"strings"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/sim"
)

// EventKind labels one entry in a job's event log, in the spirit of
// the Condor user log.  The log is the user-facing trace of the
// schedd's decisions: it records *that* a site failed and was
// abandoned without burdening the user with detail they cannot act on
// — the scope is logged, the postmortem is not required.
type EventKind string

// Job event kinds.
const (
	EventSubmitted    EventKind = "submitted"
	EventMatched      EventKind = "matched"
	EventClaimDenied  EventKind = "claim-denied"
	EventClaimTimeout EventKind = "claim-timeout"
	EventExecuting    EventKind = "executing"
	EventFetchFailed  EventKind = "fetch-failed"
	EventLostContact  EventKind = "lost-contact"
	EventEvicted      EventKind = "evicted"
	EventPreempted    EventKind = "preempted"
	EventCheckpointed EventKind = "checkpointed"
	EventRequeued     EventKind = "requeued"
	// EventAvoidanceRelaxed records the schedd dropping the
	// chronic-failure constraint for a job that the constraint had
	// left unmatchable: a chronically failing machine is a better
	// bet than starvation.
	EventAvoidanceRelaxed EventKind = "avoidance-relaxed"
	// EventShadowVanished records a running job whose shadow died with
	// a crashed schedd: the attempt is closed with a local-resource
	// error and the job is requeued with no blame on the machine.
	EventShadowVanished EventKind = "shadow-vanished"
	// EventRecovered records a job rebuilt from the schedd's
	// write-ahead journal after a crash.
	EventRecovered EventKind = "recovered"
	// EventFlocked records a starved job leaving for a peer pool's
	// negotiator; EventFlockReturned records it coming home after the
	// peer order was exhausted or the remote advertisement was
	// invalidated.
	EventFlocked       EventKind = "flocked"
	EventFlockReturned EventKind = "flock-returned"
	EventCompleted     EventKind = "completed"
	EventUnexecutable  EventKind = "unexecutable"
	EventHeld          EventKind = "held"
)

// JobEvent is one entry of a job's event log.
type JobEvent struct {
	At     sim.Time
	Kind   EventKind
	Detail string
}

// String renders the event as one log line.
func (e JobEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("%-12s %s", e.At, e.Kind)
	}
	return fmt.Sprintf("%-12s %-13s %s", e.At, e.Kind, e.Detail)
}

// EventLog renders a job's whole event log.
func (j *Job) EventLog() string {
	var sb strings.Builder
	for _, e := range j.Events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// logEvent appends to the job's event log and mirrors the entry into
// the trace as a state event, so traces interleave the schedd's
// user-facing decisions with the error hops between them.
func (s *Schedd) logEvent(j *Job, kind EventKind, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	j.Events = append(j.Events, JobEvent{
		At:     s.bus.Now(),
		Kind:   kind,
		Detail: detail,
	})
	if s.tr.Enabled() {
		s.tr.Emit(obs.Event{
			T:      int64(s.bus.Now()),
			Comp:   s.name,
			Kind:   obs.KindState,
			Job:    int64(j.ID),
			Code:   string(kind),
			Detail: detail,
		})
	}
}
