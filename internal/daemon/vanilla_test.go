package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
)

// TestVanillaRunsOnBrokenJavaMachine: a Vanilla Universe job is an
// ordinary binary; the owner's broken Java installation is invisible
// to it.
func TestVanillaRunsOnBrokenJavaMachine(t *testing.T) {
	params := DefaultParams()
	broken := MachineConfig{Name: "broken", Memory: 2048, AdvertiseJava: true,
		JVM: jvm.Config{Broken: true}}
	eng, _, schedd, _, _ := testPool(t, params, broken)

	schedd.SubmitFS.WriteFile("/home/u/a.out", []byte("ELF bytes"))
	id := schedd.Submit(&Job{
		Owner:      "u",
		Universe:   "vanilla",
		Ad:         NewVanillaJobAd("u", 128),
		Program:    jvm.WellBehaved(10 * time.Minute),
		Executable: "/home/u/a.out",
	})
	runUntilDone(t, eng, schedd, 4*time.Hour)
	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) != 1 || j.Attempts[0].CPU != 10*time.Minute {
		t.Errorf("attempts = %+v", j.Attempts)
	}
	// The same machine fails a Java job immediately.
	jid := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 48*time.Hour)
	if schedd.Job(jid).State == JobCompleted {
		t.Error("java job must not complete on the broken installation")
	}
}

// TestVanillaStillSubjectToWiderScopes: vanilla escapes the virtual
// machine's failure modes, not the environment's — a corrupt image
// stays job scope, and program exceptions stay program results.
func TestVanillaScopesPreserved(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))
	schedd.SubmitFS.WriteFile("/home/u/a.out", []byte("bytes"))

	corrupt := schedd.Submit(&Job{
		Owner: "u", Universe: "vanilla", Ad: NewVanillaJobAd("u", 128),
		Program: jvm.CorruptImage(), Executable: "/home/u/a.out",
	})
	bug := schedd.Submit(&Job{
		Owner: "u", Universe: "vanilla", Ad: NewVanillaJobAd("u", 128),
		Program: jvm.NullPointer(), Executable: "/home/u/a.out",
	})
	runUntilDone(t, eng, schedd, 12*time.Hour)

	if j := schedd.Job(corrupt); j.State != JobUnexecutable {
		t.Errorf("corrupt vanilla image: %v", j.State)
	} else if scope.ScopeOf(j.FinalErr) != scope.ScopeJob {
		t.Errorf("scope = %v", scope.ScopeOf(j.FinalErr))
	}
	if j := schedd.Job(bug); j.State != JobCompleted {
		t.Errorf("vanilla program bug: %v", j.State)
	}
}

// TestMixedUniversePoolSoaksBlackHoles: with broken-Java machines in
// the pool, vanilla jobs use them productively while java jobs route
// around them.
func TestMixedUniversePool(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 1
	brokenA := MachineConfig{Name: "ba", Memory: 4096, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	good := MachineConfig{Name: "good", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, brokenA, good)
	schedd.SubmitFS.WriteFile("/home/u/a.out", []byte("bytes"))
	schedd.SubmitFS.WriteFile("/home/u/Main.class", []byte("bytes"))

	var vanilla, java []JobID
	for i := 0; i < 3; i++ {
		vanilla = append(vanilla, schedd.Submit(&Job{
			Owner: "u", Universe: "vanilla", Ad: NewVanillaJobAd("u", 128),
			Program: jvm.WellBehaved(10 * time.Minute), Executable: "/home/u/a.out",
		}))
		java = append(java, schedd.Submit(&Job{
			Owner: "u", Ad: NewJavaJobAd("u", 128),
			Program: jvm.WellBehaved(10 * time.Minute), Executable: "/home/u/Main.class",
		}))
	}
	runUntilDone(t, eng, schedd, 48*time.Hour)

	for _, id := range append(vanilla, java...) {
		if st := schedd.Job(id).State; st != JobCompleted {
			t.Errorf("job %d = %v", id, st)
		}
	}
	// The broken machine did real work (for vanilla jobs).
	if startds[0].JobsRun == 0 {
		t.Error("broken-java machine should have served vanilla jobs")
	}
	// And every java job finished on the good machine.
	for _, id := range java {
		if last := schedd.Job(id).LastAttempt(); last.Machine != "good" {
			t.Errorf("java job %d finished on %s", id, last.Machine)
		}
	}
}
