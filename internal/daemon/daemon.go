// Package daemon implements the Condor kernel of Figure 1 as actors
// on a deterministic discrete-event simulation: the matchmaker that
// collects ClassAds and notifies compatible parties, the schedd that
// owns the persistent job queue and the final disposition policy, the
// startd that enforces the machine owner's policy, and the per-job
// shadow and starter that cooperate to run one job.
//
// Every inter-daemon failure travels as a scoped error, and each
// daemon handles exactly the scopes it manages (Figure 3):
//
//	starter  — virtual-machine and remote-resource scope
//	shadow   — local-resource scope
//	schedd   — job scope, and program scope on behalf of the user
//
// The schedd's last line of defense is scope.Dispose: program scope
// completes, job scope is unexecutable, anything in between is logged
// and requeued for a new site.
package daemon

import (
	"time"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
)

// Mode selects the error-propagation discipline of the whole pool.
type Mode int

const (
	// ModeScoped is the corrected system of Section 4: the wrapper
	// writes result files, the I/O library escapes environmental
	// errors, and the schedd disposes by scope.
	ModeScoped Mode = iota
	// ModeNaive is the original system of Section 2.3: the starter
	// relies on the JVM exit code, the I/O library converts
	// everything into generic IOExceptions, and every termination
	// returns to the user as a program result.
	ModeNaive
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeNaive {
		return "naive"
	}
	return "scoped"
}

// MountPolicyKind selects how the shadow treats an unavailable
// submit-side file system (Section 5's hard/soft mount discussion).
type MountPolicyKind int

const (
	// MountSoft retries for SoftTimeout and then exposes the error.
	MountSoft MountPolicyKind = iota
	// MountHard retries forever, hiding the error and consuming the
	// claim — NFS "hard mount" behaviour.
	MountHard
	// MountPerJob takes the patience from the job ad's
	// OutageTolerance attribute (in seconds), falling back to
	// SoftTimeout: a single program chooses its own failure
	// criteria, the option NFS never offered.
	MountPerJob
)

// String returns the policy name.
func (k MountPolicyKind) String() string {
	switch k {
	case MountHard:
		return "hard"
	case MountPerJob:
		return "per-job"
	default:
		return "soft"
	}
}

// MountPolicy configures the shadow's response to local-resource
// outages.
type MountPolicy struct {
	Kind        MountPolicyKind
	SoftTimeout time.Duration
	// RetryInterval is the delay before the first fetch retry.  Each
	// further retry doubles the delay (capped), so a persistent
	// outage costs logarithmically many probes instead of hammering
	// the dead file server at a constant rate.
	RetryInterval time.Duration
	// MaxRetryInterval caps the exponential backoff; 0 selects
	// 64 × RetryInterval.
	MaxRetryInterval time.Duration
}

// DefaultMountPolicy is a soft mount with a five-minute patience.
func DefaultMountPolicy() MountPolicy {
	return MountPolicy{Kind: MountSoft, SoftTimeout: 5 * time.Minute, RetryInterval: 30 * time.Second}
}

// Params are the pool-wide protocol parameters.
type Params struct {
	// Mode is the error-propagation discipline.
	Mode Mode
	// NegotiationInterval is the matchmaker's cycle period.
	NegotiationInterval time.Duration
	// AdInterval is how often daemons refresh their ads.
	AdInterval time.Duration
	// StartupOverhead is the per-attempt cost of claiming, transfer,
	// and JVM start, charged before any program CPU.
	StartupOverhead time.Duration
	// MaxAttempts bounds requeues per job; a job that exhausts its
	// attempts is held with its last error.
	MaxAttempts int
	// Mount is the shadow's outage policy.
	Mount MountPolicy
	// ChronicFailureThreshold, when positive, enables the schedd's
	// complementary fix from Section 5: after this many consecutive
	// failures at one machine, the schedd declines further matches
	// to it.
	ChronicFailureThreshold int
	// ChronicRelaxAfter bounds how long chronic-failure avoidance
	// may starve a job: when a job has been idle at least this long
	// and the matchmaker reports *zero* compatible machines (not
	// merely none free) while the avoidance constraint is in force,
	// the schedd advertises the job without it.  Avoidance is a
	// preference, not a death sentence — when every machine in the
	// pool looks chronic, the job must still run (and, failing,
	// exhaust MaxAttempts and be held) rather than sit idle forever.
	// Zero disables relaxation.
	ChronicRelaxAfter time.Duration
	// ClaimTimeout bounds how long the schedd waits for a claim
	// reply before treating the silence as an error wider than the
	// network (Section 5: time distinguishes a refused connection
	// from a dead service).
	ClaimTimeout time.Duration
	// ResultTimeout bounds how long a shadow waits for a result
	// after shipping the job.  A starter silent past this point has
	// vanished: the network-scope silence is widened to
	// remote-resource scope and the job is requeued.
	ResultTimeout time.Duration
	// MachineAdLifetime is how long the matchmaker trusts a machine
	// ad without refresh; a crashed machine disappears from
	// matchmaking when its last ad expires.
	MachineAdLifetime time.Duration
	// JobAdLifetime is how long the matchmaker trusts a job ad
	// without refresh.  Live schedds refresh idle jobs every
	// AdInterval, so only a dead schedd's requests age out — the
	// matchmaker-side half of submit-side crash recovery.  Zero
	// selects the machine-ad default.
	JobAdLifetime time.Duration
	// LeaseInterval is how often a shadow renews the claim lease on
	// its job's execution machine.  Zero disables renewal (leases
	// then expire unconditionally if LeaseDuration is set).
	LeaseInterval time.Duration
	// LeaseDuration is how long a startd honours a claim without a
	// renewal before concluding the submit side has vanished: the
	// starter reports ShadowVanished, the job's CPU is released, and
	// the machine returns to the pool.  Zero disables claim leases —
	// an orphaned starter then runs to completion, the failure mode
	// this protocol exists to prevent.
	LeaseDuration time.Duration
	// RequeueBackoff spaces retries of a requeued job.
	RequeueBackoff time.Duration
	// MaxFetchRetries bounds the shadow's fetch retries within one
	// attempt.  A submit-side outage that survives this many probes
	// is no longer a transient: the shadow escalates and the schedd
	// holds the job with the escalated error instead of spinning
	// forever.  0 disables the bound (retry forever, the historic
	// hard-mount behaviour).
	MaxFetchRetries int
	// CheckpointInterval is how often a Standard Universe starter
	// ships a checkpoint to the shadow; 0 disables checkpointing.
	CheckpointInterval time.Duration
	// CheckpointOverhead is the wall-clock cost the execution machine
	// pays per checkpoint taken — time the program does not progress
	// while its state is written out.  Zero (the default) makes
	// checkpoints free, the historic behaviour; a positive overhead
	// creates the Garba tradeoff the checkpoint-sweep experiment
	// measures: short intervals waste time checkpointing, long ones
	// waste rework on eviction.
	CheckpointOverhead time.Duration
	// Preemption enables Rank-based preemption: the matchmaker may
	// match a job to a *claimed* machine when the newcomer's Rank
	// strictly beats the incumbent's, and the startd then vacates the
	// incumbent (shipping a final checkpoint within
	// VacateGracePeriod) and transfers the claim.  Off by default —
	// claimed machines never advertise and are invisible to
	// negotiation, the historic behaviour.
	Preemption bool
	// VacateGracePeriod is how long a preempted claim's incumbent has
	// to ship a final checkpoint before the claim transfers anyway.
	// When the grace window is too short for the checkpoint to ship,
	// the incumbent loses everything since its last periodic
	// checkpoint — the preempt-grace-expiry fault class.  Zero
	// selects 30s.
	VacateGracePeriod time.Duration
	// DisableMatchFastPath makes the matchmaker negotiate with the
	// uncompiled reference evaluator and no candidate index — the
	// original scheduler shape.  Same-seed runs must produce
	// identical traces either way; the determinism regression tests
	// compare the two.
	DisableMatchFastPath bool
	// Matchmaker names this pool's negotiator.  Empty selects the
	// historic single-pool name ("matchmaker"); a federation gives
	// each pool's negotiator a distinct name so N pools can share one
	// bus.
	Matchmaker string
	// Flockd names this pool's flock coordinator, the daemon a
	// starved schedd asks for a peer pool.  Empty disables flocking
	// even when FlockTo is set.
	Flockd string
	// FlockTo lists peer-pool negotiators in flocking order: a job
	// that starves at level k is offered to the first live negotiator
	// at index >= k.  Empty disables flocking.
	FlockTo []string
	// FlockAfter is how long a job must starve — idle with a standing
	// no-match — before the schedd asks the flock coordinator for a
	// peer pool.  Zero disables flocking.
	FlockAfter time.Duration
	// FlockPingInterval is how often the flock coordinator probes
	// peer negotiators for liveness; zero selects AdInterval.  A peer
	// silent for three intervals is considered dead and is skipped
	// when granting.
	FlockPingInterval time.Duration
	// DisableScheddFastPath makes the schedd run with the original
	// pre-throughput-work shape: O(queue) idle scans, O(queue)
	// AllTerminal, one journal append (and one fsync) per transition,
	// and a defensive ad copy per advertisement and claim.  Same-seed
	// runs must produce identical dispositions either way; the
	// pool-smoke gate and the determinism tests compare the two.
	DisableScheddFastPath bool
	// Trace receives structured error-propagation events and metrics
	// from every daemon (see package obs).  Nil disables tracing at
	// zero allocation cost on the hot paths.
	Trace obs.Tracer
}

// tracer resolves the configured tracer, substituting the no-op.
func (p Params) tracer() obs.Tracer { return obs.Or(p.Trace) }

// matchmaker resolves the home negotiator's actor name.
func (p Params) matchmaker() string {
	if p.Matchmaker != "" {
		return p.Matchmaker
	}
	return MatchmakerName
}

// flocking reports whether the flock state machine is configured at
// all; with it off the schedd sends no flock traffic and arms no
// flock timers, so single-pool runs are byte-identical to history.
func (p Params) flocking() bool {
	return p.Flockd != "" && p.FlockAfter > 0 && len(p.FlockTo) > 0
}

// flockPingInterval resolves the coordinator's probe period.
func (p Params) flockPingInterval() time.Duration {
	if p.FlockPingInterval > 0 {
		return p.FlockPingInterval
	}
	return p.AdInterval
}

// vacateGrace resolves the preemption grace window.
func (p Params) vacateGrace() time.Duration {
	if p.VacateGracePeriod > 0 {
		return p.VacateGracePeriod
	}
	return 30 * time.Second
}

// DefaultParams returns the parameters used throughout the paper's
// experiments.
func DefaultParams() Params {
	return Params{
		Mode:                ModeScoped,
		NegotiationInterval: 60 * time.Second,
		AdInterval:          60 * time.Second,
		StartupOverhead:     2 * time.Second,
		MaxAttempts:         20,
		Mount:               DefaultMountPolicy(),
		ChronicRelaxAfter:   2 * time.Hour,
		ClaimTimeout:        2 * time.Minute,
		ResultTimeout:       12 * time.Hour,
		MachineAdLifetime:   150 * time.Second,
		JobAdLifetime:       150 * time.Second,
		LeaseInterval:       2 * time.Minute,
		LeaseDuration:       5 * time.Minute,
		RequeueBackoff:      10 * time.Second,
		CheckpointInterval:  10 * time.Minute,
		// Generous enough that no sane outage hits it (with backoff,
		// a thousand probes spans weeks of virtual time), but finite:
		// "forever" is never the default.
		MaxFetchRetries: 1000,
	}
}

// Well-known actor names.
const (
	MatchmakerName = "matchmaker"
)

// holdErr builds the error recorded when a job exhausts MaxAttempts.
func holdErr(last error) error {
	return scope.Escape(scope.ScopePool, "AttemptsExhausted", last)
}

// errorEvent builds the trace event for a scoped error observed at a
// component.  Only call it behind Tracer.Enabled: the detail string
// allocates.
func errorEvent(t int64, comp string, job JobID, err error) obs.Event {
	ev := obs.Event{T: t, Comp: comp, Kind: obs.KindError, Job: int64(job)}
	if se, ok := scope.AsError(err); ok {
		ev.Code = se.Code
		ev.Scope = se.Scope.String()
		ev.EKind = se.Kind.String()
		ev.Detail = se.Error()
	} else if err != nil {
		ev.Code = "unscoped"
		ev.Detail = err.Error()
	}
	return ev
}
