package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/sim"
)

// submitRanked submits a Standard Universe job whose Rank is the given
// constant expression, so tests can order jobs against each other
// independent of machine attributes.
func submitRanked(s *Schedd, d time.Duration, rank string) JobID {
	ad := NewStandardJobAd("u", 128)
	ad.MustSetExpr("Rank", rank)
	s.SubmitFS.WriteFile("/home/u/a.out", []byte("relinked binary"))
	return s.Submit(&Job{
		Owner:      "u",
		Universe:   "standard",
		Ad:         ad,
		Program:    jvm.WellBehaved(d),
		Executable: "/home/u/a.out",
	})
}

// TestRankPreemptionTransfersClaim: a higher-Rank job arrives while a
// lower-Rank job holds the pool's only machine.  The incumbent is
// vacated within the grace window — shipping a final checkpoint — the
// claim transfers without ever being released, and the preempted job
// escapes as a remote-resource error scoped to the claim: it requeues,
// resumes from its checkpoint, and completes with no blame anywhere.
func TestRankPreemptionTransfersClaim(t *testing.T) {
	params := DefaultParams()
	params.Preemption = true
	params.CheckpointInterval = 10 * time.Minute
	only := MachineConfig{Name: "only", Memory: 4096, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, only)

	low := submitRanked(schedd, 2*time.Hour, "1")
	var high JobID
	eng.After(45*time.Minute, func() {
		high = submitRanked(schedd, 30*time.Minute, "2")
	})
	runUntilDone(t, eng, schedd, 24*time.Hour)

	hj := schedd.Job(high)
	if hj.State != JobCompleted {
		t.Fatalf("challenger state = %v, err = %v", hj.State, hj.FinalErr)
	}
	if len(hj.Attempts) != 1 {
		t.Errorf("challenger attempts = %d, want 1 (it preempted, it never waited)", len(hj.Attempts))
	}
	lj := schedd.Job(low)
	if lj.State != JobCompleted {
		t.Fatalf("incumbent state = %v, err = %v", lj.State, lj.FinalErr)
	}
	if len(lj.Attempts) != 2 {
		t.Fatalf("incumbent attempts = %d, want 2", len(lj.Attempts))
	}
	first := lj.Attempts[0]
	if !first.Evicted || !first.Preempted {
		t.Errorf("first attempt evicted=%v preempted=%v, want true/true", first.Evicted, first.Preempted)
	}
	if startds[0].Preemptions != 1 {
		t.Errorf("preemptions = %d", startds[0].Preemptions)
	}
	// The clean vacate shipped a final checkpoint at ~45 min, so the
	// resumed attempt runs only the remainder of the 2h job.
	resumed := lj.LastAttempt().CPU
	if resumed > 80*time.Minute || resumed < 70*time.Minute {
		t.Errorf("resumed attempt ran %v, want ~75m", resumed)
	}
	if !containsSeq(eventKinds(lj), EventSubmitted, EventPreempted, EventCompleted) {
		t.Errorf("incumbent events = %v", eventKinds(lj))
	}
	// Preemption is policy, not failure: no blame on the machine.
	if schedd.FailureCount("only") != 0 {
		t.Errorf("preemption blamed the machine: %d", schedd.FailureCount("only"))
	}
}

// TestPreemptionOffIsInert: with Params.Preemption false (the
// default), a higher-Rank challenger waits its turn — the historic
// behavior every pre-preemption trace pins.
func TestPreemptionOffIsInert(t *testing.T) {
	params := DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	only := MachineConfig{Name: "only", Memory: 4096, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, only)

	low := submitRanked(schedd, 2*time.Hour, "1")
	var high JobID
	eng.After(45*time.Minute, func() {
		high = submitRanked(schedd, 30*time.Minute, "2")
	})
	runUntilDone(t, eng, schedd, 24*time.Hour)

	if startds[0].Preemptions != 0 {
		t.Errorf("preemptions = %d with Preemption off", startds[0].Preemptions)
	}
	lj := schedd.Job(low)
	if lj.State != JobCompleted || len(lj.Attempts) != 1 {
		t.Fatalf("incumbent state = %v attempts = %d, want one uninterrupted run",
			lj.State, len(lj.Attempts))
	}
	hj := schedd.Job(high)
	if hj.State != JobCompleted {
		t.Fatalf("challenger state = %v", hj.State)
	}
	// The challenger started only after the incumbent's 2h finished.
	if hj.LastAttempt().Start < lj.Finished {
		t.Errorf("challenger started %v, before the incumbent finished at %v",
			hj.LastAttempt().Start, lj.Finished)
	}
}

// TestPreemptGraceExpiryForfeitsToCheckpoint: a vacate window too
// short to ship the final checkpoint forfeits the progress since the
// last periodic one — rework is bounded by the checkpoint interval,
// never the whole attempt.
func TestPreemptGraceExpiryForfeitsToCheckpoint(t *testing.T) {
	params := DefaultParams()
	params.Preemption = true
	params.CheckpointInterval = 10 * time.Minute
	only := MachineConfig{Name: "only", Memory: 4096, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, only)
	startds[0].SetVacateGrace(time.Millisecond) // expires before the ~2s ship

	low := submitRanked(schedd, 2*time.Hour, "1")
	eng.After(45*time.Minute, func() {
		submitRanked(schedd, 30*time.Minute, "2")
	})
	runUntilDone(t, eng, schedd, 24*time.Hour)

	lj := schedd.Job(low)
	if lj.State != JobCompleted || len(lj.Attempts) != 2 {
		t.Fatalf("incumbent state = %v attempts = %d", lj.State, len(lj.Attempts))
	}
	// The final checkpoint was forfeited; the resume falls back to the
	// last periodic commit (40 min), not the vacate instant (45 min).
	resumed := lj.LastAttempt().CPU
	if resumed < 78*time.Minute || resumed > 85*time.Minute {
		t.Errorf("resumed attempt ran %v, want ~80m (periodic checkpoint, not final)", resumed)
	}
	if startds[0].Preemptions != 1 {
		t.Errorf("preemptions = %d", startds[0].Preemptions)
	}
}

// TestCheckpointDurableAcrossScheddCrash: periodic checkpoints are
// journaled through the schedd's WAL, so a schedd crash loses neither
// the queue nor the progress — the rebuilt job resumes from its last
// committed checkpoint on whatever machine matches next.
func TestCheckpointDurableAcrossScheddCrash(t *testing.T) {
	params := DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	first := MachineConfig{Name: "first", Memory: 4096, AdvertiseJava: true}
	second := MachineConfig{Name: "second", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, _ := testPool(t, params, first, second)

	id := submitStandard(schedd, 90*time.Minute)
	eng.After(35*time.Minute, func() { schedd.Crash() })
	eng.After(40*time.Minute, func() {
		if err := schedd.Recover(nil); err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	// Three checkpoints (10, 20, 30 min) were committed and journaled
	// before the crash; the replayed queue must still hold them.
	if j.CheckpointCPU < 30*time.Minute {
		t.Errorf("checkpoint after recovery = %v, want >= 30m", j.CheckpointCPU)
	}
	last := j.LastAttempt()
	if last.CPU > 65*time.Minute {
		t.Errorf("resume ran %v of a 90m job — the crash lost the journaled checkpoints", last.CPU)
	}
	// The event log died with the process (replay rebuilds state, not
	// telemetry): the rebuilt log opens with the recovery, and the
	// resumed attempt commits fresh checkpoints.
	if !containsSeq(eventKinds(j), EventRecovered, EventCheckpointed, EventCompleted) {
		t.Errorf("events = %v", eventKinds(j))
	}
}

// TestCorruptCheckpointFallsBack: a checkpoint damaged in transit is
// rejected by the shadow's CRC check — a network-scope error that
// invalidates the record, not the job — and an eviction then resumes
// from the last intact commit.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	params := DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	first := MachineConfig{Name: "first", Memory: 4096, AdvertiseJava: true}
	second := MachineConfig{Name: "second", Memory: 1024, AdvertiseJava: true}
	eng, bus, schedd, _, startds := testPool(t, params, first, second)

	id := submitStandard(schedd, 2*time.Hour)
	// Damage every periodic checkpoint sent after t=25m: the 30m and
	// 40m commits are rejected by the shadow's CRC check.
	var damage bool
	eng.After(25*time.Minute, func() { damage = true })
	bus.SetFaultFunc(func(m sim.Message) sim.Fault {
		if damage && m.Kind == kindCheckpoint {
			return sim.Fault{Mutate: func(body any) any { return CorruptCheckpoint(body, 9) }}
		}
		return sim.Fault{}
	})
	eng.After(45*time.Minute, func() { startds[0].Evict() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	// Eviction ships a final (intact, machine-local) checkpoint at
	// 45m; only the in-transit periodic records were damaged, so the
	// job still resumes from 45m.  What the corrupt records must NOT
	// do is poison the committed state: CheckpointCPU advances
	// monotonically through valid records only.
	if j.CheckpointCPU < 40*time.Minute {
		t.Errorf("checkpoint = %v", j.CheckpointCPU)
	}
}
