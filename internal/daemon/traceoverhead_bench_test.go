package daemon_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/sim"
)

// The tracing layer's hot-path contract: with tracing off (nil) or
// explicitly no-op, the instrumented matchmaker and shadow cost the
// same as before the instrumentation existed.  The matchmaker's
// steady-state cycle in particular must stay at zero allocations —
// the fast-path claim BENCH_matchmaker.json records.

// traceArms enumerates the tracer configurations under test.
func traceArms() []struct {
	name string
	mk   func() obs.Tracer
} {
	return []struct {
		name string
		mk   func() obs.Tracer
	}{
		{"off", func() obs.Tracer { return nil }},
		{"nop", func() obs.Tracer { return obs.Nop }},
		{"recorder", func() obs.Tracer { return obs.NewRecorder() }},
	}
}

// steadyMatchmaker builds a matchmaker holding an unsatisfiable queue,
// the zero-allocation steady state of the negotiation fast path.
func steadyMatchmaker(tr obs.Tracer) *daemon.Matchmaker {
	eng := sim.New(1)
	bus := sim.NewBus(eng, 0)
	params := daemon.DefaultParams()
	params.NegotiationInterval = 1000 * time.Hour
	params.MachineAdLifetime = 10000 * time.Hour
	params.Trace = tr
	m := daemon.NewMatchmaker(bus, params)
	bus.Register("schedd", sim.ActorFunc(func(sim.Message) {}))
	for i := 0; i < 64; i++ {
		ad := classad.NewAd()
		ad.SetString("Machine", fmt.Sprintf("m%02d", i))
		ad.SetString("Arch", "X86_64")
		ad.SetString("OpSys", "LINUX")
		ad.SetInt("Memory", 512)
		ad.SetBool("HasJava", true)
		ad.SetString("State", "Unclaimed")
		ad.Precompile()
		m.AdvertiseMachine(fmt.Sprintf("m%02d", i), ad)
	}
	// Requirements no machine can meet: every cycle walks the queue
	// without matching.
	for i := 0; i < 64; i++ {
		m.AdvertiseJob("schedd", daemon.JobID(i+1),
			daemon.NewJavaJobAd(fmt.Sprintf("u%d", i%4), 1<<40))
	}
	m.Negotiate() // warm the scratch slices
	return m
}

// shadowRetryPool runs one simulated submit-side outage: a hard mount
// forces the shadow through ~16 paced fetch retries before the file
// system returns and the job completes.
func shadowRetryPool(tr obs.Tracer) bool {
	params := daemon.DefaultParams()
	params.Mount.Kind = daemon.MountHard
	params.Mount.RetryInterval = 30 * time.Second
	params.Mount.MaxRetryInterval = 30 * time.Second
	params.Trace = tr
	p := pool.New(pool.Config{Seed: 1, Params: params,
		Machines: []daemon.MachineConfig{{Name: "m", AdvertiseJava: true}}})
	p.Schedd.SubmitFS.SetOffline(true)
	p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Engine.After(8*time.Minute+30*time.Second, func() {
		p.Schedd.SubmitFS.SetOffline(false)
	})
	p.Run(2 * time.Hour)
	return p.AllTerminal()
}

// BenchmarkTraceOverhead measures both instrumented hot paths under
// every tracer arm; compare the off and nop rows to see the cost of
// the instrumentation itself.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, arm := range traceArms() {
		arm := arm
		b.Run("matchmaker/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			m := steadyMatchmaker(arm.mk())
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				m.Negotiate()
			}
			b.StopTimer()
			if m.MatchesMade != 0 {
				b.Fatal("steady state matched")
			}
		})
	}
	for _, arm := range traceArms() {
		arm := arm
		b.Run("shadow/"+arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				if !shadowRetryPool(arm.mk()) {
					b.Fatal("job did not finish")
				}
			}
		})
	}
}

// TestNopTracerZeroAllocDelta pins the acceptance claim directly: the
// matchmaker's steady cycle allocates nothing with tracing off, and
// the no-op tracer adds no allocations over off.
func TestNopTracerZeroAllocDelta(t *testing.T) {
	measure := func(tr obs.Tracer) float64 {
		m := steadyMatchmaker(tr)
		return testing.AllocsPerRun(200, func() { m.Negotiate() })
	}
	off := measure(nil)
	nop := measure(obs.Nop)
	if off != 0 {
		t.Errorf("steady cycle with tracing off: %v allocs/op, want 0", off)
	}
	if nop != 0 {
		t.Errorf("steady cycle with Nop tracer: %v allocs/op, want 0 (delta over off must be 0)", nop)
	}
}
