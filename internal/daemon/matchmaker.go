package daemon

import (
	"slices"
	"strings"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/sim"
)

// Matchmaker collects ClassAds from all participants and notifies
// schedds and startds of compatible partners.  Matched processes are
// then individually responsible for claiming one another — the
// matchmaker's word is advisory, exactly as in Condor.
//
// The negotiation fast path keeps every per-cycle structure
// incremental: machines live in a name-sorted list and an
// attribute-value index maintained on advertise/expire; jobs live in
// per-owner buckets kept in submission order at insert time; jobs
// with byte-identical ads share one auto-cluster, whose candidate
// scan runs once per cycle no matter how many jobs ride it.  A
// steady-state cycle (nothing matchable) allocates nothing.
type Matchmaker struct {
	bus    Runtime
	params Params
	name   string
	tr     obs.Tracer

	machines     map[string]*machineEntry
	machineNames []string  // sorted; the deterministic scan order
	index        attrIndex // constant-attribute value index
	// absentMachines counts expired entries still occupying the map,
	// the name list, and the index; when they reach half the map the
	// structures are rebuilt in one pass (see machineEntry.absent).
	absentMachines int

	jobs        map[jobKey]*jobEntry
	ownerQueues map[string][]*jobEntry // per owner, sorted by (schedd, job)
	ownerNames  []string               // owners with non-empty queues, name-sorted
	// deadJobs counts tombstoned queue slots awaiting the per-cycle
	// compaction (see jobEntry.dead).
	deadJobs int
	// foreignJobs counts live flocked-in requests; when zero, the
	// hierarchical partition of the cycle's job list is skipped
	// entirely and a single-pool cycle is byte-identical to history.
	foreignJobs int
	// foreignScratch is reused by the per-cycle hierarchical
	// partition.
	foreignScratch []*jobEntry

	// clusters caches per-cycle candidate scans keyed by job-ad
	// signature: jobs whose ads render identically are
	// interchangeable to matchmaking, so the pool is ranked once per
	// cluster per cycle instead of once per job (auto-clustering).
	clusters map[string]*clusterEntry

	// usage counts matches handed to each owner, the basis of the
	// fair-share ordering.
	usage map[string]int

	// Scratch storage reused across cycles.
	ownerScratch []string
	jobScratch   []*jobEntry
	candScratch  []*machineEntry
	nameScratch  []string

	// Cycles counts negotiation cycles, for metrics.
	Cycles int
	// MatchesMade counts notifications sent.
	MatchesMade int
	// AdsExpired counts machine ads dropped for silence.
	AdsExpired int
	// JobAdsExpired counts job requests dropped for silence: a live
	// schedd refreshes its idle jobs every AdInterval, so these are
	// the requests of a dead schedd aging out of the pool.
	JobAdsExpired int
	// PrefilterSkips counts candidates rejected by the constant
	// pre-filter without full Requirements evaluation, counted once
	// per cluster scan (not once per job sharing the cluster).
	PrefilterSkips int
	// ClusterScans counts auto-cluster candidate scans: the number of
	// times a cycle actually ranked the pool.  Jobs minus scans is
	// the work auto-clustering saved.
	ClusterScans int
	// NoMatches counts no-match notifications sent for jobs
	// compatible with zero advertised machines.
	NoMatches int
	// ForeignMatches counts matches handed to flocked-in jobs — work
	// this pool did for its peers.
	ForeignMatches int
}

type machineEntry struct {
	name    string
	ad      *classad.Ad
	table   *classad.AttrTable // snapshot backing the index entries
	matched bool               // provisionally handed out this cycle
	expires sim.Time           // ad lifetime; a silent machine vanishes
	// claimed marks a machine advertising in the Claimed state —
	// visible only under preemption, and only to jobs whose Rank
	// strictly beats curRank, the incumbent's Rank the startd put in
	// the ad.  Extracted once at upsert so the per-cycle scans pay a
	// field read, not an attribute evaluation.
	claimed bool
	curRank float64
	// absent marks an expired machine.  The entry stays in the sorted
	// name list and the attribute index — scans skip it — because a
	// machine that goes quiet while running a job re-advertises on
	// completion, and physically removing and re-inserting it in every
	// 10k-entry sorted bucket is O(pool) memmove per transition.  When
	// absents reach half the map, one O(pool) rebuild reclaims them
	// all, so removal is O(1) amortized and occupancy stays within 2x
	// of the live pool.
	absent bool
}

type jobKey struct {
	schedd string
	job    JobID
}

type jobEntry struct {
	key   jobKey
	ad    *classad.Ad
	owner string
	pre   []classad.Constraint // constant conjuncts of the job's Requirements
	// noMatchSent limits no-match notifications to one per
	// advertisement, keeping a steady-state cycle allocation-free;
	// each schedd re-advertise re-arms it.
	noMatchSent bool
	// expires is the request's lifetime; a schedd that stops
	// refreshing (it crashed) has its requests age out rather than
	// matching machines to a submitter that no longer exists.
	expires sim.Time
	// sig is the rendered ad, the auto-cluster key.  Computed lazily
	// on the first fast-path cycle and invalidated when the ad
	// content changes, so the reference path never pays for it.
	sig string
	// dead marks a withdrawn request still occupying its slot in the
	// owner queue.  Removal tombstones instead of deleting because a
	// single-owner workload keeps thousands of jobs in one sorted
	// queue, and eager slices.Delete is O(queue) memmove per match;
	// the negotiation cycle compacts every queue once before using it,
	// so scans never observe a tombstone.
	dead bool
	// foreign marks a flocked-in request from a peer pool's schedd.
	// Hierarchical negotiation serves these strictly after the home
	// pool's own jobs: a pool shares its idle machines, never its
	// users' priority.
	foreign bool
}

// clusterEntry caches one auto-cluster's candidate scan for the
// current negotiation cycle.  Jobs whose ads render to the same
// signature see the same candidates, the same Requirements verdicts,
// and the same Rank values, so the cycle evaluates the pool once per
// cluster and hands successive members successive machines from the
// ranked list — HTCondor's auto-clustering.  The pick sequence is
// exactly the per-job scan's: the scan keeps the first candidate, in
// name order, attaining the maximum rank, which is the head of a
// stable rank-descending sort; marking it matched makes the next
// list element the next job's pick.
type clusterEntry struct {
	cycle      int  // negotiation cycle the scan below belongs to
	next       int  // first ranked entry not yet known-matched
	compatible bool // some advertised machine, matched or not, satisfies the ad
	ranked     []rankedCandidate
}

type rankedCandidate struct {
	entry *machineEntry
	rank  float64
}

// machineClaimState reads the advertised claim state: whether the
// machine is claimed and, if so, the incumbent's Rank.  Historically
// only unclaimed machines advertised, so entries without the
// attributes are simply unclaimed.
func machineClaimState(ad *classad.Ad) (bool, float64) {
	st, _ := ad.EvalAttr("State", nil).StringValue()
	if st != "Claimed" {
		return false, 0
	}
	r, _ := ad.EvalAttr("CurrentRank", nil).RealValue()
	return true, r
}

// preemptable reports whether a job offering rank r may take a
// machine: an unclaimed machine always, a claimed one only under
// preemption and only by strictly outranking the incumbent.
func (m *Matchmaker) preemptable(e *machineEntry, r float64) bool {
	if !e.claimed {
		return true
	}
	return m.params.Preemption && r > e.curRank
}

// jobOwner extracts the requesting user from the job ad, falling back
// to the schedd name so anonymous requests still get a fair-share
// bucket.  Evaluated once at advertise time.
func jobOwner(key jobKey, ad *classad.Ad) string {
	if v := ad.EvalAttr("Owner", nil); v.Type() == classad.StringType {
		s, _ := v.StringValue()
		return s
	}
	return key.schedd
}

// NewMatchmaker creates and registers the matchmaker on the bus and
// starts its negotiation cycle.
func NewMatchmaker(bus Runtime, params Params) *Matchmaker {
	name := params.matchmaker()
	bus = affinity(bus, name)
	m := &Matchmaker{
		bus:         bus,
		params:      params,
		name:        name,
		tr:          params.tracer(),
		machines:    make(map[string]*machineEntry),
		index:       newAttrIndex(),
		jobs:        make(map[jobKey]*jobEntry),
		ownerQueues: make(map[string][]*jobEntry),
		clusters:    make(map[string]*clusterEntry),
		usage:       make(map[string]int),
	}
	bus.Register(name, m)
	bus.Every(params.NegotiationInterval, m.negotiate)
	return m
}

// Name returns the negotiator's actor name.
func (m *Matchmaker) Name() string { return m.name }

// Receive implements sim.Actor.
func (m *Matchmaker) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case advertiseMsg:
		m.receiveAd(body)
	case flockPingMsg:
		// A peer pool's flock coordinator probes for liveness; answer
		// by name so a partitioned negotiator goes silent rather than
		// wrong.
		m.bus.Send(m.name, msg.From, kindFlockPong,
			flockPongMsg{From: m.name, Seq: body.Seq})
	}
}

func (m *Matchmaker) receiveAd(ad advertiseMsg) {
	switch ad.Kind {
	case "machine":
		lifetime := m.params.MachineAdLifetime
		if lifetime <= 0 {
			lifetime = 150 * time.Second
		}
		m.upsertMachine(ad.Name, ad.Ad, m.bus.Now().Add(lifetime))
	case "job":
		key := jobKey{schedd: ad.Schedd, job: ad.Job}
		if ad.Ad == nil {
			m.removeJob(key) // schedd withdraws the request
			return
		}
		m.upsertJob(key, ad.Ad, ad.Flocked)
	}
}

// upsertMachine installs or refreshes a machine ad, keeping the
// sorted name list and the attribute index current.  A re-advertise
// clears the provisional matched flag: the machine is visible again.
func (m *Matchmaker) upsertMachine(name string, ad *classad.Ad, expires sim.Time) {
	if entry, ok := m.machines[name]; ok {
		entry.expires = expires
		entry.matched = false
		if entry.absent {
			// An expired machine came back before its slot was
			// reclaimed: revive in place, no list or index motion.
			entry.absent = false
			m.absentMachines--
		}
		if entry.ad == ad {
			// The startd re-sent the identical ad object (they cache
			// theirs per state); nothing to re-index.
			return
		}
		ad.Precompile()
		m.index.remove(entry)
		entry.ad = ad
		entry.table = ad.Table()
		entry.claimed, entry.curRank = machineClaimState(ad)
		m.index.add(entry)
		return
	}
	ad.Precompile()
	table := ad.Table()
	entry := &machineEntry{name: name, ad: ad, table: table, expires: expires}
	entry.claimed, entry.curRank = machineClaimState(ad)
	m.machines[name] = entry
	pos, _ := slices.BinarySearch(m.machineNames, name)
	m.machineNames = slices.Insert(m.machineNames, pos, name)
	m.index.add(entry)
}

// removeMachine drops a machine: the entry is tombstoned where it
// stands and the map, sorted list, and index are rebuilt in one pass
// once tombstones reach half the map.  Scans skip absent entries, so
// the machine is invisible immediately; only the memory lingers.
func (m *Matchmaker) removeMachine(name string) {
	entry, ok := m.machines[name]
	if !ok || entry.absent {
		return
	}
	entry.absent = true
	m.absentMachines++
	if 2*m.absentMachines >= len(m.machines) {
		m.compactMachines()
	}
}

// compactMachines reclaims every absent entry: the name list is
// filtered in place and the attribute index rebuilt from the surviving
// entries.  Adding machines in name order appends at the tail of every
// bucket, so the rebuild is linear in surviving index entries.
func (m *Matchmaker) compactMachines() {
	kept := m.machineNames[:0]
	for _, name := range m.machineNames {
		e := m.machines[name]
		if e.absent {
			delete(m.machines, name)
			continue
		}
		kept = append(kept, name)
	}
	for i := len(kept); i < cap(kept) && i < len(m.machineNames); i++ {
		m.machineNames[i] = ""
	}
	m.machineNames = kept
	m.index = newAttrIndex()
	for _, name := range kept {
		m.index.add(m.machines[name])
	}
	m.absentMachines = 0
}

// compareJobEntries orders jobs within an owner bucket by submission
// identity.
func compareJobEntries(a, b *jobEntry) int {
	if c := strings.Compare(a.key.schedd, b.key.schedd); c != 0 {
		return c
	}
	switch {
	case a.key.job < b.key.job:
		return -1
	case a.key.job > b.key.job:
		return 1
	}
	return 0
}

// upsertJob installs or refreshes a job request in its owner bucket.
// Jobs are always the self side of a match, so only their compiled
// Requirements and pre-filter are needed — no attribute table.
func (m *Matchmaker) upsertJob(key jobKey, ad *classad.Ad, foreign bool) {
	expires := m.bus.Now().Add(m.jobAdLifetime())
	if old, ok := m.jobs[key]; ok {
		if old.ad == ad {
			// The schedd re-sent the identical ad object (periodic
			// refresh of an unchanged idle job); the compiled caches
			// and pre-filter are still good.
			old.noMatchSent = false
			old.expires = expires
			return
		}
		// Refresh in place; owner may change if the ad changed.
		if newOwner := jobOwner(key, ad); newOwner != old.owner {
			m.removeJob(key)
		} else {
			old.ad = ad
			old.pre = classad.RequirementsPrefilter(ad)
			old.sig = "" // content changed: re-cluster lazily
			old.noMatchSent = false
			old.expires = expires
			return
		}
	}
	j := &jobEntry{key: key, ad: ad, owner: jobOwner(key, ad),
		pre: classad.RequirementsPrefilter(ad), expires: expires, foreign: foreign}
	if foreign {
		m.foreignJobs++
	}
	m.jobs[key] = j
	q := m.ownerQueues[j.owner]
	if len(q) == 0 {
		pos, _ := slices.BinarySearch(m.ownerNames, j.owner)
		m.ownerNames = slices.Insert(m.ownerNames, pos, j.owner)
	}
	pos, found := slices.BinarySearchFunc(q, j, compareJobEntries)
	if found && q[pos].dead {
		// The same job was withdrawn and re-advertised within one
		// cycle (failed claim); its tombstone sits exactly where the
		// new entry sorts, so revive the slot instead of shifting the
		// queue.  A live entry can never be found here — it would have
		// matched in m.jobs above.
		q[pos] = j
		m.deadJobs--
		return
	}
	m.ownerQueues[j.owner] = slices.Insert(q, pos, j)
}

// removeJob withdraws a job request.  The entry is tombstoned in its
// queue slot — scans skip it, and the next cycle's compaction reclaims
// it along with any owner bucket it leaves empty.
func (m *Matchmaker) removeJob(key jobKey) {
	j, ok := m.jobs[key]
	if !ok {
		return
	}
	delete(m.jobs, key)
	j.dead = true
	m.deadJobs++
	if j.foreign {
		m.foreignJobs--
	}
}

// compactJobQueues filters every owner queue in place, dropping
// tombstones and the owners they empty.  Runs once per negotiation
// cycle, before the queues are read, so the round-robin and the
// expiry scan only ever see live entries in their original order.
func (m *Matchmaker) compactJobQueues() {
	if m.deadJobs == 0 {
		return
	}
	kept := m.ownerNames[:0]
	for _, o := range m.ownerNames {
		q := m.ownerQueues[o]
		live := q[:0]
		for _, j := range q {
			if !j.dead {
				live = append(live, j)
			}
		}
		for i := len(live); i < len(q); i++ {
			q[i] = nil // release the tombstoned entries
		}
		if len(live) == 0 {
			delete(m.ownerQueues, o)
			continue
		}
		m.ownerQueues[o] = live
		kept = append(kept, o)
	}
	m.ownerNames = kept
	m.deadJobs = 0
}

// negotiate runs one matchmaking cycle: for each waiting job, in a
// deterministic order, find the best compatible unclaimed machine and
// notify the schedd.
func (m *Matchmaker) negotiate() {
	m.Cycles++
	m.tr.Count("matchmaker.cycles", 1)
	m.expireMachines()
	m.expireJobs()
	m.compactJobQueues()

	// Fair share: owners are served in ascending order of accumulated
	// matches, interleaved round-robin, so neither a busy submit
	// point nor a greedy user can starve the rest.  Within an owner,
	// jobs keep submission order — the buckets are maintained sorted
	// at insert time, so the cycle only re-orders the (few) owners.
	owners := append(m.ownerScratch[:0], m.ownerNames...)
	slices.SortFunc(owners, func(a, b string) int {
		if m.usage[a] != m.usage[b] {
			return m.usage[a] - m.usage[b]
		}
		return strings.Compare(a, b)
	})
	m.ownerScratch = owners

	jobs := m.jobScratch[:0]
	for round := 0; len(jobs) < len(m.jobs); round++ {
		for _, o := range owners {
			if q := m.ownerQueues[o]; round < len(q) {
				jobs = append(jobs, q[round])
			}
		}
	}
	m.jobScratch = jobs

	// Hierarchical negotiation: the fair-share interleave above is
	// stably partitioned so every home-pool job is served before any
	// flocked-in foreign one — a pool donates idle machines to its
	// peers, never its own users' priority.  With no foreign jobs the
	// partition is skipped and the cycle is byte-identical to the
	// single-pool scheduler.
	if m.foreignJobs > 0 {
		foreign := m.foreignScratch[:0]
		local := jobs[:0]
		for _, j := range jobs {
			if j.foreign {
				foreign = append(foreign, j)
			} else {
				local = append(local, j)
			}
		}
		m.foreignScratch = foreign
		jobs = append(local, foreign...)
	}

	fast := !m.params.DisableMatchFastPath
	for _, j := range jobs {
		best := m.findBest(j, fast)
		if best == nil {
			if !j.noMatchSent && !m.anyCompatible(j, fast) {
				// Not outbid — unmatchable: no ad in the pool
				// satisfies the job at all.  Tell the schedd, which
				// alone knows whether its own avoidance constraint
				// caused this.  One notification per advertisement.
				j.noMatchSent = true
				m.NoMatches++
				m.tr.Count("matchmaker.no_matches", 1)
				m.bus.Send(m.name, j.key.schedd, kindNoMatch,
					noMatchMsg{Job: j.key.job})
			}
			continue
		}
		best.matched = true
		m.MatchesMade++
		if j.foreign {
			m.ForeignMatches++
		}
		m.tr.Count("matchmaker.matches", 1)
		m.usage[j.owner]++
		m.removeJob(j.key)
		// The machine ad travels by reference: ads are immutable once
		// advertised (a startd re-advertises a fresh object on every
		// state change), so the claim protocol can read it without a
		// per-match deep copy.
		m.bus.Send(m.name, j.key.schedd, kindMatchNotify, matchNotifyMsg{
			Job:       j.key.job,
			Machine:   best.name,
			MachineAd: best.ad,
		})
	}
	// Provisional matches expire when the startd re-advertises; a
	// machine that was matched but never claimed becomes visible
	// again on its next ad.  Cycle cost is measured by the bench-pool
	// and bench-matchmaker harnesses on the wall clock outside the
	// deterministic path; in here only virtual-clock facts are
	// observed.
	if m.tr.Enabled() {
		m.tr.Observe("matchmaker.cycle_jobs", int64(len(jobs)))
	}
}

// expireMachines drops ads from machines that have gone silent.  At
// the matchmaker, a machine's prolonged silence is the point where a
// network-scope condition has aged into machine scope (Section 5:
// "time becomes a factor in error propagation").
func (m *Matchmaker) expireMachines() {
	now := m.bus.Now()
	expired := m.nameScratch[:0]
	for _, name := range m.machineNames {
		if e := m.machines[name]; !e.absent && now > e.expires {
			expired = append(expired, name)
		}
	}
	for _, name := range expired {
		m.removeMachine(name)
		m.AdsExpired++
	}
	m.nameScratch = expired[:0]
}

// jobAdLifetime resolves the configured job-request lifetime, falling
// back to the machine-ad default.
func (m *Matchmaker) jobAdLifetime() time.Duration {
	if m.params.JobAdLifetime > 0 {
		return m.params.JobAdLifetime
	}
	return 150 * time.Second
}

// expireJobs drops requests whose schedd has stopped refreshing them.
// The iteration follows the deterministic owner/queue order, never the
// jobs map.
func (m *Matchmaker) expireJobs() {
	now := m.bus.Now()
	var expired []jobKey
	for _, o := range m.ownerNames {
		for _, j := range m.ownerQueues[o] {
			if !j.dead && now > j.expires {
				expired = append(expired, j.key)
			}
		}
	}
	for _, key := range expired {
		m.removeJob(key)
		m.JobAdsExpired++
	}
}

// findBest returns the best unmatched machine for the job, or nil.
// The fast path resolves the job's auto-cluster — candidates narrowed
// through the equality index, constant-incompatible pairs skipped via
// the pre-filter, Requirements and Rank evaluated once per cluster
// through the compiled handles — and pops the best machine not yet
// handed out this cycle.  The slow path is the reference full scan
// with AST evaluation, kept for equivalence and determinism
// regression tests.
func (m *Matchmaker) findBest(j *jobEntry, fast bool) *machineEntry {
	if !fast {
		var best *machineEntry
		bestRank := 0.0
		for _, name := range m.machineNames {
			entry := m.machines[name]
			if entry.absent || entry.matched || !classad.MatchSlow(j.ad, entry.ad) {
				continue
			}
			r := classad.RankSlow(j.ad, entry.ad)
			if !m.preemptable(entry, r) {
				continue
			}
			if best == nil || r > bestRank {
				best = entry
				bestRank = r
			}
		}
		return best
	}
	c := m.cluster(j)
	for c.next < len(c.ranked) {
		if entry := c.ranked[c.next].entry; !entry.matched {
			return entry
		}
		c.next++
	}
	return nil
}

// cluster returns the job's auto-cluster scan state, building it on
// the cluster's first touch in a cycle.  Rebuilds reuse the ranked
// slice, so a steady-state cycle stays allocation-free.
func (m *Matchmaker) cluster(j *jobEntry) *clusterEntry {
	if j.sig == "" {
		j.sig = j.ad.String()
	}
	c, ok := m.clusters[j.sig]
	if !ok {
		if len(m.clusters) >= 2*len(m.jobs)+16 {
			// Mostly signatures of long-departed jobs: reset rather
			// than grow without bound.
			clear(m.clusters)
		}
		c = &clusterEntry{cycle: -1}
		m.clusters[j.sig] = c
	}
	if c.cycle == m.Cycles {
		return c
	}
	c.cycle = m.Cycles
	c.next = 0
	c.compatible = false
	c.ranked = c.ranked[:0]
	m.ClusterScans++
	for _, entry := range m.candidates(j) {
		if entry.absent {
			continue
		}
		if entry.matched {
			// Handed out before this scan: invisible to findBest, but
			// anyCompatible must still count it.
			if !c.compatible && classad.AdmitsAll(j.pre, entry.table) &&
				classad.Match(j.ad, entry.ad) &&
				m.preemptable(entry, classad.Rank(j.ad, entry.ad)) {
				c.compatible = true
			}
			continue
		}
		if !classad.AdmitsAll(j.pre, entry.table) {
			m.PrefilterSkips++
			continue
		}
		if !classad.Match(j.ad, entry.ad) {
			continue
		}
		r := classad.Rank(j.ad, entry.ad)
		if !m.preemptable(entry, r) {
			// A claimed machine the job cannot outbid stays invisible,
			// exactly as when claimed machines did not advertise.
			continue
		}
		c.compatible = true
		c.ranked = append(c.ranked, rankedCandidate{entry: entry, rank: r})
	}
	// Stable: equal ranks keep candidate (name) order.  Ranks are
	// never NaN — arithmetic errors such as division by zero evaluate
	// to the error value, which coerces to rank 0 — so the comparator
	// is a strict weak order.
	slices.SortStableFunc(c.ranked, func(a, b rankedCandidate) int {
		switch {
		case a.rank > b.rank:
			return -1
		case a.rank < b.rank:
			return 1
		}
		return 0
	})
	return c
}

// anyCompatible reports whether any advertised machine — including
// ones provisionally matched this cycle — satisfies the job.  Both
// paths agree by the pre-filter soundness argument: narrowing only
// ever discards machines full evaluation would reject.
func (m *Matchmaker) anyCompatible(j *jobEntry, fast bool) bool {
	if !fast {
		for _, name := range m.machineNames {
			if e := m.machines[name]; !e.absent && classad.MatchSlow(j.ad, e.ad) &&
				m.preemptable(e, classad.RankSlow(j.ad, e.ad)) {
				return true
			}
		}
		return false
	}
	// findBest already resolved the cluster this cycle (anyCompatible
	// is only consulted after it returned nil), so this is a cached
	// flag, not a scan.
	return m.cluster(j).compatible
}

// candidates selects the machines worth considering for the job: the
// smallest equality bucket named by the job's pre-filter, merged with
// the machines whose binding for that attribute is dynamic, in name
// order; or every machine when no constraint is indexable.  The
// selection only ever narrows — soundness rests on the same argument
// as Constraint.Admits: a machine outside the bucket has a constant
// binding (or none) that full evaluation would reject.
func (m *Matchmaker) candidates(j *jobEntry) []*machineEntry {
	var bucket, dynamic []*machineEntry
	found := false
	for _, c := range j.pre {
		key, ok := c.IndexKey()
		if !ok {
			continue
		}
		b, d := m.index.bucket(c.Attr, key)
		if !found || len(b)+len(d) < len(bucket)+len(dynamic) {
			bucket, dynamic = b, d
			found = true
		}
	}
	if !found {
		out := m.candScratch[:0]
		for _, name := range m.machineNames {
			out = append(out, m.machines[name])
		}
		m.candScratch = out
		return out
	}
	// Merge the two name-sorted lists, preserving the global order.
	out := m.candScratch[:0]
	i, k := 0, 0
	for i < len(bucket) && k < len(dynamic) {
		if bucket[i].name <= dynamic[k].name {
			out = append(out, bucket[i])
			i++
		} else {
			out = append(out, dynamic[k])
			k++
		}
	}
	out = append(out, bucket[i:]...)
	out = append(out, dynamic[k:]...)
	m.candScratch = out
	return out
}

// AdvertiseMachine installs or refreshes a machine ad directly, for
// benchmarks and tests that drive the matchmaker without the bus.
func (m *Matchmaker) AdvertiseMachine(name string, ad *classad.Ad) {
	lifetime := m.params.MachineAdLifetime
	if lifetime <= 0 {
		lifetime = 150 * time.Second
	}
	m.upsertMachine(name, ad, m.bus.Now().Add(lifetime))
}

// AdvertiseJob installs or refreshes a job request directly, for
// benchmarks and tests that drive the matchmaker without the bus.
func (m *Matchmaker) AdvertiseJob(schedd string, job JobID, ad *classad.Ad) {
	m.upsertJob(jobKey{schedd: schedd, job: job}, ad, false)
}

// MachineCount reports the machines currently advertised (absent
// entries awaiting reclamation excluded), for tests.
func (m *Matchmaker) MachineCount() int { return len(m.machines) - m.absentMachines }

// PendingJobs reports the job requests currently queued, for tests.
func (m *Matchmaker) PendingJobs() int { return len(m.jobs) }

// Negotiate runs one negotiation cycle immediately, for benchmarks
// and tests that drive the matchmaker without the bus timer.
func (m *Matchmaker) Negotiate() { m.negotiate() }

// IndexedMachines reports how many (attribute, value) entries the
// constant index currently holds, for tests.
func (m *Matchmaker) IndexedMachines() int { return m.index.size() }

// attrIndex buckets machines by the constant values of their
// advertised attributes, so equality constraints in job Requirements
// select a candidate bucket instead of scanning the pool.  Machines
// whose binding for an attribute is dynamic (a non-literal
// expression) are listed separately: the pre-filter never prejudges
// them, so they join every bucket of that attribute at merge time.
// All lists are name-sorted for deterministic iteration.
type attrIndex struct {
	byValue map[string]map[string][]*machineEntry // attr -> value key -> entries
	dynamic map[string][]*machineEntry            // attr -> dynamic entries
}

func newAttrIndex() attrIndex {
	return attrIndex{
		byValue: make(map[string]map[string][]*machineEntry),
		dynamic: make(map[string][]*machineEntry),
	}
}

func compareEntryName(e *machineEntry, name string) int {
	return strings.Compare(e.name, name)
}

func insertEntry(list []*machineEntry, e *machineEntry) []*machineEntry {
	pos, _ := slices.BinarySearchFunc(list, e.name, compareEntryName)
	return slices.Insert(list, pos, e)
}

func deleteEntry(list []*machineEntry, e *machineEntry) []*machineEntry {
	if pos, found := slices.BinarySearchFunc(list, e.name, compareEntryName); found {
		return slices.Delete(list, pos, pos+1)
	}
	return list
}

// add indexes the entry's snapshot table.
func (x *attrIndex) add(e *machineEntry) {
	if e.table == nil {
		return
	}
	for attr, v := range e.table.Consts {
		key, ok := classad.ValueIndexKey(v)
		if !ok {
			continue
		}
		vals := x.byValue[attr]
		if vals == nil {
			vals = make(map[string][]*machineEntry)
			x.byValue[attr] = vals
		}
		vals[key] = insertEntry(vals[key], e)
	}
	for attr := range e.table.Dynamic {
		x.dynamic[attr] = insertEntry(x.dynamic[attr], e)
	}
}

// remove unindexes the entry using the same snapshot it was added
// with.
func (x *attrIndex) remove(e *machineEntry) {
	if e.table == nil {
		return
	}
	for attr, v := range e.table.Consts {
		key, ok := classad.ValueIndexKey(v)
		if !ok {
			continue
		}
		vals := x.byValue[attr]
		if vals == nil {
			continue
		}
		if list := deleteEntry(vals[key], e); len(list) > 0 {
			vals[key] = list
		} else {
			delete(vals, key)
		}
		if len(vals) == 0 {
			delete(x.byValue, attr)
		}
	}
	for attr := range e.table.Dynamic {
		if list := deleteEntry(x.dynamic[attr], e); len(list) > 0 {
			x.dynamic[attr] = list
		} else {
			delete(x.dynamic, attr)
		}
	}
}

// bucket returns the constant-value bucket and the dynamic list for
// an attribute.
func (x *attrIndex) bucket(attr, key string) (constant, dynamic []*machineEntry) {
	if vals := x.byValue[attr]; vals != nil {
		constant = vals[key]
	}
	return constant, x.dynamic[attr]
}

// size counts indexed (attribute, value, machine) entries plus
// dynamic listings, for tests.
func (x *attrIndex) size() int {
	n := 0
	for _, vals := range x.byValue {
		for _, list := range vals {
			n += len(list)
		}
	}
	for _, list := range x.dynamic {
		n += len(list)
	}
	return n
}
