package daemon

import (
	"sort"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/sim"
)

// Matchmaker collects ClassAds from all participants and notifies
// schedds and startds of compatible partners.  Matched processes are
// then individually responsible for claiming one another — the
// matchmaker's word is advisory, exactly as in Condor.
type Matchmaker struct {
	bus    Runtime
	params Params

	machines map[string]*machineEntry
	jobs     map[jobKey]*jobEntry
	// usage counts matches handed to each owner, the basis of the
	// fair-share ordering.
	usage map[string]int

	// Cycles counts negotiation cycles, for metrics.
	Cycles int
	// MatchesMade counts notifications sent.
	MatchesMade int
	// AdsExpired counts machine ads dropped for silence.
	AdsExpired int
}

type machineEntry struct {
	name    string
	ad      *classad.Ad
	matched bool     // provisionally handed out this cycle
	expires sim.Time // ad lifetime; a silent machine vanishes
}

type jobKey struct {
	schedd string
	job    JobID
}

type jobEntry struct {
	key jobKey
	ad  *classad.Ad
}

// owner extracts the requesting user from the job ad, falling back to
// the schedd name so anonymous requests still get a fair-share bucket.
func (j *jobEntry) owner() string {
	if v := j.ad.EvalAttr("Owner", nil); v.Type() == classad.StringType {
		s, _ := v.StringValue()
		return s
	}
	return j.key.schedd
}

// NewMatchmaker creates and registers the matchmaker on the bus and
// starts its negotiation cycle.
func NewMatchmaker(bus Runtime, params Params) *Matchmaker {
	m := &Matchmaker{
		bus:      bus,
		params:   params,
		machines: make(map[string]*machineEntry),
		jobs:     make(map[jobKey]*jobEntry),
		usage:    make(map[string]int),
	}
	bus.Register(MatchmakerName, m)
	bus.Every(params.NegotiationInterval, m.negotiate)
	return m
}

// Receive implements sim.Actor.
func (m *Matchmaker) Receive(msg sim.Message) {
	ad, ok := msg.Body.(advertiseMsg)
	if !ok {
		return // unknown traffic is not the matchmaker's to interpret
	}
	switch ad.Kind {
	case "machine":
		lifetime := m.params.MachineAdLifetime
		if lifetime <= 0 {
			lifetime = 150 * time.Second
		}
		m.machines[ad.Name] = &machineEntry{
			name:    ad.Name,
			ad:      ad.Ad,
			expires: m.bus.Now().Add(lifetime),
		}
	case "job":
		key := jobKey{schedd: ad.Schedd, job: ad.Job}
		if ad.Ad == nil {
			delete(m.jobs, key) // schedd withdraws the request
			return
		}
		m.jobs[key] = &jobEntry{key: key, ad: ad.Ad}
	}
}

// negotiate runs one matchmaking cycle: for each waiting job, in a
// deterministic order, find the best compatible unclaimed machine and
// notify the schedd.
func (m *Matchmaker) negotiate() {
	m.Cycles++
	// Expire ads from machines that have gone silent.  At the
	// matchmaker, a machine's prolonged silence is the point where a
	// network-scope condition has aged into machine scope
	// (Section 5: "time becomes a factor in error propagation").
	now := m.bus.Now()
	for name, entry := range m.machines {
		if now > entry.expires {
			delete(m.machines, name)
			m.AdsExpired++
		}
	}
	// Fair share: requests are grouped per owner and owners are
	// served in ascending order of accumulated matches, interleaved
	// round-robin, so neither a busy submit point nor a greedy user
	// can starve the rest.  Within an owner, jobs keep submission
	// order.  The whole arrangement stays deterministic.
	byOwner := make(map[string][]*jobEntry)
	for _, j := range m.jobs {
		o := j.owner()
		byOwner[o] = append(byOwner[o], j)
	}
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
		sort.Slice(byOwner[o], func(i, k int) bool {
			a, b := byOwner[o][i].key, byOwner[o][k].key
			if a.schedd != b.schedd {
				return a.schedd < b.schedd
			}
			return a.job < b.job
		})
	}
	sort.Slice(owners, func(i, k int) bool {
		if m.usage[owners[i]] != m.usage[owners[k]] {
			return m.usage[owners[i]] < m.usage[owners[k]]
		}
		return owners[i] < owners[k]
	})
	jobs := make([]*jobEntry, 0, len(m.jobs))
	for round := 0; len(jobs) < len(m.jobs); round++ {
		for _, o := range owners {
			if q := byOwner[o]; round < len(q) {
				jobs = append(jobs, q[round])
			}
		}
	}

	names := make([]string, 0, len(m.machines))
	for name := range m.machines {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, j := range jobs {
		best := ""
		bestRank := 0.0
		for _, name := range names {
			entry := m.machines[name]
			if entry.matched {
				continue
			}
			if !classad.Match(j.ad, entry.ad) {
				continue
			}
			r := classad.Rank(j.ad, entry.ad)
			if best == "" || r > bestRank {
				best = name
				bestRank = r
			}
		}
		if best == "" {
			continue
		}
		entry := m.machines[best]
		entry.matched = true
		m.MatchesMade++
		m.usage[j.owner()]++
		delete(m.jobs, j.key)
		m.bus.Send(MatchmakerName, j.key.schedd, kindMatchNotify, matchNotifyMsg{
			Job:       j.key.job,
			Machine:   best,
			MachineAd: entry.ad.Copy(),
		})
	}
	// Provisional matches expire when the startd re-advertises; a
	// machine that was matched but never claimed becomes visible
	// again on its next ad.
}

// MachineCount reports the machines currently advertised, for tests.
func (m *Matchmaker) MachineCount() int { return len(m.machines) }

// PendingJobs reports the job requests currently queued, for tests.
func (m *Matchmaker) PendingJobs() int { return len(m.jobs) }
