package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

// TestCrashBetweenGrantAndActivation kills the machine in the narrow
// window after the claim is granted but before the activation (and
// the starter's first contact) arrives.  Without the shadow's
// activation timeout the job would stay "running" forever.
func TestCrashBetweenGrantAndActivation(t *testing.T) {
	params := DefaultParams()
	params.ResultTimeout = 30 * time.Minute
	params.ChronicFailureThreshold = 0
	doomed := MachineConfig{Name: "doomed", Memory: 4096, AdvertiseJava: true}
	backup := MachineConfig{Name: "backup", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, doomed, backup)

	id := submitJavaJob(schedd, jvm.WellBehaved(10*time.Minute))
	// Timeline with 5ms bus latency: claim-request ~60.010s, grant
	// ~60.015s, activation delivered ~60.020s.  Crash at 60.017s:
	// after the grant reached the schedd (shadow exists), before the
	// activation reaches the startd.
	eng.At(0, func() {}) // anchor
	eng.After(60*time.Second+17*time.Millisecond, func() { startds[0].Crash() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if j.LastAttempt().Machine != "backup" {
		t.Errorf("finished on %s", j.LastAttempt().Machine)
	}
	// The first attempt ended in lost contact via the activation
	// timeout.
	first := j.Attempts[0]
	if first.Machine != "doomed" || first.LostContact == nil {
		t.Errorf("first attempt = %+v", first)
	}
}

// TestEvictionDuringClaimWindow evicts (owner returns) in the same
// window; the shadow's activation timeout recovers here too, because
// the startd silently dropped the claim.
func TestEvictionDuringClaimWindow(t *testing.T) {
	params := DefaultParams()
	params.ResultTimeout = 30 * time.Minute
	doomed := MachineConfig{Name: "doomed", Memory: 4096, AdvertiseJava: true}
	backup := MachineConfig{Name: "backup", Memory: 1024, AdvertiseJava: true}
	eng, _, schedd, _, startds := testPool(t, params, doomed, backup)

	id := submitJavaJob(schedd, jvm.WellBehaved(10*time.Minute))
	eng.After(60*time.Second+17*time.Millisecond, func() { startds[0].Evict() })
	eng.After(2*time.Hour, func() { startds[0].OwnerLeft() })
	runUntilDone(t, eng, schedd, 24*time.Hour)

	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v", j.State)
	}
	if len(j.Attempts) < 2 {
		t.Errorf("attempts = %d", len(j.Attempts))
	}
}
