package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/sim"
)

// matchNotifyFor hand-delivers a matchmaker notification straight
// into the schedd, mid-instant: the journal record it triggers sits
// in the open group-commit batch and the claim request it provokes
// sits in the deferred outbox until the end-of-instant commit runs.
func matchNotifyFor(s *Schedd, id JobID, machine string) {
	s.Receive(sim.Message{
		From: MatchmakerName,
		To:   s.Name(),
		Kind: kindMatchNotify,
		Body: matchNotifyMsg{Job: id, Machine: machine,
			MachineAd: testMachineAd(machine, 2048, true)},
	})
}

// TestGroupCommitCrashMidBatch pins the group commit's crash
// contract: a crash with a batch open loses only transitions nothing
// external ever saw.  The match record was buffered, not appended,
// and the claim request was deferred behind it, so replay returns the
// job to idle, no startd ever heard of the claim, and the pool
// completes the job through the normal path afterwards.
func TestGroupCommitCrashMidBatch(t *testing.T) {
	eng, bus, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))

	appends := schedd.Journal().Appends()
	sent := bus.Sent()
	matchNotifyFor(schedd, id, "m1")
	if schedd.Job(id).State != JobMatched {
		t.Fatalf("state = %v, want matched (the transition applied in memory)", schedd.Job(id).State)
	}
	if got := schedd.Journal().Appends(); got != appends {
		t.Fatalf("appends = %d, want %d: the match record must wait in the open batch", got, appends)
	}
	if got := bus.Sent(); got != sent {
		t.Fatalf("sent = %d, want %d: the claim request must wait behind the commit", got, sent)
	}

	schedd.Crash()
	if err := schedd.Recover(nil); err != nil {
		t.Fatalf("recover: %v", err)
	}
	j := schedd.Job(id)
	if j == nil {
		t.Fatal("job lost: the submit record was durable before the user ack")
	}
	if j.State != JobIdle || len(j.Attempts) != 0 {
		t.Fatalf("state = %v attempts = %d, want the pre-match queue back", j.State, len(j.Attempts))
	}

	runUntilDone(t, eng, schedd, 4*time.Hour)
	if j := schedd.Job(id); j.State != JobCompleted {
		t.Errorf("state = %v, err = %v: the recovered job must complete normally", j.State, j.FinalErr)
	}
}

// TestGroupCommitFlushBeforeAct is the positive control: once the
// end-of-instant commit runs, the batched record is durable and only
// then does the claim request leave the schedd — append-before-act,
// batched.
func TestGroupCommitFlushBeforeAct(t *testing.T) {
	eng, bus, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))

	appends := schedd.Journal().Appends()
	sent := bus.Sent()
	matchNotifyFor(schedd, id, "m1")
	eng.RunFor(time.Second)
	if got := schedd.Journal().Appends(); got <= appends {
		t.Fatalf("appends = %d, want > %d: the commit must have flushed the batch", got, appends)
	}
	if got := bus.Sent(); got <= sent {
		t.Fatalf("sent = %d, want > %d: the deferred claim request must have gone out", got, sent)
	}

	runUntilDone(t, eng, schedd, 4*time.Hour)
	j := schedd.Job(id)
	if j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) != 1 || j.Attempts[0].Machine != "m1" {
		t.Errorf("attempts = %+v, want one attempt on the hand-matched machine", j.Attempts)
	}
}
