package daemon

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/sim"
)

// TestFairShareAcrossOwners: a greedy user floods the queue before a
// second user submits; the fair-share ordering still serves the late
// user promptly instead of draining the flood first.
func TestFairShareAcrossOwners(t *testing.T) {
	params := DefaultParams()
	eng := sim.New(5)
	bus := sim.NewBus(eng, 5*time.Millisecond)
	mm := NewMatchmaker(bus, params)
	_ = mm
	schedd := NewSchedd(bus, params, "schedd")
	NewStartd(bus, params, goodMachine("m1"))
	NewStartd(bus, params, MachineConfig{Name: "m2", Memory: 2048, AdvertiseJava: true})

	schedd.SubmitFS.WriteFile("/x.class", []byte("b"))
	submitAs := func(owner string) JobID {
		return schedd.Submit(&Job{
			Owner: owner, Ad: NewJavaJobAd(owner, 128),
			Program: jvm.WellBehaved(30 * time.Minute), Executable: "/x.class",
		})
	}
	// greedy floods 12 jobs.
	var greedy []JobID
	for i := 0; i < 12; i++ {
		greedy = append(greedy, submitAs("greedy"))
	}
	// polite submits 2 jobs a bit later.
	var polite []JobID
	eng.After(5*time.Minute, func() {
		polite = append(polite, submitAs("polite"), submitAs("polite"))
	})

	// Run three hours: with 2 machines and 30-minute jobs only ~12
	// slots exist; fair share must fit polite's 2 jobs in early.
	eng.RunFor(3 * time.Hour)
	politeDone := 0
	for _, id := range polite {
		if schedd.Job(id).State == JobCompleted {
			politeDone++
		}
	}
	if politeDone != 2 {
		t.Fatalf("polite completed %d/2 — starved by the flood", politeDone)
	}
	// The flood still progressed.
	greedyDone := 0
	for _, id := range greedy {
		if schedd.Job(id).State == JobCompleted {
			greedyDone++
		}
	}
	if greedyDone == 0 {
		t.Error("greedy made no progress")
	}
	if eng.Now() < sim.Time(3*time.Hour) {
		t.Errorf("clock = %v", eng.Now())
	}
}

// TestFairShareUsagePersists: usage accumulated in earlier cycles
// biases later ones toward the lighter user.
func TestFairShareUsagePersists(t *testing.T) {
	params := DefaultParams()
	eng := sim.New(6)
	bus := sim.NewBus(eng, 5*time.Millisecond)
	NewMatchmaker(bus, params)
	schedd := NewSchedd(bus, params, "schedd")
	NewStartd(bus, params, goodMachine("m1"))
	schedd.SubmitFS.WriteFile("/x.class", []byte("b"))

	submitAs := func(owner string, d time.Duration) JobID {
		return schedd.Submit(&Job{
			Owner: owner, Ad: NewJavaJobAd(owner, 128),
			Program: jvm.WellBehaved(d), Executable: "/x.class",
		})
	}
	// heavy runs three jobs first, alone in the pool.
	for i := 0; i < 3; i++ {
		submitAs("heavy", 10*time.Minute)
	}
	eng.RunFor(2 * time.Hour)
	// Now both users submit one job; the single machine should go to
	// light first, despite heavy's job having a smaller id ordering.
	h := submitAs("heavy", 10*time.Minute)
	l := submitAs("light", 10*time.Minute)
	eng.RunFor(15 * time.Minute)
	if schedd.Job(l).State != JobRunning && schedd.Job(l).State != JobCompleted {
		t.Errorf("light job state = %v; heavy = %v",
			schedd.Job(l).State, schedd.Job(h).State)
	}
}
