package daemon

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

// TestChronicFailureTableBounded is the steady-state memory
// regression gate: a schedd that outlives many failing machines must
// not remember every one of them forever.  Grudges older than twice
// ChronicRelaxAfter are swept by the periodic idle advertisement, so
// the table (and the avoided list every idle ad carries) tracks the
// recent past, not the full history of the pool.
func TestChronicFailureTableBounded(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))

	// A long-lived schedd has watched 500 machines fail and vanish.
	stamp := eng.Now()
	for i := 0; i < 500; i++ {
		schedd.machineFailures[fmt.Sprintf("ghost%03d", i)] =
			failureRecord{count: params.ChronicFailureThreshold, last: stamp}
	}
	schedd.avoidedDirty = true
	if got := schedd.FailureTableSize(); got != 500 {
		t.Fatalf("table size = %d, want 500 before expiry", got)
	}

	// Well inside the TTL nothing is dropped: the grudges are live
	// avoidance state, not garbage.
	eng.RunFor(params.ChronicRelaxAfter)
	if got := schedd.FailureTableSize(); got != 500 {
		t.Fatalf("table size = %d, want 500 at ChronicRelaxAfter: expiry ran early", got)
	}

	// Past 2x ChronicRelaxAfter the sweep in the periodic idle
	// advertisement must have emptied the table.
	eng.RunFor(params.ChronicRelaxAfter + 2*params.AdInterval)
	if got := schedd.FailureTableSize(); got != 0 {
		t.Fatalf("table size = %d, want 0 after the expiry horizon", got)
	}
	if avoided := schedd.avoidedMachines(); len(avoided) != 0 {
		t.Fatalf("avoided = %v, want none after expiry", avoided)
	}

	// A fresh grudge earns the full TTL from its last failure.
	schedd.machineFailures["recent"] = failureRecord{
		count: params.ChronicFailureThreshold, last: eng.Now()}
	schedd.avoidedDirty = true
	eng.RunFor(params.ChronicRelaxAfter)
	if got := schedd.FailureTableSize(); got != 1 {
		t.Fatalf("table size = %d, want the recent grudge kept", got)
	}
}

// TestChronicFailureExpiryIsBackstop pins the layering: a completed
// job clears its machine's grudge immediately (the success path),
// while expiry only collects entries no success ever cleared.
func TestChronicFailureExpiryIsBackstop(t *testing.T) {
	params := DefaultParams()
	eng, _, schedd, _, _ := testPool(t, params, goodMachine("m1"))

	schedd.machineFailures["m1"] = failureRecord{count: 2, last: eng.Now()}
	schedd.avoidedDirty = true
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 4*time.Hour)
	if j := schedd.Job(id); j.State != JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if got := schedd.FailureCount("m1"); got != 0 {
		t.Errorf("failure count = %d, want 0: success clears the grudge without waiting for expiry", got)
	}
}
