package daemon

import (
	"fmt"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// JobID identifies a job within one schedd, like a Condor cluster id.
type JobID int

// JobState is the lifecycle state of a queued job.
type JobState int

// Job lifecycle states.
const (
	JobIdle JobState = iota
	JobMatched
	JobRunning
	JobCompleted
	JobUnexecutable
	JobHeld
)

var jobStateNames = [...]string{
	JobIdle:         "idle",
	JobMatched:      "matched",
	JobRunning:      "running",
	JobCompleted:    "completed",
	JobUnexecutable: "unexecutable",
	JobHeld:         "held",
}

// String returns the state name.
func (s JobState) String() string {
	if s < 0 || int(s) >= len(jobStateNames) {
		return fmt.Sprintf("jobstate(%d)", int(s))
	}
	return jobStateNames[s]
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobCompleted || s == JobUnexecutable || s == JobHeld
}

// Attempt records one execution attempt of a job.
type Attempt struct {
	Machine string
	Start   sim.Time
	End     sim.Time
	// Reported is the result the starter reported up the chain —
	// under ModeNaive this is the raw exit interpretation.
	Reported scope.Result
	// True is the wrapper's scope-aware classification, recorded as
	// ground truth in both modes so experiments can measure the
	// information the naive mode destroys.
	True scope.Result
	// CPU is the virtual CPU the attempt consumed on the machine.
	CPU time.Duration
	// FetchError, when non-nil, is the shadow-side error that
	// prevented the attempt from running at all.
	FetchError error
	// LostContact, when non-nil, is the widened error recorded when
	// the execution site went silent mid-attempt.
	LostContact error
	// Evicted marks an attempt ended by the machine owner's return.
	Evicted bool
	// Preempted qualifies Evicted: the attempt ended because a
	// higher-Rank job took the claim, not because the owner returned.
	Preempted bool
}

// Job is one queued job: its ClassAd, its simulated program, and its
// submit-side files.
type Job struct {
	ID    JobID
	Owner string
	// Universe selects the execution environment: "java" (default)
	// runs inside the machine's JVM installation behind the wrapper;
	// "vanilla" runs directly on the operating system, so the
	// owner's Java configuration is irrelevant to it.
	Universe string
	// Ad carries Requirements/Rank and job attributes (ImageSize,
	// OutageTolerance, ...).
	Ad *classad.Ad
	// Program is the simulated Java program.
	Program *jvm.Program
	// Executable is the path of the program image on the submit
	// machine's file system; the shadow fetches it before each
	// attempt.  Empty means no fetch is needed.
	Executable string

	State    JobState
	Attempts []Attempt
	// Events is the job's user-facing event log.
	Events []JobEvent
	// CheckpointCPU is the best checkpoint recorded so far; the next
	// attempt of a Standard Universe job resumes from it.
	CheckpointCPU time.Duration
	// claimSeq invalidates stale claim timeouts.
	claimSeq int
	// avoidanceRelaxed marks a job whose chronic-failure avoidance
	// constraint was dropped after starving it (idle past
	// Params.ChronicRelaxAfter with zero compatible machines); the
	// next attempt re-arms the constraint.
	avoidanceRelaxed bool
	// Flock state (see Schedd.maybeFlock): flockedTo names the peer
	// negotiator the job is currently advertised at ("" = home), and
	// flockLevel its 1-based position in the configured peer order.
	// Every attempt and every recovery resets the job to home — the
	// remote advertisement is exactly what a peer-pool failure
	// invalidates, never the job.
	flockedTo  string
	flockLevel int
	// flockedAt is the instant of the last flock transition, pacing
	// escalation to the next peer.
	flockedAt sim.Time
	// flockPending marks an outstanding coordinator query;
	// flockPendingAt lets a lost reply expire instead of wedging the
	// job at its current level forever.
	flockPending   bool
	flockPendingAt sim.Time
	// FinalErr is the error (if any) accompanying a terminal state.
	FinalErr error
	// Submitted and Finished bracket the job's queue residency.
	Submitted sim.Time
	Finished  sim.Time

	// identEnc caches the journal encoding of the immutable identity
	// fields (owner, universe, exe, ad, prog) — rendered once instead
	// of per snapshot (see Job.identLine).
	identEnc []byte
	// attEnc/attEncN cache the journal encoding of frozen attempts:
	// every attempt before the last, plus the last once it is closed
	// and the job terminal.  applyFinal and normalizeJob only ever
	// touch the open last attempt, so cached lines cannot go stale.
	attEnc  []byte
	attEncN int
	// refName caches the schedd#id advertisement name.
	refName string
}

// LastAttempt returns the most recent attempt, or nil.
func (j *Job) LastAttempt() *Attempt {
	if len(j.Attempts) == 0 {
		return nil
	}
	return &j.Attempts[len(j.Attempts)-1]
}

// OutageTolerance reads the job's declared patience for submit-side
// outages (MountPerJob policy), or 0 when undeclared.
func (j *Job) OutageTolerance() time.Duration {
	v := j.Ad.EvalAttr("OutageTolerance", nil)
	if secs, ok := v.IntValue(); ok && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	if f, ok := v.RealValue(); ok && f > 0 {
		return time.Duration(f * float64(time.Second))
	}
	return 0
}

// The constructor ads below bind these pre-parsed expressions instead
// of re-parsing the same constant sources per job; Expr is immutable
// after parsing, so one AST is safely shared by every ad.
var (
	javaJobRequirements   = classad.MustParseExpr("target.HasJava && target.Memory >= my.ImageSize")
	memoryJobRequirements = classad.MustParseExpr("target.Memory >= my.ImageSize")
	memoryRank            = classad.MustParseExpr("target.Memory")
)

// NewJavaJobAd builds the typical ad a Java Universe job submits:
// image size, owner, and requirements that the target machine
// advertise a working Java.
func NewJavaJobAd(owner string, imageSizeMB int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Universe", "java")
	ad.SetString("Owner", owner)
	ad.SetInt("ImageSize", imageSizeMB)
	ad.Set("Requirements", javaJobRequirements)
	ad.Set("Rank", memoryRank)
	return ad
}

// NewStandardJobAd builds the ad of a Standard Universe job: a
// re-linked binary with transparent checkpointing; like vanilla it
// needs no Java.
func NewStandardJobAd(owner string, imageSizeMB int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Universe", "standard")
	ad.SetString("Owner", owner)
	ad.SetInt("ImageSize", imageSizeMB)
	ad.Set("Requirements", memoryJobRequirements)
	ad.Set("Rank", memoryRank)
	return ad
}

// NewVanillaJobAd builds the ad of a Vanilla Universe job: a normal
// binary with no Java requirement — it happily runs on machines whose
// Java installation is broken.
func NewVanillaJobAd(owner string, imageSizeMB int64) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Universe", "vanilla")
	ad.SetString("Owner", owner)
	ad.SetInt("ImageSize", imageSizeMB)
	ad.Set("Requirements", memoryJobRequirements)
	ad.Set("Rank", memoryRank)
	return ad
}
