package daemon

import (
	"time"

	"github.com/errscope/grid/internal/sim"
)

// Runtime is the execution substrate the kernel daemons run on: named
// actors, message delivery, and timers.  Two implementations exist:
//
//   - *sim.Bus runs the daemons on the deterministic discrete-event
//     engine, for experiments and tests;
//   - *live.Runtime (package internal/live) runs the identical daemon
//     code on goroutines over the wall clock, for a pool that
//     actually passes real time.
//
// Daemons never block; they react to messages and timers, so the same
// state machines are correct on both substrates.
type Runtime interface {
	// Send queues a message for delivery to the named actor.
	Send(from, to, kind string, body any)
	// Register attaches an actor under a unique name.
	Register(name string, a sim.Actor)
	// Unregister detaches an actor; in-flight messages to it drop.
	Unregister(name string)
	// Now returns the current time on this substrate.
	Now() sim.Time
	// After schedules fn once after d; the returned function cancels
	// it if it has not fired.
	After(d time.Duration, fn func()) (cancel func())
	// Every schedules fn at the period; the returned function stops
	// the series.
	Every(period time.Duration, fn func()) (stop func())
}

var (
	_ Runtime = (*sim.Bus)(nil)
	_ Runtime = (*sim.ScopedBus)(nil)
)

// affinity returns a runtime scoped to the named actor when the
// substrate supports shard affinity (the simulator's bus and its
// scoped views), and the runtime unchanged otherwise (the live
// runtime).  Scoping is what lets the parallel engine run daemons of
// different shards concurrently within one virtual instant; on a
// serial engine a scoped runtime behaves identically to the bus.
func affinity(rt Runtime, owner string) Runtime {
	if s, ok := rt.(interface {
		Scoped(owner string) *sim.ScopedBus
	}); ok {
		return s.Scoped(owner)
	}
	return rt
}
