package daemon

import (
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/scope"
)

// The checkpoint codec.  A checkpoint crosses the pool boundary — it
// leaves the execution machine and must survive that machine's death —
// so, like the flock codec, it travels as a canonical text record
// rather than a process-local struct: one line, fixed field order, and
// a CRC-32 trailer over everything before it.  Canonical means
// ParseCheckpoint(EncodeCheckpoint(j, c)) == (j, c) and re-encoding
// any accepted line reproduces it byte for byte, the property the fuzz
// test pins.  A corrupted or truncated line is a parse error the
// shadow scopes as a network failure — the checkpoint is damaged, not
// the job, and the previous committed checkpoint still stands.
//
//	ckpt job=7 cpu=1800000000000 crc=9f43aa10

// EncodeCheckpoint renders the canonical one-line checkpoint record
// for a job's accumulated CPU progress.
func EncodeCheckpoint(job JobID, cpu time.Duration) string {
	var sb strings.Builder
	sb.WriteString("ckpt job=")
	sb.WriteString(strconv.Itoa(int(job)))
	sb.WriteString(" cpu=")
	sb.WriteString(strconv.FormatInt(int64(cpu), 10))
	sum := crc32.ChecksumIEEE([]byte(sb.String()))
	sb.WriteString(" crc=")
	fmt.Fprintf(&sb, "%08x", sum)
	return sb.String()
}

// ParseCheckpoint decodes one checkpoint record, strictly: exact field
// order, single spaces, canonical integers, and a CRC that matches the
// bytes it covers.  Anything else — above all, a payload damaged in
// transit — is an error.
func ParseCheckpoint(s string) (JobID, time.Duration, error) {
	rest, ok := strings.CutPrefix(s, "ckpt ")
	if !ok {
		return 0, 0, fmt.Errorf("ckpt: not a checkpoint record: %q", s)
	}
	job, err := cutCkptInt(&rest, "job", true)
	if err != nil {
		return 0, 0, err
	}
	if job < 0 {
		return 0, 0, fmt.Errorf("ckpt: negative job %d", job)
	}
	cpu, err := cutCkptInt(&rest, "cpu", true)
	if err != nil {
		return 0, 0, err
	}
	if cpu < 0 {
		return 0, 0, fmt.Errorf("ckpt: negative cpu %d", cpu)
	}
	raw, ok := strings.CutPrefix(rest, "crc=")
	if !ok {
		return 0, 0, fmt.Errorf("ckpt: expected crc= at %q", rest)
	}
	if len(raw) != 8 {
		return 0, 0, fmt.Errorf("ckpt: crc %q is not 8 hex digits", raw)
	}
	sum, err := strconv.ParseUint(raw, 16, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("ckpt: field crc: %w", err)
	}
	// Canonical hex only: ParseUint accepts uppercase, which would
	// re-encode differently and break the round trip.
	if raw != fmt.Sprintf("%08x", uint32(sum)) {
		return 0, 0, fmt.Errorf("ckpt: non-canonical crc=%q", raw)
	}
	covered := s[:len(s)-len(" crc=")-8]
	if got := crc32.ChecksumIEEE([]byte(covered)); got != uint32(sum) {
		return 0, 0, fmt.Errorf("ckpt: crc mismatch: record says %08x, bytes say %08x",
			uint32(sum), got)
	}
	return JobID(job), time.Duration(cpu), nil
}

// cutCkptInt consumes "key=<int64>" (and, when more fields follow, the
// single space after it) from the front of *rest.
func cutCkptInt(rest *string, key string, more bool) (int64, error) {
	r, ok := strings.CutPrefix(*rest, key+"=")
	if !ok {
		return 0, fmt.Errorf("ckpt: expected %s= at %q", key, *rest)
	}
	var raw string
	if more {
		raw, r, ok = strings.Cut(r, " ")
		if !ok {
			return 0, fmt.Errorf("ckpt: truncated after %s", key)
		}
	} else {
		raw, r = r, ""
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ckpt: field %s: %w", key, err)
	}
	// Reject non-canonical spellings ("+2", "007") that ParseInt
	// accepts: they would re-encode differently.
	if raw != strconv.FormatInt(v, 10) {
		return 0, fmt.Errorf("ckpt: non-canonical %s=%q", key, raw)
	}
	*rest = r
	return v, nil
}

// ckptCorruptErr scopes a damaged checkpoint record: the network
// delivered bytes whose CRC does not hold, so the loss is the
// record's, not the job's — the shadow keeps the previous committed
// checkpoint and waits for the next one.
func ckptCorruptErr(cause error) *scope.Error {
	e := scope.New(scope.ScopeNetwork, "CheckpointCorrupt",
		"checkpoint did not survive transit: %v", cause)
	e.Kind = scope.KindEscaping
	return e
}

// CorruptCheckpoint returns the body with one byte of its checkpoint
// payload flipped (the byte at index n modulo the payload length), for
// fault injection; non-checkpoint bodies pass through unchanged.
// Exported so the fault injector can damage the payload without
// knowing the daemon's message types.
func CorruptCheckpoint(body any, n int) any {
	m, ok := body.(checkpointMsg)
	if !ok || len(m.Payload) == 0 {
		return body
	}
	if n < 0 {
		n = -n
	}
	b := []byte(m.Payload)
	b[n%len(b)] ^= 0x20
	m.Payload = string(b)
	return m
}
