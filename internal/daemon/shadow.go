package daemon

import (
	"time"

	"github.com/errscope/grid/internal/javaio"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
	"github.com/errscope/grid/internal/vfs"
)

// Shadow represents one running job on the submit side: it provides
// the details of the job to be run — the executable, input files,
// arguments — and manages errors of local-resource scope (Figure 3).
//
// When the submit-side file system is unavailable, the shadow applies
// the pool's mount policy (Section 5): retry quietly forever (hard),
// retry for a bounded time (soft), or retry for as long as this
// particular job declared it can tolerate (per-job).
type Shadow struct {
	bus    Runtime
	params Params
	name   string
	schedd string
	tr     obs.Tracer

	job        JobID
	universe   string
	program    *jvm.Program
	executable string
	tolerance  time.Duration // -1 means unbounded (hard mount)
	submitFS   *vfs.FileSystem
	machine    string

	outageStart sim.Time
	inOutage    bool
	starter     string
	finished    bool
	// stopLease cancels the claim-lease renewal ticker.
	stopLease func()
	// lastCheckpoint is the freshest progress the starter shipped;
	// it survives the execution machine.
	lastCheckpoint time.Duration

	// Retries counts fetch retries, for the mount experiment.
	Retries int
}

// newShadow creates and registers the per-job shadow.
func newShadow(bus Runtime, params Params, name, schedd string, job *Job, submitFS *vfs.FileSystem, machine string) *Shadow {
	bus = affinity(bus, name)
	sh := &Shadow{
		bus:            bus,
		params:         params,
		name:           name,
		schedd:         schedd,
		tr:             params.tracer(),
		job:            job.ID,
		universe:       job.Universe,
		program:        job.Program,
		lastCheckpoint: job.CheckpointCPU,
		executable:     job.Executable,
		submitFS:       submitFS,
		machine:        machine,
	}
	// Resolve the shadow's patience for submit-side outages.
	switch params.Mount.Kind {
	case MountHard:
		sh.tolerance = -1
	case MountPerJob:
		if t := job.OutageTolerance(); t > 0 {
			sh.tolerance = t
		} else {
			sh.tolerance = params.Mount.SoftTimeout
		}
	default:
		sh.tolerance = params.Mount.SoftTimeout
	}
	bus.Register(name, sh)
	// Claim lease: renew the machine's claim periodically for as long
	// as this shadow lives.  The renewals are the submit side's pulse;
	// when the schedd crashes and takes its shadows down, they stop,
	// and the startd's lease expiry releases the machine.
	if params.LeaseInterval > 0 {
		sh.stopLease = bus.Every(params.LeaseInterval, func() {
			if sh.finished {
				return
			}
			sh.bus.Send(sh.name, sh.machine, kindLeaseRenew, leaseRenewMsg{Job: sh.job})
		})
	}
	// Activation timeout: if no starter ever contacts this shadow —
	// the machine died or was reclaimed between the claim grant and
	// the activation — the silence must not strand the job.  The
	// same discipline as the result timeout, armed from birth.
	if params.ResultTimeout > 0 {
		bus.After(params.ResultTimeout, func() {
			if sh.finished || sh.starter != "" {
				return
			}
			silence := scope.New(scope.ScopeNetwork, "StarterSilent",
				"no starter contact within %v of activation", params.ResultTimeout)
			silence.Kind = scope.KindEscaping
			sh.finish(jobFinalMsg{
				Job:         sh.job,
				Machine:     sh.machine,
				LostContact: silence.Widen(scope.ScopeRemoteResource, "StarterVanished"),
			})
		})
	}
	return sh
}

// Receive implements sim.Actor.
func (sh *Shadow) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case fetchJobMsg:
		sh.starter = body.Starter
		sh.tryFetch()
	case jobResultMsg:
		sh.handleResult(body)
	case checkpointMsg:
		sh.handleCheckpoint(body)
	case jobEvictedMsg:
		sh.handleEvicted(body)
	}
}

// tryFetch locates the executable on the submit-side file system and
// ships the job to the starter, applying the mount policy to
// local-resource outages.
func (sh *Shadow) tryFetch() {
	if sh.finished {
		return
	}
	if sh.executable != "" {
		if _, err := sh.submitFS.ReadFile(sh.executable); err != nil {
			sh.fetchError(err)
			return
		}
	}
	sh.inOutage = false
	// Build the I/O library the job will use: the corrected library
	// under ModeScoped, the generic-IOException library under
	// ModeNaive.  Its transport reaches the submit file system — in
	// the live system this is Chirp over the shadow channel (see
	// package remoteio); in the simulation the data plane is direct
	// while the control plane stays message-accurate.
	generic := sh.params.Mode == ModeNaive
	transport := &javaio.VFSTransport{FS: sh.submitFS, AutoCreate: true}
	var lib *javaio.Library
	if generic {
		lib = javaio.NewGeneric(transport)
	} else {
		lib = javaio.New(transport)
	}
	sh.bus.Send(sh.name, sh.starter, kindJobDetails, jobDetailsMsg{
		Job:       sh.job,
		Universe:  sh.universe,
		ResumeCPU: sh.lastCheckpoint,
		Program:   sh.program,
		IO:        lib,
		Generic:   generic,
	})
	// Arm the result timeout: a starter silent past this point has
	// vanished.  The silence begins as a network-scope condition,
	// and its duration widens it to remote-resource scope — the
	// machine, not just the channel, is invalidated (Section 5).
	if sh.params.ResultTimeout > 0 {
		sh.bus.After(sh.params.ResultTimeout, func() {
			if sh.finished {
				return
			}
			silence := scope.New(scope.ScopeNetwork, "StarterSilent",
				"no result after %v", sh.params.ResultTimeout)
			silence.Kind = scope.KindEscaping
			sh.finish(jobFinalMsg{
				Job:         sh.job,
				Machine:     sh.machine,
				LostContact: silence.Widen(scope.ScopeRemoteResource, "StarterVanished"),
				// The last checkpoint survived the machine: the
				// next attempt resumes from it.
				CheckpointCPU: sh.lastCheckpoint,
			})
		})
	}
}

// fetchError applies scope analysis and the mount policy to a
// submit-side failure.
func (sh *Shadow) fetchError(err error) {
	se, ok := scope.AsError(err)
	if !ok {
		se = scope.New(scope.ScopeLocalResource, "ShadowError", "%v", err)
	}
	// A missing or unreadable executable invalidates the job itself:
	// the file-scope error expands to job scope in the shadow's
	// context (Section 3.3).
	if se.Scope <= scope.ScopeFile {
		sh.finish(jobFinalMsg{
			Job:        sh.job,
			Machine:    sh.machine,
			FetchError: se.Widen(scope.ScopeJob, "MissingInputFileError"),
		})
		return
	}
	// Local-resource scope: the job cannot run right now.  Apply
	// the mount policy.
	if !sh.inOutage {
		sh.inOutage = true
		sh.outageStart = sh.bus.Now()
	}
	elapsed := sh.bus.Now().Sub(sh.outageStart)
	if sh.tolerance >= 0 && elapsed >= sh.tolerance {
		// Patience exhausted: expose the error (soft mount).  The
		// schedd will requeue; the claim is released.
		sh.finish(jobFinalMsg{
			Job:        sh.job,
			Machine:    sh.machine,
			FetchError: se.WithOrigin("shadow"),
		})
		return
	}
	// A persistent outage eventually stops being "right now": after
	// MaxFetchRetries probes the shadow escalates instead of spinning
	// forever, and the schedd parks the job on hold with the
	// escalated execution-environment error.
	if max := sh.params.MaxFetchRetries; max > 0 && sh.Retries >= max {
		exhausted := scope.Escape(scope.ScopeLocalResource, "FetchRetriesExhausted", se)
		sh.finish(jobFinalMsg{
			Job:        sh.job,
			Machine:    sh.machine,
			FetchError: exhausted.WithOrigin("shadow"),
			Hold:       true,
		})
		return
	}
	// Keep waiting (hard mount, or patience remaining), backing off
	// exponentially up to the cap.
	sh.Retries++
	delay := sh.retryDelay()
	sh.tr.Count("shadow.retries", 1)
	if sh.tr.Enabled() {
		sh.tr.Observe("shadow.backoff_ns", int64(delay))
		sh.tr.Emit(obs.Event{
			T:     int64(sh.bus.Now()),
			Comp:  sh.name,
			Kind:  obs.KindRetry,
			Job:   int64(sh.job),
			Code:  se.Code,
			Scope: se.Scope.String(),
			Value: int64(delay),
		})
	}
	sh.bus.After(delay, sh.tryFetch)
}

// retryDelay computes the capped exponential backoff for the current
// retry count: base, 2·base, 4·base, ... up to MaxRetryInterval.
func (sh *Shadow) retryDelay() time.Duration {
	base := sh.params.Mount.RetryInterval
	if base <= 0 {
		// A zero interval would reschedule at the same virtual
		// instant and spin the simulation forever.
		base = time.Second
	}
	limit := sh.params.Mount.MaxRetryInterval
	if limit <= 0 {
		limit = 64 * base
	}
	d := base
	for i := 1; i < sh.Retries && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	return d
}

// handleCheckpoint validates one checkpoint record from the starter
// and, when it advances the job's progress, commits it through the
// schedd's journal so the checkpoint survives not just the execution
// machine but the schedd process too.  A record whose CRC does not
// hold, or that names a different job, is rejected: the damage is the
// record's (network scope), never the job's, and the previous
// committed checkpoint still stands.
func (sh *Shadow) handleCheckpoint(m checkpointMsg) {
	if sh.finished {
		return
	}
	job, cpu, err := ParseCheckpoint(m.Payload)
	if err == nil && job != sh.job {
		err = scope.New(scope.ScopeNetwork, "CheckpointMisrouted",
			"checkpoint names job %d, shadow serves job %d", job, sh.job)
	}
	if err != nil {
		sh.tr.Count("shadow.ckpt_rejected", 1)
		if sh.tr.Enabled() {
			sh.tr.Emit(errorEvent(int64(sh.bus.Now()), sh.name, sh.job,
				ckptCorruptErr(err)))
		}
		return
	}
	if cpu <= sh.lastCheckpoint {
		return
	}
	sh.lastCheckpoint = cpu
	sh.bus.Send(sh.name, sh.schedd, kindCkptCommit, ckptCommitMsg{
		Job: sh.job,
		CPU: cpu,
	})
}

// handleEvicted requeues an owner-reclaimed (or preempted) attempt,
// carrying the final checkpoint home.
func (sh *Shadow) handleEvicted(ev jobEvictedMsg) {
	if ev.CheckpointCPU > sh.lastCheckpoint {
		sh.lastCheckpoint = ev.CheckpointCPU
	}
	sh.finish(jobFinalMsg{
		Job:           sh.job,
		Machine:       sh.machine,
		Evicted:       true,
		Preempted:     ev.Preempted,
		CheckpointCPU: sh.lastCheckpoint,
	})
}

// handleResult interprets the starter's report and informs the schedd.
func (sh *Shadow) handleResult(res jobResultMsg) {
	sh.finish(jobFinalMsg{
		Job:      sh.job,
		Machine:  sh.machine,
		Reported: res.Reported,
		True:     res.True,
		CPU:      res.CPU,
	})
}

// kill takes the shadow down with its crashing schedd: no final
// report, no cleanup protocol — the process simply ceases to exist.
// The execute side discovers the loss through lease expiry.
func (sh *Shadow) kill() {
	if sh.finished {
		return
	}
	sh.finished = true
	if sh.stopLease != nil {
		sh.stopLease()
		sh.stopLease = nil
	}
	sh.bus.Unregister(sh.name)
}

// finish sends the final report, releases resources, and retires the
// shadow.
func (sh *Shadow) finish(report jobFinalMsg) {
	if sh.finished {
		return
	}
	sh.finished = true
	if sh.stopLease != nil {
		sh.stopLease()
		sh.stopLease = nil
	}
	if sh.tr.Enabled() {
		// One hop per error the shadow forwards; a clean result emits
		// nothing, keeping clean completions span-free.
		now := int64(sh.bus.Now())
		switch {
		case report.FetchError != nil:
			sh.tr.Emit(errorEvent(now, sh.name, sh.job, report.FetchError))
		case report.LostContact != nil:
			sh.tr.Emit(errorEvent(now, sh.name, sh.job, report.LostContact))
		default:
			if err := report.Reported.Err(); err != nil {
				sh.tr.Emit(errorEvent(now, sh.name, sh.job, err))
			}
		}
	}
	if report.FetchError != nil || report.LostContact != nil {
		if sh.starter != "" {
			sh.bus.Send(sh.name, sh.starter, kindFetchAbort, fetchAbortMsg{Job: sh.job})
		}
		sh.bus.Send(sh.name, sh.machine, kindReleaseClaim, releaseClaimMsg{Job: sh.job})
	}
	sh.bus.Send(sh.name, sh.schedd, kindJobFinal, report)
	sh.bus.Unregister(sh.name)
}
