package daemon

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/errscope/grid/internal/scope"
)

// The flock negotiation codec.  A flock decision is the one message
// that crosses pool-administration boundaries, so — like the scenario
// and journal formats — it travels as a canonical text record rather
// than a process-local struct: one line, fixed field order, Go-quoted
// strings.  Canonical means ParseFlockMsg(EncodeFlockMsg(m)) == m and
// EncodeFlockMsg(ParseFlockMsg(s)) == s for every accepted s, the
// property the fuzz test pins.  A truncated or corrupted line is a
// parse error the receiving schedd scopes as a network failure — the
// reply is damaged, not the job.
//
//	flock grant job=7 level=2 negotiator="mm-p2"
//	flock deny job=7 reason="no live peer pool"

// FlockOp is the decision a flock reply carries.
type FlockOp string

// Flock reply operations.
const (
	// FlockGrant names a live peer negotiator the job may flock to.
	FlockGrant FlockOp = "grant"
	// FlockDeny reports that no peer at or past the requested level
	// is alive; the job should return home.
	FlockDeny FlockOp = "deny"
)

// FlockMsg is one decoded flock decision.
type FlockMsg struct {
	Op  FlockOp
	Job JobID
	// Level is the flocking level granted: the 1-based index into the
	// configured peer order of the negotiator below.  Grant only.
	Level int
	// Negotiator is the peer negotiator's actor name.  Grant only.
	Negotiator string
	// Reason explains a deny.
	Reason string
}

// EncodeFlockMsg renders the canonical one-line encoding.
func EncodeFlockMsg(m FlockMsg) string {
	var sb strings.Builder
	sb.WriteString("flock ")
	sb.WriteString(string(m.Op))
	sb.WriteString(" job=")
	sb.WriteString(strconv.Itoa(int(m.Job)))
	switch m.Op {
	case FlockGrant:
		sb.WriteString(" level=")
		sb.WriteString(strconv.Itoa(m.Level))
		sb.WriteString(" negotiator=")
		sb.WriteString(strconv.Quote(m.Negotiator))
	case FlockDeny:
		sb.WriteString(" reason=")
		sb.WriteString(strconv.Quote(m.Reason))
	}
	return sb.String()
}

// ParseFlockMsg decodes one flock decision, strictly: exact field
// order, single spaces, Go-quoted strings.  Anything else — above
// all, a line cut short in transit — is an error.
func ParseFlockMsg(s string) (FlockMsg, error) {
	var m FlockMsg
	rest, ok := strings.CutPrefix(s, "flock ")
	if !ok {
		return m, fmt.Errorf("flock: not a flock record: %q", s)
	}
	op, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return m, fmt.Errorf("flock: truncated after op %q", op)
	}
	m.Op = FlockOp(op)
	job, err := cutIntField(&rest, "job", true)
	if err != nil {
		return m, err
	}
	if job < 0 {
		return m, fmt.Errorf("flock: negative job %d", job)
	}
	m.Job = JobID(job)
	switch m.Op {
	case FlockGrant:
		level, err := cutIntField(&rest, "level", true)
		if err != nil {
			return m, err
		}
		if level < 1 {
			return m, fmt.Errorf("flock: grant level %d out of range", level)
		}
		m.Level = level
		if m.Negotiator, err = cutQuotedField(&rest, "negotiator"); err != nil {
			return m, err
		}
		if m.Negotiator == "" {
			return m, fmt.Errorf("flock: grant names no negotiator")
		}
	case FlockDeny:
		if m.Reason, err = cutQuotedField(&rest, "reason"); err != nil {
			return m, err
		}
	default:
		return m, fmt.Errorf("flock: unknown op %q", op)
	}
	if rest != "" {
		return m, fmt.Errorf("flock: trailing garbage %q", rest)
	}
	return m, nil
}

// cutIntField consumes "key=<int>" (and, when more fields follow, the
// single space after it) from the front of *rest.
func cutIntField(rest *string, key string, more bool) (int, error) {
	r, ok := strings.CutPrefix(*rest, key+"=")
	if !ok {
		return 0, fmt.Errorf("flock: expected %s= at %q", key, *rest)
	}
	var raw string
	if more {
		raw, r, ok = strings.Cut(r, " ")
		if !ok {
			return 0, fmt.Errorf("flock: truncated after %s", key)
		}
	} else {
		raw, r = r, ""
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("flock: field %s: %w", key, err)
	}
	// Reject non-canonical spellings ("+2", "007") that Atoi accepts:
	// they would re-encode differently and break the round trip.
	if raw != strconv.Itoa(v) {
		return 0, fmt.Errorf("flock: non-canonical %s=%q", key, raw)
	}
	*rest = r
	return v, nil
}

// cutQuotedField consumes a trailing `key="..."` Go-quoted field.
func cutQuotedField(rest *string, key string) (string, error) {
	r, ok := strings.CutPrefix(*rest, key+"=")
	if !ok {
		return "", fmt.Errorf("flock: expected %s= at %q", key, *rest)
	}
	v, err := strconv.Unquote(r)
	if err != nil {
		return "", fmt.Errorf("flock: field %s: %w", key, err)
	}
	// Canonical quoting only: Unquote accepts spellings (`...`,
	// "\x41") that Quote would not emit.
	if r != strconv.Quote(v) {
		return "", fmt.Errorf("flock: non-canonical %s=%s", key, r)
	}
	*rest = ""
	return v, nil
}

// flockReplyErr scopes a damaged flock reply: the network delivered
// bytes that do not parse, so the loss is the reply's, not the job's
// — the schedd keeps the job where it is and asks again.
func flockReplyErr(cause error) *scope.Error {
	e := scope.New(scope.ScopeNetwork, "FlockReplyCorrupt",
		"flock reply did not survive transit: %v", cause)
	e.Kind = scope.KindEscaping
	return e
}

// TruncateFlockReply returns the body with its flock payload cut to
// at most n bytes, for fault injection; non-flock bodies pass through
// unchanged.  Exported so the fault injector can damage the payload
// without knowing the daemon's message types.
func TruncateFlockReply(body any, n int) any {
	m, ok := body.(flockReplyMsg)
	if !ok {
		return body
	}
	if n < 0 {
		n = 0
	}
	if n < len(m.Payload) {
		m.Payload = m.Payload[:n]
	}
	return m
}
