package daemon

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/sim"
)

// testMachineAd builds a plain machine ad for direct-drive tests.
func testMachineAd(name string, mem int64, hasJava bool) *classad.Ad {
	ad := classad.NewAd()
	ad.SetString("Machine", name)
	ad.SetInt("Memory", mem)
	ad.SetBool("HasJava", hasJava)
	ad.SetString("OpSys", "LINUX")
	return ad
}

// directMatchmaker builds a matchmaker whose periodic cycle never
// fires inside the test window, so tests drive Negotiate explicitly.
func directMatchmaker(seed int64, params Params) (*sim.Engine, *Matchmaker) {
	eng := sim.New(seed)
	bus := sim.NewBus(eng, 0)
	params.NegotiationInterval = 1000 * time.Hour
	m := NewMatchmaker(bus, params)
	bus.Register("schedd", sim.ActorFunc(func(sim.Message) {}))
	return eng, m
}

// TestMachineAdExpiryLeavesIndex checks that a silent machine vanishes
// from the machine map AND from the incremental attribute index, and
// that the expiry is counted.
func TestMachineAdExpiryLeavesIndex(t *testing.T) {
	params := DefaultParams()
	params.MachineAdLifetime = 2 * time.Minute
	eng, m := directMatchmaker(1, params)

	for i := 0; i < 4; i++ {
		m.AdvertiseMachine(fmt.Sprintf("m%d", i), testMachineAd(fmt.Sprintf("m%d", i), 1024, true))
	}
	if m.MachineCount() != 4 {
		t.Fatalf("MachineCount=%d want 4", m.MachineCount())
	}
	idx := m.IndexedMachines()
	if idx == 0 {
		t.Fatal("constant attributes should be indexed")
	}

	// One machine refreshes later; the other three go silent.
	eng.RunFor(time.Minute)
	m.AdvertiseMachine("m0", testMachineAd("m0", 1024, true))
	eng.RunFor(90 * time.Second) // past the original ads' lifetime
	m.Negotiate()

	if m.MachineCount() != 1 {
		t.Errorf("MachineCount=%d want 1 after expiry", m.MachineCount())
	}
	if m.AdsExpired != 3 {
		t.Errorf("AdsExpired=%d want 3", m.AdsExpired)
	}
	if got := m.IndexedMachines(); got != idx/4 {
		t.Errorf("IndexedMachines=%d want %d: expired entries left in the index", got, idx/4)
	}

	eng.RunFor(2 * time.Hour)
	m.Negotiate()
	if m.MachineCount() != 0 || m.IndexedMachines() != 0 {
		t.Errorf("after full expiry: machines=%d indexed=%d want 0/0",
			m.MachineCount(), m.IndexedMachines())
	}
	if m.AdsExpired != 4 {
		t.Errorf("AdsExpired=%d want 4", m.AdsExpired)
	}
}

// TestReadvertiseUpdatesIndex checks that a machine whose ad changes
// is re-indexed under its new constants: a job needing Java stops
// matching a machine that re-advertises without it.
func TestReadvertiseUpdatesIndex(t *testing.T) {
	_, m := directMatchmaker(1, DefaultParams())
	m.AdvertiseMachine("m0", testMachineAd("m0", 1024, true))
	idx := m.IndexedMachines()

	m.AdvertiseJob("schedd", 1, NewJavaJobAd("alice", 128))
	m.Negotiate()
	if m.MatchesMade != 1 {
		t.Fatalf("MatchesMade=%d want 1", m.MatchesMade)
	}

	// The machine re-advertises with Java gone; same index footprint,
	// different bucket.
	m.AdvertiseMachine("m0", testMachineAd("m0", 1024, false))
	if got := m.IndexedMachines(); got != idx {
		t.Errorf("IndexedMachines=%d want %d after re-advertise", got, idx)
	}
	m.AdvertiseJob("schedd", 2, NewJavaJobAd("alice", 128))
	m.Negotiate()
	if m.MatchesMade != 1 {
		t.Errorf("MatchesMade=%d want 1: job matched a machine that lost Java", m.MatchesMade)
	}
	if m.PendingJobs() != 1 {
		t.Errorf("PendingJobs=%d want 1", m.PendingJobs())
	}
}

// TestReadvertiseClearsProvisionalMatch checks that a machine handed
// out in one cycle becomes visible again when its next ad arrives.
func TestReadvertiseClearsProvisionalMatch(t *testing.T) {
	_, m := directMatchmaker(1, DefaultParams())
	ad := testMachineAd("m0", 1024, true)
	m.AdvertiseMachine("m0", ad)
	m.AdvertiseJob("schedd", 1, NewJavaJobAd("alice", 128))
	m.AdvertiseJob("schedd", 2, NewJavaJobAd("alice", 128))
	m.Negotiate()
	if m.MatchesMade != 1 {
		t.Fatalf("MatchesMade=%d want 1 (machine is provisionally taken)", m.MatchesMade)
	}
	m.Negotiate()
	if m.MatchesMade != 1 {
		t.Fatalf("matched flag ignored: second cycle re-matched a taken machine")
	}
	m.AdvertiseMachine("m0", ad) // same ad object: the cheap refresh path
	m.Negotiate()
	if m.MatchesMade != 2 {
		t.Errorf("MatchesMade=%d want 2 after the machine re-advertised", m.MatchesMade)
	}
}

// TestNegotiateSteadyStateAllocFree pins the allocation-lean core
// claim: a cycle that matches nothing allocates nothing.
func TestNegotiateSteadyStateAllocFree(t *testing.T) {
	_, m := directMatchmaker(1, DefaultParams())
	for i := 0; i < 32; i++ {
		m.AdvertiseMachine(fmt.Sprintf("m%02d", i), testMachineAd(fmt.Sprintf("m%02d", i), 512, i%4 != 0))
	}
	for i := 0; i < 16; i++ {
		// Unsatisfiable: no machine has this much memory.
		m.AdvertiseJob("schedd", JobID(i+1), NewJavaJobAd(fmt.Sprintf("u%d", i%3), 1<<30))
	}
	m.Negotiate() // warm the scratch slices
	allocs := testing.AllocsPerRun(100, m.Negotiate)
	if allocs > 0 {
		t.Errorf("steady-state negotiate allocated %.1f objects per run, want 0", allocs)
	}
}
