package daemon

import (
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/sim"
)

// FlockCoordinator is a pool's flocking daemon: it tracks which peer
// negotiators are alive by pinging them, and answers a starved
// schedd's query with the first live peer at or past the requested
// flocking level.  Liveness is decided by time, not by messages
// (Section 5): a negotiator that has not answered a ping for three
// intervals is presumed dead and skipped, so a grant never points a
// job at a pool that cannot negotiate for it.
type FlockCoordinator struct {
	bus    Runtime
	params Params
	name   string
	tr     obs.Tracer

	// peers is the configured flocking order (Params.FlockTo).
	peers []string
	// lastPong is the instant each peer last answered a ping; a peer
	// absent from the map has never answered.
	lastPong map[string]sim.Time
	seq      int64

	// Metrics.
	PingsSent int
	Grants    int
	Denials   int
}

// NewFlockCoordinator creates and registers a pool's flock
// coordinator and starts its peer liveness probes.
func NewFlockCoordinator(bus Runtime, params Params) *FlockCoordinator {
	name := params.Flockd
	bus = affinity(bus, name)
	f := &FlockCoordinator{
		bus:      bus,
		params:   params,
		name:     name,
		tr:       params.tracer(),
		peers:    params.FlockTo,
		lastPong: make(map[string]sim.Time),
	}
	bus.Register(name, f)
	bus.Every(params.flockPingInterval(), f.ping)
	// Probe immediately: Every's first firing is one interval out,
	// and a grant decision before the first pong would wrongly read
	// every peer as dead.
	f.ping()
	return f
}

// Name returns the coordinator's actor name.
func (f *FlockCoordinator) Name() string { return f.name }

// Receive implements sim.Actor.
func (f *FlockCoordinator) Receive(msg sim.Message) {
	switch body := msg.Body.(type) {
	case flockPongMsg:
		f.lastPong[body.From] = f.bus.Now()
	case flockQueryMsg:
		f.handleQuery(body)
	}
}

// ping probes every configured peer negotiator.
func (f *FlockCoordinator) ping() {
	f.seq++
	for _, p := range f.peers {
		f.PingsSent++
		f.bus.Send(f.name, p, kindFlockPing, flockPingMsg{From: f.name, Seq: f.seq})
	}
}

// alive reports whether the peer has answered a ping recently enough
// to be trusted with a job.
func (f *FlockCoordinator) alive(peer string) bool {
	t, ok := f.lastPong[peer]
	if !ok {
		return false
	}
	return f.bus.Now().Sub(t) <= 3*f.params.flockPingInterval()
}

// handleQuery answers a starved schedd: grant the first live peer at
// or past the requested level, or deny when the rest of the order is
// dead or exhausted.  The decision ships as the canonical flock-codec
// line, the form that crosses pool boundaries.
func (f *FlockCoordinator) handleQuery(q flockQueryMsg) {
	level := q.Level
	if level < 1 {
		level = 1
	}
	for idx := level - 1; idx < len(f.peers); idx++ {
		if peer := f.peers[idx]; f.alive(peer) {
			f.Grants++
			f.tr.Count("flockd.grants", 1)
			f.reply(q, FlockMsg{Op: FlockGrant, Job: q.Job,
				Level: idx + 1, Negotiator: peer})
			return
		}
	}
	f.Denials++
	f.tr.Count("flockd.denials", 1)
	f.reply(q, FlockMsg{Op: FlockDeny, Job: q.Job,
		Reason: "no live peer pool at or past the requested level"})
}

func (f *FlockCoordinator) reply(q flockQueryMsg, m FlockMsg) {
	f.bus.Send(f.name, q.Schedd, kindFlockReply,
		flockReplyMsg{Job: q.Job, Payload: EncodeFlockMsg(m)})
}
