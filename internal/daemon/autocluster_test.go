package daemon

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/sim"
)

// TestAutoClusterScansOncePerCycle pins the negotiation complexity
// win: jobs with byte-identical ads share one candidate scan per
// cycle, and successive cluster members take successive machines —
// exactly the assignment the per-job scan would make.
func TestAutoClusterScansOncePerCycle(t *testing.T) {
	_, m := directMatchmaker(1, DefaultParams())
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("m%d", i)
		m.AdvertiseMachine(name, testMachineAd(name, int64(512+256*i), true))
	}
	for i := 1; i <= 4; i++ {
		m.AdvertiseJob("schedd", JobID(i), NewJavaJobAd("alice", 128))
	}
	m.Negotiate()
	if m.MatchesMade != 4 {
		t.Fatalf("MatchesMade = %d, want 4", m.MatchesMade)
	}
	if m.ClusterScans != 1 {
		t.Errorf("ClusterScans = %d, want 1: identical ads must share one scan", m.ClusterScans)
	}

	// A job with a different ad is its own cluster; the first
	// cluster's jobs all matched and left, so the second cycle scans
	// exactly once more.
	m.AdvertiseJob("schedd", 5, NewJavaJobAd("alice", 256))
	m.Negotiate()
	if m.ClusterScans != 2 {
		t.Errorf("ClusterScans = %d, want 2: one new cluster, one new scan", m.ClusterScans)
	}
}

// TestAutoClusterMatchesReferenceOrder compares the clustered fast
// path against the reference scan job for job: same machines, same
// rank-descending assignment, rank ties broken by name order.
func TestAutoClusterMatchesReferenceOrder(t *testing.T) {
	assign := func(disableFast bool) []string {
		params := DefaultParams()
		params.DisableMatchFastPath = disableFast
		params.NegotiationInterval = 1000 * time.Hour
		eng := sim.New(1)
		bus := sim.NewBus(eng, 0)
		m := NewMatchmaker(bus, params)
		var got []string
		bus.Register("schedd", sim.ActorFunc(func(msg sim.Message) {
			if n, ok := msg.Body.(matchNotifyMsg); ok {
				got = append(got, fmt.Sprintf("%d->%s", n.Job, n.Machine))
			}
		}))
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("m%d", i)
			// Rank = target.Memory; two distinct tiers plus a tie
			// group exercise both the ordering and the stable
			// first-by-name tie-break.
			mem := int64(1024)
			if i%2 == 0 {
				mem = int64(2048 - 128*i)
			}
			m.AdvertiseMachine(name, testMachineAd(name, mem, true))
		}
		for i := 1; i <= 6; i++ {
			m.AdvertiseJob("schedd", JobID(i), NewJavaJobAd("alice", 128))
		}
		m.Negotiate()
		eng.RunFor(time.Second)
		return got
	}
	fast, slow := assign(false), assign(true)
	if fmt.Sprint(fast) != fmt.Sprint(slow) {
		t.Fatalf("clustered assignment %v differs from reference %v", fast, slow)
	}
	want := []string{"1->m0", "2->m2", "3->m4", "4->m1", "5->m3", "6->m5"}
	if fmt.Sprint(fast) != fmt.Sprint(want) {
		t.Errorf("assignment = %v, want %v (rank order, ties by name)", fast, want)
	}
}
