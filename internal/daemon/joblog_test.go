package daemon

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
)

func eventKinds(j *Job) []EventKind {
	out := make([]EventKind, len(j.Events))
	for i, e := range j.Events {
		out[i] = e.Kind
	}
	return out
}

func containsSeq(got []EventKind, want ...EventKind) bool {
	i := 0
	for _, k := range got {
		if i < len(want) && k == want[i] {
			i++
		}
	}
	return i == len(want)
}

func TestEventLogHappyPath(t *testing.T) {
	eng, _, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 2*time.Hour)
	j := schedd.Job(id)
	if !containsSeq(eventKinds(j), EventSubmitted, EventMatched, EventExecuting, EventCompleted) {
		t.Errorf("events = %v", eventKinds(j))
	}
	log := j.EventLog()
	for _, want := range []string{"submitted", "matched", "machine m1", "executing", "completed"} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

func TestEventLogRequeuePath(t *testing.T) {
	params := DefaultParams()
	params.ChronicFailureThreshold = 1
	bad := MachineConfig{Name: "bad", Memory: 4096, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	eng, _, schedd, _, _ := testPool(t, params, bad, goodMachine("good"))
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 6*time.Hour)
	j := schedd.Job(id)
	if !containsSeq(eventKinds(j),
		EventSubmitted, EventMatched, EventExecuting, EventRequeued,
		EventMatched, EventExecuting, EventCompleted) {
		t.Errorf("events = %v", eventKinds(j))
	}
	if !strings.Contains(j.EventLog(), "remote-resource scope error at bad") {
		t.Errorf("log:\n%s", j.EventLog())
	}
}

func TestEventLogUnexecutable(t *testing.T) {
	eng, _, schedd, _, _ := testPool(t, DefaultParams(), goodMachine("m1"))
	id := submitJavaJob(schedd, jvm.CorruptImage())
	runUntilDone(t, eng, schedd, 2*time.Hour)
	j := schedd.Job(id)
	if !containsSeq(eventKinds(j), EventSubmitted, EventUnexecutable) {
		t.Errorf("events = %v", eventKinds(j))
	}
}

func TestEventLogLostContact(t *testing.T) {
	params := DefaultParams()
	params.ResultTimeout = 30 * time.Minute
	eng, _, schedd, _, startds := testPool(t, params, goodMachine("m1"), goodMachine("m2"))
	id := submitJavaJob(schedd, jvm.WellBehaved(10*time.Minute))
	eng.After(3*time.Minute, func() { startds[0].Crash() })
	// m1 and m2 rank equally; the first match lands on m1
	// (alphabetical tie-break).
	runUntilDone(t, eng, schedd, 24*time.Hour)
	j := schedd.Job(id)
	kinds := eventKinds(j)
	if !containsSeq(kinds, EventSubmitted, EventLostContact, EventCompleted) {
		t.Errorf("events = %v\n%s", kinds, j.EventLog())
	}
}

func TestEventLogHeld(t *testing.T) {
	params := DefaultParams()
	params.MaxAttempts = 2
	bad := MachineConfig{Name: "bad", Memory: 2048, AdvertiseJava: true,
		JVM: jvm.Config{BadLibraryPath: true}}
	eng, _, schedd, _, _ := testPool(t, params, bad)
	id := submitJavaJob(schedd, jvm.WellBehaved(time.Minute))
	runUntilDone(t, eng, schedd, 12*time.Hour)
	j := schedd.Job(id)
	if !containsSeq(eventKinds(j), EventSubmitted, EventRequeued, EventHeld) {
		t.Errorf("events = %v", eventKinds(j))
	}
}

func TestJobEventString(t *testing.T) {
	e := JobEvent{At: 0, Kind: EventSubmitted}
	if !strings.Contains(e.String(), "submitted") {
		t.Errorf("got %q", e.String())
	}
	e2 := JobEvent{At: 0, Kind: EventMatched, Detail: "machine x"}
	if !strings.Contains(e2.String(), "machine x") {
		t.Errorf("got %q", e2.String())
	}
}
