package jvm

import (
	"reflect"
	"testing"
	"time"

	"github.com/errscope/grid/internal/scope"
)

func TestProgramCodecRoundTrip(t *testing.T) {
	progs := []*Program{
		nil,
		WellBehaved(time.Minute),
		ExitWith(3, 250*time.Millisecond),
		NullPointer(),
		MemoryHog(64 << 20),
		CorruptImage(),
		ReadsInput("/home/user/in.dat", 4096),
		{
			Class: "Spaced Out",
			Steps: []Step{
				Compute{Duration: time.Second},
				Allocate{Bytes: 1024},
				Free{Bytes: 512},
				Throw{Exception: "IOException", Message: `quoted "path" and spaces`, Scope: scope.ScopeRemoteResource},
				IOWrite{Path: "/tmp/out file", Offset: 9, Data: []byte("bytes with \n newline")},
				Exit{Code: -1},
			},
		},
	}
	for i, p := range progs {
		enc := EncodeProgram(p)
		got, err := ParseProgram(enc)
		if err != nil {
			t.Fatalf("prog %d: parse %q: %v", i, enc, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("prog %d: round trip changed program:\n got %#v\nwant %#v", i, got, p)
		}
		// Determinism: encoding is byte-stable.
		if enc2 := EncodeProgram(got); enc2 != enc {
			t.Fatalf("prog %d: unstable encoding:\n%q\n%q", i, enc, enc2)
		}
	}
}

func TestProgramCodecRejectsMalformed(t *testing.T) {
	bad := []string{
		"not a program",
		"program class=Main corrupt=maybe\n",
		"program class=Main corrupt=false\nwarp factor=9\n",
		"program class=Main corrupt=false\ncompute dur=abc\n",
		"program class=Main corrupt=false\nthrow exception=\"E\" message=\"m\" scope=nope\n",
		"program class=\"Main corrupt=false\n", // unterminated quote
	}
	for _, src := range bad {
		if p, err := ParseProgram(src); err == nil {
			t.Fatalf("parse %q succeeded: %#v", src, p)
		}
	}
}
