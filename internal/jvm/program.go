package jvm

import (
	"time"

	"github.com/errscope/grid/internal/scope"
)

// Program is a simulated Java program: a main class plus the sequence
// of steps main performs.  Programs are immutable descriptions and
// safe to share between executions.
type Program struct {
	// Class is the main class name.
	Class string
	// ImageCorrupt marks a damaged class file: loading it throws
	// ClassFormatError, an error of job scope (the job can never
	// run anywhere).
	ImageCorrupt bool
	// Steps are executed in order until one terminates execution.
	Steps []Step
}

// Step is one action of a simulated program.
type Step interface{ isStep() }

// Compute consumes virtual CPU time.
type Compute struct{ Duration time.Duration }

// Allocate grows the heap; exceeding the installation's limit throws
// OutOfMemoryError (virtual-machine scope).
type Allocate struct{ Bytes int64 }

// Free shrinks the heap.
type Free struct{ Bytes int64 }

// Throw raises an exception.  Scope defaults to program scope — a
// program-generated exception is a program result the user wants to
// see.  A non-program scope models an environmental error surfacing
// inside the VM.
type Throw struct {
	Exception string
	Message   string
	Scope     scope.Scope
}

// Exit calls System.exit(Code).
type Exit struct{ Code int }

// IORead reads from the attached I/O system.
type IORead struct {
	Path   string
	Offset int64
	Length int
}

// IOWrite writes to the attached I/O system.
type IOWrite struct {
	Path   string
	Offset int64
	Data   []byte
}

func (Compute) isStep()  {}
func (Allocate) isStep() {}
func (Free) isStep()     {}
func (Throw) isStep()    {}
func (Exit) isStep()     {}
func (IORead) isStep()   {}
func (IOWrite) isStep()  {}

// Convenience program builders used across tests, benchmarks, and the
// Figure 4 experiment.

// WellBehaved returns a program that computes for d and exits 0.
func WellBehaved(d time.Duration) *Program {
	return &Program{Class: "Main", Steps: []Step{Compute{Duration: d}}}
}

// ExitWith returns a program that calls System.exit(code).
func ExitWith(code int, d time.Duration) *Program {
	return &Program{Class: "Main", Steps: []Step{Compute{Duration: d}, Exit{Code: code}}}
}

// NullPointer returns a program that dereferences a null pointer.
func NullPointer() *Program {
	return &Program{Class: "Main", Steps: []Step{
		Compute{Duration: time.Millisecond},
		Throw{Exception: "NullPointerException", Message: "at Main.run(Main.java:17)"},
	}}
}

// MemoryHog returns a program that allocates bytes of heap.
func MemoryHog(bytes int64) *Program {
	return &Program{Class: "Main", Steps: []Step{Allocate{Bytes: bytes}}}
}

// CorruptImage returns a program whose class file is damaged.
func CorruptImage() *Program {
	return &Program{Class: "Main", ImageCorrupt: true}
}

// ReadsInput returns a program that reads length bytes of path.
func ReadsInput(path string, length int) *Program {
	return &Program{Class: "Main", Steps: []Step{
		IORead{Path: path, Length: length},
		Compute{Duration: time.Millisecond},
	}}
}
