package jvm

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/scope"
)

func TestCleanExit(t *testing.T) {
	m := New(Config{})
	exec := m.Execute(WellBehaved(10*time.Millisecond), nil)
	if exec.ExitCode != 0 || exec.Thrown != nil || !exec.Completed {
		t.Fatalf("exec = %+v", exec)
	}
	if exec.CPU != 10*time.Millisecond {
		t.Errorf("cpu = %v", exec.CPU)
	}
}

func TestSystemExit(t *testing.T) {
	m := New(Config{})
	exec := m.Execute(ExitWith(42, time.Millisecond), nil)
	if exec.ExitCode != 42 || exec.Thrown != nil || !exec.Completed {
		t.Fatalf("exec = %+v", exec)
	}
	// Steps after Exit never run.
	prog := &Program{Class: "Main", Steps: []Step{Exit{Code: 7}, Compute{Duration: time.Hour}}}
	exec = m.Execute(prog, nil)
	if exec.CPU != 0 || exec.ExitCode != 7 {
		t.Errorf("exec = %+v", exec)
	}
}

func TestProgramException(t *testing.T) {
	m := New(Config{})
	exec := m.Execute(NullPointer(), nil)
	if exec.ExitCode != 1 || exec.Completed {
		t.Fatalf("exec = %+v", exec)
	}
	if exec.Thrown == nil || exec.Thrown.Name != "NullPointerException" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeProgram || exec.Thrown.Escaping {
		t.Errorf("program exception misclassified: %+v", exec.Thrown)
	}
}

func TestOutOfMemory(t *testing.T) {
	m := New(Config{HeapLimit: 1 << 20})
	exec := m.Execute(MemoryHog(2<<20), nil)
	if exec.Thrown == nil || exec.Thrown.Name != "OutOfMemoryError" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeVirtualMachine || !exec.Thrown.Escaping {
		t.Errorf("OOM misclassified: %+v", exec.Thrown)
	}
	if exec.ExitCode != 1 {
		t.Errorf("exit = %d", exec.ExitCode)
	}
	// Allocation within the limit is fine; Free releases.
	prog := &Program{Class: "M", Steps: []Step{
		Allocate{Bytes: 900 << 10},
		Free{Bytes: 800 << 10},
		Allocate{Bytes: 800 << 10},
	}}
	exec = m.Execute(prog, nil)
	if exec.Thrown != nil {
		t.Errorf("alloc/free cycle should fit: %+v", exec.Thrown)
	}
	if exec.PeakHeap != 900<<10 {
		t.Errorf("peak = %d", exec.PeakHeap)
	}
}

func TestFreeNeverGoesNegative(t *testing.T) {
	m := New(Config{HeapLimit: 100})
	prog := &Program{Class: "M", Steps: []Step{
		Free{Bytes: 1000},
		Allocate{Bytes: 90},
	}}
	exec := m.Execute(prog, nil)
	if exec.Thrown != nil {
		t.Errorf("exec = %+v", exec.Thrown)
	}
}

func TestDefaultHeap(t *testing.T) {
	m := New(Config{})
	if m.Config().HeapLimit != DefaultHeap {
		t.Errorf("heap = %d", m.Config().HeapLimit)
	}
	exec := m.Execute(MemoryHog(DefaultHeap+1), nil)
	if exec.Thrown == nil || exec.Thrown.Name != "OutOfMemoryError" {
		t.Errorf("thrown = %+v", exec.Thrown)
	}
}

func TestBrokenInstallation(t *testing.T) {
	m := New(Config{Broken: true})
	exec := m.Execute(WellBehaved(time.Second), nil)
	if exec.ExitCode != 1 || exec.CPU != 0 {
		t.Fatalf("exec = %+v", exec)
	}
	if exec.Thrown.Name != "JVMStartError" || exec.Thrown.Scope != scope.ScopeRemoteResource {
		t.Errorf("thrown = %+v", exec.Thrown)
	}
}

func TestBadLibraryPath(t *testing.T) {
	m := New(Config{BadLibraryPath: true})
	exec := m.Execute(WellBehaved(time.Second), nil)
	if exec.Thrown == nil || exec.Thrown.Name != "NoClassDefFoundError" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeRemoteResource || !exec.Thrown.Escaping {
		t.Errorf("misconfiguration misclassified: %+v", exec.Thrown)
	}
}

func TestCorruptImage(t *testing.T) {
	m := New(Config{})
	exec := m.Execute(CorruptImage(), nil)
	if exec.Thrown == nil || exec.Thrown.Name != "ClassFormatError" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeJob {
		t.Errorf("corrupt image should be job scope: %+v", exec.Thrown)
	}
}

func TestMissingProgram(t *testing.T) {
	m := New(Config{})
	for _, prog := range []*Program{nil, {Class: ""}} {
		exec := m.Execute(prog, nil)
		if exec.Thrown == nil || exec.Thrown.Scope != scope.ScopeJob {
			t.Errorf("missing program: %+v", exec.Thrown)
		}
	}
}

// fakeIO lets tests inject I/O outcomes.
type fakeIO struct {
	readErr  error
	writeErr error
	data     []byte
}

func (f *fakeIO) Read(path string, off int64, n int) ([]byte, error) {
	if f.readErr != nil {
		return nil, f.readErr
	}
	return f.data, nil
}

func (f *fakeIO) Write(path string, off int64, data []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	return len(data), nil
}

func TestIOSuccess(t *testing.T) {
	m := New(Config{})
	io := &fakeIO{data: []byte("x")}
	prog := &Program{Class: "M", Steps: []Step{
		IORead{Path: "/in", Length: 1},
		IOWrite{Path: "/out", Data: []byte("y")},
	}}
	exec := m.Execute(prog, io)
	if exec.Thrown != nil || exec.ExitCode != 0 {
		t.Fatalf("exec = %+v thrown=%+v", exec, exec.Thrown)
	}
}

func TestIOExplicitFileErrorIsProgramVisible(t *testing.T) {
	// A FileNotFound explicit error from the I/O library arrives as
	// an exception the program (and the user) should see.
	m := New(Config{})
	io := &fakeIO{readErr: scope.New(scope.ScopeProgram, "FileNotFoundException", "/in")}
	exec := m.Execute(ReadsInput("/in", 10), io)
	if exec.Thrown == nil || exec.Thrown.Name != "FileNotFoundException" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeProgram || exec.Thrown.Escaping {
		t.Errorf("file error misclassified: %+v", exec.Thrown)
	}
}

func TestIOEscapingErrorStopsExecution(t *testing.T) {
	// A connection timeout escaping from the I/O library must carry
	// its wider scope through the VM.
	m := New(Config{})
	esc := scope.New(scope.ScopeLocalResource, "ConnectionTimedOutException", "shadow gone")
	esc.Kind = scope.KindEscaping
	io := &fakeIO{writeErr: esc}
	prog := &Program{Class: "M", Steps: []Step{IOWrite{Path: "/out", Data: []byte("z")}}}
	exec := m.Execute(prog, io)
	if exec.Thrown == nil || !exec.Thrown.Escaping {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
	if exec.Thrown.Scope != scope.ScopeLocalResource {
		t.Errorf("scope = %v", exec.Thrown.Scope)
	}
	if exec.ExitCode != 1 {
		t.Errorf("exit = %d", exec.ExitCode)
	}
}

func TestIOPlainErrorEscapes(t *testing.T) {
	m := New(Config{})
	io := &fakeIO{readErr: errPlain{}}
	exec := m.Execute(ReadsInput("/in", 1), io)
	if exec.Thrown == nil || !exec.Thrown.Escaping || exec.Thrown.Scope != scope.ScopeProcess {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
}

type errPlain struct{}

func (errPlain) Error() string { return "anonymous failure" }

func TestIOWithoutSystemIsNullPointer(t *testing.T) {
	m := New(Config{})
	exec := m.Execute(ReadsInput("/in", 1), nil)
	if exec.Thrown == nil || exec.Thrown.Name != "NullPointerException" {
		t.Fatalf("thrown = %+v", exec.Thrown)
	}
}

func TestSelfTest(t *testing.T) {
	if err := New(Config{}).SelfTest(); err != nil {
		t.Errorf("healthy install: %v", err)
	}
	for _, cfg := range []Config{{Broken: true}, {BadLibraryPath: true}} {
		err := New(cfg).SelfTest()
		if err == nil {
			t.Errorf("self-test of %+v should fail", cfg)
			continue
		}
		if scope.ScopeOf(err) != scope.ScopeRemoteResource {
			t.Errorf("self-test error scope = %v", scope.ScopeOf(err))
		}
	}
}

// TestFigure4ResultCodes reproduces the Figure 4 table: the execution
// details, their true error scopes, and the JVM result code — which
// collapses everything abnormal to 1.
func TestFigure4ResultCodes(t *testing.T) {
	offlineErr := scope.New(scope.ScopeLocalResource, "ConnectionTimedOutException", "home file system offline")
	offlineErr.Kind = scope.KindEscaping

	rows := []struct {
		detail    string
		m         *Machine
		prog      *Program
		io        FileOps
		wantScope scope.Scope // the true scope (ScopeNone for clean exits)
		wantCode  int
	}{
		{"completed main", New(Config{}), WellBehaved(time.Millisecond), nil, scope.ScopeNone, 0},
		{"System.exit(x)", New(Config{}), ExitWith(5, 0), nil, scope.ScopeNone, 5},
		{"null pointer", New(Config{}), NullPointer(), nil, scope.ScopeProgram, 1},
		{"not enough memory", New(Config{HeapLimit: 1024}), MemoryHog(1 << 20), nil, scope.ScopeVirtualMachine, 1},
		{"misconfigured installation", New(Config{BadLibraryPath: true}), WellBehaved(0), nil, scope.ScopeRemoteResource, 1},
		{"home file system offline", New(Config{}), ReadsInput("/in", 8), &fakeIO{readErr: offlineErr}, scope.ScopeLocalResource, 1},
		{"corrupt program image", New(Config{}), CorruptImage(), nil, scope.ScopeJob, 1},
	}
	seenExit1 := 0
	for _, row := range rows {
		exec := row.m.Execute(row.prog, row.io)
		if exec.ExitCode != row.wantCode {
			t.Errorf("%s: exit = %d, want %d", row.detail, exec.ExitCode, row.wantCode)
		}
		if row.wantScope == scope.ScopeNone {
			if exec.Thrown != nil {
				t.Errorf("%s: unexpected exception %+v", row.detail, exec.Thrown)
			}
			continue
		}
		if exec.Thrown == nil {
			t.Errorf("%s: expected exception", row.detail)
			continue
		}
		if exec.Thrown.Scope != row.wantScope {
			t.Errorf("%s: scope = %v, want %v", row.detail, exec.Thrown.Scope, row.wantScope)
		}
		if exec.ExitCode == 1 {
			seenExit1++
		}
	}
	// The information loss: five distinct scopes, one exit code.
	if seenExit1 != 5 {
		t.Errorf("exit code 1 appeared %d times, want 5 — the table's point", seenExit1)
	}
}

func TestThrownNameContainsDetail(t *testing.T) {
	m := New(Config{BadLibraryPath: true})
	exec := m.Execute(WellBehaved(0), nil)
	if !strings.Contains(exec.Thrown.Message, "standard library") {
		t.Errorf("message = %q", exec.Thrown.Message)
	}
}
