package jvm

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/scope"
)

// Program serialization for the schedd's write-ahead journal.  A
// submitted job's program must survive a schedd crash, so the submit
// record carries the program in this line-based form: one header line
// (class name and image flag), then one line per step.  The encoding
// is deterministic — identical programs encode to identical bytes — so
// journaled logs stay byte-stable per seed.

// EncodeProgram renders p into the journal line form.  A nil program
// encodes to the empty string and decodes back to nil.
func EncodeProgram(p *Program) string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "program class=%s corrupt=%t\n", strconv.Quote(p.Class), p.ImageCorrupt)
	for _, s := range p.Steps {
		switch s := s.(type) {
		case Compute:
			fmt.Fprintf(&b, "compute dur=%d\n", int64(s.Duration))
		case Allocate:
			fmt.Fprintf(&b, "allocate bytes=%d\n", s.Bytes)
		case Free:
			fmt.Fprintf(&b, "free bytes=%d\n", s.Bytes)
		case Throw:
			fmt.Fprintf(&b, "throw exception=%s message=%s scope=%s\n",
				strconv.Quote(s.Exception), strconv.Quote(s.Message), s.Scope)
		case Exit:
			fmt.Fprintf(&b, "exit code=%d\n", s.Code)
		case IORead:
			fmt.Fprintf(&b, "ioread path=%s offset=%d length=%d\n",
				strconv.Quote(s.Path), s.Offset, s.Length)
		case IOWrite:
			fmt.Fprintf(&b, "iowrite path=%s offset=%d data=%s\n",
				strconv.Quote(s.Path), s.Offset, strconv.Quote(string(s.Data)))
		default:
			// A step type the codec does not know cannot be made
			// durable; fail loudly rather than journal a lie.
			panic(fmt.Sprintf("jvm: EncodeProgram: unknown step type %T", s))
		}
	}
	return b.String()
}

// ParseProgram decodes the output of EncodeProgram.  Any deviation
// from the expected form is an error: the journal frames its records
// with checksums, so a malformed program is a logic bug, not a torn
// write.
func ParseProgram(src string) (*Program, error) {
	if src == "" {
		return nil, nil
	}
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	head, err := fields(lines[0], "program")
	if err != nil {
		return nil, err
	}
	p := &Program{}
	if p.Class, err = unquote(head, "class"); err != nil {
		return nil, err
	}
	if p.ImageCorrupt, err = parseBool(head, "corrupt"); err != nil {
		return nil, err
	}
	for _, line := range lines[1:] {
		kind, _, _ := strings.Cut(line, " ")
		kv, err := fields(line, kind)
		if err != nil {
			return nil, err
		}
		var step Step
		switch kind {
		case "compute":
			d, err := parseInt(kv, "dur")
			if err != nil {
				return nil, err
			}
			step = Compute{Duration: time.Duration(d)}
		case "allocate":
			n, err := parseInt(kv, "bytes")
			if err != nil {
				return nil, err
			}
			step = Allocate{Bytes: n}
		case "free":
			n, err := parseInt(kv, "bytes")
			if err != nil {
				return nil, err
			}
			step = Free{Bytes: n}
		case "throw":
			var t Throw
			if t.Exception, err = unquote(kv, "exception"); err != nil {
				return nil, err
			}
			if t.Message, err = unquote(kv, "message"); err != nil {
				return nil, err
			}
			// A Throw's scope defaults to zero (program scope at run
			// time); ParseScope rejects "none", so special-case it.
			if kv["scope"] != scope.ScopeNone.String() {
				if t.Scope, err = scope.ParseScope(kv["scope"]); err != nil {
					return nil, fmt.Errorf("jvm: parse program: throw scope: %w", err)
				}
			}
			step = t
		case "exit":
			c, err := parseInt(kv, "code")
			if err != nil {
				return nil, err
			}
			step = Exit{Code: int(c)}
		case "ioread":
			var r IORead
			if r.Path, err = unquote(kv, "path"); err != nil {
				return nil, err
			}
			if r.Offset, err = parseInt(kv, "offset"); err != nil {
				return nil, err
			}
			n, err := parseInt(kv, "length")
			if err != nil {
				return nil, err
			}
			r.Length = int(n)
			step = r
		case "iowrite":
			var w IOWrite
			if w.Path, err = unquote(kv, "path"); err != nil {
				return nil, err
			}
			if w.Offset, err = parseInt(kv, "offset"); err != nil {
				return nil, err
			}
			data, err := unquote(kv, "data")
			if err != nil {
				return nil, err
			}
			w.Data = []byte(data)
			step = w
		default:
			return nil, fmt.Errorf("jvm: parse program: unknown step %q", kind)
		}
		p.Steps = append(p.Steps, step)
	}
	return p, nil
}

// fields splits "kind k1=v1 k2=v2 ..." into its key/value pairs,
// checking the leading kind token.  Quoted values may contain spaces;
// the splitter respects strconv.Quote escaping.
func fields(line, kind string) (map[string]string, error) {
	rest, ok := strings.CutPrefix(line, kind)
	if !ok {
		return nil, fmt.Errorf("jvm: parse program: line %q is not a %q record", line, kind)
	}
	kv := map[string]string{}
	for rest != "" {
		rest = strings.TrimPrefix(rest, " ")
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("jvm: parse program: malformed field in %q", line)
		}
		key := rest[:eq]
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, `"`) {
			// Quoted value: find its closing quote by scanning past
			// backslash escapes.
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return nil, fmt.Errorf("jvm: parse program: unterminated quote in %q", line)
			}
			val, rest = rest[:end+1], rest[end+1:]
		} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			val, rest = rest[:sp], rest[sp:]
		} else {
			val, rest = rest, ""
		}
		kv[key] = val
	}
	return kv, nil
}

func unquote(kv map[string]string, key string) (string, error) {
	v, ok := kv[key]
	if !ok {
		return "", fmt.Errorf("jvm: parse program: missing field %q", key)
	}
	s, err := strconv.Unquote(v)
	if err != nil {
		return "", fmt.Errorf("jvm: parse program: field %q: %w", key, err)
	}
	return s, nil
}

func parseInt(kv map[string]string, key string) (int64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("jvm: parse program: missing field %q", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("jvm: parse program: field %q: %w", key, err)
	}
	return n, nil
}

func parseBool(kv map[string]string, key string) (bool, error) {
	v, ok := kv[key]
	if !ok {
		return false, fmt.Errorf("jvm: parse program: missing field %q", key)
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("jvm: parse program: field %q: %w", key, err)
	}
	return b, nil
}
