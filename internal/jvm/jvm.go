// Package jvm simulates the Java Virtual Machine of the Condor Java
// Universe.  The simulation reproduces the JVM's *error surface* — the
// exceptions it throws and, critically, the exit codes it reports —
// rather than executing bytecode: programs are specifications of
// steps (compute, allocate, I/O, throw, exit).
//
// The package faithfully reproduces the behaviour of Figure 4 of the
// paper: the JVM result code does not distinguish error scopes.  A
// result of 1 may mean the program dereferenced a null pointer, ran
// out of memory, found the Java installation misconfigured, lost its
// home file system, or was given a corrupt class file.  Recovering
// the scope requires the program wrapper of package wrapper.
package jvm

import (
	"time"

	"github.com/errscope/grid/internal/scope"
)

// Config describes a Java installation as the machine owner set it
// up.  The owner's configuration is exactly the kind of unverified
// assertion Section 5 of the paper warns about.
type Config struct {
	// Version is the advertised JVM version string.
	Version string
	// HeapLimit is the maximum heap in bytes; 0 means 64 MiB.
	HeapLimit int64
	// Broken marks an installation so damaged the JVM cannot start
	// at all: no program (and no wrapper) runs, and the process
	// exits 1 with no further information.
	Broken bool
	// BadLibraryPath marks an installation whose standard library
	// path is wrong: the JVM starts, but loading any class fails
	// with NoClassDefFoundError.
	BadLibraryPath bool
}

// DefaultHeap is the heap limit used when Config.HeapLimit is zero.
const DefaultHeap = 64 << 20

// Machine is a simulated JVM installation on one execution host.
type Machine struct {
	cfg Config
}

// New creates a Machine from the owner's configuration.
func New(cfg Config) *Machine {
	if cfg.HeapLimit == 0 {
		cfg.HeapLimit = DefaultHeap
	}
	if cfg.Version == "" {
		cfg.Version = "1.3.1"
	}
	return &Machine{cfg: cfg}
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// SelfTest verifies the installation the way the modified startd of
// Section 5 does at startup — in the spirit of Autoconf, it tests
// rather than trusts the owner's assertion.  It returns nil when the
// installation can actually run a trivial program.
func (m *Machine) SelfTest() error {
	probe := &Program{
		Class: "CondorJavaProbe",
		Steps: []Step{Compute{Duration: time.Millisecond}},
	}
	exec := m.Execute(probe, nil)
	if exec.Thrown != nil {
		return scope.New(scope.ScopeRemoteResource, exec.Thrown.Name,
			"java self-test failed: %s", exec.Thrown.Message)
	}
	if exec.ExitCode != 0 {
		return scope.New(scope.ScopeRemoteResource, "SelfTestFailed",
			"java self-test exited %d", exec.ExitCode)
	}
	return nil
}

// FileOps is the I/O service available to a program's I/O steps —
// in the real system, the Java I/O library speaking Chirp to the
// starter's proxy (package javaio provides implementations).
type FileOps interface {
	Read(path string, offset int64, length int) ([]byte, error)
	Write(path string, offset int64, data []byte) (int, error)
}

// Thrown describes an exception or error that terminated execution.
type Thrown struct {
	// Name is the Java class name, e.g. "NullPointerException".
	Name string
	// Message is the exception detail.
	Message string
	// Scope is the error's scope as known at throw time.  Program
	// exceptions carry ScopeProgram; environmental errors carry the
	// scope assigned by the layer that discovered them.
	Scope scope.Scope
	// Escaping records whether the error arrived via an escaping
	// channel (a Java Error rather than a Java Exception).
	Escaping bool
}

// Execution is the observable outcome of one JVM invocation.
type Execution struct {
	// ExitCode is what the JVM process reports to its parent.  Per
	// Figure 4 this is 0 for normal completion, x for
	// System.exit(x), and 1 for EVERY abnormal termination — it
	// does not distinguish error scopes.
	ExitCode int
	// Thrown is the exception that ended execution, nil on a clean
	// exit.  Only code running *inside* the JVM (the wrapper) can
	// see it; the starter sees just ExitCode.
	Thrown *Thrown
	// CPU is the virtual CPU time consumed before termination.
	CPU time.Duration
	// PeakHeap is the high-water heap mark in bytes.
	PeakHeap int64
	// Completed reports whether main ran to completion (including
	// System.exit, which is a deliberate program act).
	Completed bool
}

// Execute runs the program on this installation with the given I/O
// service.  It never returns a Go error: every outcome, good or bad,
// is an Execution — exactly as a real starter only ever observes a
// process exit.
func (m *Machine) Execute(prog *Program, io FileOps) *Execution {
	return m.ExecuteFrom(prog, io, 0)
}

// ExecuteFrom resumes a program from a checkpoint taken after the
// given amount of CPU progress: Compute steps consume the resume
// budget before charging new CPU.  This models the Standard
// Universe's transparent checkpointing — the process image carries
// its computation state, so only the remaining work runs.  Non-compute
// steps replay (the checkpointed image is assumed to have been taken
// at a compute boundary, the usual Condor discipline).
func (m *Machine) ExecuteFrom(prog *Program, io FileOps, resume time.Duration) *Execution {
	exec := &Execution{}
	skip := resume

	// A broken installation cannot start the JVM at all.
	if m.cfg.Broken {
		exec.ExitCode = 1
		exec.Thrown = &Thrown{
			Name:     "JVMStartError",
			Message:  "the java installation could not start",
			Scope:    scope.ScopeRemoteResource,
			Escaping: true,
		}
		return exec
	}
	// A bad library path breaks class loading for every program.
	if m.cfg.BadLibraryPath {
		exec.fail("NoClassDefFoundError",
			"java.lang.Object: standard library not found on configured path",
			scope.ScopeRemoteResource, true)
		return exec
	}
	if prog == nil || prog.Class == "" {
		exec.fail("MissingInputFileError", "no program image supplied", scope.ScopeJob, true)
		return exec
	}
	if prog.ImageCorrupt {
		exec.fail("ClassFormatError",
			prog.Class+": bad magic number in class file", scope.ScopeJob, true)
		return exec
	}

	var heap int64
	for _, st := range prog.Steps {
		switch s := st.(type) {
		case Compute:
			d := s.Duration
			if skip > 0 {
				if skip >= d {
					skip -= d
					continue
				}
				d -= skip
				skip = 0
			}
			exec.CPU += d

		case Allocate:
			heap += s.Bytes
			if heap > exec.PeakHeap {
				exec.PeakHeap = heap
			}
			if heap > m.cfg.HeapLimit {
				exec.fail("OutOfMemoryError",
					"java heap space", scope.ScopeVirtualMachine, true)
				return exec
			}

		case Free:
			heap -= s.Bytes
			if heap < 0 {
				heap = 0
			}

		case Throw:
			sc := s.Scope
			if sc == scope.ScopeNone {
				sc = scope.ScopeProgram
			}
			exec.fail(s.Exception, s.Message, sc, sc != scope.ScopeProgram)
			return exec

		case Exit:
			exec.ExitCode = s.Code
			exec.Completed = true
			return exec

		case IORead:
			if err := execIO(exec, io, func(ops FileOps) error {
				_, err := ops.Read(s.Path, s.Offset, s.Length)
				return err
			}); err {
				return exec
			}

		case IOWrite:
			if err := execIO(exec, io, func(ops FileOps) error {
				_, err := ops.Write(s.Path, s.Offset, s.Data)
				return err
			}); err {
				return exec
			}
		}
	}
	exec.ExitCode = 0
	exec.Completed = true
	return exec
}

// fail records an abnormal termination.  The exit code is always 1 —
// this is the Figure 4 information loss.
func (e *Execution) fail(name, msg string, sc scope.Scope, escaping bool) {
	e.ExitCode = 1
	e.Thrown = &Thrown{Name: name, Message: msg, Scope: sc, Escaping: escaping}
}

// execIO runs one I/O step and converts a failure into the thrown
// exception or error the Java I/O library would raise.  It reports
// whether execution must stop.
func execIO(exec *Execution, ops FileOps, op func(FileOps) error) (stop bool) {
	if ops == nil {
		exec.fail("NullPointerException", "no I/O system attached", scope.ScopeProgram, false)
		return true
	}
	err := op(ops)
	if err == nil {
		return false
	}
	se, ok := scope.AsError(err)
	if !ok {
		se = scope.New(scope.ScopeProcess, "UnknownError", "%v", err)
		se.Kind = scope.KindEscaping
	}
	exec.fail(se.Code, se.Error(), se.Scope, se.Kind == scope.KindEscaping)
	return true
}
