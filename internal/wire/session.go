package wire

import (
	"bufio"
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"io"

	"github.com/errscope/grid/internal/scope"
)

// The session layer on top of the binary frame codec: either a
// shared-secret authentication exchange (ModeBinary) or an
// authenticated-encryption channel (ModeSecure) that supersedes the
// plaintext cookie entirely.
//
// The secure handshake is an X25519 Diffie-Hellman exchange whose
// traffic keys are bound to the shared secret: both sides derive
// AES-256-GCM keys from HKDF(ecdh-shared, nonces, H(secret)) and then
// prove possession by exchanging fixed proof messages under those
// keys.  A peer that does not know the secret derives different keys,
// its proof fails to open, and the handshake ends in the protocol's
// explicit authentication error — the secret is never sent, in either
// direction, in any mode's ciphertext or plaintext.
//
// (The design follows the chacha20poly1305-style AEAD sessions of
// qotp-like transports; this repository is dependency-free, so the
// AEAD is the standard library's AES-256-GCM and the KDF is an HKDF
// built from crypto/hmac + SHA-256.  The substitution is documented
// in DESIGN.md and changes none of the error behaviour under test.)
//
// Message-type state machine:
//
//	client                         server
//	  | -- MsgAuth(secret) ---------> |   (ModeBinary)
//	  | <------- MsgAuthOK / MsgError |
//
//	  | -- MsgHello(pub,nonce) -----> |   (ModeSecure)
//	  | <---- MsgHelloAck(pub,nonce)  |
//	  | -- MsgProof{sealed} --------> |
//	  | <--- MsgProofAck{sealed} / MsgError
//	  | == app frames, sealed ======> |
//
// Every frame still carries the codec's sequence counter and
// checksum; sealed frames additionally carry a per-direction AEAD
// nonce counter, so a replayed or reordered ciphertext fails either
// the sequence check (ReplayedFrame) or the MAC (MACFailure).

// Mode selects the transport under a protocol client or server.
type Mode int

const (
	// ModeText is the legacy line protocol: no frames, no session.
	ModeText Mode = iota
	// ModeBinary frames every message with the checksummed binary
	// codec and authenticates with the shared secret in-band.
	ModeBinary
	// ModeSecure runs the authenticated-encryption session.
	ModeSecure
)

// String names the mode for reports and benchmarks.
func (m Mode) String() string {
	switch m {
	case ModeText:
		return "text"
	case ModeBinary:
		return "binary"
	case ModeSecure:
		return "secure"
	}
	return "mode(?)"
}

// Session message types.  They live above the app command range so a
// server can tell a session frame from a protocol frame at a glance.
const (
	MsgAuth     byte = 0xE0
	MsgAuthOK   byte = 0xE1
	MsgHello    byte = 0xE2
	MsgHelloAck byte = 0xE3
	MsgProof    byte = 0xE4
	MsgProofAck byte = 0xE5
	MsgError    byte = 0xEF
)

// The sealed proof constants of the secure handshake.
const (
	clientProof = "errscope-client-proof-v1"
	serverProof = "errscope-server-proof-v1"
	kdfInfo     = "errscope-wire-v1"
)

// Config parameterizes a Session.
type Config struct {
	// Mode is ModeBinary or ModeSecure (clients).  Servers accept
	// whichever mode the client opens with.
	Mode Mode
	// Secret is the shared secret (the chirp cookie, the remoteio
	// key).  In ModeSecure it is never transmitted; it binds the
	// derived keys.
	Secret []byte
	// MaxPayload bounds one frame payload; <= 0 uses the default.
	MaxPayload int
	// RekeyAfter is the sealed-frame budget per direction; when
	// either counter reaches it the session refuses further traffic
	// with KeyExpired at local-resource scope.  0 means no budget.
	// Budgets are counted in frames, never wall time, so expiry is
	// deterministic.
	RekeyAfter uint64
	// AuthFailure supplies the server's explicit error for a failed
	// authentication; nil defaults to process-scope NotAuthenticated.
	AuthFailure func() *scope.Error
}

// Session is one framed connection endpoint.  It is not safe for
// concurrent use; the protocol clients serialize on their own mutex
// and servers run one goroutine per connection.
type Session struct {
	fr  *FrameReader
	fw  *FrameWriter
	cfg Config

	mode        Mode
	established bool

	seal, open         cipher.AEAD
	sendName, recvName [4]byte
	sendCtr, recvCtr   uint64

	plain []byte // scratch for seal/concat
}

// NewSession wraps an established byte stream.  The reader side must
// be the same bufio.Reader used for any mode sniffing, so no bytes
// are lost.
func NewSession(r *bufio.Reader, w io.Writer, cfg Config) *Session {
	return &Session{
		fr:  NewFrameReader(r, cfg.MaxPayload),
		fw:  NewFrameWriter(w),
		cfg: cfg,
	}
}

// Release returns the session's pooled buffers.  The session must not
// be used afterwards.
func (s *Session) Release() {
	s.fr.Release()
	s.fw.Release()
}

// Mode reports the negotiated transport mode.
func (s *Session) Mode() Mode { return s.mode }

// Established reports whether the handshake completed.
func (s *Session) Established() bool { return s.established }

func (s *Session) authFailure() *scope.Error {
	if s.cfg.AuthFailure != nil {
		return s.cfg.AuthFailure()
	}
	return scope.New(scope.ScopeProcess, "NotAuthenticated", "authentication failed")
}

func keyExpired() *scope.Error {
	return scope.New(scope.ScopeLocalResource, CodeKeyExpired,
		"session key expired: sealed-frame budget exhausted, rekey required")
}

// ClientHandshake authenticates to the server in the configured mode.
// Explicit server refusals (a bad secret) come back as the scoped
// error the server sent; transport trouble comes back at network
// scope.
func (s *Session) ClientHandshake() error {
	switch s.cfg.Mode {
	case ModeBinary:
		if err := s.fw.WriteFrame(MsgAuth, s.cfg.Secret); err != nil {
			return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
		}
		cmd, payload, err := s.fr.Next()
		if err != nil {
			return s.readErr(err)
		}
		switch cmd {
		case MsgAuthOK:
			s.mode = ModeBinary
			s.established = true
			return nil
		case MsgError:
			return s.peerError(payload)
		}
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"handshake: unexpected message %#x", cmd)
	case ModeSecure:
		return s.clientSecureHandshake()
	}
	return scope.New(scope.ScopeProcess, CodeFrameProtocol,
		"mode %s has no session handshake", s.cfg.Mode)
}

func (s *Session) clientSecureHandshake() error {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return scope.Escape(scope.ScopeProcess, CodeFrameProtocol, err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return scope.Escape(scope.ScopeProcess, CodeFrameProtocol, err)
	}
	if err := s.fw.WriteFrame(MsgHello, priv.PublicKey().Bytes(), nonce); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
	}
	cmd, payload, err := s.fr.Next()
	if err != nil {
		return s.readErr(err)
	}
	if cmd == MsgError {
		return s.peerError(payload)
	}
	if cmd != MsgHelloAck || len(payload) != 32+16 {
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"handshake: bad hello-ack (%#x, %d bytes)", cmd, len(payload))
	}
	if err := s.deriveKeys(priv, payload[:32], nonce, payload[32:], true); err != nil {
		return err
	}
	if err := s.writeSealed(MsgProof, []byte(clientProof)); err != nil {
		return err
	}
	cmd, payload, err = s.fr.Next()
	if err != nil {
		return s.readErr(err)
	}
	if cmd == MsgError {
		return s.peerError(payload)
	}
	proof, err := s.openSealed(payload)
	if err != nil || cmd != MsgProofAck || string(proof) != serverProof {
		return scope.New(scope.ScopeNetwork, CodeMACFailure,
			"handshake: server proof did not verify")
	}
	s.mode = ModeSecure
	s.established = true
	return nil
}

// ServerHandshake accepts whichever mode the client opened with and
// authenticates it.  A failed authentication sends the configured
// explicit error to the client and returns it here for the server's
// log.
func (s *Session) ServerHandshake() error {
	cmd, payload, err := s.fr.Next()
	if err != nil {
		return s.readErr(err)
	}
	switch cmd {
	case MsgAuth:
		if subtle.ConstantTimeCompare(payload, s.cfg.Secret) != 1 {
			se := s.authFailure()
			s.writeError(se)
			return se
		}
		if err := s.fw.WriteFrame(MsgAuthOK); err != nil {
			return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
		}
		s.mode = ModeBinary
		s.established = true
		return nil
	case MsgHello:
		return s.serverSecureHandshake(payload)
	}
	return scope.New(scope.ScopeNetwork, CodeFrameProtocol,
		"handshake: unexpected message %#x", cmd)
}

func (s *Session) serverSecureHandshake(hello []byte) error {
	if len(hello) != 32+16 {
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"handshake: bad hello (%d bytes)", len(hello))
	}
	clientPub := append([]byte(nil), hello[:32]...)
	clientNonce := append([]byte(nil), hello[32:]...)
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return scope.Escape(scope.ScopeProcess, CodeFrameProtocol, err)
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return scope.Escape(scope.ScopeProcess, CodeFrameProtocol, err)
	}
	if err := s.fw.WriteFrame(MsgHelloAck, priv.PublicKey().Bytes(), nonce); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
	}
	if err := s.deriveKeys(priv, clientPub, clientNonce, nonce, false); err != nil {
		return err
	}
	cmd, payload, err := s.fr.Next()
	if err != nil {
		return s.readErr(err)
	}
	proof, perr := s.openSealed(payload)
	if perr != nil || cmd != MsgProof || string(proof) != clientProof {
		// Wrong secret and tampered handshake are indistinguishable
		// here by design; both are the explicit authentication error.
		se := s.authFailure()
		s.writeError(se)
		return se
	}
	if err := s.writeSealed(MsgProofAck, []byte(serverProof)); err != nil {
		return err
	}
	s.mode = ModeSecure
	s.established = true
	return nil
}

// deriveKeys computes the two directional AEAD keys.  The shared
// secret enters the KDF info, so a peer without it derives garbage.
func (s *Session) deriveKeys(priv *ecdh.PrivateKey, peerPub, clientNonce, serverNonce []byte, isClient bool) error {
	pub, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol, "handshake: bad public key: %v", err)
	}
	shared, err := priv.ECDH(pub)
	if err != nil {
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol, "handshake: ECDH failed: %v", err)
	}
	secretHash := sha256.Sum256(s.cfg.Secret)

	// HKDF-Extract(salt = nonces, ikm = shared), then two blocks of
	// HKDF-Expand(info = label || H(secret)).
	ext := hmac.New(sha256.New, append(append([]byte(nil), clientNonce...), serverNonce...))
	ext.Write(shared)
	prk := ext.Sum(nil)
	info := append([]byte(kdfInfo), secretHash[:]...)
	exp := hmac.New(sha256.New, prk)
	exp.Write(info)
	exp.Write([]byte{1})
	t1 := exp.Sum(nil)
	exp.Reset()
	exp.Write(t1)
	exp.Write(info)
	exp.Write([]byte{2})
	t2 := exp.Sum(nil)

	c2s, err1 := newAEAD(t1)
	s2c, err2 := newAEAD(t2)
	if err1 != nil || err2 != nil {
		return scope.New(scope.ScopeProcess, CodeFrameProtocol, "handshake: cipher init failed")
	}
	if isClient {
		s.seal, s.open = c2s, s2c
		s.sendName, s.recvName = [4]byte{'c', '2', 's', 0}, [4]byte{'s', '2', 'c', 0}
	} else {
		s.seal, s.open = s2c, c2s
		s.sendName, s.recvName = [4]byte{'s', '2', 'c', 0}, [4]byte{'c', '2', 's', 0}
	}
	return nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// nonceFor builds the 12-byte AEAD nonce: direction tag plus frame
// counter.  Counters never repeat within a session, and the tag keeps
// the two directions' nonce spaces disjoint under the related keys.
func nonceFor(name [4]byte, ctr uint64) []byte {
	var n [12]byte
	copy(n[:4], name[:])
	binary.BigEndian.PutUint64(n[4:], ctr)
	return n[:]
}

// writeSealed seals a payload and writes it as one frame, spending
// one unit of the send budget.
func (s *Session) writeSealed(cmd byte, parts ...[]byte) error {
	if s.cfg.RekeyAfter > 0 && s.sendCtr >= s.cfg.RekeyAfter {
		return keyExpired()
	}
	s.plain = s.plain[:0]
	for _, p := range parts {
		s.plain = append(s.plain, p...)
	}
	sealed := s.seal.Seal(nil, nonceFor(s.sendName, s.sendCtr), s.plain, []byte{cmd})
	s.sendCtr++
	if err := s.fw.WriteFrame(cmd, sealed); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
	}
	return nil
}

// openSealed opens one sealed payload, spending one unit of the
// receive budget.  The caller supplies the frame's command byte via
// the payload's authenticated data implicitly: it is re-bound below.
func (s *Session) openSealedCmd(cmd byte, payload []byte) ([]byte, error) {
	if s.cfg.RekeyAfter > 0 && s.recvCtr >= s.cfg.RekeyAfter {
		return nil, keyExpired()
	}
	plain, err := s.open.Open(payload[:0], nonceFor(s.recvName, s.recvCtr), payload, []byte{cmd})
	if err != nil {
		return nil, scope.New(scope.ScopeNetwork, CodeMACFailure,
			"frame MAC did not verify: payload corrupted or forged")
	}
	s.recvCtr++
	return plain, nil
}

// openSealed is openSealedCmd for the handshake proofs, which bind
// their own command bytes.
func (s *Session) openSealed(payload []byte) ([]byte, error) {
	cmd := MsgProof
	if s.seal != nil && s.sendName[0] == 'c' {
		cmd = MsgProofAck // client opens the server's proof
	}
	return s.openSealedCmd(cmd, payload)
}

// WriteMsg sends one application message.  In ModeSecure the payload
// is sealed; in ModeBinary it is framed in the clear.
func (s *Session) WriteMsg(cmd byte, parts ...[]byte) error {
	if !s.established {
		return scope.New(scope.ScopeProcess, CodeFrameProtocol, "session not established")
	}
	if s.mode == ModeSecure {
		return s.writeSealed(cmd, parts...)
	}
	if err := s.fw.WriteFrame(cmd, parts...); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
	}
	return nil
}

// ReadMsg reads one application message.  The payload aliases the
// session's read buffer and is valid until the next call.  A clean
// peer close is io.EOF; every detected fault is a scoped error
// carrying one of the frame-layer codes.
func (s *Session) ReadMsg() (byte, []byte, error) {
	if !s.established {
		return 0, nil, scope.New(scope.ScopeProcess, CodeFrameProtocol, "session not established")
	}
	cmd, payload, err := s.fr.Next()
	if err != nil {
		return 0, nil, err
	}
	if s.mode == ModeSecure {
		plain, err := s.openSealedCmd(cmd, payload)
		if err != nil {
			return 0, nil, err
		}
		return cmd, plain, nil
	}
	return cmd, payload, nil
}

// WriteError sends a scoped error as an application error frame.
func (s *Session) WriteError(err error, fallbackCode string, fallbackScope scope.Scope) error {
	return s.WriteMsg(CmdErr, EncodeErrorPayload(err, fallbackCode, fallbackScope))
}

// writeError sends a plaintext MsgError during the handshake, before
// any keys exist.
func (s *Session) writeError(se *scope.Error) {
	_ = s.fw.WriteFrame(MsgError, EncodeErrorPayload(se, se.Code, se.Scope))
}

// peerError decodes a plaintext handshake error from the server.
func (s *Session) peerError(payload []byte) error {
	se, err := DecodeErrorPayload(payload)
	if err != nil {
		return scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"handshake: undecodable error frame: %v", err)
	}
	return se
}

// readErr passes scoped frame errors through and wraps raw transport
// errors (including clean EOF, which here means the peer hung up mid
// handshake) at network scope.
func (s *Session) readErr(err error) error {
	if _, ok := scope.AsError(err); ok {
		return err
	}
	return scope.Escape(scope.ScopeNetwork, CodeConnectionLostName, err)
}

// CodeConnectionLostName is the shared code for a dead transport; the
// protocol packages declare the same string in their contracts.
const CodeConnectionLostName = "ConnectionLost"
