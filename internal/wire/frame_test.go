package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"github.com/errscope/grid/internal/scope"
)

func mustScope(t *testing.T, err error, code string) *scope.Error {
	t.Helper()
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("error %v is not scoped", err)
	}
	if se.Code != code {
		t.Fatalf("code = %s, want %s (err: %v)", se.Code, code, err)
	}
	if se.Scope != scope.ScopeNetwork {
		t.Fatalf("scope = %s, want network (err: %v)", se.Scope, err)
	}
	return se
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 1000),
		make([]byte, 0),
		[]byte{0x00, 0xFF, 0x80},
	}
	for i, p := range payloads {
		stream = AppendFrame(stream, byte(0x90+i), uint16(i), p)
	}
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream)), 0)
	defer fr.Release()
	for i, p := range payloads {
		cmd, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if cmd != byte(0x90+i) {
			t.Fatalf("frame %d: cmd = %#x", i, cmd)
		}
		if !bytes.Equal(payload, p) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(payload), len(p))
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

func TestFrameMultipart(t *testing.T) {
	frame := AppendFrame(nil, 0x42, 7, []byte("hel"), []byte("lo "), []byte("world"))
	cmd, seq, payload, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if cmd != 0x42 || seq != 7 || string(payload) != "hello world" {
		t.Fatalf("decoded cmd=%#x seq=%d payload=%q", cmd, seq, payload)
	}
}

func TestDecodeFrameFlippedBits(t *testing.T) {
	frame := AppendFrame(nil, 0x01, 0, []byte("payload under test"))
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x20
		_, _, _, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
		se, ok := scope.AsError(err)
		if !ok || se.Scope != scope.ScopeNetwork {
			t.Fatalf("flip at byte %d: unscoped or non-network error %v", i, err)
		}
	}
}

// TestTruncationEveryOffset feeds the reader every proper prefix of a
// multi-frame stream; every cut must surface as either a clean EOF (at
// a frame boundary) or a network-scoped TruncatedFrame, never as a
// decoded frame with wrong bytes.
func TestTruncationEveryOffset(t *testing.T) {
	var stream []byte
	boundaries := map[int]bool{0: true}
	for i := 0; i < 3; i++ {
		stream = AppendFrame(stream, byte(i+1), uint16(i), bytes.Repeat([]byte{byte('a' + i)}, 50+i*13))
		boundaries[len(stream)] = true
	}
	for cut := 0; cut < len(stream); cut++ {
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream[:cut])), 0)
		var err error
		for err == nil {
			_, _, err = fr.Next()
		}
		if boundaries[cut] {
			if err != io.EOF {
				t.Fatalf("cut %d at boundary: %v, want io.EOF", cut, err)
			}
		} else {
			mustScope(t, err, CodeTruncatedFrame)
		}
		fr.Release()
	}
}

func TestFrameReaderReplay(t *testing.T) {
	one := AppendFrame(nil, 0x11, 0, []byte("first"))
	stream := append(append([]byte(nil), one...), one...) // same frame twice
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream)), 0)
	defer fr.Release()
	if _, _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	_, _, err := fr.Next()
	mustScope(t, err, CodeReplayedFrame)
}

func TestFrameReaderSequenceJump(t *testing.T) {
	// A frame far ahead of the expected counter is protocol garbage,
	// not a replay.
	stream := AppendFrame(nil, 0x11, 1000, []byte("x"))
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream)), 0)
	defer fr.Release()
	_, _, err := fr.Next()
	mustScope(t, err, CodeFrameProtocol)
}

func TestFrameReaderOversize(t *testing.T) {
	stream := AppendFrame(nil, 0x11, 0, bytes.Repeat([]byte("z"), 2048))
	fr := NewFrameReader(bufio.NewReader(bytes.NewReader(stream)), 1024)
	defer fr.Release()
	_, _, err := fr.Next()
	mustScope(t, err, CodeFrameProtocol)
}

func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 0x90, 0, []byte("seed payload")))
	f.Add(AppendFrame(nil, 0xA0, 3))
	f.Add([]byte{})
	f.Add([]byte{0x90, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		cmd, seq, payload, err := DecodeFrame(data)
		if err != nil {
			if _, ok := scope.AsError(err); !ok {
				t.Fatalf("unscoped decode error: %v", err)
			}
			return
		}
		// A frame that decodes must re-encode to the same bytes.
		again := AppendFrame(nil, cmd, seq, payload)
		if !bytes.Equal(again, data[:len(again)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzFrameReader(f *testing.F) {
	f.Add(AppendFrame(AppendFrame(nil, 1, 0, []byte("a")), 2, 1, []byte("b")))
	f.Add([]byte{0xE0, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bufio.NewReader(bytes.NewReader(data)), 1<<16)
		defer fr.Release()
		for i := 0; i < 8; i++ {
			_, _, err := fr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if _, ok := scope.AsError(err); !ok {
					t.Fatalf("unscoped reader error: %v", err)
				}
				return
			}
		}
	})
}

func TestCursorRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU16(b, 65535)
	b = AppendU32(b, 1<<31)
	b = AppendI64(b, -42)
	b = AppendStr(b, "path/with  spaces")
	b = append(b, 0x07)
	cur := NewCursor(b)
	if v := cur.U16(); v != 65535 {
		t.Fatalf("u16 = %d", v)
	}
	if v := cur.U32(); v != 1<<31 {
		t.Fatalf("u32 = %d", v)
	}
	if v := cur.I64(); v != -42 {
		t.Fatalf("i64 = %d", v)
	}
	if v := cur.Str(); v != "path/with  spaces" {
		t.Fatalf("str = %q", v)
	}
	if v := cur.U8(); v != 0x07 {
		t.Fatalf("u8 = %#x", v)
	}
	if !cur.Done() {
		t.Fatal("cursor not done")
	}
}

func TestCursorUnderflow(t *testing.T) {
	cur := NewCursor([]byte{0x01})
	_ = cur.U32()
	if cur.OK() {
		t.Fatal("underflow not flagged")
	}
	if cur.Done() {
		t.Fatal("bad cursor reports done")
	}
	// Further reads stay zero-valued and sticky-bad, never panic.
	if cur.I64() != 0 || cur.Str() != "" || cur.OK() {
		t.Fatal("sticky error violated")
	}
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	in := scope.Escape(scope.ScopeNetwork, "ConnectionLost", io.ErrUnexpectedEOF)
	out, err := DecodeErrorPayload(EncodeErrorPayload(in, "F", scope.ScopeProcess))
	if err != nil {
		t.Fatal(err)
	}
	if out.Scope != in.Scope || out.Kind != in.Kind || out.Code != in.Code {
		t.Fatalf("round trip %+v -> %+v", in, out)
	}
	if out.Message != io.ErrUnexpectedEOF.Error() {
		t.Fatalf("message = %q", out.Message)
	}
}

func TestErrorPayloadFallback(t *testing.T) {
	out, err := DecodeErrorPayload(EncodeErrorPayload(io.ErrShortWrite, "Backend", scope.ScopeLocalResource))
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != "Backend" || out.Scope != scope.ScopeLocalResource || out.Kind != scope.KindExplicit {
		t.Fatalf("out = %+v", out)
	}
}

func TestDecodeErrorPayloadMalformed(t *testing.T) {
	good := EncodeErrorPayload(scope.New(scope.ScopeJob, "C", "m"), "F", scope.ScopeProcess)
	cases := [][]byte{
		nil,
		{0x01},
		good[:len(good)-1],               // truncated
		append(append([]byte(nil), good...), 0xFF), // trailing garbage
		{99, 0, 0, 1, 'C', 0, 0},         // invalid scope
	}
	for i, b := range cases {
		if _, err := DecodeErrorPayload(b); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
