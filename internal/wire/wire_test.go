package wire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/errscope/grid/internal/scope"
)

// errRest strips the "error " verb and trailing newline from an
// encoded line, yielding what a protocol client hands to DecodeError.
func errRest(t *testing.T, line string) string {
	t.Helper()
	if !strings.HasPrefix(line, "error ") || !strings.HasSuffix(line, "\n") {
		t.Fatalf("line = %q", line)
	}
	return strings.TrimSuffix(strings.TrimPrefix(line, "error "), "\n")
}

func TestEncodeDecodeScopedError(t *testing.T) {
	in := scope.New(scope.ScopeLocalResource, "CredentialsExpiredError", "ticket lapsed at 03:00")
	line := EncodeError(in, "Fallback", scope.ScopeProcess)
	out, err := DecodeError(errRest(t, line))
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != in.Code || out.Scope != in.Scope || out.Message != in.Message {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

func TestEncodePlainErrorUsesFallback(t *testing.T) {
	line := EncodeError(errors.New("boom"), "BackendError", scope.ScopeLocalResource)
	out, err := DecodeError(errRest(t, line))
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != "BackendError" || out.Scope != scope.ScopeLocalResource {
		t.Errorf("out = %+v", out)
	}
	if out.Message != "boom" {
		t.Errorf("message = %q", out.Message)
	}
}

func TestEncodeUsesCauseTextWhenMessageEmpty(t *testing.T) {
	in := scope.Explicit(scope.ScopeFile, "DiskFull", errors.New("0 bytes free"))
	line := EncodeError(in, "X", scope.ScopeProcess)
	if !strings.Contains(line, "0 bytes free") {
		t.Errorf("line = %q", line)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"Code",
		"Code file",
		`Code galaxy "msg"`,
		"Code file unquoted",
		`Code file "msg" trailing`,
	}
	for _, rest := range cases {
		if _, err := DecodeError(rest); err == nil {
			t.Errorf("DecodeError(%q) should fail", rest)
		}
	}
}

// TestConsecutiveSpacesRoundTrip is the regression test for the field
// rejoin bug: strconv.Quote leaves runs of spaces unescaped, so any
// whitespace-split-and-rejoin between Encode and Decode collapsed them.
func TestConsecutiveSpacesRoundTrip(t *testing.T) {
	for _, msg := range []string{
		"two  spaces",
		"   leading and trailing   ",
		"a \t b  c  d",
		"columns:   aligned   like   ls",
	} {
		in := scope.New(scope.ScopeNetwork, "ConnectionLost", "%s", msg)
		out, err := DecodeError(errRest(t, EncodeError(in, "F", scope.ScopeProcess)))
		if err != nil {
			t.Fatalf("msg %q: %v", msg, err)
		}
		if out.Message != msg {
			t.Errorf("msg %q decoded as %q", msg, out.Message)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	scopes := scope.Scopes()
	prop := func(msg string, codeSeed uint8, scopeSeed uint8) bool {
		sc := scopes[int(scopeSeed)%len(scopes)]
		code := "C" + strings.Repeat("x", int(codeSeed)%8)
		in := scope.New(sc, code, "%s", msg)
		line := EncodeError(in, "F", scope.ScopeProcess)
		rest := strings.TrimSuffix(strings.TrimPrefix(line, "error "), "\n")
		out, err := DecodeError(rest)
		return err == nil && out.Code == code && out.Scope == sc && out.Message == msg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func FuzzErrorRoundTrip(f *testing.F) {
	f.Add("plain")
	f.Add("two  spaces")
	f.Add("   ")
	f.Add("tab\tnewline\nquote\"backslash\\")
	f.Add("日本  語")
	f.Add("")
	f.Fuzz(func(t *testing.T, msg string) {
		in := scope.New(scope.ScopeJob, "FuzzCode", "%s", msg)
		line := EncodeError(in, "F", scope.ScopeProcess)
		rest := strings.TrimSuffix(strings.TrimPrefix(line, "error "), "\n")
		out, err := DecodeError(rest)
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		if out.Message != msg || out.Code != "FuzzCode" || out.Scope != scope.ScopeJob {
			t.Fatalf("round trip %q -> %+v", msg, out)
		}
	})
}

func TestQuoteUnquote(t *testing.T) {
	for _, s := range []string{"", "plain", "with space", "tab\tand\nnewline", `"quoted"`, "日本"} {
		q := Quote(s)
		if strings.ContainsAny(q, "\n") {
			t.Errorf("Quote(%q) contains newline", s)
		}
		got, err := Unquote(q)
		if err != nil || got != s {
			t.Errorf("round trip %q -> %q: %v", s, got, err)
		}
	}
}
