package wire

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/errscope/grid/internal/scope"
)

func TestEncodeDecodeScopedError(t *testing.T) {
	in := scope.New(scope.ScopeLocalResource, "CredentialsExpiredError", "ticket lapsed at 03:00")
	line := EncodeError(in, "Fallback", scope.ScopeProcess)
	if !strings.HasPrefix(line, "error ") || !strings.HasSuffix(line, "\n") {
		t.Fatalf("line = %q", line)
	}
	fields := strings.Fields(strings.TrimSpace(line))[1:]
	out, err := DecodeError(fields)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != in.Code || out.Scope != in.Scope || out.Message != in.Message {
		t.Errorf("round trip: %+v vs %+v", out, in)
	}
}

func TestEncodePlainErrorUsesFallback(t *testing.T) {
	line := EncodeError(errors.New("boom"), "BackendError", scope.ScopeLocalResource)
	fields := strings.Fields(strings.TrimSpace(line))[1:]
	out, err := DecodeError(fields)
	if err != nil {
		t.Fatal(err)
	}
	if out.Code != "BackendError" || out.Scope != scope.ScopeLocalResource {
		t.Errorf("out = %+v", out)
	}
	if out.Message != "boom" {
		t.Errorf("message = %q", out.Message)
	}
}

func TestEncodeUsesCauseTextWhenMessageEmpty(t *testing.T) {
	in := scope.Explicit(scope.ScopeFile, "DiskFull", errors.New("0 bytes free"))
	line := EncodeError(in, "X", scope.ScopeProcess)
	if !strings.Contains(line, "0 bytes free") {
		t.Errorf("line = %q", line)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"Code"},
		{"Code", "file"},
		{"Code", "galaxy", `"msg"`},
		{"Code", "file", `unquoted`},
	}
	for _, fields := range cases {
		if _, err := DecodeError(fields); err == nil {
			t.Errorf("DecodeError(%v) should fail", fields)
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	scopes := scope.Scopes()
	prop := func(msg string, codeSeed uint8, scopeSeed uint8) bool {
		sc := scopes[int(scopeSeed)%len(scopes)]
		code := "C" + strings.Repeat("x", int(codeSeed)%8)
		in := scope.New(sc, code, "%s", msg)
		fields := strings.Fields(strings.TrimSpace(EncodeError(in, "F", scope.ScopeProcess)))[1:]
		out, err := DecodeError(fields)
		return err == nil && out.Code == code && out.Scope == sc && out.Message == msg
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuoteUnquote(t *testing.T) {
	for _, s := range []string{"", "plain", "with space", "tab\tand\nnewline", `"quoted"`, "日本"} {
		q := Quote(s)
		if strings.ContainsAny(q, "\n") {
			t.Errorf("Quote(%q) contains newline", s)
		}
		got, err := Unquote(q)
		if err != nil || got != s {
			t.Errorf("round trip %q -> %q: %v", s, got, err)
		}
	}
}
