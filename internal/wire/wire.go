// Package wire provides the shared line-protocol encoding used by the
// Chirp proxy protocol and the shadow remote I/O channel: quoted
// string arguments, and error responses that carry an error's code,
// scope, and message across a process boundary.
//
// Transmitting the scope is the point: per Section 7 of the paper,
// two processes that do not understand the detail of one another's
// errors can still cooperate by communicating the scope.
package wire

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/errscope/grid/internal/scope"
)

// EncodeError renders an error as a wire line:
//
//	error <code> <scope> <quoted message>\n
//
// A plain (unscoped) error is presented at the given fallback code and
// scope: the sender cannot explain it, but it can still state a scope.
func EncodeError(err error, fallbackCode string, fallbackScope scope.Scope) string {
	se, ok := scope.AsError(err)
	if !ok {
		se = scope.New(fallbackScope, fallbackCode, "%v", err)
	}
	msg := se.Message
	if msg == "" && se.Cause != nil {
		msg = se.Cause.Error()
	}
	return fmt.Sprintf("error %s %s %s\n", se.Code, se.Scope, strconv.Quote(msg))
}

// DecodeError parses the remainder of a wire error line — everything
// after the "error " verb, with or without the trailing newline — into
// a scoped error.
//
// The quoted message must be cut from the raw line, not rebuilt from
// whitespace-split fields: strconv.Quote does not escape spaces, so a
// message containing consecutive spaces survives only if the bytes
// between the quotes reach Unquote untouched.
func DecodeError(rest string) (*scope.Error, error) {
	rest = strings.TrimRight(rest, "\r\n")
	code, rest, ok := strings.Cut(rest, " ")
	if !ok || code == "" {
		return nil, fmt.Errorf("wire: malformed error response %q", code+rest)
	}
	scopeName, quoted, ok := strings.Cut(rest, " ")
	if !ok {
		return nil, fmt.Errorf("wire: malformed error response %q", code+" "+rest)
	}
	sc, err := scope.ParseScope(scopeName)
	if err != nil {
		return nil, fmt.Errorf("wire: bad scope in error response: %w", err)
	}
	msg, err := strconv.Unquote(quoted)
	if err != nil {
		return nil, fmt.Errorf("wire: bad message in error response: %w", err)
	}
	return scope.New(sc, code, "%s", msg), nil
}

// Quote encodes a string argument for the wire.
func Quote(s string) string { return strconv.Quote(s) }

// Unquote decodes a quoted wire argument.
func Unquote(s string) (string, error) { return strconv.Unquote(s) }
