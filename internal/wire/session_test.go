package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"github.com/errscope/grid/internal/scope"
)

// sessionPair runs both handshakes over an in-memory pipe, with an
// optional writer wrapper on the server's send side (for tampering).
func sessionPair(t *testing.T, clientCfg, serverCfg Config, wrap func(io.Writer) io.Writer) (*Session, *Session, chan error) {
	t.Helper()
	cc, sc := net.Pipe()
	t.Cleanup(func() { cc.Close(); sc.Close() })
	var sw io.Writer = sc
	if wrap != nil {
		sw = wrap(sc)
	}
	client := NewSession(bufio.NewReader(cc), cc, clientCfg)
	server := NewSession(bufio.NewReader(sc), sw, serverCfg)
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.ServerHandshake() }()
	if err := client.ClientHandshake(); err != nil {
		t.Cleanup(func() { <-srvErr })
		t.Fatalf("client handshake: %v", err)
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("server handshake: %v", err)
	}
	return client, server, srvErr
}

// echo runs a one-message echo loop on the server session.
func echo(t *testing.T, server *Session, done chan<- error) {
	cmd, payload, err := server.ReadMsg()
	if err != nil {
		done <- err
		return
	}
	done <- server.WriteMsg(cmd, payload)
}

func testSessionEcho(t *testing.T, mode Mode) {
	secret := []byte("cookie-123")
	client, server, _ := sessionPair(t,
		Config{Mode: mode, Secret: secret},
		Config{Secret: secret}, nil)
	if client.Mode() != mode || server.Mode() != mode {
		t.Fatalf("modes: client %s server %s, want %s", client.Mode(), server.Mode(), mode)
	}
	done := make(chan error, 1)
	go echo(t, server, done)
	msg := bytes.Repeat([]byte("payload "), 100)
	if err := client.WriteMsg(0x90, msg); err != nil {
		t.Fatal(err)
	}
	cmd, payload, err := client.ReadMsg()
	if err != nil {
		t.Fatal(err)
	}
	if cmd != 0x90 || !bytes.Equal(payload, msg) {
		t.Fatalf("echo mismatch: cmd=%#x, %d bytes", cmd, len(payload))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestSessionBinaryEcho(t *testing.T) { testSessionEcho(t, ModeBinary) }
func TestSessionSecureEcho(t *testing.T) { testSessionEcho(t, ModeSecure) }

// TestSecurePayloadNotPlaintext checks the sealed bytes on the wire do
// not contain the message (or the secret).
func TestSecurePayloadNotPlaintext(t *testing.T) {
	secret := []byte("super-secret-cookie")
	var wire bytes.Buffer
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	client := NewSession(bufio.NewReader(cc), io.MultiWriter(cc, &wire), Config{Mode: ModeSecure, Secret: secret})
	server := NewSession(bufio.NewReader(sc), sc, Config{Secret: secret})
	srvErr := make(chan error, 1)
	go func() {
		if err := server.ServerHandshake(); err != nil {
			srvErr <- err
			return
		}
		_, _, err := server.ReadMsg()
		srvErr <- err
	}()
	if err := client.ClientHandshake(); err != nil {
		t.Fatal(err)
	}
	marker := []byte("MARKER-plaintext-should-not-appear")
	if err := client.WriteMsg(0x90, marker); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wire.Bytes(), marker) {
		t.Fatal("plaintext marker visible on the wire")
	}
	if bytes.Contains(wire.Bytes(), secret) {
		t.Fatal("shared secret visible on the wire")
	}
}

func testSessionWrongSecret(t *testing.T, mode Mode) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	client := NewSession(bufio.NewReader(cc), cc, Config{Mode: mode, Secret: []byte("right")})
	server := NewSession(bufio.NewReader(sc), sc, Config{Secret: []byte("wrong")})
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.ServerHandshake() }()
	err := client.ClientHandshake()
	if err == nil {
		t.Fatal("handshake should fail")
	}
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("unscoped: %v", err)
	}
	if se.Scope != scope.ScopeProcess || se.Code != "NotAuthenticated" || se.Kind != scope.KindExplicit {
		t.Fatalf("client error = %+v", se)
	}
	if err := <-srvErr; err == nil {
		t.Fatal("server should report the failure too")
	}
}

func TestSessionBinaryWrongSecret(t *testing.T) { testSessionWrongSecret(t, ModeBinary) }
func TestSessionSecureWrongSecret(t *testing.T) { testSessionWrongSecret(t, ModeSecure) }

func TestSessionAuthFailureHook(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	defer sc.Close()
	client := NewSession(bufio.NewReader(cc), cc, Config{Mode: ModeBinary, Secret: []byte("a")})
	server := NewSession(bufio.NewReader(sc), sc, Config{
		Secret: []byte("b"),
		AuthFailure: func() *scope.Error {
			return scope.New(scope.ScopeLocalResource, "AuthenticationFailed", "bad key")
		},
	})
	srvErr := make(chan error, 1)
	go func() { srvErr <- server.ServerHandshake() }()
	err := client.ClientHandshake()
	<-srvErr
	se, ok := scope.AsError(err)
	if !ok || se.Code != "AuthenticationFailed" || se.Scope != scope.ScopeLocalResource {
		t.Fatalf("err = %v", err)
	}
}

// tamperWriter flips a payload byte of the nth frame it sees.  With
// fixSum it recomputes the checksum so the corruption penetrates to
// the AEAD layer (a MAC failure); without, the frame layer catches it
// (a checksum mismatch).
type tamperWriter struct {
	w      io.Writer
	n      int
	fixSum bool
	dup    bool
	count  int
}

func (tw *tamperWriter) Write(p []byte) (int, error) {
	tw.count++
	if tw.count != tw.n || len(p) < FrameOverhead+1 {
		return tw.w.Write(p)
	}
	if tw.dup {
		if _, err := tw.w.Write(p); err != nil {
			return 0, err
		}
		return tw.w.Write(p)
	}
	mut := append([]byte(nil), p...)
	mut[frameHeaderLen] ^= 0x20
	if tw.fixSum {
		binary.BigEndian.PutUint32(mut[len(mut)-4:], Checksum(mut[:len(mut)-4]))
	}
	n, err := tw.w.Write(mut)
	return n, err
}

func testServerFrameFault(t *testing.T, tw *tamperWriter, wantCode string) {
	secret := []byte("k")
	client, server, _ := sessionPair(t,
		Config{Mode: ModeSecure, Secret: secret},
		Config{Secret: secret},
		func(w io.Writer) io.Writer { tw.w = w; return tw })
	done := make(chan error, 1)
	go echo(t, server, done)
	if err := client.WriteMsg(0x90, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	_, _, err := client.ReadMsg()
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("unscoped: %v", err)
	}
	if se.Code != wantCode || se.Scope != scope.ScopeNetwork {
		t.Fatalf("got %s/%s, want network/%s", se.Scope, se.Code, wantCode)
	}
	<-done
}

// Server frames toward the client in ModeSecure: 1 = hello-ack,
// 2 = proof-ack, 3 = first app frame.
func TestSessionChecksumMismatch(t *testing.T) {
	testServerFrameFault(t, &tamperWriter{n: 3}, CodeChecksumMismatch)
}

func TestSessionMACFailure(t *testing.T) {
	testServerFrameFault(t, &tamperWriter{n: 3, fixSum: true}, CodeMACFailure)
}

func TestSessionReplay(t *testing.T) {
	secret := []byte("k")
	tw := &tamperWriter{n: 3, dup: true}
	client, server, _ := sessionPair(t,
		Config{Mode: ModeSecure, Secret: secret},
		Config{Secret: secret},
		func(w io.Writer) io.Writer { tw.w = w; return tw })
	done := make(chan error, 1)
	go echo(t, server, done)
	if err := client.WriteMsg(0x90, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.ReadMsg(); err != nil {
		t.Fatal(err) // the original passes
	}
	_, _, err := client.ReadMsg() // the duplicate must not
	<-done
	se, ok := scope.AsError(err)
	if !ok || se.Code != CodeReplayedFrame || se.Scope != scope.ScopeNetwork {
		t.Fatalf("replayed frame: %v", err)
	}
}

func TestSessionKeyExpiry(t *testing.T) {
	secret := []byte("k")
	// The secure handshake spends one sealed frame per direction
	// (proof / proof-ack), so a budget of 3 leaves two app messages.
	client, server, _ := sessionPair(t,
		Config{Mode: ModeSecure, Secret: secret, RekeyAfter: 3},
		Config{Secret: secret}, nil)
	for i := 0; i < 2; i++ {
		done := make(chan error, 1)
		go echo(t, server, done)
		if err := client.WriteMsg(0x90, []byte("x")); err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if _, _, err := client.ReadMsg(); err != nil {
			t.Fatalf("msg %d read: %v", i, err)
		}
		<-done
	}
	err := client.WriteMsg(0x90, []byte("over budget"))
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("unscoped: %v", err)
	}
	if se.Code != CodeKeyExpired || se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindExplicit {
		t.Fatalf("key expiry error = %+v", se)
	}
}

func TestSessionRequiresHandshake(t *testing.T) {
	var buf bytes.Buffer
	s := NewSession(bufio.NewReader(&buf), &buf, Config{Mode: ModeBinary})
	if err := s.WriteMsg(0x90); err == nil {
		t.Fatal("WriteMsg before handshake should fail")
	}
	if _, _, err := s.ReadMsg(); err == nil {
		t.Fatal("ReadMsg before handshake should fail")
	}
}

func TestModeString(t *testing.T) {
	if ModeText.String() != "text" || ModeBinary.String() != "binary" || ModeSecure.String() != "secure" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "mode(?)" {
		t.Fatal("unknown mode name")
	}
}
