package wire

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"
	"sync"

	"github.com/errscope/grid/internal/scope"
)

// The binary frame layer.  Every frame on the wire is
//
//	[0]      command byte
//	[1:3]    sequence counter, big endian, incremented per frame
//	[3:7]    payload length, big endian
//	[7:7+n]  payload
//	[7+n:+4] CRC-32C checksum over header and payload, big endian
//
// The sequence counter makes replayed frames detectable; the checksum
// makes corrupted frames detectable.  Both detections convert what
// would otherwise be an implicit error — a silently wrong payload, a
// silently repeated response — into an explicit error of network
// scope (Principle 1: the layer that can detect must detect).

// Frame geometry.
const (
	frameHeaderLen  = 1 + 2 + 4
	frameTrailerLen = 4
	// FrameOverhead is the fixed per-frame cost beyond the payload.
	FrameOverhead = frameHeaderLen + frameTrailerLen
)

// DefaultMaxPayload bounds one frame's payload: the 16 MiB data limit
// of the file protocols plus slack for sealing and argument headers.
const DefaultMaxPayload = 16<<20 + 4096

// replayWindow is how far behind the expected sequence number a
// frame may sit and still be diagnosed as a replay rather than as
// generic protocol garbage.
const replayWindow = 8

// Error codes of the frame and session layers.  All are conditions
// outside any file interface; the transport classes carry network
// scope, and key expiry — the session's security state becoming
// unusable, like an expired credential — carries local-resource scope.
const (
	CodeChecksumMismatch = "ChecksumMismatch"
	CodeTruncatedFrame   = "TruncatedFrame"
	CodeMACFailure       = "MACFailure"
	CodeReplayedFrame    = "ReplayedFrame"
	CodeKeyExpired       = "KeyExpired"
	CodeFrameProtocol    = "FrameProtocolError"
)

// Shared response commands of the binary file protocols: a success
// frame carrying a value payload, or an error frame carrying an
// encoded scoped error (see EncodeErrorPayload).
const (
	CmdOK  byte = 0xA0
	CmdErr byte = 0xA1
)

// crcTable is the Castagnoli polynomial, the CRC the stdlib
// accelerates with SSE4.2/ARMv8 instructions.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC-32C over the given byte regions, as carried in
// the frame trailer.  (The first cut of this layer used FNV-1a; its
// byte-serial multiply chain cost ~1ns/byte on both sides of every
// frame, which at 4 KiB payloads erased the codec's win over the text
// protocol.  CRC-32C has the same 32-bit trailer and the same
// single-bit-flip detection guarantee, hardware-accelerated.)
func Checksum(parts ...[]byte) uint32 {
	var h uint32
	for _, p := range parts {
		h = crc32.Update(h, crcTable, p)
	}
	return h
}

// AppendFrame appends one encoded frame to dst and returns the
// extended slice.  The payload may be given in parts; they are
// concatenated on the wire.
func AppendFrame(dst []byte, cmd byte, seq uint16, parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	start := len(dst)
	dst = append(dst, cmd, byte(seq>>8), byte(seq))
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	for _, p := range parts {
		dst = append(dst, p...)
	}
	sum := Checksum(dst[start:])
	return binary.BigEndian.AppendUint32(dst, sum)
}

// DecodeFrame parses one complete frame from buf.  The returned
// payload aliases buf (zero copy).  Truncation and corruption come
// back as scoped errors of network scope, the codes the fault sweep
// asserts on.
func DecodeFrame(buf []byte) (cmd byte, seq uint16, payload []byte, err error) {
	if len(buf) < FrameOverhead {
		return 0, 0, nil, scope.New(scope.ScopeNetwork, CodeTruncatedFrame,
			"frame truncated: %d of %d header bytes", len(buf), FrameOverhead)
	}
	n := binary.BigEndian.Uint32(buf[3:7])
	if n > uint32(len(buf)-FrameOverhead) {
		return 0, 0, nil, scope.New(scope.ScopeNetwork, CodeTruncatedFrame,
			"frame truncated: %d of %d payload bytes", len(buf)-FrameOverhead, n)
	}
	end := frameHeaderLen + int(n)
	want := binary.BigEndian.Uint32(buf[end : end+frameTrailerLen])
	if got := Checksum(buf[:end]); got != want {
		return 0, 0, nil, scope.New(scope.ScopeNetwork, CodeChecksumMismatch,
			"frame checksum %08x, want %08x", got, want)
	}
	return buf[0], binary.BigEndian.Uint16(buf[1:3]), buf[frameHeaderLen:end], nil
}

// frameBufPool recycles frame buffers between connections; reads are
// zero copy into the pooled buffer.
var frameBufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 64<<10) },
}

// FrameReader reads frames from a stream, verifying checksum and
// sequence on each.  The payload returned by Next aliases an internal
// pooled buffer and is valid only until the next call.
type FrameReader struct {
	r   *bufio.Reader
	buf []byte
	max int
	seq uint16
}

// NewFrameReader wraps r; maxPayload <= 0 uses DefaultMaxPayload.
func NewFrameReader(r *bufio.Reader, maxPayload int) *FrameReader {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	return &FrameReader{r: r, buf: frameBufPool.Get().([]byte), max: maxPayload}
}

// Release returns the reader's buffer to the pool.  The reader must
// not be used afterwards.
func (fr *FrameReader) Release() {
	if fr.buf != nil {
		frameBufPool.Put(fr.buf[:0])
		fr.buf = nil
	}
}

// grow ensures the scratch buffer holds n bytes.
func (fr *FrameReader) grow(n int) []byte {
	if cap(fr.buf) < n {
		fr.buf = make([]byte, 0, n+n/2)
	}
	return fr.buf[:n]
}

// Next reads one frame.  A clean EOF before any header byte is
// io.EOF; anything partial is a truncated frame.  The payload is
// valid until the next call to Next.
func (fr *FrameReader) Next() (cmd byte, payload []byte, err error) {
	hdr := fr.grow(frameHeaderLen)
	if _, err := io.ReadFull(fr.r, hdr); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, scope.New(scope.ScopeNetwork, CodeTruncatedFrame,
			"frame header truncated: %v", err)
	}
	n := binary.BigEndian.Uint32(hdr[3:7])
	if n > uint32(fr.max) {
		return 0, nil, scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"frame payload %d exceeds limit %d", n, fr.max)
	}
	buf := fr.grow(frameHeaderLen + int(n) + frameTrailerLen)
	if _, err := io.ReadFull(fr.r, buf[frameHeaderLen:]); err != nil {
		return 0, nil, scope.New(scope.ScopeNetwork, CodeTruncatedFrame,
			"frame body truncated: %v", err)
	}
	end := frameHeaderLen + int(n)
	want := binary.BigEndian.Uint32(buf[end:])
	if got := Checksum(buf[:end]); got != want {
		return 0, nil, scope.New(scope.ScopeNetwork, CodeChecksumMismatch,
			"frame checksum %08x, want %08x", got, want)
	}
	got := binary.BigEndian.Uint16(buf[1:3])
	if got != fr.seq {
		if behind := fr.seq - got; behind <= replayWindow {
			return 0, nil, scope.New(scope.ScopeNetwork, CodeReplayedFrame,
				"frame sequence %d replayed (expected %d)", got, fr.seq)
		}
		return 0, nil, scope.New(scope.ScopeNetwork, CodeFrameProtocol,
			"frame sequence %d, expected %d", got, fr.seq)
	}
	fr.seq++
	return buf[0], buf[frameHeaderLen:end], nil
}

// FrameWriter writes frames to a stream, one Write call per frame: a
// response header and its payload leave in a single syscall, where the
// text protocol's line-plus-data shape could take two.
type FrameWriter struct {
	w   io.Writer
	buf []byte
	seq uint16
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: frameBufPool.Get().([]byte)}
}

// Release returns the writer's buffer to the pool.
func (fw *FrameWriter) Release() {
	if fw.buf != nil {
		frameBufPool.Put(fw.buf[:0])
		fw.buf = nil
	}
}

// WriteFrame encodes and writes one frame, advancing the sequence
// counter.
func (fw *FrameWriter) WriteFrame(cmd byte, parts ...[]byte) error {
	fw.buf = AppendFrame(fw.buf[:0], cmd, fw.seq, parts...)
	fw.seq++
	_, err := fw.w.Write(fw.buf)
	return err
}
