package wire

import (
	"encoding/binary"
	"fmt"

	"github.com/errscope/grid/internal/scope"
)

// Binary argument packing for the frame payloads: fixed-width
// big-endian integers and length-prefixed strings, replacing the text
// layer's Sprintf/Fields/Atoi round trip.

// AppendU16 appends a big-endian uint16.
func AppendU16(dst []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(dst, v)
}

// AppendU32 appends a big-endian uint32.
func AppendU32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

// AppendI64 appends a big-endian two's-complement int64.
func AppendI64(dst []byte, v int64) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(v))
}

// AppendStr appends a string with a uint16 length prefix.
func AppendStr(dst []byte, s string) []byte {
	dst = AppendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// Cursor decodes a packed payload.  Reads past the end set a sticky
// error flag instead of panicking; callers check OK (or Done) once at
// the end, keeping handler code linear.
type Cursor struct {
	b   []byte
	bad bool
}

// NewCursor wraps a payload for decoding.
func NewCursor(b []byte) Cursor { return Cursor{b: b} }

func (c *Cursor) take(n int) []byte {
	if c.bad || len(c.b) < n {
		c.bad = true
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

// U8 reads one byte.
func (c *Cursor) U8() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (c *Cursor) U16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (c *Cursor) U32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// I64 reads a big-endian two's-complement int64.
func (c *Cursor) I64() int64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// Str reads a uint16-length-prefixed string.
func (c *Cursor) Str() string {
	n := c.U16()
	b := c.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Rest returns everything remaining, consuming it.
func (c *Cursor) Rest() []byte {
	out := c.b
	c.b = nil
	return out
}

// RestString returns the remainder as a string, consuming it.
func (c *Cursor) RestString() string { return string(c.Rest()) }

// OK reports whether every read so far was in bounds.
func (c *Cursor) OK() bool { return !c.bad }

// Done reports whether the payload decoded cleanly and completely.
func (c *Cursor) Done() bool { return !c.bad && len(c.b) == 0 }

// EncodeErrorPayload packs a scoped error for an error frame:
//
//	scope(1) kind(1) code(str) message(str)
//
// the binary twin of EncodeError.  A plain error is presented at the
// fallback code and scope, kind explicit.
func EncodeErrorPayload(err error, fallbackCode string, fallbackScope scope.Scope) []byte {
	se, ok := scope.AsError(err)
	if !ok {
		se = scope.New(fallbackScope, fallbackCode, "%v", err)
	}
	msg := se.Message
	if msg == "" && se.Cause != nil {
		msg = se.Cause.Error()
	}
	dst := make([]byte, 0, 4+len(se.Code)+len(msg))
	dst = append(dst, byte(se.Scope), byte(se.Kind))
	dst = AppendStr(dst, se.Code)
	dst = AppendStr(dst, msg)
	return dst
}

// DecodeErrorPayload unpacks an error frame's payload.
func DecodeErrorPayload(b []byte) (*scope.Error, error) {
	cur := NewCursor(b)
	sc := scope.Scope(cur.U8())
	kind := scope.Kind(cur.U8())
	code := cur.Str()
	msg := cur.Str()
	if !cur.Done() || !sc.Valid() || code == "" ||
		kind < scope.KindImplicit || kind > scope.KindEscaping {
		return nil, fmt.Errorf("wire: malformed error payload (%d bytes)", len(b))
	}
	e := scope.New(sc, code, "%s", msg)
	e.Kind = kind
	return e, nil
}
