package chirp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

func dialBin(t *testing.T, addr, cookie string, mode wire.Mode) *Client {
	t.Helper()
	c, err := DialMode(addr, cookie, mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testAllOps drives every protocol operation through one client.
func testAllOps(t *testing.T, fs *vfs.FileSystem, c *Client) {
	t.Helper()
	fs.WriteFile("/in", []byte("hello frames"))

	fd, err := c.Open("/in", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c.Read(fd, 5); err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	if got, err := c.Read(fd, 100); err != nil || string(got) != " frames" {
		t.Fatalf("read2 = %q, %v", got, err)
	}
	if got, err := c.PRead(fd, 5, 6); err != nil || string(got) != "frame" {
		t.Fatalf("pread = %q, %v", got, err)
	}
	if pos, err := c.Seek(fd, 0, SeekSet); err != nil || pos != 0 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	if err := c.CloseFD(fd); err != nil {
		t.Fatal(err)
	}

	wfd, err := c.Open("/out dir/f 1", FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Write(wfd, []byte("abc")); err != nil || n != 3 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if n, err := c.PWrite(wfd, []byte("XY"), 1); err != nil || n != 2 {
		t.Fatalf("pwrite = %d, %v", n, err)
	}
	if err := c.CloseFD(wfd); err != nil {
		t.Fatal(err)
	}
	if data, _ := fs.ReadFile("/out dir/f 1"); string(data) != "aXY" {
		t.Fatalf("file = %q", data)
	}

	info, err := c.Stat("/out dir/f 1")
	if err != nil || info.Path != "/out dir/f 1" || info.Size != 3 {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	infos, err := c.List("/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %+v, %v", infos, err)
	}
	if err := c.Rename("/out dir/f 1", "/moved"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/moved"); err == nil {
		t.Fatal("stat after unlink should fail")
	}

	// Explicit errors cross the framed wire with their scope.
	_, err = c.Open("/absent", FlagRead)
	se, ok := scope.AsError(err)
	if !ok || se.Code != CodeFileNotFound || se.Scope != scope.ScopeFile || se.Kind != scope.KindExplicit {
		t.Fatalf("open missing = %v", err)
	}
	// BadFD is function scope, and the framed session survives it.
	_, err = c.Read(999, 4)
	se, ok = scope.AsError(err)
	if !ok || se.Code != CodeBadFD || se.Scope != scope.ScopeFunction {
		t.Fatalf("bad fd = %v", err)
	}
	if _, err := c.Stat("/in"); err != nil {
		t.Fatalf("session did not survive refusal: %v", err)
	}
}

func TestBinaryAllOps(t *testing.T) {
	fs, _, addr := startServer(t, "bin-cookie")
	testAllOps(t, fs, dialBin(t, addr, "bin-cookie", wire.ModeBinary))
}

func TestSecureAllOps(t *testing.T) {
	fs, _, addr := startServer(t, "sec-cookie")
	testAllOps(t, fs, dialBin(t, addr, "sec-cookie", wire.ModeSecure))
}

func TestBinaryBadCookie(t *testing.T) {
	for _, mode := range []wire.Mode{wire.ModeBinary, wire.ModeSecure} {
		_, _, addr := startServer(t, "right")
		_, err := DialMode(addr, "wrong", mode)
		if err == nil {
			t.Fatalf("%s: bad cookie accepted", mode)
		}
		se, ok := scope.AsError(err)
		if !ok || se.Code != CodeNotAuthed || se.Scope != scope.ScopeProcess || se.Kind != scope.KindExplicit {
			t.Errorf("%s: bad cookie error = %v", mode, err)
		}
	}
}

// TestHostileCookieRejectedAtDial covers the injection surface: a
// cookie with a newline would terminate the text frame early and a
// quote would splice the argument.  Both are refused before any bytes
// go out.
func TestHostileCookieRejectedAtDial(t *testing.T) {
	_, _, addr := startServer(t, "good")
	for _, cookie := range []string{"evil\nquit", "a\rb", `sp"lice`, "trail\n"} {
		for _, mode := range []wire.Mode{wire.ModeText, wire.ModeBinary, wire.ModeSecure} {
			_, err := DialOpts(addr, cookie, DialOptions{Mode: mode})
			se, ok := scope.AsError(err)
			if !ok || se.Code != CodeBadRequest || se.Scope != scope.ScopeFunction {
				t.Errorf("mode %s cookie %q: err = %v", mode, cookie, err)
			}
		}
	}
}

// silentServer accepts connections, answers the text cookie exchange,
// then never responds again — the hung-proxy shape that used to stall
// the client forever.
func silentServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				line, err := r.ReadString('\n')
				if err != nil || !strings.HasPrefix(line, "cookie ") {
					return
				}
				fmt.Fprint(conn, "ok\n")
				// Swallow everything else, answer nothing.
				buf := make([]byte, 1024)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestSilentServerRequestTimeout(t *testing.T) {
	addr := silentServer(t)
	c, err := DialOpts(addr, "k", DialOptions{IOTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Open("/x", FlagRead)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v, deadline did not bound it", elapsed)
	}
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("unscoped: %v", err)
	}
	if se.Code != CodeRequestTimeout || se.Scope != scope.ScopeNetwork || se.Kind != scope.KindEscaping {
		t.Fatalf("timeout error = %+v", se)
	}
	// The failure is sticky: the connection is dead, later calls
	// return the same scoped error without blocking.
	if _, err2 := c.Read(3, 1); err2 == nil {
		t.Fatal("dead client answered")
	}
}

// TestSilentServerTimeoutBinary covers the deadline on the framed
// path: the handshake itself hangs, and the dial must fail with a
// network-scope timeout instead of blocking.
func TestSilentServerTimeoutBinary(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Read forever, never answer the handshake.
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	start := time.Now()
	_, err = DialOpts(ln.Addr().String(), "k", DialOptions{Mode: wire.ModeBinary, IOTimeout: 150 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial took %v", elapsed)
	}
	se, ok := scope.AsError(err)
	if !ok || se.Scope != scope.ScopeNetwork || se.Kind != scope.KindEscaping {
		t.Fatalf("handshake timeout = %v", err)
	}
}

func TestBinaryGetdirPathsWithSpaces(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/dir/a  b", []byte("1"))
	fs.WriteFile("/dir/c   d", []byte("22"))
	c := dialBin(t, addr, "k", wire.ModeBinary)
	infos, err := c.List("/dir/")
	if err != nil || len(infos) != 2 {
		t.Fatalf("list = %+v, %v", infos, err)
	}
	// Consecutive spaces survive the binary encoding exactly.
	if infos[0].Path != "/dir/a  b" || infos[1].Path != "/dir/c   d" {
		t.Fatalf("paths = %q, %q", infos[0].Path, infos[1].Path)
	}
}

// TestSecureKeyExpiryIsLocalResource exhausts a tiny client-side key
// budget and checks the classification: the transport is fine, the
// session's credential is spent — local-resource scope, like an
// expired proxy certificate.
func TestSecureKeyExpiryIsLocalResource(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/in", []byte("0123456789"))
	c, err := DialOpts(addr, "k", DialOptions{Mode: wire.ModeSecure, RekeyAfter: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fd, err := c.Open("/in", FlagRead) // sealed frames: proof(1) open(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(fd, 4); err != nil { // (3)
		t.Fatal(err)
	}
	if _, err := c.Read(fd, 4); err != nil { // (4) budget spent
		t.Fatal(err)
	}
	_, err = c.Read(fd, 4) // (5) refused locally before sending
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("unscoped: %v", err)
	}
	if se.Code != wire.CodeKeyExpired || se.Scope != scope.ScopeLocalResource || se.Kind != scope.KindEscaping {
		t.Fatalf("key expiry = %+v", se)
	}
}
