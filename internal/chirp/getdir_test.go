package chirp

import (
	"testing"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

func TestGetdir(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/data/a", []byte("aa"))
	fs.WriteFile("/data/b", []byte("b"))
	fs.WriteFile("/other", []byte("x"))
	fs.SetReadOnly("/data/a", true)
	c := dial(t, addr, "k")

	infos, err := c.List("/data")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %+v", infos)
	}
	if infos[0].Path != "/data/a" || infos[0].Size != 2 || !infos[0].ReadOnly {
		t.Errorf("info[0] = %+v", infos[0])
	}
	if infos[1].Path != "/data/b" || infos[1].ReadOnly {
		t.Errorf("info[1] = %+v", infos[1])
	}

	all, err := c.List("")
	if err != nil || len(all) != 3 {
		t.Errorf("all = %+v, %v", all, err)
	}
	none, err := c.List("/empty")
	if err != nil || len(none) != 0 {
		t.Errorf("none = %+v, %v", none, err)
	}

	// Offline backend propagates scope through getdir.
	fs.SetOffline(true)
	_, err = c.List("/data")
	se, _ := scope.AsError(err)
	if se == nil || se.Code != vfs.CodeOffline || se.Scope != scope.ScopeLocalResource {
		t.Errorf("offline getdir = %v", err)
	}
	fs.SetOffline(false)

	// The session keeps working after list traffic.
	if _, err := c.Stat("/other"); err != nil {
		t.Errorf("after getdir: %v", err)
	}
}

func TestGetdirPathWithSpaces(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/dir/name with spaces", []byte("1"))
	c := dial(t, addr, "k")
	infos, err := c.List("/dir")
	if err != nil || len(infos) != 1 || infos[0].Path != "/dir/name with spaces" {
		t.Errorf("infos = %+v, %v", infos, err)
	}
}
