package chirp

import (
	"strconv"
	"strings"
	"testing"

	"github.com/errscope/grid/internal/scope"
)

// TestServerErrorPaths drives the rarely-hit error branches of the
// request handlers with a raw protocol session and checks the server
// answers an error line (and stays alive) for each.
func TestServerErrorPaths(t *testing.T) {
	fs, srv, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("x"))
	var faults []error
	srv.ErrorLog = func(err error) { faults = append(faults, err) }

	raw, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.close()
	if resp := raw.send("cookie \"k\"\n"); !strings.HasPrefix(resp, "ok") {
		t.Fatalf("auth: %q", resp)
	}

	cases := []struct {
		req  string
		want string
	}{
		{"rename \"/f\"\n", CodeBadRequest},            // arity
		{"rename bad \"/y\"\n", CodeBadRequest},        // unquoted old path
		{"rename \"/f\" bad\n", CodeBadRequest},        // unquoted new path
		{"rename \"/ghost\" \"/y\"\n", "FileNotFound"}, // backend error
		{"unlink\n", CodeBadRequest},                   // arity
		{"unlink bad\n", CodeBadRequest},               // unquoted path
		{"stat\n", CodeBadRequest},                     // arity
		{"stat bad\n", CodeBadRequest},                 // unquoted path
		{"stat \"/ghost\"\n", "FileNotFound"},          // backend error
		{"getdir bad\n", CodeBadRequest},               // unquoted prefix
		{"open \"/f\"\n", CodeBadRequest},              // arity
		{"open \"/f\" q\n", CodeBadRequest},            // bad flags
		{"pread 3 1\n", CodeBadRequest},                // arity
		{"lseek 3 0\n", CodeBadRequest},                // arity
		{"close\n", CodeBadRequest},                    // missing fd
		{"close notanumber\n", CodeBadRequest},         // bad fd
	}
	for _, c := range cases {
		resp := raw.send(c.req)
		if !strings.HasPrefix(resp, "error ") || !strings.Contains(resp, c.want) {
			t.Errorf("%q -> %q, want error containing %q", strings.TrimSpace(c.req), resp, c.want)
		}
	}
	// The session is still alive and functional.
	if resp := raw.send("stat \"/f\"\n"); !strings.HasPrefix(resp, "ok ") {
		t.Errorf("session dead after error traffic: %q", resp)
	}
	// Quit ends politely.
	if resp := raw.send("quit\n"); !strings.HasPrefix(resp, "ok") {
		t.Errorf("quit: %q", resp)
	}
}

// TestServerWriteFramingSurvivesBadFD is the regression for the
// protocol-desync bug: a write naming an fd that is not open still
// carries its declared payload on the wire.  The server must consume
// those bytes before replying, or the next request line would be
// parsed out of the middle of the payload.
func TestServerWriteFramingSurvivesBadFD(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("x"))
	raw, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.close()
	if resp := raw.send("cookie \"k\"\n"); !strings.HasPrefix(resp, "ok") {
		t.Fatalf("auth: %q", resp)
	}
	// The payload "stat" is chosen adversarially: if the server fails
	// to consume it, the next parse would see a valid-looking verb.
	for _, req := range []string{
		"write 99 4\nstat",
		"pwrite 99 4 0\nstat",
		"pwrite 3 4 notanoffset\nstat", // payload read, then offset rejected
	} {
		resp := raw.send(req)
		if !strings.HasPrefix(resp, "error ") {
			t.Fatalf("%q -> %q, want an error line", req, resp)
		}
		// The session must still be framed: the next command parses
		// and succeeds.
		if resp := raw.send("stat \"/f\"\n"); !strings.HasPrefix(resp, "ok ") {
			t.Fatalf("session desynchronized after %q: stat -> %q", req, resp)
		}
	}
}

// TestServerWriteOversizedLengthKeepsSession: a parseable length past
// the payload limit is a refusal, not a teardown — the framing is
// intact, so the server discards exactly the declared bytes and keeps
// serving.
func TestServerWriteOversizedLengthKeepsSession(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("x"))
	raw, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.close()
	if resp := raw.send("cookie \"k\"\n"); !strings.HasPrefix(resp, "ok") {
		t.Fatalf("auth: %q", resp)
	}
	over := maxDataLen + 3
	payload := strings.Repeat("a", over)
	resp := raw.send("write 3 " + strconv.Itoa(over) + "\n" + payload)
	if !strings.HasPrefix(resp, "error ") || !strings.Contains(resp, CodeBadRequest) {
		t.Fatalf("oversized write -> %q, want %s", resp, CodeBadRequest)
	}
	if resp := raw.send("stat \"/f\"\n"); !strings.HasPrefix(resp, "ok ") {
		t.Fatalf("session dead after oversized write: %q", resp)
	}
	// An unparseable length, by contrast, still tears the session
	// down: there is no way to know how many bytes follow.
	resp = raw.send("write 3 notanumber\n")
	if !strings.Contains(resp, CodeBadRequest) {
		t.Fatalf("unparseable length -> %q", resp)
	}
	if resp := raw.send("stat \"/f\"\n"); resp != "" {
		t.Fatalf("connection should be closed after unframed write, got %q", resp)
	}
}

// TestServerLogsConnectionFaults exercises the ErrorLog path for an
// unframed write, which tears the connection down.
func TestServerLogsConnectionFaults(t *testing.T) {
	_, srv, addr := startServer(t, "k")
	logged := make(chan error, 1)
	srv.ErrorLog = func(err error) {
		select {
		case logged <- err:
		default:
		}
	}
	raw, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.close()
	raw.send("cookie \"k\"\n")
	// Bad length: the server cannot re-frame the stream and must
	// drop the connection after answering.
	resp := raw.send("write 3 notanumber\n")
	if !strings.Contains(resp, CodeBadRequest) {
		t.Fatalf("resp = %q", resp)
	}
	select {
	case err := <-logged:
		if scope.ScopeOf(err) != scope.ScopeNetwork {
			t.Errorf("logged fault = %v", err)
		}
	default:
		// The log may race the response read; poll briefly.
	}
}
