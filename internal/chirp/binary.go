package chirp

import (
	"bufio"
	"io"
	"net"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// The binary server side.  The framing is self-delimiting (every
// request is one checksummed frame), so unlike the text protocol a
// malformed request can never desynchronize the stream: the server
// replies with a function-scope error and keeps the session.

// serveBinary handles one framed connection; r already holds the
// peeked first byte.
func (s *Server) serveBinary(conn net.Conn, r *bufio.Reader) {
	sess := wire.NewSession(r, conn, wire.Config{
		Secret: []byte(s.secret),
		AuthFailure: func() *scope.Error {
			return scope.New(scope.ScopeProcess, CodeNotAuthed, "bad cookie")
		},
	})
	defer sess.Release()
	if err := sess.ServerHandshake(); err != nil {
		s.logErr(err)
		return
	}
	st := &session{files: make(map[int]File), pos: make(map[int]int64), nextFD: 3}
	defer func() {
		for _, f := range st.files {
			f.Close()
		}
	}()
	var resp []byte
	for {
		cmd, pl, err := sess.ReadMsg()
		if err != nil {
			if err != io.EOF {
				s.logErr(err)
			}
			return
		}
		quit, err := s.handleBin(st, sess, cmd, pl, &resp)
		if err != nil {
			s.logErr(err)
			return
		}
		if quit {
			return
		}
	}
}

// binErr sends a scoped error response frame.
func binErr(sess *wire.Session, err error) error {
	return sess.WriteError(err, CodeBackend, scope.ScopeLocalResource)
}

func binBadRequest(sess *wire.Session, format string, args ...any) error {
	return binErr(sess, scope.New(scope.ScopeFunction, CodeBadRequest, format, args...))
}

// handleBin processes one request frame.  The returned error is fatal
// to the connection (the response write failed); protocol-level
// refusals are answered in-band.
func (s *Server) handleBin(st *session, sess *wire.Session, cmd byte, pl []byte, resp *[]byte) (quit bool, fatal error) {
	cur := wire.NewCursor(pl)
	switch cmd {
	case binQuit:
		return true, sess.WriteMsg(wire.CmdOK)

	case binOpen:
		flags := OpenFlags(cur.U8())
		path := cur.RestString()
		if !cur.OK() {
			return false, binBadRequest(sess, "open: short payload")
		}
		f, err := s.backend.Open(path, flags)
		if err != nil {
			return false, binErr(sess, err)
		}
		fd := st.nextFD
		st.nextFD++
		st.files[fd] = f
		if flags&FlagAppend != 0 {
			if size, serr := f.Size(); serr == nil {
				st.pos[fd] = size
			}
		} else {
			st.pos[fd] = 0
		}
		*resp = wire.AppendU32((*resp)[:0], uint32(fd))
		return false, sess.WriteMsg(wire.CmdOK, *resp)

	case binClose:
		fd, f, errResp := st.lookupBinFD(&cur)
		if errResp != nil {
			return false, binErr(sess, errResp)
		}
		delete(st.files, fd)
		delete(st.pos, fd)
		if err := f.Close(); err != nil {
			return false, binErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK)

	case binRead, binPRead:
		fd, f, errResp := st.lookupBinFD(&cur)
		if errResp != nil {
			return false, binErr(sess, errResp)
		}
		length := int(cur.U32())
		offset := st.pos[fd]
		if cmd == binPRead {
			offset = cur.I64()
		}
		if !cur.Done() || length < 0 || length > maxDataLen {
			return false, binBadRequest(sess, "read: bad arguments")
		}
		data, err := f.ReadAt(offset, length)
		if err != nil {
			return false, binErr(sess, err)
		}
		if cmd == binRead {
			st.pos[fd] = offset + int64(len(data))
		}
		return false, sess.WriteMsg(wire.CmdOK, data)

	case binWrite:
		fd, f, errResp := st.lookupBinFD(&cur)
		if errResp != nil {
			return false, binErr(sess, errResp)
		}
		data := cur.Rest()
		offset := st.pos[fd]
		n, err := f.WriteAt(offset, data)
		if err != nil {
			return false, binErr(sess, err)
		}
		st.pos[fd] = offset + int64(n)
		*resp = wire.AppendU32((*resp)[:0], uint32(n))
		return false, sess.WriteMsg(wire.CmdOK, *resp)

	case binPWrite:
		_, f, errResp := st.lookupBinFD(&cur)
		if errResp != nil {
			return false, binErr(sess, errResp)
		}
		offset := cur.I64()
		data := cur.Rest()
		if !cur.OK() {
			return false, binBadRequest(sess, "pwrite: short payload")
		}
		n, err := f.WriteAt(offset, data)
		if err != nil {
			return false, binErr(sess, err)
		}
		*resp = wire.AppendU32((*resp)[:0], uint32(n))
		return false, sess.WriteMsg(wire.CmdOK, *resp)

	case binSeek:
		fd, f, errResp := st.lookupBinFD(&cur)
		if errResp != nil {
			return false, binErr(sess, errResp)
		}
		whence := int(cur.U8())
		off := cur.I64()
		if !cur.Done() {
			return false, binBadRequest(sess, "lseek: bad arguments")
		}
		var base int64
		switch whence {
		case SeekSet:
			base = 0
		case SeekCur:
			base = st.pos[fd]
		case SeekEnd:
			size, err := f.Size()
			if err != nil {
				return false, binErr(sess, err)
			}
			base = size
		default:
			return false, binBadRequest(sess, "bad whence %d", whence)
		}
		pos := base + off
		if pos < 0 {
			return false, binBadRequest(sess, "negative seek position")
		}
		st.pos[fd] = pos
		*resp = wire.AppendI64((*resp)[:0], pos)
		return false, sess.WriteMsg(wire.CmdOK, *resp)

	case binUnlink:
		if err := s.backend.Unlink(cur.RestString()); err != nil {
			return false, binErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK)

	case binRename:
		oldPath := cur.Str()
		newPath := cur.RestString()
		if !cur.OK() {
			return false, binBadRequest(sess, "rename: short payload")
		}
		if err := s.backend.Rename(oldPath, newPath); err != nil {
			return false, binErr(sess, err)
		}
		return false, sess.WriteMsg(wire.CmdOK)

	case binStat:
		info, err := s.backend.Stat(cur.RestString())
		if err != nil {
			return false, binErr(sess, err)
		}
		out := wire.AppendI64((*resp)[:0], info.Size)
		out = append(out, roByte(info.ReadOnly))
		out = append(out, info.Path...)
		*resp = out
		return false, sess.WriteMsg(wire.CmdOK, out)

	case binGetdir:
		infos, err := s.backend.List(cur.RestString())
		if err != nil {
			return false, binErr(sess, err)
		}
		out := wire.AppendU32((*resp)[:0], uint32(len(infos)))
		for _, info := range infos {
			out = wire.AppendI64(out, info.Size)
			out = append(out, roByte(info.ReadOnly))
			out = wire.AppendStr(out, info.Path)
		}
		*resp = out
		return false, sess.WriteMsg(wire.CmdOK, out)
	}
	return false, binBadRequest(sess, "unknown command %#x", cmd)
}

func roByte(ro bool) byte {
	if ro {
		return 1
	}
	return 0
}

// lookupBinFD reads and resolves a descriptor argument; a nil File
// with a non-nil error means "answer with this and keep the session".
func (st *session) lookupBinFD(cur *wire.Cursor) (int, File, error) {
	fd := int(cur.U32())
	if !cur.OK() {
		return 0, nil, scope.New(scope.ScopeFunction, CodeBadRequest, "missing fd")
	}
	f, ok := st.files[fd]
	if !ok {
		return 0, nil, scope.New(scope.ScopeFunction, CodeBadFD, "fd %d not open", fd)
	}
	return fd, f, nil
}
