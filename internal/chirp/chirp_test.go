package chirp

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// startServer brings up a proxy over a fresh vfs on an ephemeral
// loopback port.
func startServer(t *testing.T, secret string) (*vfs.FileSystem, *Server, string) {
	t.Helper()
	fs := vfs.New()
	srv := NewServer(&VFSBackend{FS: fs}, secret)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return fs, srv, addr
}

func dial(t *testing.T, addr, cookie string) *Client {
	t.Helper()
	c, err := Dial(addr, cookie)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAuthentication(t *testing.T) {
	_, _, addr := startServer(t, "s3cret")
	// Correct cookie works.
	c := dial(t, addr, "s3cret")
	if _, err := c.Open("/x", FlagWrite|FlagCreate); err != nil {
		t.Fatal(err)
	}
	// Wrong cookie is refused with process scope.
	_, err := Dial(addr, "wrong")
	if err == nil {
		t.Fatal("bad cookie accepted")
	}
	se, ok := scope.AsError(err)
	if !ok || se.Code != CodeNotAuthed || se.Scope != scope.ScopeProcess {
		t.Errorf("bad cookie error = %v", err)
	}
}

func TestOpenReadWrite(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/in", []byte("hello chirp"))
	c := dial(t, addr, "k")

	fd, err := c.Open("/in", FlagRead)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(fd, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Sequential position advances.
	got, err = c.Read(fd, 100)
	if err != nil || string(got) != " chirp" {
		t.Fatalf("read2 = %q, %v", got, err)
	}
	// EOF is an explicit file-scope error.
	_, err = c.Read(fd, 1)
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeEndOfFile || se.Scope != scope.ScopeFile {
		t.Fatalf("eof = %v", err)
	}
	if err := c.CloseFD(fd); err != nil {
		t.Fatal(err)
	}

	// Write a new file.
	wfd, err := c.Open("/out", FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Write(wfd, []byte("abc"))
	if err != nil || n != 3 {
		t.Fatalf("write = %d, %v", n, err)
	}
	n, err = c.Write(wfd, []byte("def"))
	if err != nil || n != 3 {
		t.Fatalf("write2 = %d, %v", n, err)
	}
	c.CloseFD(wfd)
	data, err := fs.ReadFile("/out")
	if err != nil || string(data) != "abcdef" {
		t.Fatalf("server file = %q, %v", data, err)
	}
}

func TestPReadPWriteSeek(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("0123456789"))
	c := dial(t, addr, "k")
	fd, err := c.Open("/f", FlagRead|FlagWrite)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PRead(fd, 3, 4)
	if err != nil || string(got) != "456" {
		t.Fatalf("pread = %q, %v", got, err)
	}
	// PRead does not move the sequential position.
	got, _ = c.Read(fd, 2)
	if string(got) != "01" {
		t.Fatalf("read after pread = %q", got)
	}
	if _, err := c.PWrite(fd, []byte("XY"), 8); err != nil {
		t.Fatal(err)
	}
	pos, err := c.Seek(fd, -4, SeekEnd)
	if err != nil || pos != 6 {
		t.Fatalf("seek = %d, %v", pos, err)
	}
	got, _ = c.Read(fd, 4)
	if string(got) != "67XY" {
		t.Fatalf("read after seek = %q", got)
	}
	pos, err = c.Seek(fd, 1, SeekSet)
	if err != nil || pos != 1 {
		t.Fatalf("seek set = %d, %v", pos, err)
	}
	pos, err = c.Seek(fd, 2, SeekCur)
	if err != nil || pos != 3 {
		t.Fatalf("seek cur = %d, %v", pos, err)
	}
	if _, err = c.Seek(fd, -100, SeekSet); err == nil {
		t.Error("negative seek should fail")
	}
	if _, err = c.Seek(fd, 0, 9); err == nil {
		t.Error("bad whence should fail")
	}
}

func TestAppendFlag(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/log", []byte("line1\n"))
	c := dial(t, addr, "k")
	fd, err := c.Open("/log", FlagWrite|FlagAppend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(fd, []byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile("/log")
	if string(data) != "line1\nline2\n" {
		t.Errorf("data = %q", data)
	}
}

func TestTruncateFlag(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("old content"))
	c := dial(t, addr, "k")
	fd, err := c.Open("/f", FlagWrite|FlagTruncate)
	if err != nil {
		t.Fatal(err)
	}
	c.Write(fd, []byte("new"))
	data, _ := fs.ReadFile("/f")
	if string(data) != "new" {
		t.Errorf("data = %q", data)
	}
}

func TestExplicitErrorsCrossTheWireWithScope(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	c := dial(t, addr, "k")

	// FileNotFound: file scope.
	_, err := c.Open("/missing", FlagRead)
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeFileNotFound || se.Scope != scope.ScopeFile {
		t.Errorf("open missing = %v", err)
	}

	// DiskFull from quota: file scope across the wire.
	fs.SetQuota(4)
	fd, err := c.Open("/small", FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Write(fd, []byte("too big for quota"))
	se, _ = scope.AsError(err)
	if se == nil || se.Code != vfs.CodeDiskFull || se.Scope != scope.ScopeFile {
		t.Errorf("disk full = %v", err)
	}

	// Offline backing store: local-resource scope crosses the wire.
	fs.SetOffline(true)
	_, err = c.Open("/other", FlagRead)
	se, _ = scope.AsError(err)
	if se == nil || se.Code != vfs.CodeOffline || se.Scope != scope.ScopeLocalResource {
		t.Errorf("offline = %v", err)
	}
	fs.SetOffline(false)

	// Access-mode violations.
	rofd, _ := c.Open("/small", FlagRead)
	_, err = c.Write(rofd, []byte("x"))
	se, _ = scope.AsError(err)
	if se == nil || se.Code != CodeAccessDenied {
		t.Errorf("write to read-only fd = %v", err)
	}
	_, err = c.Read(fd, 1)
	se, _ = scope.AsError(err)
	if se == nil || se.Code != CodeAccessDenied {
		t.Errorf("read from write-only fd = %v", err)
	}

	// Bad fd.
	err = c.CloseFD(99)
	se, _ = scope.AsError(err)
	if se == nil || se.Code != CodeBadFD || se.Scope != scope.ScopeFunction {
		t.Errorf("bad fd = %v", err)
	}
}

func TestUnlinkRenameStat(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/a", []byte("abc"))
	c := dial(t, addr, "k")

	info, err := c.Stat("/a")
	if err != nil || info.Size != 3 || info.Path != "/a" {
		t.Fatalf("stat = %+v, %v", info, err)
	}
	if err := c.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a"); err == nil {
		t.Error("stat of renamed-away file should fail")
	}
	if err := c.Unlink("/b"); err != nil {
		t.Fatal(err)
	}
	err = c.Unlink("/b")
	se, _ := scope.AsError(err)
	if se == nil || se.Code != CodeFileNotFound {
		t.Errorf("double unlink = %v", err)
	}
}

func TestConnectionLossIsEscaping(t *testing.T) {
	_, srv, addr := startServer(t, "k")
	c := dial(t, addr, "k")
	fd, err := c.Open("/f", FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server mid-session: the next call must produce an
	// escaping error of network scope, not a fake explicit result
	// (Principles 1 and 2).
	srv.Close()
	_, err = c.Write(fd, []byte("x"))
	se, _ := scope.AsError(err)
	if se == nil || se.Kind != scope.KindEscaping || se.Scope != scope.ScopeNetwork {
		t.Fatalf("write after server death = %v", err)
	}
	// The client is sticky-dead afterwards.
	_, err = c.Read(fd, 1)
	se2, _ := scope.AsError(err)
	if se2 == nil || se2.Kind != scope.KindEscaping {
		t.Fatalf("second call = %v", err)
	}
}

func TestClientErrorsConformToContract(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("x"))
	c := dial(t, addr, "k")
	contract := Contract()
	var errs []error
	_, e := c.Open("/missing", FlagRead)
	errs = append(errs, e)
	errs = append(errs, c.Unlink("/none"))
	errs = append(errs, c.CloseFD(42))
	for _, err := range errs {
		if err == nil {
			t.Fatal("want error")
		}
		if v := contract.Violations(err); v != "" {
			t.Errorf("violation: %s", v)
		}
	}
}

func TestServerSurvivesGarbage(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	fs.WriteFile("/f", []byte("x"))
	// Throw protocol garbage at the server, then confirm a fresh
	// legitimate session still works.
	garbage := []string{
		"\n",
		"bogusverb\n",
		"open\n",
		"open \"x\n",
		"read notanumber 5\n",
		"write 3 -1\n",
		"lseek 3 a b\n",
		"cookie\n",
	}
	for _, g := range garbage {
		func() {
			conn, err := Dial(addr, "k")
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			conn.mu.Lock()
			conn.w.WriteString(g)
			conn.w.Flush()
			conn.mu.Unlock()
		}()
	}
	time.Sleep(20 * time.Millisecond)
	c := dial(t, addr, "k")
	if _, err := c.Stat("/f"); err != nil {
		t.Fatalf("server unusable after garbage: %v", err)
	}
}

func TestUnauthenticatedOpsRefused(t *testing.T) {
	_, _, addr := startServer(t, "k")
	// Dial raw: send an op before the cookie.
	c := &Client{}
	_ = c
	conn, err := Dial(addr, "k") // authenticated, used as transport template
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Hand-rolled unauthenticated session.
	raw, err := dialRaw(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.close()
	resp := raw.send("open \"/f\" r\n")
	if !strings.Contains(resp, CodeNotAuthed) {
		t.Errorf("resp = %q", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(addr, "k")
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			path := "/file" + string(rune('a'+n))
			fd, err := c.Open(path, FlagWrite|FlagCreate)
			if err != nil {
				errCh <- err
				return
			}
			for j := 0; j < 50; j++ {
				if _, err := c.Write(fd, bytes.Repeat([]byte{byte(n)}, 10)); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	list, _ := fs.List("")
	if len(list) != 8 {
		t.Errorf("files = %d", len(list))
	}
	for _, info := range list {
		if info.Size != 500 {
			t.Errorf("%s size = %d", info.Path, info.Size)
		}
	}
}

func TestWireDataRoundTripProperty(t *testing.T) {
	fs, _, addr := startServer(t, "k")
	_ = fs
	c := dial(t, addr, "k")
	fd, err := c.Open("/prop", FlagRead|FlagWrite|FlagCreate)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := c.PWrite(fd, data, 0); err != nil {
			return false
		}
		got, err := c.PRead(fd, len(data), 0)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpenFlagsRoundTrip(t *testing.T) {
	prop := func(raw uint8) bool {
		f := OpenFlags(raw) & (FlagRead | FlagWrite | FlagCreate | FlagTruncate | FlagAppend)
		parsed, err := ParseOpenFlags(f.String())
		return err == nil && parsed == f
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if _, err := ParseOpenFlags("z"); err == nil {
		t.Error("bad flag should fail")
	}
}
