package chirp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// Client is the I/O-library side of the Chirp protocol.  All methods
// return scoped errors: explicit protocol errors carry the code and
// scope sent by the proxy; transport failures become escaping errors
// of network scope, because a broken connection is inexpressible in
// the file interface (Principle 2).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	dead error // sticky escaping error once the transport fails

	// Trace, when non-nil and enabled, receives an error event the
	// first time the transport fails; TraceJob tags it.  Set both
	// before issuing requests.
	Trace    obs.Tracer
	TraceJob int64
}

// Dial connects to a Chirp proxy and authenticates with the cookie.
func Dial(addr, cookie string) (*Client, error) {
	return DialTimeout(addr, cookie, 10*time.Second)
}

// DialTimeout is Dial with a connection timeout.
func DialTimeout(addr, cookie string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, _, err := c.roundTrip(fmt.Sprintf("cookie %s\n", quoteArg(cookie)), 0); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	fmt.Fprint(c.w, "quit\n")
	c.w.Flush()
	err := c.conn.Close()
	c.conn = nil
	return err
}

// fail records and returns a sticky transport error.
func (c *Client) fail(err error) error {
	esc := scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	first := c.dead == nil
	c.dead = esc
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if first && c.Trace != nil && c.Trace.Enabled() {
		// One origin event per connection death; later calls return
		// the sticky error without re-reporting.
		c.Trace.Emit(obs.Event{
			T:      time.Now().UnixNano(),
			Comp:   "chirp-client",
			Kind:   obs.KindError,
			Job:    c.TraceJob,
			Code:   CodeConnectionLost,
			Scope:  scope.ScopeNetwork.String(),
			EKind:  "escaping",
			Detail: esc.Error(),
		})
		c.Trace.Count("chirp.transport_failures", 1)
	}
	return esc
}

// roundTrip sends one request line (plus optional payload) and reads
// the response line; wantData is the number of payload bytes to read
// after an "ok n" response (capped at n).  Callers hold no lock.
func (c *Client) roundTrip(request string, wantData int, payload ...[]byte) (value string, data []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return "", nil, c.dead
	}
	if c.conn == nil {
		return "", nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	if _, err := io.WriteString(c.w, request); err != nil {
		return "", nil, c.fail(err)
	}
	for _, p := range payload {
		if _, err := c.w.Write(p); err != nil {
			return "", nil, c.fail(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return "", nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil, c.fail(fmt.Errorf("empty response"))
	}
	switch fields[0] {
	case "ok":
		value = strings.Join(fields[1:], " ")
		if wantData > 0 {
			n, convErr := strconv.Atoi(fields[1])
			if convErr != nil || n < 0 || n > maxDataLen {
				return "", nil, c.fail(fmt.Errorf("bad data length %q", line))
			}
			data = make([]byte, n)
			if _, err := io.ReadFull(c.r, data); err != nil {
				return "", nil, c.fail(err)
			}
		}
		return value, data, nil
	case "error":
		se, decErr := decodeErrorLine(fields[1:])
		if decErr != nil {
			return "", nil, c.fail(decErr)
		}
		return "", nil, se
	default:
		return "", nil, c.fail(fmt.Errorf("bad response %q", line))
	}
}

// Open opens a remote file and returns its descriptor.
func (c *Client) Open(path string, flags OpenFlags) (int, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("open %s %s\n", quoteArg(path), flags), 0)
	if err != nil {
		return -1, err
	}
	fd, convErr := strconv.Atoi(v)
	if convErr != nil {
		return -1, c.fail(fmt.Errorf("bad open response %q", v))
	}
	return fd, nil
}

// CloseFD closes a remote descriptor.
func (c *Client) CloseFD(fd int) error {
	_, _, err := c.roundTrip(fmt.Sprintf("close %d\n", fd), 0)
	return err
}

// Read reads up to length bytes from the descriptor's current offset.
func (c *Client) Read(fd, length int) ([]byte, error) {
	_, data, err := c.roundTrip(fmt.Sprintf("read %d %d\n", fd, length), length)
	return data, err
}

// PRead reads up to length bytes at the given offset.
func (c *Client) PRead(fd, length int, offset int64) ([]byte, error) {
	_, data, err := c.roundTrip(fmt.Sprintf("pread %d %d %d\n", fd, length, offset), length)
	return data, err
}

// Write writes data at the descriptor's current offset.
func (c *Client) Write(fd int, data []byte) (int, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("write %d %d\n", fd, len(data)), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.fail(fmt.Errorf("bad write response %q", v))
	}
	return n, nil
}

// PWrite writes data at the given offset.
func (c *Client) PWrite(fd int, data []byte, offset int64) (int, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("pwrite %d %d %d\n", fd, len(data), offset), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.fail(fmt.Errorf("bad pwrite response %q", v))
	}
	return n, nil
}

// Seek repositions the descriptor and returns the new offset.
func (c *Client) Seek(fd int, offset int64, whence int) (int64, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("lseek %d %d %d\n", fd, offset, whence), 0)
	if err != nil {
		return 0, err
	}
	pos, convErr := strconv.ParseInt(v, 10, 64)
	if convErr != nil {
		return 0, c.fail(fmt.Errorf("bad lseek response %q", v))
	}
	return pos, nil
}

// Unlink removes a remote file.
func (c *Client) Unlink(path string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("unlink %s\n", quoteArg(path)), 0)
	return err
}

// Rename moves a remote file.
func (c *Client) Rename(oldPath, newPath string) error {
	_, _, err := c.roundTrip(fmt.Sprintf("rename %s %s\n", quoteArg(oldPath), quoteArg(newPath)), 0)
	return err
}

// List enumerates remote files under a prefix.
func (c *Client) List(prefix string) ([]vfs.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	if _, err := fmt.Fprintf(c.w, "getdir %s\n", quoteArg(prefix)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, c.fail(err)
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) == 0 {
		return nil, c.fail(fmt.Errorf("empty response"))
	}
	if fields[0] == "error" {
		se, decErr := decodeErrorLine(fields[1:])
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	}
	if fields[0] != "ok" || len(fields) != 2 {
		return nil, c.fail(fmt.Errorf("bad getdir response %q", line))
	}
	n, convErr := strconv.Atoi(fields[1])
	if convErr != nil || n < 0 || n > 1<<20 {
		return nil, c.fail(fmt.Errorf("bad getdir count %q", fields[1]))
	}
	out := make([]vfs.Info, 0, n)
	for i := 0; i < n; i++ {
		entry, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		ef := strings.Fields(strings.TrimRight(entry, "\r\n"))
		if len(ef) < 3 {
			return nil, c.fail(fmt.Errorf("bad getdir entry %q", entry))
		}
		size, e1 := strconv.ParseInt(ef[0], 10, 64)
		ro, e2 := strconv.Atoi(ef[1])
		p, e3 := unquoteArg(strings.Join(ef[2:], " "))
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, c.fail(fmt.Errorf("bad getdir entry %q", entry))
		}
		out = append(out, vfs.Info{Path: p, Size: size, ReadOnly: ro != 0})
	}
	return out, nil
}

// Stat describes a remote file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	v, _, err := c.roundTrip(fmt.Sprintf("stat %s\n", quoteArg(path)), 0)
	if err != nil {
		return vfs.Info{}, err
	}
	fields := strings.Fields(v)
	if len(fields) < 3 {
		return vfs.Info{}, c.fail(fmt.Errorf("bad stat response %q", v))
	}
	size, err1 := strconv.ParseInt(fields[0], 10, 64)
	ro, err2 := strconv.Atoi(fields[1])
	p, err3 := unquoteArg(strings.Join(fields[2:], " "))
	if err1 != nil || err2 != nil || err3 != nil {
		return vfs.Info{}, c.fail(fmt.Errorf("bad stat response %q", v))
	}
	return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}, nil
}
