package chirp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
	"github.com/errscope/grid/internal/wire"
)

// Client is the I/O-library side of the Chirp protocol.  All methods
// return scoped errors: explicit protocol errors carry the code and
// scope sent by the proxy; transport failures become escaping errors
// of network scope, because a broken connection is inexpressible in
// the file interface (Principle 2).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	dead error // sticky escaping error once the transport fails

	mode      wire.Mode
	sess      *wire.Session // nil in text mode
	ioTimeout time.Duration

	// Trace, when non-nil and enabled, receives an error event the
	// first time the transport fails; TraceJob tags it.  Set both
	// before issuing requests.
	Trace    obs.Tracer
	TraceJob int64
}

// DialOptions parameterize a client connection.
type DialOptions struct {
	// Timeout bounds the TCP connect; 0 means 10s.
	Timeout time.Duration
	// IOTimeout bounds each request round trip (write + read).  0
	// means 10s; negative disables deadlines.  An expired deadline
	// surfaces as an escaping network-scope RequestTimeout error.
	IOTimeout time.Duration
	// Mode selects the transport: ModeText (default, the legacy line
	// protocol), ModeBinary (framed, checksummed), or ModeSecure
	// (framed and encrypted; the cookie is never transmitted).
	Mode wire.Mode
	// RekeyAfter bounds the sealed frames per direction in ModeSecure;
	// 0 means no budget.
	RekeyAfter uint64
}

func (o DialOptions) connectTimeout() time.Duration {
	if o.Timeout == 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

func (o DialOptions) ioTimeout() time.Duration {
	if o.IOTimeout == 0 {
		return 10 * time.Second
	}
	if o.IOTimeout < 0 {
		return 0
	}
	return o.IOTimeout
}

// checkCookie rejects cookies that cannot travel safely: a newline or
// carriage return would terminate the text frame early, and a quote
// would splice into the quoted argument.  Quote would escape all
// three, but a secret that needs escaping is a secret that some other
// implementation will mis-frame, so they are rejected at the edge
// (function scope: the caller's argument is bad, nothing was sent).
func checkCookie(cookie string) error {
	if strings.ContainsAny(cookie, "\n\r\"") {
		return scope.New(scope.ScopeFunction, CodeBadRequest,
			"cookie contains newline or quote characters")
	}
	return nil
}

// Dial connects to a Chirp proxy and authenticates with the cookie.
func Dial(addr, cookie string) (*Client, error) {
	return DialOpts(addr, cookie, DialOptions{})
}

// DialTimeout is Dial with a connection timeout.
func DialTimeout(addr, cookie string, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, cookie, DialOptions{Timeout: timeout})
}

// DialMode is Dial with a transport mode.
func DialMode(addr, cookie string, mode wire.Mode) (*Client, error) {
	return DialOpts(addr, cookie, DialOptions{Mode: mode})
}

// DialOpts connects with full options.
func DialOpts(addr, cookie string, o DialOptions) (*Client, error) {
	if err := checkCookie(cookie); err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", addr, o.connectTimeout())
	if err != nil {
		return nil, scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	c, err := NewClient(conn, cookie, o)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient authenticates over an established connection (used by
// benchmarks and tests that construct their own sockets).
func NewClient(conn net.Conn, cookie string, o DialOptions) (*Client, error) {
	if err := checkCookie(cookie); err != nil {
		return nil, err
	}
	c := &Client{
		conn:      conn,
		r:         bufio.NewReader(conn),
		w:         bufio.NewWriter(conn),
		mode:      o.Mode,
		ioTimeout: o.ioTimeout(),
	}
	if o.Mode == wire.ModeText {
		if _, _, err := c.roundTrip(fmt.Sprintf("cookie %s\n", quoteArg(cookie)), 0); err != nil {
			return nil, err
		}
		return c, nil
	}
	c.sess = wire.NewSession(c.r, conn, wire.Config{
		Mode:       o.Mode,
		Secret:     []byte(cookie),
		RekeyAfter: o.RekeyAfter,
	})
	c.arm()
	err := c.sess.ClientHandshake()
	c.disarm()
	if err != nil {
		if se, ok := scope.AsError(err); ok && se.Scope != scope.ScopeNetwork {
			// The server's explicit refusal (bad cookie), not
			// transport trouble: pass it through untouched.
			return nil, se
		}
		return nil, scope.Escape(scope.ScopeNetwork, "", err)
	}
	return c, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	if c.sess != nil {
		_ = c.sess.WriteMsg(binQuit) // best effort
		c.sess.Release()
		c.sess = nil
	} else {
		fmt.Fprint(c.w, "quit\n")
		c.w.Flush()
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// arm sets the per-request I/O deadline; disarm clears it.  Without a
// deadline a hung peer stalls the round trip — and the shadow behind
// it — forever.
func (c *Client) arm() {
	if c.ioTimeout > 0 && c.conn != nil {
		c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
	}
}

func (c *Client) disarm() {
	if c.ioTimeout > 0 && c.conn != nil {
		c.conn.SetDeadline(time.Time{})
	}
}

// fail records and returns a sticky transport error.  A scoped cause
// (a frame-layer fault: checksum, MAC, replay, key expiry) keeps its
// code and escapes; a deadline expiry becomes RequestTimeout; any
// other cause is a lost connection.
func (c *Client) fail(err error) error {
	code := CodeConnectionLost
	var ne net.Error
	if _, ok := scope.AsError(err); ok {
		code = "" // Escape adopts the cause's code and widens its scope
	} else if errors.As(err, &ne) && ne.Timeout() {
		code = CodeRequestTimeout
	}
	esc := scope.Escape(scope.ScopeNetwork, code, err)
	first := c.dead == nil
	c.dead = esc
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	if first && c.Trace != nil && c.Trace.Enabled() {
		// One origin event per connection death; later calls return
		// the sticky error without re-reporting.
		c.Trace.Emit(obs.Event{
			T:      time.Now().UnixNano(),
			Comp:   "chirp-client",
			Kind:   obs.KindError,
			Job:    c.TraceJob,
			Code:   esc.Code,
			Scope:  esc.Scope.String(),
			EKind:  esc.Kind.String(),
			Detail: esc.Error(),
		})
		c.Trace.Count("chirp.transport_failures", 1)
	}
	return esc
}

// roundTrip sends one request line (plus optional payload) and reads
// the response line; wantData is the number of payload bytes to read
// after an "ok n" response (capped at n).  Callers hold no lock.
func (c *Client) roundTrip(request string, wantData int, payload ...[]byte) (value string, data []byte, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return "", nil, c.dead
	}
	if c.conn == nil {
		return "", nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if _, err := io.WriteString(c.w, request); err != nil {
		return "", nil, c.fail(err)
	}
	for _, p := range payload {
		if _, err := c.w.Write(p); err != nil {
			return "", nil, c.fail(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return "", nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", nil, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	verb, rest, _ := strings.Cut(line, " ")
	switch verb {
	case "ok":
		value = rest
		if wantData > 0 {
			lenField, _, _ := strings.Cut(rest, " ")
			n, convErr := strconv.Atoi(lenField)
			if convErr != nil || n < 0 || n > maxDataLen {
				return "", nil, c.fail(fmt.Errorf("bad data length %q", line))
			}
			data = make([]byte, n)
			if _, err := io.ReadFull(c.r, data); err != nil {
				return "", nil, c.fail(err)
			}
		}
		return value, data, nil
	case "error":
		// Decode from the raw remainder: the quoted message may
		// contain consecutive spaces that field-splitting would eat.
		se, decErr := decodeErrorLine(rest)
		if decErr != nil {
			return "", nil, c.fail(decErr)
		}
		return "", nil, se
	default:
		return "", nil, c.fail(fmt.Errorf("bad response %q", line))
	}
}

// roundTripBin sends one framed request and returns the response
// payload (copied out of the session buffer).  Callers hold no lock.
func (c *Client) roundTripBin(cmd byte, parts ...[]byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if err := c.sess.WriteMsg(cmd, parts...); err != nil {
		return nil, c.fail(err)
	}
	rcmd, pl, err := c.sess.ReadMsg()
	if err != nil {
		return nil, c.fail(err)
	}
	switch rcmd {
	case wire.CmdOK:
		return append([]byte(nil), pl...), nil
	case wire.CmdErr:
		se, decErr := wire.DecodeErrorPayload(pl)
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	default:
		return nil, c.fail(fmt.Errorf("bad response frame %#x", rcmd))
	}
}

// binary reports whether the client speaks frames.
func (c *Client) binary() bool { return c.mode != wire.ModeText }

// Open opens a remote file and returns its descriptor.
func (c *Client) Open(path string, flags OpenFlags) (int, error) {
	if c.binary() {
		pl, err := c.roundTripBin(binOpen, []byte{byte(flags)}, []byte(path))
		if err != nil {
			return -1, err
		}
		cur := wire.NewCursor(pl)
		fd := cur.U32()
		if !cur.Done() {
			return -1, c.failLocked(fmt.Errorf("bad open response (%d bytes)", len(pl)))
		}
		return int(fd), nil
	}
	v, _, err := c.roundTrip(fmt.Sprintf("open %s %s\n", quoteArg(path), flags), 0)
	if err != nil {
		return -1, err
	}
	fd, convErr := strconv.Atoi(v)
	if convErr != nil {
		return -1, c.failLocked(fmt.Errorf("bad open response %q", v))
	}
	return fd, nil
}

// failLocked is fail for callers outside the round-trip lock.
func (c *Client) failLocked(err error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fail(err)
}

// CloseFD closes a remote descriptor.
func (c *Client) CloseFD(fd int) error {
	if c.binary() {
		_, err := c.roundTripBin(binClose, wire.AppendU32(nil, uint32(fd)))
		return err
	}
	_, _, err := c.roundTrip(fmt.Sprintf("close %d\n", fd), 0)
	return err
}

// Read reads up to length bytes from the descriptor's current offset.
func (c *Client) Read(fd, length int) ([]byte, error) {
	if c.binary() {
		arg := wire.AppendU32(wire.AppendU32(nil, uint32(fd)), uint32(length))
		return c.roundTripBin(binRead, arg)
	}
	_, data, err := c.roundTrip(fmt.Sprintf("read %d %d\n", fd, length), length)
	return data, err
}

// PRead reads up to length bytes at the given offset.
func (c *Client) PRead(fd, length int, offset int64) ([]byte, error) {
	if c.binary() {
		arg := wire.AppendI64(wire.AppendU32(wire.AppendU32(nil, uint32(fd)), uint32(length)), offset)
		return c.roundTripBin(binPRead, arg)
	}
	_, data, err := c.roundTrip(fmt.Sprintf("pread %d %d %d\n", fd, length, offset), length)
	return data, err
}

// decodeCount unpacks a u32 response payload.
func (c *Client) decodeCount(pl []byte, what string) (int, error) {
	cur := wire.NewCursor(pl)
	n := cur.U32()
	if !cur.Done() {
		return 0, c.failLocked(fmt.Errorf("bad %s response (%d bytes)", what, len(pl)))
	}
	return int(n), nil
}

// Write writes data at the descriptor's current offset.
func (c *Client) Write(fd int, data []byte) (int, error) {
	if c.binary() {
		pl, err := c.roundTripBin(binWrite, wire.AppendU32(nil, uint32(fd)), data)
		if err != nil {
			return 0, err
		}
		return c.decodeCount(pl, "write")
	}
	v, _, err := c.roundTrip(fmt.Sprintf("write %d %d\n", fd, len(data)), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.failLocked(fmt.Errorf("bad write response %q", v))
	}
	return n, nil
}

// PWrite writes data at the given offset.
func (c *Client) PWrite(fd int, data []byte, offset int64) (int, error) {
	if c.binary() {
		arg := wire.AppendI64(wire.AppendU32(nil, uint32(fd)), offset)
		pl, err := c.roundTripBin(binPWrite, arg, data)
		if err != nil {
			return 0, err
		}
		return c.decodeCount(pl, "pwrite")
	}
	v, _, err := c.roundTrip(fmt.Sprintf("pwrite %d %d %d\n", fd, len(data), offset), 0, data)
	if err != nil {
		return 0, err
	}
	n, convErr := strconv.Atoi(v)
	if convErr != nil {
		return 0, c.failLocked(fmt.Errorf("bad pwrite response %q", v))
	}
	return n, nil
}

// Seek repositions the descriptor and returns the new offset.
func (c *Client) Seek(fd int, offset int64, whence int) (int64, error) {
	if c.binary() {
		arg := wire.AppendI64(append(wire.AppendU32(nil, uint32(fd)), byte(whence)), offset)
		pl, err := c.roundTripBin(binSeek, arg)
		if err != nil {
			return 0, err
		}
		cur := wire.NewCursor(pl)
		pos := cur.I64()
		if !cur.Done() {
			return 0, c.failLocked(fmt.Errorf("bad lseek response (%d bytes)", len(pl)))
		}
		return pos, nil
	}
	v, _, err := c.roundTrip(fmt.Sprintf("lseek %d %d %d\n", fd, offset, whence), 0)
	if err != nil {
		return 0, err
	}
	pos, convErr := strconv.ParseInt(v, 10, 64)
	if convErr != nil {
		return 0, c.failLocked(fmt.Errorf("bad lseek response %q", v))
	}
	return pos, nil
}

// Unlink removes a remote file.
func (c *Client) Unlink(path string) error {
	if c.binary() {
		_, err := c.roundTripBin(binUnlink, []byte(path))
		return err
	}
	_, _, err := c.roundTrip(fmt.Sprintf("unlink %s\n", quoteArg(path)), 0)
	return err
}

// Rename moves a remote file.
func (c *Client) Rename(oldPath, newPath string) error {
	if c.binary() {
		_, err := c.roundTripBin(binRename, wire.AppendStr(nil, oldPath), []byte(newPath))
		return err
	}
	_, _, err := c.roundTrip(fmt.Sprintf("rename %s %s\n", quoteArg(oldPath), quoteArg(newPath)), 0)
	return err
}

// decodeInfo unpacks a stat-shaped payload region.
func decodeInfo(cur *wire.Cursor, rest bool) vfs.Info {
	size := cur.I64()
	ro := cur.U8()
	var p string
	if rest {
		p = cur.RestString()
	} else {
		p = cur.Str()
	}
	return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}
}

// List enumerates remote files under a prefix.
func (c *Client) List(prefix string) ([]vfs.Info, error) {
	if c.binary() {
		pl, err := c.roundTripBin(binGetdir, []byte(prefix))
		if err != nil {
			return nil, err
		}
		cur := wire.NewCursor(pl)
		n := int(cur.U32())
		if !cur.OK() || n < 0 || n > 1<<20 {
			return nil, c.failLocked(fmt.Errorf("bad getdir response (%d bytes)", len(pl)))
		}
		out := make([]vfs.Info, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, decodeInfo(&cur, false))
		}
		if !cur.Done() {
			return nil, c.failLocked(fmt.Errorf("bad getdir entries (%d bytes)", len(pl)))
		}
		return out, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return nil, c.dead
	}
	if c.conn == nil {
		return nil, scope.New(scope.ScopeFunction, CodeBadRequest, "client closed")
	}
	c.arm()
	defer c.disarm()
	if _, err := fmt.Fprintf(c.w, "getdir %s\n", quoteArg(prefix)); err != nil {
		return nil, c.fail(err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.fail(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return nil, c.fail(err)
	}
	line = strings.TrimRight(line, "\r\n")
	verb, rest, _ := strings.Cut(line, " ")
	if verb == "error" {
		se, decErr := decodeErrorLine(rest)
		if decErr != nil {
			return nil, c.fail(decErr)
		}
		return nil, se
	}
	if verb != "ok" || strings.Contains(rest, " ") {
		return nil, c.fail(fmt.Errorf("bad getdir response %q", line))
	}
	n, convErr := strconv.Atoi(rest)
	if convErr != nil || n < 0 || n > 1<<20 {
		return nil, c.fail(fmt.Errorf("bad getdir count %q", rest))
	}
	out := make([]vfs.Info, 0, n)
	for i := 0; i < n; i++ {
		entry, err := c.r.ReadString('\n')
		if err != nil {
			return nil, c.fail(err)
		}
		ef := strings.Fields(strings.TrimRight(entry, "\r\n"))
		if len(ef) < 3 {
			return nil, c.fail(fmt.Errorf("bad getdir entry %q", entry))
		}
		size, e1 := strconv.ParseInt(ef[0], 10, 64)
		ro, e2 := strconv.Atoi(ef[1])
		p, e3 := unquoteArg(strings.Join(ef[2:], " "))
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, c.fail(fmt.Errorf("bad getdir entry %q", entry))
		}
		out = append(out, vfs.Info{Path: p, Size: size, ReadOnly: ro != 0})
	}
	return out, nil
}

// Stat describes a remote file.
func (c *Client) Stat(path string) (vfs.Info, error) {
	if c.binary() {
		pl, err := c.roundTripBin(binStat, []byte(path))
		if err != nil {
			return vfs.Info{}, err
		}
		cur := wire.NewCursor(pl)
		info := decodeInfo(&cur, true)
		if !cur.Done() {
			return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response (%d bytes)", len(pl)))
		}
		return info, nil
	}
	v, _, err := c.roundTrip(fmt.Sprintf("stat %s\n", quoteArg(path)), 0)
	if err != nil {
		return vfs.Info{}, err
	}
	fields := strings.Fields(v)
	if len(fields) < 3 {
		return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response %q", v))
	}
	size, err1 := strconv.ParseInt(fields[0], 10, 64)
	ro, err2 := strconv.Atoi(fields[1])
	p, err3 := unquoteArg(strings.Join(fields[2:], " "))
	if err1 != nil || err2 != nil || err3 != nil {
		return vfs.Info{}, c.failLocked(fmt.Errorf("bad stat response %q", v))
	}
	return vfs.Info{Path: p, Size: size, ReadOnly: ro != 0}, nil
}
