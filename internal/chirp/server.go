package chirp

import (
	"bufio"
	"crypto/subtle"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"github.com/errscope/grid/internal/scope"
)

// maxDataLen bounds a single read or write payload, protecting the
// proxy from a runaway client.
const maxDataLen = 16 << 20

// Server is the Chirp proxy: it listens on a loopback TCP port,
// authenticates clients by shared secret, and forwards file
// operations to a Backend.
type Server struct {
	backend Backend
	secret  string

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	// ErrorLog, if non-nil, receives per-connection protocol faults
	// the proxy consumed (the starter's view of escaping errors).
	ErrorLog func(err error)
}

// NewServer creates a Chirp proxy over backend requiring the given
// shared-secret cookie.
func NewServer(backend Backend, secret string) *Server {
	return &Server{
		backend: backend,
		secret:  secret,
		conns:   make(map[net.Conn]struct{}),
	}
}

// Listen starts the proxy on addr ("127.0.0.1:0" for an ephemeral
// loopback port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("chirp: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close shuts the listener and all connections down and waits for
// the connection handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Server) logErr(err error) {
	if s.ErrorLog != nil {
		s.ErrorLog(err)
	}
}

// session holds per-connection state: authentication and the file
// descriptor table.
type session struct {
	authed bool
	files  map[int]File
	pos    map[int]int64
	nextFD int
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	// A binary client's first byte is a session message type (always
	// >= 0x80); a text client's first byte is a lowercase verb.  One
	// peeked byte selects the protocol, with no bytes consumed.
	if first, err := r.Peek(1); err == nil && first[0] >= 0x80 {
		s.serveBinary(conn, r)
		return
	}
	w := bufio.NewWriter(conn)
	sess := &session{files: make(map[int]File), pos: make(map[int]int64), nextFD: 3}
	defer func() {
		for _, f := range sess.files {
			f.Close()
		}
	}()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			if err != io.EOF {
				s.logErr(scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err))
			}
			return
		}
		quit, err := s.handle(sess, strings.TrimRight(line, "\r\n"), r, w)
		if err != nil {
			s.logErr(err)
			return
		}
		if err := w.Flush(); err != nil {
			s.logErr(scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err))
			return
		}
		if quit {
			return
		}
	}
}

// handle processes one request line.  It returns quit=true when the
// client ends the session, and a non-nil error only for conditions
// that must tear the connection down (escaping errors at this layer).
func (s *Server) handle(sess *session, line string, r *bufio.Reader, w *bufio.Writer) (quit bool, fatal error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "empty request")))
		return false, nil
	}
	verb, args := fields[0], fields[1:]

	if verb == "quit" {
		fmt.Fprint(w, "ok\n")
		return true, nil
	}
	if verb == "cookie" {
		if len(args) != 1 {
			fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "cookie wants 1 argument")))
			return false, nil
		}
		secret, err := unquoteArg(args[0])
		if err != nil || subtle.ConstantTimeCompare([]byte(secret), []byte(s.secret)) != 1 {
			// A bad cookie invalidates the whole session: the
			// client is not who the starter revealed the secret
			// to.  Process scope, and the connection drops.
			fmt.Fprint(w, encodeError(scope.New(scope.ScopeProcess, CodeNotAuthed, "bad cookie")))
			w.Flush()
			return true, nil
		}
		sess.authed = true
		fmt.Fprint(w, "ok\n")
		return false, nil
	}
	if !sess.authed {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeProcess, CodeNotAuthed, "authenticate first")))
		w.Flush()
		return true, nil
	}

	switch verb {
	case "open":
		s.handleOpen(sess, args, w)
	case "close":
		s.handleClose(sess, args, w)
	case "read":
		s.handleRead(sess, args, w, false)
	case "pread":
		s.handleRead(sess, args, w, true)
	case "write":
		return false, s.handleWrite(sess, args, r, w, false)
	case "pwrite":
		return false, s.handleWrite(sess, args, r, w, true)
	case "lseek":
		s.handleLseek(sess, args, w)
	case "unlink":
		s.handlePathOp(args, w, s.backend.Unlink)
	case "rename":
		s.handleRename(args, w)
	case "stat":
		s.handleStat(args, w)
	case "getdir":
		s.handleGetdir(args, w)
	default:
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "unknown verb %q", verb)))
	}
	return false, nil
}

func (s *Server) handleOpen(sess *session, args []string, w *bufio.Writer) {
	if len(args) != 2 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "open wants 2 arguments")))
		return
	}
	path, err := unquoteArg(args[0])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad path encoding")))
		return
	}
	flags, err := ParseOpenFlags(args[1])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "%v", err)))
		return
	}
	f, err := s.backend.Open(path, flags)
	if err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	fd := sess.nextFD
	sess.nextFD++
	sess.files[fd] = f
	if flags&FlagAppend != 0 {
		if size, serr := f.Size(); serr == nil {
			sess.pos[fd] = size
		}
	} else {
		sess.pos[fd] = 0
	}
	fmt.Fprintf(w, "ok %d\n", fd)
}

func (s *Server) handleClose(sess *session, args []string, w *bufio.Writer) {
	fd, f, ok := sess.lookupFD(args, w)
	if !ok {
		return
	}
	delete(sess.files, fd)
	delete(sess.pos, fd)
	if err := f.Close(); err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	fmt.Fprint(w, "ok\n")
}

func (sess *session) lookupFD(args []string, w *bufio.Writer) (int, File, bool) {
	if len(args) < 1 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "missing fd")))
		return 0, nil, false
	}
	fd, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad fd %q", args[0])))
		return 0, nil, false
	}
	f, ok := sess.files[fd]
	if !ok {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadFD, "fd %d not open", fd)))
		return 0, nil, false
	}
	return fd, f, true
}

func (s *Server) handleRead(sess *session, args []string, w *bufio.Writer, positional bool) {
	want := 2
	if positional {
		want = 3
	}
	if len(args) != want {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "read wants %d arguments", want)))
		return
	}
	fd, f, ok := sess.lookupFD(args, w)
	if !ok {
		return
	}
	length, err := strconv.Atoi(args[1])
	if err != nil || length < 0 || length > maxDataLen {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad length %q", args[1])))
		return
	}
	offset := sess.pos[fd]
	if positional {
		off, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad offset %q", args[2])))
			return
		}
		offset = off
	}
	data, err := f.ReadAt(offset, length)
	if err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	if !positional {
		sess.pos[fd] = offset + int64(len(data))
	}
	fmt.Fprintf(w, "ok %d\n", len(data))
	w.Write(data)
}

func (s *Server) handleWrite(sess *session, args []string, r *bufio.Reader, w *bufio.Writer, positional bool) error {
	want := 2
	if positional {
		want = 3
	}
	if len(args) != want {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "write wants %d arguments", want)))
		return nil
	}
	length, err := strconv.Atoi(args[1])
	if err != nil || length < 0 {
		// The payload length is unusable; the stream is no longer
		// framed and the connection must drop (escaping error).
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad length %q", args[1])))
		w.Flush()
		return scope.New(scope.ScopeNetwork, CodeProtocolError, "unframed write request")
	}
	if length > maxDataLen {
		// The length parsed, so the framing is intact: the declared
		// payload follows on the wire whether we want it or not.
		// Consume and discard it, refuse the request, and keep the
		// session — tearing the connection down here would turn a
		// function-scope refusal into a network-scope failure.
		if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
			return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
		}
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest,
			"length %d exceeds limit %d", length, maxDataLen)))
		return nil
	}
	// Read the payload before validating the fd or offset: even a
	// doomed request must have its bytes consumed, or the next
	// request line would parse from the middle of this payload and
	// desynchronize the protocol.
	data := make([]byte, length)
	if _, err := io.ReadFull(r, data); err != nil {
		return scope.Escape(scope.ScopeNetwork, CodeConnectionLost, err)
	}
	fd, f, ok := sess.lookupFD(args, w)
	if !ok {
		return nil
	}
	offset := sess.pos[fd]
	if positional {
		off, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad offset %q", args[2])))
			return nil
		}
		offset = off
	}
	n, err := f.WriteAt(offset, data)
	if err != nil {
		fmt.Fprint(w, encodeError(err))
		return nil
	}
	if !positional {
		sess.pos[fd] = offset + int64(n)
	}
	fmt.Fprintf(w, "ok %d\n", n)
	return nil
}

func (s *Server) handleLseek(sess *session, args []string, w *bufio.Writer) {
	if len(args) != 3 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "lseek wants 3 arguments")))
		return
	}
	fd, f, ok := sess.lookupFD(args, w)
	if !ok {
		return
	}
	off, err1 := strconv.ParseInt(args[1], 10, 64)
	whence, err2 := strconv.Atoi(args[2])
	if err1 != nil || err2 != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad lseek arguments")))
		return
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = sess.pos[fd]
	case SeekEnd:
		size, err := f.Size()
		if err != nil {
			fmt.Fprint(w, encodeError(err))
			return
		}
		base = size
	default:
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad whence %d", whence)))
		return
	}
	pos := base + off
	if pos < 0 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "negative seek position")))
		return
	}
	sess.pos[fd] = pos
	fmt.Fprintf(w, "ok %d\n", pos)
}

func (s *Server) handlePathOp(args []string, w *bufio.Writer, op func(string) error) {
	if len(args) != 1 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "wants 1 argument")))
		return
	}
	path, err := unquoteArg(args[0])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad path encoding")))
		return
	}
	if err := op(path); err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	fmt.Fprint(w, "ok\n")
}

func (s *Server) handleRename(args []string, w *bufio.Writer) {
	if len(args) != 2 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "rename wants 2 arguments")))
		return
	}
	oldPath, err1 := unquoteArg(args[0])
	newPath, err2 := unquoteArg(args[1])
	if err1 != nil || err2 != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad path encoding")))
		return
	}
	if err := s.backend.Rename(oldPath, newPath); err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	fmt.Fprint(w, "ok\n")
}

// handleGetdir lists files under a prefix: "ok n" followed by n lines
// of "size readonly quoted-path".
func (s *Server) handleGetdir(args []string, w *bufio.Writer) {
	if len(args) != 1 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "getdir wants 1 argument")))
		return
	}
	prefix, err := unquoteArg(args[0])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad path encoding")))
		return
	}
	infos, err := s.backend.List(prefix)
	if err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	fmt.Fprintf(w, "ok %d\n", len(infos))
	for _, info := range infos {
		ro := 0
		if info.ReadOnly {
			ro = 1
		}
		fmt.Fprintf(w, "%d %d %s\n", info.Size, ro, quoteArg(info.Path))
	}
}

func (s *Server) handleStat(args []string, w *bufio.Writer) {
	if len(args) != 1 {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "stat wants 1 argument")))
		return
	}
	path, err := unquoteArg(args[0])
	if err != nil {
		fmt.Fprint(w, encodeError(scope.New(scope.ScopeFunction, CodeBadRequest, "bad path encoding")))
		return
	}
	info, err := s.backend.Stat(path)
	if err != nil {
		fmt.Fprint(w, encodeError(err))
		return
	}
	ro := 0
	if info.ReadOnly {
		ro = 1
	}
	fmt.Fprintf(w, "ok %d %d %s\n", info.Size, ro, quoteArg(info.Path))
}
