package chirp_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"github.com/errscope/grid/internal/chirp"
	"github.com/errscope/grid/internal/faultinject"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/vfs"
)

// TestConcurrentTransportFailureSpans kills several traced client
// connections at once and checks the recorded spans as a sorted,
// time-free set.  Goroutine scheduling makes the emit order of the
// events nondeterministic, so any assertion on raw event order is
// flaky by construction; SortedSpanSet is the canonical comparison
// form for concurrent live-stack recordings.
func TestConcurrentTransportFailureSpans(t *testing.T) {
	fs := vfs.New()
	if err := fs.WriteFile("/data", bytes.Repeat([]byte("x"), 4096)); err != nil {
		t.Fatal(err)
	}
	srv := chirp.NewServer(&chirp.VFSBackend{FS: fs}, "ck")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	rec := obs.NewRecorder()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			px, err := faultinject.NewProxy(addr, faultinject.ConnFault{CutToClient: 64})
			if err != nil {
				errs[i] = err
				return
			}
			defer px.Close()
			c, err := chirp.Dial(px.Addr(), "ck")
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.Trace = rec
			c.TraceJob = int64(i + 1)
			fd, err := c.Open("/data", chirp.FlagRead)
			if err != nil {
				return // the cut may land before open completes; still traced
			}
			for n := 0; n < 64; n++ {
				if _, err := c.Read(fd, 4096); err != nil {
					return
				}
			}
			errs[i] = fmt.Errorf("client %d survived the cut connection", i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	got := rec.SortedSpanSet()
	want := make([]string, 0, clients)
	for i := 1; i <= clients; i++ {
		want = append(want, fmt.Sprintf(
			"job=%d origin=chirp-client ConnectionLost network/escaping -> network disp= hops=chirp-client ConnectionLost network/escaping",
			i))
	}
	// want is built in job order; jobs 1..8 sort lexically in this
	// range, matching SortedSpanSet's ordering.
	if len(got) != len(want) {
		t.Fatalf("spans = %d, want %d:\n%v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span[%d]:\n got  %s\n want %s", i, got[i], want[i])
		}
	}
	if n := rec.Counter("chirp.transport_failures"); n != clients {
		t.Errorf("transport_failures = %d, want %d (one per connection death)", n, clients)
	}
}
