// Package chirp implements the Chirp protocol of the Condor Java
// Universe (Figure 2 of the paper): a simple remote I/O protocol
// spoken between the job's I/O library and a proxy inside the starter,
// over a TCP connection on the loopback interface.
//
// The library authenticates itself by presenting a shared secret (the
// "cookie") revealed to it through the local file system, so the
// connection is secure to the same degree as the local system.
//
// The wire format is line-oriented.  Requests are a verb with
// space-separated arguments terminated by '\n'; bulk data follows a
// length argument.  Responses are either
//
//	ok [value]\n [data]
//	error <code> <scope> <quoted message>\n
//
// Note that the error response carries the error's *scope* across the
// process boundary.  This is the paper's central mechanism: the two
// sides cooperate by knowing the scope, rather than the detail, of the
// errors they communicate (Section 7).
//
// The protocol's explicit error interface is concise and finite
// (Principle 4); any condition outside it — a lost connection,
// protocol garbage — is surfaced by the client as an *escaping* error
// of network scope (Principle 2).
package chirp

import (
	"fmt"
	"strings"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// Explicit error codes of the Chirp interface (Principle 4: concise
// and finite).
const (
	CodeFileNotFound = "FileNotFound"
	CodeAccessDenied = "AccessDenied"
	CodeDiskFull     = "DiskFull"
	CodeEndOfFile    = "EndOfFile"
	CodeBadFD        = "BadFileDescriptor"
	CodeBadRequest   = "BadRequest"
	CodeNotAuthed    = "NotAuthenticated"
	CodeBackend      = "BackendError"
)

// Escaping error codes produced by the client for conditions outside
// the protocol's explicit interface.
const (
	CodeConnectionLost = "ConnectionLost"
	CodeProtocolError  = "ProtocolError"
	// CodeRequestTimeout marks a request whose I/O deadline expired:
	// the connection may be healthy or hung, the client cannot tell,
	// so the condition escapes with network scope like any other
	// transport failure.
	CodeRequestTimeout = "RequestTimeout"
)

// Binary protocol command bytes (wire.ModeBinary / wire.ModeSecure).
// All are >= 0x80, which is how a server distinguishes a binary
// client's first frame from a text client's first line.  Responses use
// the shared wire.CmdOK / wire.CmdErr frames.
const (
	binOpen   byte = 0x90 // flags u8, path rest        -> fd u32
	binClose  byte = 0x91 // fd u32
	binRead   byte = 0x92 // fd u32, len u32            -> data
	binPRead  byte = 0x93 // fd u32, len u32, off i64   -> data
	binWrite  byte = 0x94 // fd u32, data rest          -> n u32
	binPWrite byte = 0x95 // fd u32, off i64, data rest -> n u32
	binSeek   byte = 0x96 // fd u32, whence u8, off i64 -> pos i64
	binUnlink byte = 0x97 // path rest
	binRename byte = 0x98 // old str, new rest
	binStat   byte = 0x99 // path rest -> size i64, ro u8, path rest
	binGetdir byte = 0x9A // prefix rest -> count u32, then per entry
	//                       size i64, ro u8, path str
	binQuit byte = 0x9F
)

// Contract returns the explicit error interface of the Chirp protocol.
// Errors outside it escape with network scope.
func Contract() *scope.Contract {
	return scope.NewContract("chirp", scope.ScopeNetwork, CodeProtocolError).
		Declare(CodeFileNotFound, scope.ScopeFile).
		Declare(CodeAccessDenied, scope.ScopeFile).
		Declare(CodeDiskFull, scope.ScopeFile).
		Declare(CodeEndOfFile, scope.ScopeFile).
		Declare(CodeBadFD, scope.ScopeFunction).
		Declare(CodeBadRequest, scope.ScopeFunction).
		Declare(CodeNotAuthed, scope.ScopeProcess).
		Declare(CodeBackend, scope.ScopeLocalResource)
}

// OpenFlags select the access mode of an open request.
type OpenFlags int

// Open flag bits.
const (
	FlagRead OpenFlags = 1 << iota
	FlagWrite
	FlagCreate
	FlagTruncate
	FlagAppend
)

// String renders flags in the wire encoding: a subset of "rwcta".
func (f OpenFlags) String() string {
	var sb strings.Builder
	if f&FlagRead != 0 {
		sb.WriteByte('r')
	}
	if f&FlagWrite != 0 {
		sb.WriteByte('w')
	}
	if f&FlagCreate != 0 {
		sb.WriteByte('c')
	}
	if f&FlagTruncate != 0 {
		sb.WriteByte('t')
	}
	if f&FlagAppend != 0 {
		sb.WriteByte('a')
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// ParseOpenFlags parses the wire encoding of open flags.
func ParseOpenFlags(s string) (OpenFlags, error) {
	var f OpenFlags
	if s == "-" {
		return 0, nil
	}
	for _, c := range s {
		switch c {
		case 'r':
			f |= FlagRead
		case 'w':
			f |= FlagWrite
		case 'c':
			f |= FlagCreate
		case 't':
			f |= FlagTruncate
		case 'a':
			f |= FlagAppend
		default:
			return 0, fmt.Errorf("chirp: bad open flag %q", c)
		}
	}
	return f, nil
}

// Whence values for lseek, as in POSIX.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// encodeError renders a scoped error as a wire error line.  Plain
// errors are widened to BackendError at local-resource scope: the
// proxy cannot explain them, but it can still state their scope.
func encodeError(err error) string {
	return wire.EncodeError(err, CodeBackend, scope.ScopeLocalResource)
}

// decodeErrorLine parses the raw remainder of a wire line after the
// "error " verb.  It must receive the unsplit bytes: quoted messages
// may contain consecutive spaces.
func decodeErrorLine(rest string) (*scope.Error, error) {
	return wire.DecodeError(rest)
}

// quoteArg encodes a path or string argument for the wire (no spaces
// or newlines may appear raw).
func quoteArg(s string) string { return wire.Quote(s) }

// unquoteArg decodes a quoted wire argument.
func unquoteArg(s string) (string, error) { return wire.Unquote(s) }
