// Package chirp implements the Chirp protocol of the Condor Java
// Universe (Figure 2 of the paper): a simple remote I/O protocol
// spoken between the job's I/O library and a proxy inside the starter,
// over a TCP connection on the loopback interface.
//
// The library authenticates itself by presenting a shared secret (the
// "cookie") revealed to it through the local file system, so the
// connection is secure to the same degree as the local system.
//
// The wire format is line-oriented.  Requests are a verb with
// space-separated arguments terminated by '\n'; bulk data follows a
// length argument.  Responses are either
//
//	ok [value]\n [data]
//	error <code> <scope> <quoted message>\n
//
// Note that the error response carries the error's *scope* across the
// process boundary.  This is the paper's central mechanism: the two
// sides cooperate by knowing the scope, rather than the detail, of the
// errors they communicate (Section 7).
//
// The protocol's explicit error interface is concise and finite
// (Principle 4); any condition outside it — a lost connection,
// protocol garbage — is surfaced by the client as an *escaping* error
// of network scope (Principle 2).
package chirp

import (
	"fmt"
	"strings"

	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/wire"
)

// Explicit error codes of the Chirp interface (Principle 4: concise
// and finite).
const (
	CodeFileNotFound = "FileNotFound"
	CodeAccessDenied = "AccessDenied"
	CodeDiskFull     = "DiskFull"
	CodeEndOfFile    = "EndOfFile"
	CodeBadFD        = "BadFileDescriptor"
	CodeBadRequest   = "BadRequest"
	CodeNotAuthed    = "NotAuthenticated"
	CodeBackend      = "BackendError"
)

// Escaping error codes produced by the client for conditions outside
// the protocol's explicit interface.
const (
	CodeConnectionLost = "ConnectionLost"
	CodeProtocolError  = "ProtocolError"
)

// Contract returns the explicit error interface of the Chirp protocol.
// Errors outside it escape with network scope.
func Contract() *scope.Contract {
	return scope.NewContract("chirp", scope.ScopeNetwork, CodeProtocolError).
		Declare(CodeFileNotFound, scope.ScopeFile).
		Declare(CodeAccessDenied, scope.ScopeFile).
		Declare(CodeDiskFull, scope.ScopeFile).
		Declare(CodeEndOfFile, scope.ScopeFile).
		Declare(CodeBadFD, scope.ScopeFunction).
		Declare(CodeBadRequest, scope.ScopeFunction).
		Declare(CodeNotAuthed, scope.ScopeProcess).
		Declare(CodeBackend, scope.ScopeLocalResource)
}

// OpenFlags select the access mode of an open request.
type OpenFlags int

// Open flag bits.
const (
	FlagRead OpenFlags = 1 << iota
	FlagWrite
	FlagCreate
	FlagTruncate
	FlagAppend
)

// String renders flags in the wire encoding: a subset of "rwcta".
func (f OpenFlags) String() string {
	var sb strings.Builder
	if f&FlagRead != 0 {
		sb.WriteByte('r')
	}
	if f&FlagWrite != 0 {
		sb.WriteByte('w')
	}
	if f&FlagCreate != 0 {
		sb.WriteByte('c')
	}
	if f&FlagTruncate != 0 {
		sb.WriteByte('t')
	}
	if f&FlagAppend != 0 {
		sb.WriteByte('a')
	}
	if sb.Len() == 0 {
		return "-"
	}
	return sb.String()
}

// ParseOpenFlags parses the wire encoding of open flags.
func ParseOpenFlags(s string) (OpenFlags, error) {
	var f OpenFlags
	if s == "-" {
		return 0, nil
	}
	for _, c := range s {
		switch c {
		case 'r':
			f |= FlagRead
		case 'w':
			f |= FlagWrite
		case 'c':
			f |= FlagCreate
		case 't':
			f |= FlagTruncate
		case 'a':
			f |= FlagAppend
		default:
			return 0, fmt.Errorf("chirp: bad open flag %q", c)
		}
	}
	return f, nil
}

// Whence values for lseek, as in POSIX.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// encodeError renders a scoped error as a wire error line.  Plain
// errors are widened to BackendError at local-resource scope: the
// proxy cannot explain them, but it can still state their scope.
func encodeError(err error) string {
	return wire.EncodeError(err, CodeBackend, scope.ScopeLocalResource)
}

// decodeErrorLine parses the fields after the "error" verb.
func decodeErrorLine(fields []string) (*scope.Error, error) {
	return wire.DecodeError(fields)
}

// quoteArg encodes a path or string argument for the wire (no spaces
// or newlines may appear raw).
func quoteArg(s string) string { return wire.Quote(s) }

// unquoteArg decodes a quoted wire argument.
func unquoteArg(s string) (string, error) { return wire.Unquote(s) }
