package chirp

import (
	"bufio"
	"net"
	"time"
)

// rawConn is a minimal hand-rolled protocol session for tests that
// need to speak malformed or unauthenticated Chirp.
type rawConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialRaw(addr string) (*rawConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &rawConn{conn: conn, r: bufio.NewReader(conn)}, nil
}

// send writes raw bytes and returns the next response line ("" on
// connection close).
func (r *rawConn) send(s string) string {
	r.conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.conn.Write([]byte(s)); err != nil {
		return ""
	}
	line, err := r.r.ReadString('\n')
	if err != nil {
		return ""
	}
	return line
}

func (r *rawConn) close() { r.conn.Close() }
