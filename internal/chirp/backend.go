package chirp

import (
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// Backend is the storage service behind a Chirp proxy.  The proxy in
// the starter may be backed by local scratch space, by the shadow's
// remote I/O channel, or by anything else — the paper envisions
// security and discovery services behind the same interface.
//
// Backends report failures as scoped errors; the server forwards code,
// scope, and message across the wire.
type Backend interface {
	// Open returns a handle for the named file.
	Open(path string, flags OpenFlags) (File, error)
	// Unlink removes the named file.
	Unlink(path string) error
	// Rename moves a file.
	Rename(oldPath, newPath string) error
	// Stat describes a file.
	Stat(path string) (vfs.Info, error)
	// List enumerates files under a prefix.
	List(prefix string) ([]vfs.Info, error)
}

// File is an open file within a backend.
type File interface {
	// ReadAt reads up to length bytes at offset.
	ReadAt(offset int64, length int) ([]byte, error)
	// WriteAt writes data at offset.
	WriteAt(offset int64, data []byte) (int, error)
	// Size returns the current file size.
	Size() (int64, error)
	// Close releases the handle.
	Close() error
}

// VFSBackend adapts a vfs.FileSystem to the Backend interface.
type VFSBackend struct {
	FS *vfs.FileSystem
}

var _ Backend = (*VFSBackend)(nil)

// Open implements Backend.
func (b *VFSBackend) Open(path string, flags OpenFlags) (File, error) {
	_, err := b.FS.Stat(path)
	switch {
	case err == nil:
		if flags&FlagTruncate != 0 {
			if werr := b.FS.WriteFile(path, nil); werr != nil {
				return nil, werr
			}
		}
	case scope.ScopeOf(err) == scope.ScopeFile && flags&FlagCreate != 0:
		if cerr := b.FS.Create(path); cerr != nil {
			return nil, cerr
		}
	default:
		return nil, err
	}
	return &vfsFile{fs: b.FS, path: path, flags: flags}, nil
}

// Unlink implements Backend.
func (b *VFSBackend) Unlink(path string) error { return b.FS.Unlink(path) }

// Rename implements Backend.
func (b *VFSBackend) Rename(oldPath, newPath string) error {
	return b.FS.Rename(oldPath, newPath)
}

// Stat implements Backend.
func (b *VFSBackend) Stat(path string) (vfs.Info, error) { return b.FS.Stat(path) }

// List implements Backend.
func (b *VFSBackend) List(prefix string) ([]vfs.Info, error) { return b.FS.List(prefix) }

type vfsFile struct {
	fs     *vfs.FileSystem
	path   string
	flags  OpenFlags
	closed bool
}

func (f *vfsFile) ReadAt(offset int64, length int) ([]byte, error) {
	if f.closed {
		return nil, scope.New(scope.ScopeFunction, CodeBadFD, "read on closed file %s", f.path)
	}
	if f.flags&FlagRead == 0 {
		return nil, scope.New(scope.ScopeFile, CodeAccessDenied, "%s not open for reading", f.path)
	}
	return f.fs.ReadAt(f.path, offset, length)
}

func (f *vfsFile) WriteAt(offset int64, data []byte) (int, error) {
	if f.closed {
		return 0, scope.New(scope.ScopeFunction, CodeBadFD, "write on closed file %s", f.path)
	}
	if f.flags&FlagWrite == 0 {
		return 0, scope.New(scope.ScopeFile, CodeAccessDenied, "%s not open for writing", f.path)
	}
	return f.fs.WriteAt(f.path, offset, data)
}

func (f *vfsFile) Size() (int64, error) {
	info, err := f.fs.Stat(f.path)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

func (f *vfsFile) Close() error {
	f.closed = true
	return nil
}
