package pool

import (
	"fmt"
	"strings"

	"github.com/errscope/grid/internal/daemon"
)

// StatusTable renders the machine view, in the spirit of
// condor_status.
func (p *Pool) StatusTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-10s %-6s %-9s %-8s %s\n",
		"MACHINE", "STATE", "JOBS", "CPU", "JAVA", "NOTES")
	for _, sd := range p.Startds {
		state := "unclaimed"
		switch sd.State() {
		case daemon.StartdClaimed:
			state = "claimed"
		case daemon.StartdRunning:
			state = "running"
		case daemon.StartdOwner:
			state = "owner"
		}
		// Transitional and administrative states override the claim
		// state: a machine inside a vacate grace window is promised
		// away (or draining), and a drained machine only looks
		// unclaimed — it is out of the pool until resumed.
		switch {
		case sd.Crashed():
			state = "down"
		case sd.Vacating():
			state = "vacating"
		case sd.Draining():
			state = "draining"
		case sd.Drained():
			state = "drained"
		}
		java := "yes"
		notes := ""
		if sd.SelfTestFail {
			java = "no"
			notes = "self-test failed"
		}
		fmt.Fprintf(&sb, "%-10s %-10s %-6d %-9s %-8s %s\n",
			sd.Name(), state, sd.JobsRun,
			sd.CPUDelivered.Truncate(1e9).String(), java, notes)
	}
	return sb.String()
}

// QueueTable renders the job view, in the spirit of condor_q.
func (p *Pool) QueueTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-10s %-10s %-13s %-8s %s\n",
		"ID", "OWNER", "UNIVERSE", "STATE", "ATTEMPTS", "LAST")
	for _, s := range p.Schedds {
		for _, j := range s.Jobs() {
			universe := j.Universe
			if universe == "" {
				universe = "java"
			}
			last := "-"
			if att := j.LastAttempt(); att != nil {
				// An attempt still in flight has no outcome yet; for a
				// Standard Universe job it may be resuming from the
				// best committed checkpoint rather than from scratch.
				open := att.End == 0 && !j.State.Terminal()
				switch {
				case open && j.CheckpointCPU > 0:
					last = fmt.Sprintf("resumed on %s from %s checkpoint",
						att.Machine, j.CheckpointCPU)
				case open:
					last = fmt.Sprintf("started on %s", att.Machine)
				case att.Evicted && att.Preempted:
					last = fmt.Sprintf("preempted off %s", att.Machine)
				case att.Evicted:
					last = fmt.Sprintf("evicted off %s", att.Machine)
				case att.FetchError != nil:
					last = "fetch failed"
				case att.LostContact != nil:
					last = "lost contact"
				case att.Reported.Exception != "":
					last = att.Reported.Exception
				default:
					last = fmt.Sprintf("exit %d on %s", att.Reported.ExitCode, att.Machine)
				}
			}
			fmt.Fprintf(&sb, "%-4d %-10s %-10s %-13s %-8d %s\n",
				j.ID, j.Owner, universe, j.State, len(j.Attempts), last)
		}
	}
	return sb.String()
}
