package pool

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

// dispositionTrace renders every job's full event log at every submit
// point, in a fixed order: the byte-exact record of what the pool
// decided and when.
func dispositionTrace(p *Pool) string {
	var sb strings.Builder
	for _, s := range p.Schedds {
		for _, j := range s.Jobs() {
			fmt.Fprintf(&sb, "== %s job %d %s\n", s.Name(), j.ID, j.State)
			sb.WriteString(j.EventLog())
		}
	}
	return sb.String()
}

// runTracedPool assembles a failure-rich pool — misconfigured
// machines, chronic-failure avoidance, several owners competing — and
// returns its disposition trace.
func runTracedPool(seed int64, disableFastPath bool) string {
	params := daemon.DefaultParams()
	params.ChronicFailureThreshold = 3
	params.MaxAttempts = 10
	params.DisableMatchFastPath = disableFastPath
	ms := Misconfigure(UniformMachines(10, 2048), 3, BreakBadLibraryPath, false)
	p := New(Config{Seed: seed, Params: params, Machines: ms, Schedds: 2})
	p.StageSharedInput()
	p.SubmitJava(30, MixedWorkload(seed, 10*time.Minute))
	p.Run(48 * time.Hour)
	return dispositionTrace(p)
}

// TestDeterminismSameSeedSameTrace is the regression gate for the
// matchmaking fast path: with one seed, the pool must produce
// byte-identical job-disposition traces run-to-run.
func TestDeterminismSameSeedSameTrace(t *testing.T) {
	a := runTracedPool(11, false)
	b := runTracedPool(11, false)
	if a != b {
		t.Fatalf("same seed, different traces:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if runTracedPool(12, false) == a {
		t.Error("different seeds produced identical traces; the trace is not discriminating")
	}
}

// runUndefinedEdgePool builds a pool that stresses the matchmaker's
// three-valued logic and its ad-expiry bookkeeping at once:
//
//   - jobs whose Requirements or Rank reference attributes no machine
//     advertises (target.HasGPU, target.GPUMemory) — every candidate
//     edge evaluates UNDEFINED, which must fail the acceptance test
//     in the indexed fast path exactly as in the reference scan;
//   - machines whose owner policy references an attribute jobs do not
//     carry (my.NightShift), the machine-side UNDEFINED veto;
//   - machines crashing and restarting at instants not aligned with
//     the 60s negotiation cycle, so ads expire mid-cycle and the
//     fast path's index must shrink and regrow in step with the
//     reference scheduler's view.
func runUndefinedEdgePool(seed int64, disableFastPath bool) string {
	params := daemon.DefaultParams()
	params.ChronicFailureThreshold = 2
	params.MaxAttempts = 6
	params.DisableMatchFastPath = disableFastPath
	ms := UniformMachines(8, 2048)
	// One machine vetoes anything that is not definitely a night-shift
	// job: jobs never advertise NightShift, so the veto edge is
	// UNDEFINED, not false.
	ms[3].OwnerRequirements = "my.NightShift"
	p := New(Config{Seed: seed, Params: params, Machines: ms, Schedds: 2})
	p.StageSharedInput()

	// Three job flavors, interleaved.
	for i := 0; i < 18; i++ {
		ad := daemon.NewJavaJobAd("user", 128)
		switch i % 3 {
		case 1:
			// GPU-preferring: matches anywhere Java works, but ranks
			// by an attribute that is UNDEFINED on every machine.
			ad.MustSetExpr("Requirements",
				"target.HasJava && (isundefined(target.HasGPU) || target.HasGPU)")
			ad.MustSetExpr("Rank", "target.GPUMemory")
		case 2:
			// GPU-requiring: the requirement edge is UNDEFINED on
			// every machine, so the job must stay idle forever — in
			// both scheduler shapes.
			ad.MustSetExpr("Requirements", "target.HasJava && target.HasGPU")
		}
		exe := fmt.Sprintf("/home/user/job%d.class", i)
		if err := p.Schedd.SubmitFS.WriteFile(exe, []byte("class bytes")); err != nil {
			exe = ""
		}
		p.Schedds[i%2].Submit(&daemon.Job{
			Owner:      "user",
			Ad:         ad,
			Program:    jvm.WellBehaved(7 * time.Minute),
			Executable: exe,
		})
	}

	// Mid-cycle churn: crashes and restarts offset from the 60s
	// negotiation beat, so ads (lifetime 150s) expire partway through
	// a cycle sequence.
	p.Engine.After(7*time.Minute+13*time.Second, p.Startds[0].Crash)
	p.Engine.After(27*time.Minute+41*time.Second, p.Startds[0].Restart)
	p.Engine.After(11*time.Minute+29*time.Second, p.Startds[5].Crash)
	p.Engine.After(33*time.Minute+7*time.Second, p.Startds[5].Restart)

	p.Run(8 * time.Hour)
	return dispositionTrace(p)
}

// TestDeterminismUndefinedEdges pins the fast path to the reference
// scheduler on the UNDEFINED-heavy pool, and the trace to itself
// across reruns of one seed.
func TestDeterminismUndefinedEdges(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		fast := runUndefinedEdgePool(seed, false)
		if again := runUndefinedEdgePool(seed, false); again != fast {
			t.Fatalf("seed %d: same seed, different traces", seed)
		}
		slow := runUndefinedEdgePool(seed, true)
		if fast != slow {
			fl, sl := strings.Split(fast, "\n"), strings.Split(slow, "\n")
			for i := range fl {
				if i >= len(sl) || fl[i] != sl[i] {
					t.Fatalf("seed %d: fast path diverged at line %d:\nfast: %s\nslow: %s",
						seed, i, fl[i], sl[min(i, len(sl)-1)])
				}
			}
			t.Fatalf("seed %d: fast path diverged (length %d vs %d)",
				seed, len(fl), len(sl))
		}
		// The UNDEFINED requirement must strand exactly the
		// GPU-requiring third of the jobs, never silently match them.
		idle := 0
		for _, line := range strings.Split(fast, "\n") {
			if strings.Contains(line, "== ") && strings.HasSuffix(line, "idle") {
				idle++
			}
		}
		if idle != 6 {
			t.Errorf("seed %d: %d jobs idle, want the 6 GPU-requiring ones", seed, idle)
		}
	}
}

// TestDeterminismFastPathMatchesReference compares the compiled,
// indexed negotiation against the original scheduler shape
// (DisableMatchFastPath): the optimization must change no decision,
// so the traces are byte-identical.
func TestDeterminismFastPathMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		fast := runTracedPool(seed, false)
		slow := runTracedPool(seed, true)
		if fast != slow {
			t.Errorf("seed %d: fast path diverged from the reference scheduler", seed)
			// Show the first differing line to make the report usable.
			fl, sl := strings.Split(fast, "\n"), strings.Split(slow, "\n")
			for i := range fl {
				if i >= len(sl) || fl[i] != sl[i] {
					t.Fatalf("first divergence at line %d:\nfast: %s\nslow: %s",
						i, fl[i], sl[min(i, len(sl)-1)])
				}
			}
		}
	}
}
