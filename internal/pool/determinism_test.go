package pool

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
)

// dispositionTrace renders every job's full event log at every submit
// point, in a fixed order: the byte-exact record of what the pool
// decided and when.
func dispositionTrace(p *Pool) string {
	var sb strings.Builder
	for _, s := range p.Schedds {
		for _, j := range s.Jobs() {
			fmt.Fprintf(&sb, "== %s job %d %s\n", s.Name(), j.ID, j.State)
			sb.WriteString(j.EventLog())
		}
	}
	return sb.String()
}

// runTracedPool assembles a failure-rich pool — misconfigured
// machines, chronic-failure avoidance, several owners competing — and
// returns its disposition trace.
func runTracedPool(seed int64, disableFastPath bool) string {
	params := daemon.DefaultParams()
	params.ChronicFailureThreshold = 3
	params.MaxAttempts = 10
	params.DisableMatchFastPath = disableFastPath
	ms := Misconfigure(UniformMachines(10, 2048), 3, BreakBadLibraryPath, false)
	p := New(Config{Seed: seed, Params: params, Machines: ms, Schedds: 2})
	p.StageSharedInput()
	p.SubmitJava(30, MixedWorkload(seed, 10*time.Minute))
	p.Run(48 * time.Hour)
	return dispositionTrace(p)
}

// TestDeterminismSameSeedSameTrace is the regression gate for the
// matchmaking fast path: with one seed, the pool must produce
// byte-identical job-disposition traces run-to-run.
func TestDeterminismSameSeedSameTrace(t *testing.T) {
	a := runTracedPool(11, false)
	b := runTracedPool(11, false)
	if a != b {
		t.Fatalf("same seed, different traces:\n--- run A ---\n%s\n--- run B ---\n%s", a, b)
	}
	if runTracedPool(12, false) == a {
		t.Error("different seeds produced identical traces; the trace is not discriminating")
	}
}

// TestDeterminismFastPathMatchesReference compares the compiled,
// indexed negotiation against the original scheduler shape
// (DisableMatchFastPath): the optimization must change no decision,
// so the traces are byte-identical.
func TestDeterminismFastPathMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		fast := runTracedPool(seed, false)
		slow := runTracedPool(seed, true)
		if fast != slow {
			t.Errorf("seed %d: fast path diverged from the reference scheduler", seed)
			// Show the first differing line to make the report usable.
			fl, sl := strings.Split(fast, "\n"), strings.Split(slow, "\n")
			for i := range fl {
				if i >= len(sl) || fl[i] != sl[i] {
					t.Fatalf("first divergence at line %d:\nfast: %s\nslow: %s",
						i, fl[i], sl[min(i, len(sl)-1)])
				}
			}
		}
	}
}
