package pool

import (
	"fmt"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/sim"
)

// FedPoolConfig describes one member pool of a federation: its own
// matchmaker, machines, submit points, and the ordered list of peer
// pools its starved jobs may flock to.
type FedPoolConfig struct {
	// Name prefixes every actor of the pool ("p1" -> "p1-schedd",
	// "p1-c000", "mm-p1", "flockd-p1").  Names must not contain ':',
	// which the engine reserves for shard-keyed child actors.
	Name string
	// Machines are the pool's execution machines; their names are
	// prefixed with the pool name at build time.
	Machines []daemon.MachineConfig
	// Schedds is the number of submit points (default 1).
	Schedds int
	// FlockTo lists peer pool names in flocking order.  Empty means
	// this pool's jobs never leave.
	FlockTo []string
}

// FederationConfig describes N pools federated over one simulation
// engine and one bus: cross-pool messages travel the same wire as
// local ones, and the serial and parallel engines produce byte-equal
// traces for the whole federation exactly as for one pool.
type FederationConfig struct {
	// Seed drives all randomness; equal seeds give equal traces.
	Seed int64
	// Params are the base kernel parameters; the federation overrides
	// the per-pool fields (Matchmaker, Flockd, FlockTo, FlockAfter).
	Params daemon.Params
	// Pools are the member pools, in build order.
	Pools []FedPoolConfig
	// FlockAfter is how long a job must starve locally before its
	// schedd asks the flock coordinator for a peer pool.  Zero
	// disables flocking everywhere.
	FlockAfter time.Duration
	// MsgLatency is the one-way bus latency (default 5ms).
	MsgLatency time.Duration
	// Workers is the engine's intra-instant concurrency (see Config).
	Workers int
	// Churn, if non-nil, applies deterministic machine churn to every
	// member pool's machines from one seeded schedule (see
	// ChurnConfig): federated pools built of idle workstations churn
	// exactly like single ones.
	Churn *ChurnConfig
}

// FedPool is one assembled member pool.
type FedPool struct {
	Name       string
	Matchmaker *daemon.Matchmaker
	// Flockd is the pool's flock coordinator, nil when the pool has no
	// peers to flock to.
	Flockd *daemon.FlockCoordinator
	// Schedd is the first (often only) submit point.
	Schedd  *daemon.Schedd
	Schedds []*daemon.Schedd
	Startds []*daemon.Startd
}

// Federation is an assembled multi-pool simulation.
type Federation struct {
	Engine *sim.Engine
	Bus    *sim.Bus
	Pools  []*FedPool
}

// MatchmakerFor returns the actor name of a pool's negotiator.
func MatchmakerFor(pool string) string { return "mm-" + pool }

// FlockdFor returns the actor name of a pool's flock coordinator.
func FlockdFor(pool string) string { return "flockd-" + pool }

// NewFederation builds the federation.  All pools share the engine
// and the bus; what separates them is naming: each pool's daemons
// point at their own matchmaker, and only the flocking protocol
// crosses the boundary.
func NewFederation(cfg FederationConfig) *Federation {
	if cfg.MsgLatency == 0 {
		cfg.MsgLatency = 5 * time.Millisecond
	}
	eng := sim.New(cfg.Seed)
	eng.SetWorkers(cfg.Workers)
	bus := sim.NewBus(eng, cfg.MsgLatency)
	bus.Obs = cfg.Params.Trace
	scoped := func(p daemon.Params, owner string) daemon.Params {
		if cfg.Workers > 1 {
			p.Trace = eng.ShardTracer(owner, p.Trace)
		}
		return p
	}

	fed := &Federation{Engine: eng, Bus: bus}
	// Matchmakers first: flock coordinators ping them from the moment
	// they are constructed.
	for _, pc := range cfg.Pools {
		fp := &FedPool{Name: pc.Name}
		mp := cfg.Params
		mp.Matchmaker = MatchmakerFor(pc.Name)
		fp.Matchmaker = daemon.NewMatchmaker(bus, scoped(mp, mp.Matchmaker))
		fed.Pools = append(fed.Pools, fp)
	}
	for i, pc := range cfg.Pools {
		fp := fed.Pools[i]
		pp := cfg.Params
		pp.Matchmaker = MatchmakerFor(pc.Name)
		if cfg.FlockAfter > 0 && len(pc.FlockTo) > 0 {
			pp.Flockd = FlockdFor(pc.Name)
			pp.FlockAfter = cfg.FlockAfter
			for _, peer := range pc.FlockTo {
				pp.FlockTo = append(pp.FlockTo, MatchmakerFor(peer))
			}
			fp.Flockd = daemon.NewFlockCoordinator(bus, scoped(pp, pp.Flockd))
		}
		n := pc.Schedds
		if n <= 0 {
			n = 1
		}
		for s := 0; s < n; s++ {
			name := pc.Name + "-schedd"
			if s > 0 {
				name = fmt.Sprintf("%s-schedd%d", pc.Name, s)
			}
			fp.Schedds = append(fp.Schedds, daemon.NewSchedd(bus, scoped(pp, name), name))
		}
		fp.Schedd = fp.Schedds[0]
		for _, mc := range pc.Machines {
			mc.Name = pc.Name + "-" + mc.Name
			fp.Startds = append(fp.Startds, daemon.NewStartd(bus, scoped(pp, mc.Name), mc))
		}
	}
	if cfg.Churn != nil && cfg.Churn.MeanUp > 0 {
		var all []*daemon.Startd
		for _, fp := range fed.Pools {
			all = append(all, fp.Startds...)
		}
		scheduleChurn(eng, all, *cfg.Churn, cfg.Seed)
	}
	return fed
}

// Pool returns the member with the given name, or nil.
func (f *Federation) Pool(name string) *FedPool {
	for _, p := range f.Pools {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// AllTerminal reports whether every job at every schedd of every pool
// is final.
func (f *Federation) AllTerminal() bool {
	for _, p := range f.Pools {
		for _, s := range p.Schedds {
			if !s.AllTerminal() {
				return false
			}
		}
	}
	return true
}

// SubmitJava queues n Java jobs at the pool's first schedd, staging
// each executable on its submit-side file system, exactly as
// Pool.SubmitJava does.
func (p *FedPool) SubmitJava(n int, build func(i int) *jvm.Program) []daemon.JobID {
	ids := make([]daemon.JobID, 0, n)
	for i := 0; i < n; i++ {
		exe := fmt.Sprintf("/home/user/job%d.class", i)
		if err := p.Schedd.SubmitFS.WriteFile(exe, []byte("class bytes")); err != nil {
			exe = ""
		}
		job := &daemon.Job{
			Owner:      "user",
			Ad:         daemon.NewJavaJobAd("user", 128),
			Program:    build(i),
			Executable: exe,
		}
		ids = append(ids, p.Schedd.Submit(job))
	}
	return ids
}

// Run drives the federation until every job everywhere is terminal or
// the virtual time limit elapses, and returns the elapsed virtual
// time.
func (f *Federation) Run(limit time.Duration) time.Duration {
	start := f.Engine.Now()
	deadline := start.Add(limit)
	for f.Engine.Now() < deadline && !f.AllTerminal() {
		step := time.Minute
		if remaining := deadline.Sub(f.Engine.Now()); remaining < step {
			step = remaining
		}
		f.Engine.RunFor(step)
	}
	return f.Engine.Now().Sub(start)
}

// FlockMetrics summarizes the federation's flocking traffic.
type FlockMetrics struct {
	// Schedd side: queries to coordinators, departures to peers,
	// returns home, corrupt replies dropped.
	Queries     int
	Departures  int
	Returns     int
	ReplyErrors int
	// Coordinator side.
	Grants   int
	Denials  int
	PingsSent int
	// ForeignMatches counts matches negotiators made for other pools'
	// jobs.
	ForeignMatches int
}

// FlockMetrics collects the flocking counters across every pool.
func (f *Federation) FlockMetrics() FlockMetrics {
	var m FlockMetrics
	for _, p := range f.Pools {
		for _, s := range p.Schedds {
			m.Queries += s.FlockQueries
			m.Departures += s.FlockDepartures
			m.Returns += s.FlockReturns
			m.ReplyErrors += s.FlockReplyErrors
		}
		if p.Flockd != nil {
			m.Grants += p.Flockd.Grants
			m.Denials += p.Flockd.Denials
			m.PingsSent += p.Flockd.PingsSent
		}
		m.ForeignMatches += p.Matchmaker.ForeignMatches
	}
	return m
}

// Metrics aggregates the run summary across every pool's schedds and
// machines, exactly as Pool.Metrics does for one pool.
func (f *Federation) Metrics() Metrics {
	var schedds []*daemon.Schedd
	var startds []*daemon.Startd
	for _, p := range f.Pools {
		schedds = append(schedds, p.Schedds...)
		startds = append(startds, p.Startds...)
	}
	return collectMetrics(f.Bus, schedds, startds)
}
