package pool

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/errscope/grid/internal/daemon"
)

// TestPoolInvariantsProperty runs randomized pools and checks the
// accounting invariants that must hold for any configuration:
//
//   - job states partition the queue,
//   - attempts cover at least the completed jobs,
//   - the scoped discipline never leaks incidental errors,
//   - no bus message is lost in a crash-free pool.
func TestPoolInvariantsProperty(t *testing.T) {
	prop := func(seed int64, machineSeed, brokenSeed, jobSeed uint8) bool {
		machines := 2 + int(machineSeed)%6   // 2..7
		broken := int(brokenSeed) % machines // 0..machines-1
		jobs := 4 + int(jobSeed)%12          // 4..15
		params := daemon.DefaultParams()
		params.ChronicFailureThreshold = 2
		params.MaxAttempts = 100
		ms := Misconfigure(UniformMachines(machines, 2048), broken,
			BreakBadLibraryPath, false)
		p := New(Config{Seed: seed, Params: params, Machines: ms})
		p.StageSharedInput()
		p.SubmitJava(jobs, MixedWorkload(seed, 5*time.Minute))
		p.Run(7 * 24 * time.Hour)
		m := p.Metrics()

		if m.Jobs != jobs {
			return false
		}
		if m.Completed+m.Unexecutable+m.Held+m.Unfinished != m.Jobs {
			return false
		}
		if m.Attempts < m.Completed {
			return false
		}
		if m.IncidentalLeaks != 0 { // scoped mode never leaks
			return false
		}
		if m.MessagesLost != 0 { // nothing crashed
			return false
		}
		// With at least one healthy machine, nothing stays
		// unfinished in a week.
		if broken < machines && m.Unfinished != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
