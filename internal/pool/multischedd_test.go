package pool

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

func TestMultiScheddPool(t *testing.T) {
	p := New(Config{
		Seed:     5,
		Params:   daemon.DefaultParams(),
		Machines: UniformMachines(6, 2048),
		Schedds:  3,
	})
	if len(p.Schedds) != 3 || p.Schedd != p.Schedds[0] {
		t.Fatalf("schedds = %d", len(p.Schedds))
	}
	// Each schedd submits its own jobs against the shared machines.
	for si, s := range p.Schedds {
		for i := 0; i < 8; i++ {
			exe := fmt.Sprintf("/home/u%d/job%d.class", si, i)
			s.SubmitFS.WriteFile(exe, []byte("bytes"))
			s.Submit(&daemon.Job{
				Owner:      fmt.Sprintf("user%d", si),
				Ad:         daemon.NewJavaJobAd(fmt.Sprintf("user%d", si), 128),
				Program:    jvm.WellBehaved(10 * time.Minute),
				Executable: exe,
			})
		}
	}
	p.Run(48 * time.Hour)
	m := p.Metrics()
	if m.Jobs != 24 || m.Completed != 24 {
		t.Fatalf("metrics = %s", m)
	}
	// Every schedd made progress — no submit point was starved.
	for si, s := range p.Schedds {
		done := 0
		for _, j := range s.Jobs() {
			if j.State == daemon.JobCompleted {
				done++
			}
		}
		if done != 8 {
			t.Errorf("schedd %d completed %d/8", si, done)
		}
	}
}

func TestMultiScheddIsolatedSubmitFS(t *testing.T) {
	// One schedd's file-system outage must not affect the other's
	// jobs: local-resource scope is local to the submit point.
	params := daemon.DefaultParams()
	params.Mount = daemon.MountPolicy{Kind: daemon.MountSoft,
		SoftTimeout: 2 * time.Minute, RetryInterval: 30 * time.Second}
	// A 3-hour outage burns many soft-mount attempts; keep the job
	// alive through all of them.
	params.MaxAttempts = 500
	p := New(Config{Seed: 6, Params: params,
		Machines: UniformMachines(4, 2048), Schedds: 2})

	for si, s := range p.Schedds {
		exe := fmt.Sprintf("/home/u%d/main.class", si)
		s.SubmitFS.WriteFile(exe, []byte("bytes"))
		s.Submit(&daemon.Job{
			Owner:      fmt.Sprintf("user%d", si),
			Ad:         daemon.NewJavaJobAd(fmt.Sprintf("user%d", si), 128),
			Program:    jvm.WellBehaved(10 * time.Minute),
			Executable: exe,
		})
	}
	// Schedd 0's file system is down for 3 hours.
	p.Schedds[0].SubmitFS.SetOffline(true)
	p.Engine.After(3*time.Hour, func() { p.Schedds[0].SubmitFS.SetOffline(false) })
	p.Run(48 * time.Hour)

	j0 := p.Schedds[0].Jobs()[0]
	j1 := p.Schedds[1].Jobs()[0]
	if j0.State != daemon.JobCompleted || j1.State != daemon.JobCompleted {
		t.Fatalf("states = %v, %v", j0.State, j1.State)
	}
	// Schedd 1's job finished quickly; schedd 0's waited out the
	// outage.
	if j1.Finished.Sub(j1.Submitted) > time.Hour {
		t.Errorf("healthy schedd's job took %v", j1.Finished.Sub(j1.Submitted))
	}
	if j0.Finished.Sub(j0.Submitted) < 3*time.Hour {
		t.Errorf("outage schedd's job took only %v", j0.Finished.Sub(j0.Submitted))
	}
}
