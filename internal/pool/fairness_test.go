package pool

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

// TestMatchmakerFairnessUnderContention: two schedds contend for two
// machines with long job queues; neither may be starved while the
// other drains.
func TestMatchmakerFairnessUnderContention(t *testing.T) {
	p := New(Config{
		Seed:     9,
		Params:   daemon.DefaultParams(),
		Machines: UniformMachines(2, 2048),
		Schedds:  2,
	})
	for si, s := range p.Schedds {
		for i := 0; i < 10; i++ {
			exe := fmt.Sprintf("/home/u%d/j%d.class", si, i)
			s.SubmitFS.WriteFile(exe, []byte("b"))
			s.Submit(&daemon.Job{
				Owner:      fmt.Sprintf("user%d", si),
				Ad:         daemon.NewJavaJobAd(fmt.Sprintf("user%d", si), 128),
				Program:    jvm.WellBehaved(30 * time.Minute),
				Executable: exe,
			})
		}
	}
	// Run only half the time the full workload needs, then compare
	// progress: fairness means both schedds completed similar counts.
	p.Run(5 * time.Hour)
	done := [2]int{}
	for si, s := range p.Schedds {
		for _, j := range s.Jobs() {
			if j.State == daemon.JobCompleted {
				done[si]++
			}
		}
	}
	if done[0] == 0 || done[1] == 0 {
		t.Fatalf("starvation: completions = %v", done)
	}
	diff := done[0] - done[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 2 {
		t.Errorf("unfair progress: %v", done)
	}
	// And the whole workload finishes eventually.
	p.Run(48 * time.Hour)
	if m := p.Metrics(); m.Completed != 20 {
		t.Errorf("metrics = %s", m)
	}
}
