package pool

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
)

// federationTrace renders every job's full event log at every submit
// point of every pool, in a fixed order — the byte-exact record of
// what the federation decided and when.
func federationTrace(f *Federation) string {
	var sb strings.Builder
	for _, p := range f.Pools {
		for _, s := range p.Schedds {
			for _, j := range s.Jobs() {
				fmt.Fprintf(&sb, "== %s job %d %s\n", s.Name(), j.ID, j.State)
				sb.WriteString(j.EventLog())
			}
		}
	}
	return sb.String()
}

// runFederation drives a three-pool federation where p1's machines are
// too small for any of its own jobs: everything p1 submits must flock
// to p2 (or onward to p3) to run, while p2's local jobs compete for
// the same machines.
func runFederation(seed int64, workers int) (*Federation, string) {
	fed := NewFederation(FederationConfig{
		Seed:       seed,
		Params:     daemon.DefaultParams(),
		FlockAfter: 2 * time.Minute,
		Workers:    workers,
		Pools: []FedPoolConfig{
			{Name: "p1", Machines: UniformMachines(4, 64), FlockTo: []string{"p2", "p3"}},
			{Name: "p2", Machines: UniformMachines(4, 2048), FlockTo: []string{"p1"}},
			{Name: "p3", Machines: UniformMachines(2, 2048)},
		},
	})
	fed.Pool("p1").SubmitJava(6, UniformCompute(5*time.Minute))
	// p2's local load is seed-varied so the trace discriminates seeds.
	_ = fed.Pool("p2").Schedd.SubmitFS.WriteFile("/home/user/shared.dat", make([]byte, 4096))
	fed.Pool("p2").SubmitJava(3, MixedWorkload(seed, 5*time.Minute))
	fed.Run(24 * time.Hour)
	return fed, federationTrace(fed)
}

// TestFederationFlockingCompletesStarvedJobs is the functional gate:
// jobs unmatchable at home run to completion in a peer pool and their
// dispositions land at the home schedd.
func TestFederationFlockingCompletesStarvedJobs(t *testing.T) {
	fed, trace := runFederation(42, 0)
	if !fed.AllTerminal() {
		t.Fatalf("federation did not drain:\n%s", trace)
	}
	home := fed.Pool("p1").Schedd
	for _, j := range home.Jobs() {
		if j.State != daemon.JobCompleted {
			t.Errorf("p1 job %d: state %s, want completed", j.ID, j.State)
		}
		if !strings.Contains(j.EventLog(), string(daemon.EventFlocked)) {
			t.Errorf("p1 job %d never flocked:\n%s", j.ID, j.EventLog())
		}
	}
	if len(home.Reports) != 6 {
		t.Errorf("p1 schedd has %d reports, want 6", len(home.Reports))
	}
	fm := fed.FlockMetrics()
	if fm.Departures == 0 || fm.Grants == 0 || fm.ForeignMatches == 0 {
		t.Errorf("flocking never engaged: %+v", fm)
	}
	if home.FlockDepartures == 0 {
		t.Error("home schedd recorded no flock departures")
	}
}

// TestFederationDeterminism extends the determinism property to the
// federated shape: with one seed the whole federation's disposition
// trace is byte-identical across repeated runs and between the serial
// and parallel engines.
func TestFederationDeterminism(t *testing.T) {
	for _, seed := range []int64{42, 7} {
		_, a := runFederation(seed, 0)
		_, b := runFederation(seed, 0)
		if a != b {
			diffLines(t, "rerun", seed, a, b)
		}
		_, par := runFederation(seed, 4)
		if a != par {
			diffLines(t, "parallel engine", seed, a, par)
		}
	}
	_, a := runFederation(42, 0)
	_, c := runFederation(43, 0)
	if a == c {
		t.Error("different seeds produced identical federated traces; the trace is not discriminating")
	}
}

func diffLines(t *testing.T, what string, seed int64, a, b string) {
	t.Helper()
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			t.Fatalf("seed %d: %s diverged at line %d:\nA: %s\nB: %s",
				seed, what, i, al[i], bl[min(i, len(bl)-1)])
		}
	}
	t.Fatalf("seed %d: %s diverged (length %d vs %d)", seed, what, len(al), len(bl))
}
