package pool

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/obs"
)

// runWorkersPool runs the failure-rich determinism pool with the given
// engine concurrency and returns the disposition trace and the full
// structured recording — the two artifacts the parallel engine must
// reproduce byte for byte.
func runWorkersPool(seed int64, workers int) (disp, jsonl string, m Metrics) {
	params := daemon.DefaultParams()
	params.ChronicFailureThreshold = 3
	params.MaxAttempts = 10
	rec := obs.NewRecorder()
	params.Trace = rec
	ms := Misconfigure(UniformMachines(10, 2048), 3, BreakBadLibraryPath, false)
	p := New(Config{Seed: seed, Params: params, Machines: ms, Schedds: 2, Workers: workers})
	p.StageSharedInput()
	p.SubmitJava(30, MixedWorkload(seed, 10*time.Minute))
	p.Run(48 * time.Hour)
	return dispositionTrace(p), rec.JSONL(obs.ExportOptions{}), p.Metrics()
}

func firstDivergence(t *testing.T, what, serial, parallel string) {
	t.Helper()
	sl, pl := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
	for i := range sl {
		if i >= len(pl) || sl[i] != pl[i] {
			got := "<EOF>"
			if i < len(pl) {
				got = pl[i]
			}
			t.Fatalf("%s diverged at line %d:\nserial:   %s\nparallel: %s", what, i, sl[i], got)
		}
	}
	t.Fatalf("%s diverged: parallel output longer (%d vs %d lines)", what, len(pl), len(sl))
}

// TestParallelByteEqualTraces is the tentpole's referee: the parallel
// engine at several worker counts must reproduce the serial engine's
// job dispositions and structured JSONL export byte for byte.
func TestParallelByteEqualTraces(t *testing.T) {
	for _, seed := range []int64{11, 42} {
		serialDisp, serialObs, serialM := runWorkersPool(seed, 1)
		for _, w := range []int{2, 4, 8} {
			disp, jsonl, m := runWorkersPool(seed, w)
			if disp != serialDisp {
				firstDivergence(t, "dispositions", serialDisp, disp)
			}
			if jsonl != serialObs {
				firstDivergence(t, "obs JSONL", serialObs, jsonl)
			}
			if m != serialM {
				t.Fatalf("seed %d workers %d: metrics diverged:\nserial:   %+v\nparallel: %+v", seed, w, serialM, m)
			}
		}
	}
}

// TestParallelRunToRunStable pins the parallel engine to itself: two
// runs with identical configuration must agree even though goroutine
// interleavings differ.
func TestParallelRunToRunStable(t *testing.T) {
	a, aObs, _ := runWorkersPool(7, 4)
	b, bObs, _ := runWorkersPool(7, 4)
	if a != b {
		firstDivergence(t, "dispositions", a, b)
	}
	if aObs != bObs {
		firstDivergence(t, "obs JSONL", aObs, bObs)
	}
}
