// Package pool assembles complete Condor pools on the simulation
// engine — matchmaker, schedd, machines — generates workloads, and
// collects the metrics the paper's experiments report: goodput,
// badput, requeues, and the number of incidental errors leaked to
// users.
package pool

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/sim"
)

// Config describes a pool to build.
type Config struct {
	// Seed drives all randomness; equal seeds give equal traces.
	Seed int64
	// Params are the kernel protocol parameters.
	Params daemon.Params
	// Machines are the execution machines.
	Machines []daemon.MachineConfig
	// Schedds is the number of submit points (default 1).  Multiple
	// schedds share the matchmaker and compete for machines, as in a
	// real multi-user pool.
	Schedds int
	// MsgLatency is the one-way bus latency (default 5ms).
	MsgLatency time.Duration
	// Workers is the engine's intra-instant concurrency: same-instant
	// events of different daemons run on this many goroutines, with a
	// barrier at every instant boundary.  Values <= 1 keep the engine
	// strictly serial.  Traces, dispositions, and exports are byte-equal
	// across settings — parallelism is an execution detail, never an
	// observable one.
	Workers int
	// Churn, if non-nil, makes the machine population dynamic: owners
	// reclaim and release their machines on a seeded schedule, as on
	// the idle-workstation pools the paper ran on.
	Churn *ChurnConfig
}

// ChurnConfig describes deterministic machine churn: every machine
// alternates between serving the pool and being away, with per-machine
// phases drawn from a seeded generator — equal seeds give equal
// schedules, so churned runs replay byte-equal like everything else.
type ChurnConfig struct {
	// Seed drives the schedule; 0 borrows the pool seed.
	Seed int64
	// Horizon bounds the schedule: no departure is generated at or
	// after it.
	Horizon time.Duration
	// MeanUp is the average time a machine serves between departures;
	// each actual up-phase is uniform in [0.5, 1.5) of it.
	MeanUp time.Duration
	// Downtime is how long each departure lasts.
	Downtime time.Duration
	// Crash makes departures silent machine crashes (discovered by
	// timeouts) instead of polite owner-return evictions.
	Crash bool
}

// scheduleChurn lays out every machine's departures and returns up
// front, as plain engine timers: the schedule is part of the
// experiment's definition, not of its execution, so parallel runs see
// the identical sequence.
func scheduleChurn(eng *sim.Engine, startds []*daemon.Startd, cfg ChurnConfig, seed int64) {
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	rng := rand.New(rand.NewSource(seed))
	for _, sd := range startds {
		sd := sd
		t := time.Duration(0)
		for {
			up := time.Duration((0.5 + rng.Float64()) * float64(cfg.MeanUp))
			t += up
			if cfg.Horizon > 0 && t >= cfg.Horizon {
				break
			}
			if cfg.Crash {
				eng.After(t, sd.Crash)
				eng.After(t+cfg.Downtime, sd.Restart)
			} else {
				eng.After(t, sd.Evict)
				eng.After(t+cfg.Downtime, sd.OwnerLeft)
			}
			t += cfg.Downtime
		}
	}
}

// Pool is an assembled simulation.
type Pool struct {
	Engine     *sim.Engine
	Bus        *sim.Bus
	Matchmaker *daemon.Matchmaker
	// Schedd is the first (often only) submit point.
	Schedd *daemon.Schedd
	// Schedds lists every submit point.
	Schedds []*daemon.Schedd
	Startds []*daemon.Startd
}

// New builds the pool.
func New(cfg Config) *Pool {
	if cfg.MsgLatency == 0 {
		cfg.MsgLatency = 5 * time.Millisecond
	}
	eng := sim.New(cfg.Seed)
	eng.SetWorkers(cfg.Workers)
	bus := sim.NewBus(eng, cfg.MsgLatency)
	// The bus shares the daemons' tracer, so message fates interleave
	// with daemon events in one recording.
	bus.Obs = cfg.Params.Trace
	// With a parallel engine, each daemon's tracer is bound to its
	// shard so emissions made inside a wave are staged and replayed in
	// serial order at the barrier.  The serial engine skips the wrapper
	// — it would be a pure passthrough on the hot path.
	scoped := func(owner string) daemon.Params {
		if cfg.Workers <= 1 {
			return cfg.Params
		}
		pp := cfg.Params
		pp.Trace = eng.ShardTracer(owner, pp.Trace)
		return pp
	}
	p := &Pool{
		Engine:     eng,
		Bus:        bus,
		Matchmaker: daemon.NewMatchmaker(bus, scoped(daemon.MatchmakerName)),
	}
	n := cfg.Schedds
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		name := "schedd"
		if i > 0 {
			name = fmt.Sprintf("schedd%d", i)
		}
		p.Schedds = append(p.Schedds, daemon.NewSchedd(bus, scoped(name), name))
	}
	p.Schedd = p.Schedds[0]
	for _, mc := range cfg.Machines {
		p.Startds = append(p.Startds, daemon.NewStartd(bus, scoped(mc.Name), mc))
	}
	if cfg.Churn != nil && cfg.Churn.MeanUp > 0 {
		scheduleChurn(eng, p.Startds, *cfg.Churn, cfg.Seed)
	}
	return p
}

// AllTerminal reports whether every job at every schedd is final.
func (p *Pool) AllTerminal() bool {
	for _, s := range p.Schedds {
		if !s.AllTerminal() {
			return false
		}
	}
	return true
}

// SubmitStandard queues n Standard Universe jobs — re-linked binaries
// with transparent checkpointing — staging each executable on the
// submit-side file system.
func (p *Pool) SubmitStandard(n int, build func(i int) *jvm.Program) []daemon.JobID {
	ids := make([]daemon.JobID, 0, n)
	for i := 0; i < n; i++ {
		exe := fmt.Sprintf("/home/user/job%d.exe", i)
		if err := p.Schedd.SubmitFS.WriteFile(exe, []byte("relinked binary")); err != nil {
			exe = ""
		}
		job := &daemon.Job{
			Owner:      "user",
			Universe:   "standard",
			Ad:         daemon.NewStandardJobAd("user", 128),
			Program:    build(i),
			Executable: exe,
		}
		ids = append(ids, p.Schedd.Submit(job))
	}
	return ids
}

// SubmitJava queues n Java jobs whose programs come from the builder,
// staging each executable on the submit-side file system.
func (p *Pool) SubmitJava(n int, build func(i int) *jvm.Program) []daemon.JobID {
	ids := make([]daemon.JobID, 0, n)
	for i := 0; i < n; i++ {
		exe := fmt.Sprintf("/home/user/job%d.class", i)
		if err := p.Schedd.SubmitFS.WriteFile(exe, []byte("class bytes")); err != nil {
			// The submit file system may be offline by design in an
			// experiment; stage nothing and let the shadow discover
			// the condition.
			exe = ""
		}
		job := &daemon.Job{
			Owner:      "user",
			Ad:         daemon.NewJavaJobAd("user", 128),
			Program:    build(i),
			Executable: exe,
		}
		ids = append(ids, p.Schedd.Submit(job))
	}
	return ids
}

// Run drives the simulation until every job is terminal or the
// virtual time limit elapses, and returns the elapsed virtual time.
func (p *Pool) Run(limit time.Duration) time.Duration {
	start := p.Engine.Now()
	deadline := start.Add(limit)
	for p.Engine.Now() < deadline && !p.AllTerminal() {
		step := time.Minute
		if remaining := deadline.Sub(p.Engine.Now()); remaining < step {
			step = remaining
		}
		p.Engine.RunFor(step)
	}
	return p.Engine.Now().Sub(start)
}

// Metrics summarizes one run.
type Metrics struct {
	Jobs         int
	Completed    int
	Unexecutable int
	Held         int
	Unfinished   int

	// IncidentalLeaks counts completed jobs whose ground truth was
	// an environmental error — the postmortems the paper's users
	// were forced into (Section 2.3).
	IncidentalLeaks int

	Attempts      int
	FetchFailures int
	// LostContacts counts attempts whose execution site went silent
	// (machine crash discovered by the shadow's result timeout).
	LostContacts int
	// Evictions counts attempts ended by a machine owner's return.
	Evictions int
	// Preemptions counts claims transferred to a higher-Rank job.
	Preemptions int
	Requeues    int

	// Recoveries counts schedd restarts that replayed the journal.
	Recoveries int
	// LeaseExpiries counts claims released by the execute side after
	// the submit side stopped renewing.
	LeaseExpiries int

	// Goodput is CPU consumed by attempts that yielded a program
	// result; Badput is CPU burned by attempts that did not.
	Goodput time.Duration
	Badput  time.Duration

	// TurnaroundTotal sums queue residency of completed jobs.
	TurnaroundTotal time.Duration

	// MessagesSent/Lost report bus traffic.
	MessagesSent uint64
	MessagesLost uint64
}

// GoodputFraction returns Goodput/(Goodput+Badput), or 1 with no CPU
// consumed.
func (m Metrics) GoodputFraction() float64 {
	total := m.Goodput + m.Badput
	if total == 0 {
		return 1
	}
	return float64(m.Goodput) / float64(total)
}

// MeanTurnaround returns the average queue residency of completed
// jobs.
func (m Metrics) MeanTurnaround() time.Duration {
	if m.Completed == 0 {
		return 0
	}
	return m.TurnaroundTotal / time.Duration(m.Completed)
}

// Metrics collects the summary for the current state.
func (p *Pool) Metrics() Metrics {
	return collectMetrics(p.Bus, p.Schedds, p.Startds)
}

// collectMetrics builds the summary from any set of schedds and
// startds — one pool's, or a whole federation's.
func collectMetrics(bus *sim.Bus, schedds []*daemon.Schedd, startds []*daemon.Startd) Metrics {
	var m Metrics
	m.MessagesSent = bus.Sent()
	m.MessagesLost = bus.Lost()
	var jobs []*daemon.Job
	for _, s := range schedds {
		m.Requeues += s.Requeues
		m.Recoveries += s.Recoveries
		jobs = append(jobs, s.Jobs()...)
		for _, rep := range s.Reports {
			if rep.IncidentalLeak {
				m.IncidentalLeaks++
			}
		}
	}
	for _, sd := range startds {
		m.LeaseExpiries += sd.LeasesExpired
		m.Preemptions += sd.Preemptions
	}
	for _, j := range jobs {
		m.Jobs++
		switch j.State {
		case daemon.JobCompleted:
			m.Completed++
			m.TurnaroundTotal += j.Finished.Sub(j.Submitted)
		case daemon.JobUnexecutable:
			m.Unexecutable++
		case daemon.JobHeld:
			m.Held++
		default:
			m.Unfinished++
		}
		for _, att := range j.Attempts {
			m.Attempts++
			if att.FetchError != nil {
				m.FetchFailures++
				continue
			}
			if att.LostContact != nil {
				m.LostContacts++
				continue
			}
			if att.Evicted {
				// The owner's return ends the attempt; whether the
				// occupancy was wasted depends on the universe
				// (checkpointing preserves it), so it is reported
				// separately rather than as badput.
				m.Evictions++
				continue
			}
			trueErr := att.True.Err()
			if trueErr == nil || scope.ScopeOf(trueErr) == scope.ScopeProgram {
				m.Goodput += att.CPU
			} else {
				// A failed attempt wastes the machine for its whole
				// occupancy — claim, transfer, startup — not just
				// the program CPU it burned (Section 5: "continuous
				// waste of CPU and network capacity").
				m.Badput += att.End.Sub(att.Start)
			}
		}
	}
	return m
}

// String renders the metrics as a one-line experiment row.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"jobs=%d done=%d unexec=%d held=%d unfinished=%d leaks=%d attempts=%d fetchfail=%d requeues=%d goodput=%s badput=%s gf=%.2f",
		m.Jobs, m.Completed, m.Unexecutable, m.Held, m.Unfinished,
		m.IncidentalLeaks, m.Attempts, m.FetchFailures, m.Requeues,
		m.Goodput, m.Badput, m.GoodputFraction())
}
