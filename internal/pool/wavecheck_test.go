package pool

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
)

// TestParallelSegmentsExercised guards against the parallel plumbing
// silently degenerating into single-shard segments: a busy pool must
// present real intra-instant parallelism to the worker pool.
func TestParallelSegmentsExercised(t *testing.T) {
	params := daemon.DefaultParams()
	p := New(Config{Seed: 42, Params: params, Machines: UniformMachines(32, 2048), Workers: 4})
	p.StageSharedInput()
	p.SubmitJava(64, MixedWorkload(42, 5*time.Minute))
	p.Run(24 * time.Hour)
	segs, shards := p.Engine.SegmentStats()
	if segs == 0 {
		t.Fatal("no parallel segments ran")
	}
	mean := float64(shards) / float64(segs)
	t.Logf("segments=%d shardExecs=%d mean parallelism=%.2f", segs, shards, mean)
	if mean < 1.5 {
		t.Errorf("mean segment parallelism %.2f; expected >= 1.5 on a 32-machine pool", mean)
	}
}
