package pool

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

func TestStatusAndQueueTables(t *testing.T) {
	machines := Misconfigure(UniformMachines(3, 2048), 1, BreakUnstartable, true)
	p := New(Config{Seed: 4, Params: daemon.DefaultParams(), Machines: machines})
	progs := []*jvm.Program{
		jvm.WellBehaved(10 * time.Minute),
		jvm.NullPointer(),
	}
	p.SubmitJava(2, func(i int) *jvm.Program { return progs[i] })
	p.Run(12 * time.Hour)
	p.Startds[2].Crash()

	status := p.StatusTable()
	for _, want := range []string{"MACHINE", "c000", "self-test failed", "down"} {
		if !strings.Contains(status, want) {
			t.Errorf("status missing %q:\n%s", want, status)
		}
	}
	queue := p.QueueTable()
	for _, want := range []string{"ID", "completed", "NullPointerException", "exit 0", "java"} {
		if !strings.Contains(queue, want) {
			t.Errorf("queue missing %q:\n%s", want, queue)
		}
	}
}
