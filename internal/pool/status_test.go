package pool

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

func TestStatusAndQueueTables(t *testing.T) {
	machines := Misconfigure(UniformMachines(3, 2048), 1, BreakUnstartable, true)
	p := New(Config{Seed: 4, Params: daemon.DefaultParams(), Machines: machines})
	progs := []*jvm.Program{
		jvm.WellBehaved(10 * time.Minute),
		jvm.NullPointer(),
	}
	p.SubmitJava(2, func(i int) *jvm.Program { return progs[i] })
	p.Run(12 * time.Hour)
	p.Startds[2].Crash()

	status := p.StatusTable()
	for _, want := range []string{"MACHINE", "c000", "self-test failed", "down"} {
		if !strings.Contains(status, want) {
			t.Errorf("status missing %q:\n%s", want, status)
		}
	}
	queue := p.QueueTable()
	for _, want := range []string{"ID", "completed", "NullPointerException", "exit 0", "java"} {
		if !strings.Contains(queue, want) {
			t.Errorf("queue missing %q:\n%s", want, queue)
		}
	}
}

// TestQueueTableEvictionUnderChurn pins the LAST column against the
// PR-9 attempt outcomes: an attempt ended by an owner eviction must
// render as an eviction (it used to fall through to "exit 0 on m"),
// and a Standard Universe attempt resuming from a checkpoint must say
// so.  The pool runs under seeded churn, stepping the engine by hand
// so the queue is rendered mid-flight, where those outcomes live.
func TestQueueTableEvictionUnderChurn(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.CheckpointOverhead = 15 * time.Second
	params.MaxAttempts = 100
	p := New(Config{
		Seed:     11,
		Params:   params,
		Machines: UniformMachines(4, 2048),
		Churn: &ChurnConfig{
			Horizon:  24 * time.Hour,
			MeanUp:   2 * time.Hour,
			Downtime: 30 * time.Minute,
		},
	})
	p.SubmitStandard(8, UniformCompute(90*time.Minute))

	sawEvicted, sawResumed := false, false
	for range int(48 * time.Hour / time.Minute) {
		p.Engine.RunFor(time.Minute)
		queue := p.QueueTable()
		for _, j := range p.Schedd.Jobs() {
			att := j.LastAttempt()
			if att == nil || j.State.Terminal() {
				continue
			}
			if att.End != 0 && att.Evicted && !att.Preempted {
				want := fmt.Sprintf("evicted off %s", att.Machine)
				if !strings.Contains(queue, want) {
					t.Fatalf("queue missing %q:\n%s", want, queue)
				}
				sawEvicted = true
			}
			if att.End == 0 && j.CheckpointCPU > 0 {
				want := fmt.Sprintf("resumed on %s from %s checkpoint",
					att.Machine, j.CheckpointCPU)
				if !strings.Contains(queue, want) {
					t.Fatalf("queue missing %q:\n%s", want, queue)
				}
				sawResumed = true
			}
		}
		if p.AllTerminal() {
			break
		}
	}
	if !sawEvicted || !sawResumed {
		t.Fatalf("churn exercised neither outcome (evicted=%v resumed=%v)",
			sawEvicted, sawResumed)
	}
	if m := p.Metrics(); m.Unfinished != 0 {
		t.Fatalf("pool did not drain: %s", m)
	}
}

// TestStatusTableDrainStates drives one machine through the admin
// drain lifecycle and pins the machine view at each step: vacating
// inside the grace window, drained after it, unclaimed after resume.
// Before the fix both transitional states rendered as "claimed".
func TestStatusTableDrainStates(t *testing.T) {
	p := New(Config{Seed: 5, Params: daemon.DefaultParams(), Machines: []daemon.MachineConfig{
		{Name: "big", Memory: 4096, AdvertiseJava: true},
		{Name: "small", Memory: 1024, AdvertiseJava: true},
	}})
	p.SubmitStandard(1, UniformCompute(90*time.Minute))
	var big *daemon.Startd
	for _, sd := range p.Startds {
		if sd.Name() == "big" {
			big = sd
		}
	}
	p.Engine.After(30*time.Minute, func() {
		if err := big.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	// The default grace (30s) covers the 2s checkpoint ship, so the
	// vacate completes 2s after the drain begins; stop inside it.
	p.Engine.RunFor(30*time.Minute + time.Second)
	if !big.Draining() || !big.Vacating() {
		t.Fatalf("big should be mid-drain (draining=%v vacating=%v)",
			big.Draining(), big.Vacating())
	}
	if status := p.StatusTable(); !strings.Contains(status, "vacating") {
		t.Errorf("status missing vacating:\n%s", status)
	}

	// Five more seconds: past the vacate (2s in) but inside the 10s
	// requeue backoff, so the eviction is still the last outcome.
	p.Engine.RunFor(5 * time.Second)
	if !big.Drained() {
		t.Fatal("big should be drained after the grace window")
	}
	if status := p.StatusTable(); !strings.Contains(status, "drained") {
		t.Errorf("status missing drained:\n%s", status)
	}
	if queue := p.QueueTable(); !strings.Contains(queue, "evicted off big") {
		t.Errorf("queue missing the drain eviction:\n%s", queue)
	}

	// The resident resumes from its shipped checkpoint elsewhere.
	p.Run(48 * time.Hour)
	m := p.Metrics()
	if m.Completed != 1 {
		t.Fatalf("job did not complete after the drain: %s", m)
	}
	j := p.Schedd.Jobs()[0]
	if att := j.LastAttempt(); att == nil || att.Machine != "small" {
		t.Errorf("job should have resumed on small, got %+v", att)
	}
	if big.Drained() {
		if status := p.StatusTable(); !strings.Contains(status, "drained") {
			t.Errorf("status missing drained:\n%s", status)
		}
	}
	big.Resume()
	if big.Drained() || big.Draining() {
		t.Error("resume should clear the drain state")
	}
	if status := p.StatusTable(); !strings.Contains(status, "unclaimed") {
		t.Errorf("status missing unclaimed after resume:\n%s", status)
	}
}
