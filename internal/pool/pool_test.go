package pool

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

func TestHealthyPoolCompletesEverything(t *testing.T) {
	p := New(Config{
		Seed:     1,
		Params:   daemon.DefaultParams(),
		Machines: UniformMachines(8, 2048),
	})
	p.StageSharedInput()
	p.SubmitJava(32, MixedWorkload(1, 10*time.Minute))
	p.Run(48 * time.Hour)
	m := p.Metrics()
	if m.Unfinished != 0 {
		t.Fatalf("unfinished jobs: %s", m)
	}
	if m.Completed != 32 {
		t.Errorf("completed = %d: %s", m.Completed, m)
	}
	if m.IncidentalLeaks != 0 {
		t.Errorf("healthy pool leaked incidental errors: %s", m)
	}
	if m.GoodputFraction() < 0.99 {
		t.Errorf("goodput fraction = %.2f", m.GoodputFraction())
	}
	if m.MeanTurnaround() <= 0 {
		t.Error("turnaround should be positive")
	}
}

func TestMetricsCountStates(t *testing.T) {
	p := New(Config{
		Seed:     2,
		Params:   daemon.DefaultParams(),
		Machines: UniformMachines(2, 2048),
	})
	// One clean job, one program bug, one corrupt image.
	progs := []*jvm.Program{
		jvm.WellBehaved(time.Minute),
		jvm.NullPointer(),
		jvm.CorruptImage(),
	}
	p.SubmitJava(3, func(i int) *jvm.Program { return progs[i] })
	p.Run(12 * time.Hour)
	m := p.Metrics()
	if m.Completed != 2 { // clean + program bug both complete
		t.Errorf("completed = %d: %s", m.Completed, m)
	}
	if m.Unexecutable != 1 {
		t.Errorf("unexecutable = %d: %s", m.Unexecutable, m)
	}
	if m.IncidentalLeaks != 0 {
		t.Errorf("leaks = %d", m.IncidentalLeaks)
	}
}

func TestMisconfigureBuilders(t *testing.T) {
	ms := Misconfigure(UniformMachines(10, 1024), 3, BreakBadLibraryPath, true)
	broken := 0
	for _, mc := range ms {
		if !mc.SelfTest {
			t.Error("self-test flag not applied")
		}
		if mc.JVM.BadLibraryPath {
			broken++
		}
	}
	if broken != 3 {
		t.Errorf("broken = %d", broken)
	}
	ms2 := Misconfigure(UniformMachines(2, 1024), 5, BreakUnstartable, false)
	if !ms2[0].JVM.Broken || !ms2[1].JVM.Broken {
		t.Error("over-count should break all machines")
	}
	ms3 := Misconfigure(UniformMachines(1, 1024), 1, BreakTinyHeap, false)
	if ms3[0].JVM.HeapLimit != 1<<10 {
		t.Error("tiny heap not applied")
	}
}

func TestDeterministicPoolMetrics(t *testing.T) {
	run := func() Metrics {
		p := New(Config{Seed: 42, Params: daemon.DefaultParams(),
			Machines: Misconfigure(UniformMachines(6, 2048), 2, BreakBadLibraryPath, false)})
		p.StageSharedInput()
		p.SubmitJava(20, MixedWorkload(42, 5*time.Minute))
		p.Run(48 * time.Hour)
		return p.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("metrics differ:\n%s\n%s", a, b)
	}
}

func TestOfflineSubmitFSStallsThenRecovers(t *testing.T) {
	params := daemon.DefaultParams()
	params.Mount = daemon.MountPolicy{
		Kind: daemon.MountSoft, SoftTimeout: 2 * time.Minute, RetryInterval: 20 * time.Second,
	}
	p := New(Config{Seed: 3, Params: params, Machines: UniformMachines(4, 2048)})
	p.SubmitJava(8, UniformCompute(5*time.Minute))
	p.Schedd.SubmitFS.SetOffline(true)
	p.Engine.After(time.Hour, func() { p.Schedd.SubmitFS.SetOffline(false) })
	p.Run(24 * time.Hour)
	m := p.Metrics()
	if m.Completed != 8 {
		t.Fatalf("completed = %d: %s", m.Completed, m)
	}
	if m.FetchFailures == 0 {
		t.Error("expected fetch failures during the outage")
	}
}
