package pool

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
)

// run4kPool drives a pool-scale uniform workload — 4096 machines, one
// full wave of jobs — through a complete lifecycle and returns the
// disposition trace.  This is the shape where the throughput
// optimizations (idle-job index, journal group commit, shared ads,
// auto-clustered negotiation) all engage at once; the tests below pin
// that none of them trades determinism for speed.
func run4kPool(seed int64, referenceSchedd bool) string {
	params := daemon.DefaultParams()
	params.DisableScheddFastPath = referenceSchedd
	p := New(Config{
		Seed:     seed,
		Params:   params,
		Machines: UniformMachines(4096, 2048),
	})
	p.SubmitJava(4096, UniformCompute(5*time.Minute))
	p.Run(24 * time.Hour)
	return dispositionTrace(p)
}

// TestDeterminism4kMachinePool is the scale gate the bench-pool work
// answers to: at 4096 machines, two seeds each run twice must produce
// byte-identical event logs and dispositions, and every job must
// reach a terminal state.
func TestDeterminism4kMachinePool(t *testing.T) {
	for _, seed := range []int64{5, 19} {
		a := run4kPool(seed, false)
		b := run4kPool(seed, false)
		if a != b {
			al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
			for i := range al {
				if i >= len(bl) || al[i] != bl[i] {
					t.Fatalf("seed %d: rerun diverged at line %d:\nA: %s\nB: %s",
						seed, i, al[i], bl[min(i, len(bl)-1)])
				}
			}
			t.Fatalf("seed %d: rerun diverged (length %d vs %d)", seed, len(al), len(bl))
		}
		completed := strings.Count(a, "completed")
		if completed < 4096 {
			t.Errorf("seed %d: %d of 4096 jobs completed", seed, completed)
		}
	}
}

// TestScheddFastPath4kMatchesReference compares the optimized schedd
// (indexed queue, group-committed journal, shared ads) against the
// pre-optimization reference arm at the 4k shape: the throughput work
// must change no decision, so the traces are byte-identical.
func TestScheddFastPath4kMatchesReference(t *testing.T) {
	if testing.Short() {
		t.Skip("reference schedd arm at 4k machines is slow")
	}
	fast := run4kPool(5, false)
	slow := run4kPool(5, true)
	if fast != slow {
		fl, sl := strings.Split(fast, "\n"), strings.Split(slow, "\n")
		for i := range fl {
			if i >= len(sl) || fl[i] != sl[i] {
				t.Fatalf("schedd fast path diverged at line %d:\nfast: %s\nreference: %s",
					i, fl[i], sl[min(i, len(sl)-1)])
			}
		}
		t.Fatalf("schedd fast path diverged (length %d vs %d)", len(fl), len(sl))
	}
}
