package pool

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

// TestChurnedPoolCompletesStandardJobs: machines come and go on a
// seeded schedule, yet every checkpointing job completes — each
// eviction is a remote-resource error scoped to the claim, and the
// journaled checkpoints bound the rework.
func TestChurnedPoolCompletesStandardJobs(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	p := New(Config{
		Seed:     7,
		Params:   params,
		Machines: UniformMachines(8, 2048),
		Churn: &ChurnConfig{
			Horizon:  12 * time.Hour,
			MeanUp:   2 * time.Hour,
			Downtime: 30 * time.Minute,
		},
	})
	p.SubmitStandard(16, UniformCompute(45*time.Minute))
	p.Run(48 * time.Hour)
	m := p.Metrics()
	if m.Unfinished != 0 || m.Completed != 16 {
		t.Fatalf("completed = %d unfinished = %d: %s", m.Completed, m.Unfinished, m)
	}
	if m.Evictions == 0 {
		t.Error("churn produced no evictions — the schedule never fired")
	}
	if m.IncidentalLeaks != 0 {
		t.Errorf("churn leaked incidental errors: %s", m)
	}
}

// TestChurnCrashMode: crash-mode churn is silent — the pool discovers
// the losses through timeouts — and checkpointing still carries every
// job to completion.
func TestChurnCrashMode(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.ResultTimeout = 30 * time.Minute
	p := New(Config{
		Seed:     11,
		Params:   params,
		Machines: UniformMachines(8, 2048),
		Churn: &ChurnConfig{
			Horizon:  8 * time.Hour,
			MeanUp:   3 * time.Hour,
			Downtime: time.Hour,
			Crash:    true,
		},
	})
	p.SubmitStandard(12, UniformCompute(30*time.Minute))
	p.Run(72 * time.Hour)
	m := p.Metrics()
	if m.Unfinished != 0 || m.Completed != 12 {
		t.Fatalf("completed = %d unfinished = %d: %s", m.Completed, m.Unfinished, m)
	}
}

// TestChurnDeterministic: the churn schedule is part of the seed's
// contract — equal seeds give equal metrics, distinct churn seeds give
// (almost surely) distinct schedules.
func TestChurnDeterministic(t *testing.T) {
	run := func(churnSeed int64) Metrics {
		params := daemon.DefaultParams()
		params.CheckpointInterval = 10 * time.Minute
		p := New(Config{
			Seed:     42,
			Params:   params,
			Machines: UniformMachines(6, 2048),
			Churn: &ChurnConfig{
				Seed:     churnSeed,
				Horizon:  10 * time.Hour,
				MeanUp:   90 * time.Minute,
				Downtime: 20 * time.Minute,
			},
		})
		p.SubmitStandard(10, UniformCompute(40*time.Minute))
		p.Run(48 * time.Hour)
		return p.Metrics()
	}
	a, b := run(0), run(0)
	if a != b {
		t.Errorf("same seed, different metrics:\n%s\n%s", a, b)
	}
	if c := run(99); c == a && c.Evictions == a.Evictions {
		t.Logf("distinct churn seeds coincided (possible, just unlikely): %s", c)
	}
}

// TestStandardJobsNeverEvictedMatchJava: SubmitStandard itself is
// benign — without churn the jobs run exactly once.
func TestStandardJobsRunOnceWithoutChurn(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	p := New(Config{Seed: 5, Params: params, Machines: UniformMachines(4, 2048)})
	p.SubmitStandard(8, func(int) *jvm.Program { return jvm.WellBehaved(20 * time.Minute) })
	p.Run(24 * time.Hour)
	m := p.Metrics()
	if m.Completed != 8 || m.Attempts != 8 || m.Evictions != 0 {
		t.Fatalf("completed = %d attempts = %d evictions = %d: %s",
			m.Completed, m.Attempts, m.Evictions, m)
	}
}
