package pool

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
)

// UniformMachines builds n healthy machines named c000..c(n-1), all
// advertising working Java.  The zero-padding widens with n so names
// stay in lexicographic order: the matchmaker keeps machines in a
// name-sorted list, and in-order arrival makes every insert an append
// instead of an O(n) mid-list shift — the difference between linear
// and quadratic pool construction at 10k machines.  Pools of up to
// 1000 machines keep the historic three-digit names.
func UniformMachines(n int, memoryMB int64) []daemon.MachineConfig {
	width := 3
	for limit := 1000; n > limit; limit *= 10 {
		width++
	}
	out := make([]daemon.MachineConfig, n)
	for i := range out {
		out[i] = daemon.MachineConfig{
			Name:          fmt.Sprintf("c%0*d", width, i),
			Memory:        memoryMB,
			AdvertiseJava: true,
		}
	}
	return out
}

// BreakKind selects how a misconfigured machine is broken.
type BreakKind int

// The ways a machine owner can get the Java installation wrong.
const (
	// BreakBadLibraryPath: the owner gave an incorrect path to the
	// standard libraries — the paper's canonical example.
	BreakBadLibraryPath BreakKind = iota
	// BreakUnstartable: the installation cannot start at all.
	BreakUnstartable
	// BreakTinyHeap: the owner configured a heap too small for real
	// jobs (fails only jobs that allocate).
	BreakTinyHeap
)

// Misconfigure breaks the first k machines in the given way while
// their owners keep asserting HasJava, and sets the self-test flag on
// every machine according to selfTest.  It returns the modified
// slice.
func Misconfigure(machines []daemon.MachineConfig, k int, kind BreakKind, selfTest bool) []daemon.MachineConfig {
	for i := range machines {
		machines[i].SelfTest = selfTest
	}
	for i := 0; i < k && i < len(machines); i++ {
		switch kind {
		case BreakUnstartable:
			machines[i].JVM.Broken = true
		case BreakTinyHeap:
			machines[i].JVM.HeapLimit = 1 << 10
		default:
			machines[i].JVM.BadLibraryPath = true
		}
	}
	return machines
}

// Workload builders.

// UniformCompute returns a builder of jobs that compute for d.
func UniformCompute(d time.Duration) func(int) *jvm.Program {
	return func(int) *jvm.Program { return jvm.WellBehaved(d) }
}

// MixedWorkload returns a builder resembling a real queue: mostly
// clean compute jobs, a few with program bugs, a few memory hogs, and
// a few that perform remote I/O.  The mix is deterministic in seed.
func MixedWorkload(seed int64, meanCompute time.Duration) func(int) *jvm.Program {
	rng := rand.New(rand.NewSource(seed))
	return func(i int) *jvm.Program {
		d := meanCompute/2 + time.Duration(rng.Int63n(int64(meanCompute)))
		switch rng.Intn(10) {
		case 0: // program bug: the user should see this
			return &jvm.Program{Class: "Main", Steps: []jvm.Step{
				jvm.Compute{Duration: d / 2},
				jvm.Throw{Exception: "ArrayIndexOutOfBoundsException", Message: "index 12"},
			}}
		case 1: // allocates a lot (fails on tiny-heap machines)
			return &jvm.Program{Class: "Main", Steps: []jvm.Step{
				jvm.Allocate{Bytes: 32 << 20},
				jvm.Compute{Duration: d},
			}}
		case 2: // remote I/O against the submit machine
			return &jvm.Program{Class: "Main", Steps: []jvm.Step{
				jvm.IORead{Path: "/home/user/shared.dat", Length: 1024},
				jvm.Compute{Duration: d},
				jvm.IOWrite{Path: fmt.Sprintf("/home/user/out%d.dat", i), Data: []byte("result")},
			}}
		default:
			return jvm.WellBehaved(d)
		}
	}
}

// StageSharedInput writes the shared input file MixedWorkload's I/O
// jobs read.
func (p *Pool) StageSharedInput() {
	_ = p.Schedd.SubmitFS.WriteFile("/home/user/shared.dat", make([]byte, 4096))
}
