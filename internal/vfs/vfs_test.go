package vfs

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"github.com/errscope/grid/internal/scope"
)

func wantCode(t *testing.T, err error, code string, s scope.Scope) {
	t.Helper()
	se, ok := scope.AsError(err)
	if !ok {
		t.Fatalf("error %v is not scoped", err)
	}
	if se.Code != code || se.Scope != s {
		t.Fatalf("error = %s/%v, want %s/%v (%v)", se.Code, se.Scope, code, s, err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := New()
	data := []byte("hello grid")
	if err := fs.WriteFile("/data/in.txt", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("data/in.txt") // path canonicalization
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
	if fs.Used() != int64(len(data)) {
		t.Errorf("used = %d", fs.Used())
	}
}

func TestReadMissing(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/nope")
	wantCode(t, err, CodeFileNotFound, scope.ScopeFile)
}

func TestPathValidation(t *testing.T) {
	fs := New()
	for _, p := range []string{"", "/", "..", "a/../../b", "/./."} {
		if err := fs.WriteFile(p, nil); err == nil {
			t.Errorf("WriteFile(%q) should fail", p)
		} else {
			wantCode(t, err, CodeBadArgument, scope.ScopeFunction)
		}
	}
	// Dot segments that stay inside the namespace are fine.
	if err := fs.WriteFile("/a/./b", []byte("x")); err != nil {
		t.Errorf("WriteFile(/a/./b): %v", err)
	}
	if _, err := fs.ReadFile("a/b"); err != nil {
		t.Errorf("canonical read: %v", err)
	}
}

func TestQuota(t *testing.T) {
	fs := New()
	fs.SetQuota(10)
	if err := fs.WriteFile("/a", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	err := fs.WriteFile("/b", make([]byte, 8))
	wantCode(t, err, CodeDiskFull, scope.ScopeFile)
	// Replacing a file reuses its space.
	if err := fs.WriteFile("/a", make([]byte, 10)); err != nil {
		t.Errorf("replace within quota: %v", err)
	}
	// Removing frees space.
	if err := fs.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", make([]byte, 8)); err != nil {
		t.Errorf("after unlink: %v", err)
	}
	if fs.Used() != 8 {
		t.Errorf("used = %d", fs.Used())
	}
	fs.SetQuota(0)
	if err := fs.WriteFile("/big", make([]byte, 1<<20)); err != nil {
		t.Errorf("unlimited: %v", err)
	}
}

func TestOffline(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.SetOffline(true)
	if !fs.Offline() {
		t.Error("Offline()")
	}
	_, err := fs.ReadFile("/a")
	wantCode(t, err, CodeOffline, scope.ScopeLocalResource)
	err = fs.WriteFile("/b", nil)
	wantCode(t, err, CodeOffline, scope.ScopeLocalResource)
	_, err = fs.Stat("/a")
	wantCode(t, err, CodeOffline, scope.ScopeLocalResource)
	fs.SetOffline(false)
	if _, err := fs.ReadFile("/a"); err != nil {
		t.Errorf("back online: %v", err)
	}
}

func TestReadWriteAt(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAt("/f", 3, 4)
	if err != nil || string(got) != "3456" {
		t.Fatalf("ReadAt = %q, %v", got, err)
	}
	// Short read at tail.
	got, err = fs.ReadAt("/f", 8, 10)
	if err != nil || string(got) != "89" {
		t.Fatalf("tail ReadAt = %q, %v", got, err)
	}
	// Past end.
	_, err = fs.ReadAt("/f", 10, 1)
	wantCode(t, err, CodeEndOfFile, scope.ScopeFile)
	// Negative arguments.
	_, err = fs.ReadAt("/f", -1, 1)
	wantCode(t, err, CodeBadArgument, scope.ScopeFunction)

	n, err := fs.WriteAt("/f", 5, []byte("ABC"))
	if err != nil || n != 3 {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	data, _ := fs.ReadFile("/f")
	if string(data) != "01234ABC89" {
		t.Errorf("data = %q", data)
	}
	// Extension past end.
	if _, err := fs.WriteAt("/f", 12, []byte("ZZ")); err != nil {
		t.Fatal(err)
	}
	data, _ = fs.ReadFile("/f")
	if len(data) != 14 || string(data[12:]) != "ZZ" || data[10] != 0 {
		t.Errorf("extended = %q", data)
	}
	if fs.Used() != 14 {
		t.Errorf("used = %d", fs.Used())
	}
	// WriteAt to missing file.
	_, err = fs.WriteAt("/missing", 0, []byte("x"))
	wantCode(t, err, CodeFileNotFound, scope.ScopeFile)
}

func TestWriteAtQuota(t *testing.T) {
	fs := New()
	fs.SetQuota(10)
	if err := fs.WriteFile("/f", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// In-place write is free.
	if _, err := fs.WriteAt("/f", 0, make([]byte, 8)); err != nil {
		t.Errorf("in-place: %v", err)
	}
	// Growth beyond quota fails.
	_, err := fs.WriteAt("/f", 8, make([]byte, 8))
	wantCode(t, err, CodeDiskFull, scope.ScopeFile)
}

func TestReadOnly(t *testing.T) {
	fs := New()
	fs.WriteFile("/ro", []byte("x"))
	if err := fs.SetReadOnly("/ro", true); err != nil {
		t.Fatal(err)
	}
	err := fs.WriteFile("/ro", []byte("y"))
	wantCode(t, err, CodeAccessDenied, scope.ScopeFile)
	_, err = fs.WriteAt("/ro", 0, []byte("y"))
	wantCode(t, err, CodeAccessDenied, scope.ScopeFile)
	err = fs.Unlink("/ro")
	wantCode(t, err, CodeAccessDenied, scope.ScopeFile)
	if err := fs.SetReadOnly("/ro", false); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/ro"); err != nil {
		t.Errorf("after unprotect: %v", err)
	}
	if err := fs.SetReadOnly("/missing", true); err == nil {
		t.Error("SetReadOnly missing should fail")
	}
}

func TestCreateUnlinkRename(t *testing.T) {
	fs := New()
	if err := fs.Create("/new"); err != nil {
		t.Fatal(err)
	}
	err := fs.Create("/new")
	wantCode(t, err, CodeFileExists, scope.ScopeFile)
	if err := fs.WriteFile("/new", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/new", "/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("/new"); err == nil {
		t.Error("old name should be gone")
	}
	data, err := fs.ReadFile("/renamed")
	if err != nil || string(data) != "abc" {
		t.Errorf("renamed = %q, %v", data, err)
	}
	// Rename over existing replaces and adjusts usage.
	fs.WriteFile("/other", []byte("0123456789"))
	if err := fs.Rename("/renamed", "/other"); err != nil {
		t.Fatal(err)
	}
	if fs.Used() != 3 {
		t.Errorf("used = %d", fs.Used())
	}
	if err := fs.Rename("/ghost", "/x"); err == nil {
		t.Error("rename of missing should fail")
	}
	err = fs.Unlink("/ghost")
	wantCode(t, err, CodeFileNotFound, scope.ScopeFile)
}

func TestStatAndList(t *testing.T) {
	fs := New()
	fs.WriteFile("/dir/a", []byte("aa"))
	fs.WriteFile("/dir/b", []byte("b"))
	fs.WriteFile("/dirx", []byte("x"))
	fs.WriteFile("/top", []byte("t"))
	info, err := fs.Stat("/dir/a")
	if err != nil || info.Size != 2 || info.Path != "/dir/a" {
		t.Errorf("stat = %+v, %v", info, err)
	}
	list, err := fs.List("/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Path != "/dir/a" || list[1].Path != "/dir/b" {
		t.Errorf("list = %+v", list)
	}
	all, _ := fs.List("")
	if len(all) != 4 {
		t.Errorf("all = %+v", all)
	}
	root, _ := fs.List("/")
	if len(root) != 4 {
		t.Errorf("root = %+v", root)
	}
	none, _ := fs.List("/nothing")
	if len(none) != 0 {
		t.Errorf("none = %+v", none)
	}
}

func TestCorruptionIsImplicit(t *testing.T) {
	fs := New()
	orig := bytes.Repeat([]byte("abcdefgh"), 32) // 256 bytes
	fs.WriteFile("/f", orig)
	fs.CorruptNextReads("/f", 1)
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatalf("corrupted read must not error (it is implicit): %v", err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("data should be corrupted")
	}
	// The corruption budget is consumed.
	got2, err := fs.ReadFile("/f")
	if err != nil || !bytes.Equal(got2, orig) {
		t.Error("second read should be clean")
	}
	// ReadAt consumes corruption too.
	fs.CorruptNextReads("/f", 1)
	part, err := fs.ReadAt("/f", 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(part, orig[:64]) {
		t.Error("ReadAt should observe corruption")
	}
}

func TestVFSContractConformance(t *testing.T) {
	// Every error the file system returns must conform to its
	// declared contract (Principle 4).
	fs := New()
	fs.SetQuota(4)
	fs.WriteFile("/ro", []byte("x"))
	fs.SetReadOnly("/ro", true)
	contract := Contract()
	errs := []error{}
	_, e1 := fs.ReadFile("/missing")
	errs = append(errs, e1)
	errs = append(errs, fs.WriteFile("/ro", []byte("y")))
	errs = append(errs, fs.WriteFile("/big", make([]byte, 100)))
	_, e2 := fs.ReadAt("/ro", 5, 1)
	errs = append(errs, e2)
	fs.SetOffline(true)
	_, e3 := fs.ReadFile("/ro")
	errs = append(errs, e3)
	for _, err := range errs {
		if err == nil {
			t.Fatal("expected error")
		}
		if v := contract.Violations(err); v != "" {
			t.Errorf("contract violation: %s", v)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	fs := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			path := "/f" + string(rune('a'+n))
			for j := 0; j < 100; j++ {
				if err := fs.WriteFile(path, []byte{byte(j)}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := fs.ReadFile(path); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if fs.Used() != 8 {
		t.Errorf("used = %d", fs.Used())
	}
}

func TestUsedInvariantProperty(t *testing.T) {
	// After any sequence of operations, Used() equals the sum of
	// file sizes.
	type op struct {
		Kind byte
		Path byte
		Size byte
	}
	prop := func(ops []op) bool {
		fs := New()
		paths := []string{"/a", "/b", "/c"}
		for _, o := range ops {
			p := paths[int(o.Path)%len(paths)]
			switch o.Kind % 4 {
			case 0:
				_ = fs.WriteFile(p, make([]byte, int(o.Size)))
			case 1:
				_ = fs.Unlink(p)
			case 2:
				_, _ = fs.WriteAt(p, int64(o.Size%8), make([]byte, int(o.Size)))
			case 3:
				_ = fs.Rename(p, paths[(int(o.Path)+1)%len(paths)])
			}
		}
		list, err := fs.List("")
		if err != nil {
			return false
		}
		var total int64
		for _, info := range list {
			total += info.Size
		}
		return total == fs.Used()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestErrorsAreScoped(t *testing.T) {
	fs := New()
	_, err := fs.ReadFile("/x")
	var se *scope.Error
	if !errors.As(err, &se) {
		t.Fatal("vfs errors must be scoped")
	}
}
