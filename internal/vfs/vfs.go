// Package vfs provides an in-memory, thread-safe file system used as
// the storage substrate for the shadow's remote I/O service and the
// starter's scratch space.
//
// The file system is also a fault-injection point: it can be taken
// offline (the paper's "home file system was offline" scenario), given
// a byte quota (DiskFull), hold read-only files (AccessDenied), and
// silently corrupt stored data (a deliberate source of *implicit*
// errors for end-to-end detection experiments).
//
// All failures are reported as explicit scoped errors from package
// scope, so the layers above can propagate them by Principle 3.  The
// single exception is corruption: by definition an implicit error is
// presented as a valid result, so Read returns corrupted data without
// an error — exactly the property that makes implicit errors
// expensive to detect (Section 3.1).
package vfs

import (
	"sort"
	"strings"
	"sync"

	"github.com/errscope/grid/internal/scope"
)

// Error codes reported by the file system.  This is a concise and
// finite interface per Principle 4.
const (
	CodeFileNotFound = "FileNotFound"
	CodeAccessDenied = "AccessDenied"
	CodeDiskFull     = "DiskFull"
	CodeEndOfFile    = "EndOfFile"
	CodeOffline      = "FileSystemOffline"
	CodeBadArgument  = "BadArgument"
	CodeFileExists   = "FileExists"
)

// Contract is the error interface of the file system, usable by
// callers to verify conformance (Principle 4).
func Contract() *scope.Contract {
	return scope.NewContract("vfs", scope.ScopeLocalResource, "FileSystemError").
		Declare(CodeFileNotFound, scope.ScopeFile).
		Declare(CodeAccessDenied, scope.ScopeFile).
		Declare(CodeDiskFull, scope.ScopeFile).
		Declare(CodeEndOfFile, scope.ScopeFile).
		Declare(CodeBadArgument, scope.ScopeFunction).
		Declare(CodeFileExists, scope.ScopeFile).
		Declare(CodeOffline, scope.ScopeLocalResource)
}

type file struct {
	data     []byte
	readOnly bool
}

// FileSystem is an in-memory file store with a flat, slash-separated
// namespace.  It is safe for concurrent use.
type FileSystem struct {
	mu      sync.Mutex
	files   map[string]*file
	quota   int64 // 0 = unlimited
	used    int64
	offline bool
	// corrupt maps a path to the number of reads that should be
	// silently corrupted.
	corrupt map[string]int
	// ops counts operations by name, for experiment metrics.
	ops map[string]int64
}

// New creates an empty file system with no quota.
func New() *FileSystem {
	return &FileSystem{
		files:   make(map[string]*file),
		corrupt: make(map[string]int),
		ops:     make(map[string]int64),
	}
}

// clean canonicalizes a path: leading slash, no empty segments.
func clean(path string) (string, error) {
	if path == "" {
		return "", scope.New(scope.ScopeFunction, CodeBadArgument, "empty path")
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			continue
		case "..":
			return "", scope.New(scope.ScopeFunction, CodeBadArgument, "path %q escapes the namespace", path)
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "", scope.New(scope.ScopeFunction, CodeBadArgument, "empty path %q", path)
	}
	return "/" + strings.Join(out, "/"), nil
}

// SetQuota sets the byte quota; 0 removes it.  Shrinking the quota
// below current usage does not destroy data but blocks further growth.
func (fs *FileSystem) SetQuota(bytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.quota = bytes
}

// SetOffline marks the backing store unavailable; every operation
// fails with FileSystemOffline (local-resource scope) until restored.
func (fs *FileSystem) SetOffline(offline bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.offline = offline
}

// Offline reports the current availability state.
func (fs *FileSystem) Offline() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.offline
}

// CorruptNextReads arranges for the next n reads of path to return
// silently corrupted data: an implicit error.
func (fs *FileSystem) CorruptNextReads(path string, n int) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.corrupt[p] = n
	return nil
}

// Used returns the bytes currently stored.
func (fs *FileSystem) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// OpCount returns how many times the named operation ran.
func (fs *FileSystem) OpCount(op string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops[op]
}

func (fs *FileSystem) check(op string) error {
	fs.ops[op]++
	if fs.offline {
		return scope.New(scope.ScopeLocalResource, CodeOffline, "file system offline during %s", op)
	}
	return nil
}

// WriteFile stores data at path, replacing any existing content.
func (fs *FileSystem) WriteFile(path string, data []byte) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("write"); err != nil {
		return err
	}
	f, exists := fs.files[p]
	var old int64
	if exists {
		if f.readOnly {
			return scope.New(scope.ScopeFile, CodeAccessDenied, "%s is read-only", p)
		}
		old = int64(len(f.data))
	}
	if fs.quota > 0 && fs.used-old+int64(len(data)) > fs.quota {
		return scope.New(scope.ScopeFile, CodeDiskFull,
			"writing %d bytes to %s exceeds quota %d (used %d)", len(data), p, fs.quota, fs.used)
	}
	fs.used += int64(len(data)) - old
	fs.files[p] = &file{data: append([]byte(nil), data...)}
	return nil
}

// ReadFile returns the content at path.  If corruption was injected,
// the returned data is silently altered — an implicit error.
func (fs *FileSystem) ReadFile(path string) ([]byte, error) {
	p, err := clean(path)
	if err != nil {
		return nil, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("read"); err != nil {
		return nil, err
	}
	f, ok := fs.files[p]
	if !ok {
		return nil, scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	data := append([]byte(nil), f.data...)
	if n := fs.corrupt[p]; n > 0 {
		fs.corrupt[p] = n - 1
		corruptBytes(data)
	}
	return data, nil
}

// corruptBytes flips one bit per 64 bytes, deterministically.
func corruptBytes(data []byte) {
	if len(data) == 0 {
		return
	}
	for i := 0; i < len(data); i += 64 {
		data[i] ^= 0x80
	}
}

// ReadAt reads up to length bytes from offset.  Reading at or past
// the end yields EndOfFile with zero bytes; a short read at the tail
// is not an error.
func (fs *FileSystem) ReadAt(path string, offset int64, length int) ([]byte, error) {
	p, err := clean(path)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 {
		return nil, scope.New(scope.ScopeFunction, CodeBadArgument, "negative offset or length")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("read"); err != nil {
		return nil, err
	}
	f, ok := fs.files[p]
	if !ok {
		return nil, scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	if offset >= int64(len(f.data)) {
		return nil, scope.New(scope.ScopeFile, CodeEndOfFile, "offset %d past end of %s (%d bytes)", offset, p, len(f.data))
	}
	end := offset + int64(length)
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	data := append([]byte(nil), f.data[offset:end]...)
	if n := fs.corrupt[p]; n > 0 {
		fs.corrupt[p] = n - 1
		corruptBytes(data)
	}
	return data, nil
}

// WriteAt writes data at offset, extending the file if needed.
func (fs *FileSystem) WriteAt(path string, offset int64, data []byte) (int, error) {
	p, err := clean(path)
	if err != nil {
		return 0, err
	}
	if offset < 0 {
		return 0, scope.New(scope.ScopeFunction, CodeBadArgument, "negative offset")
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("write"); err != nil {
		return 0, err
	}
	f, ok := fs.files[p]
	if !ok {
		return 0, scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	if f.readOnly {
		return 0, scope.New(scope.ScopeFile, CodeAccessDenied, "%s is read-only", p)
	}
	newLen := offset + int64(len(data))
	if newLen < int64(len(f.data)) {
		newLen = int64(len(f.data))
	}
	grow := newLen - int64(len(f.data))
	if fs.quota > 0 && fs.used+grow > fs.quota {
		return 0, scope.New(scope.ScopeFile, CodeDiskFull,
			"growing %s by %d bytes exceeds quota %d (used %d)", p, grow, fs.quota, fs.used)
	}
	if grow > 0 {
		f.data = append(f.data, make([]byte, grow)...)
		fs.used += grow
	}
	copy(f.data[offset:], data)
	return len(data), nil
}

// Create makes an empty file; it fails if the file exists.
func (fs *FileSystem) Create(path string) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("create"); err != nil {
		return err
	}
	if _, ok := fs.files[p]; ok {
		return scope.New(scope.ScopeFile, CodeFileExists, "%s already exists", p)
	}
	fs.files[p] = &file{}
	return nil
}

// Unlink removes a file.
func (fs *FileSystem) Unlink(path string) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("unlink"); err != nil {
		return err
	}
	f, ok := fs.files[p]
	if !ok {
		return scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	if f.readOnly {
		return scope.New(scope.ScopeFile, CodeAccessDenied, "%s is read-only", p)
	}
	fs.used -= int64(len(f.data))
	delete(fs.files, p)
	return nil
}

// Rename moves a file to a new path, replacing any existing target.
func (fs *FileSystem) Rename(oldPath, newPath string) error {
	op, err := clean(oldPath)
	if err != nil {
		return err
	}
	np, err := clean(newPath)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("rename"); err != nil {
		return err
	}
	f, ok := fs.files[op]
	if !ok {
		return scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", op)
	}
	if prev, ok := fs.files[np]; ok {
		fs.used -= int64(len(prev.data))
	}
	fs.files[np] = f
	delete(fs.files, op)
	return nil
}

// Info describes a stored file.
type Info struct {
	Path     string
	Size     int64
	ReadOnly bool
}

// Stat returns metadata for path.
func (fs *FileSystem) Stat(path string) (Info, error) {
	p, err := clean(path)
	if err != nil {
		return Info{}, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("stat"); err != nil {
		return Info{}, err
	}
	f, ok := fs.files[p]
	if !ok {
		return Info{}, scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	return Info{Path: p, Size: int64(len(f.data)), ReadOnly: f.readOnly}, nil
}

// SetReadOnly marks a file immutable (or mutable again).
func (fs *FileSystem) SetReadOnly(path string, ro bool) error {
	p, err := clean(path)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("chmod"); err != nil {
		return err
	}
	f, ok := fs.files[p]
	if !ok {
		return scope.New(scope.ScopeFile, CodeFileNotFound, "no such file %s", p)
	}
	f.readOnly = ro
	return nil
}

// List returns metadata for every file whose path begins with prefix,
// sorted by path.  An empty prefix lists everything.
func (fs *FileSystem) List(prefix string) ([]Info, error) {
	var p string
	if prefix != "" && prefix != "/" {
		var err error
		p, err = clean(prefix)
		if err != nil {
			return nil, err
		}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.check("list"); err != nil {
		return nil, err
	}
	var out []Info
	for path, f := range fs.files {
		if p == "" || path == p || strings.HasPrefix(path, p+"/") {
			out = append(out, Info{Path: path, Size: int64(len(f.data)), ReadOnly: f.readOnly})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
