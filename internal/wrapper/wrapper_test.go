package wrapper

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/javaio"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

func runThrough(t *testing.T, m *jvm.Machine, prog *jvm.Program, io jvm.FileOps) scope.Result {
	t.Helper()
	scratch := vfs.New()
	w := &Wrapper{}
	w.Run(m, prog, io, scratch)
	return ReadResult(scratch, "")
}

func TestCleanExitThroughResultFile(t *testing.T) {
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.WellBehaved(time.Millisecond), nil)
	if res.Status != scope.StatusExited || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	if err := res.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
}

func TestSystemExitThroughResultFile(t *testing.T) {
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.ExitWith(42, 0), nil)
	if res.Status != scope.StatusExited || res.ExitCode != 42 {
		t.Fatalf("res = %+v", res)
	}
	// A nonzero exit is a program result (explicit, program scope).
	se, _ := scope.AsError(res.Err())
	if se == nil || se.Scope != scope.ScopeProgram {
		t.Errorf("err = %v", res.Err())
	}
}

func TestProgramExceptionIsProgramResult(t *testing.T) {
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.NullPointer(), nil)
	if res.Status != scope.StatusException || res.Exception != "NullPointerException" {
		t.Fatalf("res = %+v", res)
	}
	if res.Scope != scope.ScopeProgram {
		t.Errorf("scope = %v", res.Scope)
	}
	if scope.DisposeError(res.Err()) != scope.DispositionComplete {
		t.Error("program exception must complete the job")
	}
}

func TestEnvironmentalErrorsEscapeWithScope(t *testing.T) {
	cases := []struct {
		name      string
		m         *jvm.Machine
		prog      *jvm.Program
		wantScope scope.Scope
		wantDisp  scope.Disposition
	}{
		{"OOM", jvm.New(jvm.Config{HeapLimit: 1024}), jvm.MemoryHog(1 << 20), scope.ScopeVirtualMachine, scope.DispositionRequeue},
		{"bad library", jvm.New(jvm.Config{BadLibraryPath: true}), jvm.WellBehaved(0), scope.ScopeRemoteResource, scope.DispositionRequeue},
		{"corrupt image", jvm.New(jvm.Config{}), jvm.CorruptImage(), scope.ScopeJob, scope.DispositionUnexecutable},
	}
	for _, c := range cases {
		res := runThrough(t, c.m, c.prog, nil)
		if res.Status != scope.StatusEscape {
			t.Errorf("%s: status = %v", c.name, res.Status)
			continue
		}
		if res.Scope != c.wantScope {
			t.Errorf("%s: scope = %v, want %v", c.name, res.Scope, c.wantScope)
		}
		if d := scope.DisposeError(res.Err()); d != c.wantDisp {
			t.Errorf("%s: disposition = %v, want %v", c.name, d, c.wantDisp)
		}
	}
}

func TestBrokenJVMProducesNoResultFile(t *testing.T) {
	scratch := vfs.New()
	w := &Wrapper{}
	exec := w.Run(jvm.New(jvm.Config{Broken: true}), jvm.WellBehaved(0), nil, scratch)
	if exec.ExitCode != 1 {
		t.Errorf("exit = %d", exec.ExitCode)
	}
	res := ReadResult(scratch, "")
	if res.Status != scope.StatusNoResult {
		t.Fatalf("res = %+v", res)
	}
	se, _ := scope.AsError(res.Err())
	if se == nil || se.Scope != scope.ScopeRemoteResource || se.Kind != scope.KindEscaping {
		t.Errorf("no-result error = %v", res.Err())
	}
}

func TestCorruptResultFileIsNoResult(t *testing.T) {
	scratch := vfs.New()
	scratch.WriteFile(DefaultResultPath, []byte("garbage ="))
	res := ReadResult(scratch, "")
	if res.Status != scope.StatusNoResult {
		t.Fatalf("res = %+v", res)
	}
}

func TestIOEscapeReachesResultFile(t *testing.T) {
	// Full inner pipeline: program -> I/O library over an offline
	// file system -> escaping Java Error -> wrapper -> result file.
	fs := vfs.New()
	fs.WriteFile("/in", []byte("data"))
	fs.SetOffline(true)
	lib := javaio.New(&javaio.VFSTransport{FS: fs})
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.ReadsInput("/in", 4), lib)
	if res.Status != scope.StatusEscape {
		t.Fatalf("res = %+v", res)
	}
	if res.Scope != scope.ScopeLocalResource {
		t.Errorf("scope = %v", res.Scope)
	}
	if res.Exception != javaio.ErrHomeFSOffline {
		t.Errorf("exception = %q", res.Exception)
	}
	if scope.DisposeError(res.Err()) != scope.DispositionRequeue {
		t.Error("local-resource escape must requeue")
	}
}

func TestIOFileNotFoundIsProgramResult(t *testing.T) {
	fs := vfs.New()
	lib := javaio.New(&javaio.VFSTransport{FS: fs})
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.ReadsInput("/missing", 4), lib)
	if res.Status != scope.StatusException || res.Exception != javaio.ExcFileNotFound {
		t.Fatalf("res = %+v", res)
	}
	if scope.DisposeError(res.Err()) != scope.DispositionComplete {
		t.Error("FileNotFoundException is a program result the user must see")
	}
}

func TestGenericModeTurnsEnvironmentIntoProgramResult(t *testing.T) {
	// The before picture of Section 2.3: with the generic library,
	// an offline file system comes back to the user as a job result.
	fs := vfs.New()
	fs.WriteFile("/in", []byte("data"))
	fs.SetOffline(true)
	lib := javaio.NewGeneric(&javaio.VFSTransport{FS: fs})
	res := runThrough(t, jvm.New(jvm.Config{}), jvm.ReadsInput("/in", 4), lib)
	if res.Status != scope.StatusException {
		t.Fatalf("res = %+v", res)
	}
	if scope.DisposeError(res.Err()) != scope.DispositionComplete {
		t.Error("generic mode wrongly completes the job — the bug the paper describes")
	}
}

func TestRawExitInterpretationLosesScope(t *testing.T) {
	// Figure 4: without the wrapper, OOM and null pointer are both
	// "the program exited 1".
	oom := jvm.New(jvm.Config{HeapLimit: 1024}).Execute(jvm.MemoryHog(1<<20), nil)
	npe := jvm.New(jvm.Config{}).Execute(jvm.NullPointer(), nil)
	rawOOM := RawExitInterpretation(oom)
	rawNPE := RawExitInterpretation(npe)
	if rawOOM != rawNPE {
		t.Fatalf("raw interpretations differ: %+v vs %+v", rawOOM, rawNPE)
	}
	if scope.DisposeError(rawOOM.Err()) != scope.DispositionComplete {
		t.Error("raw interpretation wrongly completes an OOM job")
	}
	// With the wrapper they are distinguishable.
	w := &Wrapper{}
	if w.Classify(oom).Scope == w.Classify(npe).Scope {
		t.Error("wrapper should distinguish the scopes")
	}
}

func TestCustomClassifierAndPath(t *testing.T) {
	scratch := vfs.New()
	cls := scope.NewClassifier(scope.ScopeProgram).Add("WeirdError", scope.ScopeJob)
	w := &Wrapper{Classifier: cls, ResultPath: "/alt/result"}
	prog := &jvm.Program{Class: "M", Steps: []jvm.Step{
		jvm.Throw{Exception: "WeirdError", Message: "?", Scope: scope.ScopeProgram},
	}}
	w.Run(jvm.New(jvm.Config{}), prog, nil, scratch)
	res := ReadResult(scratch, "/alt/result")
	if res.Status != scope.StatusEscape || res.Scope != scope.ScopeJob {
		t.Fatalf("res = %+v", res)
	}
}

func TestEscapingProgramScopeWidensToProcess(t *testing.T) {
	// A Thrown marked escaping but classified program scope cannot
	// be a program result; the wrapper widens it.
	w := &Wrapper{}
	exec := &jvm.Execution{ExitCode: 1, Thrown: &jvm.Thrown{
		Name: "SomeAnonymousError", Scope: scope.ScopeProgram, Escaping: true,
	}}
	res := w.Classify(exec)
	if res.Status != scope.StatusEscape || res.Scope != scope.ScopeProcess {
		t.Fatalf("res = %+v", res)
	}
}
