// Package wrapper implements the program wrapper of Section 4 of the
// paper.  The starter causes the JVM to invoke the wrapper with the
// actual program as an argument.  The wrapper locates the program,
// attempts to execute it, and catches any exceptions it may throw.
// It examines the exception type and then produces a result file
// describing the program result and the scope of any errors
// discovered.  The starter examines this result file and ignores the
// JVM exit code entirely.
//
// Without the wrapper, the JVM exit code is the starter's only
// signal, and Figure 4 shows that it cannot distinguish a null
// pointer (program scope) from an offline file system (local-resource
// scope): both are exit code 1.  RawExitInterpretation preserves that
// flawed reading for the before/after experiments.
package wrapper

import (
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// DefaultResultPath is where the wrapper leaves its result file in
// the starter's scratch directory.
const DefaultResultPath = "/scratch/.condor_java_result"

// Wrapper runs a program inside a JVM and reports through a result
// file.
type Wrapper struct {
	// Classifier maps exception names to scopes; nil selects the
	// Java Universe classification.
	Classifier *scope.Classifier
	// ResultPath overrides DefaultResultPath when non-empty.
	ResultPath string
	// Trace, when non-nil and enabled, receives the error's origin
	// event (the JVM's thrown exception) and the wrapper's
	// classification of it — the first two hops of every error span.
	// TraceJob tags the events; TraceNow supplies timestamps (nil
	// falls back to zero, for callers outside any clock).
	Trace    obs.Tracer
	TraceJob int64
	TraceNow func() int64
}

func (w *Wrapper) traceNow() int64 {
	if w.TraceNow != nil {
		return w.TraceNow()
	}
	return 0
}

func (w *Wrapper) classifier() *scope.Classifier {
	if w.Classifier != nil {
		return w.Classifier
	}
	return scope.JavaUniverseClassifier()
}

func (w *Wrapper) resultPath() string {
	if w.ResultPath != "" {
		return w.ResultPath
	}
	return DefaultResultPath
}

// Run executes prog on machine m with the I/O service io, writing the
// wrapper's result file into scratch.  The returned Execution is what
// the starter observes of the JVM process (exit code, CPU).
//
// When the JVM cannot start at all, the wrapper never runs and no
// result file is written; the starter must interpret the absence of a
// result as an escaping error of remote-resource scope (see
// ReadResult).
func (w *Wrapper) Run(m *jvm.Machine, prog *jvm.Program, io jvm.FileOps, scratch *vfs.FileSystem) *jvm.Execution {
	return w.RunFrom(m, prog, io, scratch, 0)
}

// RunFrom is Run resuming from a checkpoint: the program restarts
// with resume worth of computation already done (Standard Universe
// migration; see jvm.ExecuteFrom).
func (w *Wrapper) RunFrom(m *jvm.Machine, prog *jvm.Program, io jvm.FileOps, scratch *vfs.FileSystem, resume time.Duration) *jvm.Execution {
	exec := m.ExecuteFrom(prog, io, resume)

	if exec.Thrown != nil && w.Trace != nil && w.Trace.Enabled() {
		// Origin event: the error as the JVM surfaced it, before any
		// classification.
		th := exec.Thrown
		ekind := "explicit"
		if th.Escaping {
			ekind = "escaping"
		}
		w.Trace.Emit(obs.Event{
			T:      w.traceNow(),
			Comp:   "jvm",
			Kind:   obs.KindError,
			Job:    w.TraceJob,
			Code:   th.Name,
			Scope:  th.Scope.String(),
			EKind:  ekind,
			Detail: th.Message,
		})
	}

	if exec.Thrown != nil && exec.Thrown.Name == "JVMStartError" {
		// The wrapper never got control: no result file.
		return exec
	}

	res := w.Classify(exec)
	if res.Status != scope.StatusExited && w.Trace != nil && w.Trace.Enabled() {
		// Classification event: the scope the wrapper assigned, which
		// may widen the JVM's own reading (Section 3.3).
		w.Trace.Emit(obs.Event{
			T:      w.traceNow(),
			Comp:   "wrapper",
			Kind:   obs.KindError,
			Job:    w.TraceJob,
			Code:   res.Exception,
			Scope:  res.Scope.String(),
			EKind:  res.Status.String(),
			Detail: res.Message,
		})
	}
	// Write the result file.  Failure to write it is itself an
	// environmental failure; the wrapper can do nothing but exit,
	// and the starter will see the absent/partial file as NoResult.
	_ = scratch.WriteFile(w.resultPath(), []byte(res.EncodeString()))
	return exec
}

// Classify converts an execution into the wrapper's result, applying
// the exception classification.  Exported for the Figure 4 experiment
// and the simulation layer, which execute without a scratch file
// system.
func (w *Wrapper) Classify(exec *jvm.Execution) scope.Result {
	if exec.Thrown == nil {
		return scope.Result{Status: scope.StatusExited, ExitCode: exec.ExitCode}
	}
	th := exec.Thrown
	sc := w.classifier().Classify(th.Name)
	// The thrown error may already carry a wider scope than the
	// name alone implies; scope may only widen (Section 3.3).
	sc = sc.Widen(th.Scope)
	if sc == scope.ScopeProgram && !th.Escaping {
		return scope.Result{
			Status:    scope.StatusException,
			Exception: th.Name,
			Scope:     scope.ScopeProgram,
			Message:   th.Message,
		}
	}
	if sc == scope.ScopeProgram {
		// An escaping error that classifies as program scope still
		// cannot be a program result; it invalidates at least the
		// process.
		sc = scope.ScopeProcess
	}
	return scope.Result{
		Status:    scope.StatusEscape,
		Exception: th.Name,
		Scope:     sc,
		Message:   th.Message,
	}
}

// ReadResult is the starter's side of the indirect channel: it reads
// and decodes the wrapper's result file from scratch.  A missing or
// unparseable file yields StatusNoResult — the execution environment
// failed before the wrapper could report, an error of remote-resource
// scope.
func ReadResult(scratch *vfs.FileSystem, path string) scope.Result {
	if path == "" {
		path = DefaultResultPath
	}
	data, err := scratch.ReadFile(path)
	if err != nil {
		return scope.Result{Status: scope.StatusNoResult}
	}
	res, err := scope.DecodeResultString(string(data))
	if err != nil {
		return scope.Result{Status: scope.StatusNoResult}
	}
	return res
}

// RawExitInterpretation is the original, pre-wrapper behaviour: the
// starter relies entirely on the JVM exit code as an indicator of
// program success.  Every termination is presented as a program
// result, converting environmental failures into implicit errors in
// the layer above (a violation of Principle 1 that the experiments
// quantify).
func RawExitInterpretation(exec *jvm.Execution) scope.Result {
	return scope.Result{Status: scope.StatusExited, ExitCode: exec.ExitCode}
}
