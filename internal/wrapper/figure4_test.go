package wrapper

import (
	"testing"
	"time"

	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/scope"
	"github.com/errscope/grid/internal/vfs"
)

// TestFigure4ExitCodeMatrix pins the whole Figure 4 table: the JVM
// exit code collapses every abnormal termination to 1, and only the
// wrapper's result file recovers the scope that distinguishes them.
func TestFigure4ExitCodeMatrix(t *testing.T) {
	cases := []struct {
		name       string
		m          *jvm.Machine
		prog       *jvm.Program
		wantExit   int
		wantStatus scope.ResultStatus
		wantScope  scope.Scope
	}{
		{"complete", jvm.New(jvm.Config{}), jvm.WellBehaved(time.Millisecond),
			0, scope.StatusExited, scope.ScopeNone},
		{"System.exit(3)", jvm.New(jvm.Config{}), jvm.ExitWith(3, 0),
			3, scope.StatusExited, scope.ScopeNone},
		{"uncaught exception", jvm.New(jvm.Config{}), jvm.NullPointer(),
			1, scope.StatusException, scope.ScopeProgram},
		{"out of memory", jvm.New(jvm.Config{HeapLimit: 1024}), jvm.MemoryHog(1 << 20),
			1, scope.StatusEscape, scope.ScopeVirtualMachine},
		{"bad library path", jvm.New(jvm.Config{BadLibraryPath: true}), jvm.WellBehaved(0),
			1, scope.StatusEscape, scope.ScopeRemoteResource},
		{"corrupt class image", jvm.New(jvm.Config{}), jvm.CorruptImage(),
			1, scope.StatusEscape, scope.ScopeJob},
		{"missing program image", jvm.New(jvm.Config{}), &jvm.Program{},
			1, scope.StatusEscape, scope.ScopeJob},
		{"broken installation", jvm.New(jvm.Config{Broken: true}), jvm.WellBehaved(0),
			1, scope.StatusNoResult, scope.ScopeNone},
	}
	abnormal := 0
	for _, c := range cases {
		scratch := vfs.New()
		w := &Wrapper{}
		exec := w.Run(c.m, c.prog, nil, scratch)
		if exec.ExitCode != c.wantExit {
			t.Errorf("%s: exit = %d, want %d", c.name, exec.ExitCode, c.wantExit)
		}
		if exec.ExitCode == 1 {
			abnormal++
		}
		res := ReadResult(scratch, "")
		if res.Status != c.wantStatus {
			t.Errorf("%s: status = %v, want %v", c.name, res.Status, c.wantStatus)
		}
		if res.Scope != c.wantScope {
			t.Errorf("%s: scope = %v, want %v", c.name, res.Scope, c.wantScope)
		}
	}
	if abnormal < 6 {
		t.Errorf("only %d rows share exit code 1; the matrix should show the information loss", abnormal)
	}
}

// TestWrapperTraceEmission checks the wrapper's two trace hops: the
// JVM origin event and the wrapper's classification.
func TestWrapperTraceEmission(t *testing.T) {
	run := func(m *jvm.Machine, prog *jvm.Program) []obs.Event {
		rec := obs.NewRecorder()
		w := &Wrapper{Trace: rec, TraceJob: 7,
			TraceNow: func() int64 { return 99 }}
		w.Run(m, prog, nil, vfs.New())
		return rec.Events()
	}

	// Clean completion emits nothing.
	if evs := run(jvm.New(jvm.Config{}), jvm.WellBehaved(0)); len(evs) != 0 {
		t.Errorf("clean run emitted %d events", len(evs))
	}

	// A program exception: origin (jvm, explicit) then classification
	// (wrapper, exception), tagged and timestamped.
	evs := run(jvm.New(jvm.Config{}), jvm.NullPointer())
	if len(evs) != 2 {
		t.Fatalf("NPE run emitted %d events, want 2", len(evs))
	}
	origin, class := evs[0], evs[1]
	if origin.Comp != "jvm" || origin.Code != "NullPointerException" || origin.EKind != "explicit" {
		t.Errorf("origin = %+v", origin)
	}
	if class.Comp != "wrapper" || class.EKind != "exception" || class.Scope != "program" {
		t.Errorf("classification = %+v", class)
	}
	for _, ev := range evs {
		if ev.Job != 7 || ev.T != 99 {
			t.Errorf("tagging: job=%d t=%d", ev.Job, ev.T)
		}
	}

	// An environmental escape: the origin is escaping and the wrapper
	// reports an escape at the widened scope.
	evs = run(jvm.New(jvm.Config{HeapLimit: 1024}), jvm.MemoryHog(1<<20))
	if len(evs) != 2 {
		t.Fatalf("OOM run emitted %d events, want 2", len(evs))
	}
	if evs[0].EKind != "escaping" || evs[0].Code != "OutOfMemoryError" {
		t.Errorf("OOM origin = %+v", evs[0])
	}
	if evs[1].EKind != "escape" || evs[1].Scope != "virtual-machine" {
		t.Errorf("OOM classification = %+v", evs[1])
	}

	// A JVM that cannot start emits only the origin; the wrapper never
	// ran, so there is no classification hop (and no result file).
	evs = run(jvm.New(jvm.Config{Broken: true}), jvm.WellBehaved(0))
	if len(evs) != 1 {
		t.Fatalf("broken-JVM run emitted %d events, want 1", len(evs))
	}
	if evs[0].Comp != "jvm" || evs[0].Code != "JVMStartError" || evs[0].EKind != "escaping" {
		t.Errorf("broken-JVM origin = %+v", evs[0])
	}
}

// TestResultWriteFailureYieldsNoResult: when the wrapper cannot write
// its result file, the starter must read the failure as NoResult —
// the environment failed before the wrapper could report.
func TestResultWriteFailureYieldsNoResult(t *testing.T) {
	scratch := vfs.New()
	if err := scratch.WriteFile(DefaultResultPath, []byte("stale =")); err != nil {
		t.Fatal(err)
	}
	scratch.SetReadOnly(DefaultResultPath, true)
	w := &Wrapper{}
	w.Run(jvm.New(jvm.Config{}), jvm.NullPointer(), nil, scratch)
	res := ReadResult(scratch, "")
	if res.Status != scope.StatusNoResult {
		t.Fatalf("res = %+v, want no-result", res)
	}
	se, _ := scope.AsError(res.Err())
	if se == nil || se.Scope != scope.ScopeRemoteResource {
		t.Errorf("no-result error = %v", res.Err())
	}
}
