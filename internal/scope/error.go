package scope

import (
	"errors"
	"fmt"
)

// Kind distinguishes the three ways an error may be communicated
// (Section 3.1 of the paper).
type Kind int

const (
	// KindImplicit marks a result presented as valid but otherwise
	// determined to be false.  The package never constructs implicit
	// errors deliberately (Principle 1); the kind exists so that
	// detectors — duplicate computation, checksum comparison — can
	// label what they find.
	KindImplicit Kind = iota

	// KindExplicit marks a result that describes an inability to
	// carry out the requested action, conforming to the interface of
	// the routine that returned it.
	KindExplicit

	// KindEscaping marks a result accompanied by a change in control
	// flow, delivered not to the immediate caller but to a higher
	// level of software, because the routine could not represent the
	// error within its interface.
	KindEscaping
)

var kindNames = [...]string{
	KindImplicit: "implicit",
	KindExplicit: "explicit",
	KindEscaping: "escaping",
}

// String returns the canonical name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind converts a canonical kind name back into a Kind.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return KindImplicit, fmt.Errorf("scope: unknown kind name %q", name)
}

// Error is an error annotated with the portion of the system it
// invalidates.  It is the unit of propagation between the components
// of the grid: a receiver that cannot understand Code can still act
// correctly on Scope.
type Error struct {
	// Scope is the portion of the system the error invalidates.
	Scope Scope
	// Kind is how the error is being communicated.
	Kind Kind
	// Code is a short machine-readable identifier drawn from the
	// vocabulary of the interface that produced the error, e.g.
	// "FileNotFound" or "OutOfMemoryError".
	Code string
	// Message is a human-readable description.
	Message string
	// Origin names the component that first discovered the error,
	// e.g. "starter" or "jvm".
	Origin string
	// Cause is the underlying error, if any.
	Cause error
}

// Error implements the error interface.
func (e *Error) Error() string {
	msg := e.Message
	if msg == "" && e.Cause != nil {
		msg = e.Cause.Error()
	}
	if e.Origin != "" {
		return fmt.Sprintf("%s: %s [%s, %s scope]: %s", e.Origin, e.Code, e.Kind, e.Scope, msg)
	}
	return fmt.Sprintf("%s [%s, %s scope]: %s", e.Code, e.Kind, e.Scope, msg)
}

// Unwrap returns the underlying cause, enabling errors.Is/As chains.
func (e *Error) Unwrap() error { return e.Cause }

// Is reports whether target is a *Error with the same Code, allowing
// errors.Is comparisons against sentinel scoped errors.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return e.Code == t.Code && (t.Scope == ScopeNone || t.Scope == e.Scope)
}

// New constructs an explicit error of the given scope.
func New(s Scope, code, format string, args ...any) *Error {
	return &Error{
		Scope:   s,
		Kind:    KindExplicit,
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}
}

// Explicit constructs an explicit error wrapping cause.
func Explicit(s Scope, code string, cause error) *Error {
	return &Error{Scope: s, Kind: KindExplicit, Code: code, Cause: cause}
}

// Escape converts an error into an escaping error of at least the
// given scope, per Principle 2: an escaping error must be used to
// convert a potential implicit error into an explicit error at a
// higher level.  If err is already a scoped error its scope may only
// widen; the original error is preserved as the cause.
func Escape(s Scope, code string, cause error) *Error {
	e := &Error{Scope: s, Kind: KindEscaping, Code: code, Cause: cause}
	if prev, ok := AsError(cause); ok {
		e.Scope = prev.Scope.Widen(s)
		if code == "" {
			e.Code = prev.Code
		}
		if e.Origin == "" {
			e.Origin = prev.Origin
		}
	}
	return e
}

// WithOrigin returns a shallow copy of e stamped with the named
// origin component, if it does not already carry one.
func (e *Error) WithOrigin(origin string) *Error {
	cp := *e
	if cp.Origin == "" {
		cp.Origin = origin
	}
	return &cp
}

// Widen returns a copy of e reinterpreted at a containing layer: the
// scope may only grow.  Widening an error to the same or narrower
// scope returns e unchanged.  This is the mechanism of Section 3.3 by
// which, for example, a lost connection of network scope becomes an
// error of process scope when interpreted in the context of RPC.
func (e *Error) Widen(s Scope, code string) *Error {
	if s <= e.Scope {
		return e
	}
	return &Error{
		Scope:   s,
		Kind:    e.Kind,
		Code:    code,
		Message: e.Message,
		Origin:  e.Origin,
		Cause:   e,
	}
}

// AsError extracts a *Error from err's chain.
func AsError(err error) (*Error, bool) {
	var se *Error
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// ScopeOf returns the scope of err.  A plain error that carries no
// scope information is, by definition, an error whose meaning is
// inexpressible in the interfaces it crossed; it is treated as
// ScopeProcess, the scope of a broken mechanism of function call.
func ScopeOf(err error) Scope {
	if err == nil {
		return ScopeNone
	}
	if se, ok := AsError(err); ok {
		return se.Scope
	}
	return ScopeProcess
}

// KindOf returns the kind of err; plain errors are explicit.
func KindOf(err error) Kind {
	if se, ok := AsError(err); ok {
		return se.Kind
	}
	return KindExplicit
}

// Route returns the handler that must receive err, per Principle 3.
func Route(err error) Handler {
	return ScopeOf(err).Handler()
}

// Merge combines several errors from one operation — a failure plus
// its cleanup failures, or the results of parallel sub-operations —
// into one error carrying the *widest* scope among them, with the
// others preserved in the message.  Nil inputs are skipped; all-nil
// yields nil.  Merging never narrows (Section 3.3) and never produces
// an implicit error (Principle 1).
func Merge(code string, errs ...error) error {
	var widest *Error
	var rest []error
	for _, err := range errs {
		if err == nil {
			continue
		}
		se, ok := AsError(err)
		if !ok {
			se = New(ScopeProcess, "UnknownError", "%v", err)
			se.Kind = KindEscaping
			se.Cause = err
		}
		if widest == nil || se.Scope > widest.Scope {
			if widest != nil {
				rest = append(rest, widest)
			}
			widest = se
		} else {
			rest = append(rest, se)
		}
	}
	if widest == nil {
		return nil
	}
	if len(rest) == 0 {
		if code != "" && widest.Code != code {
			cp := *widest
			cp.Code = code
			cp.Cause = widest
			return &cp
		}
		return widest
	}
	merged := &Error{
		Scope:   widest.Scope,
		Kind:    widest.Kind,
		Code:    code,
		Message: fmt.Sprintf("%v (and %d more)", widest, len(rest)),
		Cause:   widest,
	}
	if code == "" {
		merged.Code = widest.Code
	}
	return merged
}
