package scope

import "fmt"

// Scope identifies the portion of a grid system that an error
// invalidates.  Scopes are ordered by containment: a larger value
// invalidates a strictly larger portion of the system.  The ordering
// follows Figure 3 of the paper, from the innermost (a single file or
// function) out to the entire pool.
//
// The schedd's last-line-of-defense policy (Section 4) is defined in
// terms of this order: an error of Program scope means the job is
// complete; an error of Job scope means the job is unexecutable;
// anything in between causes the job to be logged and tried again at
// a new site.
type Scope int

const (
	// ScopeNone is the zero Scope and indicates the absence of an
	// error classification.  It is not a valid scope for an Error.
	ScopeNone Scope = iota

	// ScopeFile invalidates a single named file: FileNotFound,
	// AccessDenied, EndOfFile.  Handled by the caller that named
	// the file.
	ScopeFile

	// ScopeFunction invalidates a single function invocation.
	// Handled by the calling function.
	ScopeFunction

	// ScopeNetwork invalidates a communication channel between two
	// processes: a lost or refused connection.  Its ultimate
	// significance is often indeterminate until time passes
	// (Section 5); layers above widen it as warranted — in the
	// context of RPC it expands to process scope.
	ScopeNetwork

	// ScopeProcess invalidates the mechanism of function call within
	// one process, e.g. a failed remote procedure call.  Handled by
	// the creator of the process.
	ScopeProcess

	// ScopeProgram is the scope of a genuine program result: normal
	// completion, System.exit, or a program-generated exception such
	// as ArrayIndexOutOfBounds.  The user wants to see these.
	// Handled by the user; the schedd declares the job complete.
	ScopeProgram

	// ScopeVirtualMachine invalidates the current virtual machine
	// instance: out of memory, internal VM error.  The job cannot
	// run in the current conditions.  Handled by the JVM's creator,
	// the starter.
	ScopeVirtualMachine

	// ScopeRemoteResource invalidates the execution machine: a
	// misconfigured Java installation, a broken scratch disk.  The
	// job cannot run on the given host.  Handled by the starter,
	// which informs the shadow.
	ScopeRemoteResource

	// ScopeLocalResource invalidates a submit-side resource: the
	// home file system is offline.  The job cannot run right now.
	// Handled by the shadow, which informs the schedd.
	ScopeLocalResource

	// ScopeJob invalidates the job itself: a corrupted program
	// image, a missing input file.  The job can never run.  Handled
	// by the schedd, which informs the user the job is unexecutable.
	ScopeJob

	// ScopePool invalidates the entire pool: the matchmaker is
	// unreachable, the pool is misconfigured.  Handled by the pool
	// administrator.
	ScopePool
)

var scopeNames = [...]string{
	ScopeNone:           "none",
	ScopeFile:           "file",
	ScopeFunction:       "function",
	ScopeNetwork:        "network",
	ScopeProcess:        "process",
	ScopeProgram:        "program",
	ScopeVirtualMachine: "virtual-machine",
	ScopeRemoteResource: "remote-resource",
	ScopeLocalResource:  "local-resource",
	ScopeJob:            "job",
	ScopePool:           "pool",
}

// String returns the canonical lower-case name of the scope.
func (s Scope) String() string {
	if s < 0 || int(s) >= len(scopeNames) {
		return fmt.Sprintf("scope(%d)", int(s))
	}
	return scopeNames[s]
}

// Valid reports whether s is one of the defined scopes (not ScopeNone).
func (s Scope) Valid() bool {
	return s > ScopeNone && int(s) < len(scopeNames)
}

// Contains reports whether an error of scope s invalidates everything
// an error of scope t invalidates; that is, s is at least as wide as t.
func (s Scope) Contains(t Scope) bool { return s >= t }

// Widen returns the wider of s and t.  Widening is the only legal
// direction of reinterpretation as an error travels up through layers
// of software (Section 3.3: an error "may gain significance, or expand
// its scope, as it travels up").
func (s Scope) Widen(t Scope) Scope {
	if t > s {
		return t
	}
	return s
}

// ParseScope converts a canonical scope name (as produced by String)
// back into a Scope.  It is used when decoding result files.
func ParseScope(name string) (Scope, error) {
	for i, n := range scopeNames {
		if n == name && Scope(i) != ScopeNone {
			return Scope(i), nil
		}
	}
	return ScopeNone, fmt.Errorf("scope: unknown scope name %q", name)
}

// Handler names the program responsible for managing errors of a given
// scope in the Condor Java Universe (Figure 3 of the paper).
type Handler string

// The handling programs of the Java Universe.
const (
	HandlerCaller     Handler = "caller"     // file/function scope
	HandlerCreator    Handler = "creator"    // process scope
	HandlerPeer       Handler = "peer"       // network scope
	HandlerUser       Handler = "user"       // program scope: the result is for the user
	HandlerStarter    Handler = "starter"    // virtual-machine and remote-resource scope
	HandlerShadow     Handler = "shadow"     // local-resource scope
	HandlerSchedd     Handler = "schedd"     // job scope
	HandlerMatchmaker Handler = "matchmaker" // pool scope
)

// Handler returns the program that manages errors of scope s,
// per Principle 3: an error must be propagated to the program that
// manages its scope.
func (s Scope) Handler() Handler {
	switch s {
	case ScopeFile, ScopeFunction:
		return HandlerCaller
	case ScopeProcess:
		return HandlerCreator
	case ScopeNetwork:
		return HandlerPeer
	case ScopeProgram:
		return HandlerUser
	case ScopeVirtualMachine, ScopeRemoteResource:
		return HandlerStarter
	case ScopeLocalResource:
		return HandlerShadow
	case ScopeJob:
		return HandlerSchedd
	case ScopePool:
		return HandlerMatchmaker
	default:
		return HandlerCaller
	}
}

// Scopes returns every valid scope in containment order, innermost
// first.  Useful for exhaustive tests and experiment sweeps.
func Scopes() []Scope {
	out := make([]Scope, 0, len(scopeNames)-1)
	for i := int(ScopeNone) + 1; i < len(scopeNames); i++ {
		out = append(out, Scope(i))
	}
	return out
}
