package scope

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestEscalationSchedule(t *testing.T) {
	e := NetworkEscalation()
	cases := []struct {
		elapsed  time.Duration
		wantS    Scope
		wantCode string
	}{
		{0, ScopeNetwork, "ConnectionLost"},
		{time.Second, ScopeNetwork, "ConnectionLost"},
		{time.Minute, ScopeProcess, "RPCFailure"},
		{5 * time.Minute, ScopeProcess, "RPCFailure"},
		{10 * time.Minute, ScopeRemoteResource, "MachineUnreachable"},
		{23 * time.Hour, ScopeRemoteResource, "MachineUnreachable"},
		{24 * time.Hour, ScopePool, "PoolUnreachable"},
		{365 * 24 * time.Hour, ScopePool, "PoolUnreachable"},
	}
	for _, c := range cases {
		s, code := e.ScopeAt(c.elapsed)
		if s != c.wantS || code != c.wantCode {
			t.Errorf("ScopeAt(%v) = %v/%s, want %v/%s", c.elapsed, s, code, c.wantS, c.wantCode)
		}
	}
	if e.Horizon() != 24*time.Hour {
		t.Errorf("Horizon = %v", e.Horizon())
	}
}

func TestEscalationAt(t *testing.T) {
	cause := errors.New("connect: refused")
	e := NetworkEscalation()
	err := e.At(30*time.Minute, cause)
	if err.Kind != KindEscaping {
		t.Errorf("kind = %v", err.Kind)
	}
	if err.Scope != ScopeRemoteResource || err.Code != "MachineUnreachable" {
		t.Errorf("err = %+v", err)
	}
	if !errors.Is(err, cause) {
		t.Error("cause lost")
	}
}

func TestEscalationMonotoneProperty(t *testing.T) {
	e := NetworkEscalation()
	prop := func(a, b uint32) bool {
		da := time.Duration(a) * time.Millisecond
		db := time.Duration(b) * time.Millisecond
		if da > db {
			da, db = db, da
		}
		sa, _ := e.ScopeAt(da)
		sb, _ := e.ScopeAt(db)
		return sb.Contains(sa)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEscalationValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("invalid base", func() { NewEscalation(ScopeNone, "x") })
	mustPanic("zero duration", func() {
		NewEscalation(ScopeNetwork, "x").Step(0, ScopeProcess, "y")
	})
	mustPanic("narrowing vs base", func() {
		NewEscalation(ScopeProcess, "x").Step(time.Minute, ScopeNetwork, "y")
	})
	mustPanic("narrowing vs earlier step", func() {
		NewEscalation(ScopeNetwork, "x").
			Step(time.Minute, ScopeJob, "y").
			Step(time.Hour, ScopeProcess, "z")
	})
}

func TestEscalationStepsOutOfOrderInsert(t *testing.T) {
	e := NewEscalation(ScopeNetwork, "a").
		Step(time.Hour, ScopeRemoteResource, "c").
		Step(time.Minute, ScopeProcess, "b")
	if s, code := e.ScopeAt(2 * time.Minute); s != ScopeProcess || code != "b" {
		t.Errorf("got %v/%s", s, code)
	}
	if s, _ := e.ScopeAt(2 * time.Hour); s != ScopeRemoteResource {
		t.Errorf("got %v", s)
	}
}

func TestEscalationNoSteps(t *testing.T) {
	e := NewEscalation(ScopeNetwork, "x")
	if s, code := e.ScopeAt(time.Hour); s != ScopeNetwork || code != "x" {
		t.Errorf("got %v/%s", s, code)
	}
	if e.Horizon() != 0 {
		t.Error("horizon of stepless escalation")
	}
	err := e.At(time.Second, nil)
	if err.Message == "" {
		t.Error("At should synthesize a message")
	}
}
