package scope

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result is the program wrapper's report of one execution attempt,
// carried from inside the virtual machine to the starter through an
// indirect channel — a result file (Section 4 of the paper).  The
// starter examines this result and ignores the JVM exit code entirely,
// because the exit code cannot distinguish error scopes (Figure 4).
type Result struct {
	// Status describes how the attempt concluded.
	Status ResultStatus
	// ExitCode is the program's own exit code when Status is
	// StatusExited (main completed or System.exit was called).
	ExitCode int
	// Exception is the name of the thrown exception or error when
	// Status is StatusException or StatusEscape.
	Exception string
	// Scope is the wrapper's classification of the error, when any.
	Scope Scope
	// Message is a human-readable elaboration.
	Message string
}

// ResultStatus is the coarse outcome of an execution attempt.
type ResultStatus int

const (
	// StatusExited: the program exited by completing main or by
	// calling System.exit.  A program result of Program scope.
	StatusExited ResultStatus = iota
	// StatusException: the program threw an exception that the
	// wrapper caught and classified as a program result (Program
	// scope) — e.g. ArrayIndexOutOfBoundsException.
	StatusException
	// StatusEscape: the wrapper caught an error that violates the
	// program's reasonable expectations of its environment — an
	// escaping error of wider-than-program scope.
	StatusEscape
	// StatusNoResult: no result file was produced at all.  The
	// starter must treat the attempt as an escaping error of
	// remote-resource scope: the execution environment could not
	// even run the wrapper.
	StatusNoResult
)

var resultStatusNames = [...]string{
	StatusExited:    "exited",
	StatusException: "exception",
	StatusEscape:    "escape",
	StatusNoResult:  "no-result",
}

// String returns the canonical name of the status.
func (s ResultStatus) String() string {
	if s < 0 || int(s) >= len(resultStatusNames) {
		return fmt.Sprintf("status(%d)", int(s))
	}
	return resultStatusNames[s]
}

// ParseResultStatus converts a canonical status name into a
// ResultStatus.
func ParseResultStatus(name string) (ResultStatus, error) {
	for i, n := range resultStatusNames {
		if n == name {
			return ResultStatus(i), nil
		}
	}
	return StatusNoResult, fmt.Errorf("scope: unknown result status %q", name)
}

// Err converts the result into the scoped error it represents, or nil
// for a successful exit.  A nonzero exit code is still a *program*
// result: it is an explicit error of Program scope, because the user
// wants to see it.
func (r *Result) Err() error {
	switch r.Status {
	case StatusExited:
		if r.ExitCode == 0 {
			return nil
		}
		return New(ScopeProgram, "NonZeroExit", "program exited with code %d", r.ExitCode)
	case StatusException:
		e := New(ScopeProgram, r.Exception, "%s", r.Message)
		return e
	case StatusEscape:
		// A record carrying no usable scope (hand-written or damaged)
		// must not default to a narrow reading: the wrapper reported
		// an environmental escape, so the widest safe attribution is
		// the execution environment itself.
		s := r.Scope
		if s == ScopeNone || !s.Valid() {
			s = ScopeRemoteResource
		}
		e := New(s, r.Exception, "%s", r.Message)
		e.Kind = KindEscaping
		return e
	default:
		e := New(ScopeRemoteResource, "NoResultFile", "the execution environment produced no result file")
		e.Kind = KindEscaping
		return e
	}
}

// ResultFromError builds the Result the wrapper writes for an error it
// caught (or nil error for success with the given exit code).
func ResultFromError(exitCode int, err error) Result {
	if err == nil {
		return Result{Status: StatusExited, ExitCode: exitCode}
	}
	se, ok := AsError(err)
	if !ok {
		return Result{
			Status:    StatusEscape,
			Exception: "UnknownError",
			Scope:     ScopeProcess,
			Message:   err.Error(),
		}
	}
	if se.Scope == ScopeProgram {
		if se.Code == "NonZeroExit" {
			return Result{Status: StatusExited, ExitCode: exitCode}
		}
		return Result{Status: StatusException, Exception: se.Code, Scope: ScopeProgram, Message: se.Message}
	}
	return Result{Status: StatusEscape, Exception: se.Code, Scope: se.Scope, Message: se.Message}
}

// The result file is a line-oriented key = value document, in the
// spirit of the ClassAd-adjacent formats Condor uses for its
// persistent state.  It is deliberately trivial to parse so that even
// a crippled environment can produce one.
//
// The final line is always the end-of-record marker "end = ok".  A
// starter that crashes mid-write — or a scratch disk that fills —
// leaves a file without the marker, and the decoder rejects it, so a
// half-written "status = exited" can never be read as a clean program
// exit attributed to the job.

// endMarker terminates every well-formed result file.
const endMarker = "ok"

// AppendQuote is strconv.AppendQuote specialized for the common case
// of the simulator's encoders — printable ASCII with occasional
// quotes, backslashes, and newlines.  Output is byte-identical to
// strconv.AppendQuote; anything outside the fast cases defers to it.
func AppendQuote(b []byte, s string) []byte {
	n := len(b)
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c < 0x7f {
			if c == '"' || c == '\\' {
				b = append(b, s[start:i]...)
				b = append(b, '\\', c)
				start = i + 1
			}
			continue
		}
		switch c {
		case '\n':
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'n')
			start = i + 1
		case '\t':
			b = append(b, s[start:i]...)
			b = append(b, '\\', 't')
			start = i + 1
		case '\r':
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'r')
			start = i + 1
		default:
			// Non-ASCII or an exotic control: hand the whole string
			// to strconv for the full escaping rules.
			return strconv.AppendQuote(b[:n], s)
		}
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// AppendEncoded appends the result file representation of r to b and
// returns the extended slice — the allocation-free core of Encode.
func (r *Result) AppendEncoded(b []byte) []byte {
	b = append(b, "status = "...)
	b = append(b, r.Status.String()...)
	b = append(b, "\nexit_code = "...)
	b = strconv.AppendInt(b, int64(r.ExitCode), 10)
	b = append(b, '\n')
	if r.Exception != "" {
		b = append(b, "exception = "...)
		b = append(b, r.Exception...)
		b = append(b, '\n')
	}
	if r.Scope != ScopeNone {
		b = append(b, "scope = "...)
		b = append(b, r.Scope.String()...)
		b = append(b, '\n')
	}
	if r.Message != "" {
		b = append(b, "message = "...)
		b = AppendQuote(b, r.Message)
		b = append(b, '\n')
	}
	b = append(b, "end = "...)
	b = append(b, endMarker...)
	return append(b, '\n')
}

// Encode writes the result file representation of r to w.
func (r *Result) Encode(w io.Writer) error {
	_, err := w.Write(r.AppendEncoded(make([]byte, 0, 96)))
	return err
}

// EncodeString returns the result file contents as a string.
func (r *Result) EncodeString() string {
	return string(r.AppendEncoded(make([]byte, 0, 96)))
}

// DecodeResult parses a result file.  Unknown keys are ignored for
// forward compatibility; missing keys take zero values.  A file that
// cannot be parsed — or that lacks the trailing "end = ok" marker and
// is therefore truncation-evident — yields an error; the starter then
// treats the attempt as StatusNoResult, an escaping error of
// remote-resource scope, never a program result charged to the job.
// The failure Result returned alongside any error is StatusNoResult,
// so even a caller that ignores the error cannot read a half-written
// file as a clean exit.
func DecodeResult(rd io.Reader) (Result, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return Result{Status: StatusNoResult}, fmt.Errorf("scope: reading result file: %w", err)
	}
	return DecodeResultString(string(data))
}

// DecodeResultString parses a result file held in a string, line by
// line with no intermediate reader or scanner — the hot path for the
// simulated starters, which hold the file bytes already.
func DecodeResultString(s string) (Result, error) {
	noResult := Result{Status: StatusNoResult}
	var r Result
	line := 0
	seenStatus := false
	seenEnd := false
	for len(s) > 0 && !seenEnd {
		var raw string
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			raw, s = s[:i], s[i+1:]
		} else {
			raw, s = s, ""
		}
		line++
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		key, value, ok := strings.Cut(text, "=")
		if !ok {
			return noResult, fmt.Errorf("scope: result file line %d: no '=' in %q", line, text)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		switch key {
		case "status":
			st, err := ParseResultStatus(value)
			if err != nil {
				return noResult, fmt.Errorf("scope: result file line %d: %w", line, err)
			}
			r.Status = st
			seenStatus = true
		case "exit_code":
			n, err := strconv.Atoi(value)
			if err != nil {
				return noResult, fmt.Errorf("scope: result file line %d: bad exit_code %q", line, value)
			}
			r.ExitCode = n
		case "exception":
			r.Exception = value
		case "scope":
			s, err := ParseScope(value)
			if err != nil {
				return noResult, fmt.Errorf("scope: result file line %d: %w", line, err)
			}
			r.Scope = s
		case "message":
			msg, err := strconv.Unquote(value)
			if err != nil {
				// Accept unquoted messages written by hand.
				msg = value
			}
			r.Message = msg
		case "end":
			if value != endMarker {
				return noResult, fmt.Errorf("scope: result file line %d: corrupt end marker %q", line, value)
			}
			seenEnd = true
		}
		// Anything past the marker is debris from a later,
		// interrupted rewrite; the sealed record stands — the loop
		// condition stops at seenEnd.
	}
	if !seenStatus {
		return noResult, fmt.Errorf("scope: result file missing status")
	}
	if !seenEnd {
		return noResult, fmt.Errorf("scope: result file truncated: no end-of-record marker")
	}
	return r, nil
}
