package scope

import (
	"errors"
	"fmt"
	"strings"
)

// Hop is one layer an error passed through on its way up the system.
type Hop struct {
	Scope  Scope
	Kind   Kind
	Code   string
	Origin string
}

// String renders the hop compactly.
func (h Hop) String() string {
	if h.Origin != "" {
		return fmt.Sprintf("%s@%s(%s,%s)", h.Code, h.Origin, h.Kind, h.Scope)
	}
	return fmt.Sprintf("%s(%s,%s)", h.Code, h.Kind, h.Scope)
}

// Path returns the propagation history of err, outermost hop first:
// every scoped error in its cause chain.  The path makes the widening
// of Section 3.3 visible — a well-formed path never narrows in scope
// from the inside out.
func Path(err error) []Hop {
	var hops []Hop
	for err != nil {
		if se, ok := err.(*Error); ok {
			hops = append(hops, Hop{
				Scope:  se.Scope,
				Kind:   se.Kind,
				Code:   se.Code,
				Origin: se.Origin,
			})
		}
		err = errors.Unwrap(err)
	}
	return hops
}

// FormatPath renders the propagation history as a single arrow chain,
// innermost first, for diagnostics:
//
//	ConnectionLost(explicit,network) -> RPCFailure(explicit,process) -> ...
func FormatPath(err error) string {
	hops := Path(err)
	parts := make([]string, len(hops))
	for i, h := range hops {
		parts[len(hops)-1-i] = h.String() // innermost first
	}
	return strings.Join(parts, " -> ")
}

// WellFormed reports whether the propagation history only widens:
// every outer hop's scope contains the scope of the hop beneath it
// (Principle 3's reinterpretation discipline).  Errors with no scoped
// hops are vacuously well-formed.
func WellFormed(err error) bool {
	hops := Path(err)
	for i := 1; i < len(hops); i++ {
		// hops[i-1] is outer, hops[i] is inner.
		if !hops[i-1].Scope.Contains(hops[i].Scope) {
			return false
		}
	}
	return true
}
