package scope

import (
	"errors"
	"strings"
	"testing"
)

func TestPathTracksWidening(t *testing.T) {
	transport := New(ScopeNetwork, "ConnectionLost", "reset").WithOrigin("tcp")
	rpc := transport.Widen(ScopeProcess, "RPCFailure")
	cluster := rpc.Widen(ScopeRemoteResource, "NodeFailure")

	hops := Path(cluster)
	if len(hops) != 3 {
		t.Fatalf("hops = %+v", hops)
	}
	if hops[0].Code != "NodeFailure" || hops[2].Code != "ConnectionLost" {
		t.Errorf("hops = %+v", hops)
	}
	if hops[2].Origin != "tcp" {
		t.Errorf("origin lost: %+v", hops[2])
	}
	if !WellFormed(cluster) {
		t.Error("widening chain should be well-formed")
	}
	s := FormatPath(cluster)
	if !strings.Contains(s, "ConnectionLost") || !strings.Contains(s, " -> ") {
		t.Errorf("FormatPath = %q", s)
	}
	// Innermost first.
	if strings.Index(s, "ConnectionLost") > strings.Index(s, "NodeFailure") {
		t.Errorf("order wrong: %q", s)
	}
}

func TestPathSkipsPlainErrors(t *testing.T) {
	root := errors.New("plain")
	wrapped := Explicit(ScopeFile, "DiskFull", root)
	hops := Path(wrapped)
	if len(hops) != 1 {
		t.Fatalf("hops = %+v", hops)
	}
	if len(Path(root)) != 0 {
		t.Error("plain errors have no hops")
	}
	if !WellFormed(root) {
		t.Error("plain errors are vacuously well-formed")
	}
	if FormatPath(nil) != "" {
		t.Error("nil path should be empty")
	}
}

func TestWellFormedDetectsNarrowing(t *testing.T) {
	inner := New(ScopeJob, "CorruptProgramImageError", "x")
	// Manually construct a narrowing chain (the API prevents this;
	// only hand-built errors can narrow).
	outer := &Error{Scope: ScopeFile, Kind: KindExplicit, Code: "Oops", Cause: inner}
	if WellFormed(outer) {
		t.Error("narrowing chain should be rejected")
	}
}

func TestHopStringWithoutOrigin(t *testing.T) {
	h := Hop{Scope: ScopeFile, Kind: KindExplicit, Code: "X"}
	if strings.Contains(h.String(), "@") {
		t.Errorf("got %q", h.String())
	}
}
