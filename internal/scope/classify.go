package scope

import "sort"

// Classifier maps error codes (exception names) to scopes.  The
// program wrapper of Section 4 uses a Classifier to examine the type
// of a caught exception and decide the scope of the error it reports
// in the result file.
//
// A Classifier is a policy object: different layers may classify the
// same code differently (the whole point of Section 3.3's scope
// expansion), so classifiers are values, not globals.
type Classifier struct {
	table    map[string]Scope
	fallback Scope
}

// NewClassifier creates a classifier that assigns fallback to any code
// it has no entry for.  A conservative wrapper uses ScopeProgram as
// the fallback: an unknown exception thrown by the program is most
// likely the program's own.
func NewClassifier(fallback Scope) *Classifier {
	return &Classifier{table: make(map[string]Scope), fallback: fallback}
}

// Add registers the scope for a code and returns the classifier for
// chaining.
func (c *Classifier) Add(code string, s Scope) *Classifier {
	c.table[code] = s
	return c
}

// Classify returns the scope for the code.
func (c *Classifier) Classify(code string) Scope {
	if s, ok := c.table[code]; ok {
		return s
	}
	return c.fallback
}

// Known reports whether the code has an explicit entry.
func (c *Classifier) Known(code string) bool {
	_, ok := c.table[code]
	return ok
}

// Codes returns the registered codes in sorted order.
func (c *Classifier) Codes() []string {
	out := make([]string, 0, len(c.table))
	for code := range c.table {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// JavaUniverseClassifier returns the classification the Condor Java
// Universe wrapper uses, covering the exception families discussed in
// the paper.  Program-generated exceptions stay at Program scope so
// the user sees them; environmental errors are widened to the scope of
// the resource they invalidate (Figures 3 and 4).
func JavaUniverseClassifier() *Classifier {
	c := NewClassifier(ScopeProgram)

	// Program scope: genuine program results.  "Users wanted to see
	// program generated errors such as an
	// ArrayIndexOutOfBoundsException."
	for _, code := range []string{
		"ArrayIndexOutOfBoundsException",
		"NullPointerException",
		"ArithmeticException",
		"ClassCastException",
		"NumberFormatException",
		"IllegalArgumentException",
		"IllegalStateException",
		"RuntimeException",
		"FileNotFoundException",
		"EOFException",
		"DiskFullException",
		"AccessDeniedException",
	} {
		c.Add(code, ScopeProgram)
	}

	// Virtual machine scope: the job cannot run in the current
	// conditions.  "...wanted to be shielded against incidental
	// errors such as a VirtualMachineError."
	for _, code := range []string{
		"OutOfMemoryError",
		"StackOverflowError",
		"VirtualMachineError",
		"InternalError",
	} {
		c.Add(code, ScopeVirtualMachine)
	}

	// Remote resource scope: the job cannot run on the given host.
	for _, code := range []string{
		"MisconfiguredJVMError",
		"NoClassDefFoundError", // standard libraries missing: bad install path
		"UnsatisfiedLinkError",
		"ScratchSpaceError",
		"ChirpProxyError",
	} {
		c.Add(code, ScopeRemoteResource)
	}

	// Local resource scope: the job cannot run right now; the
	// submit-side environment is degraded.
	for _, code := range []string{
		"ConnectionTimedOutException",
		"ShadowUnavailableError",
		"CredentialsExpiredError",
		"HomeFileSystemOfflineError",
	} {
		c.Add(code, ScopeLocalResource)
	}

	// Job scope: the job itself can never run.
	for _, code := range []string{
		"CorruptProgramImageError",
		"ClassFormatError",
		"MissingInputFileError",
		"InvalidJobError",
	} {
		c.Add(code, ScopeJob)
	}

	return c
}
