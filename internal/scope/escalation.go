package scope

import (
	"fmt"
	"sort"
	"time"
)

// Escalation encodes the time dimension of error scope (Section 5 of
// the paper): "A failure to communicate for one second may be of
// network scope, but a failure to communicate for a year likely has
// larger scope."  An Escalation is an ordered schedule of widenings;
// given how long a condition has persisted, it yields the scope the
// condition has grown into.
//
// The schedule is the "guidance in the form of timeouts or other
// resource constraints from the user or administrator" the paper
// calls for, made explicit and reusable: the shadow's mount policy,
// the schedd's claim timeout, and the matchmaker's ad expiry are all
// single-step instances of this idea.
type Escalation struct {
	base     Scope
	baseCode string
	steps    []EscalationStep
}

// EscalationStep widens the condition to Scope once it has persisted
// for at least After.
type EscalationStep struct {
	After time.Duration
	Scope Scope
	Code  string
}

// NewEscalation creates a schedule whose initial interpretation is
// the given scope and code.
func NewEscalation(base Scope, baseCode string) *Escalation {
	if !base.Valid() {
		panic("scope: escalation requires a valid base scope")
	}
	return &Escalation{base: base, baseCode: baseCode}
}

// Step adds a widening and returns the escalation for chaining.  A
// step that would narrow the scope relative to the base or to an
// earlier-or-equal deadline panics: reinterpretation over time may
// only widen (Section 3.3).
func (e *Escalation) Step(after time.Duration, s Scope, code string) *Escalation {
	if after <= 0 {
		panic("scope: escalation step needs a positive duration")
	}
	if !s.Contains(e.base) {
		panic(fmt.Sprintf("scope: escalation step narrows %v to %v", e.base, s))
	}
	for _, prev := range e.steps {
		if after >= prev.After && !s.Contains(prev.Scope) {
			panic(fmt.Sprintf("scope: escalation step at %v narrows %v to %v",
				after, prev.Scope, s))
		}
	}
	e.steps = append(e.steps, EscalationStep{After: after, Scope: s, Code: code})
	sort.SliceStable(e.steps, func(i, j int) bool { return e.steps[i].After < e.steps[j].After })
	return e
}

// ScopeAt returns the scope and code the condition carries after
// persisting for elapsed.
func (e *Escalation) ScopeAt(elapsed time.Duration) (Scope, string) {
	s, code := e.base, e.baseCode
	for _, step := range e.steps {
		if elapsed >= step.After {
			s, code = step.Scope, step.Code
		}
	}
	return s, code
}

// At builds the scoped error for a condition that has persisted for
// elapsed, wrapping cause.  The error is escaping: a condition whose
// scope depends on time is by definition outside any single
// interface's vocabulary.
func (e *Escalation) At(elapsed time.Duration, cause error) *Error {
	s, code := e.ScopeAt(elapsed)
	err := Escape(s, code, cause)
	if err.Message == "" {
		err.Message = fmt.Sprintf("condition persisted for %v", elapsed)
	}
	return err
}

// Horizon returns the deadline of the last step — the point past
// which the interpretation no longer changes.
func (e *Escalation) Horizon() time.Duration {
	if len(e.steps) == 0 {
		return 0
	}
	return e.steps[len(e.steps)-1].After
}

// NetworkEscalation is the schedule the paper's examples suggest for
// a refused or silent connection: network scope at first, process
// scope after a minute (the RPC mechanism is invalid), remote-resource
// scope after ten (the machine is gone), pool scope after a day (the
// pool itself is suspect).
func NetworkEscalation() *Escalation {
	return NewEscalation(ScopeNetwork, "ConnectionLost").
		Step(time.Minute, ScopeProcess, "RPCFailure").
		Step(10*time.Minute, ScopeRemoteResource, "MachineUnreachable").
		Step(24*time.Hour, ScopePool, "PoolUnreachable")
}
