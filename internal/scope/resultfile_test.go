package scope

import (
	"errors"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestResultRoundTrip(t *testing.T) {
	cases := []Result{
		{Status: StatusExited, ExitCode: 0},
		{Status: StatusExited, ExitCode: 42},
		{Status: StatusException, Exception: "NullPointerException", Scope: ScopeProgram, Message: "at Main.java:17"},
		{Status: StatusEscape, Exception: "OutOfMemoryError", Scope: ScopeVirtualMachine, Message: "heap 64MB < request 128MB"},
		{Status: StatusEscape, Exception: "MisconfiguredJVMError", Scope: ScopeRemoteResource, Message: `bad path "C:\jvm"` + "\nwith newline"},
		{Status: StatusNoResult},
	}
	for _, r := range cases {
		enc := r.EncodeString()
		got, err := DecodeResultString(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", enc, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("round trip:\n in: %+v\nenc: %q\nout: %+v", r, enc, got)
		}
	}
}

func TestResultRoundTripProperty(t *testing.T) {
	statuses := []ResultStatus{StatusExited, StatusException, StatusEscape, StatusNoResult}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Result{
			Status:   statuses[rng.Intn(len(statuses))],
			ExitCode: rng.Intn(256),
		}
		if rng.Intn(2) == 0 {
			r.Exception = "E" + strings.Repeat("x", rng.Intn(5))
			r.Scope = Scopes()[rng.Intn(len(Scopes()))]
			// Random printable-ish message including tricky chars.
			chars := []rune("abc \t\n\"=#\\日本")
			var sb strings.Builder
			for i := 0; i < rng.Intn(20); i++ {
				sb.WriteRune(chars[rng.Intn(len(chars))])
			}
			r.Message = sb.String()
		}
		got, err := DecodeResultString(r.EncodeString())
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTolerance(t *testing.T) {
	in := "# a comment\n\nstatus = exited\nexit_code = 3\nfuture_key = whatever\nend = ok\n"
	r, err := DecodeResultString(in)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusExited || r.ExitCode != 3 {
		t.Errorf("got %+v", r)
	}
}

func TestDecodeUnquotedMessage(t *testing.T) {
	r, err := DecodeResultString("status = escape\nexception = X\nscope = job\nmessage = plain words\nend = ok\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Message != "plain words" {
		t.Errorf("message = %q", r.Message)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",                               // missing status
		"exit_code = 1\n",                // missing status
		"status = bogus\n",               // bad status
		"status exited\n",                // no '='
		"status = exited\nexit_code=x\n", // bad exit code
		"status = exited\nscope = mars\n",
		"status = exited\n",               // truncated: no end marker
		"status = exited\nexit_code = 0",  // truncated mid-record
		"status = exited\nend = maybe\n",  // corrupt end marker
		"end = ok\n",                      // marker but no status
		"status = exception\nexception =", // crashed mid-write
	}
	for _, in := range cases {
		r, err := DecodeResultString(in)
		if err == nil {
			t.Errorf("DecodeResultString(%q) should fail", in)
		}
		if r.Status != StatusNoResult {
			t.Errorf("DecodeResultString(%q) failure result = %+v, want StatusNoResult", in, r)
		}
	}
}

// TestDecodeTruncation is the regression for the misattribution bug:
// every proper prefix of a valid result file must fail to decode, and
// the failure must read as the execution environment's error
// (remote-resource scope via StatusNoResult), never as a program
// result charged to the job.
func TestDecodeTruncation(t *testing.T) {
	full := []Result{
		{Status: StatusExited, ExitCode: 0},
		{Status: StatusExited, ExitCode: 7},
		{Status: StatusException, Exception: "NullPointerException", Scope: ScopeProgram, Message: "at Main.java:3"},
		{Status: StatusEscape, Exception: "OutOfMemoryError", Scope: ScopeVirtualMachine, Message: "heap"},
	}
	for _, res := range full {
		enc := res.EncodeString()
		// The last cut position is excluded: losing only the final
		// newline leaves the end marker itself complete, and the
		// record is in fact intact.
		for cut := 0; cut < len(enc)-1; cut++ {
			r, err := DecodeResultString(enc[:cut])
			if err == nil {
				t.Fatalf("prefix %q of %q decoded without error", enc[:cut], enc)
			}
			ferr := r.Err()
			if ScopeOf(ferr) < ScopeRemoteResource || KindOf(ferr) != KindEscaping {
				t.Fatalf("prefix %q: failure error %v not an escaping remote-resource error", enc[:cut], ferr)
			}
		}
	}
}

// TestDecodeDebrisAfterMarker: a sealed record followed by a later,
// interrupted rewrite still reads as the sealed record.
func TestDecodeDebrisAfterMarker(t *testing.T) {
	r, err := DecodeResultString("status = exited\nexit_code = 4\nend = ok\nstatus = exce")
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusExited || r.ExitCode != 4 {
		t.Errorf("got %+v", r)
	}
}

func TestResultErr(t *testing.T) {
	if err := (&Result{Status: StatusExited}).Err(); err != nil {
		t.Errorf("clean exit: %v", err)
	}

	err := (&Result{Status: StatusExited, ExitCode: 5}).Err()
	se, _ := AsError(err)
	if se.Scope != ScopeProgram || se.Code != "NonZeroExit" {
		t.Errorf("nonzero exit: %+v", se)
	}

	err = (&Result{Status: StatusException, Exception: "NullPointerException"}).Err()
	se, _ = AsError(err)
	if se.Scope != ScopeProgram || se.Kind != KindExplicit {
		t.Errorf("exception: %+v", se)
	}

	err = (&Result{Status: StatusEscape, Exception: "OutOfMemoryError", Scope: ScopeVirtualMachine}).Err()
	se, _ = AsError(err)
	if se.Scope != ScopeVirtualMachine || se.Kind != KindEscaping {
		t.Errorf("escape: %+v", se)
	}

	err = (&Result{Status: StatusNoResult}).Err()
	se, _ = AsError(err)
	if se.Scope != ScopeRemoteResource || se.Kind != KindEscaping {
		t.Errorf("no result: %+v", se)
	}

	// An escape record carrying no usable scope is attributed to the
	// execution environment, not defaulted narrower.
	err = (&Result{Status: StatusEscape, Exception: "X"}).Err()
	se, _ = AsError(err)
	if se.Scope != ScopeRemoteResource || se.Kind != KindEscaping {
		t.Errorf("scopeless escape: %+v", se)
	}
}

func TestResultFromError(t *testing.T) {
	r := ResultFromError(0, nil)
	if r.Status != StatusExited || r.ExitCode != 0 {
		t.Errorf("nil: %+v", r)
	}

	r = ResultFromError(0, New(ScopeProgram, "ArithmeticException", "/ by zero"))
	if r.Status != StatusException || r.Exception != "ArithmeticException" {
		t.Errorf("program exception: %+v", r)
	}

	r = ResultFromError(0, New(ScopeVirtualMachine, "OutOfMemoryError", "heap"))
	if r.Status != StatusEscape || r.Scope != ScopeVirtualMachine {
		t.Errorf("vm error: %+v", r)
	}

	r = ResultFromError(0, errors.New("mystery"))
	if r.Status != StatusEscape || r.Scope != ScopeProcess || r.Exception != "UnknownError" {
		t.Errorf("plain error: %+v", r)
	}
}

func TestResultErrResultFromErrorInverse(t *testing.T) {
	// For wrapper-produced results, Err and ResultFromError are
	// mutual inverses on the (status, exception, scope) triple.
	for _, r := range []Result{
		{Status: StatusExited, ExitCode: 0},
		{Status: StatusException, Exception: "NullPointerException", Scope: ScopeProgram, Message: "m"},
		{Status: StatusEscape, Exception: "OutOfMemoryError", Scope: ScopeVirtualMachine, Message: "m"},
	} {
		back := ResultFromError(r.ExitCode, r.Err())
		if back.Status != r.Status || back.Exception != r.Exception {
			t.Errorf("inverse failed: %+v -> %+v", r, back)
		}
	}
}

func TestResultStatusString(t *testing.T) {
	if got := ResultStatus(42).String(); got != "status(42)" {
		t.Errorf("got %q", got)
	}
	if _, err := ParseResultStatus("nope"); err == nil {
		t.Error("ParseResultStatus(nope) should fail")
	}
}

// TestAppendQuoteMatchesStrconv pins the fast quoter to
// strconv.AppendQuote byte-for-byte, across the fast ASCII path, every
// escaped byte, and the non-ASCII fallback.
func TestAppendQuoteMatchesStrconv(t *testing.T) {
	cases := []string{
		"", "plain", "with space", `has "quotes" inside`, `back\slash`,
		"line1\nline2", "tab\there", "cr\rhere", "mixed\n\"x\\y\"\t",
		"unicode: héllo", "control: \x01\x02", "bell\a", "del\x7f",
		"status = exited\nexit_code = 0\nend = ok\n",
	}
	for _, s := range cases {
		got := string(AppendQuote(nil, s))
		want := string(strconv.AppendQuote(nil, s))
		if got != want {
			t.Errorf("AppendQuote(%q) = %s, want %s", s, got, want)
		}
	}
}
