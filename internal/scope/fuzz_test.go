package scope

import "testing"

// FuzzDecodeResult ensures the result-file decoder never panics and
// that accepted inputs re-encode/decode stably.
func FuzzDecodeResult(f *testing.F) {
	f.Add("status = exited\nexit_code = 0\n")
	f.Add("status = escape\nexception = OutOfMemoryError\nscope = virtual-machine\nmessage = \"heap\"\n")
	f.Add("status = no-result\n")
	f.Add("# comment\n\nstatus = exception\nexception = E\nscope = program\nmessage = raw words\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeResultString(src)
		if err != nil {
			return
		}
		r2, err := DecodeResultString(r.EncodeString())
		if err != nil {
			t.Fatalf("re-decode failed: %q -> %q: %v", src, r.EncodeString(), err)
		}
		if r2 != r {
			t.Fatalf("unstable round trip: %+v vs %+v", r, r2)
		}
	})
}
