package scope

import "testing"

// FuzzDecodeResult ensures the result-file decoder never panics and
// that accepted inputs re-encode/decode stably.
func FuzzDecodeResult(f *testing.F) {
	f.Add("status = exited\nexit_code = 0\nend = ok\n")
	f.Add("status = escape\nexception = OutOfMemoryError\nscope = virtual-machine\nmessage = \"heap\"\nend = ok\n")
	f.Add("status = no-result\nend = ok\n")
	f.Add("# comment\n\nstatus = exception\nexception = E\nscope = program\nmessage = raw words\nend = ok\n")
	f.Add("garbage")
	// Truncation shapes: records cut before the end marker.
	f.Add("status = exited\n")
	f.Add("status = exited\nexit_code = 0\nend = o")
	f.Add("status = exception\nexception = NullPointerException\nsco")
	f.Fuzz(func(t *testing.T, src string) {
		r, err := DecodeResultString(src)
		if err != nil {
			// A rejected file must read as the environment's failure,
			// never as a program result: that is the truncation
			// guarantee the starter relies on.
			if r.Status != StatusNoResult {
				t.Fatalf("failed decode of %q returned %+v, want StatusNoResult", src, r)
			}
			return
		}
		r2, err := DecodeResultString(r.EncodeString())
		if err != nil {
			t.Fatalf("re-decode failed: %q -> %q: %v", src, r.EncodeString(), err)
		}
		if r2 != r {
			t.Fatalf("unstable round trip: %+v vs %+v", r, r2)
		}
	})
}

// FuzzDecodeResultTruncation drives the truncation guarantee from the
// encoder side: every proper prefix of every valid encoding must fail
// to decode.
func FuzzDecodeResultTruncation(f *testing.F) {
	f.Add(int(StatusExited), 0, "", "", "")
	f.Add(int(StatusExited), 42, "", "", "")
	f.Add(int(StatusException), 1, "NullPointerException", "program", "at Main.java:17")
	f.Add(int(StatusEscape), 1, "OutOfMemoryError", "virtual-machine", "heap 64MB")
	f.Fuzz(func(t *testing.T, status, exit int, exception, scopeName, message string) {
		r := Result{Status: ResultStatus(status), ExitCode: exit, Exception: exception, Message: message}
		if s, err := ParseScope(scopeName); err == nil {
			r.Scope = s
		}
		enc := r.EncodeString()
		if _, err := DecodeResultString(enc); err != nil {
			// Not every fuzzed Result encodes to a decodable file
			// (e.g. an out-of-range status); truncating an invalid
			// file proves nothing.
			return
		}
		// Cutting only the final newline leaves the end marker line
		// complete, so the record is genuinely intact; every earlier
		// cut must be rejected.
		for cut := 0; cut < len(enc)-1; cut++ {
			got, err := DecodeResultString(enc[:cut])
			if err == nil {
				t.Fatalf("prefix %q of %q decoded cleanly as %+v", enc[:cut], enc, got)
			}
		}
	})
}
