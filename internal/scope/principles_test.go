package scope

import (
	"errors"
	"testing"
)

// These tests demonstrate the four principles of the paper as
// executable statements, each contrasting the violation with the
// disciplined behaviour.

// Principle 1: A program must not generate an implicit error as a
// result of receiving an explicit error.
//
// Modelled on the paper's virtual-memory example: a load operation has
// no return value that can signify an error.  Returning a default
// value would create an implicit error; the disciplined system issues
// an escaping error instead.
func TestPrinciple1NoImplicitFromExplicit(t *testing.T) {
	backingStoreErr := New(ScopeFile, "BackingStoreDamaged", "bad sectors")

	// Violation: convert the explicit error into a valid-looking
	// result.  Detecting this requires external knowledge — exactly
	// why it is forbidden.
	violatingLoad := func() (value int, err error) {
		if backingStoreErr != nil {
			return 0, nil // the lie: 0 presented as valid data
		}
		return 7, nil
	}
	v, err := violatingLoad()
	if err == nil && v == 0 {
		// The caller cannot tell this apart from a true 0; the
		// only way to label it is as an implicit error.
		imp := &Error{Scope: ScopeProcess, Kind: KindImplicit, Code: "CorruptLoad"}
		if imp.Kind != KindImplicit {
			t.Fatal("unreachable")
		}
	}

	// Discipline: the system escapes rather than fabricate data.
	disciplinedLoad := func() (int, error) {
		if backingStoreErr != nil {
			return 0, Escape(ScopeProcess, "SegmentationFault", backingStoreErr)
		}
		return 7, nil
	}
	_, err = disciplinedLoad()
	se, ok := AsError(err)
	if !ok || se.Kind != KindEscaping {
		t.Fatalf("disciplined load must escape, got %v", err)
	}
	if !errors.Is(err, backingStoreErr) {
		t.Error("the escaping error must carry the explicit cause")
	}
}

// Principle 2: An escaping error must be used to convert a potential
// implicit error into an explicit error at a higher level.
//
// The escape kills the client process (here: aborts the routine), and
// what arrives at the creator of the process is a perfectly explicit
// error at that higher level.
func TestPrinciple2EscapeBecomesExplicitAbove(t *testing.T) {
	inner := Escape(ScopeProcess, "SegmentationFault", errors.New("backing store gone"))

	// The process creator manages process scope; on receipt it may
	// re-present the event as an explicit error of its own interface.
	creatorContract := NewContract("JobMonitor.wait", ScopeRemoteResource, "ExecutionEnvironmentError").
		Declare("ProcessDied", ScopeProcess)

	// The creator understands the escape and converts it.
	received := New(ScopeProcess, "ProcessDied", "child killed: %v", inner)
	out := creatorContract.Apply(received)
	se, _ := AsError(out)
	if se.Kind != KindExplicit || se.Code != "ProcessDied" {
		t.Fatalf("at the higher level the error must be explicit: %+v", se)
	}
}

// Principle 3: An error must be propagated to the program that manages
// its scope.
func TestPrinciple3RouteToScopeManager(t *testing.T) {
	// One error per tier of Figure 3, each must route to its manager.
	routes := []struct {
		err     *Error
		handler Handler
	}{
		{New(ScopeProgram, "ArrayIndexOutOfBoundsException", ""), HandlerUser},
		{New(ScopeVirtualMachine, "OutOfMemoryError", ""), HandlerStarter},
		{New(ScopeRemoteResource, "MisconfiguredJVMError", ""), HandlerStarter},
		{New(ScopeLocalResource, "HomeFileSystemOfflineError", ""), HandlerShadow},
		{New(ScopeJob, "CorruptProgramImageError", ""), HandlerSchedd},
	}
	for _, r := range routes {
		if got := Route(r.err); got != r.handler {
			t.Errorf("%s must be handled by %s, routed to %s", r.err.Code, r.handler, got)
		}
	}
}

// Principle 3, scope expansion: a lost connection is network scope at
// the transport layer, but in the context of RPC it becomes process
// scope, and in the context of a cluster framework, wider still.
func TestPrinciple3ScopeExpansion(t *testing.T) {
	transport := New(ScopeNetwork, "ConnectionLost", "reset by peer")
	rpc := transport.Widen(ScopeProcess, "RPCFailure")
	cluster := rpc.Widen(ScopeRemoteResource, "NodeFailure")
	if Route(transport) != HandlerPeer {
		t.Error("transport layer routes to peer")
	}
	if Route(rpc) != HandlerCreator {
		t.Error("rpc layer routes to process creator")
	}
	if Route(cluster) != HandlerStarter {
		t.Error("cluster layer routes to starter")
	}
	if !errors.Is(cluster, transport) {
		t.Error("the chain must preserve provenance")
	}
}

// Principle 4: Error interfaces must be concise and finite.
//
// The generic IOException admits anything and therefore guarantees
// nothing; the revised contract admits exactly its declared codes and
// escapes the rest.
func TestPrinciple4FiniteInterfaces(t *testing.T) {
	// The "generic error" anti-pattern: a contract that pretends to
	// admit everything by admitting each code as it shows up.  We
	// model the caller's confusion: DiskFull and FullDisk are both
	// plausible, so neither side can rely on the other.
	generic := NewContract("FileWriter.write(generic IOException)", ScopeProcess, "").
		Declare("IOException", ScopeFile)
	vendorA := New(ScopeFile, "DiskFull", "no space")
	vendorB := New(ScopeFile, "FullDisk", "no space")
	outA := generic.Apply(vendorA)
	outB := generic.Apply(vendorB)
	seA, _ := AsError(outA)
	seB, _ := AsError(outB)
	// Under the generic interface both vendors' errors fail to match
	// the single declared code, so both escape — the interface's
	// "flexibility" bought nothing.
	if seA.Kind != KindEscaping || seB.Kind != KindEscaping {
		t.Fatal("generic interface gives no usable explicit errors")
	}

	// The revised, finite interface: write throws DiskFull, and both
	// parties know it.
	revised := NewContract("FileWriter.write", ScopeProcess, "EnvironmentError").
		Declare("DiskFull", ScopeFile)
	out := revised.Apply(New(ScopeFile, "DiskFull", "no space"))
	se, _ := AsError(out)
	if se.Kind != KindExplicit || se.Code != "DiskFull" {
		t.Fatalf("finite interface must admit its declared code: %+v", se)
	}
	// And an error outside the interface — ConnectionLost during a
	// write — escapes per Principle 2 rather than masquerading.
	out = revised.Apply(New(ScopeNetwork, "ConnectionLost", "reset"))
	se, _ = AsError(out)
	if se.Kind != KindEscaping {
		t.Fatal("out-of-interface errors must escape")
	}
}
