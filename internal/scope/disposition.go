package scope

import "fmt"

// Disposition is the schedd's final decision about a job after an
// execution attempt, derived from the scope of the attempt's error
// (Section 4: "The last line of defense is the schedd...").
type Disposition int

const (
	// DispositionComplete: the job ran and produced a program
	// result — normal exit, System.exit, or a program-generated
	// exception.  The result, error or otherwise, is returned to
	// the user.
	DispositionComplete Disposition = iota

	// DispositionUnexecutable: the error has job scope — the job
	// itself is invalid (corrupt image, missing input) and can never
	// run.  It is returned to the user marked unexecutable.
	DispositionUnexecutable

	// DispositionRequeue: the error lies between program and job
	// scope — an accidental property of the execution site or of the
	// moment.  The schedd logs the error and attempts to execute the
	// job at a new site.  The user never sees it as a result.
	DispositionRequeue

	// DispositionHold: the pool's patience is exhausted — the job
	// burned through its attempt budget, or a daemon escalated a
	// persistent execution-environment failure.  The job is parked
	// with its last error for the user or an operator to inspect;
	// nothing further happens automatically.  Hold is a policy
	// decision layered on top of Dispose, never derived from a scope
	// alone.
	DispositionHold
)

var dispositionNames = [...]string{
	DispositionComplete:     "complete",
	DispositionUnexecutable: "unexecutable",
	DispositionRequeue:      "requeue",
	DispositionHold:         "hold",
}

// String returns the canonical name of the disposition.
func (d Disposition) String() string {
	if d < 0 || int(d) >= len(dispositionNames) {
		return fmt.Sprintf("disposition(%d)", int(d))
	}
	return dispositionNames[d]
}

// Dispose implements the schedd policy of Section 4: program scope is
// complete, job scope (or wider: the job is not separable from a
// broken pool) is unexecutable, and everything in between — virtual
// machine, remote resource, local resource — is requeued.  Scopes
// narrower than program (file, function, process, network) reaching
// the schedd indicate a mechanism failure below the program; they are
// incidental to the job and are requeued as well.
func Dispose(s Scope) Disposition {
	switch {
	case s == ScopeProgram:
		return DispositionComplete
	case s == ScopeJob:
		return DispositionUnexecutable
	default:
		return DispositionRequeue
	}
}

// DisposeError applies Dispose to the scope of err.  A nil error is a
// successful program result and is Complete.
func DisposeError(err error) Disposition {
	if err == nil {
		return DispositionComplete
	}
	return Dispose(ScopeOf(err))
}
