package scope

import (
	"testing"
	"testing/quick"
)

func TestScopeStringRoundTrip(t *testing.T) {
	for _, s := range Scopes() {
		got, err := ParseScope(s.String())
		if err != nil {
			t.Fatalf("ParseScope(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
}

func TestParseScopeRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "none", "galaxy", "PROGRAM", "job "} {
		if _, err := ParseScope(bad); err == nil {
			t.Errorf("ParseScope(%q) succeeded, want error", bad)
		}
	}
}

func TestScopeOrdering(t *testing.T) {
	// The containment chain of Figure 3, innermost to outermost.
	chain := []Scope{
		ScopeFile, ScopeFunction, ScopeNetwork, ScopeProcess,
		ScopeProgram, ScopeVirtualMachine, ScopeRemoteResource,
		ScopeLocalResource, ScopeJob, ScopePool,
	}
	for i := 1; i < len(chain); i++ {
		if !chain[i].Contains(chain[i-1]) {
			t.Errorf("%v should contain %v", chain[i], chain[i-1])
		}
		if chain[i-1].Contains(chain[i]) {
			t.Errorf("%v should not contain %v", chain[i-1], chain[i])
		}
	}
}

func TestScopeWidenIsMax(t *testing.T) {
	prop := func(a, b uint8) bool {
		s := Scope(int(a) % len(scopeNames))
		u := Scope(int(b) % len(scopeNames))
		w := s.Widen(u)
		return w.Contains(s) && w.Contains(u) && (w == s || w == u)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestScopeValid(t *testing.T) {
	if ScopeNone.Valid() {
		t.Error("ScopeNone should not be valid")
	}
	for _, s := range Scopes() {
		if !s.Valid() {
			t.Errorf("%v should be valid", s)
		}
	}
	if Scope(99).Valid() {
		t.Error("Scope(99) should not be valid")
	}
	if got := Scope(99).String(); got != "scope(99)" {
		t.Errorf("Scope(99).String() = %q", got)
	}
}

func TestHandlers(t *testing.T) {
	// Figure 3: scope -> handling program.
	want := map[Scope]Handler{
		ScopeFile:           HandlerCaller,
		ScopeFunction:       HandlerCaller,
		ScopeProcess:        HandlerCreator,
		ScopeNetwork:        HandlerPeer,
		ScopeProgram:        HandlerUser,
		ScopeVirtualMachine: HandlerStarter,
		ScopeRemoteResource: HandlerStarter,
		ScopeLocalResource:  HandlerShadow,
		ScopeJob:            HandlerSchedd,
		ScopePool:           HandlerMatchmaker,
	}
	for s, h := range want {
		if got := s.Handler(); got != h {
			t.Errorf("%v.Handler() = %v, want %v", s, got, h)
		}
	}
}

func TestScopesEnumerationCoversAllNames(t *testing.T) {
	if got, want := len(Scopes()), len(scopeNames)-1; got != want {
		t.Errorf("len(Scopes()) = %d, want %d", got, want)
	}
}

func TestDispose(t *testing.T) {
	cases := []struct {
		s    Scope
		want Disposition
	}{
		{ScopeProgram, DispositionComplete},
		{ScopeJob, DispositionUnexecutable},
		{ScopeVirtualMachine, DispositionRequeue},
		{ScopeRemoteResource, DispositionRequeue},
		{ScopeLocalResource, DispositionRequeue},
		{ScopeNetwork, DispositionRequeue},
		{ScopeProcess, DispositionRequeue},
		{ScopeFile, DispositionRequeue},
		{ScopePool, DispositionRequeue},
	}
	for _, c := range cases {
		if got := Dispose(c.s); got != c.want {
			t.Errorf("Dispose(%v) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestDisposeError(t *testing.T) {
	if got := DisposeError(nil); got != DispositionComplete {
		t.Errorf("DisposeError(nil) = %v", got)
	}
	err := New(ScopeJob, "CorruptProgramImageError", "bad magic")
	if got := DisposeError(err); got != DispositionUnexecutable {
		t.Errorf("DisposeError(job) = %v", got)
	}
}

func TestDispositionString(t *testing.T) {
	for d, want := range map[Disposition]string{
		DispositionComplete:     "complete",
		DispositionUnexecutable: "unexecutable",
		DispositionRequeue:      "requeue",
		Disposition(9):          "disposition(9)",
	} {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}
