package scope

import (
	"errors"
	"strings"
	"testing"
)

func TestMergeTakesWidestScope(t *testing.T) {
	a := New(ScopeFile, "FileNotFound", "x")
	b := New(ScopeLocalResource, "FileSystemOffline", "y")
	c := New(ScopeNetwork, "ConnectionLost", "z")
	merged := Merge("CleanupFailed", a, b, c)
	se, _ := AsError(merged)
	if se.Scope != ScopeLocalResource {
		t.Errorf("scope = %v", se.Scope)
	}
	if se.Code != "CleanupFailed" {
		t.Errorf("code = %q", se.Code)
	}
	if !strings.Contains(se.Message, "and 2 more") {
		t.Errorf("message = %q", se.Message)
	}
	if !errors.Is(merged, b) {
		t.Error("widest cause must be in the chain")
	}
}

func TestMergeSkipsNils(t *testing.T) {
	if Merge("X") != nil || Merge("X", nil, nil) != nil {
		t.Error("all-nil merge should be nil")
	}
	a := New(ScopeJob, "Bad", "x")
	merged := Merge("", nil, a, nil)
	se, _ := AsError(merged)
	if se != a {
		t.Errorf("single error should pass through, got %+v", se)
	}
}

func TestMergeSingleWithCode(t *testing.T) {
	a := New(ScopeJob, "Bad", "x")
	merged := Merge("Wrapped", a)
	se, _ := AsError(merged)
	if se.Code != "Wrapped" || se.Scope != ScopeJob {
		t.Errorf("got %+v", se)
	}
	if !errors.Is(merged, a) {
		t.Error("cause lost")
	}
}

func TestMergePlainErrors(t *testing.T) {
	plain := errors.New("anon")
	merged := Merge("Agg", plain, New(ScopeFile, "F", "f"))
	se, _ := AsError(merged)
	// Plain errors count as escaping process scope, wider than file.
	if se.Scope != ScopeProcess || se.Kind != KindEscaping {
		t.Errorf("got %+v", se)
	}
	if !errors.Is(merged, plain) {
		t.Error("plain cause lost")
	}
}

func TestMergeNeverNarrows(t *testing.T) {
	for _, s := range Scopes() {
		in := New(s, "X", "x")
		out := Merge("Y", in, New(ScopeFile, "F", "f"))
		if ScopeOf(out) < s {
			t.Errorf("merge narrowed %v to %v", s, ScopeOf(out))
		}
	}
}
