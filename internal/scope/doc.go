// Package scope implements the theory of error propagation from
// Thain & Livny, "Error Scope on a Computational Grid: Theory and
// Practice" (HPDC 2002).
//
// The central abstraction is the Scope of an error: the portion of a
// system which the error invalidates.  A FileNotFound invalidates only
// one file; a failed remote procedure call invalidates a whole process;
// a misconfigured virtual machine installation invalidates a whole
// execution machine.  Cooperating components that do not understand the
// detail of one another's errors can still cooperate by communicating
// an error's scope.
//
// The package encodes the paper's four design principles:
//
//  1. A program must not generate an implicit error as a result of
//     receiving an explicit error.  (See Error.Kind and the tests in
//     principles_test.go; the package never manufactures valid-looking
//     results from failures.)
//
//  2. An escaping error must be used to convert a potential implicit
//     error into an explicit error at a higher level.  (See Escape.)
//
//  3. An error must be propagated to the program that manages its
//     scope.  (See Scope.Handler and Route.)
//
//  4. Error interfaces must be concise and finite.  (See Contract:
//     a finite set of explicit error codes an interface admits; any
//     other error presented at the interface is converted to an
//     escaping error rather than smuggled through as explicit.)
//
// The package also provides the result-file encoding used by the
// program wrapper of Section 4 of the paper to carry an error's scope
// from inside the JVM out to the starter through an indirect channel.
package scope
