package scope

import (
	"errors"
	"reflect"
	"testing"
)

// fileWriterContract models the paper's revised FileWriter interface:
//
//	FileWriter(File f) throws FileNotFound, AccessDenied;
//	void write(int)    throws DiskFull;
func fileWriterOpenContract() *Contract {
	return NewContract("FileWriter.open", ScopeProcess, "EnvironmentError").
		Declare("FileNotFound", ScopeFile).
		Declare("AccessDenied", ScopeFile)
}

func fileWriterWriteContract() *Contract {
	return NewContract("FileWriter.write", ScopeProcess, "EnvironmentError").
		Declare("DiskFull", ScopeFile)
}

func TestContractAdmitsDeclared(t *testing.T) {
	c := fileWriterOpenContract()
	err := New(ScopeFile, "FileNotFound", "nope")
	got := c.Apply(err)
	se, ok := AsError(got)
	if !ok || se.Kind != KindExplicit || se.Code != "FileNotFound" {
		t.Fatalf("Apply(FileNotFound) = %v", got)
	}
}

func TestContractNil(t *testing.T) {
	if got := fileWriterOpenContract().Apply(nil); got != nil {
		t.Errorf("Apply(nil) = %v", got)
	}
}

func TestContractRescopesAdmittedCode(t *testing.T) {
	// A lower layer reports DiskFull at function scope; the contract
	// says DiskFull is file scope at this interface.
	c := fileWriterWriteContract()
	err := New(ScopeFunction, "DiskFull", "0 bytes left")
	got := c.Apply(err)
	se, _ := AsError(got)
	if se.Scope != ScopeFile {
		t.Errorf("contract should re-scope DiskFull to file scope, got %v", se.Scope)
	}
	if !errors.Is(got, err) {
		t.Error("re-scoped error should wrap the original")
	}
}

func TestContractEscapesForeignExplicit(t *testing.T) {
	// "Would it be reasonable for an implementation of write to throw
	// a FileNotFound?  Of course not!" — it must escape instead.
	c := fileWriterWriteContract()
	err := New(ScopeFile, "FileNotFound", "file vanished mid-write")
	got := c.Apply(err)
	se, _ := AsError(got)
	if se.Kind != KindEscaping {
		t.Fatalf("foreign explicit error should escape, got kind %v", se.Kind)
	}
	if se.Code != "EnvironmentError" {
		t.Errorf("escape code = %q", se.Code)
	}
	if se.Scope != ScopeProcess {
		t.Errorf("escape scope = %v", se.Scope)
	}
	if !errors.Is(got, err) {
		t.Error("escape should preserve the cause")
	}
}

func TestContractEscapesPlainError(t *testing.T) {
	c := fileWriterWriteContract()
	got := c.Apply(errors.New("credentials expired"))
	se, _ := AsError(got)
	if se.Kind != KindEscaping || se.Code != "EnvironmentError" {
		t.Errorf("Apply(plain) = %+v", se)
	}
}

func TestContractKeepsEscapingInFlight(t *testing.T) {
	// An escaping error passing through an interface stays escaping
	// and keeps (at least) its scope.
	c := fileWriterWriteContract()
	inner := Escape(ScopeLocalResource, "ConnectionTimedOutException", errors.New("timeout"))
	got := c.Apply(inner)
	se, _ := AsError(got)
	if se.Kind != KindEscaping {
		t.Fatalf("kind = %v", se.Kind)
	}
	if !se.Scope.Contains(ScopeLocalResource) {
		t.Errorf("escape lost scope: %v", se.Scope)
	}
}

func TestContractEmptyEscapeCodeKeepsOriginal(t *testing.T) {
	c := NewContract("x", ScopeProcess, "")
	err := New(ScopeFile, "Weird", "?")
	got := c.Apply(err)
	se, _ := AsError(got)
	if se.Code != "Weird" {
		t.Errorf("code = %q, want Weird", se.Code)
	}
	got2 := c.Apply(errors.New("anon"))
	se2, _ := AsError(got2)
	if se2.Code != "EscapingError" {
		t.Errorf("code = %q, want EscapingError", se2.Code)
	}
}

func TestContractDeclareConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("conflicting Declare should panic")
		}
	}()
	NewContract("x", ScopeProcess, "E").
		Declare("DiskFull", ScopeFile).
		Declare("DiskFull", ScopeJob)
}

func TestContractDeclareIdempotent(t *testing.T) {
	c := NewContract("x", ScopeProcess, "E").
		Declare("DiskFull", ScopeFile).
		Declare("DiskFull", ScopeFile)
	if s, ok := c.Admits("DiskFull"); !ok || s != ScopeFile {
		t.Errorf("Admits = %v, %v", s, ok)
	}
}

func TestContractZeroValueAdmitsNothing(t *testing.T) {
	var c Contract
	if _, ok := c.Admits("anything"); ok {
		t.Error("zero contract should admit nothing")
	}
	got := c.Apply(New(ScopeFile, "X", "x"))
	se, _ := AsError(got)
	if se.Kind != KindEscaping {
		t.Error("zero contract should escape everything")
	}
}

func TestContractCodesSorted(t *testing.T) {
	c := fileWriterOpenContract()
	want := []string{"AccessDenied", "FileNotFound"}
	if got := c.Codes(); !reflect.DeepEqual(got, want) {
		t.Errorf("Codes() = %v, want %v", got, want)
	}
}

func TestViolations(t *testing.T) {
	c := fileWriterWriteContract()
	if v := c.Violations(nil); v != "" {
		t.Errorf("nil: %q", v)
	}
	if v := c.Violations(New(ScopeFile, "DiskFull", "")); v != "" {
		t.Errorf("conforming: %q", v)
	}
	if v := c.Violations(New(ScopeFile, "FileNotFound", "")); v == "" {
		t.Error("foreign explicit should violate (Principle 4)")
	}
	imp := &Error{Scope: ScopeFile, Kind: KindImplicit, Code: "SilentGarbage"}
	if v := c.Violations(imp); v == "" {
		t.Error("implicit should violate (Principle 1)")
	}
	esc := Escape(ScopeProcess, "E", errors.New("x"))
	if v := c.Violations(esc); v != "" {
		t.Errorf("escaping should pass any interface: %q", v)
	}
	if v := c.Violations(errors.New("plain")); v == "" {
		t.Error("unscoped errors cannot conform")
	}
}
