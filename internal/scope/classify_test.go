package scope

import "testing"

func TestJavaUniverseClassifier(t *testing.T) {
	c := JavaUniverseClassifier()
	cases := map[string]Scope{
		// Figure 4's execution details, by exception family.
		"NullPointerException":             ScopeProgram,
		"ArrayIndexOutOfBoundsException":   ScopeProgram,
		"OutOfMemoryError":                 ScopeVirtualMachine,
		"MisconfiguredJVMError":            ScopeRemoteResource,
		"NoClassDefFoundError":             ScopeRemoteResource,
		"ConnectionTimedOutException":      ScopeLocalResource,
		"HomeFileSystemOfflineError":       ScopeLocalResource,
		"CorruptProgramImageError":         ScopeJob,
		"ClassFormatError":                 ScopeJob,
		"SomeUserDefinedBusinessException": ScopeProgram, // fallback
	}
	for code, want := range cases {
		if got := c.Classify(code); got != want {
			t.Errorf("Classify(%s) = %v, want %v", code, got, want)
		}
	}
}

func TestClassifierKnownAndCodes(t *testing.T) {
	c := NewClassifier(ScopeProgram).Add("B", ScopeJob).Add("A", ScopeFile)
	if !c.Known("A") || c.Known("Z") {
		t.Error("Known misbehaves")
	}
	codes := c.Codes()
	if len(codes) != 2 || codes[0] != "A" || codes[1] != "B" {
		t.Errorf("Codes() = %v", codes)
	}
	if c.Classify("Z") != ScopeProgram {
		t.Error("fallback not applied")
	}
}

func TestJavaClassifierCoversEveryScopeTier(t *testing.T) {
	c := JavaUniverseClassifier()
	seen := map[Scope]bool{}
	for _, code := range c.Codes() {
		seen[c.Classify(code)] = true
	}
	for _, s := range []Scope{ScopeProgram, ScopeVirtualMachine, ScopeRemoteResource, ScopeLocalResource, ScopeJob} {
		if !seen[s] {
			t.Errorf("classifier has no entry at %v scope", s)
		}
	}
}
