package scope

import (
	"fmt"
	"sort"
)

// Contract is a concise, finite error interface (Principle 4).  It
// enumerates exactly the explicit error codes a routine may return and
// the scope each one carries.  Any other error presented at the
// interface boundary does not fit the interface and must therefore be
// converted into an escaping error (Principle 2) at the contract's
// escape scope, rather than smuggled through as a generic explicit
// error.
//
// The paper contrasts this with the generic java.io.IOException, whose
// open-ended extensibility "forces the participants to make guesses".
// A Contract makes a strong, limited statement: the zero-value
// Contract admits nothing, and admission must be declared per code.
type Contract struct {
	// Name identifies the interface, e.g. "FileWriter.write".
	Name string

	// EscapeScope is the scope assigned to errors that do not fit
	// the interface.  It should be the scope of the mechanism whose
	// failure the escape represents; callers that do not know better
	// use ScopeProcess.
	EscapeScope Scope

	// EscapeCode is the code stamped on escaping conversions,
	// e.g. "EnvironmentError".  Empty means keep the original code.
	EscapeCode string

	admits map[string]Scope
}

// NewContract creates an empty contract for the named interface.
func NewContract(name string, escapeScope Scope, escapeCode string) *Contract {
	return &Contract{
		Name:        name,
		EscapeScope: escapeScope,
		EscapeCode:  escapeCode,
		admits:      make(map[string]Scope),
	}
}

// Declare adds an explicit error code with its scope to the contract
// and returns the contract for chaining.  Declaring a code twice with
// different scopes panics: a contract is a statement of interface, and
// an ambiguous statement is a programming error.
func (c *Contract) Declare(code string, s Scope) *Contract {
	if c.admits == nil {
		c.admits = make(map[string]Scope)
	}
	if prev, ok := c.admits[code]; ok && prev != s {
		panic(fmt.Sprintf("scope: contract %s declares %s with conflicting scopes %s and %s",
			c.Name, code, prev, s))
	}
	c.admits[code] = s
	return c
}

// Admits reports whether the contract admits the explicit code, and
// the scope it assigns to it.
func (c *Contract) Admits(code string) (Scope, bool) {
	s, ok := c.admits[code]
	return s, ok
}

// Codes returns the declared codes in sorted order.
func (c *Contract) Codes() []string {
	out := make([]string, 0, len(c.admits))
	for code := range c.admits {
		out = append(out, code)
	}
	sort.Strings(out)
	return out
}

// Apply filters an error through the contract at an interface
// boundary.  A nil error passes through.  An error whose code the
// contract admits is returned as an explicit error carrying the
// contract's scope for that code.  Any other error — including an
// explicit error from a lower layer whose code the interface does not
// speak — is converted into an escaping error at the contract's escape
// scope, preserving the original as its cause.
//
// Apply never returns an implicit error (Principle 1), and never lets
// a foreign explicit error masquerade as one of the interface's own
// (Principle 4).
func (c *Contract) Apply(err error) error {
	if err == nil {
		return nil
	}
	se, ok := AsError(err)
	if ok && se.Kind == KindExplicit {
		if s, admitted := c.Admits(se.Code); admitted {
			if se.Scope == s {
				return se
			}
			cp := *se
			cp.Scope = s
			cp.Cause = se
			return &cp
		}
	}
	// Either a plain error, an escaping error still in flight, or an
	// explicit error foreign to this interface: escape it.
	esc := Escape(c.EscapeScope, c.EscapeCode, err)
	if c.EscapeCode == "" {
		if ok {
			esc.Code = se.Code
		} else {
			esc.Code = "EscapingError"
		}
	}
	return esc
}

// Violations inspects an error against the contract without converting
// it, returning a description of how the error would violate the
// interface if passed through untouched, or "" if it conforms.  Used
// by tests and by the generic-error ablation experiment.
func (c *Contract) Violations(err error) string {
	if err == nil {
		return ""
	}
	se, ok := AsError(err)
	if !ok {
		return fmt.Sprintf("unscoped error %q cannot conform to contract %s", err, c.Name)
	}
	switch se.Kind {
	case KindImplicit:
		return fmt.Sprintf("implicit error %s presented at interface %s (violates Principle 1)", se.Code, c.Name)
	case KindEscaping:
		return "" // escaping errors are allowed to pass any interface
	}
	if _, admitted := c.Admits(se.Code); !admitted {
		return fmt.Sprintf("explicit error %s not declared by interface %s (violates Principle 4)", se.Code, c.Name)
	}
	return ""
}
