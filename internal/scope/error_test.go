package scope

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestErrorFormatting(t *testing.T) {
	e := New(ScopeFile, "FileNotFound", "no such file %q", "data.in")
	msg := e.Error()
	for _, want := range []string{"FileNotFound", "explicit", "file scope", `"data.in"`} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	e2 := e.WithOrigin("shadow")
	if !strings.HasPrefix(e2.Error(), "shadow: ") {
		t.Errorf("WithOrigin: %q", e2.Error())
	}
	// WithOrigin must not clobber an existing origin.
	e3 := e2.WithOrigin("starter")
	if e3.Origin != "shadow" {
		t.Errorf("WithOrigin overwrote origin: %q", e3.Origin)
	}
}

func TestErrorMessageFallsBackToCause(t *testing.T) {
	cause := errors.New("underlying detail")
	e := Explicit(ScopeNetwork, "ConnectionLost", cause)
	if !strings.Contains(e.Error(), "underlying detail") {
		t.Errorf("Error() = %q should include cause text", e.Error())
	}
}

func TestUnwrapAndErrorsIs(t *testing.T) {
	root := errors.New("disk exploded")
	e := Explicit(ScopeFile, "DiskFull", root)
	if !errors.Is(e, root) {
		t.Error("errors.Is should find the root cause")
	}
	sentinel := &Error{Code: "DiskFull"}
	if !errors.Is(e, sentinel) {
		t.Error("errors.Is should match by code with ScopeNone sentinel")
	}
	scoped := &Error{Code: "DiskFull", Scope: ScopeJob}
	if errors.Is(e, scoped) {
		t.Error("errors.Is should not match a different scope")
	}
}

func TestEscapeWidensOnly(t *testing.T) {
	inner := New(ScopeRemoteResource, "MisconfiguredJVMError", "bad path")
	esc := Escape(ScopeProcess, "WrapperEscape", inner)
	if esc.Scope != ScopeRemoteResource {
		t.Errorf("Escape narrowed scope to %v", esc.Scope)
	}
	if esc.Kind != KindEscaping {
		t.Errorf("Escape kind = %v", esc.Kind)
	}
	esc2 := Escape(ScopeJob, "WrapperEscape", inner)
	if esc2.Scope != ScopeJob {
		t.Errorf("Escape should widen to job, got %v", esc2.Scope)
	}
	if !errors.Is(esc2, inner) {
		t.Error("escaped error should wrap the original")
	}
}

func TestEscapePreservesCodeWhenEmpty(t *testing.T) {
	inner := New(ScopeNetwork, "ConnectionLost", "peer vanished")
	esc := Escape(ScopeProcess, "", inner)
	if esc.Code != "ConnectionLost" {
		t.Errorf("Escape code = %q, want ConnectionLost", esc.Code)
	}
}

func TestEscapePlainError(t *testing.T) {
	esc := Escape(ScopeProcess, "RPCFailure", errors.New("boom"))
	if esc.Scope != ScopeProcess || esc.Kind != KindEscaping {
		t.Errorf("Escape(plain) = %+v", esc)
	}
}

func TestWidenNeverNarrows(t *testing.T) {
	prop := func(a, b uint8) bool {
		s := Scope(int(a)%len(scopeNames)-1) + 1 // valid scope
		if !s.Valid() {
			s = ScopeFile
		}
		u := Scope(int(b)%len(scopeNames)-1) + 1
		if !u.Valid() {
			u = ScopeFile
		}
		e := New(s, "X", "x")
		w := e.Widen(u, "Y")
		return w.Scope.Contains(s) && w.Scope.Contains(e.Scope)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWidenSameOrNarrowerIsIdentity(t *testing.T) {
	e := New(ScopeJob, "X", "x")
	if got := e.Widen(ScopeFile, "Y"); got != e {
		t.Error("widening to a narrower scope should return the error unchanged")
	}
	if got := e.Widen(ScopeJob, "Y"); got != e {
		t.Error("widening to the same scope should return the error unchanged")
	}
}

func TestWidenWrapsOriginal(t *testing.T) {
	e := New(ScopeNetwork, "ConnectionLost", "tcp reset")
	w := e.Widen(ScopeProcess, "RPCFailure")
	if w.Code != "RPCFailure" || w.Scope != ScopeProcess {
		t.Errorf("Widen result: %+v", w)
	}
	if !errors.Is(w, e) {
		t.Error("widened error should wrap the original")
	}
	if w.Message != e.Message {
		t.Error("widened error should keep the message")
	}
}

func TestScopeOfAndKindOf(t *testing.T) {
	if ScopeOf(nil) != ScopeNone {
		t.Error("ScopeOf(nil)")
	}
	if ScopeOf(errors.New("plain")) != ScopeProcess {
		t.Error("plain errors should default to process scope")
	}
	e := New(ScopeJob, "X", "x")
	if ScopeOf(fmt.Errorf("wrapped: %w", e)) != ScopeJob {
		t.Error("ScopeOf should see through wrapping")
	}
	if KindOf(errors.New("plain")) != KindExplicit {
		t.Error("KindOf(plain)")
	}
	esc := Escape(ScopeProcess, "E", errors.New("x"))
	if KindOf(esc) != KindEscaping {
		t.Error("KindOf(escaping)")
	}
}

func TestRoute(t *testing.T) {
	cases := []struct {
		err  error
		want Handler
	}{
		{New(ScopeProgram, "NullPointerException", ""), HandlerUser},
		{New(ScopeVirtualMachine, "OutOfMemoryError", ""), HandlerStarter},
		{New(ScopeLocalResource, "HomeFileSystemOfflineError", ""), HandlerShadow},
		{New(ScopeJob, "CorruptProgramImageError", ""), HandlerSchedd},
		{errors.New("anonymous failure"), HandlerCreator},
	}
	for _, c := range cases {
		if got := Route(c.err); got != c.want {
			t.Errorf("Route(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindImplicit: "implicit",
		KindExplicit: "explicit",
		KindEscaping: "escaping",
		Kind(7):      "kind(7)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{KindImplicit, KindExplicit, KindEscaping} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) should fail")
	}
}
