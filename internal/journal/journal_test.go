package journal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("op=test seq=%d pad=%s", i, bytes.Repeat([]byte{'x'}, i%7)))
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	j := New()
	want := payloads(20)
	for _, p := range want {
		j.Append(p)
	}
	r := j.Replay()
	if r.Snapshot != nil {
		t.Fatalf("unexpected snapshot: %q", r.Snapshot)
	}
	if r.Truncated != 0 {
		t.Fatalf("clean log reported %d truncated bytes", r.Truncated)
	}
	if r.Records != len(want) {
		t.Fatalf("records = %d, want %d", r.Records, len(want))
	}
	if len(r.Entries) != len(want) {
		t.Fatalf("entries = %d, want %d", len(r.Entries), len(want))
	}
	for i, p := range want {
		if !bytes.Equal(r.Entries[i], p) {
			t.Fatalf("entry %d = %q, want %q", i, r.Entries[i], p)
		}
	}
}

func TestEmpty(t *testing.T) {
	r := New().Replay()
	if r.Snapshot != nil || len(r.Entries) != 0 || r.Records != 0 || r.Truncated != 0 {
		t.Fatalf("empty journal replay = %+v", r)
	}
}

func TestSnapshotResetsEntries(t *testing.T) {
	j := New()
	j.Append([]byte("before-1"))
	j.Append([]byte("before-2"))
	j.Compact([]byte("state@2"), nil)
	j.Append([]byte("after-1"))
	r := j.Replay()
	if string(r.Snapshot) != "state@2" {
		t.Fatalf("snapshot = %q", r.Snapshot)
	}
	if len(r.Entries) != 1 || string(r.Entries[0]) != "after-1" {
		t.Fatalf("entries = %q", r.Entries)
	}
	if r.Truncated != 0 {
		t.Fatalf("truncated = %d", r.Truncated)
	}
}

func TestCompactKeepsTail(t *testing.T) {
	j := New()
	for i := 0; i < 10; i++ {
		j.Append([]byte(fmt.Sprintf("e%d", i)))
	}
	j.Compact([]byte("snap"), [][]byte{[]byte("t1"), []byte("t2")})
	r := j.Replay()
	if string(r.Snapshot) != "snap" {
		t.Fatalf("snapshot = %q", r.Snapshot)
	}
	if len(r.Entries) != 2 || string(r.Entries[0]) != "t1" || string(r.Entries[1]) != "t2" {
		t.Fatalf("entries = %q", r.Entries)
	}
	if j.Compactions() != 1 || j.Appends() != 10 {
		t.Fatalf("compactions=%d appends=%d", j.Compactions(), j.Appends())
	}
}

// TestTornTail truncates a valid log at every possible byte boundary;
// replay must always recover exactly the records whose frames survived
// whole, and drop the rest as the torn tail.
func TestTornTail(t *testing.T) {
	j := New()
	want := payloads(8)
	var bounds []int // byte offset at which record i+1 starts
	for _, p := range want {
		j.Append(p)
		bounds = append(bounds, j.Size())
	}
	full := j.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		r := Decode(full[:cut])
		intact := 0
		for _, b := range bounds {
			if b <= cut {
				intact++
			}
		}
		if r.Records != intact {
			t.Fatalf("cut=%d: records=%d, want %d", cut, r.Records, intact)
		}
		for i := 0; i < intact; i++ {
			if !bytes.Equal(r.Entries[i], want[i]) {
				t.Fatalf("cut=%d: entry %d = %q, want %q", cut, i, r.Entries[i], want[i])
			}
		}
		wantTrunc := cut
		if intact > 0 {
			wantTrunc = cut - bounds[intact-1]
		}
		if r.Truncated != wantTrunc {
			t.Fatalf("cut=%d: truncated=%d, want %d", cut, r.Truncated, wantTrunc)
		}
	}
}

// TestCorruptByte flips one byte at a time through a record in the
// middle of the log; replay must stop at or before that record and
// never surface a corrupted payload.
func TestCorruptByte(t *testing.T) {
	j := New()
	want := payloads(5)
	var bounds []int
	for _, p := range want {
		j.Append(p)
		bounds = append(bounds, j.Size())
	}
	full := j.Bytes()
	start, end := bounds[1], bounds[2] // corrupt record index 2
	for pos := start; pos < end; pos++ {
		data := append([]byte(nil), full...)
		data[pos] ^= 0xFF
		r := Decode(data)
		if r.Records > 2 {
			// Records 0 and 1 precede the corruption; anything past
			// them must have been rejected.
			t.Fatalf("pos=%d: accepted %d records past corruption", pos, r.Records)
		}
		for i, e := range r.Entries {
			if !bytes.Equal(e, want[i]) {
				t.Fatalf("pos=%d: surfaced corrupted entry %d: %q", pos, i, e)
			}
		}
	}
}

func TestSetBytesRestores(t *testing.T) {
	j := New()
	j.Append([]byte("alpha"))
	j.Compact([]byte("snap"), [][]byte{[]byte("beta")})
	saved := j.Bytes()

	k := New()
	k.SetBytes(saved)
	r := k.Replay()
	if string(r.Snapshot) != "snap" || len(r.Entries) != 1 || string(r.Entries[0]) != "beta" {
		t.Fatalf("restored replay = %+v", r)
	}
}

// TestConcurrentAppendCompact is the journal-smoke target: writers
// append while a compactor periodically folds the log via Rewrite, all
// under the race detector.  Every appended record must be accounted
// for — folded into a snapshot or still in the tail — and the final
// log must decode cleanly.
func TestConcurrentAppendCompact(t *testing.T) {
	j := New()
	const writers = 4
	const perWriter = 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				j.Append([]byte(fmt.Sprintf("w=%d i=%d", w, i)))
			}
		}(w)
	}
	folded := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for c := 0; c < 50; c++ {
			j.Rewrite(func(r Replay) []byte {
				if r.Truncated != 0 {
					t.Errorf("mid-run replay truncated %d bytes", r.Truncated)
				}
				folded += len(r.Entries)
				return []byte(fmt.Sprintf("compaction=%d folded=%d", c, folded))
			})
		}
	}()
	wg.Wait()

	r := j.Replay()
	if r.Truncated != 0 {
		t.Fatalf("final replay truncated %d bytes", r.Truncated)
	}
	if r.Snapshot == nil {
		t.Fatalf("final replay lost the snapshot")
	}
	if got := folded + len(r.Entries); got != writers*perWriter {
		t.Fatalf("accounted for %d records (folded %d + tail %d), want %d",
			got, folded, len(r.Entries), writers*perWriter)
	}
	if j.Appends() != writers*perWriter {
		t.Fatalf("appends = %d, want %d", j.Appends(), writers*perWriter)
	}
}
