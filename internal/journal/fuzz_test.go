package journal

import (
	"bytes"
	"testing"
)

// fuzzSeed builds a small valid log to seed the corpus.
func fuzzSeed() []byte {
	j := New()
	j.Append([]byte("op=submit id=1"))
	j.Append([]byte("op=match id=1 machine=big"))
	j.Compact([]byte("snapshot nextID=2"), [][]byte{[]byte("op=exec id=1")})
	j.Append([]byte("op=final id=1"))
	return j.Bytes()
}

// FuzzDecode is the replay guarantee: arbitrary bytes — torn tails,
// flipped bits, pure garbage — must never panic, and whatever Decode
// accepts must survive a re-encode/re-decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	valid := fuzzSeed()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn tail
	f.Add(valid[:headerSize-1])          // shorter than one header
	f.Add([]byte{})                      // empty log
	f.Add([]byte("garbage"))             // no magic at all
	f.Add(append([]byte{magic}, 'X'))    // bad kind byte
	mangled := append([]byte(nil), valid...)
	mangled[len(mangled)/2] ^= 0xFF // corrupt a middle record
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := Decode(data)
		if r.Truncated < 0 || r.Truncated > len(data) {
			t.Fatalf("truncated=%d out of range for %d input bytes", r.Truncated, len(data))
		}
		// Rebuild a log from what was accepted; it must decode back to
		// exactly the same state with a clean tail.
		j := New()
		if r.Snapshot != nil {
			j.Compact(r.Snapshot, r.Entries)
		} else {
			for _, e := range r.Entries {
				j.Append(e)
			}
		}
		r2 := j.Replay()
		if r2.Truncated != 0 {
			t.Fatalf("re-encoded log has a torn tail: %d bytes", r2.Truncated)
		}
		if !bytes.Equal(r2.Snapshot, r.Snapshot) {
			t.Fatalf("snapshot changed across round trip: %q vs %q", r2.Snapshot, r.Snapshot)
		}
		if len(r2.Entries) != len(r.Entries) {
			t.Fatalf("entry count changed across round trip: %d vs %d", len(r2.Entries), len(r.Entries))
		}
		for i := range r.Entries {
			if !bytes.Equal(r2.Entries[i], r.Entries[i]) {
				t.Fatalf("entry %d changed across round trip: %q vs %q", i, r2.Entries[i], r.Entries[i])
			}
		}
	})
}

// FuzzDecodeTruncation drives the torn-tail guarantee from the encoder
// side: for any fuzzed set of records, every prefix of the encoded log
// must replay to a prefix of the records — never an error, never a
// record that was not written.
func FuzzDecodeTruncation(f *testing.F) {
	f.Add([]byte("op=submit id=1"), []byte("op=match id=1"), 7)
	f.Add([]byte(""), []byte("x"), 0)
	f.Add([]byte("snapshot-ish"), []byte("tail"), 25)
	f.Fuzz(func(t *testing.T, a, b []byte, cut int) {
		j := New()
		j.Append(a)
		j.Append(b)
		full := j.Bytes()
		if cut < 0 {
			cut = -cut
		}
		cut %= len(full) + 1
		r := Decode(full[:cut])
		want := [][]byte{a, b}
		if len(r.Entries) > len(want) {
			t.Fatalf("cut=%d: recovered %d records from a 2-record log", cut, len(r.Entries))
		}
		for i, e := range r.Entries {
			if !bytes.Equal(e, want[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, e, want[i])
			}
		}
		if len(r.Entries) == len(want) && r.Truncated != len(full)-cut {
			// Both records intact: only bytes past the final frame may
			// be reported torn, and here there are none inside full.
			t.Fatalf("cut=%d: full prefix reported %d torn bytes", cut, r.Truncated)
		}
	})
}
