package journal

import (
	"bytes"
	"testing"
)

// TestAppendBatchEqualsAppends pins the group-commit foundation: a
// batch of records is byte-for-byte the same log as the records
// appended one at a time, so replay cannot tell the difference and
// neither can the torn-tail truncation logic.
func TestAppendBatchEqualsAppends(t *testing.T) {
	want := payloads(17)

	one := New()
	for _, p := range want {
		one.Append(p)
	}
	batched := New()
	batched.AppendBatch(want[:5])
	batched.AppendBatch(nil) // an empty batch writes nothing
	batched.AppendBatch(want[5:])

	if !bytes.Equal(one.Bytes(), batched.Bytes()) {
		t.Fatal("batched log differs from the record-at-a-time log")
	}
	if one.Appends() != batched.Appends() {
		t.Fatalf("appends = %d vs %d: each batched record must count", batched.Appends(), one.Appends())
	}
	r := batched.Replay()
	if r.Records != len(want) || r.Truncated != 0 {
		t.Fatalf("replay = %d records, %d truncated", r.Records, r.Truncated)
	}
	for i, p := range want {
		if !bytes.Equal(r.Entries[i], p) {
			t.Fatalf("entry %d = %q, want %q", i, r.Entries[i], p)
		}
	}
}

// TestAppendBatchTornTail cuts a batched log at every byte offset: a
// crash mid-batch must replay every intact record and drop only the
// torn frame, exactly as with individual appends.
func TestAppendBatchTornTail(t *testing.T) {
	want := payloads(6)
	j := New()
	j.AppendBatch(want)
	full := j.Bytes()

	// Recompute record boundaries from an incremental build.
	ref := New()
	var bounds []int
	for _, p := range want {
		ref.Append(p)
		bounds = append(bounds, ref.Size())
	}

	for cut := 0; cut <= len(full); cut++ {
		r := Decode(full[:cut])
		intact := 0
		for _, b := range bounds {
			if b <= cut {
				intact++
			}
		}
		if r.Records != intact {
			t.Fatalf("cut=%d: records=%d, want %d", cut, r.Records, intact)
		}
		for i := 0; i < intact; i++ {
			if !bytes.Equal(r.Entries[i], want[i]) {
				t.Fatalf("cut=%d: entry %d corrupted", cut, i)
			}
		}
	}
}
