// Package journal is the submit-side durability layer: an
// append-only, checksummed, record-framed write-ahead log.  The schedd
// appends a record for every job-queue transition *before* acting on
// it, so the queue a crash destroys in memory is always reconstructible
// from the log — the job_queue.log discipline of real Condor.
//
// The format is deliberately tolerant of exactly one failure mode and
// intolerant of all others.  A torn tail — the bytes a crash cut short
// mid-append — is normal and expected: Replay truncates to the last
// intact record and reports how many bytes it dropped, never an error.
// A damaged record *before* the tail is indistinguishable from a torn
// tail by design: replay stops at the first frame that fails its
// checksum, because trusting anything after a corrupt record would
// reorder history.  A clean tail replays completely with zero bytes
// dropped.
//
// Records come in two kinds.  Entry records are the transitions;
// snapshot records are compaction points: a snapshot's payload is a
// complete serialization of the writer's state, so replay is the last
// snapshot plus the entries after it, and Compact can discard the
// prefix the snapshot subsumes.
package journal

import (
	"encoding/binary"
	"hash/crc32"
	"sync"
)

// Frame layout, all integers little-endian:
//
//	offset 0  magic (0xA5)
//	offset 1  kind ('E' entry, 'S' snapshot)
//	offset 2  payload length, uint32
//	offset 6  CRC-32C (Castagnoli) of kind byte + payload, uint32
//	offset 10 payload
const (
	magic      byte = 0xA5
	headerSize      = 10

	// KindEntry frames one state transition.
	KindEntry byte = 'E'
	// KindSnapshot frames a complete state serialization; replay
	// discards everything before the last intact snapshot.
	KindSnapshot byte = 'S'
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Journal is the durable log.  The backing store is a byte slice — the
// "disk" that survives a simulated crash of its writer.  All methods
// are safe for concurrent use; the simulation is single-threaded, but
// the race-enabled journal-smoke test exercises concurrent append and
// compaction so the type stays correct under a live runtime too.
type Journal struct {
	mu   sync.Mutex
	data []byte

	appends     int
	compactions int
}

// New returns an empty journal.
func New() *Journal { return &Journal{} }

// grow ensures buf has room for n more bytes, doubling the backing
// array when it must reallocate.  Plain append approaches 1.25x growth
// for megabyte-scale slices, which re-copies a long log four times as
// often; a write-ahead log is the textbook case for exponential
// growth, keeping total copy traffic O(final size) over a run.
func grow(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf
	}
	newCap := 2 * cap(buf)
	if newCap < len(buf)+n {
		newCap = len(buf) + n
	}
	if newCap < 1024 {
		newCap = 1024
	}
	nb := make([]byte, len(buf), newCap)
	copy(nb, buf)
	return nb
}

// frame appends one record frame to buf and returns the result.
func frame(buf []byte, kind byte, payload []byte) []byte {
	buf = grow(buf, headerSize+len(payload))
	var hdr [headerSize]byte
	hdr[0] = magic
	hdr[1] = kind
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[6:10], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// Append writes one entry record.
func (j *Journal) Append(payload []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.data = frame(j.data, KindEntry, payload)
	j.appends++
}

// AppendBatch writes a group of entry records under one critical
// section — the group-commit primitive.  The batch is framed
// back-to-back, so replay sees exactly the records one Append per
// payload would have produced, but the writer pays one lock
// acquisition (one fsync, on a real disk) for the whole batch.
func (j *Journal) AppendBatch(payloads [][]byte) {
	if len(payloads) == 0 {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, p := range payloads {
		j.data = frame(j.data, KindEntry, p)
		j.appends++
	}
}

// Compact atomically replaces the log with one snapshot record
// followed by the tail entries.  The caller serializes its complete
// state into snapshot; everything the snapshot subsumes is discarded.
func (j *Journal) Compact(snapshot []byte, tail [][]byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// The old backing array is reused: frame copies the snapshot and
	// tail payloads in, and Bytes/Replay hand out copies, so no caller
	// holds a reference into j.data.  (The snapshot argument itself is
	// built by the caller in its own buffer, never aliased to j.data.)
	buf := frame(j.data[:0], KindSnapshot, snapshot)
	for _, p := range tail {
		buf = frame(buf, KindEntry, p)
	}
	j.data = buf
	j.compactions++
}

// Rewrite compacts under a single critical section: fn receives the
// replay of the current contents and returns the new snapshot payload,
// and the log is replaced by that snapshot alone.  Unlike a separate
// Replay+Compact pair, no concurrent append can slip into the gap and
// be silently discarded, so this is the safe way to compact while
// writers are live.  The replay passed to fn aliases the old log; fn
// must not retain it.
func (j *Journal) Rewrite(fn func(Replay) []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	snap := fn(Decode(j.data))
	j.data = frame(j.data[:0:0], KindSnapshot, snap)
	j.compactions++
}

// Bytes returns a copy of the durable bytes — what a recovery process
// would read off the disk.
func (j *Journal) Bytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]byte, len(j.data))
	copy(out, j.data)
	return out
}

// SetBytes replaces the durable bytes wholesale.  Tests use it to
// model torn writes and corruption; recovery tooling uses it to mount
// a salvaged log.
func (j *Journal) SetBytes(b []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.data = append(j.data[:0:0], b...)
}

// Size returns the current log length in bytes.
func (j *Journal) Size() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.data)
}

// Appends returns how many entry records have been appended over the
// journal's lifetime (compaction does not reset it).
func (j *Journal) Appends() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appends
}

// Compactions returns how many times the log has been compacted.
func (j *Journal) Compactions() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactions
}

// Replay decodes the journal's current contents.
func (j *Journal) Replay() Replay { return Decode(j.Bytes()) }

// Replay is the result of decoding a log: the last intact snapshot (if
// any), the entry payloads after it, and how the tail ended.
type Replay struct {
	// Snapshot is the payload of the last intact snapshot record, or
	// nil when the log holds none.
	Snapshot []byte
	// Entries are the entry payloads after the last snapshot, in
	// append order.
	Entries [][]byte
	// Records counts every intact record scanned, snapshots included.
	Records int
	// Truncated is the number of trailing bytes dropped as a torn or
	// corrupt tail; 0 means the log ended exactly on a record boundary.
	Truncated int
}

// Decode scans data from the front, accepting records until the first
// frame that is short, mis-tagged, or fails its checksum; everything
// from that point on is the torn tail.  Decode never fails: arbitrary
// input yields the longest intact prefix, possibly empty.  Returned
// payloads alias data.
func Decode(data []byte) Replay {
	var r Replay
	off := 0
	for {
		if len(data)-off < headerSize {
			break
		}
		if data[off] != magic {
			break
		}
		kind := data[off+1]
		if kind != KindEntry && kind != KindSnapshot {
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off+2 : off+6]))
		if n < 0 || len(data)-off-headerSize < n {
			break
		}
		payload := data[off+headerSize : off+headerSize+n]
		want := binary.LittleEndian.Uint32(data[off+6 : off+10])
		crc := crc32.Update(crc32.Checksum([]byte{kind}, castagnoli), castagnoli, payload)
		if crc != want {
			break
		}
		if kind == KindSnapshot {
			r.Snapshot = payload
			r.Entries = r.Entries[:0]
		} else {
			r.Entries = append(r.Entries, payload)
		}
		r.Records++
		off += headerSize + n
	}
	r.Truncated = len(data) - off
	return r
}
