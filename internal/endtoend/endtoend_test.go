package endtoend

import (
	"bytes"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
)

// outputProgram builds a program that computes and writes content to
// the given path on the submit machine.
func outputProgram(content []byte) func(path string) *jvm.Program {
	return func(path string) *jvm.Program {
		return &jvm.Program{Class: "Main", Steps: []jvm.Step{
			jvm.Compute{Duration: 5 * time.Minute},
			jvm.IOWrite{Path: path, Data: content},
		}}
	}
}

func newPool(t *testing.T) *pool.Pool {
	t.Helper()
	return pool.New(pool.Config{
		Seed:     1,
		Params:   daemon.DefaultParams(),
		Machines: pool.UniformMachines(4, 2048),
	})
}

func TestValidOutputAccepted(t *testing.T) {
	p := newPool(t)
	s := New(p)
	defer s.Close()
	content := []byte("the answer is 42")
	tr := s.Submit(Spec{
		Name:       "calc",
		Program:    outputProgram(content),
		OutputPath: "/home/user/calc.out",
		Validate:   NewChecksumValidator(content),
	})
	p.Run(12 * time.Hour)
	if tr.Status != StatusValid {
		t.Fatalf("status = %v, err = %v", tr.Status, tr.Err)
	}
	if !bytes.Equal(tr.Output, content) {
		t.Errorf("output = %q", tr.Output)
	}
	if tr.Resubmits != 0 || tr.ImplicitDetected != 0 {
		t.Errorf("tr = %+v", tr)
	}
}

func TestImplicitErrorDetectedAndRecovered(t *testing.T) {
	p := newPool(t)
	s := New(p)
	defer s.Close()
	content := []byte("results: 3.14159265358979 converged ok padded to sixty-five.")
	tr := s.Submit(Spec{
		Name:       "sim",
		Program:    outputProgram(content),
		OutputPath: "/home/user/sim.out",
		Validate:   NewChecksumValidator(content),
	})
	// Corrupt the first read of the output: the job completes
	// normally, but the supervisor's analysis sees garbage — an
	// implicit error nothing below this layer can detect.
	p.Schedd.SubmitFS.CorruptNextReads("/home/user/sim.out", 1)
	p.Run(24 * time.Hour)
	if tr.Status != StatusValid {
		t.Fatalf("status = %v, err = %v", tr.Status, tr.Err)
	}
	if tr.ImplicitDetected != 1 {
		t.Errorf("implicit detected = %d", tr.ImplicitDetected)
	}
	if tr.Resubmits != 1 {
		t.Errorf("resubmits = %d", tr.Resubmits)
	}
	if !bytes.Equal(tr.Output, content) {
		t.Errorf("final output corrupt")
	}
}

func TestPersistentImplicitErrorGivesUp(t *testing.T) {
	p := newPool(t)
	s := New(p)
	defer s.Close()
	content := []byte("data data data data data data data data data data data data data")
	tr := s.Submit(Spec{
		Name:         "cursed",
		Program:      outputProgram(content),
		OutputPath:   "/home/user/cursed.out",
		Validate:     NewChecksumValidator(content),
		MaxResubmits: 2,
	})
	// Every read of every round is corrupted.
	corruptAll := func(path string) { p.Schedd.SubmitFS.CorruptNextReads(path, 1000) }
	corruptAll("/home/user/cursed.out")
	p.Run(48 * time.Hour)
	if tr.Status != StatusInvalid {
		t.Fatalf("status = %v", tr.Status)
	}
	if tr.Resubmits != 2 {
		t.Errorf("resubmits = %d", tr.Resubmits)
	}
	se, _ := scope.AsError(tr.Err)
	if se == nil || se.Kind != scope.KindImplicit {
		t.Errorf("final err = %v", tr.Err)
	}
}

func TestPropertyValidator(t *testing.T) {
	p := newPool(t)
	s := New(p)
	defer s.Close()
	tr := s.Submit(Spec{
		Name:       "prop",
		Program:    outputProgram([]byte("value=17")),
		OutputPath: "/home/user/prop.out",
		Validate: &PropertyValidator{
			Desc:  "output names a value",
			Check: func(out []byte) bool { return bytes.HasPrefix(out, []byte("value=")) },
		},
	})
	p.Run(12 * time.Hour)
	if tr.Status != StatusValid {
		t.Fatalf("status = %v, err = %v", tr.Status, tr.Err)
	}
	// And a property that never holds.
	tr2 := s.Submit(Spec{
		Name:         "never",
		Program:      outputProgram([]byte("value=17")),
		OutputPath:   "/home/user/never.out",
		MaxResubmits: 1,
		Validate: &PropertyValidator{
			Desc:  "impossible",
			Check: func([]byte) bool { return false },
		},
	})
	p.Run(24 * time.Hour)
	if tr2.Status != StatusInvalid {
		t.Fatalf("status = %v", tr2.Status)
	}
}

func TestReplicationVotesOutCorruptReplica(t *testing.T) {
	p := newPool(t)
	s := New(p)
	defer s.Close()
	content := []byte("replicated result 0123456789 0123456789 0123456789 0123456789!!")
	tr := s.Submit(Spec{
		Name:       "rep",
		Program:    outputProgram(content),
		OutputPath: "/home/user/rep.out",
		Replicas:   3,
	})
	// One replica's output read is silently corrupted; the majority
	// carries the vote with no resubmission at all.
	p.Schedd.SubmitFS.CorruptNextReads("/home/user/rep.out.rep1.round0", 1)
	p.Run(24 * time.Hour)
	if tr.Status != StatusValid {
		t.Fatalf("status = %v, err = %v", tr.Status, tr.Err)
	}
	if tr.Resubmits != 0 {
		t.Errorf("resubmits = %d, replication should have masked the fault", tr.Resubmits)
	}
	if !bytes.Equal(tr.Output, content) {
		t.Error("voted output wrong")
	}
}

func TestGridFailureResubmitted(t *testing.T) {
	// A job-scope failure (corrupt image) is returned by the grid as
	// unexecutable; the supervisor resubmits — and since the spec
	// builds a fresh program each round, a transient job-scope
	// condition clears.
	p := newPool(t)
	s := New(p)
	defer s.Close()
	round := 0
	tr := s.Submit(Spec{
		Name: "flaky-image",
		Program: func(path string) *jvm.Program {
			round++
			if round == 1 {
				return jvm.CorruptImage()
			}
			return outputProgram([]byte("ok"))(path)
		},
		OutputPath: "/home/user/flaky.out",
	})
	p.Run(24 * time.Hour)
	if tr.Status != StatusValid {
		t.Fatalf("status = %v, err = %v", tr.Status, tr.Err)
	}
	if tr.Resubmits != 1 {
		t.Errorf("resubmits = %d", tr.Resubmits)
	}
}

func TestVote(t *testing.T) {
	a, b := []byte("a"), []byte("b")
	if got := vote([][]byte{a, a, b}); !bytes.Equal(got, a) {
		t.Errorf("vote = %q", got)
	}
	if got := vote([][]byte{a, b}); got != nil {
		t.Errorf("no-majority vote = %q", got)
	}
	if got := vote([][]byte{a}); !bytes.Equal(got, a) {
		t.Errorf("single vote = %q", got)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending: "pending", StatusValid: "valid",
		StatusInvalid: "invalid", StatusJobError: "job-error",
		Status(9): "status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d = %q, want %q", int(s), got, want)
		}
	}
}
