// Package endtoend implements the layer Section 5 of the paper calls
// for above the grid: "The end-to-end principle tells us that the
// ultimate responsibility for detecting such [implicit] errors lies
// with a higher level of software.  A process above Condor may work
// on behalf of the user to analyze outputs and replicate or resubmit
// jobs that fail due to implicit errors or failures in Condor itself."
//
// A Supervisor submits work to a pool's schedd, and when a job
// completes it validates the output.  An output that fails validation
// is an implicit error made explicit: the supervisor resubmits the
// job, up to a bound.  For work whose correct output cannot be known
// in advance, replication runs independent copies and votes on the
// result.
package endtoend

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
)

// Validator decides whether a job output is genuine.  A non-nil
// return is the detection of an implicit error: the output looked
// like a valid result but is determined to be false.
type Validator interface {
	Validate(output []byte) error
}

// ChecksumValidator accepts only outputs with a known SHA-256 sum —
// the strongest validation, available when the correct output is
// known (e.g. re-running a reference computation).
type ChecksumValidator struct {
	Sum [sha256.Size]byte
}

// NewChecksumValidator builds a validator from the expected output.
func NewChecksumValidator(expected []byte) *ChecksumValidator {
	return &ChecksumValidator{Sum: sha256.Sum256(expected)}
}

// Validate implements Validator.
func (v *ChecksumValidator) Validate(output []byte) error {
	if sha256.Sum256(output) != v.Sum {
		e := scope.New(scope.ScopeProcess, "ImplicitOutputError",
			"output checksum mismatch")
		e.Kind = scope.KindImplicit
		return e
	}
	return nil
}

// PropertyValidator checks a domain property of the output — the
// paper's "unless it knows a priori the structure of a job or its
// valid inputs and outputs".
type PropertyValidator struct {
	Desc  string
	Check func(output []byte) bool
}

// Validate implements Validator.
func (v *PropertyValidator) Validate(output []byte) error {
	if !v.Check(output) {
		e := scope.New(scope.ScopeProcess, "ImplicitOutputError",
			"output violates property: %s", v.Desc)
		e.Kind = scope.KindImplicit
		return e
	}
	return nil
}

// Spec describes one unit of supervised work.
type Spec struct {
	// Name labels the work.
	Name string
	// Program is the job to run; it must write its output to
	// OutputPath on the submit-side file system.  When Replicas > 1
	// the program builder receives the replica's distinct output
	// path.
	Program func(outputPath string) *jvm.Program
	// OutputPath is where the (primary) output lands.
	OutputPath string
	// Validate checks the output; nil accepts anything non-empty.
	Validate Validator
	// Replicas runs this many independent copies and votes; values
	// below 2 disable replication.
	Replicas int
	// MaxResubmits bounds recovery attempts after validation
	// failures (default 3).
	MaxResubmits int
}

// Status of one supervised unit.
type Status int

// Supervision outcomes.
const (
	StatusPending Status = iota
	StatusValid
	StatusInvalid  // exhausted resubmissions, output still bad
	StatusJobError // the grid returned the job unexecutable/held
)

var statusNames = [...]string{
	StatusPending:  "pending",
	StatusValid:    "valid",
	StatusInvalid:  "invalid",
	StatusJobError: "job-error",
}

// String returns the status name.
func (s Status) String() string {
	if s < 0 || int(s) >= len(statusNames) {
		return fmt.Sprintf("status(%d)", int(s))
	}
	return statusNames[s]
}

// Tracked is the supervisor's view of one Spec.
type Tracked struct {
	Spec   Spec
	Status Status
	// Output is the accepted output when Status is StatusValid.
	Output []byte
	// Resubmits counts recovery rounds performed.
	Resubmits int
	// ImplicitDetected counts outputs rejected by validation.
	ImplicitDetected int
	// Err carries the final error for Invalid/JobError.
	Err error

	jobs  []daemon.JobID
	paths []string
	round int
}

// Supervisor drives supervised work over a pool.
type Supervisor struct {
	pool    *pool.Pool
	tracked []*Tracked
	stop    func()
}

// New creates a supervisor and hooks its supervision loop into the
// pool's virtual clock (checking once per virtual minute).
func New(p *pool.Pool) *Supervisor {
	s := &Supervisor{pool: p}
	s.stop = p.Engine.Every(time.Minute, s.poll)
	return s
}

// Submit starts supervising a spec.
func (s *Supervisor) Submit(spec Spec) *Tracked {
	if spec.MaxResubmits == 0 {
		spec.MaxResubmits = 3
	}
	if spec.Replicas < 2 {
		spec.Replicas = 1
	}
	tr := &Tracked{Spec: spec}
	s.tracked = append(s.tracked, tr)
	s.launch(tr)
	return tr
}

// Tracked returns all supervised units.
func (s *Supervisor) Tracked() []*Tracked { return s.tracked }

// Close stops the supervision loop.
func (s *Supervisor) Close() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// launch submits the spec's jobs for one round.
func (s *Supervisor) launch(tr *Tracked) {
	tr.jobs = tr.jobs[:0]
	tr.paths = tr.paths[:0]
	fs := s.pool.Schedd.SubmitFS
	for r := 0; r < tr.Spec.Replicas; r++ {
		path := tr.Spec.OutputPath
		if tr.Spec.Replicas > 1 {
			path = fmt.Sprintf("%s.rep%d.round%d", tr.Spec.OutputPath, r, tr.round)
		}
		exe := fmt.Sprintf("/supervised/%s.round%d.rep%d.class", tr.Spec.Name, tr.round, r)
		_ = fs.WriteFile(exe, []byte("class bytes"))
		id := s.pool.Schedd.Submit(&daemon.Job{
			Owner:      "supervisor",
			Ad:         daemon.NewJavaJobAd("supervisor", 128),
			Program:    tr.Spec.Program(path),
			Executable: exe,
		})
		tr.jobs = append(tr.jobs, id)
		tr.paths = append(tr.paths, path)
	}
	tr.round++
}

// poll advances every pending unit whose jobs have all terminated.
func (s *Supervisor) poll() {
	for _, tr := range s.tracked {
		if tr.Status != StatusPending {
			continue
		}
		done := true
		failed := false
		var lastErr error
		for _, id := range tr.jobs {
			j := s.pool.Schedd.Job(id)
			if !j.State.Terminal() {
				done = false
				break
			}
			if j.State != daemon.JobCompleted {
				failed = true
				lastErr = j.FinalErr
			}
		}
		if !done {
			continue
		}
		if failed {
			// The grid itself could not run the work; the
			// supervisor resubmits this too — "jobs that fail due
			// to ... failures in Condor itself".
			s.recover(tr, scope.Escape(scope.ScopePool, "GridFailure", lastErr))
			continue
		}
		s.evaluate(tr)
	}
}

// evaluate validates (and, with replication, votes on) the outputs.
func (s *Supervisor) evaluate(tr *Tracked) {
	fs := s.pool.Schedd.SubmitFS
	outputs := make([][]byte, 0, len(tr.paths))
	for _, path := range tr.paths {
		data, err := fs.ReadFile(path)
		if err != nil {
			s.recover(tr, err)
			return
		}
		outputs = append(outputs, data)
	}
	var chosen []byte
	if len(outputs) > 1 {
		chosen = vote(outputs)
		if chosen == nil {
			tr.ImplicitDetected++
			s.recover(tr, scope.New(scope.ScopeProcess, "ReplicaDisagreement",
				"no majority among %d replicas", len(outputs)))
			return
		}
	} else {
		chosen = outputs[0]
	}
	if tr.Spec.Validate != nil {
		if err := tr.Spec.Validate.Validate(chosen); err != nil {
			tr.ImplicitDetected++
			s.recover(tr, err)
			return
		}
	}
	tr.Status = StatusValid
	tr.Output = chosen
}

// recover resubmits the unit, or gives up past the bound.
func (s *Supervisor) recover(tr *Tracked, cause error) {
	if tr.Resubmits >= tr.Spec.MaxResubmits {
		if scope.KindOf(cause) == scope.KindImplicit {
			tr.Status = StatusInvalid
		} else {
			tr.Status = StatusJobError
		}
		tr.Err = cause
		return
	}
	tr.Resubmits++
	s.launch(tr)
}

// vote returns the content agreed on by a strict majority of
// replicas, or nil when there is none.
func vote(outputs [][]byte) []byte {
	for _, candidate := range outputs {
		agree := 0
		for _, other := range outputs {
			if bytes.Equal(candidate, other) {
				agree++
			}
		}
		if agree*2 > len(outputs) {
			return candidate
		}
	}
	return nil
}
