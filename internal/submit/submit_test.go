package submit

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
)

const sample = `
# A typical Java Universe submit file.
universe     = java
executable   = /home/alice/Sim.class
owner        = alice
image_size   = 256
requirements = target.Memory >= 512 && target.HasJava
rank         = target.Memory
+Department  = "CS"
+NiceUser    = true

sim_compute  = 10m
sim_read     = /home/alice/input.dat 4096
sim_write    = /home/alice/output.dat results go here
queue 3
`

func TestParseSample(t *testing.T) {
	f, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(f.Jobs))
	}
	j := f.Jobs[0]
	if j.Owner != "alice" || j.Executable != "/home/alice/Sim.class" {
		t.Errorf("job = %+v", j)
	}
	if v := j.Ad.EvalAttr("ImageSize", nil); !v.Equal(classad.Int(256)) {
		t.Errorf("ImageSize = %s", v)
	}
	if v := j.Ad.EvalAttr("Department", nil); !v.Equal(classad.Str("CS")) {
		t.Errorf("Department = %s", v)
	}
	if v := j.Ad.EvalAttr("NiceUser", nil); !v.Equal(classad.Bool(true)) {
		t.Errorf("NiceUser = %s", v)
	}
	if len(j.Program.Steps) != 3 {
		t.Fatalf("steps = %d", len(j.Program.Steps))
	}
	if c, ok := j.Program.Steps[0].(jvm.Compute); !ok || c.Duration != 10*time.Minute {
		t.Errorf("step 0 = %+v", j.Program.Steps[0])
	}
	if r, ok := j.Program.Steps[1].(jvm.IORead); !ok || r.Path != "/home/alice/input.dat" || r.Length != 4096 {
		t.Errorf("step 1 = %+v", j.Program.Steps[1])
	}
	if w, ok := j.Program.Steps[2].(jvm.IOWrite); !ok || string(w.Data) != "results go here" {
		t.Errorf("step 2 = %+v", j.Program.Steps[2])
	}
	// Requirements must actually match a suitable machine ad.
	machine, _ := classad.Parse(`[ Machine = "m"; Memory = 2048; HasJava = true ]`)
	if !classad.Match(j.Ad, machine) {
		t.Error("parsed requirements should match")
	}
}

func TestMultipleQueueStatements(t *testing.T) {
	src := `
owner = bob
sim_compute = 1m
queue
sim_throw = NullPointerException at line 3
queue 2
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Jobs) != 3 {
		t.Fatalf("jobs = %d", len(f.Jobs))
	}
	// The first job has one step; later jobs inherit accumulated
	// state (condor_submit semantics).
	if len(f.Jobs[0].Program.Steps) != 1 {
		t.Errorf("job 0 steps = %d", len(f.Jobs[0].Program.Steps))
	}
	if len(f.Jobs[1].Program.Steps) != 2 {
		t.Errorf("job 1 steps = %d", len(f.Jobs[1].Program.Steps))
	}
	th, ok := f.Jobs[2].Program.Steps[1].(jvm.Throw)
	if !ok || th.Exception != "NullPointerException" || th.Message != "at line 3" {
		t.Errorf("throw step = %+v", f.Jobs[2].Program.Steps[1])
	}
}

func TestDefaults(t *testing.T) {
	f, err := Parse("queue")
	if err != nil {
		t.Fatal(err)
	}
	j := f.Jobs[0]
	if j.Owner != "nobody" {
		t.Errorf("owner = %q", j.Owner)
	}
	if len(j.Program.Steps) != 1 {
		t.Errorf("steps = %d", len(j.Program.Steps))
	}
}

func TestAllocFreeExitCorrupt(t *testing.T) {
	src := `
sim_alloc = 64MB
sim_free = 32MB
sim_exit = 7
sim_corrupt_image = true
queue
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	j := f.Jobs[0]
	if !j.Program.ImageCorrupt {
		t.Error("ImageCorrupt")
	}
	if a, ok := j.Program.Steps[0].(jvm.Allocate); !ok || a.Bytes != 64<<20 {
		t.Errorf("alloc = %+v", j.Program.Steps[0])
	}
	if fr, ok := j.Program.Steps[1].(jvm.Free); !ok || fr.Bytes != 32<<20 {
		t.Errorf("free = %+v", j.Program.Steps[1])
	}
	if e, ok := j.Program.Steps[2].(jvm.Exit); !ok || e.Code != 7 {
		t.Errorf("exit = %+v", j.Program.Steps[2])
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"1024": 1024, "4KB": 4 << 10, "64MB": 64 << 20, "2GB": 2 << 30,
		" 8 mb ": 8 << 20,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "x", "-1", "1TBB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) should fail", bad)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                             // no queue
		"junk line\nqueue",             // no '='
		"universe = standard\nqueue",   // unsupported universe
		"image_size = x\nqueue",        // bad number
		"image_size = -5\nqueue",       // negative
		"requirements = 1 +\nqueue",    // bad expr
		"rank = )\nqueue",              // bad expr
		"+ = 1\nqueue",                 // empty custom name
		"+Attr = ]\nqueue",             // bad custom expr
		"sim_compute = fast\nqueue",    // bad duration
		"sim_read = /x\nqueue",         // missing length
		"sim_read = /x y\nqueue",       // bad length
		"sim_write = noval\nqueue",     // missing content
		"sim_exit = x\nqueue",          // bad code
		"sim_corrupt_image = z\nqueue", // bad bool
		"sim_alloc = z\nqueue",         // bad bytes
		"bogus = 1\nqueue",             // unknown directive
		"queue -3",                     // bad count
		"queue 1 2",                    // malformed queue
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// TestSubmitFileEndToEnd runs a parsed submit file through a real
// pool.
func TestSubmitFileEndToEnd(t *testing.T) {
	f, err := Parse(`
owner = alice
executable = /home/alice/Sim.class
sim_compute = 5m
sim_write = /home/alice/out.dat done
queue 4
`)
	if err != nil {
		t.Fatal(err)
	}
	p := pool.New(pool.Config{Seed: 1, Params: daemon.DefaultParams(),
		Machines: pool.UniformMachines(2, 2048)})
	p.Schedd.SubmitFS.WriteFile("/home/alice/Sim.class", []byte("bytes"))
	for _, j := range f.Jobs {
		p.Schedd.Submit(j)
	}
	p.Run(24 * time.Hour)
	m := p.Metrics()
	if m.Completed != 4 {
		t.Fatalf("metrics = %s", m)
	}
	out, err := p.Schedd.SubmitFS.ReadFile("/home/alice/out.dat")
	if err != nil || string(out) != "done" {
		t.Errorf("output = %q, %v", out, err)
	}
}

func TestUnknownDirectiveMessage(t *testing.T) {
	_, err := Parse("whatzit = 3\nqueue")
	if err == nil || !strings.Contains(err.Error(), "whatzit") {
		t.Errorf("err = %v", err)
	}
}
