package submit

import "testing"

// FuzzParse ensures the submit-file parser never panics and that
// accepted files produce well-formed jobs.
func FuzzParse(f *testing.F) {
	f.Add("queue")
	f.Add("universe = java\nowner = a\nsim_compute = 5m\nqueue 3\n")
	f.Add("+X = 1\nrequirements = target.HasJava\nqueue\nqueue 2\n")
	f.Add("sim_alloc = 64MB\nsim_throw = E msg\nqueue")
	f.Add("= = =\nqueue -1")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		if len(file.Jobs) == 0 {
			t.Fatal("accepted file with no jobs")
		}
		for _, j := range file.Jobs {
			if j.Ad == nil || j.Program == nil {
				t.Fatalf("malformed job: %+v", j)
			}
			if len(j.Program.Steps) == 0 {
				t.Fatal("job with no steps")
			}
		}
	})
}
