package submit

import (
	"testing"

	"github.com/errscope/grid/internal/classad"
)

func TestVanillaUniverse(t *testing.T) {
	f, err := Parse(`
universe = vanilla
owner = bob
executable = /home/bob/a.out
sim_compute = 2m
queue
`)
	if err != nil {
		t.Fatal(err)
	}
	j := f.Jobs[0]
	if j.Universe != "vanilla" {
		t.Errorf("universe = %q", j.Universe)
	}
	if v := j.Ad.EvalAttr("Universe", nil); !v.Equal(classad.Str("vanilla")) {
		t.Errorf("ad universe = %s", v)
	}
	// Vanilla requirements do not demand Java.
	nojava, _ := classad.Parse(`[ Machine = "m"; Memory = 2048; HasJava = false ]`)
	if !classad.Match(j.Ad, nojava) {
		t.Error("vanilla job should match a machine without java")
	}
}
