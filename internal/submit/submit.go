// Package submit parses Condor submit description files into jobs for
// the simulated grid, in the style of condor_submit:
//
//	universe     = java
//	executable   = /home/alice/Sim.class
//	owner        = alice
//	image_size   = 128
//	requirements = target.Memory >= 512 && target.HasJava
//	rank         = target.Memory
//	+Department  = "CS"
//
//	sim_compute  = 10m
//	sim_read     = /home/alice/input.dat 4096
//	sim_write    = /home/alice/output.dat results
//	queue 5
//
// Standard directives map onto the job ClassAd; `+Attr = expr` adds a
// custom attribute verbatim, as in Condor.  Because the JVM here is a
// simulation, program *behaviour* is declared with sim_* directives
// (in order): sim_compute, sim_alloc, sim_free, sim_read, sim_write,
// sim_throw, sim_exit, sim_corrupt_image.  Each `queue N` statement
// emits N copies of the job described so far.
package submit

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/errscope/grid/internal/classad"
	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/scope"
)

// File is a parsed submit description: the jobs it queues, in order.
type File struct {
	Jobs []*daemon.Job
}

// state accumulates directives until a queue statement.
type state struct {
	owner        string
	universe     string
	executable   string
	imageSize    int64
	requirements string
	rank         string
	extra        []extraAttr
	steps        []jvm.Step
	corruptImage bool
	class        string
}

type extraAttr struct {
	name string
	expr string
}

func newState() *state {
	return &state{owner: "nobody", universe: "java", imageSize: 128, class: "Main"}
}

// Parse reads a submit description file.
func Parse(src string) (*File, error) {
	f := &File{}
	st := newState()
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lineNo := ln + 1

		if name, ok := cutKeyword(line, "queue"); ok {
			n := 1
			if name != "" {
				v, err := strconv.Atoi(name)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("submit: line %d: bad queue count %q", lineNo, name)
				}
				n = v
			}
			for i := 0; i < n; i++ {
				job, err := st.build()
				if err != nil {
					return nil, fmt.Errorf("submit: line %d: %w", lineNo, err)
				}
				f.Jobs = append(f.Jobs, job)
			}
			continue
		}

		key, value, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("submit: line %d: expected 'key = value' or 'queue [n]', got %q", lineNo, line)
		}
		rawKey := strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if strings.HasPrefix(rawKey, "+") {
			// Custom attribute: preserve the user's spelling.
			if err := st.applyCustom(rawKey[1:], value); err != nil {
				return nil, fmt.Errorf("submit: line %d: %w", lineNo, err)
			}
			continue
		}
		if err := st.apply(strings.ToLower(rawKey), value); err != nil {
			return nil, fmt.Errorf("submit: line %d: %w", lineNo, err)
		}
	}
	if len(f.Jobs) == 0 {
		return nil, fmt.Errorf("submit: no queue statement")
	}
	return f, nil
}

// cutKeyword matches "queue" / "queue N" case-insensitively.
func cutKeyword(line, kw string) (rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 || strings.ToLower(fields[0]) != kw {
		return "", false
	}
	if len(fields) == 1 {
		return "", true
	}
	if len(fields) == 2 {
		return fields[1], true
	}
	return "", false
}

func (st *state) apply(key, value string) error {
	switch key {
	case "universe":
		u := strings.ToLower(value)
		if u != "java" && u != "vanilla" {
			return fmt.Errorf("unsupported universe %q (java or vanilla)", value)
		}
		st.universe = u
	case "executable":
		st.executable = value
	case "owner":
		st.owner = value
	case "class":
		st.class = value
	case "image_size":
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad image_size %q", value)
		}
		st.imageSize = n
	case "requirements":
		if _, err := classad.ParseExpr(value); err != nil {
			return fmt.Errorf("bad requirements: %w", err)
		}
		st.requirements = value
	case "rank":
		if _, err := classad.ParseExpr(value); err != nil {
			return fmt.Errorf("bad rank: %w", err)
		}
		st.rank = value
	case "sim_compute":
		d, err := time.ParseDuration(value)
		if err != nil || d < 0 {
			return fmt.Errorf("bad sim_compute %q", value)
		}
		st.steps = append(st.steps, jvm.Compute{Duration: d})
	case "sim_alloc", "sim_free":
		n, err := parseBytes(value)
		if err != nil {
			return err
		}
		if key == "sim_alloc" {
			st.steps = append(st.steps, jvm.Allocate{Bytes: n})
		} else {
			st.steps = append(st.steps, jvm.Free{Bytes: n})
		}
	case "sim_read":
		fields := strings.Fields(value)
		if len(fields) != 2 {
			return fmt.Errorf("sim_read wants 'path length', got %q", value)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return fmt.Errorf("bad sim_read length %q", fields[1])
		}
		st.steps = append(st.steps, jvm.IORead{Path: fields[0], Length: n})
	case "sim_write":
		path, data, ok := strings.Cut(value, " ")
		if !ok {
			return fmt.Errorf("sim_write wants 'path content', got %q", value)
		}
		st.steps = append(st.steps, jvm.IOWrite{Path: path, Data: []byte(strings.TrimSpace(data))})
	case "sim_throw":
		exc, msg, _ := strings.Cut(value, " ")
		st.steps = append(st.steps, jvm.Throw{
			Exception: exc,
			Message:   strings.TrimSpace(msg),
			Scope:     scope.ScopeProgram,
		})
	case "sim_exit":
		code, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("bad sim_exit %q", value)
		}
		st.steps = append(st.steps, jvm.Exit{Code: code})
	case "sim_corrupt_image":
		b, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("bad sim_corrupt_image %q", value)
		}
		st.corruptImage = b
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return nil
}

// applyCustom records a +Attr = expr custom attribute.
func (st *state) applyCustom(name, value string) error {
	name = strings.TrimSpace(name)
	if name == "" {
		return fmt.Errorf("empty custom attribute name")
	}
	if _, err := classad.ParseExpr(value); err != nil {
		return fmt.Errorf("bad custom attribute %s: %w", name, err)
	}
	st.extra = append(st.extra, extraAttr{name: name, expr: value})
	return nil
}

// parseBytes accepts "N", "NKB", "NMB", "NGB".
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	return n * mult, nil
}

// build materializes the job described so far.  The state is reused
// for subsequent queue statements, as in condor_submit.
func (st *state) build() (*daemon.Job, error) {
	var ad *classad.Ad
	if st.universe == "vanilla" {
		ad = daemon.NewVanillaJobAd(st.owner, st.imageSize)
	} else {
		ad = daemon.NewJavaJobAd(st.owner, st.imageSize)
	}
	if st.requirements != "" {
		if err := ad.SetExprString(classad.AttrRequirements, st.requirements); err != nil {
			return nil, err
		}
	}
	if st.rank != "" {
		if err := ad.SetExprString(classad.AttrRank, st.rank); err != nil {
			return nil, err
		}
	}
	for _, ex := range st.extra {
		if err := ad.SetExprString(ex.name, ex.expr); err != nil {
			return nil, err
		}
	}
	steps := make([]jvm.Step, len(st.steps))
	copy(steps, st.steps)
	if len(steps) == 0 {
		steps = []jvm.Step{jvm.Compute{Duration: time.Minute}}
	}
	return &daemon.Job{
		Owner:      st.owner,
		Universe:   st.universe,
		Ad:         ad,
		Executable: st.executable,
		Program: &jvm.Program{
			Class:        st.class,
			ImageCorrupt: st.corruptImage,
			Steps:        steps,
		},
	}, nil
}
