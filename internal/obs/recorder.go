package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Recorder is the collecting Tracer: it retains every event in emit
// order and aggregates counters and histograms.  It is safe for
// concurrent use; under the deterministic simulation, emit order is
// itself deterministic, so a recorded trace is reproducible byte for
// byte.
type Recorder struct {
	mu       sync.Mutex
	events   []Event
	counters map[string]int64
	hists    map[string]*Histogram
}

// Histogram is a cheap summary of one observed distribution.
type Histogram struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		counters: make(map[string]int64),
		hists:    make(map[string]*Histogram),
	}
}

// Enabled reports true: callers should build full events.
func (r *Recorder) Enabled() bool { return true }

// Emit appends the event.
func (r *Recorder) Emit(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Observe records one sample of the named distribution.
func (r *Recorder) Observe(name string, v int64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{Min: v, Max: v}
		r.hists[name] = h
	}
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emit order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Counter returns the named counter's value.
func (r *Recorder) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterNames returns the counter names, sorted.
func (r *Recorder) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Hist returns a copy of the named histogram summary, or a zero
// summary when nothing was observed.
func (r *Recorder) Hist(name string) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return *h
	}
	return Histogram{}
}

// HistNames returns the histogram names, sorted.
func (r *Recorder) HistNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExportOptions configure the JSONL export.
type ExportOptions struct {
	// Normalize prepares a trace from the live (wall-clock) stacks
	// for byte comparison: timestamps and span latencies are zeroed,
	// free-form details are dropped (on a live stack they embed
	// ephemeral ports and OS error text), and event/span lines are
	// sorted, so concurrent emitters cannot make two
	// otherwise-identical traces differ by arrival order.
	Normalize bool
}

// wallSuffix marks histograms measured in wall-clock nanoseconds.
// They are kept for interactive inspection but never exported: wall
// time is nondeterministic even under the simulation (the matchmaker
// measures its real cycle time), and a deterministic trace is the
// whole point of the export.
const wallSuffix = "_wall_ns"

// WriteJSONL writes the whole recording as JSON lines: events, then
// assembled spans, then counters, then histograms.  Under the
// simulation the output is byte-identical across same-seed runs; with
// opts.Normalize it is byte-identical for live runs too, up to the
// (asserted-on) set of events.
func (r *Recorder) WriteJSONL(w io.Writer, opts ExportOptions) error {
	events := r.Events()
	spans := AssembleSpans(events)

	evLines := make([]string, 0, len(events))
	for _, ev := range events {
		if opts.Normalize {
			ev.T = 0
			ev.Detail = ""
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		evLines = append(evLines, string(b))
	}
	spanLines := make([]string, 0, len(spans))
	for _, sp := range spans {
		if opts.Normalize {
			sp.Start, sp.End, sp.LatencyNS = 0, 0, 0
		}
		b, err := json.Marshal(struct {
			Span Span `json:"span"`
		}{sp})
		if err != nil {
			return err
		}
		spanLines = append(spanLines, string(b))
	}
	if opts.Normalize {
		sort.Strings(evLines)
		sort.Strings(spanLines)
	}
	for _, line := range evLines {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	for _, line := range spanLines {
		if _, err := io.WriteString(w, line+"\n"); err != nil {
			return err
		}
	}
	for _, name := range r.CounterNames() {
		b, err := json.Marshal(struct {
			Counter string `json:"counter"`
			Value   int64  `json:"value"`
		}{name, r.Counter(name)})
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, string(b)+"\n"); err != nil {
			return err
		}
	}
	for _, name := range r.HistNames() {
		if strings.HasSuffix(name, wallSuffix) {
			continue
		}
		h := r.Hist(name)
		b, err := json.Marshal(struct {
			Hist string `json:"hist"`
			Histogram
		}{name, h})
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, string(b)+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// JSONL returns WriteJSONL's output as a string.
func (r *Recorder) JSONL(opts ExportOptions) string {
	var sb strings.Builder
	// strings.Builder never returns a write error.
	_ = r.WriteJSONL(&sb, opts)
	return sb.String()
}

// Spans assembles the recorded error events into propagation spans.
func (r *Recorder) Spans() []Span {
	return AssembleSpans(r.Events())
}

// SortedSpanSet renders the spans as one sorted, time-free string per
// span — the canonical form concurrent live-stack tests compare, so
// goroutine arrival order cannot make a correct run flaky.
func (r *Recorder) SortedSpanSet() []string {
	spans := r.Spans()
	out := make([]string, 0, len(spans))
	for _, sp := range spans {
		out = append(out, fmt.Sprintf("job=%d origin=%s %s %s/%s -> %s disp=%s hops=%s",
			sp.Job, sp.Origin, sp.Code, sp.Scope, sp.EKind,
			sp.FinalScope, sp.Disposition, strings.Join(sp.Hops, "; ")))
	}
	sort.Strings(out)
	return out
}
