// Package obs is the observability substrate of the grid: structured
// tracing of error propagation plus cheap counters and histograms,
// behind an interface whose no-op implementation keeps the hot paths
// allocation-free when tracing is off.
//
// The unit of tracing is the Event: one component observing one thing
// at one instant.  Error events carry the scoped-error triple (code,
// scope, kind) of Section 3 of the paper; a Recorder assembles the
// error events of one job attempt into a Span — origin site, each
// daemon hop, final disposition, and the sim-time latency between
// origin and disposition — which is exactly the propagation path the
// paper's Figure 3 describes in prose.
//
// The package deliberately imports nothing from the simulation or
// daemon layers (they import it), so timestamps are plain int64
// nanoseconds: virtual time on the simulated bus, wall time in the
// live protocol stacks.
package obs

// Event kinds.  Error events open or extend a span; disposition
// events close one; the rest annotate the timeline.
const (
	// KindError is a scoped error observed at a component.  The first
	// error event of a job attempt is the origin site; later ones are
	// the hops of the propagation path.
	KindError = "error"
	// KindDisposition is the schedd's last-line-of-defense decision
	// for one attempt: complete, unexecutable, requeue, or hold.
	KindDisposition = "disposition"
	// KindState is a job lifecycle transition (submitted, matched,
	// executing, ...), mirroring the user-facing job event log.
	KindState = "state"
	// KindMsg is a message accepted by the bus for delivery.
	KindMsg = "msg"
	// KindMsgLost is a message the network lost: dropped in transit
	// or addressed to a dead actor.
	KindMsgLost = "msg-lost"
	// KindRetry is one retry decision (e.g. a shadow fetch retry),
	// with the backoff recorded in Value.
	KindRetry = "retry"
	// KindRecovery is a daemon rebuilding its state from durable
	// storage after a crash — e.g. the schedd replaying its write-ahead
	// journal.  Value carries the number of journal records replayed.
	KindRecovery = "recovery"
)

// Event is one traced observation.  The zero value of every field is
// omitted from the JSON encoding, keeping trace lines short.
type Event struct {
	// T is the observation instant in nanoseconds: virtual time in
	// the simulation, wall time in the live stacks.
	T int64 `json:"t"`
	// Comp is the emitting component ("schedd", "shadow:schedd:1",
	// "bus", "jvm", "wrapper", "chirp-client", ...).
	Comp string `json:"comp"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// Job identifies the job the event concerns; 0 means none.
	Job int64 `json:"job,omitempty"`
	// Code is the error code, message kind, or state name.
	Code string `json:"code,omitempty"`
	// Scope is the error's scope name, for error and disposition
	// events.
	Scope string `json:"scope,omitempty"`
	// EKind is the error kind name (implicit, explicit, escaping).
	EKind string `json:"ekind,omitempty"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// Value is an event-specific quantity (a backoff in nanoseconds,
	// a byte count).
	Value int64 `json:"value,omitempty"`
}

// Tracer receives events and metrics.  Implementations must be safe
// for concurrent use: the live protocol stacks emit from many
// goroutines.
//
// Hot paths guard expensive event construction behind Enabled, so the
// disabled tracer costs one interface call and no allocation:
//
//	if tr.Enabled() {
//		tr.Emit(obs.Event{...})
//	}
//
// Count and Observe take constant name strings and integer values, so
// they may be called unguarded without allocating.
type Tracer interface {
	// Enabled reports whether events will be retained.  Callers use
	// it to skip building Detail strings nobody will read.
	Enabled() bool
	// Emit records one event.
	Emit(Event)
	// Count adds delta to the named counter.
	Count(name string, delta int64)
	// Observe records one sample of the named distribution.
	Observe(name string, v int64)
}

// NopTracer discards everything.  All methods are trivially
// allocation-free.
type NopTracer struct{}

// Enabled reports false: skip event construction entirely.
func (NopTracer) Enabled() bool { return false }

// Emit discards the event.
func (NopTracer) Emit(Event) {}

// Count discards the increment.
func (NopTracer) Count(string, int64) {}

// Observe discards the sample.
func (NopTracer) Observe(string, int64) {}

// Nop is the shared disabled tracer.
var Nop Tracer = NopTracer{}

// Or returns t, or Nop when t is nil, so components can store a
// tracer field unconditionally and never nil-check on the hot path.
func Or(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// JobTagged is implemented by message bodies that concern one job.
// The bus uses it to attribute message events to jobs without knowing
// any daemon types; bodies that do not implement it (periodic ads,
// internal notices) stay out of traces.
type JobTagged interface {
	TracedJob() int64
}
