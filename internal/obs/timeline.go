package obs

import (
	"fmt"
	"strings"
	"time"
)

// Timeline renders the events concerning one job as a human-readable
// trace, one line per event, in emit order.  Times are shown as
// offsets from zero (virtual time in the simulation), so a timeline
// reads like the job's biography:
//
//	5m0.015s     bus          msg          claim-request schedd->big
//	35m2.062s    jvm          error        JVMStartError virtual-machine/escaping ...
//	35m2.067s    schedd       disposition  requeue remote-resource
//
// Job 0 selects events not attributed to any job.
func Timeline(events []Event, job int64) string {
	var sb strings.Builder
	for _, ev := range events {
		if ev.Job != job {
			continue
		}
		writeTimelineLine(&sb, ev)
	}
	return sb.String()
}

// Timeline renders the recorder's events for one job.
func (r *Recorder) Timeline(job int64) string {
	return Timeline(r.Events(), job)
}

func writeTimelineLine(sb *strings.Builder, ev Event) {
	fmt.Fprintf(sb, "%-12s %-16s %-12s %s", time.Duration(ev.T), ev.Comp, ev.Kind, ev.Code)
	if ev.Scope != "" {
		fmt.Fprintf(sb, " %s", ev.Scope)
		if ev.EKind != "" {
			fmt.Fprintf(sb, "/%s", ev.EKind)
		}
	}
	if ev.Detail != "" {
		fmt.Fprintf(sb, " %s", ev.Detail)
	}
	if ev.Value != 0 {
		fmt.Fprintf(sb, " value=%d", ev.Value)
	}
	sb.WriteByte('\n')
}
