package obs

import "fmt"

// Span is one error's journey through the system: where it
// originated, how it was classified, which components it visited, and
// what the schedd finally did about it.  One job attempt that fails
// produces one span; a job retried three times produces three.
type Span struct {
	// Job identifies the job the error belongs to.
	Job int64 `json:"job"`
	// Origin is the component that first observed the error.
	Origin string `json:"origin"`
	// Code, Scope, and EKind classify the error at its origin.
	Code  string `json:"code"`
	Scope string `json:"scope"`
	EKind string `json:"ekind,omitempty"`
	// FinalScope is the scope of the last hop before disposition —
	// widening en route is the paper's Section 3.3 in action.
	FinalScope string `json:"final_scope,omitempty"`
	// Disposition is the schedd's decision closing the span
	// (complete, unexecutable, requeue, hold); empty for a span still
	// open when the recording ended (e.g. a live transport error that
	// never reaches a schedd).
	Disposition string `json:"disposition,omitempty"`
	// Hops lists every error observation in order, rendered as
	// "component code scope/kind".
	Hops []string `json:"hops"`
	// Start and End bracket the span: origin instant to disposition
	// instant, in the emitter's nanoseconds.  LatencyNS is their
	// difference — the propagation latency the paper never had the
	// instrumentation to measure.
	Start     int64 `json:"start"`
	End       int64 `json:"end"`
	LatencyNS int64 `json:"latency_ns"`
}

// AssembleSpans folds an event stream into spans.  An error event
// opens a span for its job (or extends the open one); a disposition
// event closes it.  Spans are returned in close order, with any spans
// still open at the end appended in open order.
func AssembleSpans(events []Event) []Span {
	open := make(map[int64]*Span)
	// openOrder keeps leftover spans deterministic.
	var openOrder []int64
	var out []Span

	for _, ev := range events {
		switch ev.Kind {
		case KindError:
			sp := open[ev.Job]
			if sp == nil {
				sp = &Span{
					Job:    ev.Job,
					Origin: ev.Comp,
					Code:   ev.Code,
					Scope:  ev.Scope,
					EKind:  ev.EKind,
					Start:  ev.T,
				}
				open[ev.Job] = sp
				openOrder = append(openOrder, ev.Job)
			}
			sp.Hops = append(sp.Hops,
				fmt.Sprintf("%s %s %s/%s", ev.Comp, ev.Code, ev.Scope, ev.EKind))
			sp.FinalScope = ev.Scope
			sp.End = ev.T
		case KindDisposition:
			sp := open[ev.Job]
			if sp == nil {
				// A clean completion: no error ever opened a span.
				continue
			}
			sp.Disposition = ev.Code
			if ev.Scope != "" {
				sp.FinalScope = ev.Scope
			}
			sp.End = ev.T
			sp.LatencyNS = sp.End - sp.Start
			out = append(out, *sp)
			delete(open, ev.Job)
		}
	}
	for _, job := range openOrder {
		// openOrder may list a job more than once when a closed span
		// was followed by a new error; consume each open span once.
		if sp := open[job]; sp != nil {
			sp.LatencyNS = sp.End - sp.Start
			out = append(out, *sp)
			delete(open, job)
		}
	}
	return out
}
