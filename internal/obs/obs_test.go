package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNopTracer(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	// All methods must be safe no-ops.
	Nop.Emit(Event{Comp: "x", Kind: KindError})
	Nop.Count("c", 1)
	Nop.Observe("h", 2)

	if allocs := testing.AllocsPerRun(100, func() {
		Nop.Emit(Event{T: 1, Comp: "schedd", Kind: KindState, Job: 1, Code: "submitted"})
		Nop.Count("counter", 1)
		Nop.Observe("hist", 42)
	}); allocs != 0 {
		t.Errorf("Nop tracer allocates %v per round, want 0", allocs)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) != Nop {
		t.Error("Or(nil) != Nop")
	}
	r := NewRecorder()
	if Or(r) != Tracer(r) {
		t.Error("Or(r) != r")
	}
}

func TestRecorderEventsAndMetrics(t *testing.T) {
	r := NewRecorder()
	if !r.Enabled() {
		t.Fatal("recorder not enabled")
	}
	r.Emit(Event{T: 1, Comp: "a", Kind: KindState, Job: 1, Code: "submitted"})
	r.Emit(Event{T: 2, Comp: "b", Kind: KindError, Job: 1, Code: "X"})
	r.Count("jobs", 1)
	r.Count("jobs", 2)
	r.Observe("lat", 10)
	r.Observe("lat", 4)
	r.Observe("lat", 20)

	evs := r.Events()
	if len(evs) != 2 || evs[0].Comp != "a" || evs[1].Comp != "b" {
		t.Fatalf("Events() = %+v", evs)
	}
	// The copy must be independent of later emits.
	r.Emit(Event{T: 3, Comp: "c", Kind: KindState})
	if len(evs) != 2 {
		t.Fatal("Events() aliases internal storage")
	}

	if got := r.Counter("jobs"); got != 3 {
		t.Errorf("Counter(jobs) = %d, want 3", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("Counter(missing) = %d, want 0", got)
	}
	if names := r.CounterNames(); len(names) != 1 || names[0] != "jobs" {
		t.Errorf("CounterNames() = %v", names)
	}
	h := r.Hist("lat")
	if h.Count != 3 || h.Sum != 34 || h.Min != 4 || h.Max != 20 {
		t.Errorf("Hist(lat) = %+v", h)
	}
	if h := r.Hist("missing"); h.Count != 0 {
		t.Errorf("Hist(missing) = %+v", h)
	}
	if names := r.HistNames(); len(names) != 1 || names[0] != "lat" {
		t.Errorf("HistNames() = %v", names)
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Emit(Event{Comp: "w", Kind: KindError, Job: 1, Code: "E"})
				r.Count("n", 1)
				r.Observe("v", int64(i))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Events()); got != 800 {
		t.Errorf("events = %d, want 800", got)
	}
	if got := r.Counter("n"); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if h := r.Hist("v"); h.Count != 800 || h.Min != 0 || h.Max != 99 {
		t.Errorf("hist = %+v", h)
	}
}

func TestJSONLDeterministicAndNormalized(t *testing.T) {
	build := func(ts ...int64) *Recorder {
		r := NewRecorder()
		r.Emit(Event{T: ts[0], Comp: "jvm", Kind: KindError, Job: 1,
			Code: "JVMStartError", Scope: "virtual-machine", EKind: "escaping"})
		r.Emit(Event{T: ts[1], Comp: "schedd", Kind: KindDisposition, Job: 1,
			Code: "requeue", Scope: "remote-resource"})
		r.Count("bus.sent", 7)
		r.Observe("backoff_ns", 100)
		r.Observe("cycle_wall_ns", 12345) // wall clock: must not export
		return r
	}
	a := build(10, 20).JSONL(ExportOptions{})
	b := build(10, 20).JSONL(ExportOptions{})
	if a != b {
		t.Fatalf("same recording, different JSONL:\n%s\nvs\n%s", a, b)
	}
	if strings.Contains(a, "cycle_wall_ns") {
		t.Errorf("wall-clock histogram leaked into export:\n%s", a)
	}
	if !strings.Contains(a, `"counter":"bus.sent"`) || !strings.Contains(a, `"hist":"backoff_ns"`) {
		t.Errorf("metrics missing from export:\n%s", a)
	}
	if !strings.Contains(a, `"span":`) {
		t.Errorf("span missing from export:\n%s", a)
	}

	// Normalization erases timing, so recordings that differ only in
	// wall-clock instants export identically.
	n1 := build(10, 20).JSONL(ExportOptions{Normalize: true})
	n2 := build(999, 12345).JSONL(ExportOptions{Normalize: true})
	if n1 != n2 {
		t.Errorf("normalized exports differ:\n%s\nvs\n%s", n1, n2)
	}
	if strings.Contains(n1, `"t":10`) {
		t.Errorf("normalized export retains timestamps:\n%s", n1)
	}
}

func TestAssembleSpans(t *testing.T) {
	events := []Event{
		// Job 1: origin at the jvm, hop at the shadow, requeued.
		{T: 100, Comp: "jvm", Kind: KindError, Job: 1, Code: "OutOfMemoryError",
			Scope: "virtual-machine", EKind: "escaping"},
		{T: 150, Comp: "shadow", Kind: KindError, Job: 1, Code: "OutOfMemoryError",
			Scope: "virtual-machine", EKind: "escaping"},
		// Interleaved job 2 clean completion: no span.
		{T: 160, Comp: "schedd", Kind: KindDisposition, Job: 2, Code: "complete"},
		{T: 200, Comp: "schedd", Kind: KindDisposition, Job: 1, Code: "requeue",
			Scope: "virtual-machine"},
		// Job 1 again: second attempt's error, never disposed (still open).
		{T: 300, Comp: "chirp-client", Kind: KindError, Job: 1, Code: "ConnectionLost",
			Scope: "network", EKind: "escaping"},
		// Unrelated state noise must not affect spans.
		{T: 310, Comp: "schedd", Kind: KindState, Job: 1, Code: "requeued"},
	}
	spans := AssembleSpans(events)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2: %+v", len(spans), spans)
	}
	first := spans[0]
	if first.Job != 1 || first.Origin != "jvm" || first.Code != "OutOfMemoryError" {
		t.Errorf("first span = %+v", first)
	}
	if first.Disposition != "requeue" || len(first.Hops) != 2 {
		t.Errorf("first span = %+v", first)
	}
	if first.Start != 100 || first.End != 200 || first.LatencyNS != 100 {
		t.Errorf("first span timing = %+v", first)
	}
	open := spans[1]
	if open.Origin != "chirp-client" || open.Disposition != "" || open.FinalScope != "network" {
		t.Errorf("open span = %+v", open)
	}
}

func TestSpanWideningAcrossHops(t *testing.T) {
	events := []Event{
		{T: 1, Comp: "shadow", Kind: KindError, Job: 3, Code: "StarterSilent",
			Scope: "network", EKind: "escaping"},
		{T: 2, Comp: "shadow", Kind: KindError, Job: 3, Code: "StarterVanished",
			Scope: "remote-resource", EKind: "escaping"},
		{T: 3, Comp: "schedd", Kind: KindDisposition, Job: 3, Code: "requeue",
			Scope: "remote-resource"},
	}
	spans := AssembleSpans(events)
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	sp := spans[0]
	if sp.Scope != "network" || sp.FinalScope != "remote-resource" {
		t.Errorf("widening not visible: origin %s final %s", sp.Scope, sp.FinalScope)
	}
}

func TestSortedSpanSet(t *testing.T) {
	r := NewRecorder()
	// Two jobs erroring in "arrival" order 2 then 1; the sorted set
	// must not depend on that order.
	r.Emit(Event{T: 5, Comp: "chirp-client", Kind: KindError, Job: 2,
		Code: "ConnectionLost", Scope: "network", EKind: "escaping"})
	r.Emit(Event{T: 6, Comp: "chirp-client", Kind: KindError, Job: 1,
		Code: "ConnectionLost", Scope: "network", EKind: "escaping"})
	set := r.SortedSpanSet()
	if len(set) != 2 || !strings.HasPrefix(set[0], "job=1") || !strings.HasPrefix(set[1], "job=2") {
		t.Errorf("SortedSpanSet() = %v", set)
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{T: int64(300e9), Comp: "bus", Kind: KindMsg, Job: 1,
		Code: "claim-request", Detail: "schedd->big"})
	r.Emit(Event{T: int64(301e9), Comp: "jvm", Kind: KindError, Job: 1,
		Code: "JVMStartError", Scope: "virtual-machine", EKind: "escaping",
		Detail: "no java", Value: 7})
	r.Emit(Event{T: int64(302e9), Comp: "bus", Kind: KindMsg, Job: 2, Code: "other"})

	tl := r.Timeline(1)
	for _, want := range []string{"5m0s", "claim-request", "schedd->big",
		"JVMStartError", "virtual-machine/escaping", "no java", "value=7"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	if strings.Contains(tl, "other") {
		t.Errorf("timeline leaked another job's events:\n%s", tl)
	}
	if lines := strings.Count(tl, "\n"); lines != 2 {
		t.Errorf("timeline lines = %d, want 2:\n%s", lines, tl)
	}
}
