package dag

import (
	"fmt"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
)

// NodeStatus is one node's lifecycle state under the runner.
type NodeStatus int

// Node lifecycle.
const (
	NodeWaiting NodeStatus = iota // dependencies outstanding
	NodeRunning                   // submitted to the schedd
	NodeDone
	NodeFailed // retries exhausted, or upstream failure
)

var nodeStatusNames = [...]string{
	NodeWaiting: "waiting",
	NodeRunning: "running",
	NodeDone:    "done",
	NodeFailed:  "failed",
}

// String returns the status name.
func (s NodeStatus) String() string {
	if s < 0 || int(s) >= len(nodeStatusNames) {
		return fmt.Sprintf("nodestatus(%d)", int(s))
	}
	return nodeStatusNames[s]
}

// Runner executes a DAG over a pool, polling the schedd once per
// virtual minute.
type Runner struct {
	dag  *DAG
	pool *pool.Pool

	status   map[string]NodeStatus
	attempts map[string]int
	jobs     map[string]daemon.JobID
	errs     map[string]error
	stop     func()
	finished bool
}

// Start validates the DAG, hooks the runner into the pool's clock,
// and submits every dependency-free node.
func Start(d *DAG, p *pool.Pool) (*Runner, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		dag:      d,
		pool:     p,
		status:   make(map[string]NodeStatus),
		attempts: make(map[string]int),
		jobs:     make(map[string]daemon.JobID),
		errs:     make(map[string]error),
	}
	for _, name := range d.order {
		r.status[name] = NodeWaiting
	}
	r.submitReady()
	r.stop = p.Engine.Every(time.Minute, r.poll)
	return r, nil
}

// Status returns a node's current state.
func (r *Runner) Status(name string) NodeStatus { return r.status[name] }

// Attempts returns how many times a node was submitted.
func (r *Runner) Attempts(name string) int { return r.attempts[name] }

// Err returns the error a failed node recorded.
func (r *Runner) Err(name string) error { return r.errs[name] }

// Done reports whether every node reached a final state.
func (r *Runner) Done() bool {
	for _, st := range r.status {
		if st == NodeWaiting || st == NodeRunning {
			return false
		}
	}
	return true
}

// Failed reports whether any node failed.
func (r *Runner) Failed() bool {
	for _, st := range r.status {
		if st == NodeFailed {
			return true
		}
	}
	return false
}

// Close detaches the runner from the clock.
func (r *Runner) Close() {
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
}

// ready reports whether every parent of the node is done.
func (r *Runner) ready(n *Node) bool {
	for _, p := range n.parents {
		if r.status[p.Name] != NodeDone {
			return false
		}
	}
	return true
}

// submitReady submits every waiting node whose dependencies are done,
// unless an ancestor failed (then the node fails too: the DAG does not
// run work whose inputs never materialized).
func (r *Runner) submitReady() {
	for _, name := range r.dag.order {
		n := r.dag.nodes[name]
		if r.status[name] != NodeWaiting {
			continue
		}
		if r.upstreamFailed(n) {
			r.status[name] = NodeFailed
			r.errs[name] = scope.New(scope.ScopePool, "UpstreamFailed",
				"a dependency of %s failed", name)
			continue
		}
		if !r.ready(n) {
			continue
		}
		r.submit(n)
	}
}

func (r *Runner) upstreamFailed(n *Node) bool {
	for _, p := range n.parents {
		if r.status[p.Name] == NodeFailed {
			return true
		}
	}
	return false
}

func (r *Runner) submit(n *Node) {
	job := n.Build()
	if job.Executable != "" {
		// Stage the executable if the workflow has not already.
		if _, err := r.pool.Schedd.SubmitFS.Stat(job.Executable); err != nil {
			_ = r.pool.Schedd.SubmitFS.WriteFile(job.Executable, []byte("class bytes"))
		}
	}
	id := r.pool.Schedd.Submit(job)
	r.jobs[n.Name] = id
	r.attempts[n.Name]++
	r.status[n.Name] = NodeRunning
}

// poll advances node states from the schedd's dispositions.
func (r *Runner) poll() {
	if r.finished {
		return
	}
	progressed := false
	for _, name := range r.dag.order {
		if r.status[name] != NodeRunning {
			continue
		}
		j := r.pool.Schedd.Job(r.jobs[name])
		if j == nil || !j.State.Terminal() {
			continue
		}
		switch j.State {
		case daemon.JobCompleted:
			r.status[name] = NodeDone
			progressed = true
		default: // unexecutable or held
			n := r.dag.nodes[name]
			if r.attempts[name] <= n.Retries {
				// DAGMan's RETRY: resubmit the node.
				r.submit(n)
				continue
			}
			r.status[name] = NodeFailed
			r.errs[name] = j.FinalErr
			progressed = true
		}
	}
	if progressed {
		r.submitReady()
	}
	if r.Done() {
		r.finished = true
		r.Close()
	}
}
