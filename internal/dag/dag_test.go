package dag

import (
	"fmt"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
)

func jobBuilder(owner string, d time.Duration) func() *daemon.Job {
	return func() *daemon.Job {
		return &daemon.Job{
			Owner:      owner,
			Ad:         daemon.NewJavaJobAd(owner, 128),
			Program:    jvm.WellBehaved(d),
			Executable: "/dag/" + owner + ".class",
		}
	}
}

func newPool(t *testing.T) *pool.Pool {
	t.Helper()
	return pool.New(pool.Config{Seed: 1, Params: daemon.DefaultParams(),
		Machines: pool.UniformMachines(3, 2048)})
}

func TestDAGConstructionAndValidation(t *testing.T) {
	d := New()
	if _, err := d.AddJob("", nil); err == nil {
		t.Error("empty name should fail")
	}
	a, err := d.AddJob("A", jobBuilder("u", time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddJob("A", jobBuilder("u", time.Minute)); err == nil {
		t.Error("duplicate should fail")
	}
	b, _ := d.AddJob("B", jobBuilder("u", time.Minute))
	if err := d.AddDependency("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := d.AddDependency("A", "B"); err != nil {
		t.Errorf("idempotent dependency: %v", err)
	}
	if err := d.AddDependency("A", "A"); err == nil {
		t.Error("self dependency should fail")
	}
	if err := d.AddDependency("X", "B"); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := d.AddDependency("A", "Y"); err == nil {
		t.Error("unknown child should fail")
	}
	if got := a.Children(); len(got) != 1 || got[0] != "B" {
		t.Errorf("children = %v", got)
	}
	if got := b.Parents(); len(got) != 1 || got[0] != "A" {
		t.Errorf("parents = %v", got)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("valid dag rejected: %v", err)
	}
	// A cycle is rejected.
	if err := d.AddDependency("B", "A"); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil {
		t.Error("cycle should be rejected")
	}
	// A missing builder is rejected.
	d2 := New()
	d2.AddJob("N", nil)
	if err := d2.Validate(); err == nil {
		t.Error("nil builder should be rejected")
	}
}

// TestDiamondDAG runs the classic diamond: A -> (B, C) -> D, checking
// ordering via node completion times.
func TestDiamondDAG(t *testing.T) {
	p := newPool(t)
	d := New()
	d.AddJob("A", jobBuilder("a", 10*time.Minute))
	d.AddJob("B", jobBuilder("b", 10*time.Minute))
	d.AddJob("C", jobBuilder("c", 10*time.Minute))
	d.AddJob("D", jobBuilder("d", 10*time.Minute))
	d.AddDependency("A", "B")
	d.AddDependency("A", "C")
	d.AddDependency("B", "D")
	d.AddDependency("C", "D")

	r, err := Start(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(24 * time.Hour)
	if !r.Done() || r.Failed() {
		t.Fatalf("dag done=%v failed=%v", r.Done(), r.Failed())
	}
	for _, name := range []string{"A", "B", "C", "D"} {
		if r.Status(name) != NodeDone {
			t.Errorf("%s = %v", name, r.Status(name))
		}
		if r.Attempts(name) != 1 {
			t.Errorf("%s attempts = %d", name, r.Attempts(name))
		}
	}
	// Ordering: every job's submission follows its parents'
	// completion.
	finish := map[string]int64{}
	start := map[string]int64{}
	for _, s := range p.Schedds {
		for _, j := range s.Jobs() {
			start[j.Owner] = int64(j.Submitted)
			finish[j.Owner] = int64(j.Finished)
		}
	}
	for _, dep := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if start[dep[1]] < finish[dep[0]] {
			t.Errorf("%s started before %s finished", dep[1], dep[0])
		}
	}
}

// TestDAGRetryRecoversTransientFailure: a node whose first attempt is
// unexecutable succeeds on retry.
func TestDAGRetry(t *testing.T) {
	p := newPool(t)
	d := New()
	attempt := 0
	n, _ := d.AddJob("flaky", func() *daemon.Job {
		attempt++
		prog := jvm.WellBehaved(time.Minute)
		if attempt == 1 {
			prog = jvm.CorruptImage()
		}
		return &daemon.Job{
			Owner: "u", Ad: daemon.NewJavaJobAd("u", 128),
			Program: prog, Executable: "/dag/u.class",
		}
	})
	n.Retries = 2
	down, _ := d.AddJob("down", jobBuilder("v", time.Minute))
	_ = down
	d.AddDependency("flaky", "down")

	r, err := Start(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(24 * time.Hour)
	if r.Status("flaky") != NodeDone || r.Attempts("flaky") != 2 {
		t.Errorf("flaky = %v attempts=%d", r.Status("flaky"), r.Attempts("flaky"))
	}
	if r.Status("down") != NodeDone {
		t.Errorf("down = %v", r.Status("down"))
	}
}

// TestDAGUpstreamFailurePropagates: a node that exhausts retries fails
// its descendants without running them, while independent branches
// complete.
func TestDAGUpstreamFailure(t *testing.T) {
	p := newPool(t)
	d := New()
	d.AddJob("bad", func() *daemon.Job {
		return &daemon.Job{
			Owner: "u", Ad: daemon.NewJavaJobAd("u", 128),
			Program: jvm.CorruptImage(), Executable: "/dag/u.class",
		}
	})
	d.AddJob("after", jobBuilder("v", time.Minute))
	d.AddJob("independent", jobBuilder("w", time.Minute))
	d.AddDependency("bad", "after")

	r, err := Start(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(24 * time.Hour)
	if !r.Done() || !r.Failed() {
		t.Fatalf("done=%v failed=%v", r.Done(), r.Failed())
	}
	if r.Status("bad") != NodeFailed || r.Err("bad") == nil {
		t.Errorf("bad = %v, err = %v", r.Status("bad"), r.Err("bad"))
	}
	if r.Status("after") != NodeFailed {
		t.Errorf("after = %v", r.Status("after"))
	}
	if r.Attempts("after") != 0 {
		t.Errorf("after ran %d times", r.Attempts("after"))
	}
	if r.Status("independent") != NodeDone {
		t.Errorf("independent = %v", r.Status("independent"))
	}
}

func TestParseDAGFile(t *testing.T) {
	subs := map[string]string{
		"a.sub": "owner = alice\nsim_compute = 5m\nqueue\n",
		"b.sub": "owner = bob\nsim_compute = 5m\nqueue\n",
		"c.sub": "owner = carol\nsim_compute = 5m\nqueue\n",
	}
	lookup := func(file string) (string, error) {
		s, ok := subs[file]
		if !ok {
			return "", fmt.Errorf("no such file %s", file)
		}
		return s, nil
	}
	d, err := Parse(`
# a tiny pipeline
JOB A a.sub
JOB B b.sub
JOB C c.sub
PARENT A CHILD B C
RETRY B 3
`, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Names(); len(got) != 3 {
		t.Fatalf("names = %v", got)
	}
	b, _ := d.Node("B")
	if b.Retries != 3 {
		t.Errorf("retries = %d", b.Retries)
	}
	if got := b.Parents(); len(got) != 1 || got[0] != "A" {
		t.Errorf("parents = %v", got)
	}
	// End to end.
	p := newPool(t)
	r, err := Start(d, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(24 * time.Hour)
	if !r.Done() || r.Failed() {
		t.Errorf("done=%v failed=%v", r.Done(), r.Failed())
	}
}

func TestParseErrors(t *testing.T) {
	lookup := func(file string) (string, error) {
		if file == "ok.sub" {
			return "queue\n", nil
		}
		return "", fmt.Errorf("missing")
	}
	cases := []string{
		"",                               // no jobs
		"JOB A",                          // arity
		"JOB A missing.sub",              // lookup failure
		"JOB A ok.sub\nPARENT A",         // no CHILD
		"JOB A ok.sub\nPARENT CHILD A",   // empty parents
		"JOB A ok.sub\nPARENT A CHILD",   // empty children
		"JOB A ok.sub\nPARENT A CHILD X", // unknown child
		"JOB A ok.sub\nRETRY A x",        // bad count
		"JOB A ok.sub\nRETRY X 1",        // unknown node
		"FROB A",                         // unknown keyword
		"JOB A ok.sub\nJOB A ok.sub",     // duplicate
		"JOB A ok.sub\nJOB B ok.sub\nPARENT A CHILD B\nPARENT B CHILD A", // cycle
	}
	for _, src := range cases {
		if _, err := Parse(src, lookup); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
