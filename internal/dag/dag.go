// Package dag implements a DAGMan-style workflow manager: a directed
// acyclic graph of jobs whose edges are dependencies, executed over a
// pool's schedd.  DAGMan is the archetype of the paper's "process
// above Condor [that] may work on behalf of the user to ... resubmit
// jobs" (Section 5): it consumes the schedd's dispositions — complete,
// unexecutable, held — and applies its own retry policy per node.
package dag

import (
	"fmt"
	"sort"

	"github.com/errscope/grid/internal/daemon"
)

// Node is one vertex of the workflow.
type Node struct {
	Name string
	// Build creates a fresh job for each attempt of this node.
	Build func() *daemon.Job
	// Retries is how many times a failed node is resubmitted before
	// the DAG gives up on it.
	Retries int

	parents  []*Node
	children []*Node
}

// Parents returns the node's dependency names, sorted.
func (n *Node) Parents() []string { return names(n.parents) }

// Children returns the node's dependent names, sorted.
func (n *Node) Children() []string { return names(n.children) }

func names(nodes []*Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	sort.Strings(out)
	return out
}

// DAG is a workflow under construction.
type DAG struct {
	nodes map[string]*Node
	order []string
}

// New creates an empty DAG.
func New() *DAG {
	return &DAG{nodes: make(map[string]*Node)}
}

// AddJob adds a named node; the builder is invoked once per attempt.
func (d *DAG) AddJob(name string, build func() *daemon.Job) (*Node, error) {
	if name == "" {
		return nil, fmt.Errorf("dag: empty node name")
	}
	if _, ok := d.nodes[name]; ok {
		return nil, fmt.Errorf("dag: duplicate node %q", name)
	}
	n := &Node{Name: name, Build: build}
	d.nodes[name] = n
	d.order = append(d.order, name)
	return n, nil
}

// Node returns the named node.
func (d *DAG) Node(name string) (*Node, bool) {
	n, ok := d.nodes[name]
	return n, ok
}

// Names returns node names in insertion order.
func (d *DAG) Names() []string {
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// AddDependency makes child wait for parent.
func (d *DAG) AddDependency(parent, child string) error {
	p, ok := d.nodes[parent]
	if !ok {
		return fmt.Errorf("dag: unknown parent %q", parent)
	}
	c, ok := d.nodes[child]
	if !ok {
		return fmt.Errorf("dag: unknown child %q", child)
	}
	if p == c {
		return fmt.Errorf("dag: %q cannot depend on itself", parent)
	}
	for _, existing := range p.children {
		if existing == c {
			return nil // idempotent
		}
	}
	p.children = append(p.children, c)
	c.parents = append(c.parents, p)
	return nil
}

// Validate checks the graph is acyclic and every node has a builder.
func (d *DAG) Validate() error {
	for _, name := range d.order {
		if d.nodes[name].Build == nil {
			return fmt.Errorf("dag: node %q has no job", name)
		}
	}
	// Kahn's algorithm detects cycles.
	indeg := make(map[string]int, len(d.nodes))
	for name, n := range d.nodes {
		indeg[name] = len(n.parents)
	}
	var queue []string
	for _, name := range d.order {
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	seen := 0
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		seen++
		for _, c := range d.nodes[name].children {
			indeg[c.Name]--
			if indeg[c.Name] == 0 {
				queue = append(queue, c.Name)
			}
		}
	}
	if seen != len(d.nodes) {
		return fmt.Errorf("dag: cycle detected (%d of %d nodes reachable)", seen, len(d.nodes))
	}
	return nil
}
