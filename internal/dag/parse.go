package dag

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/submit"
)

// Parse reads a DAGMan-style workflow description:
//
//	JOB A a.sub
//	JOB B b.sub
//	JOB C c.sub
//	PARENT A CHILD B C
//	RETRY B 3
//
// Each JOB line names a submit description file; lookup resolves the
// file name to its contents (a workflow stored on the submit file
// system passes a reader over it).  A submit file that queues several
// jobs contributes its first job as the node's template.
func Parse(src string, lookup func(file string) (string, error)) (*DAG, error) {
	d := New()
	type pendingRetry struct {
		node  string
		count int
		line  int
	}
	var retries []pendingRetry
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lineNo := ln + 1
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "JOB":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dag: line %d: JOB wants 'JOB name file'", lineNo)
			}
			name, file := fields[1], fields[2]
			text, err := lookup(file)
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: %s: %w", lineNo, file, err)
			}
			parsed, err := submit.Parse(text)
			if err != nil {
				return nil, fmt.Errorf("dag: line %d: %s: %w", lineNo, file, err)
			}
			template := parsed.Jobs[0]
			if _, err := d.AddJob(name, func() *daemon.Job {
				// A fresh Job per attempt: the schedd owns submitted
				// jobs, so the template is re-instantiated.
				cp := *template
				cp.ID = 0
				cp.State = 0
				cp.Attempts = nil
				cp.Events = nil
				cp.Ad = template.Ad.Copy()
				return &cp
			}); err != nil {
				return nil, fmt.Errorf("dag: line %d: %w", lineNo, err)
			}

		case "PARENT":
			childIdx := -1
			for i, f := range fields {
				if strings.EqualFold(f, "CHILD") {
					childIdx = i
					break
				}
			}
			if childIdx < 2 || childIdx == len(fields)-1 {
				return nil, fmt.Errorf("dag: line %d: PARENT wants 'PARENT p... CHILD c...'", lineNo)
			}
			for _, p := range fields[1:childIdx] {
				for _, c := range fields[childIdx+1:] {
					if err := d.AddDependency(p, c); err != nil {
						return nil, fmt.Errorf("dag: line %d: %w", lineNo, err)
					}
				}
			}

		case "RETRY":
			if len(fields) != 3 {
				return nil, fmt.Errorf("dag: line %d: RETRY wants 'RETRY node n'", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dag: line %d: bad retry count %q", lineNo, fields[2])
			}
			retries = append(retries, pendingRetry{node: fields[1], count: n, line: lineNo})

		default:
			return nil, fmt.Errorf("dag: line %d: unknown keyword %q", lineNo, fields[0])
		}
	}
	for _, pr := range retries {
		n, ok := d.Node(pr.node)
		if !ok {
			return nil, fmt.Errorf("dag: line %d: RETRY for unknown node %q", pr.line, pr.node)
		}
		n.Retries = pr.count
	}
	if len(d.order) == 0 {
		return nil, fmt.Errorf("dag: no JOB statements")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
