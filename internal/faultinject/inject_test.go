package faultinject

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
	"github.com/errscope/grid/internal/scope"
)

// twoMachines is a pool with a preferred (big) and a fallback (small)
// machine; rank is by memory, so jobs land on "big" first.
func twoMachines() []daemon.MachineConfig {
	return []daemon.MachineConfig{
		{Name: "big", Memory: 4096, AdvertiseJava: true},
		{Name: "small", Memory: 1024, AdvertiseJava: true},
	}
}

// TestInjectMachineCrash: a scenario crash of the execution machine
// mid-job behaves exactly like startd.Crash called by hand — the
// shadow's result timeout discovers the silence and the job finishes
// on the fallback machine; the restart returns the machine to
// service.
func TestInjectMachineCrash(t *testing.T) {
	params := daemon.DefaultParams()
	params.ResultTimeout = 30 * time.Minute
	params.ChronicFailureThreshold = 1
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse("seed = 1\nfault class=crash site=machine:big at=5m0s for=2h0m0s\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(20 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].Machine != "big" || j.Attempts[0].LostContact == nil {
		t.Fatalf("attempts = %+v", j.Attempts)
	}
	if j.LastAttempt().Machine != "small" {
		t.Errorf("finished on %s", j.LastAttempt().Machine)
	}
	// The job finishes before the restart fires; run the clock past
	// it and the machine must return to service.
	p.Engine.RunFor(3 * time.Hour)
	if p.Startds[0].Crashed() {
		t.Error("machine still down after the restart event")
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "5m0s crash machine:big") || !strings.Contains(log, "2h5m0s restart machine:big") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectMatchmakerPartition: a "crashed" matchmaker is a
// partition window — no ads in, no notifications out.  The pool
// stalls for the window and recovers on its own once the daemon is
// back, because every party retries on its own clock.
func TestInjectMatchmakerPartition(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassCrash, Site: "actor:" + daemon.MatchmakerName, At: time.Millisecond, For: 30 * time.Minute},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	// The job could not have been matched before the partition
	// healed at t=30m.
	if done := p.Engine.Now(); done < 0 || time.Duration(done) < 30*time.Minute {
		t.Errorf("completed at %s, inside the partition window", done)
	}
	if p.Bus.Lost() == 0 {
		t.Error("partition dropped no messages")
	}
}

// TestInjectMsgDrop: losing the first claim-request exercises the
// schedd's claim timeout; the next negotiation cycle retries and the
// job completes.
func TestInjectMsgDrop(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()[:1]})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassMsgDrop, Site: "kind:claim-request", Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if p.Schedd.ClaimsFailed == 0 {
		t.Error("expected a timed-out claim from the dropped request")
	}
	if p.Bus.Lost() != 1 {
		t.Errorf("lost = %d, want 1", p.Bus.Lost())
	}
}

// TestInjectMsgDupAndDelay: duplicated and delayed advertisements are
// absorbed by the matchmaker's idempotent re-indexing; the pool's
// outcome is unaffected.
func TestInjectMsgDupAndDelay(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassMsgDup, Site: "kind:advertise", Param: 2},
		{Class: ClassMsgDelay, Site: "kind:advertise", Param: 1500},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if p.Bus.Duplicated() == 0 {
		t.Error("no duplicates delivered")
	}
	if len(p.Schedd.Reports) != 1 {
		t.Errorf("reports = %d, want 1", len(p.Schedd.Reports))
	}
}

// TestInjectFSOffline: the submit file system goes dark for two
// hours; under a hard mount the shadow's capped backoff outlasts the
// outage and the job completes without user-visible damage.
func TestInjectFSOffline(t *testing.T) {
	params := daemon.DefaultParams()
	params.Mount.Kind = daemon.MountHard
	params.Mount.RetryInterval = time.Minute
	params.ResultTimeout = 0
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()[:1]})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassFSOffline, Site: "submit", At: time.Millisecond, For: 2 * time.Hour},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "inject fs-offline submit") || !strings.Contains(log, "restore fs-offline submit") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectFSStateFaults: the disk-full, permission, and
// corrupt-data classes change the file system exactly as specified
// and restore it after the window.
func TestInjectFSStateFaults(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()[:1]})
	fs := p.Schedd.SubmitFS
	if err := fs.WriteFile("/data/in", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassDiskFull, Site: "submit", At: time.Minute, For: time.Hour},
		{Class: ClassPermission, Site: "submit", Path: "/data/in", At: time.Minute, For: time.Hour},
		{Class: ClassCorruptData, Site: "submit", Path: "/data/in", At: time.Minute, Count: 1},
	}}); err != nil {
		t.Fatal(err)
	}

	p.Engine.RunFor(2 * time.Minute)
	if err := fs.WriteFile("/data/other", make([]byte, 4096)); err == nil {
		t.Error("disk-full: write succeeded under clamped quota")
	} else if se, _ := scope.AsError(err); se == nil || se.Code != "DiskFull" {
		t.Errorf("disk-full: err = %v", err)
	}
	if err := fs.WriteFile("/data/in", []byte("new")); err == nil {
		t.Error("permission: write to read-only file succeeded")
	}
	got, err := fs.ReadFile("/data/in")
	if err != nil {
		t.Fatalf("corrupt read: %v", err)
	}
	if string(got) == "payload" {
		t.Error("corrupt-data: first read came back clean")
	}

	p.Engine.RunFor(2 * time.Hour)
	if err := fs.WriteFile("/data/other", make([]byte, 4096)); err != nil {
		t.Errorf("quota not restored: %v", err)
	}
	if err := fs.WriteFile("/data/in", []byte("payload")); err != nil {
		t.Errorf("read-only not restored: %v", err)
	}
	if got, _ := fs.ReadFile("/data/in"); string(got) != "payload" {
		t.Errorf("later reads still corrupt: %q", got)
	}
}

// TestInjectHeapExhaustion: clamping the preferred machine's JVM
// heap produces the paper's execution-environment error — an
// escaping virtual-machine-scope OutOfMemoryError — and the schedd
// requeues to the healthy machine rather than blaming the job.
func TestInjectHeapExhaustion(t *testing.T) {
	params := daemon.DefaultParams()
	params.ChronicFailureThreshold = 1
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassHeapExhaustion, Site: "machine:big", Param: 1 << 20},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.MemoryHog(32 << 20) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].Machine != "big" {
		t.Fatalf("attempts = %+v", j.Attempts)
	}
	firstErr := j.Attempts[0].True.Err()
	se, _ := scope.AsError(firstErr)
	if se == nil || se.Scope != scope.ScopeVirtualMachine || se.Kind != scope.KindEscaping {
		t.Errorf("first attempt error = %v", firstErr)
	}
	if j.LastAttempt().Machine != "small" {
		t.Errorf("finished on %s", j.LastAttempt().Machine)
	}
}

// TestInjectDeterminism: the same scenario against the same seed
// produces a byte-identical injector log and identical pool metrics —
// the property the whole conformance harness rests on.
func TestInjectDeterminism(t *testing.T) {
	sc, err := Parse(strings.Join([]string{
		"seed = 3",
		"fault class=crash site=machine:big at=5m0s for=1h0m0s",
		"fault class=msg-drop site=kind:claim-reply count=1",
		"fault class=fs-offline site=submit at=10m0s for=30m0s",
		"fault class=heap-exhaustion site=machine:small at=1s for=6h0m0s param=1024",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	run := func() (string, string) {
		params := daemon.DefaultParams()
		params.ResultTimeout = 30 * time.Minute
		params.Mount.Kind = daemon.MountHard
		params.Mount.RetryInterval = time.Minute
		p := pool.New(pool.Config{Seed: sc.Seed, Params: params, Machines: twoMachines()})
		in := New(PoolTargets(p))
		if err := in.Apply(sc); err != nil {
			t.Fatal(err)
		}
		p.SubmitJava(3, func(int) *jvm.Program { return jvm.WellBehaved(10 * time.Minute) })
		p.Run(48 * time.Hour)
		return strings.Join(in.Log(), "\n"), p.Metrics().String()
	}
	log1, met1 := run()
	log2, met2 := run()
	if log1 != log2 {
		t.Errorf("injector logs differ:\n%s\n---\n%s", log1, log2)
	}
	if met1 != met2 {
		t.Errorf("metrics differ:\n%s\n%s", met1, met2)
	}
	if log1 == "" {
		t.Error("empty injector log")
	}
}

// TestInjectApplyErrors: invalid scenarios are rejected whole, with
// nothing armed.
func TestInjectApplyErrors(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"conn class", Fault{Class: ClassConnReset, Site: "chirp"}, "Proxy"},
		{"unknown machine", Fault{Class: ClassCrash, Site: "machine:nope"}, "no machine"},
		{"bad crash site", Fault{Class: ClassCrash, Site: "submit"}, "crash site"},
		{"unknown fs", Fault{Class: ClassFSOffline, Site: "scratch:big"}, "no file system"},
		{"pathless permission", Fault{Class: ClassPermission, Site: "submit"}, "needs a path"},
		{"bad msg site", Fault{Class: ClassMsgDrop, Site: "everything"}, "message site"},
		{"bad jvm site", Fault{Class: ClassHeapExhaustion, Site: "actor:big"}, "jvm site"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := in.Apply(Scenario{Seed: 1, Faults: []Fault{c.f}})
			if err == nil {
				t.Fatalf("Apply accepted %+v", c.f)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
	if len(in.Log()) != 0 {
		t.Errorf("rejected scenarios left a log: %v", in.Log())
	}
}
