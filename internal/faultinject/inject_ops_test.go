package faultinject

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/monitor"
	"github.com/errscope/grid/internal/obs"
	"github.com/errscope/grid/internal/pool"
)

// TestInjectMonitorStreamDrop: the ops plane dies in two stages — the
// subscribers are dropped mid-run, then the daemon itself is killed.
// Both losses stay scoped to the monitor: the job's outcome is that of
// an unmonitored run.
func TestInjectMonitorStreamDrop(t *testing.T) {
	params := daemon.DefaultParams()
	rec := obs.NewRecorder()
	params.Trace = rec
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	mon := monitor.Attach(p, rec, "ops")
	colA, colB := monitor.NewCollector(), monitor.NewCollector()
	if err := mon.Subscribe(colA, 0); err != nil {
		t.Fatal(err)
	}
	if err := mon.Subscribe(colB, 0); err != nil {
		t.Fatal(err)
	}
	targets := PoolTargets(p)
	targets.Monitors = map[string]*monitor.Monitor{"ops": mon}
	in := New(targets)

	sc, err := Parse(strings.Join([]string{
		"seed = 1",
		"fault class=monitor-stream-drop site=monitor:ops at=10m0s",
		"fault class=monitor-stream-drop site=monitor:ops at=20m0s param=1",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(30 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted || len(j.Attempts) != 1 {
		t.Fatalf("state = %v (err %v), attempts = %d; the monitor fault perturbed the pool",
			j.State, j.FinalErr, len(j.Attempts))
	}
	if mon.Dropped() != 2 {
		t.Errorf("dropped = %d, want both subscribers", mon.Dropped())
	}
	if !mon.Killed() {
		t.Error("the kill fault left the monitor alive")
	}
	if !colA.Closed() || !colB.Closed() {
		t.Error("dropped subscribers were not closed")
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "10m0s drop-subscribers monitor:ops (2 dropped)") ||
		!strings.Contains(log, "20m0s kill monitor:ops (0 sessions closed)") {
		t.Errorf("injector log:\n%s", log)
	}

	// A monitor fault aimed at an unregistered monitor is an Apply
	// error, not a silent no-op.
	bad, err := Parse("seed = 1\nfault class=monitor-stream-drop site=monitor:nosuch at=1m0s\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := New(targets).Apply(bad); err == nil {
		t.Error("an unknown monitor site applied cleanly")
	}
}

// TestInjectDrainGraceExpiry: a drain with a generous grace vacates
// the resident cleanly — the final checkpoint ships, the job resumes
// elsewhere — and the drain lifts on schedule, returning the machine
// to the matchmaker.
func TestInjectDrainGraceExpiry(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.ResultTimeout = 50 * time.Minute
	params.ChronicFailureThreshold = 1
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse("seed = 1\nfault class=drain-grace-expiry site=machine:big at=25m0s param=60000 for=1h0m0s\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitStandard(1, func(int) *jvm.Program { return jvm.WellBehaved(45 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].Machine != "big" ||
		!j.Attempts[0].Evicted || j.Attempts[0].Preempted {
		t.Fatalf("attempts = %+v, want an eviction (not a preemption) off big", j.Attempts)
	}
	if j.LastAttempt().Machine != "small" {
		t.Errorf("finished on %s, want the undrained machine", j.LastAttempt().Machine)
	}
	// The 60-second grace covers the checkpoint ship: the resumed
	// attempt keeps the pre-drain progress.
	if j.CheckpointCPU < 20*time.Minute {
		t.Errorf("checkpoint = %v, want the pre-drain progress", j.CheckpointCPU)
	}
	p.Engine.RunFor(2 * time.Hour)
	if p.Startds[0].Drained() {
		t.Error("machine still drained after the resume event")
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "25m0s drain machine:big (grace 1m0s)") ||
		!strings.Contains(log, "1h25m0s resume machine:big") {
		t.Errorf("injector log:\n%s", log)
	}
}
