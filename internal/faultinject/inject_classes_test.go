package faultinject

import (
	"strings"
	"testing"
	"time"

	"github.com/errscope/grid/internal/daemon"
	"github.com/errscope/grid/internal/jvm"
	"github.com/errscope/grid/internal/pool"
)

// TestInjectEvictMidCheckpoint: the owner reclaims the machine
// mid-run.  The vacating starter ships a final checkpoint, so the
// requeued attempt resumes rather than restarting; the later
// owner-left event takes the machine out of service for good.  The
// scenario also delays every shadow-adjacent message, exercising the
// "actor:<prefix>:" site form.
func TestInjectEvictMidCheckpoint(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse(strings.Join([]string{
		"seed = 1",
		"fault class=eviction-mid-checkpoint site=machine:big at=25m0s for=1h0m0s",
		"fault class=msg-delay site=actor:shadow: param=1",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitStandard(1, func(int) *jvm.Program { return jvm.WellBehaved(45 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].Machine != "big" || !j.Attempts[0].Evicted {
		t.Fatalf("attempts = %+v", j.Attempts)
	}
	// The vacate shipped the 25-minute progress home; the resumed
	// attempt must not have restarted from zero.
	if j.CheckpointCPU < 20*time.Minute {
		t.Errorf("checkpoint = %v, want the pre-eviction progress", j.CheckpointCPU)
	}
	if m := p.Metrics(); m.Evictions == 0 {
		t.Errorf("no evictions recorded: %s", m)
	}
	// Run stops once the job is terminal; push the clock past the
	// owner-left event so it lands in the log.
	p.Engine.RunFor(time.Hour)
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "25m0s evict machine:big") ||
		!strings.Contains(log, "1h25m0s owner-left machine:big") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectRestartDifferentMachine: a silent crash loses the machine
// but not the journaled checkpoints; the job resumes on the fallback
// machine from its last committed progress, and the restart returns
// the original machine to service.
func TestInjectRestartDifferentMachine(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.ResultTimeout = 30 * time.Minute
	params.ChronicFailureThreshold = 1
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse("seed = 1\nfault class=restart-different-machine site=machine:big at=25m0s for=2h0m0s\n")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitStandard(1, func(int) *jvm.Program { return jvm.WellBehaved(45 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].Machine != "big" || j.Attempts[0].LostContact == nil {
		t.Fatalf("attempts = %+v", j.Attempts)
	}
	if j.LastAttempt().Machine != "small" {
		t.Errorf("finished on %s, want the fallback machine", j.LastAttempt().Machine)
	}
	if j.CheckpointCPU < 20*time.Minute {
		t.Errorf("checkpoint = %v, want the last committed progress", j.CheckpointCPU)
	}
	p.Engine.RunFor(3 * time.Hour)
	if p.Startds[0].Crashed() {
		t.Error("machine still down after the restart event")
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "25m0s crash machine:big") ||
		!strings.Contains(log, "2h25m0s restart machine:big") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectCorruptCheckpointForcesRerun: with every checkpoint record
// damaged on the wire, the shadow's CRC check rejects them all, so a
// machine crash costs the job its entire progress — the rerun starts
// from zero and the job still completes, just later.
func TestInjectCorruptCheckpointForcesRerun(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	params.ResultTimeout = 50 * time.Minute
	params.ChronicFailureThreshold = 1
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse(strings.Join([]string{
		"seed = 1",
		"fault class=corrupt-checkpoint site=kind:checkpoint at=1ms",
		"fault class=crash site=machine:big at=25m0s",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitStandard(1, func(int) *jvm.Program { return jvm.WellBehaved(45 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if len(j.Attempts) < 2 || j.Attempts[0].LostContact == nil {
		t.Fatalf("attempts = %+v", j.Attempts)
	}
	// No checkpoint ever survived its CRC check, so nothing was
	// committed and the rerun repeated all 45 minutes of work.
	if j.CheckpointCPU != 0 {
		t.Errorf("checkpoint = %v, want 0 — a corrupt record was accepted", j.CheckpointCPU)
	}
	if done := time.Duration(p.Engine.Now()); done < 85*time.Minute {
		t.Errorf("completed at %v — too early for a from-scratch rerun", done)
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "arm corrupt-checkpoint kind:checkpoint") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectPreemptGraceShrink: the preempt-grace-expiry class rewires
// a machine's vacate grace on the clock — with an explicit param and
// with the 1ms default.
func TestInjectPreemptGraceShrink(t *testing.T) {
	params := daemon.DefaultParams()
	params.Preemption = true
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	sc, err := Parse(strings.Join([]string{
		"seed = 1",
		"fault class=preempt-grace-expiry site=machine:big at=1m0s",
		"fault class=preempt-grace-expiry site=machine:small at=2m0s param=500",
		"",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Apply(sc); err != nil {
		t.Fatal(err)
	}
	p.Engine.RunFor(5 * time.Minute)
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "1m0s shrink-grace machine:big to 1ms") ||
		!strings.Contains(log, "2m0s shrink-grace machine:small to 500ms") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectScheddCrashRecover: the schedd process dies and replays
// its journal.  Checkpoints committed before the crash survive the
// restart, and the job completes after recovery.
func TestInjectScheddCrashRecover(t *testing.T) {
	params := daemon.DefaultParams()
	params.CheckpointInterval = 10 * time.Minute
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassScheddCrash, Site: "schedd:" + p.Schedd.Name(), At: 25 * time.Minute, For: 10 * time.Minute},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitStandard(1, func(int) *jvm.Program { return jvm.WellBehaved(45 * time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
	if j.CheckpointCPU < 20*time.Minute {
		t.Errorf("checkpoint = %v — the pre-crash commits did not survive the journal replay", j.CheckpointCPU)
	}
	log := strings.Join(in.Log(), "\n")
	if !strings.Contains(log, "crash schedd:") || !strings.Contains(log, "recover schedd:") {
		t.Errorf("injector log:\n%s", log)
	}
}

// TestInjectFilteredRules: lease-expiry and flock-reply-truncate rules
// select by message kind even when their site is an actor; unrelated
// traffic passes untouched and the pool's outcome is unaffected.
func TestInjectFilteredRules(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassLeaseExpiry, Site: "actor:" + p.Schedd.Name(), At: time.Millisecond, Count: 1},
		{Class: ClassFlockReplyTruncate, Site: "kind:flock-reply", At: time.Millisecond},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := p.SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	p.Run(24 * time.Hour)

	j := p.Schedd.Job(ids[0])
	if j.State != daemon.JobCompleted {
		t.Fatalf("state = %v, err = %v", j.State, j.FinalErr)
	}
}

// TestInjectJVMWindowRestores: every JVM degradation restores the
// original installation when its window closes.
func TestInjectJVMWindowRestores(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))

	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassHeapExhaustion, Site: "machine:big", At: time.Minute, For: 10 * time.Minute, Param: 1 << 20},
		{Class: ClassMissingInstall, Site: "machine:small", At: time.Minute, For: 10 * time.Minute},
		{Class: ClassBadLibraryPath, Site: "machine:big", At: 20 * time.Minute, For: 10 * time.Minute},
	}}); err != nil {
		t.Fatal(err)
	}
	p.Engine.RunFor(time.Hour)
	log := strings.Join(in.Log(), "\n")
	for _, want := range []string{
		"inject heap-exhaustion machine:big", "restore heap-exhaustion machine:big",
		"inject missing-installation machine:small", "restore missing-installation machine:small",
		"inject bad-library-path machine:big", "restore bad-library-path machine:big",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
	cfg := p.Startds[1].Machine().Config()
	if cfg.Broken {
		t.Error("missing-install not restored")
	}
}

// TestFederationTargetsPoolFaults: FederationTargets flattens every
// pool's surfaces into the standard maps, and the pool-site classes
// partition a whole member pool without disturbing its peers.
func TestFederationTargetsPoolFaults(t *testing.T) {
	fed := pool.NewFederation(pool.FederationConfig{
		Seed:   1,
		Params: daemon.DefaultParams(),
		Pools: []pool.FedPoolConfig{
			{Name: "p1", Machines: []daemon.MachineConfig{{Name: "m0", Memory: 2048, AdvertiseJava: true}}},
			{Name: "p2", Machines: []daemon.MachineConfig{{Name: "m0", Memory: 2048, AdvertiseJava: true}}},
		},
	})
	tg := FederationTargets(fed)
	if _, ok := tg.Startds["p2-m0"]; !ok {
		t.Fatalf("startds = %v", tg.Startds)
	}
	if _, ok := tg.Schedds["p1-schedd"]; !ok {
		t.Fatalf("schedds = %v", tg.Schedds)
	}
	if _, ok := tg.FileSystems["submit-p1-schedd"]; !ok {
		t.Fatalf("file systems = %v", tg.FileSystems)
	}
	if pm := tg.Pools["p2"]; pm.Matchmaker != "mm-p2" || len(pm.Machines) != 1 {
		t.Fatalf("pool members = %+v", pm)
	}

	in := New(tg)
	if err := in.Apply(Scenario{Seed: 1, Faults: []Fault{
		{Class: ClassPeerNegotiatorCrash, Site: "pool:p2", At: time.Millisecond, For: 30 * time.Minute},
		{Class: ClassPeerPoolCrash, Site: "pool:p2", At: time.Minute, For: 30 * time.Minute},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := fed.Pools[0].SubmitJava(1, func(int) *jvm.Program { return jvm.WellBehaved(time.Minute) })
	fed.Run(2 * time.Hour)
	// Run stops once every job is terminal; push the clock past the
	// pool-crash window so the restart events fire.
	fed.Engine.RunFor(time.Hour)

	if j := fed.Pools[0].Schedd.Job(ids[0]); j.State != daemon.JobCompleted {
		t.Fatalf("p1 job state = %v, err = %v", j.State, j.FinalErr)
	}
	log := strings.Join(in.Log(), "\n")
	for _, want := range []string{
		"arm peer-negotiator-crash actor:mm-p2",
		"arm peer-pool-crash actor:mm-p2",
		"crash machine:p2-m0",
		"restart machine:p2-m0",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %q:\n%s", want, log)
		}
	}
}

// TestInjectNewClassApplyErrors: the robustness classes reject
// malformed sites exactly as the original classes do.
func TestInjectNewClassApplyErrors(t *testing.T) {
	params := daemon.DefaultParams()
	p := pool.New(pool.Config{Seed: 1, Params: params, Machines: twoMachines()})
	in := New(PoolTargets(p))
	cases := []struct {
		name string
		f    Fault
		want string
	}{
		{"evict site", Fault{Class: ClassEvictMidCkpt, Site: "submit"}, "must be machine:"},
		{"evict unknown", Fault{Class: ClassEvictMidCkpt, Site: "machine:nope"}, "no machine"},
		{"restart site", Fault{Class: ClassRestartElsewhere, Site: "actor:big"}, "must be machine:"},
		{"grace unknown", Fault{Class: ClassPreemptGrace, Site: "machine:nope"}, "no machine"},
		{"corrupt site", Fault{Class: ClassCorruptCkpt, Site: "everything"}, "corrupt-checkpoint site"},
		{"bad schedd site", Fault{Class: ClassScheddCrash, Site: "machine:big"}, "schedd-crash site"},
		{"unknown schedd", Fault{Class: ClassScheddCrash, Site: "schedd:nope"}, "no schedd"},
		{"bad lease site", Fault{Class: ClassLeaseExpiry, Site: "everything"}, "lease-expiry site"},
		{"bad flock site", Fault{Class: ClassFlockReplyTruncate, Site: "x"}, "flock-reply-truncate site"},
		{"no federation", Fault{Class: ClassPeerPoolCrash, Site: "pool:p2"}, "no federated pool"},
		{"bad pool site", Fault{Class: ClassPeerNegotiatorCrash, Site: "p2"}, "site must be pool:"},
		{"unknown class", Fault{Class: "gamma-ray"}, "unknown class"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := in.Apply(Scenario{Seed: 1, Faults: []Fault{c.f}})
			if err == nil {
				t.Fatalf("Apply accepted %+v", c.f)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
