package faultinject

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/errscope/grid/internal/wire"
)

// ConnFault is the deterministic fate of every connection through a
// Proxy.  Budgets count payload bytes forwarded in each direction;
// the protocols behind the proxy (Chirp, remote I/O) are strict
// request/response, so a byte offset identifies the same protocol
// instant on every run — determinism without any reliance on timing.
type ConnFault struct {
	// CutToServer cuts the connection after this many bytes have
	// been forwarded from the client toward the server; 0 = never.
	CutToServer int64
	// CutToClient cuts after this many bytes toward the client —
	// mid-stream truncation of a response; 0 = never.
	CutToClient int64
	// Reset aborts with a TCP RST (connection reset by peer)
	// instead of a quiet FIN.
	Reset bool

	// The frame faults parse the binary wire toward the client and
	// target the N-th whole frame (1-based).  Setting any of them
	// switches the to-client direction to a frame-aware relay; they
	// are meaningless on a text-protocol stream.

	// CorruptFrame flips one payload byte of the N-th frame (the
	// command byte when the payload is empty); the frame checksum
	// catches the damage unless FixChecksum repairs it.
	CorruptFrame int64
	// FixChecksum recomputes the frame checksum after CorruptFrame's
	// bit flip, so the damage penetrates the codec and is only caught
	// by the AEAD layer of a secure session — a MAC failure.
	FixChecksum bool
	// TruncateFrame forwards only a header prefix of the N-th frame,
	// then cuts the connection — a frame cut mid-flight.
	TruncateFrame int64
	// ReplayFrame delivers the N-th frame twice; the receiver's
	// sequence counter rejects the duplicate.
	ReplayFrame int64
}

// frameAware reports whether any frame-level fault is armed.
func (f ConnFault) frameAware() bool {
	return f.CorruptFrame > 0 || f.TruncateFrame > 0 || f.ReplayFrame > 0
}

// ConnFaultFor maps a connection-level fault class to the proxy
// behavior the sweep arms: Param is the byte budget toward the
// client for the stream classes, or the 1-based frame index for the
// frame classes (default 1 — the very first response byte or frame).
func ConnFaultFor(f Fault) (ConnFault, error) {
	n := f.Param
	if n <= 0 {
		n = 1
	}
	switch f.Class {
	case ClassConnReset:
		return ConnFault{CutToClient: n, Reset: true}, nil
	case ClassConnTruncate:
		return ConnFault{CutToClient: n}, nil
	case ClassFrameCorrupt:
		return ConnFault{CorruptFrame: n}, nil
	case ClassFrameTruncate:
		return ConnFault{TruncateFrame: n}, nil
	case ClassMACFailure:
		return ConnFault{CorruptFrame: n, FixChecksum: true}, nil
	case ClassFrameReplay:
		return ConnFault{ReplayFrame: n}, nil
	case ClassKeyExpiry:
		return ConnFault{}, fmt.Errorf("class %s is armed by the session key budget, not the proxy", f.Class)
	}
	return ConnFault{}, fmt.Errorf("class %s is not connection-level", f.Class)
}

// Proxy is a TCP relay that injects connection faults between a live
// client and server.  Point a chirp or remoteio client at Addr and
// every connection relays to the target until its byte budget runs
// out, then dies by FIN or RST.  With a zero ConnFault the proxy is
// a faithful wire.
type Proxy struct {
	ln     net.Listener
	target string
	fault  ConnFault

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	cuts   int
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a loopback port relaying to target.
func NewProxy(target string, fault ConnFault) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		fault:  fault,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Cuts reports how many connections the fault has cut.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// track registers a live connection, or closes it if the proxy is
// already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(server) {
			client.Close()
			server.Close()
			continue
		}
		p.wg.Add(2)
		var cutOnce sync.Once
		cut := func() {
			cutOnce.Do(func() {
				p.mu.Lock()
				p.cuts++
				p.mu.Unlock()
				kill(client, p.fault.Reset)
				kill(server, p.fault.Reset)
			})
		}
		go p.pipe(server, client, p.fault.CutToServer, cut)
		if p.fault.frameAware() {
			go p.framePipe(client, server, p.fault, cut)
		} else {
			go p.pipe(client, server, p.fault.CutToClient, cut)
		}
	}
}

// pipe relays src to dst until EOF or the byte budget is exhausted.
// Budget exhaustion cuts the whole connection pair; a natural EOF
// half-closes dst so the other direction can finish draining.
func (p *Proxy) pipe(dst, src net.Conn, budget int64, cut func()) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	if budget > 0 {
		if _, err := io.CopyN(dst, src, budget); err == nil {
			cut()
			return
		}
		// The stream ended before the budget; fall through as EOF.
	} else {
		io.Copy(dst, src)
	}
	halfClose(dst)
}

// maxProxyFrame bounds how large a frame the relay will buffer; a
// longer length field means the stream is not the binary wire, and
// the relay falls back to raw copying.
const maxProxyFrame = 1 << 26

// framePipe relays src to dst one wire frame at a time, injecting the
// armed frame fault at its 1-based index.  Frames are cmd(1) seq(2)
// len(4) payload(len) checksum(4); anything that does not parse as a
// frame is relayed raw from that point on.
func (p *Proxy) framePipe(dst, src net.Conn, f ConnFault, cut func()) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	br := bufio.NewReader(src)
	var idx int64
	for {
		hdr := make([]byte, 7)
		if _, err := io.ReadFull(br, hdr); err != nil {
			halfClose(dst)
			return
		}
		n := int64(binary.BigEndian.Uint32(hdr[3:7]))
		if n > maxProxyFrame {
			// Not a frame we can buffer; give up on injection and
			// relay the rest of the stream faithfully.
			dst.Write(hdr)
			io.Copy(dst, br)
			halfClose(dst)
			return
		}
		frame := make([]byte, 7+n+4)
		copy(frame, hdr)
		if _, err := io.ReadFull(br, frame[7:]); err != nil {
			// Upstream died mid-frame; forward what arrived.
			dst.Write(frame[:7])
			halfClose(dst)
			return
		}
		idx++
		switch idx {
		case f.TruncateFrame:
			// Forward the command byte and sequence but cut inside the
			// length field: the reader sees a partial frame, never a
			// clean EOF.
			dst.Write(frame[:5])
			cut()
			return
		case f.CorruptFrame:
			pos := 7
			if n == 0 {
				pos = 0
			}
			frame[pos] ^= 0x20
			if f.FixChecksum {
				binary.BigEndian.PutUint32(frame[7+n:], wire.Checksum(frame[:7+n]))
			}
		case f.ReplayFrame:
			if _, err := dst.Write(frame); err != nil {
				return
			}
		}
		if _, err := dst.Write(frame); err != nil {
			return
		}
	}
}

func halfClose(dst net.Conn) {
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		dst.Close()
	}
}

// kill severs one connection, with an RST if reset is set: SO_LINGER
// zero makes Close send RST instead of FIN, so the peer observes
// "connection reset" — the abrupt teardown of a crashed server, not
// the polite close of a finished one.
func kill(c net.Conn, reset bool) {
	if tc, ok := c.(*net.TCPConn); ok && reset {
		tc.SetLinger(0)
	}
	c.Close()
}
