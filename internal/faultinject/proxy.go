package faultinject

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// ConnFault is the deterministic fate of every connection through a
// Proxy.  Budgets count payload bytes forwarded in each direction;
// the protocols behind the proxy (Chirp, remote I/O) are strict
// request/response, so a byte offset identifies the same protocol
// instant on every run — determinism without any reliance on timing.
type ConnFault struct {
	// CutToServer cuts the connection after this many bytes have
	// been forwarded from the client toward the server; 0 = never.
	CutToServer int64
	// CutToClient cuts after this many bytes toward the client —
	// mid-stream truncation of a response; 0 = never.
	CutToClient int64
	// Reset aborts with a TCP RST (connection reset by peer)
	// instead of a quiet FIN.
	Reset bool
}

// ConnFaultFor maps a connection-level fault class to the proxy
// behavior the sweep arms: Param is the byte budget toward the
// client (default 1 — the very first response byte).
func ConnFaultFor(f Fault) (ConnFault, error) {
	n := f.Param
	if n <= 0 {
		n = 1
	}
	switch f.Class {
	case ClassConnReset:
		return ConnFault{CutToClient: n, Reset: true}, nil
	case ClassConnTruncate:
		return ConnFault{CutToClient: n}, nil
	}
	return ConnFault{}, fmt.Errorf("class %s is not connection-level", f.Class)
}

// Proxy is a TCP relay that injects connection faults between a live
// client and server.  Point a chirp or remoteio client at Addr and
// every connection relays to the target until its byte budget runs
// out, then dies by FIN or RST.  With a zero ConnFault the proxy is
// a faithful wire.
type Proxy struct {
	ln     net.Listener
	target string
	fault  ConnFault

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	cuts   int
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a loopback port relaying to target.
func NewProxy(target string, fault ConnFault) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		fault:  fault,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address, for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Cuts reports how many connections the fault has cut.
func (p *Proxy) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// Close stops the proxy and severs every relayed connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// track registers a live connection, or closes it if the proxy is
// already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client) || !p.track(server) {
			client.Close()
			server.Close()
			continue
		}
		p.wg.Add(2)
		var cutOnce sync.Once
		cut := func() {
			cutOnce.Do(func() {
				p.mu.Lock()
				p.cuts++
				p.mu.Unlock()
				kill(client, p.fault.Reset)
				kill(server, p.fault.Reset)
			})
		}
		go p.pipe(server, client, p.fault.CutToServer, cut)
		go p.pipe(client, server, p.fault.CutToClient, cut)
	}
}

// pipe relays src to dst until EOF or the byte budget is exhausted.
// Budget exhaustion cuts the whole connection pair; a natural EOF
// half-closes dst so the other direction can finish draining.
func (p *Proxy) pipe(dst, src net.Conn, budget int64, cut func()) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer p.untrack(dst)
	if budget > 0 {
		if _, err := io.CopyN(dst, src, budget); err == nil {
			cut()
			return
		}
		// The stream ended before the budget; fall through as EOF.
	} else {
		io.Copy(dst, src)
	}
	if tc, ok := dst.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		dst.Close()
	}
}

// kill severs one connection, with an RST if reset is set: SO_LINGER
// zero makes Close send RST instead of FIN, so the peer observes
// "connection reset" — the abrupt teardown of a crashed server, not
// the polite close of a finished one.
func kill(c net.Conn, reset bool) {
	if tc, ok := c.(*net.TCPConn); ok && reset {
		tc.SetLinger(0)
	}
	c.Close()
}
